(* Table 2: file and device I/O in microseconds, native Synthesis
   calls vs the same operations through the UNIX emulator.  Measured
   with timestamp host-calls (the Quamachine's microsecond clock). *)

open Quamachine
open Synthesis [@@warning "-33"]
module I = Insn
module U = Unix_emulator.Unix_abi

(* One program per mode, same operation sequence, a timestamp around
   every operation.  fd is kept in r13 (preserved across calls). *)
let ops_program env ~emulated ~mark =
  let call ~nat_trap ~unix_no setup =
    if emulated then
      setup @ [ I.Move (I.Imm unix_no, I.Reg I.r0); I.Trap U.trap; mark ]
    else setup @ [ I.Trap nat_trap; mark ]
  in
  let open_ name_addr =
    call ~nat_trap:3 ~unix_no:U.sys_open [ I.Move (I.Imm name_addr, I.Reg I.r1) ]
  in
  let close_r0 =
    call ~nat_trap:4 ~unix_no:U.sys_close [ I.Move (I.Reg I.r13, I.Reg I.r1) ]
  in
  let read_ n =
    call ~nat_trap:1 ~unix_no:U.sys_read
      [
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Move (I.Imm env.Repro_harness.Programs.e_buf, I.Reg I.r2);
        I.Move (I.Imm n, I.Reg I.r3);
      ]
  in
  let keep_fd = [ I.Move (I.Reg I.r0, I.Reg I.r13) ] in
  List.concat
    [
      [ mark ];
      open_ env.Repro_harness.Programs.e_name_null; (* span 1: open /dev/null *)
      keep_fd;
      [ mark ];
      read_ 8; (* span 3: read N from /dev/null *)
      close_r0; (* span 4: close *)
      [ mark ];
      open_ env.Repro_harness.Programs.e_name_tty; (* span 6: open /dev/tty *)
      keep_fd;
      close_r0;
      [ mark ];
      open_ env.Repro_harness.Programs.e_name_file; (* span 8: open file *)
      keep_fd;
      [ mark ];
      read_ 1; (* span 10: read 1 word *)
      read_ 64; (* span 11: read 64 words *)
      close_r0;
      [ I.Move (I.Imm U.sys_exit, I.Reg I.r0); I.Trap U.trap ];
    ]

type row = {
  r_open_null : float;
  r_read_null : float;
  r_close : float;
  r_open_tty : float;
  r_open_file : float;
  r_read_1 : float;
  r_read_64 : float;
}

let measure ~emulated =
  let se = Repro_harness.Harness.synthesis_setup () in
  let stamps = se.Repro_harness.Harness.s_stamps in
  let program = ops_program se.Repro_harness.Harness.s_env ~emulated ~mark:(Repro_harness.Harness.Stamps.mark stamps) in
  ignore (Repro_harness.Harness.synthesis_run se ~program);
  match Repro_harness.Harness.Stamps.spans stamps with
  | [ open_null; _keep1; read_null; close; _g1; open_tty; _ct; _g2; open_file; _keep2;
      read_1; read_64; _rest ] ->
    {
      r_open_null = open_null;
      r_read_null = read_null;
      r_close = close;
      r_open_tty = open_tty;
      r_open_file = open_file;
      r_read_1 = read_1;
      r_read_64 = read_64;
    }
  | spans ->
    failwith (Fmt.str "table2: unexpected %d spans" (List.length spans))

let run () =
  Repro_harness.Harness.header "Table 2: file and device I/O (microseconds)";
  let nat = measure ~emulated:false in
  let emu = measure ~emulated:true in
  List.iter
    (fun (slug, n, e) ->
      Bench_json.record ~table:"table2" ~row:slug ~metric:"native_us" n;
      Bench_json.record ~table:"table2" ~row:slug ~metric:"emulated_us" e)
    [
      ("open_null", nat.r_open_null, emu.r_open_null);
      ("open_tty", nat.r_open_tty, emu.r_open_tty);
      ("open_file", nat.r_open_file, emu.r_open_file);
      ("close", nat.r_close, emu.r_close);
      ("read_1", nat.r_read_1, emu.r_read_1);
      ("read_64", nat.r_read_64, emu.r_read_64);
      ("read_null", nat.r_read_null, emu.r_read_null);
    ];
  Bench_json.record ~table:"table2" ~row:"trap_overhead" ~metric:"emulated_us"
    (emu.r_read_null -. nat.r_read_null);
  Fmt.pr "%-34s %10s %10s %22s@." "operation" "native" "emulated" "paper (nat/emu)";
  let row name n e paper =
    Fmt.pr "%-34s %10.1f %10.1f %22s@." name n e paper
  in
  row "emulation trap overhead" 0.0 (emu.r_read_null -. nat.r_read_null) "- / 2";
  row "open /dev/null" nat.r_open_null emu.r_open_null "43 / 49";
  row "open /dev/tty" nat.r_open_tty emu.r_open_tty "62 / 68";
  row "open file" nat.r_open_file emu.r_open_file "73 / 85";
  row "close" nat.r_close emu.r_close "18 / 22";
  row "read 1 word from file" nat.r_read_1 emu.r_read_1 "9 / 10";
  row "read 64 words from file" nat.r_read_64 emu.r_read_64 "9*N/8 / 10*N/8";
  row "  (per 8 words)" (nat.r_read_64 /. 8.0) (emu.r_read_64 /. 8.0) "9 / 10";
  row "read 8 from /dev/null" nat.r_read_null emu.r_read_null "6 / 8"
