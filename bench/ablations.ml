(* Ablations of the design choices DESIGN.md calls out:

   - synthesized vs generic kernel path for the same operation (the
     heart of kernel code synthesis);
   - lazy-FP context switch vs always-saving FP state;
   - buffered A/D queue (8 words/element) vs a plain per-interrupt
     queue insert;
   - fine-grain adaptive quanta vs fixed round-robin, judged by A/D
     queue overruns under load. *)

open Quamachine
open Synthesis
module I = Insn
module U = Unix_emulator.Unix_abi

(* ------------------------------------------------------------ *)
(* Specialized vs generic read path, per 1 KiB call. *)

let ablation_synthesis () =
  Repro_harness.Harness.header "Ablation: synthesized vs generic read path (us per 1 KiB read)";
  (* Synthesis: native read through the synthesized routine *)
  let se = Repro_harness.Harness.synthesis_setup () in
  let stamps = se.Repro_harness.Harness.s_stamps in
  let mark = Repro_harness.Harness.Stamps.mark stamps in
  let env = se.Repro_harness.Harness.s_env in
  let program =
    [
      I.Move (I.Imm env.Repro_harness.Programs.e_name_file, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Reg I.r0, I.Reg I.r13);
      mark;
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Move (I.Imm env.Repro_harness.Programs.e_buf, I.Reg I.r2);
      I.Move (I.Imm 256, I.Reg I.r3);
      I.Trap 1;
      mark;
      I.Move (I.Imm U.sys_exit, I.Reg I.r0);
      I.Trap U.trap;
    ]
  in
  ignore (Repro_harness.Harness.synthesis_run se ~program);
  let syn_us = match Repro_harness.Harness.Stamps.spans stamps with s :: _ -> s | [] -> nan in
  (* Baseline: the generic vnode path *)
  let be = Repro_harness.Harness.baseline_setup () in
  let benv = be.Repro_harness.Harness.b_env in
  (* measure one read by differencing two runs: N and N+1 reads *)
  let mk n =
    [
      I.Move (I.Imm U.sys_open, I.Reg I.r0);
      I.Move (I.Imm benv.Repro_harness.Programs.e_name_file, I.Reg I.r1);
      I.Trap U.trap;
      I.Move (I.Reg I.r0, I.Reg I.r13);
      I.Move (I.Imm (n - 1), I.Reg I.r12);
      I.Label "loop";
      I.Move (I.Imm U.sys_lseek, I.Reg I.r0);
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Move (I.Imm 0, I.Reg I.r2);
      I.Trap U.trap;
      I.Move (I.Imm U.sys_read, I.Reg I.r0);
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Move (I.Imm benv.Repro_harness.Programs.e_buf, I.Reg I.r2);
      I.Move (I.Imm 256, I.Reg I.r3);
      I.Trap U.trap;
      I.Dbra (I.r12, I.To_label "loop");
      I.Move (I.Imm U.sys_exit, I.Reg I.r0);
      I.Trap U.trap;
    ]
  in
  let t1 = Repro_harness.Harness.baseline_run be ~program:(mk 1) in
  let be2 = Repro_harness.Harness.baseline_setup () in
  let t101 = Repro_harness.Harness.baseline_run be2 ~program:(mk 101) in
  let base_us = (t101 -. t1) /. 100.0 *. 1_000_000.0 in
  Fmt.pr "synthesized read: %.1f us;  generic (vnode) read+seek: %.1f us;  factor %.1fx@."
    syn_us base_us (base_us /. syn_us)

(* ------------------------------------------------------------ *)
(* Lazy-FP: measured switch costs and the resynthesis trigger. *)

let ablation_fp () =
  Repro_harness.Harness.header "Ablation: lazy-FP context switch";
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  (* a thread that touches FP mid-run: triggers the resynthesis trap *)
  let prog =
    [
      I.Move (I.Imm 1000, I.Reg I.r9);
      I.Label "spin";
      I.Dbra (I.r9, I.To_label "spin");
      I.Fmove_imm (1.5, 0); (* first FP instruction *)
      I.Fop (I.Fadd, 0, 0);
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  Machine.set_fp_enabled m false;
  let t = Thread.create k ~entry () in
  let before = t.Kernel.sw_out in
  (match Boot.go ~max_insns:10_000_000 b with _ -> ());
  let resynthesized = t.Kernel.sw_out <> before in
  Fmt.pr
    "first FP instruction trapped and resynthesized the switch code: %b@.\
     (switch timings with/without FP are in Table 4: the FP save/restore@.\
     roughly doubles the switch, so threads that never touch FP never pay)@."
    resynthesized

(* ------------------------------------------------------------ *)
(* Buffered queue: per-interrupt cost at blocking factor 8 vs 1. *)

let measure_ad_cost ~factor =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let adq = Interrupt.install_adq k ~factor ~n_elems:32 () in
  let busy, _ =
    Ksynth.install k ~name:"bench/busy"
      [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  let _t = Thread.create k ~quantum_us:100_000 ~entry:busy () in
  (match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> failwith "no thread");
  ignore (Repro_harness.Harness.run_until_user m ~max_insns:1_000_000);
  Devices.Ad.set_rate k.Kernel.ad 44_100;
  (* run for 64 samples and average the interrupt cost: total time in
     supervisor attributable to A/D = delta across the window minus
     user-mode work is hard to split, so instead measure each stage *)
  let total = ref 0.0 in
  let samples = 64 in
  for _ = 1 to samples do
    let in_stage () = Array.exists (fun s -> Machine.get_pc m = s) adq.Interrupt.adq_stages in
    if not (Repro_harness.Harness.run_until m ~max_insns:10_000_000 in_stage) then
      failwith "ad: no interrupt";
    let s0 = Machine.snapshot m in
    if not (Repro_harness.Harness.run_until_user m ~max_insns:100_000) then failwith "ad: stuck";
    total := !total +. Machine.stats_us m (Machine.delta m s0)
  done;
  !total /. float_of_int samples

let ablation_buffered () =
  Repro_harness.Harness.header
    "Ablation: buffered A/D queue, blocking factor 8 vs 1";
  let buffered = measure_ad_cost ~factor:8 in
  let plain = measure_ad_cost ~factor:1 in
  Fmt.pr
    "average A/D interrupt cost: %.2f us at factor 8, %.2f us at factor 1@.\
     (mid-element interrupts are a ~5-instruction store; the element@.\
     bookkeeping amortizes over the blocking factor — at 44,100@.\
     interrupts/s the plain queue pays it every sample)@."
    buffered plain

(* ------------------------------------------------------------ *)
(* Fine-grain scheduling: adaptive quanta react to I/O rate. *)

let ablation_sched () =
  Repro_harness.Harness.header "Ablation: fine-grain scheduling (adaptive quanta)";
  let run ~adaptive =
    let b = Boot.boot () in
    let k = b.Boot.kernel in
    let m = k.Kernel.machine in
    let sched = if adaptive then Some (Scheduler.install k ()) else None in
    (* an I/O-bound thread (gauge ticks every loop) and a compute hog *)
    let io_prog tte_gauge =
      [
        I.Move (I.Imm 60_000, I.Reg I.r9);
        I.Label "loop";
        I.Alu_mem (I.Add, I.Imm 1, I.Abs tte_gauge);
        I.Dbra (I.r9, I.To_label "loop");
        I.Trap 0;
      ]
    in
    let hog_prog =
      [
        I.Move (I.Imm 400_000, I.Reg I.r9);
        I.Label "loop";
        I.Dbra (I.r9, I.To_label "loop");
        I.Trap 0;
      ]
    in
    let hog_entry, _ = Asm.assemble m hog_prog in
    let hog = Thread.create k ~quantum_us:200 ~entry:hog_entry () in
    (* the I/O thread's gauge address is known only after creation:
       create with a placeholder entry, then load its real program *)
    let io = Thread.create k ~quantum_us:200 ~entry:0 () in
    let gauge = io.Kernel.base + Layout.Tte.off_gauge in
    let entry, _ = Asm.assemble m (io_prog gauge) in
    Machine.poke m (io.Kernel.base + Layout.Tte.off_regs + 17) entry;
    (* the io program writes its own TTE gauge: allow it *)
    let segs = Machine.map_segments m ~id:io.Kernel.map_id in
    Machine.define_map m ~id:io.Kernel.map_id ((gauge, 1) :: segs);
    let s0 = Machine.snapshot m in
    (match Boot.go ~max_insns:100_000_000 b with _ -> ());
    ignore sched;
    ignore hog;
    let dt = Machine.stats_us m (Machine.delta m s0) in
    (dt, io.Kernel.quantum_us, hog.Kernel.quantum_us)
  in
  let fixed_dt, _, _ = run ~adaptive:false in
  let adapt_dt, io_q, hog_q = run ~adaptive:true in
  Fmt.pr
    "fixed quanta: both threads 200 us; total run %.0f us@.\
     adaptive:     I/O thread quantum -> %d us, hog -> %d us; total run %.0f us@.\
     (the I/O-rate gauge drives the quantum, %s4.4)@."
    fixed_dt io_q hog_q adapt_dt "\xc2\xa7"

(* ------------------------------------------------------------ *)
(* Peephole optimizer: its effect on generated code size and on the
   hot read path. *)

let ablation_peephole () =
  Repro_harness.Harness.header "Ablation: peephole optimizer on synthesized code";
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  (* compare raw template output with optimized output over every
     open-time template instantiated for a file *)
  let _file =
    Fs.create_file b.Boot.vfs ~name:"/data/x" ~content:(Array.make 64 1) ()
  in
  let spin, _ =
    Ksynth.install k ~name:"ab/spin" [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  let t = Thread.create k ~entry:spin () in
  (match Vfs.open_named b.Boot.vfs t "/data/x" with
  | Some _ -> ()
  | None -> failwith "open failed");
  (* measure raw-vs-optimized across the registered templates *)
  let templates =
    [
      ("file read", Fs.file_read_template,
       [ ("buf", 0x2000); ("size_cell", 0x3000); ("pos_cell", 0x3001); ("gauge", 0x3002) ]);
      ("file write", Fs.file_write_template,
       [ ("buf", 0x2000); ("cap", 4096); ("size_cell", 0x3000); ("pos_cell", 0x3001);
         ("gauge", 0x3002) ]);
      ("mpsc put", Kqueue.mpsc_put_template,
       [ ("head", 0x3100); ("tail", 0x3101); ("buf", 0x3200); ("flag", 0x3300);
         ("size", 16) ]);
    ]
  in
  Fmt.pr "%-14s %10s %12s@." "template" "raw insns" "after peephole";
  List.iter
    (fun (name, tmpl, env) ->
      let raw = Template.instantiate tmpl ~env in
      let opt = Peephole.optimize raw in
      Fmt.pr "%-14s %10d %12d@." name (Asm.length raw) (Asm.length opt))
    templates;
  Fmt.pr
    "(the hot templates are hand-minimal, so counts hold steady; where@.a generator writes naturally, the optimizer rewrites - multiply by@.the blocking factor becomes a shift, folded constants collapse:)@.";
  let naive =
    [
      I.Move (I.Abs 0x3400, I.Reg I.r1);
      I.Alu (I.Mul, I.Imm Interrupt.blocking_factor, I.r1); (* index * 8 *)
      I.Move (I.Imm 0x2000, I.Reg I.r4); (* base *)
      I.Alu (I.Add, I.Imm 0x40, I.r4); (* + element offset *)
      I.Alu (I.Add, I.Reg I.r4, I.r1);
      I.Move (I.Ind I.r1, I.Reg I.r0);
      I.Rts;
    ]
  in
  Fmt.pr "before:@.%a@.after:@.%a@." Asm.pp_listing naive Asm.pp_listing
    (Peephole.optimize naive)

(* ------------------------------------------------------------ *)
(* Clock scaling: §6.3 notes that at the native 50 MHz the same code
   runs about three times faster than in SUN-emulation mode. *)

let ablation_clock () =
  Repro_harness.Harness.header "Clock scaling: SUN 3/160 emulation vs native 50 MHz";
  let measure cost =
    let se = Repro_harness.Harness.synthesis_setup ~cost () in
    let env = se.Repro_harness.Harness.s_env in
    let program = Repro_harness.Programs.pipe_rw env ~chunk:256 ~iters:200 in
    Repro_harness.Harness.synthesis_run se ~program *. 1000.0
  in
  let emu = measure Cost.sun3_emulation in
  let native = measure Cost.native in
  Fmt.pr "200 x 1KiB pipe write+read: %.2f ms emulated, %.2f ms native (%.1fx; paper: ~3x)@."
    emu native (emu /. native)

(* ------------------------------------------------------------ *)
(* Collapsing Layers (§2.2, §5.4): the same filter operation invoked
   through three compositions — a collapsed procedure call, an
   optimistic queue drained by the same thread, and a pipe into
   another thread.  Each layer reintroduced costs real microseconds. *)

let ablation_collapse () =
  Repro_harness.Harness.header
    "Ablation: Collapsing Layers (us per item through the same filter)";
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let n = 512 in
  (* the filter: negate the item in r1 *)
  let filter, _ =
    Ksynth.install k ~name:"col/filter" [ I.Neg I.r1; I.Rts ]
  in
  let cn_call =
    Synthesizer.interface k ~name:"col/direct"
      ~producer:(Quaject.port Quaject.Active)
      ~consumer:(Quaject.port Quaject.Passive)
      ~consumer_entry:filter ()
  in
  let q = Kqueue.create ~kind:Kqueue.Spsc k ~name:"col/q" ~size:64 in
  let measure frag =
    let entry, _ = Asm.assemble m frag in
    Machine.set_halted m false;
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp 0xE00;
    Machine.set_pc m entry;
    let s0 = Machine.snapshot m in
    (match Machine.run ~max_insns:10_000_000 m with
    | Machine.Halted -> ()
    | Machine.Insn_limit -> failwith "collapse bench stuck");
    Machine.stats_us m (Machine.delta m s0) /. float_of_int n
  in
  (* collapsed: one Jsr per item *)
  let direct =
    measure
      [
        I.Move (I.Imm (n - 1), I.Reg I.r9);
        I.Label "loop";
        I.Move (I.Reg I.r9, I.Reg I.r1);
        I.Jsr (I.To_addr cn_call.Synthesizer.cn_call);
        I.Dbra (I.r9, I.To_label "loop");
        I.Halt;
      ]
  in
  (* layered, same thread: put into the queue, take it back, filter *)
  let queued =
    measure
      [
        I.Move (I.Imm (n - 1), I.Reg I.r9);
        I.Label "loop";
        I.Move (I.Reg I.r9, I.Reg I.r1);
        I.Jsr (I.To_addr q.Kqueue.q_put);
        I.Jsr (I.To_addr q.Kqueue.q_get);
        I.Jsr (I.To_addr filter);
        I.Dbra (I.r9, I.To_label "loop");
        I.Halt;
      ]
  in
  (* layered, cross-thread: a pipe into a consumer thread *)
  let se = Repro_harness.Harness.synthesis_setup () in
  let env = se.Repro_harness.Harness.s_env in
  let secs =
    Repro_harness.Harness.synthesis_run se
      ~program:(Repro_harness.Programs.pipe_rw env ~chunk:1 ~iters:n)
  in
  let piped = secs *. 1_000_000.0 /. float_of_int n /. 2.0 in
  Fmt.pr "collapsed procedure call: %6.2f us/item@." direct;
  Fmt.pr "optimistic queue (same thread): %6.2f us/item@." queued;
  Fmt.pr "pipe syscall round trip: %6.2f us/item@." piped;
  Fmt.pr "(the boot-time optimization of section 5.4 turns the first form@.";
  Fmt.pr " of the cooked-tty pipeline into exactly this procedure call)@."

let run () =
  ablation_collapse ();
  ablation_synthesis ();
  ablation_fp ();
  ablation_buffered ();
  ablation_sched ();
  ablation_peephole ();
  ablation_clock ()
