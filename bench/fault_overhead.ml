(* kfault overhead: the fault injector follows the same host-side
   observation discipline as the PMU — compiling a plan touches
   nothing, and even *arming* one only registers a host device whose
   events haven't fired yet.  A machine that never arms a plan must
   run the exact same instruction stream, cycle for cycle, as one
   built before kfault existed; and a machine with a plan armed but
   whose horizon lies beyond the run must still be cycle-identical.

   This bench proves both claims by running the pipe pipeline three
   ways and requiring identical cycle and instruction counts. *)

open Quamachine
open Synthesis

let workload ~fault () =
  let b = Boot.boot () in
  let m = b.Boot.kernel.Kernel.machine in
  let fi =
    match fault with
    | `None -> None
    | `Compiled ->
      (* a plan exists but is never armed *)
      ignore (Fault_inject.compile 42);
      None
    | `Armed_beyond ->
      (* armed, but every event is far past the end of the run: the
         injector device sits idle in the event queue and must not
         perturb a single cycle *)
      let plan =
        Fault_inject.make_plan ~seed:42
          [
            {
              Fault_inject.ev_after = 1_000_000_000;
              ev_action =
                Fault_inject.Spurious_irq
                  {
                    cpu = None;
                    level = Mmio_map.timer_level;
                    vector = Mmio_map.timer_vector;
                  };
            };
          ]
      in
      Some (Fault_inject.arm m plan)
  in
  let pl = Repro_harness.Harness.Pipeline.build ~total:2048 b in
  Repro_harness.Harness.Pipeline.run pl;
  (match fi with Some f -> Fault_inject.disarm m f | None -> ());
  (Machine.cycles m, Machine.insns_executed m)

let run () =
  Repro_harness.Harness.header
    "kfault overhead: fault-off runs are cycle- and instruction-identical";
  let plain_cy, plain_in = workload ~fault:`None () in
  let comp_cy, comp_in = workload ~fault:`Compiled () in
  let armed_cy, armed_in = workload ~fault:`Armed_beyond () in
  Fmt.pr "%-44s %12s %12s@." "configuration" "cycles" "insns";
  Fmt.pr "%-44s %12d %12d@." "plain machine (no kfault)" plain_cy plain_in;
  Fmt.pr "%-44s %12d %12d@." "plan compiled, never armed" comp_cy comp_in;
  Fmt.pr "%-44s %12d %12d@." "plan armed, horizon beyond the run" armed_cy
    armed_in;
  Bench_json.record ~table:"overhead" ~row:"fault_compiled"
    ~metric:"extra_cycles"
    (float_of_int (comp_cy - plain_cy));
  Bench_json.record ~table:"overhead" ~row:"fault_armed_idle"
    ~metric:"extra_cycles"
    (float_of_int (armed_cy - plain_cy));
  let free =
    plain_cy = comp_cy && plain_cy = armed_cy && plain_in = comp_in
    && plain_in = armed_in
  in
  Fmt.pr "kfault overhead: %d cycles%s@."
    (max (comp_cy - plain_cy) (armed_cy - plain_cy))
    (if free then " (exactly zero: faults are host-side injection only)"
     else "");
  if not free then failwith "fault_overhead: kfault perturbed the simulation"
