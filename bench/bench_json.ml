(* The machine-readable bench trajectory.

   Every table bench records its rows here as flat
   (table, row, metric, value) tuples; the driver serializes them to
   BENCH_tables.json after a run.  `bench compare` re-runs the tables
   and diffs the fresh numbers against a committed bench/baseline.json,
   failing on any >5% regression — the repo's perf regression gate.

   The format is deliberately flat so the loader below stays a
   ~40-line scanner instead of a JSON library dependency:

     { "schema": 1,
       "rows": [
         {"table":"table1","row":"pipe_1w","metric":"ratio","value":7.62},
         ... ] }

   Direction is encoded in the metric name: metrics ending in "ratio"
   or "mbps" are better when higher; everything else (us, s, cycles)
   is better when lower.

   Tolerance is per-row: tail percentiles are inherently noisier than
   medians (one recovered fault lands entirely in p999), so the base
   tolerance is scaled by a class derived from the metric name — p999
   4x, p99 2.5x, p90 2x, everything else 1x.  `compare` prints the
   class whenever it is not 1x. *)

type row = {
  bj_table : string;
  bj_row : string;
  bj_metric : string;
  bj_value : float;
}

let rows_rev : row list ref = ref []

let record ~table ~row ~metric value =
  rows_rev :=
    { bj_table = table; bj_row = row; bj_metric = metric; bj_value = value }
    :: !rows_rev

let rows () = List.rev !rows_rev
let clear () = rows_rev := []

let key r = Fmt.str "%s.%s.%s" r.bj_table r.bj_row r.bj_metric

let higher_is_better metric =
  let ends_with suf s =
    let ls = String.length suf and l = String.length s in
    l >= ls && String.sub s (l - ls) ls = suf
  in
  ends_with "ratio" metric || ends_with "mbps" metric

(* Per-row tolerance class: how much wider than the base tolerance
   this metric is allowed to swing before it counts as a regression.
   Keyed on the full (table, row, metric) so structurally noisy rows
   can be widened without loosening their whole table: the fs-crash
   recovery row depends on where the seeded cut lands relative to the
   intent-log commit sequence (replay vs no replay on the next boot),
   and the overhead row is a small difference of two burst times, so
   unrelated cost-model drift is amplified through the subtraction. *)
let tolerance_scale ?(table = "") ?(row = "") metric =
  let has_prefix p s =
    String.length s >= String.length p
    && String.sub s 0 (String.length p) = p
  in
  if table = "fs_crash" && has_prefix "recovery" row then 3.0
  else if table = "fs_crash" && row = "barrier_overhead" then 2.0
  else if has_prefix "p999" metric then 4.0
  else if has_prefix "p99" metric then 2.5
  else if has_prefix "p90" metric then 2.0
  else 1.0

(* ---------------------------------------------------------------- *)
(* Serialization *)

let write path =
  let oc = open_out path in
  output_string oc "{ \"schema\": 1,\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then output_string oc ",\n";
      output_string oc
        (Fmt.str "    {\"table\":%S,\"row\":%S,\"metric\":%S,\"value\":%.6g}"
           r.bj_table r.bj_row r.bj_metric r.bj_value))
    (rows ());
  output_string oc "\n] }\n";
  close_out oc

(* Minimal loader for the format [write] produces (and hand-edited or
   pretty-printed variants of it): scans for one object per '{',
   extracts the three string fields and the number.  Whitespace around
   the ':' is tolerated; table/row/metric names are slugs, so no
   escape handling is needed. *)

(* Position just past ["k"] and its colon, skipping whitespace. *)
let after_key seg k =
  let pat = Fmt.str "\"%s\"" k in
  let pl = String.length pat and sl = String.length seg in
  let rec find i =
    if i + pl > sl then None
    else if String.sub seg i pl = pat then Some (i + pl)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let skip j =
      let j = ref j in
      while !j < sl && (seg.[!j] = ' ' || seg.[!j] = '\t' || seg.[!j] = '\n') do
        incr j
      done;
      !j
    in
    let i = skip i in
    if i < sl && seg.[i] = ':' then Some (skip (i + 1)) else None

let field_str seg k =
  match after_key seg k with
  | Some start when start < String.length seg && seg.[start] = '"' -> (
    let start = start + 1 in
    match String.index_from_opt seg start '"' with
    | None -> None
    | Some stop -> Some (String.sub seg start (stop - start)))
  | _ -> None

let field_num seg k =
  let sl = String.length seg in
  match after_key seg k with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < sl
      && (match seg.[!stop] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr stop
    done;
    float_of_string_opt (String.sub seg start (!stop - start))

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let out = ref [] in
  List.iter
    (fun seg ->
      match
        (field_str seg "table", field_str seg "row", field_str seg "metric",
         field_num seg "value")
      with
      | Some t, Some r, Some m, Some v ->
        out := { bj_table = t; bj_row = r; bj_metric = m; bj_value = v } :: !out
      | _ -> ())
    (String.split_on_char '{' s);
  List.rev !out

(* ---------------------------------------------------------------- *)
(* Comparison: the regression gate *)

type verdict = Ok_same | Regressed of float | Improved of float | Missing

let compare_rows ~baseline ~current ~tolerance =
  let cur = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace cur (key r) r.bj_value) current;
  let verdicts =
    List.map
      (fun b ->
        let k = key b in
        match Hashtbl.find_opt cur k with
        | None -> (b, Missing)
        | Some v ->
          let base = b.bj_value in
          let rel =
            if base = 0.0 then (if v = 0.0 then 0.0 else infinity)
            else (v -. base) /. Float.abs base
          in
          let tol =
            tolerance
            *. tolerance_scale ~table:b.bj_table ~row:b.bj_row b.bj_metric
          in
          (* sign of "worse": lower-better metrics regress upward *)
          let worse = if higher_is_better b.bj_metric then -.rel else rel in
          if worse > tol then (b, Regressed rel)
          else if -.worse > tol then (b, Improved rel)
          else (b, Ok_same))
      baseline
  in
  let regressions =
    List.filter
      (fun (_, v) -> match v with Regressed _ | Missing -> true | _ -> false)
      verdicts
  in
  let improved =
    List.filter (fun (_, v) -> match v with Improved _ -> true | _ -> false)
      verdicts
  in
  Fmt.pr "%-44s %12s %12s %9s@." "table.row.metric" "baseline" "current" "delta";
  List.iter
    (fun (b, v) ->
      match v with
      | Ok_same -> ()
      | Missing -> Fmt.pr "%-44s %12.6g %12s %9s@." (key b) b.bj_value "-" "MISSING"
      | Regressed rel | Improved rel ->
        let cur_v = Option.get (Hashtbl.find_opt cur (key b)) in
        let scale = tolerance_scale ~table:b.bj_table ~row:b.bj_row b.bj_metric in
        Fmt.pr "%-44s %12.6g %12.6g %+8.1f%%%s%s@." (key b) b.bj_value cur_v
          (100.0 *. rel)
          (if scale <> 1.0 then Fmt.str " [tol x%.1f]" scale else "")
          (match v with Regressed _ -> "  REGRESSION" | _ -> ""))
    verdicts;
  let within = List.length verdicts - List.length regressions - List.length improved in
  Fmt.pr
    "@.%d metrics within %.0f%% (x their class), %d improved, %d \
     regressed/missing@."
    within
    (100.0 *. tolerance)
    (List.length improved) (List.length regressions);
  if improved <> [] then
    Fmt.pr "improvements beyond tolerance: refresh bench/baseline.json to lock them in@.";
  List.length regressions

let compare_files ~baseline_path ~current_path ~tolerance =
  compare_rows ~baseline:(load baseline_path) ~current:(load current_path)
    ~tolerance
