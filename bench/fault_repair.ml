(* kheal repair cost: cycles to detect and resynthesize a corrupted
   synthesized-code region, per region kind — a quaject operation, a
   thread's switch code, and a queue template — through both detection
   channels:

   - audit: the host-side checksum walk finds the dirty region and
     rebuilds it from its template + recorded invariants; the repair
     charges normal synthesis cost (the walk itself is free);
   - trap: the corrupted instruction executes, raises an illegal
     instruction fault, the handler repairs the containing region in
     place, and the retried instruction completes — measured end to
     end against the same call on clean code, and the op's side effect
     must happen exactly once.

   All costs are deterministic simulated cycles, recorded in the bench
   JSON trajectory and gated by `bench compare`. *)

open Quamachine
open Synthesis
module I = Insn

let region k name =
  match Kernel.find_region_by_name k name with
  | Some r -> r
  | None -> failwith ("fault_repair: no region " ^ name)

(* Corrupt one instruction mid-region, then measure one audit pass:
   detect (free) + resynthesize (charged). *)
let audit_repair_cycles k r =
  let m = k.Kernel.machine in
  Fault_inject.corrupt_code m
    ~addr:(r.Kernel.cr_entry + (r.Kernel.cr_len / 2))
    ~bit:5;
  if not (Kernel.region_dirty k r) then
    failwith ("fault_repair: corruption not visible in " ^ r.Kernel.cr_name);
  let before = Kernel.code_repairs_total k in
  let c0 = Machine.cycles m in
  let n = Kernel.audit_code ~origin:"bench" k in
  let cy = Machine.cycles m - c0 in
  if
    n <> 1
    || Kernel.region_dirty k r
    || Kernel.code_repairs_total k <> before + 1
  then failwith ("fault_repair: audit did not repair " ^ r.Kernel.cr_name);
  cy

let run () =
  Repro_harness.Harness.header "kheal repair cost (detect + resynthesize)";
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let alloc = k.Kernel.alloc in
  (* one region of each kind *)
  ignore (Kqueue.create ~kind:Kqueue.Mpmc k ~name:"bench/q" ~size:8);
  let idle, _ = Asm.assemble m [ I.Rts ] in
  let t = Thread.create k ~entry:idle ~quantum_us:1_000 () in
  let cell = Kalloc.alloc_zeroed alloc 4 in
  let tick_template =
    Template.make ~name:"tick" ~params:[ "cell" ] (fun p ->
        [ I.Alu_mem (I.Add, I.Imm 1, I.Abs (p "cell")); I.Rts ])
  in
  let qj =
    Synthesizer.create k ~name:"bench" ~data_words:4
      [ ("tick", tick_template, [ ("cell", cell) ]) ]
  in
  let kinds =
    [
      ("quaject_op", "quaject/bench/tick");
      ("switch_code", Printf.sprintf "ctx/t%d/sw_out" t.Kernel.tid);
      ("queue_template", "bench/q/put");
    ]
  in
  List.iter
    (fun (label, name) ->
      let r = region k name in
      let cy = audit_repair_cycles k r in
      Fmt.pr "%-44s %6d cycles  (%d insns resynthesized)@."
        (label ^ " (audit)") cy r.Kernel.cr_len;
      Bench_json.record ~table:"repair" ~row:(label ^ "_audit")
        ~metric:"cycles" (float_of_int cy))
    kinds;
  (* trap path, end to end: fault + repair + retry vs a clean call.
     Exceptions vector through vbr, so point it at a real table (the
     thread's private one — boot-level vbr is 0). *)
  Machine.set_vbr m (t.Kernel.base + Layout.Tte.off_vectors);
  let tick = Synthesizer.op_entry qj "tick" in
  let call () =
    let start, _ = Asm.assemble m [ I.Jsr (I.To_addr tick); I.Halt ] in
    Machine.set_halted m false;
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp 0xE00;
    let c0 = Machine.cycles m in
    Machine.set_pc m start;
    (match Machine.run ~max_insns:10_000 m with
    | Machine.Halted -> ()
    | Machine.Insn_limit -> failwith "fault_repair: call did not return");
    Machine.cycles m - c0
  in
  let clean = call () in
  let r = region k "quaject/bench/tick" in
  Fault_inject.corrupt_code m ~addr:r.Kernel.cr_entry ~bit:9;
  let before = Machine.peek m cell in
  let faulted = call () in
  if Kernel.region_dirty k r then
    failwith "fault_repair: trap path did not repair";
  if Machine.peek m cell <> before + 1 then
    failwith "fault_repair: retried op did not run exactly once";
  let delta = faulted - clean in
  Fmt.pr "%-44s %6d cycles  (clean call: %d)@." "quaject_op (trap, end to end)"
    delta clean;
  Bench_json.record ~table:"repair" ~row:"quaject_op_trap" ~metric:"cycles"
    (float_of_int delta)
