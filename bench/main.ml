(* Benchmark driver: regenerates every table and figure of the
   paper's evaluation (§6), plus the ablations called out in
   DESIGN.md.  Run with no arguments for the full suite. *)

let all_benches ~scale () =
  Table1.run ~scale ();
  Table2.run ();
  Table3.run ();
  Table4.run ();
  Table5.run ();
  Queues.run ();
  Ablations.run ();
  Sizes.run ();
  Host_queues.run ();
  Trace_overhead.run ();
  Bechamel_suite.run ()

open Cmdliner

let scale =
  let doc = "Divide Table 1 iteration counts by this factor." in
  Arg.(value & opt int 10 & info [ "scale" ] ~doc)

let cmd_of name f =
  Cmd.v (Cmd.info name) Term.(const (fun () -> f ()) $ const ())

let table1_cmd =
  Cmd.v (Cmd.info "table1")
    Term.(const (fun scale -> Table1.run ~scale ()) $ scale)

let all_cmd =
  Cmd.v (Cmd.info "all")
    Term.(const (fun scale -> all_benches ~scale ()) $ scale)

let main_cmd =
  let default = Term.(const (fun scale -> all_benches ~scale ()) $ scale) in
  Cmd.group ~default
    (Cmd.info "bench" ~doc:"Synthesis kernel reproduction benchmarks")
    [
      all_cmd;
      table1_cmd;
      cmd_of "table2" Table2.run;
      cmd_of "table3" Table3.run;
      cmd_of "table4" Table4.run;
      cmd_of "table5" Table5.run;
      cmd_of "queues" Queues.run;
      cmd_of "sizes" Sizes.run;
      cmd_of "host-queues" Host_queues.run;
      cmd_of "ablations" Ablations.run;
      cmd_of "trace-overhead" Trace_overhead.run;
      cmd_of "bechamel" Bechamel_suite.run;
    ]

let () = exit (Cmd.eval main_cmd)
