(* Benchmark driver: regenerates every table and figure of the
   paper's evaluation (§6), plus the ablations called out in
   DESIGN.md.  Run with no arguments for the full suite.

   The table benches also feed Bench_json; `tables` writes the
   machine-readable BENCH_tables.json and `compare` diffs a fresh run
   against the committed bench/baseline.json (>5% regression fails). *)

let emit_json path =
  Bench_json.write path;
  Fmt.pr "@.wrote %s (%d rows)@." path (List.length (Bench_json.rows ()))

(* The benches that report simulated time: deterministic, so their
   JSON rows are exactly reproducible run to run. *)
let json_benches ~scale () =
  Table1.run ~scale ();
  Table2.run ();
  Table3.run ();
  Table4.run ();
  Table5.run ();
  Trace_overhead.run ();
  Span_overhead.run ();
  Latency.run ();
  Pmu_overhead.run ();
  Fault_overhead.run ();
  Fault_recovery.run ();
  Fault_repair.run ();
  Fs_crash.run ();
  Synth_scale.run ();
  Smp_bench.run ();
  Serve.run ~scale ()

let all_benches ~scale () =
  json_benches ~scale ();
  Queues.run ();
  Ablations.run ();
  Sizes.run ();
  Host_queues.run ();
  Bechamel_suite.run ();
  emit_json "BENCH_tables.json"

let tables ~scale ~out () =
  json_benches ~scale ();
  emit_json out

let compare_run ~scale ~baseline ~tolerance () =
  json_benches ~scale ();
  emit_json "BENCH_tables.json";
  Fmt.pr "@.comparing against %s (tolerance %.0f%%):@.@." baseline
    (100.0 *. tolerance);
  let base_rows = Bench_json.load baseline in
  (* a gate that compares against nothing passes vacuously — refuse *)
  if base_rows = [] then begin
    Fmt.epr "bench compare: no rows parsed from %s@." baseline;
    exit 1
  end;
  let regressions =
    Bench_json.compare_rows ~baseline:base_rows
      ~current:(Bench_json.rows ()) ~tolerance
  in
  if regressions > 0 then begin
    Fmt.epr "bench compare: %d regression(s) beyond %.0f%%@." regressions
      (100.0 *. tolerance);
    exit 1
  end

open Cmdliner

let scale =
  let doc = "Divide Table 1 iteration counts by this factor." in
  Arg.(value & opt int 10 & info [ "scale" ] ~doc)

let cmd_of name f =
  Cmd.v (Cmd.info name) Term.(const (fun () -> f ()) $ const ())

let table1_cmd =
  Cmd.v (Cmd.info "table1")
    Term.(const (fun scale -> Table1.run ~scale ()) $ scale)

(* Standalone `bench serve` defaults to scale 1 — the full 12,000
   client sessions — where the suite-wide default of 10 keeps the
   all/tables/compare runs quick. *)
let serve_cmd =
  let serve_scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Divide client counts.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Network serving stack: throughput and latency")
    Term.(const (fun scale -> Serve.run ~scale ()) $ serve_scale)

let all_cmd =
  Cmd.v (Cmd.info "all")
    Term.(const (fun scale -> all_benches ~scale ()) $ scale)

let tables_cmd =
  let out =
    Arg.(
      value
      & opt string "BENCH_tables.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"JSON output path")
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Run the table benches and write machine-readable BENCH_tables.json")
    Term.(const (fun scale out -> tables ~scale ~out ()) $ scale $ out)

let compare_cmd =
  let baseline =
    Arg.(
      value
      & opt string "bench/baseline.json"
      & info [ "baseline" ] ~docv:"FILE" ~doc:"Committed baseline to diff against")
  in
  let tolerance =
    Arg.(
      value & opt float 0.05
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:"Relative regression tolerance (default 0.05 = 5%)")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Re-run the table benches and fail on any metric regressing more \
          than the tolerance vs the committed baseline")
    Term.(
      const (fun scale baseline tolerance ->
          compare_run ~scale ~baseline ~tolerance ())
      $ scale $ baseline $ tolerance)

let main_cmd =
  let default = Term.(const (fun scale -> all_benches ~scale ()) $ scale) in
  Cmd.group ~default
    (Cmd.info "bench" ~doc:"Synthesis kernel reproduction benchmarks")
    [
      all_cmd;
      tables_cmd;
      compare_cmd;
      table1_cmd;
      cmd_of "table2" Table2.run;
      cmd_of "table3" Table3.run;
      cmd_of "table4" Table4.run;
      cmd_of "table5" Table5.run;
      cmd_of "queues" Queues.run;
      cmd_of "sizes" Sizes.run;
      cmd_of "host-queues" Host_queues.run;
      cmd_of "ablations" Ablations.run;
      cmd_of "trace-overhead" Trace_overhead.run;
      cmd_of "span-overhead" Span_overhead.run;
      cmd_of "latency" Latency.run;
      cmd_of "pmu-overhead" Pmu_overhead.run;
      cmd_of "fault-overhead" Fault_overhead.run;
      cmd_of "fault-recovery" Fault_recovery.run;
      cmd_of "fault-repair" Fault_repair.run;
      cmd_of "synth-scale" Synth_scale.run;
      cmd_of "smp" Smp_bench.run;
      serve_cmd;
      cmd_of "bechamel" Bechamel_suite.run;
    ]

let () = exit (Cmd.eval main_cmd)
