(* kSMP throughput scaling: one fixed compute workload, run to
   completion on 1, 2, and 4 cores.

   Eight independent compute-bound workers (4000 memory increments
   each) are pinned round-robin across the cores; completion time is
   the frontier — the busiest core's cycle count — so the speedup over
   the 1-core run is the real parallel scaling of the machine model
   plus the per-CPU scheduler (switch overhead, per-core timers, ring
   maintenance), not an idealised work/cores quotient.

   A second variant starts all eight workers homed on core 0 with only
   work-stealer devices on the other three cores: the speedup it
   recovers is what the stealing path buys, and the steal count proves
   the balancing actually ran.  Both variants are deterministic, so
   the rows gate in `bench compare`. *)

open Quamachine
open Synthesis
module I = Insn

let workers = 8
let per_worker = 4_000

let worker_prog cell =
  [
    I.Move (I.Imm (per_worker - 1), I.Reg I.r9);
    I.Label "loop";
    I.Alu_mem (I.Add, I.Imm 1, I.Abs cell);
    I.Dbra (I.r9, I.To_label "loop");
    I.Trap 0;
  ]

(* Run the workload and return the completion frontier in cycles.
   [home] picks each worker's home core; [stealers] adds a stealer
   device per non-zero core. *)
let run_workload ~cores ~home ~stealers =
  let b = Boot.boot ~cores () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cells = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  for i = 0 to workers - 1 do
    let entry, _ = Asm.assemble m (worker_prog (cells + i)) in
    ignore
      (Thread.create k ~cpu:(home i) ~entry ~quantum_us:500
         ~segments:[ (cells, 16) ] ())
  done;
  if stealers then
    for c = 1 to cores - 1 do
      ignore (Smp.install_stealer k ~cpu:c ~period_us:300 ())
    done;
  (match Boot.go ~max_insns:50_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "smp bench: workload did not complete");
  for i = 0 to workers - 1 do
    if Machine.peek m (cells + i) <> per_worker then
      failwith "smp bench: lost increments"
  done;
  (Machine.max_core_cycles m, Smp.steals k)

let run () =
  Repro_harness.Harness.header "kSMP throughput scaling";
  Fmt.pr "%d workers x %d increments, pinned round-robin@." workers per_worker;
  let base = ref 0 in
  List.iter
    (fun cores ->
      let cycles, _ =
        run_workload ~cores ~home:(fun i -> i mod cores) ~stealers:false
      in
      if cores = 1 then base := cycles;
      let speedup = float_of_int !base /. float_of_int cycles in
      Fmt.pr "%-32s %10d cycles  %6.2fx@."
        (Fmt.str "pinned, %d core%s" cores (if cores = 1 then "" else "s"))
        cycles speedup;
      let row = Fmt.str "cores_%d" cores in
      Bench_json.record ~table:"smp" ~row ~metric:"cycles"
        (float_of_int cycles);
      if cores > 1 then
        Bench_json.record ~table:"smp" ~row ~metric:"speedup_ratio" speedup)
    [ 1; 2; 4 ];
  (* all work starts on core 0; stealers must spread it *)
  let cycles, steals =
    run_workload ~cores:4 ~home:(fun _ -> 0) ~stealers:true
  in
  let speedup = float_of_int !base /. float_of_int cycles in
  Fmt.pr "%-32s %10d cycles  %6.2fx  (%d steals)@." "stolen, 4 cores" cycles
    speedup steals;
  if steals < 1 then failwith "smp bench: stealers never stole";
  Bench_json.record ~table:"smp" ~row:"steal_4" ~metric:"cycles"
    (float_of_int cycles);
  Bench_json.record ~table:"smp" ~row:"steal_4" ~metric:"speedup_ratio" speedup
