(* Span overhead: like ktrace, the probes kspan splices into
   synthesized code exist only when the span layer is enabled at
   synthesis time — with spans off the probe fragments are empty, so a
   span-capable kernel and a plain kernel run *identical* instruction
   streams.  Same three-way proof as trace_overhead:

     plain            no span layer attached at all
     attached-off     spans attached but disabled before synthesis
     attached-on      spans attached and enabled (probes compiled in)

   plain and attached-off must agree to the cycle (and `bench compare`
   additionally pins the plain number against the committed pre-kspan
   baseline); attached-on pays one Hcall (2 cycles) per probe site the
   workload crosses. *)

open Quamachine
open Synthesis

let workload_cycles ~spans () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  (match spans with
  | `None -> ()
  | `Off -> ignore (Kernel.attach_spans ~enabled:false k)
  | `On -> ignore (Kernel.attach_spans k));
  let pl = Repro_harness.Harness.Pipeline.build ~total:2048 b in
  Repro_harness.Harness.Pipeline.run pl;
  Machine.cycles m

let run () =
  Repro_harness.Harness.header
    "kspan overhead: span probes are synthesized, not branched over";
  let plain = workload_cycles ~spans:`None () in
  let off = workload_cycles ~spans:`Off () in
  let on = workload_cycles ~spans:`On () in
  Fmt.pr "%-44s %12s@." "configuration" "cycles";
  Fmt.pr "%-44s %12d@." "plain kernel (no kspan)" plain;
  Fmt.pr "%-44s %12d@." "kspan attached, disabled at synthesis" off;
  Fmt.pr "%-44s %12d@." "kspan attached, probes compiled in" on;
  Fmt.pr "spans-off overhead: %d cycles%s@." (off - plain)
    (if off = plain then " (exactly zero: identical instruction streams)"
     else "");
  Fmt.pr "spans-on overhead:  %d cycles (%.2f%%)@." (on - plain)
    (100.0 *. float_of_int (on - plain) /. float_of_int plain);
  Bench_json.record ~table:"overhead" ~row:"span_off" ~metric:"extra_cycles"
    (float_of_int (off - plain));
  Bench_json.record ~table:"overhead" ~row:"span_on" ~metric:"extra_cycles"
    (float_of_int (on - plain));
  if off <> plain then failwith "span_overhead: spans-off overhead is not zero";
  (* the plain pipeline itself must not have drifted either: the same
     number is recorded by trace_overhead and gated by bench compare
     against the pre-kspan baseline *)
  ()
