(* kfault recovery latency: how long the kernel takes to notice and
   repair an injected fault.

   Three recovery paths, each with its own detector:
   - a dropped quantum-timer completion (lost-interrupt livelock),
     caught by the flow-rate watchdog re-arming the timer;
   - a stalled disk completion, caught by the disk server's
     completion watchdog re-issuing the transfer;
   - a dropped disk completion, the same detector's worst case.

   Reported in simulated microseconds from the moment the fault takes
   effect to the moment the affected flow makes progress again, and
   recorded in the bench JSON trajectory. *)

open Quamachine
open Synthesis
module E = Repro_harness.Explorer

let us_of_cycles m cy =
  float_of_int cy /. float_of_int (Cost.cycles_of_us (Machine.cost_model m) 1.0)

let run () =
  Repro_harness.Harness.header "kfault recovery latency";
  (* one boot just to convert cycles to us with the active cost model *)
  let m0 = (Boot.boot ()).Boot.kernel.Kernel.machine in
  let tl = E.timer_loss ~seed:1 () in
  if tl.E.tl_restarts < 1 || tl.E.tl_recovery_cycles <= 0 then
    failwith "fault_recovery: timer loss was not recovered";
  let tl_us = us_of_cycles m0 tl.E.tl_recovery_cycles in
  Fmt.pr "%-44s %10.1f us  (%d watchdog restart%s)@."
    "timer completion dropped -> flow resumes" tl_us tl.E.tl_restarts
    (if tl.E.tl_restarts = 1 then "" else "s");
  let disk name mode =
    let d = E.disk_fault ~seed:1 ~mode () in
    if (not d.E.df_completed) || d.E.df_retries < 1 then
      failwith ("fault_recovery: disk " ^ name ^ " was not recovered");
    let us = us_of_cycles m0 d.E.df_recovery_cycles in
    Fmt.pr "%-44s %10.1f us  (%d timeout%s, %d retr%s)@."
      ("disk completion " ^ name ^ " -> read completes")
      us d.E.df_timeouts
      (if d.E.df_timeouts = 1 then "" else "s")
      d.E.df_retries
      (if d.E.df_retries = 1 then "y" else "ies");
    us
  in
  let stall_us = disk "stalled" E.Disk_stall in
  let drop_us = disk "dropped" E.Disk_drop in
  Bench_json.record ~table:"recovery" ~row:"timer_drop" ~metric:"us" tl_us;
  Bench_json.record ~table:"recovery" ~row:"disk_stall" ~metric:"us" stall_us;
  Bench_json.record ~table:"recovery" ~row:"disk_drop" ~metric:"us" drop_us
