(* synth-scale: the memoizing synthesis cache at open/close scale.

   Opens and closes 100k pipes against one kernel.  Before ksynth,
   every attach ran the full synthesizer and appended fresh code — the
   code store grew linearly in opens and every open paid generation
   cost.  With the cache, the first open synthesizes and every later
   open of the recycled pipe carcass is a content-addressed hit, so
   cycles per open collapse and peak code bytes go flat (sublinear in
   opens).

   A second phase churns thread batches under a tight per-kind code
   budget to drive the eviction/resynthesis path: destroyed threads
   leave their dispatcher pages cached at refcount zero, the cap
   evicts them to recipes, and the next batch's instantiations at the
   recycled TTE bases resynthesize from those recipes.

   Everything here is host-driven and deterministic: with faults off,
   twin runs are cycle-identical, which is what lets `bench compare`
   gate these numbers at 5%. *)

open Quamachine
open Synthesis
module I = Insn

let opens = 100_000

let run () =
  Repro_harness.Harness.header
    "synth-scale: memoizing synthesis at open/close scale";
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let vfs = b.Boot.vfs in
  let entry, _ = Asm.assemble m [ I.Trap 0 ] in
  let t = Thread.create k ~entry () in
  let open_close () =
    let p = Kpipe.create k ~cap:1024 () in
    let rfd, wfd = Kpipe.attach vfs p t in
    ignore (Vfs.close_fd vfs t rfd);
    ignore (Vfs.close_fd vfs t wfd)
  in
  (* phase 1: cold open, then the warm steady state *)
  let c0 = Machine.cycles m in
  open_close ();
  let cold = Machine.cycles m - c0 in
  for _ = 2 to 100 do
    open_close ()
  done;
  let words_100 = (Ksynth.stats k).Ksynth.st_footprint_words in
  let c1 = Machine.cycles m in
  for _ = 101 to opens do
    open_close ()
  done;
  let warm = (Machine.cycles m - c1) / (opens - 100) in
  let words_all = (Ksynth.stats k).Ksynth.st_footprint_words in
  let speedup = float_of_int cold /. float_of_int (max 1 warm) in
  Fmt.pr "%d pipe open/close pairs against one kernel:@." opens;
  Fmt.pr "  cold open/close        %8d cycles@." cold;
  Fmt.pr "  warm open/close        %8d cycles (%.1fx cheaper)@." warm speedup;
  Fmt.pr "  code store after 100   %8d words@." words_100;
  Fmt.pr "  code store after %dk  %8d words@." (opens / 1000) words_all;
  if speedup < 5.0 then
    failwith (Fmt.str "synth-scale: warm open only %.1fx cheaper than cold" speedup);
  if words_all > words_100 then
    failwith "synth-scale: code store grew past the 100-open working set";
  (* phase 2: thread churn under a tight per-kind code budget *)
  let cap = 128 in
  Ksynth.set_cap k ~kind:"thread" cap;
  Ksynth.set_cap k ~kind:"ctx" cap;
  for _round = 1 to 8 do
    let ts = List.init 12 (fun _ -> Thread.create k ~entry ()) in
    List.iter (fun tt -> Thread.destroy k tt) ts
  done;
  let s = Ksynth.stats k in
  let total = s.Ksynth.st_hits + s.Ksynth.st_misses in
  let hit_ratio = float_of_int s.Ksynth.st_hits /. float_of_int (max 1 total) in
  let peak_bytes = 4 * s.Ksynth.st_footprint_words in
  Fmt.pr "@.8 rounds of 12-thread churn under a %d-word/kind budget:@." cap;
  Fmt.pr
    "  %d hits, %d misses (%.4f hit ratio), %d evictions, %d resynthesized@."
    s.Ksynth.st_hits s.Ksynth.st_misses hit_ratio s.Ksynth.st_evictions
    s.Ksynth.st_resynth;
  Fmt.pr "  peak code bytes %d (%d pages cached, %d words live)@." peak_bytes
    s.Ksynth.st_cached_pages s.Ksynth.st_live_words;
  if s.Ksynth.st_evictions = 0 then failwith "synth-scale: no evictions";
  if s.Ksynth.st_resynth = 0 then failwith "synth-scale: no resynthesis";
  Bench_json.record ~table:"synth_scale" ~row:"pipe_open" ~metric:"cold_cycles"
    (float_of_int cold);
  Bench_json.record ~table:"synth_scale" ~row:"pipe_open" ~metric:"warm_cycles"
    (float_of_int warm);
  Bench_json.record ~table:"synth_scale" ~row:"pipe_open"
    ~metric:"warm_speedup_ratio" speedup;
  Bench_json.record ~table:"synth_scale" ~row:"code" ~metric:"peak_code_bytes"
    (float_of_int peak_bytes);
  Bench_json.record ~table:"synth_scale" ~row:"cache" ~metric:"hit_ratio"
    hit_ratio;
  Bench_json.record ~table:"synth_scale" ~row:"cache" ~metric:"evictions"
    (float_of_int s.Ksynth.st_evictions);
  Bench_json.record ~table:"synth_scale" ~row:"cache" ~metric:"resynth"
    (float_of_int s.Ksynth.st_resynth)
