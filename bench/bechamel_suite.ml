(* Bechamel wrapping: one Test.make per table.

   The tables themselves are *simulated-time* measurements (exact,
   deterministic, printed by the table commands); what Bechamel
   measures here is host wall-time of running each table's core
   workload on the simulator — a regression check on the simulator
   and kernel implementation, and the harness the task of
   re-benchmarking lives in. *)

open Bechamel
open Toolkit
module H = Repro_harness.Harness
module P = Repro_harness.Programs

let table1_pipe () =
  let se = H.synthesis_setup () in
  ignore (H.synthesis_run se ~program:(P.pipe_rw se.H.s_env ~chunk:64 ~iters:50))

let table1_compute () =
  let se = H.synthesis_setup () in
  ignore
    (H.synthesis_run se ~program:(P.compute ~arr:se.H.s_env.P.e_arr ~n:2_000))

let table2_openclose () =
  let se = H.synthesis_setup () in
  ignore
    (H.synthesis_run se
       ~program:(P.open_close ~name_addr:se.H.s_env.P.e_name_null ~iters:25))

let table3_threads () =
  let b = Synthesis.Boot.boot () in
  let k = b.Synthesis.Boot.kernel in
  let spin, _ =
    Synthesis.Ksynth.install k ~name:"bb/spin"
      Quamachine.Insn.[ Label "s"; B (Always, To_label "s") ]
  in
  for _ = 1 to 8 do
    let t = Synthesis.Thread.create k ~entry:spin () in
    Synthesis.Thread.stop k t;
    Synthesis.Thread.start k t;
    Synthesis.Thread.destroy k t
  done

let table4_switches () =
  let se = H.synthesis_setup () in
  (* two competing threads force switches for a few quanta *)
  let k = se.H.s_boot.Synthesis.Boot.kernel in
  let m = k.Synthesis.Kernel.machine in
  let spin n =
    Quamachine.Insn.
      [ Move (Imm n, Reg 9); Label "s"; Dbra (9, To_label "s"); Trap 0 ]
  in
  let e1, _ = Quamachine.Asm.assemble m (spin 20_000) in
  let e2, _ = Quamachine.Asm.assemble m (spin 20_000) in
  let _t1 = Synthesis.Thread.create k ~quantum_us:100 ~entry:e1 () in
  let _t2 = Synthesis.Thread.create k ~quantum_us:100 ~entry:e2 () in
  ignore (Synthesis.Boot.go ~max_insns:10_000_000 se.H.s_boot)

let table5_interrupts () =
  let b = Synthesis.Boot.boot () in
  let k = b.Synthesis.Boot.kernel in
  let _adq = Synthesis.Interrupt.install_adq k ~n_elems:16 () in
  let m = k.Synthesis.Kernel.machine in
  (match Synthesis.Kernel.anchor k 0 with
  | Some t ->
    Quamachine.Machine.set_supervisor m true;
    Quamachine.Machine.set_reg m Quamachine.Insn.sp Synthesis.Layout.boot_stack_top;
    Quamachine.Machine.set_ipl m 0;
    Quamachine.Machine.set_pc m t.Synthesis.Kernel.sw_in_mmu
  | None -> ());
  Quamachine.Devices.Ad.set_rate k.Synthesis.Kernel.ad 44_100;
  ignore (Quamachine.Machine.run ~max_insns:100_000 m)

let tests =
  Test.make_grouped ~name:"tables" ~fmt:"%s %s"
    [
      Test.make ~name:"table1 pipes" (Staged.stage table1_pipe);
      Test.make ~name:"table1 compute" (Staged.stage table1_compute);
      Test.make ~name:"table2 open/close" (Staged.stage table2_openclose);
      Test.make ~name:"table3 thread ops" (Staged.stage table3_threads);
      Test.make ~name:"table4 switches" (Staged.stage table4_switches);
      Test.make ~name:"table5 interrupts" (Staged.stage table5_interrupts);
    ]

let run () =
  H.header "Bechamel: host-time per table workload (simulator regression)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  Fmt.pr "%-36s %14s@." "benchmark" "host ms/run";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Fmt.pr "%-36s %14.2f@." name (est /. 1e6)
      | _ -> Fmt.pr "%-36s %14s@." name "n/a")
    results
