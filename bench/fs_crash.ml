(* kcrash: what power-cut safety costs.

   Two rows price the clean path: one append burst (appends + sync)
   with every mechanism off (no barriers, no intent log — the
   eatmydata configuration) and the same burst with barriers +
   journaling on; barrier_overhead is their relative cost in percent.

   Two more rows price the reboot side: remounting a cleanly synced
   image, and remounting after a device-level power cut fired in the
   middle of the burst — boot-time intent-log replay plus whatever
   directory work the mount re-does.  All in simulated microseconds,
   recorded in the bench JSON trajectory and gated by `bench compare`
   with a wider tolerance class on the recovery row (where the cut
   lands relative to the commit sequence decides how much replay
   work the next boot inherits). *)

open Quamachine
open Synthesis
module I = Insn

let us_of_cycles m cy =
  float_of_int cy /. float_of_int (Cost.cycles_of_us (Machine.cost_model m) 1.0)

let bwords = Disk_server.block_words
let bursts = 8
let chunk = bwords + 17

let chunk_data i =
  Array.init chunk (fun j -> 1 + (((i * 131) + (j * 7) + 13) land 0x3FFF))

let burst dfs =
  for i = 0 to bursts - 1 do
    Dfs.append dfs "log" (chunk_data i)
  done;
  Dfs.sync dfs

(* Boot, format, mount with [mech], settle, then time the burst. *)
let timed_burst mech =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  Dfs.format k ~capacities:[ ("log", 4 + (bursts * 2)) ]
    ~files:[ ("log", chunk_data 99) ]
    ();
  let ds = Disk_server.install k () in
  (match Kernel.idle_of k 0 with
  | Some t ->
    let m = k.Kernel.machine in
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 0;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> failwith "fs_crash: no idle thread");
  let dfs = Dfs.mount ~mechanisms:mech ~budget:20_000_000 b.Boot.vfs ds in
  Dfs.sync dfs;
  let m = k.Kernel.machine in
  let c0 = Machine.cycles m in
  burst dfs;
  let cy = Machine.cycles m - c0 in
  (match Dfs.read_file dfs "log" with
  | Some c when Array.length c = Array.length (chunk_data 99) + (bursts * chunk)
    -> ()
  | _ -> failwith "fs_crash: burst did not land");
  (b, dfs, cy)

(* Reboot a platter image through at-boot recovery and time boot →
   halt (recovery-only boots halt once the mount hook finishes). *)
let timed_remount img =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  Devices.Disk.load_image k.Kernel.disk img;
  let ds = Disk_server.install k () in
  let get = Dfs.mount_at_boot ~budget:20_000_000 b b.Boot.vfs ds in
  let m = k.Kernel.machine in
  let c0 = Machine.cycles m in
  (match Boot.go ~max_insns:200_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "fs_crash: remount did not settle");
  let cy = Machine.cycles m - c0 in
  Machine.set_halted m false;
  match get () with
  | None -> failwith "fs_crash: mount never ran at boot"
  | Some dfs ->
    if Dfs.read_file dfs "log" = None then
      failwith "fs_crash: file lost across reboot";
    (cy, Metrics.read k.Kernel.metrics "dfs.replays")

let run () =
  Repro_harness.Harness.header "kcrash: crash-consistency cost";
  let unsafe_mech = { Dfs.m_barriers = false; m_journal = false } in
  let _, _, unsafe_cy = timed_burst unsafe_mech in
  let b_safe, _, safe_cy = timed_burst Dfs.all_mechanisms in
  let m0 = b_safe.Boot.kernel.Kernel.machine in
  let clean_img = Devices.Disk.image b_safe.Boot.kernel.Kernel.disk in
  let unsafe_us = us_of_cycles m0 unsafe_cy in
  let safe_us = us_of_cycles m0 safe_cy in
  let overhead_pct = 100.0 *. (safe_us -. unsafe_us) /. unsafe_us in
  Fmt.pr "%-44s %10.1f us@." "append burst, mechanisms off" unsafe_us;
  Fmt.pr "%-44s %10.1f us@." "append burst, barriers + intent log" safe_us;
  Fmt.pr "%-44s %10.1f %%@." "barrier + journal overhead" overhead_pct;
  (* Mid-burst power cut on the safe configuration.  The interesting
     reboot is one that inherits an open intent (log header state=1 on
     the platter), so probe cut cycles across the burst window and
     keep the first image the cut caught mid-commit; if every probe
     lands between commits, fall back to the mid-burst image. *)
  let cut_image_at ev_after =
    let b = Boot.boot () in
    let k = b.Boot.kernel in
    Dfs.format k ~capacities:[ ("log", 4 + (bursts * 2)) ]
      ~files:[ ("log", chunk_data 99) ]
      ();
    let ds = Disk_server.install k () in
    (match Kernel.idle_of k 0 with
    | Some t ->
      let m = k.Kernel.machine in
      Machine.set_supervisor m true;
      Machine.set_reg m I.sp Layout.boot_stack_top;
      Machine.set_ipl m 0;
      Machine.set_pc m t.Kernel.sw_in_mmu
    | None -> failwith "fs_crash: no idle thread");
    let m = k.Kernel.machine in
    let dfs = Dfs.mount ~budget:3_000_000 b.Boot.vfs ds in
    Dfs.sync dfs;
    let fi =
      Fault_inject.arm m
        (Fault_inject.make_plan ~seed:1
           [
             {
               Fault_inject.ev_after;
               ev_action = Fault_inject.Power_cut { device = "disk"; torn_words = 7 };
             };
           ])
    in
    (try burst dfs with Failure _ | Invalid_argument _ -> ());
    Fault_inject.disarm m fi;
    if Devices.Disk.powered k.Kernel.disk then
      failwith "fs_crash: power cut never fired";
    let img = Devices.Disk.image k.Kernel.disk in
    (img, img.(Dfs.log_header_block).(1) = 1)
  in
  let cut_img =
    let probes = 16 in
    let rec scan i =
      if i > probes then fst (cut_image_at (safe_cy / 2))
      else
        let img, mid_commit = cut_image_at (i * safe_cy / (probes + 1)) in
        if mid_commit then img else scan (i + 1)
    in
    scan 1
  in
  let clean_cy, _ = timed_remount clean_img in
  let cut_cy, replays = timed_remount cut_img in
  let clean_us = us_of_cycles m0 clean_cy in
  let cut_us = us_of_cycles m0 cut_cy in
  Fmt.pr "%-44s %10.1f us@." "remount, clean image" clean_us;
  Fmt.pr "%-44s %10.1f us  (%d intent-log replay%s)@."
    "remount after mid-burst power cut" cut_us replays
    (if replays = 1 then "" else "s");
  Bench_json.record ~table:"fs_crash" ~row:"append_unsafe" ~metric:"us" unsafe_us;
  Bench_json.record ~table:"fs_crash" ~row:"append_safe" ~metric:"us" safe_us;
  Bench_json.record ~table:"fs_crash" ~row:"barrier_overhead" ~metric:"pct"
    overhead_pct;
  Bench_json.record ~table:"fs_crash" ~row:"remount_clean" ~metric:"us" clean_us;
  Bench_json.record ~table:"fs_crash" ~row:"recovery_cut" ~metric:"us" cut_us
