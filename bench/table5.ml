(* Table 5: interrupt handling in microseconds — raw TTY and A/D
   interrupt service, alarms, and procedure chaining. *)

open Quamachine
open Synthesis
module I = Insn
module U = Unix_emulator.Unix_abi

let start_machine k =
  let m = k.Kernel.machine in
  match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> failwith "start_machine: empty ready queue"

let busy_thread k =
  let busy, _ =
    Ksynth.install k ~name:"bench/busy"
      [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  Thread.create k ~quantum_us:100_000 ~entry:busy ()

(* Measure one interrupt service: from the handler's first instruction
   back to user mode. *)
let measure_irq_span m ~handler_entry =
  if not (Repro_harness.Harness.run_until_pc m ~max_insns:10_000_000 handler_entry) then
    failwith "measure_irq_span: interrupt never delivered";
  let s0 = Machine.snapshot m in
  if not (Repro_harness.Harness.run_until_user m ~max_insns:100_000) then
    failwith "measure_irq_span: handler never returned";
  Machine.stats_us m (Machine.delta m s0)

let measure_tty_irq () =
  let b = Boot.boot () in
  let vfs = b.Boot.vfs in
  let k = b.Boot.kernel in
  let _srv = Tty.install vfs in
  let _t = busy_thread k in
  start_machine k;
  ignore (Repro_harness.Harness.run_until_user k.Kernel.machine ~max_insns:1_000_000);
  Devices.Tty.feed k.Kernel.tty "x";
  let handler_entry = k.Kernel.default_vectors.(Mmio_map.tty_vector) in
  measure_irq_span k.Kernel.machine ~handler_entry

let measure_ad_irq () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let adq = Interrupt.install_adq k ~n_elems:16 () in
  let _t = busy_thread k in
  start_machine k;
  ignore (Repro_harness.Harness.run_until_user k.Kernel.machine ~max_insns:1_000_000);
  Devices.Ad.set_rate k.Kernel.ad 44_100;
  (* measure a mid-element stage (no element-boundary bookkeeping) *)
  let stage = adq.Interrupt.adq_stages.(2) in
  let span = measure_irq_span k.Kernel.machine ~handler_entry:stage in
  (adq, span)

let measure_alarm () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Boot.kernel in
  let m = k.Kernel.machine in
  let stamps = se.Repro_harness.Harness.s_stamps in
  let mark = Repro_harness.Harness.Stamps.mark stamps in
  let handler, _ = Ksynth.install k ~name:"bench/sig_h" [ I.Rts ] in
  let program =
    [
      (* register a handler so the alarm signal has a target *)
      I.Move (I.Imm handler, I.Reg I.r1);
      I.Trap 8;
      mark;
      I.Move (I.Imm 200, I.Reg I.r1);
      I.Trap 7; (* set alarm: 200 us *)
      mark;
      I.Move (I.Imm 100_000, I.Reg I.r9);
      I.Label "spin";
      I.Dbra (I.r9, I.To_label "spin");
      I.Move (I.Imm U.sys_exit, I.Reg I.r0);
      I.Trap U.trap;
    ]
  in
  let entry, _ = Asm.assemble m program in
  let _t = Thread.create k ~entry () in
  (* run until the alarm interrupt is vectored, then measure it *)
  (match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> failwith "no thread");
  let alarm_entry = k.Kernel.default_vectors.(Mmio_map.alarm_vector) in
  let alarm_irq_us = measure_irq_span m ~handler_entry:alarm_entry in
  (match Machine.run ~max_insns:10_000_000 m with _ -> ());
  let set_alarm_us =
    match Repro_harness.Harness.Stamps.spans stamps with
    | set_us :: _ -> set_us
    | [] -> failwith "alarm: no spans"
  in
  (set_alarm_us, alarm_irq_us)

(* Procedure chaining: build a fake interrupt frame, chain a no-op
   kernel procedure, measure the chain call; with and without a forced
   CAS retry. *)
let measure_chain ~force_retry () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let chain = Interrupt.install_chain k in
  let stamps = Repro_harness.Harness.Stamps.create m in
  let mark = Repro_harness.Harness.Stamps.mark stamps in
  let proc, _ = Ksynth.install k ~name:"bench/chained_proc" [ I.Rts ] in
  let frag =
    [
      I.Push (I.Lbl "after"); (* fake frame: PC *)
      I.Push (I.Imm Ctx.kernel_sr); (* fake frame: SR *)
      mark;
      I.Move (I.Imm proc, I.Reg I.r1);
      I.Jsr (I.To_addr chain.Interrupt.ch_chain);
      mark;
      I.Rte; (* handler return: runs the chain runner *)
      I.Label "after";
      I.Halt;
    ]
  in
  let entry, _ = Asm.assemble m frag in
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp Layout.boot_stack_top;
  Machine.set_pc m entry;
  if force_retry then begin
    (* single-step to the CAS inside the chain queue's put and move
       Q_head under its feet, forcing one retry loop *)
    let q = chain.Interrupt.ch_queue in
    let rec find_cas a =
      match Machine.read_code m a with
      | I.Cas (_, _, _) -> a
      | _ -> find_cas (a + 1)
    in
    let cas_pc = find_cas q.Kqueue.q_put in
    if not (Repro_harness.Harness.run_until_pc m ~max_insns:10_000 cas_pc) then
      failwith "chain: CAS not reached";
    let head_cell = Kqueue.head_cell q in
    let h = Machine.peek m head_cell in
    Machine.poke m head_cell ((h + 1) mod q.Kqueue.q_size)
  end;
  ignore (Machine.run ~max_insns:10_000 m);
  match Repro_harness.Harness.Stamps.spans stamps with
  | chain_us :: _ -> chain_us
  | [] -> failwith "chain: no spans"

(* Chained (delayed) signal: delivery to a thread suspended inside a
   kernel operation rewrites the deepest frame on its kernel stack. *)
let measure_chained_signal () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let handler, _ = Ksynth.install k ~name:"bench/sig_h" [ I.Rts ] in
  let busy, _ =
    Ksynth.install k ~name:"bench/busy2"
      [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  let t = Thread.create k ~entry:busy () in
  Thread.set_signal_handler k t handler;
  (* make the target look suspended in a kernel continuation *)
  Machine.poke m (t.Kernel.base + Layout.Tte.off_regs + 16) Ctx.kernel_sr;
  let s0 = Machine.snapshot m in
  let ok = Thread.deliver_signal k t in
  if not ok then failwith "chained signal: not delivered";
  Machine.stats_us m (Machine.delta m s0)

let run () =
  Repro_harness.Harness.header "Table 5: interrupt handling (microseconds)";
  let tty_us = measure_tty_irq () in
  let _adq, ad_us = measure_ad_irq () in
  let set_alarm_us, alarm_irq_us = measure_alarm () in
  let chain_us = measure_chain ~force_retry:false () in
  let chain_retry_us = measure_chain ~force_retry:true () in
  let chained_signal_us = measure_chained_signal () in
  List.iter
    (fun (slug, v) -> Bench_json.record ~table:"table5" ~row:slug ~metric:"us" v)
    [
      ("tty_irq", tty_us); ("ad_irq", ad_us); ("set_alarm", set_alarm_us);
      ("alarm_irq", alarm_irq_us); ("chain", chain_us);
      ("chain_retry", chain_retry_us); ("chained_signal", chained_signal_us);
    ];
  Fmt.pr "%-38s %10s %10s@." "operation" "measured" "paper";
  let row name v paper = Fmt.pr "%-38s %10.1f %10s@." name v paper in
  row "service raw TTY interrupt" tty_us "16";
  row "service raw A/D interrupt" ad_us "3";
  row "set alarm" set_alarm_us "9";
  row "alarm interrupt" alarm_irq_us "7";
  row "chain to a procedure" chain_us "4";
  row "chain to a procedure (1 retry)" chain_retry_us "7";
  row "chain (signal) a thread, delayed" chained_signal_us "9"
