(* kperf PMU overhead: the PMU observes the machine from the host side
   — counters snapshot existing statistics and the pc-sampling hook
   fires off a cycle watermark the step loop already maintains — so a
   machine with a PMU attached but sampling disabled runs the exact
   same instruction stream, cycle for cycle, as a plain machine.  Even
   with sampling ON the simulated clock is untouched: samples cost
   host time, never simulated cycles.

   This bench proves both claims by running the pipe pipeline three
   ways and requiring identical cycle and instruction counts. *)

open Quamachine
open Synthesis

let workload ~pmu () =
  let b = Boot.boot () in
  let m = b.Boot.kernel.Kernel.machine in
  let p =
    match pmu with
    | `None -> None
    | `Idle ->
      let p = Pmu.create m in
      Pmu.start p;
      Some p
    | `Sampling ->
      let p = Pmu.create m in
      Pmu.enable_sampling p ~period:251;
      Pmu.start p;
      Some p
  in
  let pl = Repro_harness.Harness.Pipeline.build ~total:2048 b in
  Repro_harness.Harness.Pipeline.run pl;
  Option.iter Pmu.stop p;
  (Machine.cycles m, Machine.insns_executed m, p)

let run () =
  Repro_harness.Harness.header
    "kperf overhead: the PMU observes from the host, never the machine";
  let plain_cy, plain_in, _ = workload ~pmu:`None () in
  let idle_cy, idle_in, _ = workload ~pmu:`Idle () in
  let samp_cy, samp_in, p = workload ~pmu:`Sampling () in
  Fmt.pr "%-44s %12s %12s@." "configuration" "cycles" "insns";
  Fmt.pr "%-44s %12d %12d@." "plain machine (no pmu)" plain_cy plain_in;
  Fmt.pr "%-44s %12d %12d@." "pmu counting, sampling off" idle_cy idle_in;
  Fmt.pr "%-44s %12d %12d@." "pmu counting + pc sampling (period 251)" samp_cy
    samp_in;
  (match p with
  | Some p ->
    Fmt.pr "samples taken while sampling on: %d (%d cycles covered)@."
      (Pmu.sample_count p) (Pmu.sampled_cycles p)
  | None -> ());
  Bench_json.record ~table:"overhead" ~row:"pmu_idle" ~metric:"extra_cycles"
    (float_of_int (idle_cy - plain_cy));
  Bench_json.record ~table:"overhead" ~row:"pmu_sampling" ~metric:"extra_cycles"
    (float_of_int (samp_cy - plain_cy));
  let free = plain_cy = idle_cy && plain_cy = samp_cy && plain_in = idle_in
             && plain_in = samp_in in
  Fmt.pr "pmu overhead: %d cycles%s@."
    (max (idle_cy - plain_cy) (samp_cy - plain_cy))
    (if free then " (exactly zero: PMU is host-side observation only)" else "");
  if not free then failwith "pmu_overhead: PMU perturbed the simulation"
