(* Tail latency: drive the two synthesized pipelines with the span
   layer attached and land their per-request latency percentiles in
   BENCH_tables.json — clean, and under a seeded fault storm (spurious
   interrupts, forced CAS failures, a stalled and a dropped disk
   completion).  The storm rows are the interesting ones: p50 barely
   moves while p999 absorbs the recovery latency, which is exactly the
   claim the flight recorder and the per-row tolerance classes in
   `bench compare` are built around.

   Everything is seeded and simulated, so every percentile is exactly
   reproducible run to run. *)

open Quamachine
open Synthesis
module I = Insn

let storm_seed = 7

let hist k name =
  match
    List.assoc_opt name (Metrics.histograms k.Kernel.metrics)
  with
  | Some h -> h
  | None -> Fmt.failwith "latency: histogram %s never recorded" name

let record ~row h =
  List.iter
    (fun (metric, q) ->
      Bench_json.record ~table:"latency" ~row ~metric
        (float_of_int (Histogram.quantile h q)))
    [ ("p50_cycles", 0.50); ("p99_cycles", 0.99); ("p999_cycles", 0.999) ];
  Fmt.pr "%-12s %a@." row Histogram.pp h

(* ---------------------------------------------------------------- *)
(* Pipe: the two-stage pipeline, 256 8-word write bursts *)

let pipe_config =
  {
    Fault_inject.default_config with
    Fault_inject.horizon_cycles = 400_000;
    n_irqs = 3;
    n_flips = 0;
    n_stalls = 0;
    n_drops = 0;
    n_cas_fails = 6;
    cas_gap = 32;
    irq_choices =
      [
        (Mmio_map.timer_level, Mmio_map.timer_vector);
        (Mmio_map.disk_level, Mmio_map.disk_vector);
      ];
    flip_len = 0;
  }

let pipe_run ~storm =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  ignore (Kernel.attach_spans k);
  let pl = Repro_harness.Harness.Pipeline.build ~total:2048 b in
  let fi =
    if storm then
      Some (Fault_inject.arm m (Fault_inject.compile ~config:pipe_config storm_seed))
    else None
  in
  Repro_harness.Harness.Pipeline.run pl;
  (match fi with Some f -> Fault_inject.disarm m f | None -> ());
  hist k "kspan.pipe.total_cycles"

(* ---------------------------------------------------------------- *)
(* Disk: a 12-request burst through the elevator *)

let disk_config =
  {
    Fault_inject.default_config with
    Fault_inject.horizon_cycles = 300_000;
    n_irqs = 4;
    n_flips = 0;
    n_stalls = 1;
    n_drops = 1;
    n_cas_fails = 0;
    irq_choices = [ (Mmio_map.disk_level, Mmio_map.disk_vector) ];
    stall_devices = [ "disk" ];
    flip_len = 0;
  }

let disk_run ~storm =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  ignore (Kernel.attach_spans k);
  let ds = Disk_server.install k ~timeout_us:2_000.0 ~max_tries:6 () in
  let blocks = [| 5; 9; 12; 3; 17; 30; 44; 2; 58; 23; 71; 8 |] in
  Array.iter
    (fun bno ->
      Devices.Disk.write_block k.Kernel.disk bno
        (Array.init Devices.Disk.block_words (fun i -> (bno * 1_000) + i)))
    blocks;
  (* idle thread takes the completion interrupts *)
  (match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 0;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> failwith "latency: no idle thread");
  let fi =
    if storm then
      Some (Fault_inject.arm m (Fault_inject.compile ~config:disk_config storm_seed))
    else None
  in
  let reqs =
    Array.map
      (fun bno ->
        let buf = Kalloc.alloc_zeroed k.Kernel.alloc Disk_server.block_words in
        (Disk_server.submit ds ~block:bno ~buffer:buf ~write:false ()).Disk_server.r_desc)
      blocks
  in
  let all_done () =
    Array.for_all (fun desc -> Machine.peek m (desc + 3) = 1) reqs
  in
  let budget = ref 8_000_000 in
  while (not (all_done ())) && !budget > 0 do
    Machine.step m;
    decr budget
  done;
  (match fi with Some f -> Fault_inject.disarm m f | None -> ());
  if not (all_done ()) then failwith "latency: disk burst did not complete";
  hist k "kspan.disk.total_cycles"

let run () =
  Repro_harness.Harness.header
    "tail latency: per-request span percentiles, clean vs fault storm";
  record ~row:"pipe_clean" (pipe_run ~storm:false);
  record ~row:"pipe_storm" (pipe_run ~storm:true);
  record ~row:"disk_clean" (disk_run ~storm:false);
  record ~row:"disk_storm" (disk_run ~storm:true)
