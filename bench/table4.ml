(* Table 4: dispatcher/scheduler costs in microseconds.

   Full context switches are measured on the executable ready queue:
   from the first instruction of a thread's switch-out procedure until
   the next thread is back in user mode.  Variants: same quaspace
   (no MMU reload), different quaspace, and threads carrying FP state
   (the lazy-FP ablation).  The partial switch is the synthesized
   coroutine transfer.  Block/unblock are the wait-queue operations. *)

open Quamachine
open Synthesis
module I = Insn

let start_machine k =
  let m = k.Kernel.machine in
  match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> failwith "start_machine: empty ready queue"

(* Measure one switch-out -> switch-in transition between two busy
   threads. *)
let measure_switch ~uses_fp ~share_map () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let busy, _ =
    Ksynth.install k ~name:"bench/busy"
      [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  let t1 = Thread.create k ~quantum_us:100 ~uses_fp ~entry:busy () in
  let t2 =
    if share_map then
      Thread.create k ~quantum_us:100 ~uses_fp ~share_map:t1 ~entry:busy ()
    else Thread.create k ~quantum_us:100 ~uses_fp ~entry:busy ()
  in
  start_machine k;
  ignore (Repro_harness.Harness.run_until_user m ~max_insns:100_000);
  (* wait for the next quantum expiry: pc lands on some thread's
     switch-out *)
  let at_sw_out () =
    let pc = Machine.get_pc m in
    pc = t1.Kernel.sw_out || pc = t2.Kernel.sw_out
  in
  if not (Repro_harness.Harness.run_until m ~max_insns:1_000_000 at_sw_out) then
    failwith "measure_switch: no quantum expiry";
  let s0 = Machine.snapshot m in
  if not (Repro_harness.Harness.run_until_user m ~max_insns:100_000) then
    failwith "measure_switch: never resumed";
  Machine.stats_us m (Machine.delta m s0)

(* The synthesized coroutine (partial) switch. *)
let measure_partial () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let alloc = k.Kernel.alloc in
  let cell_a = Kalloc.alloc_zeroed alloc 16 in
  let cell_b = Kalloc.alloc_zeroed alloc 16 in
  let stack_b = Kalloc.alloc_zeroed alloc 64 in
  let switch =
    Ctx.synthesize_partial_switch k ~name:"bench/partial" ~from_cell:cell_a
      ~to_cell:cell_b
  in
  let stamps = Repro_harness.Harness.Stamps.create m in
  let mark = Repro_harness.Harness.Stamps.mark stamps in
  let frag =
    [
      mark;
      I.Jsr (I.To_addr switch);
      I.Halt; (* context A never resumes *)
      I.Label "arrived";
      mark;
      I.Halt;
    ]
  in
  let entry, syms = Asm.assemble m frag in
  (* craft context B's stack: six saved registers, then the return
     address for the switch routine's Rts *)
  let arrived = Asm.symbol syms "arrived" in
  let sp_b = stack_b + 32 in
  Machine.poke m (sp_b + 6) arrived;
  Machine.poke m cell_b sp_b;
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp Layout.boot_stack_top;
  Machine.set_pc m entry;
  ignore (Machine.run ~max_insns:1_000 m);
  match Repro_harness.Harness.Stamps.spans stamps with
  | [ partial ] -> partial
  | _ -> failwith "measure_partial: bad spans"

let measure_block_unblock () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let busy, _ =
    Ksynth.install k ~name:"bench/busy"
      [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  let victim = Thread.create k ~quantum_us:500 ~entry:busy () in
  start_machine k;
  ignore (Repro_harness.Harness.run_until_user m ~max_insns:100_000);
  (* block: the wait-queue bookkeeping plus the continuation frame *)
  let wq = Kernel.waitq ~name:"bench/wq" in
  let block_id = Thread.block_hcall k wq in
  let frag =
    [ I.Hcall block_id; I.Push (I.Imm 0); I.Push (I.Imm Ctx.kernel_sr); I.Halt ]
  in
  let entry, _ = Asm.assemble m frag in
  Machine.set_supervisor m true;
  Machine.set_pc m entry;
  let s0 = Machine.snapshot m in
  ignore (Machine.run ~max_insns:100 m);
  let block_us = Machine.stats_us m (Machine.delta m s0) in
  (* unblock: wait-queue pop plus front-of-ready-queue insertion *)
  let s0 = Machine.snapshot m in
  (match Thread.unblock k wq with
  | Some t -> assert (t == victim)
  | None -> failwith "unblock: empty wait queue");
  let unblock_us = Machine.stats_us m (Machine.delta m s0) in
  (block_us, unblock_us)

let run () =
  Repro_harness.Harness.header "Table 4: dispatcher/scheduler (microseconds)";
  let full = measure_switch ~uses_fp:false ~share_map:true () in
  let full_mmu = measure_switch ~uses_fp:false ~share_map:false () in
  let full_fp = measure_switch ~uses_fp:true ~share_map:true () in
  let partial = measure_partial () in
  let block_us, unblock_us = measure_block_unblock () in
  List.iter
    (fun (slug, v) -> Bench_json.record ~table:"table4" ~row:slug ~metric:"us" v)
    [
      ("full_switch", full); ("full_switch_mmu", full_mmu);
      ("full_switch_fp", full_fp); ("partial_switch", partial);
      ("block", block_us); ("unblock", unblock_us);
    ];
  Fmt.pr "%-38s %10s %10s@." "operation" "measured" "paper";
  let row name v paper = Fmt.pr "%-38s %10.1f %10s@." name v paper in
  row "full context switch (same quaspace)" full "11";
  row "full context switch (+MMU reload)" full_mmu "-";
  row "full context switch (with FP)" full_fp "21";
  row "partial context switch" partial "3";
  row "block thread" block_us "4";
  row "unblock thread" unblock_us "4"
