(* Table 1: measured UNIX system calls — the same seven programs run
   on the baseline (SUNOS stand-in) and on Synthesis under the UNIX
   emulator, reported in simulated seconds plus the speedup ratio.

   Iteration counts are scaled down from the paper's (the shapes, not
   the absolute seconds, are the reproduction target); the counts used
   are printed with each row. *)

type spec = {
  no : int;
  slug : string; (* stable row key in BENCH_tables.json *)
  descr : string;
  paper_sun : float; (* seconds reported for SUNOS *)
  paper_syn : float; (* seconds reported for Synthesis *)
  build : Repro_harness.Programs.env -> Quamachine.Insn.insn list;
}

let specs ~scale =
  let it n = max 1 (n / scale) in
  [
    {
      no = 1;
      slug = "compute";
      descr = Fmt.str "Compute (Q-sequence, n=%d)" (it 100_000);
      paper_sun = 20.;
      paper_syn = 21.42;
      build = (fun env -> Repro_harness.Programs.compute ~arr:env.Repro_harness.Programs.e_arr ~n:(it 100_000));
    };
    {
      no = 2;
      slug = "pipe_1w";
      descr = Fmt.str "R/W pipe, 1 word x %d" (it 10_000);
      paper_sun = 10.;
      paper_syn = 0.18;
      build = (fun env -> Repro_harness.Programs.pipe_rw env ~chunk:1 ~iters:(it 10_000));
    };
    {
      no = 3;
      slug = "pipe_1k";
      descr = Fmt.str "R/W pipe, 1 KiB x %d" (it 10_000);
      paper_sun = 15.;
      paper_syn = 2.42;
      build = (fun env -> Repro_harness.Programs.pipe_rw env ~chunk:256 ~iters:(it 10_000));
    };
    {
      no = 4;
      slug = "pipe_4k";
      descr = Fmt.str "R/W pipe, 4 KiB x %d" (it 10_000);
      paper_sun = 38.;
      paper_syn = 9.62;
      build = (fun env -> Repro_harness.Programs.pipe_rw env ~chunk:1024 ~iters:(it 10_000));
    };
    {
      no = 5;
      slug = "file_1k";
      descr = Fmt.str "R/W file, 1 KiB x %d" (it 10_000);
      paper_sun = 21.;
      paper_syn = 2.42;
      build = (fun env -> Repro_harness.Programs.file_rw env ~chunk:256 ~iters:(it 10_000));
    };
    {
      no = 6;
      slug = "open_null";
      descr = Fmt.str "open /dev/null + close x %d" (it 10_000);
      paper_sun = 17.;
      paper_syn = 0.69;
      build =
        (fun env ->
          Repro_harness.Programs.open_close ~name_addr:env.Repro_harness.Programs.e_name_null ~iters:(it 10_000));
    };
    {
      no = 7;
      slug = "open_tty";
      descr = Fmt.str "open /dev/tty + close x %d" (it 10_000);
      paper_sun = 43.;
      paper_syn = 1.08;
      build =
        (fun env ->
          Repro_harness.Programs.open_close ~name_addr:env.Repro_harness.Programs.e_name_tty ~iters:(it 10_000));
    };
  ]

let run ?(scale = 10) () =
  Repro_harness.Harness.header "Table 1: measured UNIX system calls (simulated seconds)";
  Fmt.pr "%-38s %10s %10s %8s %14s@." "program" "baseline" "synthesis" "ratio"
    "paper-ratio";
  List.iter
    (fun s ->
      (* fresh kernels per program so state never leaks across rows *)
      let be = Repro_harness.Harness.baseline_setup () in
      let sun = Repro_harness.Harness.baseline_run be ~program:(s.build be.Repro_harness.Harness.b_env) in
      let se = Repro_harness.Harness.synthesis_setup () in
      let syn = Repro_harness.Harness.synthesis_run se ~program:(s.build se.Repro_harness.Harness.s_env) in
      let ratio = if syn > 0.0 then sun /. syn else nan in
      let paper_ratio = s.paper_sun /. s.paper_syn in
      Bench_json.record ~table:"table1" ~row:s.slug ~metric:"baseline_s" sun;
      Bench_json.record ~table:"table1" ~row:s.slug ~metric:"synthesis_s" syn;
      Bench_json.record ~table:"table1" ~row:s.slug ~metric:"ratio" ratio;
      Fmt.pr "%d. %-35s %10.3f %10.3f %7.1fx %13.1fx@." s.no s.descr sun syn ratio
        paper_ratio)
    (specs ~scale);
  (* §6.2 in-text claims derived from the pipe rows *)
  let se = Repro_harness.Harness.synthesis_setup () in
  let iters = 1000 and chunk = 1024 in
  let secs =
    Repro_harness.Harness.synthesis_run se
      ~program:(Repro_harness.Programs.pipe_rw se.Repro_harness.Harness.s_env ~chunk ~iters)
  in
  let words = float_of_int (2 * chunk * iters) in
  let mbps = words *. 4.0 /. secs /. 1_048_576.0 in
  Bench_json.record ~table:"table1" ~row:"pipe_rate" ~metric:"mbps" mbps;
  Fmt.pr "@.pipe transfer rate (4 KiB chunks): %.1f MB/s (paper: ~8 MB/s)@." mbps;
  (* warm-cache re-baseline of the open rows: a single open/close run
     twice in one booted instance — the first pays synthesis, the
     second hits the memoized page, so the delta is the cache's win on
     the open path itself *)
  Fmt.pr "@.warm-cache open (single open/close, second run in-instance):@.";
  List.iter
    (fun (slug, descr, pick) ->
      let se = Repro_harness.Harness.synthesis_setup () in
      let env = se.Repro_harness.Harness.s_env in
      let program = Repro_harness.Programs.open_close ~name_addr:(pick env) ~iters:1 in
      let cold = Repro_harness.Harness.synthesis_run se ~program in
      let warm = Repro_harness.Harness.synthesis_run se ~program in
      let ratio = if warm > 0.0 then cold /. warm else 1.0 in
      Bench_json.record ~table:"table1" ~row:slug ~metric:"synthesis_s" warm;
      Bench_json.record ~table:"table1" ~row:slug ~metric:"warm_speedup_ratio"
        ratio;
      Fmt.pr "  %-28s cold %.3g s, warm %.3g s (%.1fx)@." descr cold warm ratio)
    [
      ( "open_null_warm",
        "open /dev/null + close",
        fun env -> env.Repro_harness.Programs.e_name_null );
      ( "open_tty_warm",
        "open /dev/tty + close",
        fun env -> env.Repro_harness.Programs.e_name_tty );
    ]
