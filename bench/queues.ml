(* Figures 1 and 2: the synthesized optimistic queues.  The paper
   reports the MP-SC Q_put normal path as 11 instructions on the
   68020, 20 with one CAS retry; we count executed instructions of our
   generated code (which carries an explicit status return and flag
   handling that the paper's hand-written assembly folds away). *)

open Quamachine
open Synthesis
module I = Insn

(* Execute [Jsr entry] with r1..r3 preloaded; returns instructions
   executed inside the routine (excluding the Jsr and Halt). *)
let count_call m ~entry ?(r1 = 0) ?(r2 = 0) ?(r3 = 0) ?patch_at_cas () =
  let frag = [ I.Jsr (I.To_addr entry); I.Halt ] in
  let start, _ = Asm.assemble m frag in
  Machine.set_halted m false;
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp 0x900;
  Machine.set_reg m I.r1 r1;
  Machine.set_reg m I.r2 r2;
  Machine.set_reg m I.r3 r3;
  Machine.set_pc m start;
  let s0 = Machine.snapshot m in
  (match patch_at_cas with
  | Some f ->
    let rec find_cas a =
      match Machine.read_code m a with I.Cas _ -> a | _ -> find_cas (a + 1)
    in
    let cas_pc = find_cas entry in
    if not (Repro_harness.Harness.run_until_pc m ~max_insns:1_000 cas_pc) then
      failwith "count_call: CAS not reached";
    f ()
  | None -> ());
  (match Machine.run ~max_insns:10_000 m with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "count_call: did not return");
  let d = Machine.delta m s0 in
  (* exclude the Jsr and the Halt *)
  (d.Machine.s_insns - 2, Machine.stats_us m d)

let run () =
  Repro_harness.Harness.header "Figures 1-2: synthesized optimistic queue paths";
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let spsc = Kqueue.create ~kind:Kqueue.Spsc k ~name:"bench/spsc" ~size:16 in
  let mpsc = Kqueue.create ~kind:Kqueue.Mpsc k ~name:"bench/mpsc" ~size:16 in
  Fmt.pr "%-36s %8s %10s %10s@." "operation" "insns" "us" "paper";
  let row name insns us paper = Fmt.pr "%-36s %8d %10.2f %10s@." name insns us paper in
  let n, us = count_call m ~entry:spsc.Kqueue.q_put ~r1:42 () in
  row "SP-SC Q_put (Figure 1)" n us "-";
  let n, us = count_call m ~entry:spsc.Kqueue.q_get () in
  row "SP-SC Q_get (Figure 1)" n us "-";
  let n, us = count_call m ~entry:mpsc.Kqueue.q_put ~r1:7 () in
  row "MP-SC Q_put, normal path" n us "11";
  let head_cell = Kqueue.head_cell mpsc in
  (* simulate a competing producer winning the race: it claims the
     slot, fills it and sets its valid flag, all between our load of
     Q_head and our CAS *)
  let force_retry () =
    let h = Machine.peek m head_cell in
    Machine.poke m head_cell ((h + 1) mod mpsc.Kqueue.q_size);
    Machine.poke m (mpsc.Kqueue.q_buf + h) 999;
    Machine.poke m (mpsc.Kqueue.q_flag + h) 1
  in
  let n, us = count_call m ~entry:mpsc.Kqueue.q_put ~r1:8 ~patch_at_cas:force_retry () in
  row "MP-SC Q_put, one CAS retry" n us "20";
  (* multi-item atomic insert (Figure 2 proper): 4 items from memory *)
  let src = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  for i = 0 to 3 do
    Machine.poke m (src + i) (100 + i)
  done;
  let n, us = count_call m ~entry:mpsc.Kqueue.q_put_many ~r2:src ~r3:4 () in
  row "MP-SC multi-insert of 4" n us "-";
  let n, us = count_call m ~entry:mpsc.Kqueue.q_get () in
  row "MP-SC Q_get" n us "-";
  (* sanity: drain and verify content ordering survived the games *)
  let drained = ref [] in
  let rec drain () =
    match Kqueue.host_get k mpsc with
    | Some v ->
      drained := v :: !drained;
      drain ()
    | None -> ()
  in
  drain ();
  Fmt.pr "drained after bench: %a@." Fmt.(list ~sep:comma int) (List.rev !drained)
