(* Tracing overhead: the probes ktrace splices into synthesized code
   exist only when tracing is enabled at synthesis time — with tracing
   off the probe fragments are empty, so a traced-capable kernel and a
   plain kernel run *identical* instruction streams.  This bench
   proves the claim by running the same pipe workload three ways and
   comparing simulated cycle counts:

     plain            no ktrace attached at all
     attached-off     ktrace attached but disabled before synthesis
     attached-on      ktrace attached and enabled (probes compiled in)

   plain and attached-off must agree to the cycle; attached-on pays
   one Hcall (2 cycles) per probe site crossed. *)

open Quamachine
open Synthesis

let workload_cycles ~tracing () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  (match tracing with
  | `None -> ()
  | `Off ->
    let tr = Ktrace.create ~enabled:false m in
    Kernel.attach_tracing k tr
  | `On ->
    let tr = Ktrace.create m in
    Kernel.attach_tracing k tr);
  let pl = Repro_harness.Harness.Pipeline.build ~total:2048 b in
  Repro_harness.Harness.Pipeline.run pl;
  Machine.cycles m

let run () =
  Repro_harness.Harness.header "ktrace overhead: probes are synthesized, not branched over";
  let plain = workload_cycles ~tracing:`None () in
  let off = workload_cycles ~tracing:`Off () in
  let on = workload_cycles ~tracing:`On () in
  Fmt.pr "%-44s %12s@." "configuration" "cycles";
  Fmt.pr "%-44s %12d@." "plain kernel (no ktrace)" plain;
  Fmt.pr "%-44s %12d@." "ktrace attached, disabled at synthesis" off;
  Fmt.pr "%-44s %12d@." "ktrace attached, probes compiled in" on;
  Fmt.pr "tracing-off overhead: %d cycles%s@." (off - plain)
    (if off = plain then " (exactly zero: identical instruction streams)" else "");
  Fmt.pr "tracing-on overhead:  %d cycles (%.2f%%)@." (on - plain)
    (100.0 *. float_of_int (on - plain) /. float_of_int plain);
  Bench_json.record ~table:"overhead" ~row:"pipeline_plain" ~metric:"cycles"
    (float_of_int plain);
  Bench_json.record ~table:"overhead" ~row:"trace_off" ~metric:"extra_cycles"
    (float_of_int (off - plain));
  Bench_json.record ~table:"overhead" ~row:"trace_on" ~metric:"extra_cycles"
    (float_of_int (on - plain));
  if off <> plain then failwith "trace_overhead: tracing-off overhead is not zero"
