(* Tracing overhead: the probes ktrace splices into synthesized code
   exist only when tracing is enabled at synthesis time — with tracing
   off the probe fragments are empty, so a traced-capable kernel and a
   plain kernel run *identical* instruction streams.  This bench
   proves the claim by running the same pipe workload three ways and
   comparing simulated cycle counts:

     plain            no ktrace attached at all
     attached-off     ktrace attached but disabled before synthesis
     attached-on      ktrace attached and enabled (probes compiled in)

   plain and attached-off must agree to the cycle; attached-on pays
   one Hcall (2 cycles) per probe site crossed. *)

open Quamachine
open Synthesis
module I = Insn

let workload_cycles ~tracing () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  (match tracing with
  | `None -> ()
  | `Off ->
    let tr = Ktrace.create ~enabled:false m in
    Kernel.attach_tracing k tr
  | `On ->
    let tr = Ktrace.create m in
    Kernel.attach_tracing k tr);
  let pipe = Kpipe.create k ~cap:64 () in
  let total = 2048 in
  let src = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let dst = Kalloc.alloc_zeroed k.Kernel.alloc 64 in
  let result = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let producer_prog ~wfd =
    [
      I.Move (I.Imm 1, I.Reg I.r9);
      I.Label "loop";
      I.Move (I.Imm src, I.Reg I.r10);
      I.Move (I.Imm 7, I.Reg I.r11);
      I.Label "fill";
      I.Move (I.Reg I.r9, I.Post_inc I.r10);
      I.Alu (I.Add, I.Imm 1, I.r9);
      I.Dbra (I.r11, I.To_label "fill");
      I.Move (I.Imm wfd, I.Reg I.r1);
      I.Move (I.Imm src, I.Reg I.r2);
      I.Move (I.Imm 8, I.Reg I.r3);
      I.Trap 2;
      I.Cmp (I.Imm (total + 1), I.Reg I.r9);
      I.B (I.Ne, I.To_label "loop");
      I.Trap 0;
    ]
  in
  let consumer_prog ~rfd =
    [
      I.Move (I.Imm 0, I.Reg I.r9);
      I.Move (I.Imm 0, I.Reg I.r10);
      I.Label "loop";
      I.Move (I.Imm rfd, I.Reg I.r1);
      I.Move (I.Imm dst, I.Reg I.r2);
      I.Move (I.Imm 32, I.Reg I.r3);
      I.Trap 1;
      I.Move (I.Reg I.r0, I.Reg I.r11);
      I.Alu (I.Add, I.Reg I.r11, I.r10);
      I.Move (I.Imm dst, I.Reg I.r12);
      I.Tst (I.Reg I.r11);
      I.B (I.Eq, I.To_label "loop");
      I.Alu (I.Sub, I.Imm 1, I.r11);
      I.Label "acc";
      I.Alu (I.Add, I.Post_inc I.r12, I.r9);
      I.Dbra (I.r11, I.To_label "acc");
      I.Cmp (I.Imm total, I.Reg I.r10);
      I.B (I.Ne, I.To_label "loop");
      I.Move (I.Reg I.r9, I.Abs result);
      I.Trap 0;
    ]
  in
  let consumer =
    Thread.create k ~quantum_us:150 ~entry:0
      ~segments:[ (dst, 64); (result, 16) ]
      ()
  in
  let producer =
    Thread.create k ~quantum_us:150 ~entry:0 ~segments:[ (src, 16) ] ()
  in
  let crfd, _ = Kpipe.attach b.Boot.vfs pipe consumer in
  let _, pwfd = Kpipe.attach b.Boot.vfs pipe producer in
  let centry, _ = Asm.assemble m (consumer_prog ~rfd:crfd) in
  let pentry, _ = Asm.assemble m (producer_prog ~wfd:pwfd) in
  Machine.poke m (consumer.Kernel.base + Layout.Tte.off_regs + 17) centry;
  Machine.poke m (producer.Kernel.base + Layout.Tte.off_regs + 17) pentry;
  (match Boot.go ~max_insns:200_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "trace_overhead: did not halt");
  let expected = total * (total + 1) / 2 in
  if Machine.peek m result <> expected then failwith "trace_overhead: wrong sum";
  Machine.cycles m

let run () =
  Repro_harness.Harness.header "ktrace overhead: probes are synthesized, not branched over";
  let plain = workload_cycles ~tracing:`None () in
  let off = workload_cycles ~tracing:`Off () in
  let on = workload_cycles ~tracing:`On () in
  Fmt.pr "%-44s %12s@." "configuration" "cycles";
  Fmt.pr "%-44s %12d@." "plain kernel (no ktrace)" plain;
  Fmt.pr "%-44s %12d@." "ktrace attached, disabled at synthesis" off;
  Fmt.pr "%-44s %12d@." "ktrace attached, probes compiled in" on;
  Fmt.pr "tracing-off overhead: %d cycles%s@." (off - plain)
    (if off = plain then " (exactly zero: identical instruction streams)" else "");
  Fmt.pr "tracing-on overhead:  %d cycles (%.2f%%)@." (on - plain)
    (100.0 *. float_of_int (on - plain) /. float_of_int plain);
  if off <> plain then failwith "trace_overhead: tracing-off overhead is not zero"
