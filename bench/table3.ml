(* Table 3: thread operations in microseconds.  Most rows are host
   services whose cycle charges and code-synthesis costs accumulate on
   the simulated clock; signal is measured end-to-end inside a running
   program with timestamps. *)

open Quamachine
open Synthesis
module I = Insn
module U = Unix_emulator.Unix_abi

let us k d = Machine.stats_us k.Kernel.machine d

let measure_host_ops () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let spin, _ =
    Ksynth.install k ~name:"bench/spin"
      [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  let s0 = Machine.snapshot m in
  let t = Thread.create k ~entry:spin () in
  let create_us = us k (Machine.delta m s0) in
  let s0 = Machine.snapshot m in
  Thread.stop k t;
  let stop_us = us k (Machine.delta m s0) in
  let s0 = Machine.snapshot m in
  Thread.start k t;
  let start_us = us k (Machine.delta m s0) in
  let s0 = Machine.snapshot m in
  Thread.destroy k t;
  let destroy_us = us k (Machine.delta m s0) in
  (create_us, destroy_us, stop_us, start_us)

(* step: start the machine with one busy thread, then step a stopped
   target and measure until it is stopped again (switch in, one
   instruction, trace trap, switch out). *)
let measure_step () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let busy, _ =
    Ksynth.install k ~name:"bench/busy"
      [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  let _runner = Thread.create k ~quantum_us:500 ~entry:busy () in
  let target = Thread.create k ~entry:busy () in
  Thread.stop k target;
  (* start the machine on the runner *)
  (match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> failwith "no runnable thread");
  ignore (Repro_harness.Harness.run_until_user m ~max_insns:10_000);
  let s0 = Machine.snapshot m in
  Thread.step k target;
  let ok =
    Repro_harness.Harness.run_until m ~max_insns:100_000 (fun () ->
        Thread.fully_stopped k target)
  in
  if not ok then failwith "step: target never stopped";
  us k (Machine.delta m s0)

(* signal: measured around the trap-6 system call, thread to thread. *)
let measure_signal () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Boot.kernel in
  let stamps = se.Repro_harness.Harness.s_stamps in
  let mark = Repro_harness.Harness.Stamps.mark stamps in
  (* the target: spins; handler is a no-op *)
  let handler, _ =
    Ksynth.install k ~name:"bench/sig_handler" [ I.Rts ]
  in
  let spin, _ =
    Ksynth.install k ~name:"bench/spin2"
      [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  let target = Thread.create k ~entry:spin () in
  Thread.set_signal_handler k target handler;
  let program =
    [
      mark;
      I.Move (I.Imm target.Kernel.tid, I.Reg I.r1);
      I.Trap 6; (* signal *)
      mark;
      I.Move (I.Imm U.sys_exit, I.Reg I.r0);
      I.Trap U.trap;
    ]
  in
  (* the spinning target never exits; bound the run and ignore the
     limit result *)
  let entry, _ = Asm.assemble k.Kernel.machine program in
  let _t = Thread.create k ~entry () in
  (match Boot.go ~max_insns:2_000_000 se.Repro_harness.Harness.s_boot with
  | Machine.Halted | Machine.Insn_limit -> ());
  match Repro_harness.Harness.Stamps.spans stamps with
  | signal_us :: _ -> signal_us
  | [] -> failwith "signal: no spans"

let run () =
  Repro_harness.Harness.header "Table 3: thread operations (microseconds)";
  let create_us, destroy_us, stop_us, start_us = measure_host_ops () in
  let step_us = measure_step () in
  let signal_us = measure_signal () in
  List.iter
    (fun (slug, v) -> Bench_json.record ~table:"table3" ~row:slug ~metric:"us" v)
    [
      ("create", create_us); ("destroy", destroy_us); ("stop", stop_us);
      ("start", start_us); ("step", step_us); ("signal", signal_us);
    ];
  Fmt.pr "%-24s %10s %10s@." "operation" "measured" "paper";
  let row name v paper = Fmt.pr "%-24s %10.1f %10s@." name v paper in
  row "create" create_us "142";
  row "destroy" destroy_us "11";
  row "stop" stop_us "8";
  row "start" start_us "8";
  row "step" step_us "37";
  row "signal (thread-thread)" signal_us "8"
