(* kserve: serving throughput and request-latency tails under a
   seeded client storm (§4's stream layer end to end: NIC rings → rx
   pump → switch → synthesized per-connection routines → tx pump).

   Four deterministic rows gate in `bench compare`:

   - clients_1c / clients_4c — the full client load on 1 and 4 cores:
     throughput (response megabytes per simulated second) and the
     p50/p99/p999 round-trip cycles (tail metrics get the wider
     tolerance classes bench_json derives from their names);
   - warm — a drained server restarted under the same load: the
     synthesis-cache hit ratio of the second run's accepts (the
     accept-path synthesis memo at work);
   - overload — offered load far over capacity with a 1-worker server:
     admission control must shed at the rx ring (asserted non-zero)
     while the p99 of the *served* requests stays gated.

   The driver passes ~scale (default 10 → 1,200 sessions) so the
   compare gate stays quick; the standalone `bench serve` subcommand
   runs scale 1 — 12,000 sessions, the ISSUE's ≥10k-client harness. *)

open Quamachine
open Synthesis
open Repro_harness

let base_clients = 12_000

(* One serving run to completion: boot, serve, storm, drain.
   [allow_dups] is for retry-under-shedding rows: a response slower
   than the client's timeout is answered twice, and the straggler
   matches nothing in flight — client-visible retry fallout, not a
   server defect. *)
let run_load ~cores ?(workers = 2) ?(allow_dups = false)
    ?(sv_config = fun c -> c) ?(lg_config = fun c -> c) ~clients () =
  let b = Boot.boot ~cores () in
  ignore (Kernel.attach_spans b.Boot.kernel);
  let srv =
    Kserve.create
      ~config:(sv_config { Kserve.default_config with Kserve.cfg_workers = workers })
      b
  in
  let lg =
    Loadgen.create
      ~config:
        (lg_config
           { Loadgen.default_config with Loadgen.lg_clients = clients })
      ~on_complete:(fun () -> Kserve.shutdown srv)
      srv
  in
  (* insns scale with the session count: at a fixed arrival rate the
     simulated time is linear in clients *)
  (match Boot.go ~max_insns:(500_000_000 + (2_000_000 * clients)) b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "serve bench: run did not converge");
  if not (Loadgen.finished lg) then failwith "serve bench: sessions unfinished";
  if (not allow_dups) && Loadgen.duplicates lg > 0 then
    failwith "serve bench: ledger violation";
  (srv, lg)

let mbps ~cycles ~responses =
  (* one-word (4-byte) responses at the native 50 MHz cost model *)
  let bytes = 4.0 *. float_of_int responses in
  let seconds = float_of_int cycles /. 50.0e6 in
  bytes /. 1.0e6 /. seconds

let record_latency ~row lg =
  let h = Loadgen.latency lg in
  List.iter
    (fun (metric, q) ->
      let v = Histogram.quantile h q in
      Fmt.pr "  %-14s %10d cycles@." metric v;
      Bench_json.record ~table:"serve" ~row ~metric (float_of_int v))
    [ ("p50_cycles", 0.5); ("p99_cycles", 0.99); ("p999_cycles", 0.999) ]

let run ?(scale = 10) () =
  Harness.header "kserve: serving throughput and latency tails";
  let clients = max 100 (base_clients / max 1 scale) in
  (* 1 vs 4 cores, same offered load *)
  (* closed loop: the conn-id pool caps concurrency below the
     admission watermark, so the throughput rows measure a saturated
     but unshed server (sessions past the cap queue in the generator);
     the timeout is a safety net, not a steady-state path *)
  let closed_loop c =
    { c with Loadgen.lg_conn_ids = 48; lg_timeout_us = 20_000.0 }
  in
  List.iter
    (fun cores ->
      let row = Fmt.str "clients_%dc" cores in
      let _srv, lg = run_load ~cores ~lg_config:closed_loop ~clients () in
      let tput = mbps ~cycles:(Loadgen.elapsed_cycles lg) ~responses:(Loadgen.received lg) in
      Fmt.pr "@.%d sessions, %d core%s: %d responses, %.3f MB/s@." clients
        cores
        (if cores = 1 then "" else "s")
        (Loadgen.received lg) tput;
      Bench_json.record ~table:"serve" ~row ~metric:"throughput_mbps" tput;
      record_latency ~row lg)
    [ 1; 4 ];
  (* warm restart: the second run's accepts hit the synthesis cache *)
  let b = Boot.boot () in
  let srv = Kserve.create b in
  let warm_clients = min clients 400 in
  let go () =
    let lg =
      Loadgen.create
        ~config:
          (closed_loop
             { Loadgen.default_config with Loadgen.lg_clients = warm_clients })
        ~on_complete:(fun () -> Kserve.shutdown srv)
        srv
    in
    (match Boot.go ~max_insns:(500_000_000 + (2_000_000 * warm_clients)) b with
    | Machine.Halted -> ()
    | Machine.Insn_limit -> failwith "serve bench: warm run did not converge");
    ignore lg
  in
  go ();
  let st1 = Kserve.stats srv in
  Kserve.restart srv;
  go ();
  let st2 = Kserve.stats srv in
  let warm_accepts = st2.Kserve.n_accepts - st1.Kserve.n_accepts in
  let warm_hits = st2.Kserve.n_hits - st1.Kserve.n_hits in
  let ratio = float_of_int warm_hits /. float_of_int (max 1 warm_accepts) in
  Fmt.pr "@.warm restart: %d/%d accepts hit the synthesis cache (%.3f)@."
    warm_hits warm_accepts ratio;
  Bench_json.record ~table:"serve" ~row:"warm" ~metric:"hit_ratio" ratio;
  (* overload: a 1-worker server against ~10x its capacity — admission
     control sheds at the NIC ring and the served tail stays bounded *)
  let srv, lg =
    run_load ~cores:1 ~workers:1 ~allow_dups:true
      ~clients:(max 200 (clients / 4))
      ~sv_config:(fun c ->
        {
          c with
          Kserve.cfg_queue_size = 32;
          cfg_admit_hi = 48;
          cfg_admit_lo = 16;
          cfg_admit_limit = 8;
        })
      ~lg_config:(fun c ->
        {
          c with
          Loadgen.lg_rate_per_ms = 300.0;
          lg_think_us = 20.0;
          lg_timeout_us = 8000.0;
          lg_retries = 6;
          lg_seed = 3;
        })
      ()
  in
  let shed = (Kserve.stats srv).Kserve.n_shed in
  if shed = 0 then failwith "serve bench: overload never shed";
  let h = Loadgen.latency lg in
  Fmt.pr
    "@.overload (1 worker): %d served, %d shed at the ring, p99 %d cycles@."
    (Loadgen.completed lg) shed
    (Histogram.quantile h 0.99);
  Bench_json.record ~table:"serve" ~row:"overload" ~metric:"shed_frames"
    (float_of_int shed);
  record_latency ~row:"overload" lg
