(* Thread control and debugger support (§4.3): stop, single-step and
   signal another thread.  "The short time to start, stop, and step a
   thread makes it possible to trace and debug threads in a highly
   interactive way."

   Run with: dune exec examples/debugger.exe *)

open Quamachine
open Synthesis
module I = Insn

let () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in

  (* The debuggee: counts in r9 forever. *)
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let prog =
    [
      I.Move (I.Imm 0, I.Reg I.r9);
      I.Label "loop";
      I.Alu (I.Add, I.Imm 1, I.r9);
      I.Move (I.Reg I.r9, I.Abs cell);
      I.B (I.Always, I.To_label "loop");
    ]
  in
  let entry, _ = Asm.assemble m prog in
  let target = Thread.create k ~entry ~segments:[ (cell, 16) ] () in

  (* A busy thread keeps the machine alive while we poke at the target. *)
  let busy, _ =
    Ksynth.install k ~name:"dbg/busy"
      [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  let _runner = Thread.create k ~quantum_us:100_000 ~entry:busy () in

  (* Start the machine, let the target run a little, then stop it. *)
  (match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> assert false);
  ignore (Machine.run ~max_insns:5_000 m);
  Thread.stop k target;
  ignore (Machine.run ~max_insns:2_000 m);
  Fmt.pr "stopped the counter at %d (saved pc=%d, saved r9=%d)@."
    (Machine.peek m cell)
    (Thread.saved_pc k target)
    (Thread.saved_reg k target I.r9);

  (* Single-step it ten times; each step runs exactly one instruction. *)
  Machine.trace_enable m true;
  for i = 1 to 10 do
    Thread.step k target;
    let ok =
      let rec go n =
        if n = 0 then false
        else if Thread.fully_stopped k target then true
        else begin
          Machine.step m;
          go (n - 1)
        end
      in
      go 100_000
    in
    if not ok then failwith "step did not stop";
    Fmt.pr "step %2d: pc=%-5d r9=%-4d counter=%d@." i (Thread.saved_pc k target)
      (Thread.saved_reg k target I.r9)
      (Machine.peek m cell)
  done;

  (* Execution trace from the kernel monitor's ring buffer (§6.3). *)
  Fmt.pr "last executed PCs: %a@."
    Fmt.(list ~sep:sp int)
    (Machine.trace_window m 8);

  (* Resume it, then destroy it. *)
  Thread.start k target;
  ignore (Machine.run ~max_insns:20_000 m);
  Fmt.pr "after resuming: counter=%d@." (Machine.peek m cell);
  Thread.destroy k target;
  Fmt.pr "target destroyed; ready queue still valid: %b@." (Ready_queue.verify k)
