(* The A/D buffered queue at 44,100 interrupts per second (§5.4).

   The A/D converter interrupts once per sample; eight synthesized
   stage handlers pack eight samples per queue element, each storing
   into its own slot with the address folded in (a couple of
   instructions per interrupt).  A consumer thread drains elements,
   applies a trivial filter and writes to the D/A converter — the
   Synthesis sound pipeline.

   Run with: dune exec examples/audio.exe *)

open Quamachine
open Synthesis
module I = Insn

let () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in

  let adq = Interrupt.install_adq k ~n_elems:64 () in

  (* Consumer: a kernel service thread.  Each loop grabs one valid
     element (blocking when none), halves the 8 samples and writes
     them to the D/A. *)
  let consumer_code =
    [
      I.Label "retry";
      I.Jsr (I.To_addr adq.Interrupt.adq_get); (* r0 = ok, r1 = element *)
      I.Tst (I.Reg I.r0);
      I.B (I.Eq, I.To_label "wait");
      I.Move (I.Imm 7, I.Reg I.r9);
      I.Label "elem";
      I.Move (I.Post_inc I.r1, I.Reg I.r4);
      I.Alu (I.Lsr, I.Imm 1, I.r4); (* the "filter": halve *)
      I.Move (I.Reg I.r4, I.Abs Mmio_map.da_data);
      I.Dbra (I.r9, I.To_label "elem");
      I.B (I.Always, I.To_label "retry");
      I.Label "wait";
    ]
    @ Interrupt.consumer_block_code k adq ~retry:"retry"
  in
  let centry, _ = Ksynth.install k ~name:"audio/consumer" consumer_code in
  let consumer = Thread.create k ~quantum_us:300 ~system:true ~entry:centry () in
  Machine.poke m (consumer.Kernel.base + Layout.Tte.off_regs + 16) Ctx.kernel_sr;

  (* a compute-bound competitor so the scheduler has something to
     trade off against the audio thread *)
  let hog_prog =
    [
      I.Move (I.Imm 2_000_000, I.Reg I.r9);
      I.Label "spin";
      I.Dbra (I.r9, I.To_label "spin");
      I.Trap 0;
    ]
  in
  let hog_entry, _ = Asm.assemble m hog_prog in
  let _hog = Thread.create k ~quantum_us:300 ~entry:hog_entry () in

  let _sched = Scheduler.install k ~epoch_us:5_000 () in

  (* switch on the sampler and run the hog to completion *)
  Devices.Ad.set_rate k.Kernel.ad 44_100;
  (match Boot.go ~max_insns:300_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "did not halt");
  Devices.Ad.set_rate k.Kernel.ad 0;

  let produced = Devices.Ad.delivered k.Kernel.ad in
  let consumed = Queue.length (let q = Devices.Da.drain k.Kernel.da |> List.to_seq |> Queue.of_seq in q) in
  Fmt.pr "simulated time: %.1f ms at 44.1 kHz@." (Machine.time_us m /. 1000.0);
  Fmt.pr "A/D samples delivered: %d;  D/A samples written: %d;  overruns: %d@."
    produced consumed adq.Interrupt.adq_overruns;
  Fmt.pr "audio consumer quantum adapted to %d us@." consumer.Kernel.quantum_us;
  if adq.Interrupt.adq_overruns = 0 && consumed > 0 then
    Fmt.pr "the buffered queue kept up: no samples dropped@."
