(* A two-thread producer/consumer pipeline over a kernel pipe,
   illustrating the stream model of I/O (§5.2): both ends are active,
   single producer and single consumer, so the quaject interfacer
   picks an SP-SC queue — the pipe — and the threads block on
   full/empty through the standard protocol.

   Run with: dune exec examples/pipeline.exe *)

open Quamachine
open Synthesis
module I = Insn

let () =
  (* ask the interfacer what connects these endpoints *)
  let connector =
    Quaject.connect
      ~producer:(Quaject.port Quaject.Active)
      ~consumer:(Quaject.port Quaject.Active)
  in
  Fmt.pr "interfacer: active producer + active consumer (single/single) -> %s@."
    (Quaject.connector_name connector);

  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let vfs = b.Boot.vfs in

  (* a small pipe so the producer outruns the consumer and blocks *)
  let pipe = Kpipe.create k ~cap:64 () in

  let total = 5000 in
  let result = Kalloc.alloc_zeroed k.Kernel.alloc 16 in

  (* Producer: writes 1..total into the pipe, 8 words at a time. *)
  let src = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let producer_prog rfd_wfd =
    let _, wfd = rfd_wfd in
    [
      I.Move (I.Imm 1, I.Reg I.r9); (* next value *)
      I.Label "loop";
      (* build a burst of 8 consecutive values *)
      I.Move (I.Imm src, I.Reg I.r10);
      I.Move (I.Imm 7, I.Reg I.r11);
      I.Label "fill";
      I.Move (I.Reg I.r9, I.Post_inc I.r10);
      I.Alu (I.Add, I.Imm 1, I.r9);
      I.Dbra (I.r11, I.To_label "fill");
      (* write(wfd, src, 8) *)
      I.Move (I.Imm wfd, I.Reg I.r1);
      I.Move (I.Imm src, I.Reg I.r2);
      I.Move (I.Imm 8, I.Reg I.r3);
      I.Trap 2;
      I.Cmp (I.Imm (total + 1), I.Reg I.r9);
      I.B (I.Ne, I.To_label "loop");
      I.Trap 0;
    ]
  in

  (* Consumer: reads and accumulates until it has seen [total] words. *)
  let dst = Kalloc.alloc_zeroed k.Kernel.alloc 64 in
  let consumer_prog rfd_wfd =
    let rfd, _ = rfd_wfd in
    [
      I.Move (I.Imm 0, I.Reg I.r9); (* sum *)
      I.Move (I.Imm 0, I.Reg I.r10); (* words seen *)
      I.Label "loop";
      I.Move (I.Imm rfd, I.Reg I.r1);
      I.Move (I.Imm dst, I.Reg I.r2);
      I.Move (I.Imm 32, I.Reg I.r3);
      I.Trap 1; (* r0 = words read *)
      I.Move (I.Reg I.r0, I.Reg I.r11);
      I.Alu (I.Add, I.Reg I.r11, I.r10);
      I.Move (I.Imm dst, I.Reg I.r12);
      I.Tst (I.Reg I.r11);
      I.B (I.Eq, I.To_label "loop");
      I.Alu (I.Sub, I.Imm 1, I.r11);
      I.Label "acc";
      I.Alu (I.Add, I.Post_inc I.r12, I.r9);
      I.Dbra (I.r11, I.To_label "acc");
      I.Cmp (I.Imm total, I.Reg I.r10);
      I.B (I.Ne, I.To_label "loop");
      I.Move (I.Reg I.r9, I.Abs result);
      I.Trap 0;
    ]
  in

  (* Create both threads, then attach pipe ends to each (the read end
     synthesized for the consumer, the write end for the producer). *)
  let consumer =
    Thread.create k ~quantum_us:150 ~entry:0
      ~segments:[ (dst, 64); (result, 16) ]
      ()
  in
  let producer =
    Thread.create k ~quantum_us:150 ~entry:0 ~segments:[ (src, 16) ] ()
  in
  let cons_fds = Kpipe.attach vfs pipe consumer in
  let prod_fds = Kpipe.attach vfs pipe producer in
  let centry, _ = Asm.assemble m (consumer_prog cons_fds) in
  let pentry, _ = Asm.assemble m (producer_prog prod_fds) in
  Machine.poke m (consumer.Kernel.base + Layout.Tte.off_regs + 17) centry;
  Machine.poke m (producer.Kernel.base + Layout.Tte.off_regs + 17) pentry;

  (* fine-grain scheduling watches both gauges *)
  let _sched = Scheduler.install k ~epoch_us:2_000 () in

  (match Boot.go ~max_insns:200_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "did not halt");

  let expected = total * (total + 1) / 2 in
  Fmt.pr "consumer sum: %d (expected %d)@." (Machine.peek m result) expected;
  Fmt.pr "simulated time: %.2f ms@." (Machine.time_us m /. 1000.0);
  Fmt.pr "producer quantum ended at %d us, consumer at %d us (adaptive)@."
    producer.Kernel.quantum_us consumer.Kernel.quantum_us
