(* synthesis-cli: poke at a booted Synthesis kernel from the command
   line — list and disassemble synthesized routines, show the code the
   kernel generates for an `open`, run a demo workload with the
   monitor's counters, and print the boot inventory. *)

open Quamachine
open Synthesis
module I = Insn

(* A fully-populated kernel: all servers plus one opened file and one
   opened tty so the registry shows specialized routines. *)
let booted_with_opens () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Boot.kernel in
  let env = se.Repro_harness.Harness.s_env in
  let program =
    [
      I.Move (I.Imm env.Repro_harness.Programs.e_name_file, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Imm env.Repro_harness.Programs.e_name_tty, I.Reg I.r1);
      I.Trap 3;
      I.Trap 0;
    ]
  in
  ignore (Repro_harness.Harness.synthesis_run se ~program);
  k

let cmd_registry () =
  let k = booted_with_opens () in
  Fmt.pr "synthesized/installed kernel routines (entry, length, name):@.";
  Inspect.pp_registry k Fmt.stdout ();
  Fmt.pr "@.%d routines, %d instructions total@."
    (List.length (Kernel.registry k))
    (Kernel.synthesized_insns k)

let cmd_disasm pattern =
  let k = booted_with_opens () in
  match Inspect.grep k pattern with
  | [] -> Fmt.pr "no routine matching %S@." pattern
  | matches ->
    List.iter (fun (name, _, _) -> Inspect.disassemble_routine k Fmt.stdout name) matches

let cmd_switch_code () =
  let k = booted_with_opens () in
  Fmt.pr
    "The executable ready queue: each thread's sw_out ends in a jmp@.\
     patched to the next thread's sw_in — this is the dispatcher.@.@.";
  (match Inspect.grep k "/sw_out" with
  | (name, _, _) :: _ -> Inspect.disassemble_routine k Fmt.stdout name
  | [] -> ());
  match Inspect.grep k "/sw_in" with
  | (name, _, _) :: _ -> Inspect.disassemble_routine k Fmt.stdout name
  | [] -> ()

let cmd_profile () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Boot.kernel in
  let m = k.Kernel.machine in
  Machine.profile_enable m true;
  let env = se.Repro_harness.Harness.s_env in
  let program = Repro_harness.Programs.pipe_rw env ~chunk:64 ~iters:200 in
  ignore (Repro_harness.Harness.synthesis_run se ~program);
  Fmt.pr "cycle profile of 200 x 64-word pipe write+read, by routine:@.";
  Inspect.pp_profile k Fmt.stdout ~top:12

let cmd_demo () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Boot.kernel in
  let m = k.Kernel.machine in
  Machine.trace_enable m true;
  let env = se.Repro_harness.Harness.s_env in
  let program = Repro_harness.Programs.pipe_rw env ~chunk:64 ~iters:100 in
  let secs = Repro_harness.Harness.synthesis_run se ~program in
  Fmt.pr "ran 100 x 64-word pipe write+read in %.2f ms simulated@." (secs *. 1000.0);
  Monitor.pp_counters m Fmt.stdout ();
  Fmt.pr "@.last instructions executed (kernel monitor trace):@.";
  Monitor.pp_trace m Fmt.stdout 12;
  Fmt.pr "@.threads at exit:@.";
  Inspect.pp_threads k Fmt.stdout ()

(* Boot a kernel with tracing attached from the start (so the context
   switch and queue probes are compiled into the synthesized code),
   run the quickstart-style two-stage pipe workload, then print the
   cycle-attribution summary and export Chrome trace JSON. *)
let cmd_trace out =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let tr = Ktrace.create m in
  Kernel.attach_tracing k tr;
  let _sched = Scheduler.install k ~epoch_us:2_000 () in
  let pipe = Kpipe.create k ~cap:64 () in
  let total = 4096 in
  let src = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let dst = Kalloc.alloc_zeroed k.Kernel.alloc 64 in
  let result = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let producer_prog ~wfd =
    [
      I.Move (I.Imm 1, I.Reg I.r9);
      I.Label "loop";
      I.Move (I.Imm src, I.Reg I.r10);
      I.Move (I.Imm 7, I.Reg I.r11);
      I.Label "fill";
      I.Move (I.Reg I.r9, I.Post_inc I.r10);
      I.Alu (I.Add, I.Imm 1, I.r9);
      I.Dbra (I.r11, I.To_label "fill");
      I.Move (I.Imm wfd, I.Reg I.r1);
      I.Move (I.Imm src, I.Reg I.r2);
      I.Move (I.Imm 8, I.Reg I.r3);
      I.Trap 2;
      I.Cmp (I.Imm (total + 1), I.Reg I.r9);
      I.B (I.Ne, I.To_label "loop");
      I.Trap 0;
    ]
  in
  let consumer_prog ~rfd =
    [
      I.Move (I.Imm 0, I.Reg I.r9);
      I.Move (I.Imm 0, I.Reg I.r10);
      I.Label "loop";
      I.Move (I.Imm rfd, I.Reg I.r1);
      I.Move (I.Imm dst, I.Reg I.r2);
      I.Move (I.Imm 32, I.Reg I.r3);
      I.Trap 1;
      I.Move (I.Reg I.r0, I.Reg I.r11);
      I.Alu (I.Add, I.Reg I.r11, I.r10);
      I.Move (I.Imm dst, I.Reg I.r12);
      I.Tst (I.Reg I.r11);
      I.B (I.Eq, I.To_label "loop");
      I.Alu (I.Sub, I.Imm 1, I.r11);
      I.Label "acc";
      I.Alu (I.Add, I.Post_inc I.r12, I.r9);
      I.Dbra (I.r11, I.To_label "acc");
      I.Cmp (I.Imm total, I.Reg I.r10);
      I.B (I.Ne, I.To_label "loop");
      I.Move (I.Reg I.r9, I.Abs result);
      I.Trap 0;
    ]
  in
  let consumer =
    Thread.create k ~quantum_us:150 ~entry:0
      ~segments:[ (dst, 64); (result, 16) ]
      ()
  in
  let producer = Thread.create k ~quantum_us:150 ~entry:0 ~segments:[ (src, 16) ] () in
  let crfd, _ = Kpipe.attach b.Boot.vfs pipe consumer in
  let _, pwfd = Kpipe.attach b.Boot.vfs pipe producer in
  let centry, _ = Asm.assemble m (consumer_prog ~rfd:crfd) in
  let pentry, _ = Asm.assemble m (producer_prog ~wfd:pwfd) in
  Machine.poke m (consumer.Kernel.base + Layout.Tte.off_regs + 17) centry;
  Machine.poke m (producer.Kernel.base + Layout.Tte.off_regs + 17) pentry;
  (match Boot.go ~max_insns:200_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "trace workload did not halt");
  let expected = total * (total + 1) / 2 in
  let got = Machine.peek m result in
  if got <> expected then
    failwith (Fmt.str "trace workload wrong sum: %d, expected %d" got expected);
  Ktrace.pp_summary Fmt.stdout tr;
  let attributed = Ktrace.attributed_total tr in
  let traced = Ktrace.traced_cycles tr in
  Fmt.pr "@.attribution check: %d cycles attributed, %d traced -> %s@." attributed
    traced
    (if attributed = traced then "balanced" else "IMBALANCED");
  let json = Ktrace.to_chrome_json tr in
  (match open_out out with
  | oc ->
    output_string oc json;
    close_out oc
  | exception Sys_error msg ->
    Fmt.epr "cannot write trace: %s@." msg;
    exit 1);
  Fmt.pr "wrote %s (%d events, %d dropped) — load it at chrome://tracing@." out
    (List.length (Ktrace.events tr))
    (Ktrace.dropped tr);
  if attributed <> traced then exit 1

open Cmdliner

let pattern =
  Arg.(value & pos 0 string "open" & info [] ~docv:"PATTERN" ~doc:"registry name substring")

let cmds =
  [
    Cmd.v (Cmd.info "registry" ~doc:"List all synthesized kernel routines")
      Term.(const cmd_registry $ const ());
    Cmd.v
      (Cmd.info "disasm" ~doc:"Disassemble synthesized routines matching PATTERN")
      Term.(const cmd_disasm $ pattern);
    Cmd.v
      (Cmd.info "switch-code"
         ~doc:"Show a thread's synthesized context-switch code (Figure 3)")
      Term.(const cmd_switch_code $ const ());
    Cmd.v (Cmd.info "demo" ~doc:"Run a pipe workload and show monitor counters")
      Term.(const cmd_demo $ const ());
    Cmd.v
      (Cmd.info "profile" ~doc:"Cycle profile of a pipe workload, by kernel routine")
      Term.(const cmd_profile $ const ());
    (let out =
       Arg.(
         value & opt string "trace.json"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Chrome trace output path")
     in
     Cmd.v
       (Cmd.info "trace"
          ~doc:
            "Run a two-stage pipe workload with ktrace attached; print the \
             cycle-attribution summary and write Chrome trace JSON")
       Term.(const cmd_trace $ out));
  ]

let () =
  exit
    (Cmd.eval
       (Cmd.group
          ~default:Term.(const cmd_demo $ const ())
          (Cmd.info "synthesis-cli" ~doc:"Inspect the Synthesis kernel reproduction")
          cmds))
