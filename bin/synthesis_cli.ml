(* synthesis-cli: poke at a booted Synthesis kernel from the command
   line — list and disassemble synthesized routines, show the code the
   kernel generates for an `open`, run a demo workload with the
   monitor's counters, and print the boot inventory. *)

open Quamachine
open Synthesis
module I = Insn

(* A fully-populated kernel: all servers plus one opened file and one
   opened tty so the registry shows specialized routines. *)
let booted_with_opens () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Boot.kernel in
  let env = se.Repro_harness.Harness.s_env in
  let program =
    [
      I.Move (I.Imm env.Repro_harness.Programs.e_name_file, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Imm env.Repro_harness.Programs.e_name_tty, I.Reg I.r1);
      I.Trap 3;
      I.Trap 0;
    ]
  in
  ignore (Repro_harness.Harness.synthesis_run se ~program);
  k

let cmd_registry () =
  let k = booted_with_opens () in
  Fmt.pr "synthesized/installed kernel routines (entry, length, name):@.";
  Inspect.pp_registry k Fmt.stdout ();
  Fmt.pr "@.%d routines, %d instructions total@."
    (List.length (Kernel.registry k))
    (Kernel.synthesized_insns k)

let cmd_disasm pattern =
  let k = booted_with_opens () in
  match Inspect.grep k pattern with
  | [] -> Fmt.pr "no routine matching %S@." pattern
  | matches ->
    List.iter (fun (name, _, _) -> Inspect.disassemble_routine k Fmt.stdout name) matches

let cmd_switch_code () =
  let k = booted_with_opens () in
  Fmt.pr
    "The executable ready queue: each thread's sw_out ends in a jmp@.\
     patched to the next thread's sw_in — this is the dispatcher.@.@.";
  (match Inspect.grep k "/sw_out" with
  | (name, _, _) :: _ -> Inspect.disassemble_routine k Fmt.stdout name
  | [] -> ());
  match Inspect.grep k "/sw_in" with
  | (name, _, _) :: _ -> Inspect.disassemble_routine k Fmt.stdout name
  | [] -> ()

(* kperf: boot with tracing attached (exact owner attribution), turn
   on PMU pc sampling, run the two-stage pipe pipeline, and report
   flat + per-owner profiles.  The owner percentages must partition
   the machine's cycle total exactly — the command fails if not. *)
let cmd_profile out =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let tr = Ktrace.create m in
  Kernel.attach_tracing k tr;
  ignore (Kernel.attach_spans k);
  let pmu = Pmu.create m in
  (* prime period so sampling never locks onto a loop's cycle pattern *)
  Pmu.enable_sampling pmu ~period:251;
  Pmu.start pmu;
  let pl = Repro_harness.Harness.Pipeline.build ~total:4096 b in
  Repro_harness.Harness.Pipeline.run pl;
  Pmu.stop pmu;
  let p = Profile.collect k pmu in
  Fmt.pr "two-stage pipe pipeline (%d words through the pipe):@.@."
    pl.Repro_harness.Harness.Pipeline.pl_total;
  Profile.pp Fmt.stdout p;
  Fmt.pr "@.pmu counters over the run:@.";
  Pmu.pp Fmt.stdout pmu;
  Fmt.pr "@.attribution check: %d cycles in owner lines, %d machine total -> %s@."
    (Profile.owners_total p) p.Profile.p_total
    (if Profile.balanced p then "balanced" else "IMBALANCED");
  (match out with
  | None -> ()
  | Some path ->
    (match open_out path with
    | oc ->
      output_string oc (Profile.to_json p);
      close_out oc;
      Fmt.pr "wrote %s@." path
    | exception Sys_error msg ->
      Fmt.epr "cannot write profile: %s@." msg;
      exit 1));
  if not (Profile.balanced p) then exit 1

let cmd_demo () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Boot.kernel in
  let m = k.Kernel.machine in
  Machine.trace_enable m true;
  let env = se.Repro_harness.Harness.s_env in
  let program = Repro_harness.Programs.pipe_rw env ~chunk:64 ~iters:100 in
  let secs = Repro_harness.Harness.synthesis_run se ~program in
  Fmt.pr "ran 100 x 64-word pipe write+read in %.2f ms simulated@." (secs *. 1000.0);
  Monitor.pp_counters m Fmt.stdout ();
  Fmt.pr "@.last instructions executed (kernel monitor trace):@.";
  Monitor.pp_trace m Fmt.stdout 12;
  Fmt.pr "@.threads at exit:@.";
  Inspect.pp_threads k Fmt.stdout ()

(* Boot a kernel with tracing attached from the start (so the context
   switch and queue probes are compiled into the synthesized code),
   run the quickstart-style two-stage pipe workload, then print the
   cycle-attribution summary and export Chrome trace JSON. *)
let cmd_trace out =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let tr = Ktrace.create m in
  Kernel.attach_tracing k tr;
  let _sched = Scheduler.install k ~epoch_us:2_000 () in
  let pl = Repro_harness.Harness.Pipeline.build ~total:4096 b in
  Repro_harness.Harness.Pipeline.run pl;
  Ktrace.pp_summary Fmt.stdout tr;
  let attributed = Ktrace.attributed_total tr in
  let traced = Ktrace.traced_cycles tr in
  Fmt.pr "@.attribution check: %d cycles attributed, %d traced -> %s@." attributed
    traced
    (if attributed = traced then "balanced" else "IMBALANCED");
  let json = Ktrace.to_chrome_json tr in
  (match open_out out with
  | oc ->
    output_string oc json;
    close_out oc
  | exception Sys_error msg ->
    Fmt.epr "cannot write trace: %s@." msg;
    exit 1);
  Fmt.pr "wrote %s (%d events, %d dropped) — load it at chrome://tracing@." out
    (List.length (Ktrace.events tr))
    (Ktrace.dropped tr);
  if attributed <> traced then exit 1

(* kfault: run the interleaving explorer across all four queue kinds
   for one seed (or a --seeds N sweep), plus the targeted recovery
   scenarios.  Exits non-zero on any invariant violation, so CI can
   gate on `make faultsim`. *)
let cmd_faultsim subject cores seed seeds verbose postmortem_dir =
  let module E = Repro_harness.Explorer in
  let failures = ref 0 in
  let first = seed and last = seed + seeds - 1 in
  (* flight-recorder forensics: when a run fails, print its postmortem
     and (with --postmortem-dir) drop the dump plus the black-box ring
     as Chrome trace JSON, one pair per failing (subject, seed) *)
  let save_forensics (r : E.subject_result) =
    (match r.E.s_postmortem with
    | Some pm -> Fmt.pr "%s@." pm
    | None -> ());
    match postmortem_dir with
    | None -> ()
    | Some dir ->
      (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
       with Sys_error _ -> ());
      let base =
        Fmt.str "%s/%s-seed%d"
          dir
          (String.map (fun c -> if c = '/' then '_' else c) r.E.s_subject)
          r.E.s_seed
      in
      let write path contents =
        match open_out path with
        | oc ->
          output_string oc contents;
          close_out oc;
          Fmt.pr "    wrote %s@." path
        | exception Sys_error msg -> Fmt.epr "cannot write %s: %s@." path msg
      in
      Option.iter (write (base ^ ".postmortem.txt")) r.E.s_postmortem;
      Option.iter (write (base ^ ".blackbox.json")) r.E.s_blackbox_json
  in
  (* the four lock-free queue kinds, plus the timer-loss recovery *)
  let run_queues () =
    for s = first to last do
      List.iter
        (fun (r : E.result) ->
          let ok = r.E.x_violations = [] in
          if not ok then incr failures;
          if verbose || not ok then
            Fmt.pr
              "seed %3d %-4s %dp/%dc: %d/%d consumed, stride %d, %d \
               preemptions, %d faults -> %s@."
              r.E.x_seed (E.kind_name r.E.x_kind) r.E.x_producers
              r.E.x_consumers r.E.x_consumed
              (r.E.x_producers * r.E.x_items)
              r.E.x_stride r.E.x_preemptions r.E.x_injected
              (if ok then "ok" else "FAIL");
          List.iter (fun v -> Fmt.pr "    violation: %s@." v) r.E.x_violations)
        (E.run_all ~seed:s ())
    done;
    Fmt.pr "faultsim[queues]: %d runs (seeds %d..%d x 4 kinds), %d failed@."
      (4 * seeds) first last !failures;
    let tl = E.timer_loss ~seed () in
    Fmt.pr
      "timer-loss: dropped completion at cycle %d, watchdog restarts %d, \
       recovered in %d cycles (stall %d)@."
      tl.E.tl_drop_cycle tl.E.tl_restarts tl.E.tl_recovery_cycles
      tl.E.tl_stall_cycles;
    if tl.E.tl_restarts < 1 || tl.E.tl_recovery_cycles <= 0 then begin
      incr failures;
      Fmt.pr "    FAIL: timer loss not recovered@."
    end
  in
  (* one pluggable subject: seed sweep, then a determinism re-run and
     a sabotage run that must be caught *)
  let run_subject_sweep sub =
    let name = E.subject_name sub in
    let before = !failures in
    for s = first to last do
      let r = E.run_subject sub ~seed:s () in
      let ok = r.E.s_violations = [] in
      if not ok then incr failures;
      if verbose || not ok then
        Fmt.pr
          "seed %3d %-11s: %d/%d progress, stride %d, %d preemptions, %d \
           faults, trace %x -> %s@."
          r.E.s_seed name r.E.s_progress r.E.s_goal r.E.s_stride
          r.E.s_preemptions r.E.s_injected r.E.s_trace_hash
          (if ok then "ok" else "FAIL");
      List.iter (fun v -> Fmt.pr "    violation: %s@." v) r.E.s_violations;
      if not ok then save_forensics r
    done;
    let a = E.run_subject sub ~seed:first () in
    let b = E.run_subject sub ~seed:first () in
    if a.E.s_trace_hash <> b.E.s_trace_hash then begin
      incr failures;
      Fmt.pr "    FAIL: %s seed %d is nondeterministic (%x vs %x)@." name
        first a.E.s_trace_hash b.E.s_trace_hash
    end;
    let n = E.run_subject sub ~sabotage:true ~seed:first () in
    if n.E.s_violations = [] then begin
      incr failures;
      Fmt.pr "    FAIL: %s sabotage run reported no violation@." name
    end;
    Fmt.pr
      "faultsim[%s]: seeds %d..%d + determinism + sabotage, %d failed@." name
      first last
      (!failures - before)
  in
  (* kcrash: the crash-point explorer — per litmus family, a seed
     sweep with all mechanisms on (must pass), a determinism re-run,
     and a mechanism-disabled negative run (must fail: the litmus has
     to bite when its mechanism is off) *)
  let run_crash_sweep () =
    let before = !failures in
    let save_crash_report (r : E.crash_result) =
      match (r.E.c_report, postmortem_dir) with
      | Some report, Some dir ->
        (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
         with Sys_error _ -> ());
        let path = Fmt.str "%s/crash-%s-seed%d.report.txt" dir r.E.c_family r.E.c_seed in
        (match open_out path with
        | oc ->
          output_string oc report;
          close_out oc;
          Fmt.pr "    wrote %s@." path
        | exception Sys_error msg -> Fmt.epr "cannot write %s: %s@." path msg)
      | _ -> ()
    in
    List.iter
      (fun family ->
        let name = E.crash_family_name family in
        for s = first to last do
          let r = E.run_crash family ~seed:s () in
          let ok = r.E.c_violations = [] in
          if not ok then incr failures;
          if verbose || not ok then
            Fmt.pr
              "seed %3d crash/%-13s: %d states (%d torn, %d writes), %d \
               replays, live-cut=%b, trace %x -> %s@."
              r.E.c_seed name r.E.c_states r.E.c_torn r.E.c_journal_len
              r.E.c_replays r.E.c_live_cut r.E.c_trace_hash
              (if ok then "ok" else "FAIL");
          List.iter (fun v -> Fmt.pr "    violation: %s@." v) r.E.c_violations;
          if not ok then save_crash_report r
        done;
        let a = E.run_crash family ~seed:first () in
        let b = E.run_crash family ~seed:first () in
        if a.E.c_trace_hash <> b.E.c_trace_hash then begin
          incr failures;
          Fmt.pr "    FAIL: crash/%s seed %d is nondeterministic (%x vs %x)@."
            name first a.E.c_trace_hash b.E.c_trace_hash
        end;
        let mech, label =
          match family with
          | E.Replace ->
            ({ Synthesis.Dfs.m_barriers = true; m_journal = false }, "intent log off")
          | E.Create_rename | E.Prefix_append ->
            ({ Synthesis.Dfs.m_barriers = false; m_journal = true }, "barriers off")
        in
        let n = E.run_crash ~mechanisms:mech family ~seed:first () in
        if n.E.c_violations = [] then begin
          incr failures;
          Fmt.pr "    FAIL: crash/%s litmus held with %s — mechanism not load-bearing@."
            name label
        end
        else if verbose then
          Fmt.pr "crash/%-13s negative (%s): %d violating states found, as \
                  expected@."
            name label
            (List.length n.E.c_violations))
      E.crash_families;
    Fmt.pr
      "faultsim[crash]: %d families x seeds %d..%d + determinism + negative, \
       %d failed@."
      (List.length E.crash_families)
      first last (!failures - before)
  in
  (* targeted disk-recovery scenarios *)
  let run_disk_recovery () =
    List.iter
      (fun (mode, name, want_completed) ->
        let d = E.disk_fault ~seed ~mode () in
        Fmt.pr
          "disk-%s: completed=%b timeouts=%d retries=%d failed=%d recovery=%d \
           cycles@."
          name d.E.df_completed d.E.df_timeouts d.E.df_retries d.E.df_failed
          d.E.df_recovery_cycles;
        if d.E.df_completed <> want_completed then begin
          incr failures;
          Fmt.pr "    FAIL: expected completed=%b@." want_completed
        end)
      [
        (E.Disk_stall, "stall", true);
        (E.Disk_drop, "drop", true);
        (E.Disk_bad_block, "bad-block", false);
      ]
  in
  (match subject with
  | "all" ->
    run_queues ();
    List.iter run_subject_sweep E.subjects;
    run_disk_recovery ();
    run_crash_sweep ()
  | "queues" -> run_queues ()
  | "ready-queue" -> run_subject_sweep E.ready_queue_subject
  | "kpipe" -> run_subject_sweep E.kpipe_subject
  | "codeflip" -> run_subject_sweep E.codeflip_subject
  | "synthcache" -> run_subject_sweep E.synthcache_subject
  | "smp" -> run_subject_sweep (E.smp_subject ?cores ())
  | "serve" -> run_subject_sweep E.serve_subject
  | "crash" -> run_crash_sweep ()
  | "disk" ->
    run_subject_sweep E.disk_subject;
    run_disk_recovery ()
  | s ->
    Fmt.pr
      "unknown subject %S (try all, queues, ready-queue, kpipe, disk, \
       codeflip, synthcache, smp, serve, crash)@."
      s;
    exit 2);
  if !failures > 0 then begin
    Fmt.pr "faultsim FAILED (%d)@." !failures;
    exit 1
  end
  else Fmt.pr "faultsim passed@."

open Cmdliner

let pattern =
  Arg.(value & pos 0 string "open" & info [] ~docv:"PATTERN" ~doc:"registry name substring")

let cmds =
  [
    Cmd.v (Cmd.info "registry" ~doc:"List all synthesized kernel routines")
      Term.(const cmd_registry $ const ());
    Cmd.v
      (Cmd.info "disasm" ~doc:"Disassemble synthesized routines matching PATTERN")
      Term.(const cmd_disasm $ pattern);
    Cmd.v
      (Cmd.info "switch-code"
         ~doc:"Show a thread's synthesized context-switch code (Figure 3)")
      Term.(const cmd_switch_code $ const ());
    Cmd.v (Cmd.info "demo" ~doc:"Run a pipe workload and show monitor counters")
      Term.(const cmd_demo $ const ());
    (let out =
       Arg.(
         value
         & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"JSON profile output path")
     in
     Cmd.v
       (Cmd.info "profile"
          ~doc:
            "kperf: PMU-sampled flat + exact per-owner cycle profile of the \
             two-stage pipe pipeline")
       Term.(const cmd_profile $ out));
    (let out =
       Arg.(
         value & opt string "trace.json"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Chrome trace output path")
     in
     Cmd.v
       (Cmd.info "trace"
          ~doc:
            "Run a two-stage pipe workload with ktrace attached; print the \
             cycle-attribution summary and write Chrome trace JSON")
       Term.(const cmd_trace $ out));
    (let seed =
       Arg.(
         value & opt int 1
         & info [ "s"; "seed" ] ~docv:"N" ~doc:"first fault-plan seed")
     in
     let seeds =
       Arg.(
         value & opt int 1
         & info [ "n"; "seeds" ] ~docv:"COUNT" ~doc:"number of seeds to sweep")
     in
     let verbose =
       Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"print every run")
     in
     let subject =
       Arg.(
         value & opt string "all"
         & info [ "subject" ] ~docv:"SUBJECT"
             ~doc:
               "workload to stress: all, queues, ready-queue, kpipe, disk, \
                codeflip, synthcache, smp, serve, or crash")
     in
     let cores =
       Arg.(
         value
         & opt (some int) None
         & info [ "cores" ] ~docv:"N"
             ~doc:
               "core count for the smp subject (default: 2-4 picked by \
                seed)")
     in
     let postmortem_dir =
       Arg.(
         value
         & opt (some string) None
         & info [ "postmortem-dir" ] ~docv:"DIR"
             ~doc:
               "write each failing run's flight-recorder postmortem and \
                black-box Chrome trace JSON into DIR")
     in
     Cmd.v
       (Cmd.info "faultsim"
          ~doc:
            "kfault: sweep the interleaving explorer (forced preemption + \
             injected faults) over the selected subject — the four lock-free \
             queue kinds, the executable ready queue, a kpipe pair, the \
             disk elevator, the kheal code-flip/self-repair storm, the \
             ksynth shared-page repair storm, the kSMP multi-core \
             work-stealing storm, and the kcrash power-cut \
             crash-consistency litmus families — plus the timer-loss and \
             disk-fault recovery scenarios")
       Term.(
         const cmd_faultsim $ subject $ cores $ seed $ seeds $ verbose
         $ postmortem_dir));
  ]

let () =
  exit
    (Cmd.eval
       (Cmd.group
          ~default:Term.(const cmd_demo $ const ())
          (Cmd.info "synthesis-cli" ~doc:"Inspect the Synthesis kernel reproduction")
          cmds))
