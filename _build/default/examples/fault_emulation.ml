(* Error signal to self (§4.3): "supporting efficient emulation of
   unimplemented kernel calls or machine instructions".

   The thread installs a user-mode error procedure; every privileged
   instruction it then executes traps, the synthesized per-thread
   error handler copies the fault frame onto the user stack and
   re-enters user mode, and the procedure *emulates* the instruction
   and resumes right after it — the mechanism the paper's UNIX
   emulator was built on.

   Run with: dune exec examples/fault_emulation.exe *)

open Quamachine
open Synthesis
module I = Insn

let () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in

  (* The user-mode "instruction emulator": counts each emulation and
     resumes past the faulting instruction.  A real emulator would
     decode [faulting PC] and interpret it. *)
  let emulator_prog =
    [
      I.Pop I.r4; (* faulting PC (from the copied frame) *)
      I.Pop I.r5; (* faulting SR *)
      I.Alu_mem (I.Add, I.Imm 1, I.Abs cell); (* emulations += 1 *)
      I.Move (I.Reg I.r4, I.Abs (cell + 2)); (* remember where *)
      I.Alu (I.Add, I.Imm 1, I.r4);
      I.Jmp (I.To_reg I.r4); (* resume after the instruction *)
    ]
  in
  let emulator, _ = Asm.assemble m emulator_prog in

  (* A program that "uses" three unimplemented (privileged)
     instructions mixed into normal computation. *)
  let prog =
    [
      I.Move (I.Imm 100, I.Reg I.r9);
      I.Set_ipl 1; (* privileged: trap -> emulate -> resume *)
      I.Alu (I.Add, I.Imm 11, I.r9);
      I.Set_ipl 2;
      I.Alu (I.Add, I.Imm 22, I.r9);
      I.Set_ipl 3;
      I.Alu (I.Add, I.Imm 33, I.r9);
      I.Move (I.Reg I.r9, I.Abs (cell + 1));
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  let t = Thread.create k ~entry ~segments:[ (cell, 16) ] () in
  let handler = Thread.set_error_handler k t ~user_proc:emulator in

  Fmt.pr "synthesized error-trap handler for thread %d:@." t.Kernel.tid;
  Inspect.disassemble_routine k Fmt.stdout
    (Fmt.str "error/t%d/trap" t.Kernel.tid);
  ignore handler;

  (match Boot.go ~max_insns:1_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "did not halt");

  Fmt.pr "@.instructions emulated in user mode: %d@." (Machine.peek m cell);
  Fmt.pr "computation result: %d (expected %d)@."
    (Machine.peek m (cell + 1))
    (100 + 11 + 22 + 33);
  Fmt.pr "last faulting PC handed to user mode: %d@." (Machine.peek m (cell + 2));
  Fmt.pr "threads killed by faults: %d@." (List.length k.Kernel.fault_log)
