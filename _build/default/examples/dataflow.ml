(* The directed-graph model of computation (§2.1), composed
   declaratively: generator -> squarer -> accumulator, three threads
   connected by two SP-SC pipes chosen by the quaject interfacer.

   Run with: dune exec examples/dataflow.exe *)

open Quamachine
open Synthesis
module I = Insn

let () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let n = 200 in
  let result = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let cell_a = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let cell_b = Kalloc.alloc_zeroed k.Kernel.alloc 16 in

  (* generator: writes 1..n, one word at a time *)
  let generator ~wfd =
    [
      I.Move (I.Imm 1, I.Reg I.r9);
      I.Label "loop";
      I.Move (I.Reg I.r9, I.Abs cell_a);
      I.Move (I.Imm wfd, I.Reg I.r1);
      I.Move (I.Imm cell_a, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 2;
      I.Alu (I.Add, I.Imm 1, I.r9);
      I.Cmp (I.Imm (n + 1), I.Reg I.r9);
      I.B (I.Ne, I.To_label "loop");
      I.Trap 0;
    ]
  in
  (* squarer: reads a word, squares it, writes it on *)
  let squarer ~rfd ~wfd =
    [
      I.Move (I.Imm n, I.Reg I.r9);
      I.Label "loop";
      I.Move (I.Imm rfd, I.Reg I.r1);
      I.Move (I.Imm cell_b, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 1;
      I.Move (I.Abs cell_b, I.Reg I.r10);
      I.Alu (I.Mul, I.Reg I.r10, I.r10);
      I.Move (I.Reg I.r10, I.Abs cell_b);
      I.Move (I.Imm wfd, I.Reg I.r1);
      I.Move (I.Imm cell_b, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 2;
      I.Alu (I.Sub, I.Imm 1, I.r9);
      I.B (I.Ne, I.To_label "loop");
      I.Trap 0;
    ]
  in
  (* accumulator: sums n squares *)
  let accumulator ~rfd =
    [
      I.Move (I.Imm 0, I.Reg I.r9);
      I.Move (I.Imm n, I.Reg I.r10);
      I.Label "loop";
      I.Move (I.Imm rfd, I.Reg I.r1);
      I.Move (I.Imm result, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 1;
      I.Alu (I.Add, I.Abs result, I.r9);
      I.Alu (I.Sub, I.Imm 1, I.r10);
      I.B (I.Ne, I.To_label "loop");
      I.Move (I.Reg I.r9, I.Abs result);
      I.Trap 0;
    ]
  in
  let built =
    Stream_graph.pipeline b.Boot.vfs
      [
        Stream_graph.stage ~segments:[ (cell_a, 16) ] (Stream_graph.Head generator);
        Stream_graph.stage ~segments:[ (cell_b, 16) ] (Stream_graph.Middle squarer);
        Stream_graph.stage
          ~segments:[ (result, 16) ]
          (Stream_graph.Tail accumulator);
      ]
  in
  Fmt.pr "graph: %d threads, %d arcs; connectors: %a@."
    (List.length built.Stream_graph.sg_threads)
    (List.length built.Stream_graph.sg_pipes)
    Fmt.(list ~sep:comma string)
    (List.map Quaject.connector_name built.Stream_graph.sg_connectors);
  let _sched = Scheduler.install k ~epoch_us:2_000 () in
  (match Boot.go ~max_insns:200_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "did not halt");
  let expected = n * (n + 1) * ((2 * n) + 1) / 6 in
  Fmt.pr "sum of squares 1..%d through the pipeline: %d (expected %d)@." n
    (Machine.peek m result) expected;
  Fmt.pr "simulated time: %.2f ms@." (Machine.time_us m /. 1000.0)
