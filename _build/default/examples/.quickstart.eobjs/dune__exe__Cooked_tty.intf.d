examples/cooked_tty.mli:
