examples/fault_emulation.ml: Asm Boot Fmt Insn Inspect Kalloc Kernel List Machine Quamachine Synthesis Thread
