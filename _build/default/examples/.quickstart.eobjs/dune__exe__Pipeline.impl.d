examples/pipeline.ml: Asm Boot Fmt Insn Kalloc Kernel Kpipe Layout Machine Quaject Quamachine Scheduler Synthesis Thread
