examples/dataflow.ml: Boot Fmt Insn Kalloc Kernel List Machine Quaject Quamachine Scheduler Stream_graph Synthesis
