examples/cooked_tty.ml: Asm Boot Char Devices Fmt Insn Kalloc Kernel Machine Quamachine String Synthesis Thread Tty
