examples/audio.ml: Asm Boot Ctx Devices Fmt Insn Interrupt Kernel Layout List Machine Mmio_map Quamachine Queue Scheduler Synthesis Thread
