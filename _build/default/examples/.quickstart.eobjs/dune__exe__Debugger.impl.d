examples/debugger.ml: Asm Boot Fmt Insn Kalloc Kernel Layout Machine Quamachine Ready_queue Synthesis Thread
