examples/debugger.mli:
