examples/quickstart.mli:
