examples/fault_emulation.mli:
