examples/quickstart.ml: Array Asm Boot Char Fmt Fs Insn Kalloc Kernel List Machine Quamachine String Synthesis Thread
