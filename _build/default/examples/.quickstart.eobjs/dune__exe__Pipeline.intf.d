examples/pipeline.mli:
