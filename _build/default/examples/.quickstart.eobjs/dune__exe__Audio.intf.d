examples/audio.mli:
