examples/dataflow.mli:
