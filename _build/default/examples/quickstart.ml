(* Quickstart: boot a Synthesis kernel, create a thread, and watch
   `open` synthesize the read routine it returns.

   Run with: dune exec examples/quickstart.exe *)

open Quamachine
open Synthesis
module I = Insn

let poke_string m addr s =
  String.iteri (fun i c -> Machine.poke m (addr + i) (Char.code c)) s;
  Machine.poke m (addr + String.length s) 0

let () =
  (* 1. Boot: devices, shared handlers, idle thread, name space. *)
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  Fmt.pr "booted: %d synthesized instructions of kernel code@."
    (Kernel.synthesized_insns k);

  (* 2. Create a file in the memory-resident file system. *)
  let content = Array.init 64 (fun i -> i * i) in
  let _file = Fs.create_file b.Boot.vfs ~name:"/data/squares" ~content () in

  (* 3. A user program: open the file, read it, sum the words, exit.
     The program talks to the kernel through traps; the read it
     performs runs code that `open` generated specifically for this
     file and this thread. *)
  let region = Kalloc.alloc_zeroed k.Kernel.alloc 256 in
  poke_string m region "/data/squares";
  let buf = region + 32 in
  let result_cell = region + 200 in
  let program =
    [
      (* fd = open("/data/squares") *)
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Reg I.r0, I.Reg I.r13);
      (* read 64 words *)
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Move (I.Imm buf, I.Reg I.r2);
      I.Move (I.Imm 64, I.Reg I.r3);
      I.Trap 1;
      (* sum them *)
      I.Move (I.Imm 0, I.Reg I.r9);
      I.Move (I.Imm buf, I.Reg I.r10);
      I.Move (I.Imm 63, I.Reg I.r11);
      I.Label "sum";
      I.Alu (I.Add, I.Post_inc I.r10, I.r9);
      I.Dbra (I.r11, I.To_label "sum");
      I.Move (I.Reg I.r9, I.Abs result_cell);
      (* close and exit *)
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Trap 4;
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m program in
  let _t = Thread.create k ~entry ~segments:[ (region, 256) ] () in

  (* 4. Run until the program exits. *)
  (match Boot.go ~max_insns:10_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "did not halt");

  let expected = Array.fold_left ( + ) 0 content in
  Fmt.pr "sum of 64 squares read through the synthesized routine: %d (expected %d)@."
    (Machine.peek m result_cell) expected;
  Fmt.pr "simulated time: %.1f us; %d instructions executed@."
    (Machine.time_us m) (Machine.insns_executed m);
  Fmt.pr "@.code synthesized for this run:@.";
  List.iter
    (fun (name, entry, n) ->
      if String.length name >= 4 && String.sub name 0 4 = "open" then
        Fmt.pr "  %-32s at %5d, %2d instructions@." name entry n)
    (Kernel.registry k)
