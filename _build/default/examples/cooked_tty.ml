(* The cooked TTY pipeline (§5.1): keyboard interrupts feed a
   dedicated queue; the filter thread interprets erase (^H) and kill
   (^U), echoes through the optimistic screen queue, and delivers
   complete lines to /dev/tty readers.

   Run with: dune exec examples/cooked_tty.exe *)

open Quamachine
open Synthesis
module I = Insn

let poke_string m addr s =
  String.iteri (fun i c -> Machine.poke m (addr + i) (Char.code c)) s;
  Machine.poke m (addr + String.length s) 0

let () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let _srv = Tty.install b.Boot.vfs in

  (* A reader program: open /dev/tty, read a line, store it. *)
  let region = Kalloc.alloc_zeroed k.Kernel.alloc 256 in
  poke_string m region "/dev/tty";
  let buf = region + 64 in
  let len_cell = region + 200 in
  let program =
    [
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3; (* open /dev/tty *)
      I.Move (I.Reg I.r0, I.Reg I.r13);
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Move (I.Imm buf, I.Reg I.r2);
      I.Move (I.Imm 64, I.Reg I.r3);
      I.Trap 1; (* read: blocks until the filter delivers a line *)
      I.Move (I.Reg I.r0, I.Abs len_cell);
      (* echo what we got back out through the same descriptor *)
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Move (I.Imm buf, I.Reg I.r2);
      I.Move (I.Abs len_cell, I.Reg I.r3);
      I.Trap 2;
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m program in
  let _t = Thread.create k ~entry ~segments:[ (region, 256) ] () in

  (* Type "helXX^H^Hlo world" + newline: the two ^H erase the XX. *)
  Devices.Tty.feed k.Kernel.tty "helXX\b\blo world\n";

  (match Boot.go ~max_insns:100_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "did not halt");

  let len = Machine.peek m len_cell in
  let line =
    String.init len (fun i -> Char.chr (Machine.peek m (buf + i) land 0x7F))
  in
  Fmt.pr "typed:    %S@." "helXX\\b\\blo world\\n";
  Fmt.pr "reader got %d words: %S@." len line;
  Fmt.pr "screen echo (raw device output): %S@."
    (Devices.Tty.output k.Kernel.tty);
  Fmt.pr "simulated time: %.2f ms@." (Machine.time_us m /. 1000.0)
