(* Host-level queue benchmarks: the optimistic queues of §3.2 running
   on real OCaml 5 domains — the multiprocessor the paper was designed
   for.  Single-threaded costs via Bechamel (one Test.make per queue
   flavour), plus a multi-domain throughput comparison of optimistic
   vs locked synchronization. *)

open Bechamel
open Toolkit

let test_queue_roundtrip name put get =
  Test.make ~name (Staged.stage (fun () -> put 42; ignore (get ())))

let tests () =
  let spsc = Oq.Spsc.create 64 in
  let mpsc = Oq.Mpsc.create 64 in
  let spmc = Oq.Spmc.create 64 in
  let mpmc = Oq.Mpmc.create 64 in
  let ded = Oq.Dedicated.create 64 in
  let locked = Oq.Locked.create 64 in
  Test.make_grouped ~name:"queue put+get" ~fmt:"%s %s"
    [
      test_queue_roundtrip "dedicated"
        (fun v -> ignore (Oq.Dedicated.try_put ded v))
        (fun () -> Oq.Dedicated.try_get ded);
      test_queue_roundtrip "spsc"
        (fun v -> ignore (Oq.Spsc.try_put spsc v))
        (fun () -> Oq.Spsc.try_get spsc);
      test_queue_roundtrip "mpsc"
        (fun v -> ignore (Oq.Mpsc.try_put mpsc v))
        (fun () -> Oq.Mpsc.try_get mpsc);
      test_queue_roundtrip "spmc"
        (fun v -> ignore (Oq.Spmc.try_put spmc v))
        (fun () -> Oq.Spmc.try_get spmc);
      test_queue_roundtrip "mpmc"
        (fun v -> ignore (Oq.Mpmc.try_put mpmc v))
        (fun () -> Oq.Mpmc.try_get mpmc);
      test_queue_roundtrip "locked (mutex baseline)"
        (fun v -> ignore (Oq.Locked.try_put locked v))
        (fun () -> Oq.Locked.try_get locked);
    ]

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] (tests ()) in
  let results = Analyze.all ols instance raw in
  Fmt.pr "%-36s %14s@." "benchmark" "ns/op";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Fmt.pr "%-36s %14.1f@." name est
      | _ -> Fmt.pr "%-36s %14s@." name "n/a")
    results

(* Multi-domain throughput: N producers + 1 consumer, optimistic MP-SC
   vs the mutex-protected queue. *)
let throughput ~producers ~per_producer ~put ~get =
  let t0 = Unix.gettimeofday () in
  let doms =
    List.init producers (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per_producer do
              put i
            done))
  in
  let total = producers * per_producer in
  for _ = 1 to total do
    ignore (get ())
  done;
  List.iter Domain.join doms;
  let dt = Unix.gettimeofday () -. t0 in
  float_of_int total /. dt /. 1.0e6

let run_domains () =
  Repro_harness.Harness.header "Multi-domain throughput (Mops/s), optimistic vs locked";
  Fmt.pr "%-12s %12s %12s@." "producers" "mpsc" "locked";
  List.iter
    (fun producers ->
      let per = 200_000 in
      let mpsc = Oq.Mpsc.create 1024 in
      let m =
        throughput ~producers ~per_producer:per
          ~put:(fun v -> Oq.Mpsc.put mpsc v)
          ~get:(fun () -> Oq.Mpsc.get mpsc)
      in
      let locked = Oq.Locked.create 1024 in
      let l =
        throughput ~producers ~per_producer:per
          ~put:(fun v -> Oq.Locked.put locked v)
          ~get:(fun () -> Oq.Locked.get locked)
      in
      Fmt.pr "%-12d %12.2f %12.2f@." producers m l)
    [ 1; 2; 3 ]

let run () =
  Repro_harness.Harness.header "Host-level queues (Bechamel, single domain)";
  run_bechamel ();
  run_domains ()
