bench/bechamel_suite.ml: Analyze Bechamel Benchmark Fmt Hashtbl Instance Measure Quamachine Repro_harness Staged Synthesis Test Time Toolkit
