bench/main.ml: Ablations Arg Bechamel_suite Cmd Cmdliner Host_queues Queues Sizes Table1 Table2 Table3 Table4 Table5 Term
