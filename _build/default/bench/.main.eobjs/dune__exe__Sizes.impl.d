bench/sizes.ml: Boot Fmt Kernel List Machine Quamachine Repro_harness Synthesis
