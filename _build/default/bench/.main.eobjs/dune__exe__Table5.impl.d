bench/table5.ml: Array Asm Boot Ctx Devices Fmt Insn Interrupt Kernel Kqueue Layout Machine Mmio_map Quamachine Repro_harness Synthesis Thread Tty Unix_emulator
