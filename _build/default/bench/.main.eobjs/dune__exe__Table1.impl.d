bench/table1.ml: Fmt List Quamachine Repro_harness
