bench/host_queues.ml: Analyze Bechamel Benchmark Domain Fmt Hashtbl Instance List Measure Oq Repro_harness Staged Test Time Toolkit Unix
