bench/queues.ml: Asm Boot Fmt Insn Kalloc Kernel Kqueue List Machine Quamachine Repro_harness Synthesis
