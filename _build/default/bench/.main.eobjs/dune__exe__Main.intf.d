bench/main.mli:
