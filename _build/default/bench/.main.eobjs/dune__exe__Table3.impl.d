bench/table3.ml: Asm Boot Fmt Insn Kernel Layout Machine Quamachine Repro_harness Synthesis Thread Unix_emulator
