bench/table2.ml: Fmt Insn List Quamachine Repro_harness Synthesis Unix_emulator
