bench/table4.ml: Asm Boot Ctx Fmt Insn Kalloc Kernel Layout Machine Quamachine Repro_harness Synthesis Thread
