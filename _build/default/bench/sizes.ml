(* §6.4: kernel size.  The paper reports hand-written source lines and
   a 64 KiB kernel (32 KiB without the monitor).  Our equivalent: the
   synthesized/installed instruction counts by subsystem after a full
   boot with all servers, plus the per-open incremental cost of code
   synthesis (the space argument of §6.4). *)

open Quamachine
open Synthesis

let run () =
  Repro_harness.Harness.header "Kernel size (synthesized code inventory, ~ section 6.4)";
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Boot.kernel in
  let boot_insns = Kernel.synthesized_insns k in
  let boot_code = Machine.code_size k.Kernel.machine in
  Fmt.pr "after boot (all servers, no opens): %d routines, %d synthesized insns, %d code words@."
    (List.length (Kernel.registry k))
    boot_insns boot_code;
  Fmt.pr "@.by subsystem:@.";
  List.iter
    (fun (prefix, count, insns) ->
      Fmt.pr "  %-12s %4d routines %6d insns@." prefix count insns)
    (Kernel.registry_report k);
  (* incremental cost of opens: the dynamic-space trade-off *)
  let program =
    Repro_harness.Programs.open_close ~name_addr:se.Repro_harness.Harness.s_env.Repro_harness.Programs.e_name_tty ~iters:50
  in
  ignore (Repro_harness.Harness.synthesis_run se ~program);
  let after = Kernel.synthesized_insns k in
  Fmt.pr "@.50 open(tty)/close pairs added %d insns (%.1f insns/open)@."
    (after - boot_insns)
    (float_of_int (after - boot_insns) /. 50.0);
  Fmt.pr "paper: 64 KiB kernel, 32 KiB without the monitor; ~1000 lines of templates@."
