(* A deliberately traditional Unix-style kernel on the same simulated
   machine — the SUNOS 3.5 stand-in that the Table 1 comparison runs
   against.

   Where Synthesis specializes, this kernel is generic and layered, in
   the style of the BSD-derived source the paper cites: one trap entry
   that saves *all* registers, a bounds-checked dispatch through a
   system-call table, descriptor validation against a file table,
   vnode indirection (two memory hops per operation), semaphore
   lock/unlock around every file operation with a wakeup-queue scan on
   release, buffer-cache (getblk) hash walks on every file and pipe
   operation (BSD pipes were inode-backed), a byte-at-a-time uiomove
   copy loop, and a run-queue scan on the way out of every system
   call.  Every one of those costs is real executed code on the same
   ISA and cost model as Synthesis, so the Table 1 ratios emerge from
   path lengths, not from tuned constants. *)

open Quamachine
module I = Insn
module L = Bk_layout

type t = {
  machine : Machine.t;
  tty : Devices.Tty.t;
  mutable heap : int; (* bump allocator for file buffers *)
  mutable next_vnode : int; (* index into the vnode table *)
  mutable next_dir : int; (* next free directory slot *)
  syms : (string, int) Hashtbl.t;
}

let sym t name =
  match Hashtbl.find_opt t.syms name with
  | Some a -> a
  | None -> invalid_arg ("Baseline.sym: " ^ name)

let install t ~name insns =
  let env = Hashtbl.fold (fun n a acc -> (n, a) :: acc) t.syms [] in
  let entry, syms = Asm.assemble ~env t.machine insns in
  Hashtbl.replace t.syms name entry;
  List.iter (fun (n, a) -> Hashtbl.replace t.syms (name ^ "." ^ n) a) syms;
  entry

(* ---------------------------------------------------------------- *)
(* Kernel subroutines *)

(* Semaphore P/V.  P spins on a CAS (uncontended in a single-process
   run but paid for on every file operation); V releases and scans the
   sleep queue for wakeups, as a traditional kernel must. *)
let sub_semp =
  [
    I.Label "spin";
    I.Move (I.Imm 0, I.Reg I.r5);
    I.Move (I.Imm 1, I.Reg I.r6);
    I.Cas (I.r5, I.r6, I.Ind I.r4);
    I.B (I.Ne, I.To_label "spin");
    I.Rts;
  ]

let sub_semv =
  [
    I.Move (I.Imm 0, I.Ind I.r4);
    I.Move (I.Imm 15, I.Reg I.r5);
    I.Move (I.Imm L.sleepq, I.Reg I.r6);
    I.Label "scan";
    I.Tst (I.Ind I.r6);
    I.Alu (I.Add, I.Imm 1, I.r6);
    I.Dbra (I.r5, I.To_label "scan");
    I.Rts;
  ]

(* getblk: buffer-cache hash-chain walk (16 probes). *)
let sub_getblk =
  [
    I.Move (I.Imm 15, I.Reg I.r5);
    I.Move (I.Imm L.buffer_cache, I.Reg I.r6);
    I.Label "probe";
    I.Move (I.Ind I.r6, I.Reg I.r4);
    I.Cmp (I.Imm 0x7FFF, I.Reg I.r4); (* never matches: full walk *)
    I.Alu (I.Add, I.Imm 4, I.r6);
    I.Dbra (I.r5, I.To_label "probe");
    I.Rts;
  ]

(* ilock/iunlock pair on a scratch inode lock. *)
let sub_semp_dummy t =
  [
    I.Move (I.Imm L.scratch_lock, I.Reg I.r4);
    I.Jsr (I.To_addr (sym t "semp"));
    I.Move (I.Imm 0, I.Ind I.r4);
    I.Rts;
  ]

(* uio structure setup, access-time update and pending-signal check —
   the fixed bookkeeping every 4.3BSD read/write path performed. *)
let sub_uio_setup =
  [
    I.Move (I.Imm 39, I.Reg I.r4);
    I.Move (I.Imm L.proc_table, I.Reg I.r5);
    I.Label "walk";
    I.Move (I.Ind I.r5, I.Reg I.r6);
    I.Alu (I.Add, I.Imm 1, I.r5);
    I.Dbra (I.r4, I.To_label "walk");
    I.Rts;
  ]

(* uiomove: generic word-at-a-time copy, src r5, dst r6, count r7. *)
let sub_uiomove =
  [
    I.Label "loop";
    I.Tst (I.Reg I.r7);
    I.B (I.Eq, I.To_label "done");
    I.Move (I.Ind I.r5, I.Reg I.r4);
    I.Move (I.Reg I.r4, I.Ind I.r6);
    I.Alu (I.Add, I.Imm 1, I.r5);
    I.Alu (I.Add, I.Imm 1, I.r6);
    I.Alu (I.Sub, I.Imm 1, I.r7);
    I.B (I.Always, I.To_label "loop");
    I.Label "done";
    I.Rts;
  ]

(* putc: layered character output (one call per character). *)
let sub_putc =
  [ I.Move (I.Reg I.r4, I.Abs Mmio_map.tty_data_out); I.Rts ]

(* sched_check: the generic "should we reschedule?" run-queue scan
   performed on the way out of every system call. *)
let sub_sched_check =
  [
    I.Move (I.Imm (L.nproc - 1), I.Reg I.r4);
    I.Move (I.Imm L.proc_table, I.Reg I.r5);
    I.Label "scan";
    I.Move (I.Ind I.r5, I.Reg I.r6); (* proc state *)
    I.Cmp (I.Imm 3, I.Reg I.r6); (* "runnable at higher pri?" *)
    I.Alu (I.Add, I.Imm L.proc_words, I.r5);
    I.Dbra (I.r4, I.To_label "scan");
    I.Rts;
  ]

(* namei: path translation the 4.3BSD way — a directory scan plus an
   iget (inode fetch through the buffer cache, plus lock) *per path
   component*.  Our flat directory holds whole paths, so only the
   final scan yields the vnode; the leading components ("/", "dev")
   still pay a full scan and inode fetch each, which is where most of
   SUNOS's open(2) time went.  r11 counts components. *)
let sub_namei t =
  [
    (* two leading components: scan + iget, result discarded *)
    I.Move (I.Imm 1, I.Reg I.r11);
    I.Label "component";
    I.Move (I.Imm (L.dir_entries - 1), I.Reg I.r5);
    I.Move (I.Imm L.directory, I.Reg I.r6);
    I.Label "cscan";
    I.Move (I.Ind I.r6, I.Reg I.r4); (* entry length *)
    I.Cmp (I.Imm 0x7FFF, I.Reg I.r4); (* never matches: full scan *)
    I.Alu (I.Add, I.Imm L.dir_entry_words, I.r6);
    I.Dbra (I.r5, I.To_label "cscan");
    I.Jsr (I.To_addr (sym t "getblk")); (* iget for the component *)
    I.Jsr (I.To_addr (sym t "semp_dummy")); (* ilock *)
    I.Dbra (I.r11, I.To_label "component");
    (* final component: the real lookup *)
    I.Move (I.Imm (L.dir_entries - 1), I.Reg I.r8);
    I.Move (I.Imm L.directory, I.Reg I.r7);
    I.Label "entry";
    I.Move (I.Imm 0, I.Reg I.r6); (* char index *)
    I.Label "cmp";
    I.Move (I.Reg I.r1, I.Reg I.r4);
    I.Alu (I.Add, I.Reg I.r6, I.r4);
    I.Move (I.Ind I.r4, I.Reg I.r4); (* user char *)
    I.Move (I.Reg I.r7, I.Reg I.r5);
    I.Alu (I.Add, I.Reg I.r6, I.r5);
    I.Move (I.Idx (I.r5, 1), I.Reg I.r5); (* entry char *)
    I.Cmp (I.Reg I.r5, I.Reg I.r4);
    I.B (I.Ne, I.To_label "next");
    I.Tst (I.Reg I.r4);
    I.B (I.Eq, I.To_label "found"); (* both NUL *)
    I.Alu (I.Add, I.Imm 1, I.r6);
    I.Cmp (I.Imm 14, I.Reg I.r6);
    I.B (I.Ne, I.To_label "cmp");
    I.Label "next";
    I.Alu (I.Add, I.Imm L.dir_entry_words, I.r7);
    I.Dbra (I.r8, I.To_label "entry");
    I.Move (I.Imm 0, I.Reg I.r4); (* not found *)
    I.Rts;
    I.Label "found";
    I.Jsr (I.To_addr (sym t "getblk")); (* fetch the inode *)
    I.Move (I.Idx (I.r7, 15), I.Reg I.r4); (* vnode address *)
    I.Rts;
  ]

(* ---------------------------------------------------------------- *)
(* vnode operations.  Convention: r9 = file-table entry, r10 = vnode,
   r1..r3 = user args; result into the retval cell. *)

let vn_null_read = [ I.Move (I.Imm 0, I.Abs L.retval_cell); I.Rts ]
let vn_null_write = [ I.Move (I.Reg I.r3, I.Abs L.retval_cell); I.Rts ]
let vn_tty_read = [ I.Move (I.Imm 0, I.Abs L.retval_cell); I.Rts ]

let vn_tty_write t =
  [
    I.Move (I.Reg I.r3, I.Abs L.retval_cell);
    I.Move (I.Reg I.r3, I.Reg I.r7);
    I.Tst (I.Reg I.r7);
    I.B (I.Eq, I.To_label "done");
    I.Move (I.Reg I.r2, I.Reg I.r5);
    I.Label "loop";
    I.Move (I.Ind I.r5, I.Reg I.r4);
    I.Jsr (I.To_addr (sym t "putc")); (* one call per character *)
    I.Alu (I.Add, I.Imm 1, I.r5);
    I.Alu (I.Sub, I.Imm 1, I.r7);
    I.B (I.Ne, I.To_label "loop");
    I.Label "done";
    I.Rts;
  ]

(* vnode fields: [0]=type [1]=lock [2]=ops [3]=buf [4]=size [5]=cap *)
let vn_file_read t =
  [
    I.Jsr (I.To_addr (sym t "uio_setup")); (* uio + signal check *)
    I.Jsr (I.To_addr (sym t "semp_dummy")); (* ilock *)
    I.Jsr (I.To_addr (sym t "getblk")); (* block lookup *)
    I.Move (I.Idx (I.r10, 4), I.Reg I.r7); (* size *)
    I.Move (I.Idx (I.r9, 2), I.Reg I.r4); (* pos *)
    I.Alu (I.Sub, I.Reg I.r4, I.r7); (* remaining *)
    I.Cmp (I.Reg I.r7, I.Reg I.r3); (* n - remaining *)
    I.B (I.Ls, I.To_label "fits");
    I.Move (I.Reg I.r7, I.Reg I.r3);
    I.Label "fits";
    I.Move (I.Reg I.r3, I.Abs L.retval_cell);
    I.Tst (I.Reg I.r3);
    I.B (I.Eq, I.To_label "done");
    I.Move (I.Idx (I.r10, 3), I.Reg I.r5);
    I.Alu (I.Add, I.Reg I.r4, I.r5); (* src = buf + pos *)
    I.Alu (I.Add, I.Reg I.r3, I.r4);
    I.Move (I.Reg I.r4, I.Idx (I.r9, 2)); (* pos += n *)
    I.Move (I.Reg I.r2, I.Reg I.r6); (* dst = user buffer *)
    I.Move (I.Reg I.r3, I.Reg I.r7);
    I.Jsr (I.To_addr (sym t "uiomove"));
    I.Label "done";
    I.Rts;
  ]

let vn_file_write t =
  [
    I.Jsr (I.To_addr (sym t "uio_setup"));
    I.Jsr (I.To_addr (sym t "semp_dummy"));
    I.Jsr (I.To_addr (sym t "getblk"));
    I.Move (I.Idx (I.r10, 5), I.Reg I.r7); (* capacity *)
    I.Move (I.Idx (I.r9, 2), I.Reg I.r4); (* pos *)
    I.Alu (I.Sub, I.Reg I.r4, I.r7); (* room *)
    I.Cmp (I.Reg I.r7, I.Reg I.r3);
    I.B (I.Ls, I.To_label "fits");
    I.Move (I.Reg I.r7, I.Reg I.r3);
    I.Label "fits";
    I.Move (I.Reg I.r3, I.Abs L.retval_cell);
    I.Tst (I.Reg I.r3);
    I.B (I.Eq, I.To_label "done");
    I.Move (I.Reg I.r2, I.Reg I.r5); (* src = user *)
    I.Move (I.Idx (I.r10, 3), I.Reg I.r6);
    I.Alu (I.Add, I.Reg I.r4, I.r6); (* dst = buf + pos *)
    I.Alu (I.Add, I.Reg I.r3, I.r4);
    I.Move (I.Reg I.r4, I.Idx (I.r9, 2)); (* pos += n *)
    (* grow the size if we extended the file *)
    I.Cmp (I.Idx (I.r10, 4), I.Reg I.r4);
    I.B (I.Ls, I.To_label "nosize");
    I.Move (I.Reg I.r4, I.Idx (I.r10, 4));
    I.Label "nosize";
    I.Move (I.Reg I.r3, I.Reg I.r7);
    I.Jsr (I.To_addr (sym t "uiomove"));
    I.Label "done";
    I.Rts;
  ]

(* BSD pipes are inode-backed: every operation pays bmap + getblk on
   top of the locking that [h_read]/[h_write] already did. *)
let vn_pipe_read t =
  let mask = L.pipe_cap - 1 in
  [
    I.Jsr (I.To_addr (sym t "uio_setup")); (* uio + signal check *)
    I.Jsr (I.To_addr (sym t "getblk")); (* bmap *)
    I.Jsr (I.To_addr (sym t "getblk")); (* block fetch *)
    I.Jsr (I.To_addr (sym t "semp_dummy")); (* ilock *)
    I.Move (I.Abs L.pipe_state, I.Reg I.r4); (* head *)
    I.Move (I.Abs (L.pipe_state + 1), I.Reg I.r5); (* tail *)
    I.Move (I.Reg I.r4, I.Reg I.r7);
    I.Alu (I.Sub, I.Reg I.r5, I.r7);
    I.Alu (I.And, I.Imm mask, I.r7); (* available *)
    I.Cmp (I.Reg I.r7, I.Reg I.r3);
    I.B (I.Ls, I.To_label "fits"); (* n <= available *)
    I.Move (I.Reg I.r7, I.Reg I.r3);
    I.Label "fits";
    I.Move (I.Reg I.r3, I.Abs L.retval_cell);
    I.Tst (I.Reg I.r3);
    I.B (I.Eq, I.To_label "done");
    (* contiguous run only: programs use power-of-two chunks *)
    I.Move (I.Reg I.r5, I.Reg I.r4);
    I.Alu (I.Add, I.Reg I.r3, I.r4);
    I.Alu (I.And, I.Imm mask, I.r4);
    I.Move (I.Reg I.r4, I.Abs (L.pipe_state + 1)); (* tail += n *)
    I.Alu (I.Add, I.Imm L.pipe_buf, I.r5); (* src *)
    I.Move (I.Reg I.r2, I.Reg I.r6);
    I.Move (I.Reg I.r3, I.Reg I.r7);
    I.Jsr (I.To_addr (sym t "uiomove"));
    (* wake any writer sleeping on the pipe *)
    I.Move (I.Imm (L.pipe_state + 2), I.Reg I.r4);
    I.Jsr (I.To_addr (sym t "semv"));
    I.Label "done";
    I.Rts;
  ]

let vn_pipe_write t =
  let mask = L.pipe_cap - 1 in
  [
    I.Jsr (I.To_addr (sym t "uio_setup"));
    I.Jsr (I.To_addr (sym t "getblk"));
    I.Jsr (I.To_addr (sym t "getblk"));
    I.Jsr (I.To_addr (sym t "semp_dummy"));
    I.Move (I.Abs L.pipe_state, I.Reg I.r4); (* head *)
    I.Move (I.Abs (L.pipe_state + 1), I.Reg I.r5); (* tail *)
    I.Move (I.Reg I.r5, I.Reg I.r7);
    I.Alu (I.Sub, I.Reg I.r4, I.r7);
    I.Alu (I.Sub, I.Imm 1, I.r7);
    I.Alu (I.And, I.Imm mask, I.r7); (* space *)
    I.Cmp (I.Reg I.r7, I.Reg I.r3);
    I.B (I.Ls, I.To_label "fits");
    I.Move (I.Reg I.r7, I.Reg I.r3);
    I.Label "fits";
    I.Move (I.Reg I.r3, I.Abs L.retval_cell);
    I.Tst (I.Reg I.r3);
    I.B (I.Eq, I.To_label "done");
    I.Move (I.Reg I.r4, I.Reg I.r6);
    I.Alu (I.Add, I.Reg I.r3, I.r6);
    I.Alu (I.And, I.Imm mask, I.r6);
    I.Move (I.Reg I.r6, I.Abs L.pipe_state); (* head += n *)
    I.Move (I.Reg I.r2, I.Reg I.r5); (* src = user *)
    I.Move (I.Reg I.r4, I.Reg I.r6);
    I.Alu (I.Add, I.Imm L.pipe_buf, I.r6); (* dst *)
    I.Move (I.Reg I.r3, I.Reg I.r7);
    I.Jsr (I.To_addr (sym t "uiomove"));
    I.Move (I.Imm (L.pipe_state + 2), I.Reg I.r4);
    I.Jsr (I.To_addr (sym t "semv"));
    I.Label "done";
    I.Rts;
  ]

(* ---------------------------------------------------------------- *)
(* System-call handlers *)

(* Common head for read/write: validate fd, load the file entry into
   r9 and the vnode into r10, take the vnode lock. *)
let rw_prologue t =
  [
    I.Cmp (I.Imm L.nfiles, I.Reg I.r1);
    I.B (I.Cc, I.To_label "ebadf");
    I.Move (I.Reg I.r1, I.Reg I.r9);
    I.Alu (I.Lsl, I.Imm 3, I.r9);
    I.Alu (I.Add, I.Imm L.file_table, I.r9);
    I.Tst (I.Ind I.r9);
    I.B (I.Eq, I.To_label "ebadf");
    I.Move (I.Idx (I.r9, 1), I.Reg I.r10);
    I.Move (I.Reg I.r10, I.Reg I.r4);
    I.Alu (I.Add, I.Imm 1, I.r4);
    I.Jsr (I.To_addr (sym t "semp"));
  ]

let rw_epilogue t ~op_slot =
  [
    (* dispatch through the vnode ops table: two indirections *)
    I.Move (I.Idx (I.r10, 2), I.Reg I.r5);
    I.Move (I.Idx (I.r5, op_slot), I.Reg I.r5);
    I.Jsr (I.To_reg I.r5);
    I.Move (I.Reg I.r10, I.Reg I.r4);
    I.Alu (I.Add, I.Imm 1, I.r4);
    I.Jsr (I.To_addr (sym t "semv"));
    I.Rts;
    I.Label "ebadf";
    I.Move (I.Imm (-1), I.Abs L.retval_cell);
    I.Rts;
  ]

let h_read t = rw_prologue t @ rw_epilogue t ~op_slot:0
let h_write t = rw_prologue t @ rw_epilogue t ~op_slot:1

let h_open t =
  [
    I.Jsr (I.To_addr (sym t "namei"));
    I.Tst (I.Reg I.r4);
    I.B (I.Eq, I.To_label "enoent");
    I.Move (I.Reg I.r4, I.Reg I.r10); (* vnode *)
    (* allocate a file-table slot: linear scan *)
    I.Move (I.Imm 0, I.Reg I.r8); (* fd *)
    I.Move (I.Imm L.file_table, I.Reg I.r9);
    I.Label "scan";
    I.Tst (I.Ind I.r9);
    I.B (I.Eq, I.To_label "got");
    I.Alu (I.Add, I.Imm L.fentry_words, I.r9);
    I.Alu (I.Add, I.Imm 1, I.r8);
    I.Cmp (I.Imm L.nfiles, I.Reg I.r8);
    I.B (I.Ne, I.To_label "scan");
    I.B (I.Always, I.To_label "enoent"); (* table full *)
    I.Label "got";
    I.Move (I.Imm 1, I.Ind I.r9);
    I.Move (I.Reg I.r10, I.Idx (I.r9, 1));
    I.Move (I.Imm 0, I.Idx (I.r9, 2));
    (* file-structure / u-area bookkeeping and the iget refcount *)
    I.Jsr (I.To_addr (sym t "getblk"));
    I.Move (I.Reg I.r8, I.Abs L.retval_cell);
    I.Rts;
    I.Label "enoent";
    I.Move (I.Imm (-1), I.Abs L.retval_cell);
    I.Rts;
  ]

let h_close t =
  [
    I.Cmp (I.Imm L.nfiles, I.Reg I.r1);
    I.B (I.Cc, I.To_label "ebadf");
    I.Move (I.Reg I.r1, I.Reg I.r9);
    I.Alu (I.Lsl, I.Imm 3, I.r9);
    I.Alu (I.Add, I.Imm L.file_table, I.r9);
    I.Tst (I.Ind I.r9);
    I.B (I.Eq, I.To_label "ebadf");
    I.Move (I.Imm 0, I.Ind I.r9);
    (* vrele: inode release walks the cache and the sleep queue *)
    I.Jsr (I.To_addr (sym t "getblk"));
    I.Move (I.Imm (L.pipe_state + 2), I.Reg I.r4);
    I.Jsr (I.To_addr (sym t "semv"));
    I.Move (I.Imm 0, I.Abs L.retval_cell);
    I.Rts;
    I.Label "ebadf";
    I.Move (I.Imm (-1), I.Abs L.retval_cell);
    I.Rts;
  ]

let h_lseek =
  [
    I.Cmp (I.Imm L.nfiles, I.Reg I.r1);
    I.B (I.Cc, I.To_label "ebadf");
    I.Move (I.Reg I.r1, I.Reg I.r9);
    I.Alu (I.Lsl, I.Imm 3, I.r9);
    I.Alu (I.Add, I.Imm L.file_table, I.r9);
    I.Move (I.Reg I.r2, I.Idx (I.r9, 2));
    I.Move (I.Imm 0, I.Abs L.retval_cell);
    I.Rts;
    I.Label "ebadf";
    I.Move (I.Imm (-1), I.Abs L.retval_cell);
    I.Rts;
  ]

(* pipe(2): bind two fresh descriptors to the pipe vnodes; read fd
   into retval (r0), write fd patched into the saved r1 on the stack
   (frame: [ret][r0..r14][SR][PC], so saved r1 sits at sp+2). *)
let h_pipe ~pipe_r_vnode ~pipe_w_vnode =
  let bind label vnode next =
    [
      I.Move (I.Imm 0, I.Reg I.r8);
      I.Move (I.Imm L.file_table, I.Reg I.r9);
      I.Label (label ^ "scan");
      I.Tst (I.Ind I.r9);
      I.B (I.Eq, I.To_label (label ^ "got"));
      I.Alu (I.Add, I.Imm L.fentry_words, I.r9);
      I.Alu (I.Add, I.Imm 1, I.r8);
      I.Cmp (I.Imm L.nfiles, I.Reg I.r8);
      I.B (I.Ne, I.To_label (label ^ "scan"));
      I.Move (I.Imm (-1), I.Abs L.retval_cell);
      I.Rts;
      I.Label (label ^ "got");
      I.Move (I.Imm 1, I.Ind I.r9);
      I.Move (I.Imm vnode, I.Idx (I.r9, 1));
      I.Move (I.Imm 0, I.Idx (I.r9, 2));
    ]
    @ next
  in
  [ I.Move (I.Imm 0, I.Abs L.pipe_state); I.Move (I.Imm 0, I.Abs (L.pipe_state + 1)) ]
  @ bind "r" pipe_r_vnode
      ([ I.Move (I.Reg I.r8, I.Abs L.retval_cell) ]
      @ bind "w" pipe_w_vnode
          [ I.Move (I.Reg I.r8, I.Idx (I.sp, 2)); (* saved r1 = write fd *) I.Rts ])

(* time(2): the microsecond clock (the baseline also runs on a
   machine with the RTC device). *)
let h_time =
  [ I.Move (I.Abs Mmio_map.rtc_us, I.Abs L.retval_cell); I.Rts ]

(* getpid(2): the single process is pid 1. *)
let h_getpid = [ I.Move (I.Imm 1, I.Abs L.retval_cell); I.Rts ]

let h_exit = [ I.Halt ]

(* The single system-call gate. *)
let sys_entry t =
  let all_regs = List.init 15 (fun i -> i) in
  [
    I.Movem_save (all_regs, I.sp); (* save everything, SUNOS-style *)
    I.Cmp (I.Imm 64, I.Reg I.r0);
    I.B (I.Cc, I.To_label "bad");
    I.Move (I.Reg I.r0, I.Reg I.r4);
    I.Alu (I.Add, I.Imm L.systab, I.r4);
    I.Move (I.Ind I.r4, I.Reg I.r4);
    I.Jsr (I.To_reg I.r4);
    I.Label "out";
    I.Jsr (I.To_addr (sym t "sched_check"));
    I.Movem_load (I.sp, all_regs);
    I.Move (I.Abs L.retval_cell, I.Reg I.r0);
    I.Rte;
    I.Label "bad";
    I.Move (I.Imm (-1), I.Abs L.retval_cell);
    I.B (I.Always, I.To_label "out");
  ]

(* ---------------------------------------------------------------- *)
(* Host-side setup *)

let poke t a v = Machine.poke t.machine a v

let add_dir_entry t ~name ~vnode =
  if t.next_dir >= L.dir_entries then invalid_arg "Baseline: directory full";
  if String.length name > 13 then invalid_arg "Baseline: name too long";
  let e = L.directory + (t.next_dir * L.dir_entry_words) in
  t.next_dir <- t.next_dir + 1;
  poke t e (String.length name);
  String.iteri (fun i c -> poke t (e + 1 + i) (Char.code c)) name;
  poke t (e + 1 + String.length name) 0;
  poke t (e + 15) vnode

let alloc_vnode t ~vtype ~ops ~buf ~size ~cap =
  if t.next_vnode >= 16 then invalid_arg "Baseline: vnode table full";
  let v = L.vnode_table + (t.next_vnode * L.vnode_words) in
  t.next_vnode <- t.next_vnode + 1;
  poke t v vtype;
  poke t (v + 1) 0; (* lock *)
  poke t (v + 2) ops;
  poke t (v + 3) buf;
  poke t (v + 4) size;
  poke t (v + 5) cap;
  v

(* Create a memory file with [content]; registers it in the directory. *)
let create_file t ~name ?(capacity = 8192) ?(content = [||]) () =
  let buf = t.heap in
  t.heap <- t.heap + capacity;
  Array.iteri (fun i v -> poke t (buf + i) v) content;
  let ops = sym t "ops_file" in
  let v =
    alloc_vnode t ~vtype:L.vt_file ~ops ~buf ~size:(Array.length content) ~cap:capacity
  in
  add_dir_entry t ~name ~vnode:v;
  v

let boot ?(cost = Cost.sun3_emulation) ?(mem_words = 1 lsl 20) () =
  let m = Machine.create ~mem_words cost in
  Devices.Rtc.install m;
  Devices.Cpu_control.install m;
  let tty = Devices.Tty.install m in
  let t =
    {
      machine = m;
      tty;
      heap = L.heap_base;
      next_vnode = 0;
      next_dir = 0;
      syms = Hashtbl.create 64;
    }
  in
  (* guard code address 0 *)
  ignore (Machine.append_code m [ I.Halt ]);
  (* subroutines *)
  ignore (install t ~name:"semp" sub_semp);
  ignore (install t ~name:"semv" sub_semv);
  ignore (install t ~name:"getblk" sub_getblk);
  ignore (install t ~name:"semp_dummy" (sub_semp_dummy t));
  ignore (install t ~name:"uio_setup" sub_uio_setup);
  ignore (install t ~name:"uiomove" sub_uiomove);
  ignore (install t ~name:"putc" sub_putc);
  ignore (install t ~name:"sched_check" sub_sched_check);
  ignore (install t ~name:"namei" (sub_namei t));
  (* vnode operations and their ops tables (in data memory) *)
  let vnr_null = install t ~name:"vn_null_read" vn_null_read in
  let vnw_null = install t ~name:"vn_null_write" vn_null_write in
  let vnr_tty = install t ~name:"vn_tty_read" vn_tty_read in
  let vnw_tty = install t ~name:"vn_tty_write" (vn_tty_write t) in
  let vnr_file = install t ~name:"vn_file_read" (vn_file_read t) in
  let vnw_file = install t ~name:"vn_file_write" (vn_file_write t) in
  let vnr_pipe = install t ~name:"vn_pipe_read" (vn_pipe_read t) in
  let vnw_pipe = install t ~name:"vn_pipe_write" (vn_pipe_write t) in
  let bad_op = install t ~name:"vn_bad" [ I.Move (I.Imm (-1), I.Abs L.retval_cell); I.Rts ] in
  let ops_at name read write =
    let a = t.heap in
    t.heap <- t.heap + 2;
    poke t a read;
    poke t (a + 1) write;
    Hashtbl.replace t.syms name a;
    a
  in
  let ops_null = ops_at "ops_null" vnr_null vnw_null in
  let ops_tty = ops_at "ops_tty" vnr_tty vnw_tty in
  ignore (ops_at "ops_file" vnr_file vnw_file);
  let ops_pipe_r = ops_at "ops_pipe_r" vnr_pipe bad_op in
  let ops_pipe_w = ops_at "ops_pipe_w" bad_op vnw_pipe in
  (* fixed vnodes *)
  let v_null = alloc_vnode t ~vtype:L.vt_null ~ops:ops_null ~buf:0 ~size:0 ~cap:0 in
  let v_tty = alloc_vnode t ~vtype:L.vt_tty ~ops:ops_tty ~buf:0 ~size:0 ~cap:0 in
  let v_pipe_r =
    alloc_vnode t ~vtype:L.vt_pipe_r ~ops:ops_pipe_r ~buf:L.pipe_buf ~size:0
      ~cap:L.pipe_cap
  in
  let v_pipe_w =
    alloc_vnode t ~vtype:L.vt_pipe_w ~ops:ops_pipe_w ~buf:L.pipe_buf ~size:0
      ~cap:L.pipe_cap
  in
  (* a realistically crowded /dev: the real nodes sit mid-directory *)
  for i = 0 to 19 do
    add_dir_entry t ~name:(Printf.sprintf "/dev/xx%d" i) ~vnode:v_null
  done;
  add_dir_entry t ~name:"/dev/null" ~vnode:v_null;
  add_dir_entry t ~name:"/dev/tty" ~vnode:v_tty;
  for i = 20 to 31 do
    add_dir_entry t ~name:(Printf.sprintf "/dev/yy%d" i) ~vnode:v_null
  done;
  (* system-call handlers and the gate *)
  let sys_read = install t ~name:"h_read" (h_read t) in
  let sys_write = install t ~name:"h_write" (h_write t) in
  let sys_open = install t ~name:"h_open" (h_open t) in
  let sys_close = install t ~name:"h_close" (h_close t) in
  let sys_lseek = install t ~name:"h_lseek" h_lseek in
  let sys_pipe =
    install t ~name:"h_pipe" (h_pipe ~pipe_r_vnode:v_pipe_r ~pipe_w_vnode:v_pipe_w)
  in
  let sys_time = install t ~name:"h_time" h_time in
  let sys_getpid = install t ~name:"h_getpid" h_getpid in
  let sys_exit = install t ~name:"h_exit" h_exit in
  let unimpl = install t ~name:"h_unimpl" [ I.Move (I.Imm (-1), I.Abs L.retval_cell); I.Rts ] in
  for i = 0 to 63 do
    poke t (L.systab + i) unimpl
  done;
  poke t (L.systab + 1) sys_exit;
  poke t (L.systab + 3) sys_read;
  poke t (L.systab + 4) sys_write;
  poke t (L.systab + 5) sys_open;
  poke t (L.systab + 6) sys_close;
  poke t (L.systab + 13) sys_time;
  poke t (L.systab + 19) sys_lseek;
  poke t (L.systab + 20) sys_getpid;
  poke t (L.systab + 42) sys_pipe;
  let gate = install t ~name:"sys_entry" (sys_entry t) in
  let die = install t ~name:"fault" [ I.Halt ] in
  for v = 0 to I.Vector.table_size - 1 do
    poke t (L.vector_table + v) die
  done;
  poke t (L.vector_table + I.Vector.trap 15) gate;
  Machine.set_vbr m L.vector_table;
  (* a permissive user map: protection exists but covers everything *)
  Machine.define_map m ~id:1 [ (0, mem_words) ];
  t

(* Load a user program (same binary as on Synthesis). *)
let load_program t insns = fst (Asm.assemble t.machine insns)

(* Run [entry] as the single user process until it exits (Halt). *)
let run ?(max_insns = max_int) t ~entry =
  let m = t.machine in
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp L.kernel_stack_top;
  Machine.set_other_sp m L.user_stack_top;
  Machine.set_map m 1;
  Machine.set_supervisor m false; (* swaps to the user stack *)
  Machine.set_ipl m 0;
  Machine.set_pc m entry;
  Machine.run ~max_insns m
