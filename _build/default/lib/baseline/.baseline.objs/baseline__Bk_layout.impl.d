lib/baseline/bk_layout.ml:
