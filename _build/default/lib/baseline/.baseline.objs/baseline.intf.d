lib/baseline/baseline.mli: Cost Devices Hashtbl Insn Machine Quamachine
