lib/baseline/baseline.ml: Array Asm Bk_layout Char Cost Devices Hashtbl Insn List Machine Mmio_map Printf Quamachine String
