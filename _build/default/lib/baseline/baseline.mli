(** The baseline kernel: a deliberately traditional Unix-style kernel
    on the same simulated machine, standing in for SUNOS 3.5 in the
    Table 1 comparison.  One trap gate saving all registers, a
    syscall-table dispatch, file-table + vnode indirection, semaphores
    with wakeup scans, buffer-cache walks, component-wise namei,
    word-at-a-time uiomove, inode-backed pipes, and a run-queue scan
    per system call — every cost is executed code on the same ISA and
    cost model as Synthesis.

    Runs exactly one user process per boot, speaking the
    {!Unix_emulator.Unix_abi} trap-15 convention. *)

open Quamachine

type t = {
  machine : Machine.t;
  tty : Devices.Tty.t;
  mutable heap : int;
  mutable next_vnode : int;
  mutable next_dir : int;
  syms : (string, int) Hashtbl.t;
}

val boot : ?cost:Cost.t -> ?mem_words:int -> unit -> t

(** Look up an installed kernel symbol ("namei", "sys_entry", ...). *)
val sym : t -> string -> int

(** Host-side memory write (populating user data before a run). *)
val poke : t -> int -> int -> unit

(** Register a name in the flat directory. *)
val add_dir_entry : t -> name:string -> vnode:int -> unit

(** Create a memory file with [content] and a directory entry;
    returns the vnode address. *)
val create_file :
  t -> name:string -> ?capacity:int -> ?content:int array -> unit -> int

(** Load a user program (the same binary that runs on Synthesis). *)
val load_program : t -> Insn.insn list -> int

(** Run [entry] as the single user process until it exits. *)
val run : ?max_insns:int -> t -> entry:int -> Machine.run_result
