(* Data-memory layout of the baseline kernel. *)

let vector_table = 0x40 (* 48 words *)
let retval_cell = 0x100
let scratch_lock = 0x101
let sleepq = 0x110 (* 16-word sleep queue scanned on wakeup *)
let systab = 0x140 (* 64 syscall entries *)
let proc_table = 0x200 (* 16 procs x 32 words *)
let nproc = 16
let proc_words = 32
let file_table = 0x400 (* 32 entries x 8 words: used, vnode, pos *)
let nfiles = 32
let fentry_words = 8
let vnode_table = 0x600 (* 16 vnodes x 8: type, lock, ops, buf, size, cap *)
let vnode_words = 8
let buffer_cache = 0x700 (* simulated getblk hash chains *)
let buffer_cache_len = 64
let directory = 0x800 (* 64 entries x 16: len, 13 chars, vnode addr *)
let dir_entries = 64
let dir_entry_words = 16
let pipe_state = 0xC00 (* head, tail, lock *)
let pipe_buf = 0x1000
let pipe_cap = 8192
let heap_base = 0x10000 (* file content buffers *)
let kernel_stack_top = 0xF000
let user_stack_top = 0xFF00

(* vnode types *)
let vt_null = 0
let vt_tty = 1
let vt_file = 2
let vt_pipe_r = 3
let vt_pipe_w = 4
