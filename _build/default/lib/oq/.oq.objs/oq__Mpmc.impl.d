lib/oq/mpmc.ml: Array Atomic Domain
