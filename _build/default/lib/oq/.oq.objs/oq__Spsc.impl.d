lib/oq/spsc.ml: Array Atomic Domain
