lib/oq/locked.mli:
