lib/oq/gauge.ml: Atomic
