lib/oq/spmc.mli:
