lib/oq/mpsc.ml: Array Atomic Domain
