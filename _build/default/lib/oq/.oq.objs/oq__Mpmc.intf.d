lib/oq/mpmc.mli:
