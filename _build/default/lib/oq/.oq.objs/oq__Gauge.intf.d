lib/oq/gauge.mli:
