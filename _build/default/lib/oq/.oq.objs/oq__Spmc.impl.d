lib/oq/spmc.ml: Array Atomic Domain
