lib/oq/dedicated.mli:
