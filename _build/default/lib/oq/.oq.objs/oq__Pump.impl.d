lib/oq/pump.ml: Atomic Domain
