lib/oq/mpsc.mli:
