lib/oq/spsc.mli:
