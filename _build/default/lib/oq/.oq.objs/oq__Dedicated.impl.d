lib/oq/dedicated.ml: Array
