lib/oq/pump.mli:
