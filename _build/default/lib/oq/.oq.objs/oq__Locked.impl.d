lib/oq/locked.ml: Array Domain Mutex
