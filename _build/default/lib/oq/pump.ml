(* Pump: a thread that actively copies its input into its output,
   connecting a passive producer to a passive consumer (§2.3, §5.2 —
   the xclock example: a clock that can be read at any time feeding a
   display that accepts pixels at any time).

   The pump polls the passive source with a budgeted batch size so a
   fast source cannot starve shutdown. *)

type t = {
  stop : bool Atomic.t;
  copied : int Atomic.t;
  domain : unit Domain.t;
}

(* Spawn a pump copying [source ()] values into [sink v] until
   [stop]ped.  [source] returns [None] when nothing is available right
   now (the pump relaxes and retries). *)
let start ?(batch = 64) ~source ~sink () =
  let stop = Atomic.make false in
  let copied = Atomic.make 0 in
  let body () =
    while not (Atomic.get stop) do
      let moved = ref 0 in
      let continue = ref true in
      while !continue && !moved < batch do
        match source () with
        | Some v ->
          sink v;
          incr moved;
          Atomic.incr copied
        | None -> continue := false
      done;
      if !moved = 0 then Domain.cpu_relax ()
    done
  in
  { stop; copied; domain = Domain.spawn body }

let copied t = Atomic.get t.copied

let stop t =
  Atomic.set t.stop true;
  Domain.join t.domain
