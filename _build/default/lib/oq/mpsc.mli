(** Multiple-producer single-consumer optimistic queue with atomic
    multi-item insert (paper Figure 2).

    Producers stake a claim to buffer space with compare-and-swap on
    [head], fill their slots concurrently, and publish each slot
    through a per-slot valid flag; the single consumer trusts only the
    flags.  Safe for any number of producer domains and exactly one
    consumer domain. *)

type 'a t

(** [create n] makes a queue with [n - 1] usable slots ([n >= 2]). *)
val create : int -> 'a t

(** [try_put_many q item n] atomically claims space for [n] items and
    inserts [item 0 .. item (n-1)] contiguously; [false] if fewer than
    [n] slots are free.  Raises [Invalid_argument] if [n] exceeds the
    capacity. *)
val try_put_many : 'a t -> (int -> 'a) -> int -> bool

val try_put : 'a t -> 'a -> bool
val try_get : 'a t -> 'a option
val put : 'a t -> 'a -> unit
val get : 'a t -> 'a
val is_empty : 'a t -> bool
val length : 'a t -> int
val capacity : 'a t -> int
