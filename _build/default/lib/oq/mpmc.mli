(** Multiple-producer multiple-consumer optimistic queue.

    The valid flag of Figure 2 generalized to a per-slot sequence
    number (a flag with a generation) so that ring wrap-around stays
    safe when both ends race; head and tail are unbounded tickets.
    Every path is lock-free. *)

type 'a t

(** [create n] makes a queue with [n] usable slots ([n >= 2]). *)
val create : int -> 'a t

val try_put : 'a t -> 'a -> bool
val try_get : 'a t -> 'a option
val put : 'a t -> 'a -> unit
val get : 'a t -> 'a
val is_empty : 'a t -> bool
val length : 'a t -> int
val capacity : 'a t -> int
