(* Single-producer single-consumer optimistic queue (paper Figure 1).

   When the buffer is neither full nor empty the producer and consumer
   operate on different parts of it, so no locking is needed: of the
   two index variables, [head] is written only by the producer and
   [tail] only by the consumer (Code Isolation).  The producer
   publishes the item *before* advancing [head], so the consumer never
   observes an item that is not fully written.

   Indexes are atomics for cross-domain visibility; there is no CAS or
   retry loop anywhere on this path. *)

type 'a t = {
  buf : 'a option array;
  size : int;
  head : int Atomic.t; (* next slot the producer fills *)
  tail : int Atomic.t; (* next slot the consumer drains *)
}

let create size =
  if size < 2 then invalid_arg "Spsc.create: size must be >= 2";
  { buf = Array.make size None; size; head = Atomic.make 0; tail = Atomic.make 0 }

let next t x = if x = t.size - 1 then 0 else x + 1

let try_put t v =
  let h = Atomic.get t.head in
  if next t h = Atomic.get t.tail then false (* full *)
  else begin
    t.buf.(h) <- Some v;
    Atomic.set t.head (next t h);
    true
  end

let try_get t =
  let tl = Atomic.get t.tail in
  if tl = Atomic.get t.head then None (* empty *)
  else begin
    let v = t.buf.(tl) in
    t.buf.(tl) <- None;
    Atomic.set t.tail (next t tl);
    v
  end

let rec put t v = if not (try_put t v) then (Domain.cpu_relax (); put t v)

let rec get t =
  match try_get t with
  | Some v -> v
  | None ->
    Domain.cpu_relax ();
    get t

let is_empty t = Atomic.get t.tail = Atomic.get t.head
let is_full t = next t (Atomic.get t.head) = Atomic.get t.tail

let length t =
  let h = Atomic.get t.head and tl = Atomic.get t.tail in
  if h >= tl then h - tl else h - tl + t.size

let capacity t = t.size - 1
