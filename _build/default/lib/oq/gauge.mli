(** Gauge: counts events for scheduling decisions (§2.3).  Schedulers
    sample a gauge's rate over a window to decide a thread's "need to
    execute" (§4.4). *)

type t

val create : unit -> t

(** Count one event (thread-safe). *)
val tick : t -> unit

(** Count [n] events at once. *)
val add : t -> int -> unit

val count : t -> int

(** [sample_rate t ~now] closes the current measurement window at time
    [now] (any monotonic unit) and returns events per unit time over
    the window just ended. *)
val sample_rate : t -> now:float -> float

val last_rate : t -> float
val reset : t -> unit
