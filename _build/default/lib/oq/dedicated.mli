(** Dedicated queue: all synchronization code omitted (§2.3).

    The cheapest queue there is — plain loads and stores.  The
    contract, enforced by whoever instantiates it (the quaject
    interfacer in the kernel), is that producer and consumer are
    already serialized: never share across domains. *)

type 'a t

val create : int -> 'a t
val try_put : 'a t -> 'a -> bool
val try_get : 'a t -> 'a option
val is_empty : 'a t -> bool
val is_full : 'a t -> bool
val length : 'a t -> int
val capacity : 'a t -> int
