(** Pump: a thread that actively copies its input to its output,
    connecting a passive producer to a passive consumer (§2.3, §5.2). *)

type t

(** [start ~source ~sink ()] spawns a domain copying [source ()]
    values into [sink] until [stop]ped.  [source] returning [None]
    means nothing available right now.  [batch] bounds work between
    stop-flag checks. *)
val start :
  ?batch:int -> source:(unit -> 'a option) -> sink:('a -> unit) -> unit -> t

(** Total values moved so far. *)
val copied : t -> int

(** Stop and join the pump domain. *)
val stop : t -> unit
