(* Mutex-protected queue: the "powerful mutual exclusion" baseline the
   paper argues against (§1).  Used by the benchmarks to show what the
   optimistic queues buy. *)

type 'a t = {
  buf : 'a option array;
  size : int;
  mutable head : int;
  mutable tail : int;
  lock : Mutex.t;
}

let create size =
  if size < 2 then invalid_arg "Locked.create: size must be >= 2";
  { buf = Array.make size None; size; head = 0; tail = 0; lock = Mutex.create () }

let next t x = if x = t.size - 1 then 0 else x + 1

let try_put t v =
  Mutex.lock t.lock;
  let ok =
    if next t t.head = t.tail then false
    else begin
      t.buf.(t.head) <- Some v;
      t.head <- next t t.head;
      true
    end
  in
  Mutex.unlock t.lock;
  ok

let try_get t =
  Mutex.lock t.lock;
  let r =
    if t.tail = t.head then None
    else begin
      let v = t.buf.(t.tail) in
      t.buf.(t.tail) <- None;
      t.tail <- next t t.tail;
      v
    end
  in
  Mutex.unlock t.lock;
  r

let rec put t v = if not (try_put t v) then (Domain.cpu_relax (); put t v)

let rec get t =
  match try_get t with
  | Some v -> v
  | None ->
    Domain.cpu_relax ();
    get t

let length t =
  Mutex.lock t.lock;
  let n = if t.head >= t.tail then t.head - t.tail else t.head - t.tail + t.size in
  Mutex.unlock t.lock;
  n

let capacity t = t.size - 1
