(* Dedicated queue: the principle of frugality applied to queues.

   When the kernel knows a queue has exactly one producer *and* its
   consumer runs in a context already serialized with the producer
   (e.g. a filter thread draining a queue filled by an interrupt
   handler chained under the same thread), all synchronization code is
   omitted (§2.3).  This is the cheapest possible queue: plain loads
   and stores, no atomics at all.

   It must never be shared across domains — that is the contract the
   quaject interfacer enforces when it picks this implementation. *)

type 'a t = {
  buf : 'a option array;
  size : int;
  mutable head : int;
  mutable tail : int;
}

let create size =
  if size < 2 then invalid_arg "Dedicated.create: size must be >= 2";
  { buf = Array.make size None; size; head = 0; tail = 0 }

let next t x = if x = t.size - 1 then 0 else x + 1

let try_put t v =
  if next t t.head = t.tail then false
  else begin
    t.buf.(t.head) <- Some v;
    t.head <- next t t.head;
    true
  end

let try_get t =
  if t.tail = t.head then None
  else begin
    let v = t.buf.(t.tail) in
    t.buf.(t.tail) <- None;
    t.tail <- next t t.tail;
    v
  end

let is_empty t = t.tail = t.head
let is_full t = next t t.head = t.tail
let length t = if t.head >= t.tail then t.head - t.tail else t.head - t.tail + t.size
let capacity t = t.size - 1
