(** Single-producer single-consumer optimistic queue (paper Figure 1).

    No locks and no CAS: when the buffer is neither full nor empty the
    two sides operate on different slots; [head] is written only by
    the producer and [tail] only by the consumer (Code Isolation).
    Safe for exactly one producer domain and one consumer domain. *)

type 'a t

(** [create n] makes a queue with [n - 1] usable slots ([n >= 2]). *)
val create : int -> 'a t

(** [try_put q v] is [false] when the queue is full. *)
val try_put : 'a t -> 'a -> bool

(** [try_get q] is [None] when the queue is empty. *)
val try_get : 'a t -> 'a option

(** Spinning variants of [try_put]/[try_get]. *)
val put : 'a t -> 'a -> unit

val get : 'a t -> 'a
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

(** Approximate number of queued items (racy under concurrency). *)
val length : 'a t -> int

val capacity : 'a t -> int
