(* Gauge: counts events — procedure calls, data arrival, interrupts
   (§2.3).  Schedulers read gauges to make fine-grain scheduling
   decisions: the rate observed over the last window drives the CPU
   quantum assigned to the thread that animates the data flow. *)

type t = {
  count : int Atomic.t;
  mutable window_start_count : int;
  mutable window_start_time : float; (* caller-supplied clock *)
  mutable last_rate : float;
}

let create () =
  { count = Atomic.make 0; window_start_count = 0; window_start_time = 0.0; last_rate = 0.0 }

let tick t = Atomic.incr t.count
let add t n = ignore (Atomic.fetch_and_add t.count n)
let count t = Atomic.get t.count

(* Close the current measurement window at time [now] (any monotonic
   unit); returns events/unit-time over the window just ended. *)
let sample_rate t ~now =
  let c = Atomic.get t.count in
  let dt = now -. t.window_start_time in
  let rate =
    if dt <= 0.0 then t.last_rate
    else float_of_int (c - t.window_start_count) /. dt
  in
  t.window_start_count <- c;
  t.window_start_time <- now;
  t.last_rate <- rate;
  rate

let last_rate t = t.last_rate

let reset t =
  Atomic.set t.count 0;
  t.window_start_count <- 0;
  t.last_rate <- 0.0
