(** Single-producer multiple-consumer optimistic queue: the mirror
    image of MP-SC.  Consumers claim slots with compare-and-swap on
    [tail] and only then read them; the per-slot flag tells the
    producer when a slot has been fully drained. *)

type 'a t

val create : int -> 'a t
val try_put : 'a t -> 'a -> bool
val try_get : 'a t -> 'a option
val put : 'a t -> 'a -> unit
val get : 'a t -> 'a
val is_empty : 'a t -> bool
val length : 'a t -> int
val capacity : 'a t -> int
