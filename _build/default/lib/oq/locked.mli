(** Mutex-protected queue: the "powerful mutual exclusion" baseline
    the paper argues against (§1); used by benchmarks to show what
    optimistic synchronization buys. *)

type 'a t

val create : int -> 'a t
val try_put : 'a t -> 'a -> bool
val try_get : 'a t -> 'a option
val put : 'a t -> 'a -> unit
val get : 'a t -> 'a
val length : 'a t -> int
val capacity : 'a t -> int
