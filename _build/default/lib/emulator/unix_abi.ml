(* The UNIX system-call ABI shared by the emulator (on Synthesis) and
   the baseline kernel: trap 15 with the syscall number in r0 and
   arguments in r1..r3, result in r0.  Benchmark programs are written
   once against this ABI and run unmodified on both kernels — the
   paper's "same binary executable" methodology (§6.1). *)

let trap = 15

(* SunOS-flavoured syscall numbers. *)
let sys_exit = 1
let sys_read = 3
let sys_write = 4
let sys_open = 5
let sys_close = 6
let sys_time = 13
let sys_lseek = 19
let sys_getpid = 20
let sys_kill = 37
let sys_pipe = 42

let table_size = 64
