lib/emulator/emulator.ml: Insn Kalloc Kernel Kpipe Machine Quamachine Synthesis Unix_abi Vfs
