lib/emulator/emulator.mli: Synthesis
