lib/emulator/unix_abi.ml:
