lib/emulator/unix_abi.mli:
