(** The UNIX emulator on the Synthesis kernel (§6.1): trap-15 system
    calls dispatch through a table of stubs that re-trap into the
    calling thread's own synthesized native handlers.  The measured
    emulation overhead (Table 2) is the extra exception frame. *)

type t = { e_entry : int; e_table : int }

(** Install the emulator: wires trap 15 into every vector table and
    installs pipe(2) on the native side. *)
val install : Synthesis.Vfs.t -> t
