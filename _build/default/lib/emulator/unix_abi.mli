(** The UNIX system-call ABI shared by the emulator (on Synthesis) and
    the baseline kernel: trap {!trap} with the syscall number in r0,
    arguments in r1..r3, result in r0.  Benchmark programs are written
    once against this ABI and run unmodified on both kernels — the
    paper's same-binary methodology (§6.1). *)

val trap : int
val sys_exit : int
val sys_read : int
val sys_write : int
val sys_open : int
val sys_close : int
val sys_time : int
val sys_lseek : int
val sys_getpid : int
val sys_kill : int
val sys_pipe : int
val table_size : int
