(* 32-bit word arithmetic on native OCaml ints.

   Values are stored masked to the low 32 bits (always non-negative as
   OCaml ints).  [signed] reinterprets a stored word as a signed 32-bit
   quantity for comparisons and arithmetic flags. *)

let bits = 32
let mask = 0xFFFF_FFFF
let sign_bit = 0x8000_0000
let modulus = 0x1_0000_0000

let of_int v = v land mask

let signed v =
  let v = v land mask in
  if v land sign_bit <> 0 then v - modulus else v

let is_negative v = v land sign_bit <> 0

(* Addition with carry/overflow flags.  Returns (result, carry, overflow). *)
let add_full a b =
  let a = a land mask and b = b land mask in
  let sum = a + b in
  let r = sum land mask in
  let carry = sum > mask in
  let overflow = is_negative a = is_negative b && is_negative r <> is_negative a in
  (r, carry, overflow)

(* Subtraction [a - b] with borrow/overflow flags. *)
let sub_full a b =
  let a = a land mask and b = b land mask in
  let diff = a - b in
  let r = diff land mask in
  let borrow = a < b in
  let overflow = is_negative a <> is_negative b && is_negative r <> is_negative a in
  (r, borrow, overflow)

let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let mul a b = (signed a * signed b) land mask

let logand a b = (a land b) land mask
let logor a b = (a lor b) land mask
let logxor a b = (a lxor b) land mask
let lognot a = lnot a land mask
let neg a = (- signed a) land mask

let shift_left a n = if n >= bits then 0 else (a lsl n) land mask

let shift_right_logical a n =
  if n >= bits then 0 else (a land mask) lsr n

let shift_right_arith a n =
  if n >= bits then (if is_negative a then mask else 0)
  else (signed a asr n) land mask

(* Unsigned division; division by zero must be caught by the caller. *)
let divu a b = (a land mask) / (b land mask)
let modu a b = (a land mask) mod (b land mask)

let divs a b = (signed a / signed b) land mask

let equal a b = a land mask = b land mask
let compare_signed a b = compare (signed a) (signed b)
let compare_unsigned a b = compare (a land mask) (b land mask)
