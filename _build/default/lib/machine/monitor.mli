(** Kernel monitor utilities (§6.1, §6.4): disassembly, trace
    formatting, counter reports. *)

(** Maps a code address to a label (e.g. from the synthesis registry). *)
type annotation = int -> string option

val no_annotation : annotation

(** Disassemble [len] instructions starting at [from]. *)
val disassemble :
  ?annotate:annotation -> Machine.t -> from:int -> len:int -> Format.formatter -> unit

(** Sum of base cycles over a listing (memory references excluded). *)
val static_cycles : Machine.t -> from:int -> len:int -> int

(** Render the last [n] entries of the execution-trace ring. *)
val pp_trace : Machine.t -> Format.formatter -> int -> unit

val pp_counters : Machine.t -> Format.formatter -> unit -> unit
