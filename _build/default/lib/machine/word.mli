(** 32-bit word arithmetic on native OCaml ints.

    Stored values are masked to the low 32 bits and always
    non-negative as OCaml ints; [signed] reinterprets them as signed
    32-bit quantities. *)

val bits : int
val mask : int
val sign_bit : int
val modulus : int

val of_int : int -> int
val signed : int -> int
val is_negative : int -> bool

(** [(result, carry, overflow)] of 32-bit addition. *)
val add_full : int -> int -> int * bool * bool

(** [(result, borrow, overflow)] of 32-bit subtraction [a - b]. *)
val sub_full : int -> int -> int * bool * bool

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int
val logand : int -> int -> int
val logor : int -> int -> int
val logxor : int -> int -> int
val lognot : int -> int
val neg : int -> int
val shift_left : int -> int -> int
val shift_right_logical : int -> int -> int
val shift_right_arith : int -> int -> int

(** Unsigned division/modulus; caller must rule out a zero divisor. *)
val divu : int -> int -> int

val modu : int -> int -> int
val divs : int -> int -> int
val equal : int -> int -> bool
val compare_signed : int -> int -> int
val compare_unsigned : int -> int -> int
