(* Instruction set of the simulated Quamachine.

   The machine is a 68020-flavoured 32-bit CPU: 16 general registers
   (r15 is the active stack pointer), 8 floating-point registers, a
   status register with condition codes / supervisor bit / interrupt
   priority level / trace bit, and a vector base register (VBR) so
   that each Synthesis thread can own a private vector table.

   Code and data live in separate address spaces: code addresses index
   the instruction store (which kernel code synthesis appends to and
   patches at run time), data addresses index word-granular data
   memory.  This keeps the simulator fast while still permitting the
   paper's self-modifying idioms — executable data structures are code
   sequences whose instructions the kernel rewrites in place. *)

type reg = int

let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let r14 = 14

(* r15 doubles as user/supervisor stack pointer, like A7 on the 68k. *)
let sp = 15

let num_regs = 16
let num_fregs = 8

(* Addressing modes for data operands. *)
type operand =
  | Imm of int (* immediate constant *)
  | Lbl of string (* immediate code address; resolved by the assembler *)
  | Reg of reg (* register direct *)
  | Ind of reg (* memory at [rN] *)
  | Idx of reg * int (* memory at [rN + displacement] *)
  | Abs of int (* memory at absolute address *)
  | Post_inc of reg (* memory at [rN], then rN := rN + 1 *)
  | Pre_dec of reg (* rN := rN - 1, then memory at [rN] *)

type cond =
  | Always
  | Eq (* Z *)
  | Ne (* ~Z *)
  | Lt (* signed < *)
  | Ge (* signed >= *)
  | Le (* signed <= *)
  | Gt (* signed > *)
  | Hi (* unsigned > *)
  | Ls (* unsigned <= *)
  | Cs (* carry set: unsigned < *)
  | Cc (* carry clear: unsigned >= *)
  | Mi (* negative *)
  | Pl (* non-negative *)

(* Control-flow targets.  [To_label] only appears in unassembled
   fragments; [Asm.assemble] resolves it to [To_addr]. *)
type target =
  | To_addr of int (* absolute code address *)
  | To_reg of reg (* code address held in a register *)
  | To_mem of operand (* code address fetched from data memory *)
  | To_label of string

type alu_op = Add | Sub | Mul | Divu | Divs | And | Or | Xor | Lsl | Lsr | Asr

type fpu_op = Fadd | Fsub | Fmul | Fdiv

type insn =
  | Nop
  | Move of operand * operand (* dst := src; sets N/Z *)
  | Lea of operand * reg (* rd := effective data address of operand *)
  | Alu of alu_op * operand * reg (* rd := rd op src; sets flags *)
  | Alu_mem of alu_op * operand * operand (* mem dst := dst op src *)
  | Cmp of operand * operand (* flags from dst - src: Cmp (src, dst) *)
  | Tst of operand (* flags from operand *)
  | Neg of reg
  | Not of reg
  | B of cond * target (* conditional branch *)
  | Dbra of reg * target (* rN := rN - 1; branch unless rN = -1 *)
  | Jmp of target
  | Jsr of target (* push return address; jump *)
  | Rts
  | Trap of int (* software trap 0..15, vectors 32..47 *)
  | Rte (* return from exception: pop SR, PC *)
  | Cas of reg * reg * operand
    (* Cas (rc, ru, ea): atomically, if [ea] = rc then [ea] := ru
       (Z set) else rc := [ea] (Z clear) — 68020 CAS semantics. *)
  | Movem_save of reg list * reg (* push registers via stack register *)
  | Movem_load of reg * reg list (* pop registers via stack register *)
  | Push of operand
  | Pop of reg
  | Set_ipl of int (* supervisor: set interrupt priority level *)
  | Move_vbr of operand (* supervisor: load vector base register *)
  | Move_mmu of operand (* supervisor: switch address-space map *)
  | Fmove_imm of float * int (* load FP register with a constant *)
  | Fmove of int * int (* FP register to FP register *)
  | Fop of fpu_op * int * int (* fd := fd op fs *)
  | Fmovem_save of reg (* push all 8 FP registers via stack register *)
  | Fmovem_load of reg (* pop all 8 FP registers via stack register *)
  | Stop_wait (* supervisor: halt until an interrupt arrives *)
  | Halt (* stop the machine (simulation exit) *)
  | Hcall of int (* invoke a registered host service routine *)
  | Label of string (* pseudo-instruction: assembly-time label *)

(* Exception vector assignments (offsets into the current vector table). *)
module Vector = struct
  let bus_error = 2
  let illegal = 4
  let div_zero = 5
  let privilege = 8
  let trace = 9
  let fp_unavailable = 11

  (* Auto-vectored interrupt levels 1..7 map to vectors 25..31. *)
  let autovector level = 24 + level
  let trap n = 32 + n

  (* Vector tables are 48 entries long. *)
  let table_size = 48
end

let pp_operand ppf = function
  | Imm n -> Fmt.pf ppf "#%d" n
  | Lbl l -> Fmt.pf ppf "#%s" l
  | Reg r -> Fmt.pf ppf "r%d" r
  | Ind r -> Fmt.pf ppf "(r%d)" r
  | Idx (r, d) -> Fmt.pf ppf "%d(r%d)" d r
  | Abs a -> Fmt.pf ppf "($%x)" a
  | Post_inc r -> Fmt.pf ppf "(r%d)+" r
  | Pre_dec r -> Fmt.pf ppf "-(r%d)" r

let pp_cond ppf c =
  Fmt.string ppf
    (match c with
    | Always -> "ra"
    | Eq -> "eq"
    | Ne -> "ne"
    | Lt -> "lt"
    | Ge -> "ge"
    | Le -> "le"
    | Gt -> "gt"
    | Hi -> "hi"
    | Ls -> "ls"
    | Cs -> "cs"
    | Cc -> "cc"
    | Mi -> "mi"
    | Pl -> "pl")

let pp_target ppf = function
  | To_addr a -> Fmt.pf ppf "$%x" a
  | To_reg r -> Fmt.pf ppf "(r%d)" r
  | To_mem op -> Fmt.pf ppf "[%a]" pp_operand op
  | To_label l -> Fmt.pf ppf "%s" l

let pp_alu_op ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | Divu -> "divu"
    | Divs -> "divs"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Lsl -> "lsl"
    | Lsr -> "lsr"
    | Asr -> "asr")

let pp ppf = function
  | Nop -> Fmt.string ppf "nop"
  | Move (s, d) -> Fmt.pf ppf "move %a, %a" pp_operand s pp_operand d
  | Lea (s, r) -> Fmt.pf ppf "lea %a, r%d" pp_operand s r
  | Alu (op, s, r) -> Fmt.pf ppf "%a %a, r%d" pp_alu_op op pp_operand s r
  | Alu_mem (op, s, d) ->
    Fmt.pf ppf "%a.m %a, %a" pp_alu_op op pp_operand s pp_operand d
  | Cmp (s, d) -> Fmt.pf ppf "cmp %a, %a" pp_operand s pp_operand d
  | Tst o -> Fmt.pf ppf "tst %a" pp_operand o
  | Neg r -> Fmt.pf ppf "neg r%d" r
  | Not r -> Fmt.pf ppf "not r%d" r
  | B (c, t) -> Fmt.pf ppf "b%a %a" pp_cond c pp_target t
  | Dbra (r, t) -> Fmt.pf ppf "dbra r%d, %a" r pp_target t
  | Jmp t -> Fmt.pf ppf "jmp %a" pp_target t
  | Jsr t -> Fmt.pf ppf "jsr %a" pp_target t
  | Rts -> Fmt.string ppf "rts"
  | Trap n -> Fmt.pf ppf "trap #%d" n
  | Rte -> Fmt.string ppf "rte"
  | Cas (rc, ru, ea) -> Fmt.pf ppf "cas r%d, r%d, %a" rc ru pp_operand ea
  | Movem_save (rs, r) ->
    Fmt.pf ppf "movem.save {%a}, -(r%d)" Fmt.(list ~sep:comma int) rs r
  | Movem_load (r, rs) ->
    Fmt.pf ppf "movem.load (r%d)+, {%a}" r Fmt.(list ~sep:comma int) rs
  | Push o -> Fmt.pf ppf "push %a" pp_operand o
  | Pop r -> Fmt.pf ppf "pop r%d" r
  | Set_ipl n -> Fmt.pf ppf "set_ipl #%d" n
  | Move_vbr o -> Fmt.pf ppf "move_vbr %a" pp_operand o
  | Move_mmu o -> Fmt.pf ppf "move_mmu %a" pp_operand o
  | Fmove_imm (f, d) -> Fmt.pf ppf "fmove #%g, f%d" f d
  | Fmove (s, d) -> Fmt.pf ppf "fmove f%d, f%d" s d
  | Fop (op, s, d) ->
    let name =
      match op with Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
    in
    Fmt.pf ppf "%s f%d, f%d" name s d
  | Fmovem_save r -> Fmt.pf ppf "fmovem.save -(r%d)" r
  | Fmovem_load r -> Fmt.pf ppf "fmovem.load (r%d)+" r
  | Stop_wait -> Fmt.string ppf "stop"
  | Halt -> Fmt.string ppf "halt"
  | Hcall n -> Fmt.pf ppf "hcall #%d" n
  | Label l -> Fmt.pf ppf "%s:" l
