lib/machine/mmio_map.ml: Insn Machine
