lib/machine/monitor.ml: Cost Fmt Insn List Machine
