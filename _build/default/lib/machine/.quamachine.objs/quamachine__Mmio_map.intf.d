lib/machine/mmio_map.mli:
