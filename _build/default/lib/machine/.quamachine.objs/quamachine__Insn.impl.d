lib/machine/insn.ml: Fmt
