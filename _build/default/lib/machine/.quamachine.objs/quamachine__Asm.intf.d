lib/machine/asm.mli: Format Insn Machine
