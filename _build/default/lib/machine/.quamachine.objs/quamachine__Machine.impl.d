lib/machine/machine.ml: Array Cost Hashtbl Insn Int64 List Word
