lib/machine/monitor.mli: Format Machine
