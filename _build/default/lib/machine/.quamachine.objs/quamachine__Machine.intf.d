lib/machine/machine.mli: Cost Insn
