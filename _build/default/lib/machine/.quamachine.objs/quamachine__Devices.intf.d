lib/machine/devices.mli: Machine
