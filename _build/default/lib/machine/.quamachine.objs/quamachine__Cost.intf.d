lib/machine/cost.mli: Insn
