lib/machine/word.mli:
