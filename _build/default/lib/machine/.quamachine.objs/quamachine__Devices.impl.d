lib/machine/devices.ml: Array Buffer Char Cost List Machine Mmio_map Queue String Word
