lib/machine/cost.ml: Insn List
