lib/machine/asm.ml: Fmt Insn List Machine
