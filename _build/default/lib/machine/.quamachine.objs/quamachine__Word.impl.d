lib/machine/word.ml:
