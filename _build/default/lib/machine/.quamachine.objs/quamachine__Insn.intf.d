lib/machine/insn.mli: Format
