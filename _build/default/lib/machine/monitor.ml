(* Kernel monitor utilities (§6.1, §6.4): disassembly of the code
   store, execution-trace formatting, and counter reports.  The
   paper's kernel devotes half its size to the monitor; ours leans on
   the host for rendering but reads the same machine state. *)

type annotation = int -> string option
(* maps a code address to a label, e.g. from the synthesis registry *)

let no_annotation : annotation = fun _ -> None

(* Disassemble [len] instructions starting at [from]. *)
let disassemble ?(annotate = no_annotation) m ~from ~len ppf =
  let stop = min (from + len) (Machine.code_size m) in
  for a = from to stop - 1 do
    (match annotate a with
    | Some label -> Fmt.pf ppf "%s:@." label
    | None -> ());
    Fmt.pf ppf "  %5d  %a@." a Insn.pp (Machine.read_code m a)
  done

(* Static cost of a straight-line listing: base cycles (memory
   references depend on dynamic addresses and are excluded). *)
let static_cycles m ~from ~len =
  let stop = min (from + len) (Machine.code_size m) in
  let rec go a acc =
    if a >= stop then acc else go (a + 1) (acc + Cost.base (Machine.read_code m a))
  in
  go from 0

(* Render the trace ring: recent program counters with instructions. *)
let pp_trace m ppf n =
  List.iter
    (fun pc ->
      if pc >= 0 && pc < Machine.code_size m then
        Fmt.pf ppf "  %5d  %a@." pc Insn.pp (Machine.read_code m pc)
      else Fmt.pf ppf "  %5d  <invalid>@." pc)
    (Machine.trace_window m n)

let pp_counters m ppf () =
  Fmt.pf ppf
    "cycles: %d  instructions: %d  memory refs: %d  time: %.1f us (%s)@."
    (Machine.cycles m) (Machine.insns_executed m) (Machine.mem_refs m)
    (Machine.time_us m)
    (Machine.cost_model m).Cost.name
