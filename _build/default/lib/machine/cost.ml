(* Cycle cost model.

   Each instruction is charged [base] cycles (which folds in the
   instruction fetch) plus [mem_ref_cycles] for every data-memory
   reference it performs.  Wait states add to every memory reference,
   which is how the Quamachine emulated a SUN 3/160: clock the CPU at
   16 MHz and insert one wait state per access (paper §6.1).

   The base costs below are in the style of published 68020 timings;
   they are not microarchitecturally exact.  EXPERIMENTS.md records
   paper-vs-measured for every table built on top of this model. *)

type t = {
  name : string;
  clock_mhz : float;
  wait_states : int;
}

(* Native Quamachine configuration (50 MHz, no-wait-state memory). *)
let native = { name = "quamachine-50MHz"; clock_mhz = 50.0; wait_states = 0 }

(* SUN 3/160 emulation mode: 16 MHz plus one wait state (§6.1). *)
let sun3_emulation = { name = "sun3/160-emulation"; clock_mhz = 16.0; wait_states = 1 }

let mem_ref_cycles t = 3 + t.wait_states

(* Base cycles per instruction, excluding data-memory references. *)
let base (i : Insn.insn) =
  match i with
  | Insn.Nop -> 2
  | Insn.Move _ -> 2
  | Insn.Lea _ -> 2
  | Insn.Alu (op, _, _) | Insn.Alu_mem (op, _, _) -> (
    match op with
    | Insn.Mul -> 28
    | Insn.Divu | Insn.Divs -> 44
    | Insn.Lsl | Insn.Lsr | Insn.Asr -> 4
    | Insn.Add | Insn.Sub | Insn.And | Insn.Or | Insn.Xor -> 2)
  | Insn.Cmp _ | Insn.Tst _ -> 2
  | Insn.Neg _ | Insn.Not _ -> 2
  | Insn.B _ -> 5
  | Insn.Dbra _ -> 6
  | Insn.Jmp _ -> 4
  | Insn.Jsr _ -> 7
  | Insn.Rts -> 10
  | Insn.Trap _ -> 20
  | Insn.Rte -> 14
  | Insn.Cas _ -> 12
  | Insn.Movem_save (rs, _) -> 6 + (2 * List.length rs)
  | Insn.Movem_load (_, rs) -> 6 + (2 * List.length rs)
  | Insn.Push _ -> 4
  | Insn.Pop _ -> 4
  | Insn.Set_ipl _ -> 8
  | Insn.Move_vbr _ -> 10
  | Insn.Move_mmu _ -> 40
  | Insn.Fmove_imm _ | Insn.Fmove _ -> 20
  | Insn.Fop _ -> 50
  | Insn.Fmovem_save _ | Insn.Fmovem_load _ ->
    (* Eight extended-precision registers; over 100 bytes of state
       (paper §4.2: ~10 microseconds at SUN-3 speed). *)
    40
  | Insn.Stop_wait -> 8
  | Insn.Halt -> 0
  | Insn.Hcall _ -> 2
  | Insn.Label _ -> 0

(* Number of data-memory references implied by an operand when it is
   read or written once. *)
let operand_refs = function
  | Insn.Imm _ | Insn.Lbl _ | Insn.Reg _ -> 0
  | Insn.Ind _ | Insn.Idx _ | Insn.Abs _ | Insn.Post_inc _ | Insn.Pre_dec _ -> 1

let cycles_of_us t us = int_of_float (ceil (us *. t.clock_mhz))
let us_of_cycles t cycles = float_of_int cycles /. t.clock_mhz
