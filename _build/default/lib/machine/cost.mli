(** Cycle cost model (§6.1).

    Each instruction costs [base] cycles plus [mem_ref_cycles] per
    data-memory reference; wait states add to every reference.  The
    Quamachine emulated a SUN 3/160 by running at 16 MHz with one wait
    state — [sun3_emulation]. *)

type t = { name : string; clock_mhz : float; wait_states : int }

(** 50 MHz, no-wait-state memory: the native Quamachine. *)
val native : t

(** 16 MHz + 1 wait state: the SUN 3/160 emulation of §6.1. *)
val sun3_emulation : t

val mem_ref_cycles : t -> int

(** Base cycles of one instruction, excluding data references. *)
val base : Insn.insn -> int

(** Data references implied by one read or write of an operand. *)
val operand_refs : Insn.operand -> int

val cycles_of_us : t -> float -> int
val us_of_cycles : t -> int -> float
