(* Two-pass assembler for instruction fragments.

   Fragments are plain [Insn.insn list]s that may contain [Label]
   pseudo-instructions and [To_label] targets.  [assemble] resolves
   labels against the load address (plus an environment of external
   symbols) and loads the fragment into the machine's code store.
   The returned symbol table lets kernel code patch named instruction
   slots later — this is how executable data structures are edited. *)

type symbols = (string * int) list

exception Undefined_label of string
exception Duplicate_label of string

(* First pass: compute label offsets relative to the fragment start,
   dropping the pseudo-instructions. *)
let layout insns =
  let rec go offset syms acc = function
    | [] -> (List.rev acc, List.rev syms)
    | Insn.Label l :: rest ->
      if List.mem_assoc l syms then raise (Duplicate_label l);
      go offset ((l, offset) :: syms) acc rest
    | insn :: rest -> go (offset + 1) syms (insn :: acc) rest
  in
  go 0 [] [] insns

let resolve_target ~find = function
  | Insn.To_label l -> Insn.To_addr (find l)
  | Insn.To_mem op ->
    Insn.To_mem (match op with Insn.Lbl l -> Insn.Imm (find l) | op -> op)
  | t -> t

let resolve_operand ~find = function
  | Insn.Lbl l -> Insn.Imm (find l)
  | op -> op

let resolve_insn ~find insn =
  let op = resolve_operand ~find in
  match insn with
  | Insn.B (c, t) -> Insn.B (c, resolve_target ~find t)
  | Insn.Dbra (r, t) -> Insn.Dbra (r, resolve_target ~find t)
  | Insn.Jmp t -> Insn.Jmp (resolve_target ~find t)
  | Insn.Jsr t -> Insn.Jsr (resolve_target ~find t)
  | Insn.Move (s, d) -> Insn.Move (op s, op d)
  | Insn.Lea (s, r) -> Insn.Lea (op s, r)
  | Insn.Alu (o, s, r) -> Insn.Alu (o, op s, r)
  | Insn.Alu_mem (o, s, d) -> Insn.Alu_mem (o, op s, op d)
  | Insn.Cmp (s, d) -> Insn.Cmp (op s, op d)
  | Insn.Tst o -> Insn.Tst (op o)
  | Insn.Cas (rc, ru, ea) -> Insn.Cas (rc, ru, op ea)
  | Insn.Push o -> Insn.Push (op o)
  | Insn.Move_vbr o -> Insn.Move_vbr (op o)
  | Insn.Move_mmu o -> Insn.Move_mmu (op o)
  | _ -> insn

(* Resolve all labels in [insns] assuming the fragment will be loaded
   at [at]; [env] supplies external symbols (absolute addresses). *)
let resolve ?(env = []) ~at insns =
  let body, local = layout insns in
  let find l =
    match List.assoc_opt l local with
    | Some off -> at + off
    | None -> (
      match List.assoc_opt l env with
      | Some addr -> addr
      | None -> raise (Undefined_label l))
  in
  let resolved = List.map (resolve_insn ~find) body in
  let syms = List.map (fun (l, off) -> (l, at + off)) local in
  (resolved, syms)

(* Assemble and load a fragment; returns (entry address, symbol table). *)
let assemble ?(env = []) machine insns =
  let at = Machine.code_size machine in
  let resolved, syms = resolve ~env ~at insns in
  let entry = Machine.append_code machine resolved in
  assert (entry = at);
  (entry, syms)

let entry_of (entry, _syms) = entry

let symbol syms name =
  match List.assoc_opt name syms with
  | Some a -> a
  | None -> raise (Undefined_label name)

(* Static instruction count of a fragment (labels excluded). *)
let length insns =
  List.length (List.filter (function Insn.Label _ -> false | _ -> true) insns)

let pp_listing ppf insns =
  List.iter
    (fun i ->
      match i with
      | Insn.Label _ -> Fmt.pf ppf "%a@." Insn.pp i
      | _ -> Fmt.pf ppf "    %a@." Insn.pp i)
    insns
