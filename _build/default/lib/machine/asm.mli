(** Two-pass assembler for instruction fragments.

    Fragments are [Insn.insn list]s that may contain [Insn.Label]
    pseudo-instructions, [Insn.To_label] branch targets, and
    [Insn.Lbl] label-immediates; assembly resolves them against the
    load address plus an environment of external symbols, and loads
    the result into the machine's code store. *)

type symbols = (string * int) list

exception Undefined_label of string
exception Duplicate_label of string

(** Resolve labels as if loading at [at] without installing anything;
    returns the resolved body and the absolute symbol table. *)
val resolve :
  ?env:symbols -> at:int -> Insn.insn list -> Insn.insn list * symbols

(** Assemble and append to the machine's code store; returns the
    entry address and the fragment's symbol table. *)
val assemble : ?env:symbols -> Machine.t -> Insn.insn list -> int * symbols

val entry_of : int * symbols -> int

(** Look up a required symbol; raises {!Undefined_label}. *)
val symbol : symbols -> string -> int

(** Instruction count of a fragment, labels excluded. *)
val length : Insn.insn list -> int

val pp_listing : Format.formatter -> Insn.insn list -> unit
