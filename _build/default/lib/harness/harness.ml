(* Measurement harness: runs the same Unix-ABI programs on the
   Synthesis kernel (through the UNIX emulator) and on the baseline
   kernel, and provides the microsecond instrumentation used by
   Tables 2–5 (the Quamachine's counters and trace, §6.1). *)

open Quamachine
open Synthesis
module I = Insn

(* ---------------------------------------------------------------- *)
(* Timestamps: an Hcall that records the cycle counter — the software
   equivalent of the Quamachine's microsecond interval timer. *)

module Stamps = struct
  type t = Machine.t * int * int list ref

  let create m : t =
    let marks = ref [] in
    let id = Machine.register_hcall m (fun m -> marks := Machine.cycles m :: !marks) in
    (m, id, marks)

  let mark ((_, id, _) : t) = I.Hcall id
  let cycles ((_, _, marks) : t) = List.rev !marks

  (* Intervals between consecutive stamps, in microseconds. *)
  let spans ((m, _, _) as t) =
    let rec pair = function
      | a :: (b :: _ as rest) -> (b - a) :: pair rest
      | _ -> []
    in
    List.map (fun c -> Cost.us_of_cycles (Machine.cost_model m) c) (pair (cycles t))

  let clear (_, _, marks) = marks := []
end

(* ---------------------------------------------------------------- *)
(* Stepping helpers *)

let run_until m ~max_insns pred =
  let rec go n =
    if n >= max_insns then false
    else if Machine.halted m then false
    else if pred () then true
    else begin
      Machine.step m;
      go (n + 1)
    end
  in
  go 0

let run_until_pc m ~max_insns pc =
  run_until m ~max_insns (fun () -> Machine.get_pc m = pc)

let run_until_user m ~max_insns =
  run_until m ~max_insns (fun () -> not (Machine.in_supervisor m))

(* ---------------------------------------------------------------- *)
(* A booted Synthesis instance ready to run Unix-ABI programs. *)

type synthesis_env = {
  s_boot : Boot.t;
  s_env : Programs.env;
  s_stamps : Machine.t * int * int list ref;
}

let synthesis_setup ?(cost = Cost.sun3_emulation) ?(file_content = 4096) () =
  let b = Boot.boot ~cost () in
  let k = b.Boot.kernel in
  let _tty_srv = Tty.install b.Boot.vfs in
  let _em = Unix_emulator.Emulator.install b.Boot.vfs in
  let content = Array.init file_content (fun i -> i land 0xFF) in
  let _file = Fs.create_file b.Boot.vfs ~name:"/data/bench" ~content () in
  let data = Kalloc.alloc_zeroed k.Kernel.alloc Programs.data_words in
  let env = Programs.layout ~data in
  Programs.populate env ~poke:(fun a v -> Machine.poke k.Kernel.machine a v);
  let stamps = Stamps.create k.Kernel.machine in
  { s_boot = b; s_env = env; s_stamps = stamps }

(* Run a program (built against [s_env]) to completion on Synthesis;
   returns the elapsed simulated seconds. *)
let synthesis_run ?(max_insns = 2_000_000_000) ?(quantum_us = 10_000) se ~program =
  let k = se.s_boot.Boot.kernel in
  let m = k.Kernel.machine in
  let entry, _ = Asm.assemble m program in
  let segs = [ (se.s_env.Programs.e_data, Programs.data_words) ] in
  let _t = Thread.create k ~entry ~quantum_us ~segments:segs () in
  let s0 = Machine.snapshot m in
  (match Boot.go ~max_insns se.s_boot with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "synthesis_run: instruction limit");
  (match k.Kernel.fault_log with
  | [] -> ()
  | (tid, reason) :: _ ->
    failwith (Fmt.str "synthesis_run: thread %d died of %s" tid reason));
  let d = Machine.delta m s0 in
  Machine.stats_us m d /. 1_000_000.0

(* ---------------------------------------------------------------- *)
(* A booted baseline instance. *)

type baseline_env = { b_kernel : Baseline.t; b_env : Programs.env }

let baseline_setup ?(cost = Cost.sun3_emulation) ?(file_content = 4096) () =
  let bk = Baseline.boot ~cost () in
  let content = Array.init file_content (fun i -> i land 0xFF) in
  ignore (Baseline.create_file bk ~name:"/data/bench" ~content ());
  (* above the baseline kernel's heap, below the top of memory *)
  let data = 0x40000 in
  let env = Programs.layout ~data in
  Programs.populate env ~poke:(fun a v -> Baseline.poke bk a v);
  { b_kernel = bk; b_env = env }

let baseline_run ?(max_insns = 2_000_000_000) be ~program =
  let bk = be.b_kernel in
  let entry = Baseline.load_program bk program in
  let m = bk.Baseline.machine in
  let s0 = Machine.snapshot m in
  (match Baseline.run ~max_insns bk ~entry with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "baseline_run: instruction limit");
  let d = Machine.delta m s0 in
  Machine.stats_us m d /. 1_000_000.0

(* ---------------------------------------------------------------- *)
(* Pretty printing *)

let header title =
  Fmt.pr "@.=== %s ===@." title

let row4 a b c d = Fmt.pr "%-34s %14s %14s %10s@." a b c d
let row3 a b c = Fmt.pr "%-34s %14s %14s@." a b c
let us_str v = Fmt.str "%.1f" v
