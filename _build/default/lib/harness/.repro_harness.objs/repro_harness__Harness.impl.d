lib/harness/harness.ml: Array Asm Baseline Boot Cost Fmt Fs Insn Kalloc Kernel List Machine Programs Quamachine Synthesis Thread Tty Unix_emulator
