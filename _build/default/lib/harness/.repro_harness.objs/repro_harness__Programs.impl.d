lib/harness/programs.ml: Char Insn Quamachine String Unix_emulator
