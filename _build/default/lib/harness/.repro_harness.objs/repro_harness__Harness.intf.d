lib/harness/harness.mli: Baseline Cost Insn Machine Programs Quamachine Synthesis
