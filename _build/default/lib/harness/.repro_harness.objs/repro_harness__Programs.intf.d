lib/harness/programs.mli: Quamachine
