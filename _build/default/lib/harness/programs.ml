(* The seven measurement programs of Table 1 (appendix A of the
   paper), written once against the Unix trap-15 ABI and run
   unmodified on the Synthesis kernel (through the UNIX emulator) and
   on the baseline kernel — the paper's same-binary methodology.

   Word note: the simulated machine is word-addressed, one word = one
   32-bit longword = 4 bytes.  The paper's byte counts map to words
   (1 KiB = 256 words, 4 KiB = 1024 words); the 1-byte pipe row maps
   to a single-word transfer.  Loop state lives in r9..r14, which both
   kernels preserve across system calls. *)

open Quamachine
module I = Insn

(* User-data environment a program is linked against. *)
type env = {
  e_data : int; (* base of the user data region *)
  e_name_null : int; (* "/dev/null" *)
  e_name_tty : int; (* "/dev/tty" *)
  e_name_file : int; (* "/data/bench" *)
  e_buf : int; (* transfer buffer *)
  e_arr : int; (* large array for the compute benchmark *)
  e_arr_words : int;
}

let arr_words = 110_000

let layout ~data =
  {
    e_data = data;
    e_name_null = data;
    e_name_tty = data + 16;
    e_name_file = data + 32;
    e_buf = data + 64;
    e_arr = data + 64 + 1024;
    e_arr_words = arr_words;
  }

(* Host-side population of the data region. *)
let poke_string poke addr s =
  String.iteri (fun i c -> poke (addr + i) (Char.code c)) s;
  poke (addr + String.length s) 0

let populate env ~poke =
  poke_string poke env.e_name_null "/dev/null";
  poke_string poke env.e_name_tty "/dev/tty";
  poke_string poke env.e_name_file "/data/bench";
  for i = 0 to 1023 do
    poke (env.e_buf + i) (i * 7)
  done

let data_words = 64 + 1024 + arr_words (* names + buffer + compute array *)

let syscall num = [ I.Move (I.Imm num, I.Reg I.r0); I.Trap 15 ]
let prog_exit = syscall Unix_emulator.Unix_abi.sys_exit

(* -------------------------------------------------------------- *)
(* Program 1: the compute-bound calibration test — Hofstadter's
   chaotic Q-sequence, touching a large array at non-contiguous
   points (§6.1). *)

let compute ~arr ~n =
  [
    I.Move (I.Imm 1, I.Abs (arr + 1)); (* Q[1] = Q[2] = 1 *)
    I.Move (I.Imm 1, I.Abs (arr + 2));
    I.Move (I.Imm 3, I.Reg I.r9); (* n *)
    I.Label "loop";
    (* r5 = Q[n - Q[n-1]] *)
    I.Move (I.Reg I.r9, I.Reg I.r4);
    I.Alu (I.Sub, I.Imm 1, I.r4);
    I.Alu (I.Add, I.Imm arr, I.r4);
    I.Move (I.Ind I.r4, I.Reg I.r4);
    I.Move (I.Reg I.r9, I.Reg I.r5);
    I.Alu (I.Sub, I.Reg I.r4, I.r5);
    I.Alu (I.Add, I.Imm arr, I.r5);
    I.Move (I.Ind I.r5, I.Reg I.r5);
    (* r6 = Q[n - Q[n-2]] *)
    I.Move (I.Reg I.r9, I.Reg I.r4);
    I.Alu (I.Sub, I.Imm 2, I.r4);
    I.Alu (I.Add, I.Imm arr, I.r4);
    I.Move (I.Ind I.r4, I.Reg I.r4);
    I.Move (I.Reg I.r9, I.Reg I.r6);
    I.Alu (I.Sub, I.Reg I.r4, I.r6);
    I.Alu (I.Add, I.Imm arr, I.r6);
    I.Move (I.Ind I.r6, I.Reg I.r6);
    (* Q[n] = r5 + r6 *)
    I.Alu (I.Add, I.Reg I.r6, I.r5);
    I.Move (I.Reg I.r9, I.Reg I.r4);
    I.Alu (I.Add, I.Imm arr, I.r4);
    I.Move (I.Reg I.r5, I.Ind I.r4);
    I.Alu (I.Add, I.Imm 1, I.r9);
    I.Cmp (I.Imm (n + 1), I.Reg I.r9);
    I.B (I.Ne, I.To_label "loop");
  ]
  @ prog_exit

(* -------------------------------------------------------------- *)
(* Programs 2–4: write then read back a pipe in fixed-size chunks. *)

let pipe_rw env ~chunk ~iters =
  syscall Unix_emulator.Unix_abi.sys_pipe
  @ [
      I.Move (I.Reg I.r0, I.Reg I.r13); (* read fd *)
      I.Move (I.Reg I.r1, I.Reg I.r14); (* write fd *)
      I.Move (I.Imm (iters - 1), I.Reg I.r12);
      I.Label "loop";
      I.Move (I.Imm Unix_emulator.Unix_abi.sys_write, I.Reg I.r0);
      I.Move (I.Reg I.r14, I.Reg I.r1);
      I.Move (I.Imm env.e_buf, I.Reg I.r2);
      I.Move (I.Imm chunk, I.Reg I.r3);
      I.Trap 15;
      I.Move (I.Imm Unix_emulator.Unix_abi.sys_read, I.Reg I.r0);
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Move (I.Imm env.e_buf, I.Reg I.r2);
      I.Move (I.Imm chunk, I.Reg I.r3);
      I.Trap 15;
      I.Dbra (I.r12, I.To_label "loop");
    ]
  @ prog_exit

(* -------------------------------------------------------------- *)
(* Program 5: read and write a (cached) file in 1 KiB chunks. *)

let file_rw env ~chunk ~iters =
  [
    I.Move (I.Imm Unix_emulator.Unix_abi.sys_open, I.Reg I.r0);
    I.Move (I.Imm env.e_name_file, I.Reg I.r1);
    I.Trap 15;
    I.Move (I.Reg I.r0, I.Reg I.r13); (* fd *)
    I.Move (I.Imm (iters - 1), I.Reg I.r12);
    I.Label "loop";
    (* rewind, write a chunk, rewind, read it back *)
    I.Move (I.Imm Unix_emulator.Unix_abi.sys_lseek, I.Reg I.r0);
    I.Move (I.Reg I.r13, I.Reg I.r1);
    I.Move (I.Imm 0, I.Reg I.r2);
    I.Trap 15;
    I.Move (I.Imm Unix_emulator.Unix_abi.sys_write, I.Reg I.r0);
    I.Move (I.Reg I.r13, I.Reg I.r1);
    I.Move (I.Imm env.e_buf, I.Reg I.r2);
    I.Move (I.Imm chunk, I.Reg I.r3);
    I.Trap 15;
    I.Move (I.Imm Unix_emulator.Unix_abi.sys_lseek, I.Reg I.r0);
    I.Move (I.Reg I.r13, I.Reg I.r1);
    I.Move (I.Imm 0, I.Reg I.r2);
    I.Trap 15;
    I.Move (I.Imm Unix_emulator.Unix_abi.sys_read, I.Reg I.r0);
    I.Move (I.Reg I.r13, I.Reg I.r1);
    I.Move (I.Imm env.e_buf, I.Reg I.r2);
    I.Move (I.Imm chunk, I.Reg I.r3);
    I.Trap 15;
    I.Dbra (I.r12, I.To_label "loop");
    I.Move (I.Imm Unix_emulator.Unix_abi.sys_close, I.Reg I.r0);
    I.Move (I.Reg I.r13, I.Reg I.r1);
    I.Trap 15;
  ]
  @ prog_exit

(* -------------------------------------------------------------- *)
(* Programs 6 and 7: open/close loops on /dev/null and /dev/tty. *)

let open_close ~name_addr ~iters =
  [
    I.Move (I.Imm (iters - 1), I.Reg I.r12);
    I.Label "loop";
    I.Move (I.Imm Unix_emulator.Unix_abi.sys_open, I.Reg I.r0);
    I.Move (I.Imm name_addr, I.Reg I.r1);
    I.Trap 15;
    I.Move (I.Reg I.r0, I.Reg I.r1);
    I.Move (I.Imm Unix_emulator.Unix_abi.sys_close, I.Reg I.r0);
    I.Trap 15;
    I.Dbra (I.r12, I.To_label "loop");
  ]
  @ prog_exit
