(** The seven measurement programs of Table 1, written once against
    the Unix trap-15 ABI and run unmodified on the Synthesis kernel
    (through the UNIX emulator) and on the baseline kernel — the
    paper's same-binary methodology (§6.1).

    The machine is word-addressed (one word = one 32-bit longword);
    1 KiB = 256 words. *)

(** The user-data environment a program is linked against. *)
type env = {
  e_data : int;
  e_name_null : int;
  e_name_tty : int;
  e_name_file : int;
  e_buf : int;
  e_arr : int;  (** large array for the compute benchmark *)
  e_arr_words : int;
}

val arr_words : int
val layout : data:int -> env

(** Fill the region through [poke] (names plus a patterned buffer). *)
val populate : env -> poke:(int -> int -> unit) -> unit

(** Total size of the region [layout] expects. *)
val data_words : int

val syscall : int -> Quamachine.Insn.insn list
val prog_exit : Quamachine.Insn.insn list

(** Program 1: the compute-bound calibration (Hofstadter Q-sequence,
    touching a large array at non-contiguous points). *)
val compute : arr:int -> n:int -> Quamachine.Insn.insn list

(** Programs 2–4: write then read back a pipe in fixed-size chunks. *)
val pipe_rw : env -> chunk:int -> iters:int -> Quamachine.Insn.insn list

(** Program 5: read and write a (cached) file in fixed-size chunks. *)
val file_rw : env -> chunk:int -> iters:int -> Quamachine.Insn.insn list

(** Programs 6–7: open/close loops on a named device. *)
val open_close : name_addr:int -> iters:int -> Quamachine.Insn.insn list
