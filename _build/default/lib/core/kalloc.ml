(* Kernel memory allocator over the machine's data memory.

   The paper's allocator is an executable data structure implementing
   a fast-fit heap (§6.3).  We implement the fast-fit policy —
   segregated free lists indexed by size class, falling back to
   first-fit on a sorted large-block list — as a host-side service
   with explicit cycle charging, since allocation is never on a
   synthesized hot path that the evaluation measures per-instruction. *)

open Quamachine

type block = { addr : int; len : int }

type t = {
  machine : Machine.t;
  base : int;
  limit : int;
  (* size-class free lists: class i holds blocks of exactly 2^(i+4) words *)
  classes : block list array;
  mutable large : block list; (* sorted by address, coalesced *)
  mutable live_words : int;
  mutable allocated : (int, int) Hashtbl.t; (* addr -> len *)
}

let num_classes = 8
let class_words i = 1 lsl (i + 4) (* 16 .. 2048 words *)

let create machine ~base ~limit =
  {
    machine;
    base;
    limit;
    classes = Array.make num_classes [];
    large = [ { addr = base; len = limit - base } ];
    live_words = 0;
    allocated = Hashtbl.create 64;
  }

let class_for len =
  let rec go i = if i >= num_classes then None else if class_words i >= len then Some i else go (i + 1) in
  go 0

(* Carve [len] words from the large list (first fit). *)
let carve t len =
  let rec go acc = function
    | [] -> None
    | b :: rest when b.len >= len ->
      let remainder =
        if b.len = len then rest else { addr = b.addr + len; len = b.len - len } :: rest
      in
      Some (b.addr, List.rev_append acc remainder)
    | b :: rest -> go (b :: acc) rest
  in
  match go [] t.large with
  | None -> None
  | Some (addr, large) ->
    t.large <- large;
    Some addr

exception Out_of_memory

(* Allocate [len] words; returns the address.  Fast path: pop the
   size-class list (the "fast fit"); slow path: carve from the large
   region.  Cost: ~20 cycles fast, ~60 slow (charged). *)
let alloc t len =
  if len <= 0 then invalid_arg "Kalloc.alloc";
  let addr, charged =
    match class_for len with
    | Some cls -> (
      match t.classes.(cls) with
      | b :: rest ->
        t.classes.(cls) <- rest;
        (Some b.addr, 20)
      | [] -> (
        match carve t (class_words cls) with
        | Some addr -> (Some addr, 60)
        | None -> (None, 60)))
    | None -> (
      match carve t len with Some addr -> (Some addr, 80) | None -> (None, 80))
  in
  Machine.charge t.machine charged;
  match addr with
  | None -> raise Out_of_memory
  | Some addr ->
    let stored_len =
      match class_for len with Some cls -> class_words cls | None -> len
    in
    Hashtbl.replace t.allocated addr stored_len;
    t.live_words <- t.live_words + stored_len;
    addr

(* Allocate and zero. *)
let alloc_zeroed t len =
  let addr = alloc t len in
  for i = addr to addr + len - 1 do
    Machine.poke t.machine i 0
  done;
  (* zeroing touches memory for real *)
  Machine.charge_refs t.machine len;
  addr

let free t addr =
  match Hashtbl.find_opt t.allocated addr with
  | None -> invalid_arg "Kalloc.free: not an allocated block"
  | Some len ->
    Hashtbl.remove t.allocated addr;
    t.live_words <- t.live_words - len;
    Machine.charge t.machine 15;
    (match class_for len with
    | Some cls when class_words cls = len ->
      t.classes.(cls) <- { addr; len } :: t.classes.(cls)
    | _ ->
      (* return to the large list, keeping it address-sorted and
         coalescing neighbours *)
      let rec insert = function
        | [] -> [ { addr; len } ]
        | b :: rest when addr + len = b.addr -> { addr; len = len + b.len } :: rest
        | b :: rest when b.addr + b.len = addr -> insert_merge b rest
        | b :: rest when addr < b.addr -> { addr; len } :: b :: rest
        | b :: rest -> b :: insert rest
      and insert_merge b rest =
        match rest with
        | nxt :: rest' when b.addr + b.len + len = nxt.addr ->
          { addr = b.addr; len = b.len + len + nxt.len } :: rest'
        | _ -> { addr = b.addr; len = b.len + len } :: rest
      in
      t.large <- insert t.large)

let live_words t = t.live_words
let block_len t addr = Hashtbl.find_opt t.allocated addr
