lib/core/stream_graph.mli: Kernel Kpipe Quaject Quamachine Vfs
