lib/core/fs.ml: Array Insn Kalloc Kernel Layout List Machine Printf Quamachine Template Vfs
