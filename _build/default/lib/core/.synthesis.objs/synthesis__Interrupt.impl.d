lib/core/interrupt.ml: Array Asm Insn Kalloc Kernel Kqueue Machine Mmio_map Printf Quamachine Template Thread
