lib/core/inspect.mli: Format Kernel Quamachine
