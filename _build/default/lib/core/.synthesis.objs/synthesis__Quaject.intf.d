lib/core/quaject.mli: Kernel Quamachine
