lib/core/peephole.mli: Quamachine
