lib/core/thread.mli: Kernel Quamachine Template
