lib/core/template.ml: Insn List Quamachine
