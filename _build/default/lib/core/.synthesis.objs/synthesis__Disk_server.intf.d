lib/core/disk_server.mli: Kernel
