lib/core/layout.mli:
