lib/core/peephole.ml: Insn Quamachine Word
