lib/core/disk_server.ml: Devices Hashtbl Insn Kalloc Kernel List Machine Mmio_map Quaject Quamachine Thread
