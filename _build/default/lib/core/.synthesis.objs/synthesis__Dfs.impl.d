lib/core/dfs.ml: Array Char Devices Disk_server Insn Kalloc Kernel Layout List Machine Printf Quamachine String Template Thread Vfs
