lib/core/kpipe.mli: Kernel Vfs
