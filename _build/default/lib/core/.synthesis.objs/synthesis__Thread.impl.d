lib/core/thread.ml: Array Ctx Devices Hashtbl Insn Kalloc Kernel Layout List Machine Mmio_map Printf Quamachine Ready_queue Template
