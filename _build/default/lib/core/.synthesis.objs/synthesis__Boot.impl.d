lib/core/boot.ml: Array Cost Ctx Fs Hashtbl Insn Kernel Layout List Machine Mmio_map Quamachine Ready_queue Thread Vfs
