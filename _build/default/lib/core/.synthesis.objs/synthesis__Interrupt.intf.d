lib/core/interrupt.mli: Kernel Kqueue Quamachine
