lib/core/quaject.ml: Array Insn Kalloc Kernel Machine Quamachine
