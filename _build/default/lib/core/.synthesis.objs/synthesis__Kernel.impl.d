lib/core/kernel.ml: Array Asm Cost Devices Hashtbl Insn Kalloc Layout List Logs Machine Mmio_map Peephole Quamachine String Template
