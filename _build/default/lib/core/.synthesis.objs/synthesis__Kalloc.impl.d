lib/core/kalloc.ml: Array Hashtbl List Machine Quamachine
