lib/core/tty.mli: Kernel Kqueue Quamachine Vfs
