lib/core/ctx.ml: Asm Insn Kernel Layout List Machine Mmio_map Printf Quamachine Ready_queue Template
