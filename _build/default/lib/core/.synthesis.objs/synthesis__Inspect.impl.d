lib/core/inspect.ml: Fmt Hashtbl Kernel List Monitor Quamachine String
