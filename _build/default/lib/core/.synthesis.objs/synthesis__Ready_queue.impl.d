lib/core/ready_queue.ml: Devices Insn Kernel List Machine Quamachine
