lib/core/layout.ml:
