lib/core/tty.ml: Ctx Insn Kalloc Kernel Kqueue Layout Machine Mmio_map Printf Quamachine Template Thread Vfs
