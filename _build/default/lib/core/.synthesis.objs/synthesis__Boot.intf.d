lib/core/boot.mli: Kernel Quamachine Vfs
