lib/core/vfs.ml: Buffer Char Hashtbl Insn Kernel Layout Machine Quamachine String
