lib/core/dfs.mli: Disk_server Kernel Vfs
