lib/core/synthesizer.ml: Ctx Insn Kalloc Kernel Kqueue Layout List Machine Printf Quaject Quamachine Thread
