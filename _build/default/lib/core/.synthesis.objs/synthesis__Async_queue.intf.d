lib/core/async_queue.mli: Kernel Kqueue
