lib/core/scheduler.ml: Cost Ctx Hashtbl Kernel Layout List Machine Quamachine Ready_queue
