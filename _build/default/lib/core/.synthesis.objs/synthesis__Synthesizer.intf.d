lib/core/synthesizer.mli: Kernel Kqueue Quaject Template
