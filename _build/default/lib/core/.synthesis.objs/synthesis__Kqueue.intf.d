lib/core/kqueue.mli: Kernel Template
