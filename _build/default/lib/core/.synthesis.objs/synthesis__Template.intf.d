lib/core/template.mli: Quamachine
