lib/core/scheduler.mli: Kernel
