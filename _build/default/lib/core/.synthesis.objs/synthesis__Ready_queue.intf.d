lib/core/ready_queue.mli: Kernel
