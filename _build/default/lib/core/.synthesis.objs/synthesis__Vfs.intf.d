lib/core/vfs.mli: Hashtbl Kernel
