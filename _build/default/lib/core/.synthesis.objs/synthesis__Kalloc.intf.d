lib/core/kalloc.mli: Quamachine
