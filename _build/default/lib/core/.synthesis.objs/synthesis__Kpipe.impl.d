lib/core/kpipe.ml: Insn Kalloc Kernel Layout List Machine Printf Quamachine Template Thread Vfs
