lib/core/async_queue.ml: Insn Kernel Kqueue Machine Quamachine Template Thread
