lib/core/kqueue.ml: Insn Kalloc Kernel Machine Quamachine Template
