lib/core/stream_graph.ml: Array Asm Insn Kernel Kpipe Layout List Machine Quaject Quamachine Thread Vfs
