lib/core/ctx.mli: Kernel
