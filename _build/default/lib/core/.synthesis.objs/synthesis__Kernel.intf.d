lib/core/kernel.mli: Asm Cost Devices Hashtbl Insn Kalloc Machine Quamachine Template
