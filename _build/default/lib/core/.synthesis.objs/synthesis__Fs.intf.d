lib/core/fs.mli: Template Vfs
