(** Name space and the open/close/lseek kernel calls (§6.2–6.3).

    [open] finds the named quaject (hashed backwards-stored names),
    asks it to synthesize read/write routines specialized to the
    calling thread, and installs the entry points in the caller's fd
    tables; later reads jump straight into the specialized routine
    through the thread's three-instruction dispatcher. *)

type handlers = {
  h_read : int; (** code address of the synthesized read routine *)
  h_write : int;
  h_pos_cell : int option; (** seek-position cell when seekable *)
  h_close : unit -> unit;
}

type open_fn = Kernel.tte -> fd:int -> handlers

type t = {
  kernel : Kernel.t;
  names : (string, open_fn) Hashtbl.t; (** keyed by the reversed name *)
  opens : (int * int, handlers) Hashtbl.t; (** (tid, fd) -> handlers *)
}

(** Install the name space and the trap handlers (open = trap 3,
    close = trap 4, lseek = trap 12). *)
val install : Kernel.t -> t

val register : t -> name:string -> open_fn -> unit
val lookup : t -> string -> open_fn option

(** Host-side equivalents of the system calls (used by servers that
    hand descriptors to other threads, and by tests). *)
val open_named : t -> Kernel.tte -> string -> int option

val close_fd : t -> Kernel.tte -> int -> bool
val seek : t -> Kernel.tte -> int -> int -> bool
val free_fd : t -> Kernel.tte -> int option
val install_fd : t -> Kernel.tte -> fd:int -> handlers -> unit
val read_string : Kernel.t -> int -> string option
