(** Synthesized kernel queues (Figures 1 and 2): the optimistic SP-SC
    and MP-SC queue code generated with the descriptor addresses
    folded in.

    Generated routines are kernel subroutines (entered with Jsr):
    item in r1 (or source pointer r2 and count r3 for the multi-item
    insert), status in r0 (1 = done, 0 = would block), item out in r1
    for gets; r4..r7 are clobbered. *)

type kind = Spsc | Mpsc | Spmc | Mpmc

type t = {
  q_kind : kind;
  q_name : string;
  q_desc : int; (* [desc] = head, [desc+1] = tail *)
  q_buf : int;
  q_flag : int; (* valid-flag array base; 0 for SP-SC *)
  q_size : int;
  q_put : int; (* code entry points *)
  q_get : int;
  q_put_many : int; (* 0 when absent *)
}

val head_cell : t -> int
val tail_cell : t -> int

(** Figure 1: no CAS anywhere on the path. *)
val create_spsc : Kernel.t -> name:string -> size:int -> t

(** Figure 2: CAS slot claim plus valid flags; includes the atomic
    multi-item insert. *)
val create_mpsc : Kernel.t -> name:string -> size:int -> t

(** Mirror of MP-SC: consumers claim slots by CAS on Q_tail and clear
    the valid flag after reading. *)
val create_spmc : Kernel.t -> name:string -> size:int -> t

(** Flag-guarded CAS claims at both ends (§3.2's fourth kind). *)
val create_mpmc : Kernel.t -> name:string -> size:int -> t

(** Host-side access for servers and tests (uncharged). *)
val host_length : Kernel.t -> t -> int

val host_put : Kernel.t -> t -> int -> bool
val host_get : Kernel.t -> t -> int option

(** The queue code templates (exposed for inspection and ablation). *)
val spsc_put_template : Template.t

val spsc_get_template : Template.t
val mpsc_put_template : Template.t
val mpsc_get_template : Template.t
val mpsc_put_many_template : Template.t
val spmc_get_template : Template.t
val spmc_put_template : Template.t
val mpmc_put_template : Template.t
