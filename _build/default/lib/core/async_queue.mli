(** Asynchronous queues (§2.3): never block — put and get return a
    status in r0, and the interesting edges raise signals: a put into
    an empty queue signals the registered consumer, a get from a full
    queue signals the registered producer. *)

type t = {
  aq_queue : Kqueue.t;
  mutable aq_put : int;  (** signalling wrappers (Jsr; item in r1) *)
  mutable aq_get : int;
  mutable aq_consumer : Kernel.tte option;
  mutable aq_producer : Kernel.tte option;
}

val create : Kernel.t -> name:string -> size:int -> t
val set_consumer : t -> Kernel.tte -> unit
val set_producer : t -> Kernel.tte -> unit
