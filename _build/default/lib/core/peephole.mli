(** Peephole optimizer for synthesized code (§2.2's optimization
    stage).

    Sound rewrites only: rules that change condition-code behaviour
    fire only when a forward scan proves the flags dead — redefined by
    a later instruction before any possible reader, where conditional
    branches, labels (join points), control transfers and
    possibly-faulting instructions (division; see the comment in the
    implementation about memory operands) all count as readers.

    The test suite checks semantic equivalence of optimized against
    original code on randomized programs, including final condition
    codes and cycle counts. *)

(** One instruction's flag/fault classification (exposed for tests). *)
val writes_flags : Quamachine.Insn.insn -> bool

val reads_flags : Quamachine.Insn.insn -> bool
val may_fault : Quamachine.Insn.insn -> bool
val flags_dead_after : Quamachine.Insn.insn list -> bool

(** Rewrite to a (bounded) fixpoint. *)
val optimize : Quamachine.Insn.insn list -> Quamachine.Insn.insn list
