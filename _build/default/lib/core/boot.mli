(** Kernel bring-up: shared handlers (faults, thread-operation system
    calls, signals, alarms), the idle thread, and the name space.
    [go] transfers control to the first ready thread by jumping into
    its synthesized switch-in code.

    The machine halts when the last non-system thread exits. *)

type t = { kernel : Kernel.t; vfs : Vfs.t; idle : Kernel.tte }

val boot : ?cost:Quamachine.Cost.t -> ?mem_words:int -> unit -> t
val go : ?max_insns:int -> t -> Quamachine.Machine.run_result

(** Non-zombie threads. *)
val live_threads : Kernel.t -> Kernel.tte list

(** Are any non-system threads still alive? *)
val work_remaining : Kernel.t -> bool
