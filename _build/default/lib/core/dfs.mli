(** The disk-backed file system: files in contiguous block runs read
    through the §5.1 pipeline (elevator scheduler, buffer cache), with
    threads blocking on cache misses and woken by the completion
    interrupt.  Read-only; the measured file system of the paper's
    evaluation is the memory-resident {!Fs}. *)

type dfs_file = { df_name : string; df_start : int; df_words : int }

type t

(** Write a directory (block 0) and file bodies onto the raw disk
    device — a host-side mkfs. *)
val format : Kernel.t -> files:(string * int array) list -> unit

(** Read the directory through the cache and register every file as
    [/disk/<name>].  Requires a live machine context (the superblock
    read completes through the disk interrupt): start the kernel —
    at least the idle thread — first. *)
val mount : Vfs.t -> Disk_server.t -> t

val files : t -> dfs_file list
