(** The Synthesis model of computation (§2.1): threads as nodes of a
    directed graph, data-flow channels as arcs.  Linear pipelines are
    composed declaratively; the quaject interfacer's case analysis
    picks the connector for each arc (SP-SC pipes between
    single active stages). *)

type role =
  | Head of (wfd:int -> Quamachine.Insn.insn list)  (** pure producer *)
  | Middle of (rfd:int -> wfd:int -> Quamachine.Insn.insn list)  (** filter *)
  | Tail of (rfd:int -> Quamachine.Insn.insn list)  (** pure consumer *)

type stage

val stage : ?segments:(int * int) list -> ?quantum_us:int -> role -> stage

type built = {
  sg_threads : Kernel.tte list;  (** in pipeline order *)
  sg_pipes : Kpipe.t list;  (** the arcs, in order *)
  sg_connectors : Quaject.connector list;  (** the interfacer's choices *)
}

(** The connector for an arc with the given endpoint multiplicities. *)
val connect_many : producers:int -> consumers:int -> Quaject.connector

(** Build Head → Middle* → Tail: creates the threads (runnable) and
    the connecting pipes, with each pipe end synthesized for its
    owning thread.  Raises [Invalid_argument] on malformed shapes. *)
val pipeline : Vfs.t -> ?pipe_cap:int -> stage list -> built
