(** Kernel memory allocator: a fast-fit heap (§6.3) over the
    machine's data memory — segregated power-of-two free lists with a
    coalescing first-fit fallback.  Allocation costs are charged to
    the simulated clock. *)

type t

exception Out_of_memory

val create : Quamachine.Machine.t -> base:int -> limit:int -> t

(** Allocate [len] words; returns the address. *)
val alloc : t -> int -> int

(** Allocate and zero-fill (the zeroing touches memory and is
    charged). *)
val alloc_zeroed : t -> int -> int

val free : t -> int -> unit
val live_words : t -> int
val block_len : t -> int -> int option
