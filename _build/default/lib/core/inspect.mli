(** Inspection of synthesized code: find routines by registry name and
    disassemble them — the window into what the synthesizer emitted. *)

val annotator : Kernel.t -> Quamachine.Monitor.annotation

(** Find a routine by exact registry name: (name, entry, length). *)
val find : Kernel.t -> string -> (string * int * int) option

(** Routines whose registry name contains the substring
    (case-insensitive). *)
val grep : Kernel.t -> string -> (string * int * int) list

val disassemble_routine : Kernel.t -> Format.formatter -> string -> unit
val pp_registry : Kernel.t -> Format.formatter -> unit -> unit
val pp_threads : Kernel.t -> Format.formatter -> unit -> unit

(** Aggregate a machine cycle profile by synthesized routine, hottest
    first (enable {!Quamachine.Machine.profile_enable} before the
    run). *)
val profile_by_routine : Kernel.t -> top:int -> (string * int) list

val pp_profile : Kernel.t -> Format.formatter -> top:int -> unit
