(* Inspection of synthesized code: find routines by registry name and
   disassemble them with annotations — the window into what the
   synthesizer actually emitted. *)

open Quamachine

(* Annotation function built from the synthesis registry. *)
let annotator k : Monitor.annotation =
  let by_addr = Hashtbl.create 64 in
  List.iter (fun (name, entry, _) -> Hashtbl.replace by_addr entry name) (Kernel.registry k);
  fun addr -> Hashtbl.find_opt by_addr addr

let find k name =
  List.find_opt (fun (n, _, _) -> n = name) (Kernel.registry k)

(* Routines whose registry name contains [substr]. *)
let grep k substr =
  List.filter
    (fun (n, _, _) ->
      let ls = String.lowercase_ascii substr and ln = String.lowercase_ascii n in
      let rec contains i =
        if i + String.length ls > String.length ln then false
        else if String.sub ln i (String.length ls) = ls then true
        else contains (i + 1)
      in
      contains 0)
    (Kernel.registry k)

let disassemble_routine k ppf name =
  match find k name with
  | None -> Fmt.pf ppf "no such routine: %s@." name
  | Some (n, entry, len) ->
    Fmt.pf ppf "%s (%d instructions at %d):@." n len entry;
    Monitor.disassemble ~annotate:(annotator k) k.Kernel.machine ~from:entry ~len ppf;
    Fmt.pf ppf "static cycles (excl. memory refs): %d@."
      (Monitor.static_cycles k.Kernel.machine ~from:entry ~len)

let pp_registry k ppf () =
  List.iter
    (fun (name, entry, len) -> Fmt.pf ppf "%6d %4d  %s@." entry len name)
    (Kernel.registry k)

let pp_threads k ppf () =
  Hashtbl.iter
    (fun tid (t : Kernel.tte) ->
      Fmt.pf ppf
        "thread %d: state=%s tte=%d map=%d quantum=%dus fp=%b sw_out=%d sw_in=%d@."
        tid
        (match t.Kernel.state with
        | Kernel.Ready -> "ready"
        | Kernel.Blocked -> "blocked"
        | Kernel.Stopped -> "stopped"
        | Kernel.Zombie -> "zombie")
        t.Kernel.base t.Kernel.map_id t.Kernel.quantum_us t.Kernel.uses_fp
        t.Kernel.sw_out t.Kernel.sw_in)
    k.Kernel.threads

(* Aggregate a machine cycle profile by synthesized routine: which
   kernel code the cycles went to (the monitor's profiling view). *)
let profile_by_routine k ~top =
  let m = k.Kernel.machine in
  let routines =
    List.sort
      (fun (_, e1, _) (_, e2, _) -> compare e1 e2)
      (Kernel.registry k)
  in
  let containing addr =
    List.fold_left
      (fun acc (name, entry, len) ->
        if addr >= entry && addr < entry + len then Some name else acc)
      None routines
  in
  let totals = Hashtbl.create 32 in
  List.iter
    (fun (addr, cycles) ->
      let key = match containing addr with Some n -> n | None -> "<user/other>" in
      Hashtbl.replace totals key
        (cycles + (try Hashtbl.find totals key with Not_found -> 0)))
    (Quamachine.Machine.profile_top m 100_000);
  Hashtbl.fold (fun name cy acc -> (name, cy) :: acc) totals []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < top)

let pp_profile k ppf ~top =
  let total = float_of_int (Quamachine.Machine.cycles k.Kernel.machine) in
  List.iter
    (fun (name, cy) ->
      Fmt.pf ppf "  %8d cycles %5.1f%%  %s@." cy
        (100.0 *. float_of_int cy /. total)
        name)
    (profile_by_routine k ~top)
