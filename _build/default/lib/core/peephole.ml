(* Peephole optimizer run over synthesized code before installation
   (the "optimization" stage of the quaject creator and interfacer,
   §2.2–2.3).

   Rules fire only when provably safe.  Because most instructions set
   condition codes, deleting or rewriting one may change flags seen by
   a later conditional branch; [flags_dead_after] scans forward and
   only allows a rewrite when some instruction redefines the flags
   before any possible reader. *)

open Quamachine

(* Division traps on a zero divisor *before* defining flags, so it
   cannot prove earlier flags dead — the exception frame would expose
   them.  Memory operands can in principle fault too (exposing both
   flags and the pre-fault register file, which also matters to the
   dead-store rule), but synthesized kernel code only emits validated
   kernel addresses; that invariant is what lets ordinary moves count
   as flag and register definitions here. *)
let writes_flags = function
  | Insn.Alu ((Insn.Divu | Insn.Divs), _, _)
  | Insn.Alu_mem ((Insn.Divu | Insn.Divs), _, _) ->
    false
  | Insn.Move _ | Insn.Alu _ | Insn.Alu_mem _ | Insn.Cmp _ | Insn.Tst _
  | Insn.Neg _ | Insn.Not _ | Insn.Cas _ ->
    true
  | _ -> false

let may_fault = function
  | Insn.Alu ((Insn.Divu | Insn.Divs), _, _)
  | Insn.Alu_mem ((Insn.Divu | Insn.Divs), _, _) ->
    true
  | _ -> false

let reads_flags = function
  | Insn.B (Insn.Always, _) -> false
  | Insn.B _ -> true
  | _ -> false

(* Conservative: any control transfer, join point (label) or fragment
   end makes the flags observable. *)
let escapes = function
  | Insn.B _ | Insn.Dbra _ | Insn.Jmp _ | Insn.Jsr _ | Insn.Rts | Insn.Trap _
  | Insn.Rte | Insn.Label _ | Insn.Stop_wait | Insn.Halt | Insn.Hcall _ ->
    true
  | _ -> false

let rec flags_dead_after = function
  | [] -> false
  | insn :: rest ->
    if reads_flags insn || may_fault insn then false
    else if writes_flags insn then true
    else if escapes insn then false
    else flags_dead_after rest

(* Does evaluating [operand] read register [r]? *)
let operand_reads_reg r = function
  | Insn.Imm _ | Insn.Lbl _ | Insn.Abs _ -> false
  | Insn.Reg r' | Insn.Ind r' | Insn.Idx (r', _) | Insn.Post_inc r' | Insn.Pre_dec r' ->
    r = r'

let is_pure_source = function
  | Insn.Imm _ | Insn.Lbl _ | Insn.Reg _ -> true
  | _ -> false

let log2_exact n =
  if n <= 0 then None
  else
    let rec go k v = if v = n then Some k else if v > n then None else go (k + 1) (v * 2) in
    go 0 1

let eval_alu op a b =
  (* b op a, matching Machine.alu_apply's operand order. *)
  match op with
  | Insn.Add -> Some (Word.add b a)
  | Insn.Sub -> Some (Word.sub b a)
  | Insn.Mul -> Some (Word.mul b a)
  | Insn.Divu -> if a = 0 then None else Some (Word.divu b a)
  | Insn.Divs -> if a = 0 then None else Some (Word.divs b a)
  | Insn.And -> Some (Word.logand b a)
  | Insn.Or -> Some (Word.logor b a)
  | Insn.Xor -> Some (Word.logxor b a)
  | Insn.Lsl -> Some (Word.shift_left b a)
  | Insn.Lsr -> Some (Word.shift_right_logical b a)
  | Insn.Asr -> Some (Word.shift_right_arith b a)

(* Identity operations that leave the destination unchanged. *)
let is_identity op a =
  match (op, a) with
  | (Insn.Add | Insn.Sub | Insn.Or | Insn.Xor | Insn.Lsl | Insn.Lsr | Insn.Asr), 0 -> true
  | Insn.Mul, 1 | (Insn.Divu | Insn.Divs), 1 -> true
  | Insn.And, a when a land Word.mask = Word.mask -> true
  | _ -> false

(* One rewriting pass; returns (changed, insns). *)
let pass insns =
  let changed = ref false in
  let rec go = function
    | [] -> []
    (* self move: move rN, rN *)
    | (Insn.Move (Insn.Reg a, Insn.Reg b) as i) :: rest when a = b ->
      if flags_dead_after rest then begin
        changed := true;
        go rest
      end
      else i :: go rest
    (* identity ALU op *)
    | (Insn.Alu (op, Insn.Imm a, _) as i) :: rest when is_identity op a ->
      if flags_dead_after rest then begin
        changed := true;
        go rest
      end
      else i :: go rest
    (* strength reduction: mul/div by a power of two.  Flag behaviour
       is identical (N/Z set, C/V cleared) so this is always safe. *)
    | Insn.Alu (Insn.Mul, Insn.Imm a, rd) :: rest when log2_exact a <> None ->
      changed := true;
      let k = match log2_exact a with Some k -> k | None -> assert false in
      go (Insn.Alu (Insn.Lsl, Insn.Imm k, rd) :: rest)
    | Insn.Alu (Insn.Divu, Insn.Imm a, rd) :: rest when log2_exact a <> None ->
      changed := true;
      let k = match log2_exact a with Some k -> k | None -> assert false in
      go (Insn.Alu (Insn.Lsr, Insn.Imm k, rd) :: rest)
    (* constant folding: move #a, rN ; alu #b, rN  ->  move #(a op b), rN *)
    | (Insn.Move (Insn.Imm a, Insn.Reg r1) as i1)
      :: (Insn.Alu (op, Insn.Imm b, r2) as i2)
      :: rest
      when r1 = r2 -> (
      match eval_alu op b a with
      | Some v ->
        (* The folded Move sets N/Z and clears C/V — identical to the
           Alu flag rule for logical ops and shifts; Add/Sub may set
           C/V, so those fold only when the flags are dead. *)
        let flags_compatible =
          match op with
          | Insn.Add | Insn.Sub -> flags_dead_after rest
          | _ -> true
        in
        if flags_compatible then begin
          changed := true;
          Insn.Move (Insn.Imm v, Insn.Reg r1) :: go rest
        end
        else i1 :: go (i2 :: rest)
      | _ -> i1 :: go (i2 :: rest))
    (* dead store: two stores to the same register, first unused *)
    | (Insn.Move (src1, Insn.Reg r1) as i1)
      :: (Insn.Move (src2, Insn.Reg r2) as i2)
      :: rest
      when r1 = r2 && is_pure_source src1 && not (operand_reads_reg r1 src2) ->
      if flags_dead_after (i2 :: rest) then begin
        changed := true;
        go (i2 :: rest)
      end
      else i1 :: go (i2 :: rest)
    | i :: rest -> i :: go rest
  in
  let out = go insns in
  (!changed, out)

(* Iterate to a (bounded) fixpoint. *)
let optimize insns =
  let rec fix n insns =
    if n = 0 then insns
    else
      let changed, insns' = pass insns in
      if changed then fix (n - 1) insns' else insns'
  in
  fix 8 insns
