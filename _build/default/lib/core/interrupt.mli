(** Interrupt machinery (§5.3–5.4, Table 5): Procedure Chaining and
    the A/D buffered queue. *)

(** {1 Procedure Chaining}

    Chain a procedure to run when the current interrupt handler
    finishes by rewriting the handler's return address; pending
    procedures sit in an optimistic MP-SC queue, so chaining from any
    interrupt level needs no locking. *)

type chain = {
  ch_queue : Kqueue.t;
  ch_saved : int; (** original return address during a chained run *)
  ch_chain : int; (** Jsr entry, procedure address in r1 *)
  ch_runner : int;
}

val install_chain : Kernel.t -> chain

(** {1 The A/D buffered queue}

    Eight synthesized stage handlers, each storing the sample to its
    own slot of the current queue element with the address folded in;
    the vector rotates through them and only the eighth does the
    element bookkeeping (re-specializing the stores for the next
    element).  Table 5's 3 µs per interrupt. *)

type adq = {
  adq_factor : int;  (** samples per element (the blocking factor) *)
  adq_elems : int;
  adq_flags : int;
  adq_n : int;
  adq_desc : int; (** [0]=head element [1]=tail element [2]=cwait *)
  adq_stage_cell : int;
  adq_stages : int array;
  adq_store_slots : int array;
  adq_get : int; (** consumer subroutine: r0 = status, r1 = element *)
  adq_consumer_wq : Kernel.waitq;
  mutable adq_overruns : int;
}

val blocking_factor : int
val elem_addr : adq -> int -> int

(** [factor] defaults to {!blocking_factor} (8); factor 1 degenerates
    to a plain per-interrupt queue insert — the ablation baseline. *)
val install_adq : Kernel.t -> ?factor:int -> n_elems:int -> unit -> adq

(** Consumer-side guarded-block fragment; resumes at [retry]. *)
val consumer_block_code :
  Kernel.t -> adq -> retry:string -> Quamachine.Insn.insn list
