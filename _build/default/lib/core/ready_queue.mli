(** The executable ready queue (§4.2, Figure 3).

    Ready threads are chained in a circular queue of code: the
    patchable [jmp] ending each thread's switch-out points at the next
    thread's switch-in.  There is no dispatcher procedure.  Insertion
    and removal are O(1) code patches; the host keeps a doubly-linked
    mirror for bookkeeping and assertions.

    The idle thread occupies the ring only when nothing else is ready;
    the public mutators maintain that invariant and, when they evict
    an idle thread holding the CPU, preempt it immediately. *)

(** Entry point of [b] when entered from [a]: switch-in-with-MMU only
    when the quaspace changes. *)
val entry_from : Kernel.tte -> Kernel.tte -> int

(** Point [a]'s switch-out jump at [b] (patches code, fixes the
    mirror). *)
val relink : Kernel.t -> Kernel.tte -> Kernel.tte -> unit

val in_queue : Kernel.tte -> bool
val next_exn : Kernel.tte -> Kernel.tte
val prev_exn : Kernel.tte -> Kernel.tte
val insert_after : Kernel.t -> Kernel.tte -> Kernel.tte -> unit

(** Insert right after the running thread: next access to the CPU
    (§4.4). *)
val insert_front : Kernel.t -> Kernel.tte -> unit

val insert_single : Kernel.t -> Kernel.tte -> unit
val remove : Kernel.t -> Kernel.tte -> unit
val to_list : Kernel.t -> Kernel.tte list
val length : Kernel.t -> int

(** Re-establish the idle-thread invariant after external changes. *)
val balance_idle : Kernel.t -> unit

(** Structural check: the mirror is a consistent cycle and every
    patched jmp targets the right successor entry. *)
val verify : Kernel.t -> bool
