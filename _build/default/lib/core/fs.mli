(** The memory-resident file system and /dev/null (§6.2–6.3).

    [open] synthesizes read/write routines per file and per thread:
    buffer base, size cell, per-open position cell and the caller's
    scheduling gauge are folded in as constants; the copy loop moves
    words unrolled eight at a time (the paper's 9*N/8 µs shape). *)

type file = {
  f_name : string;
  f_buf : int;
  f_cap : int;
  f_size_cell : int; (** current length lives in kernel memory *)
}

(** Register /dev/null: the cheapest possible synthesized routines. *)
val register_null : Vfs.t -> unit

(** Create a memory-resident file, preloaded with [content], and
    register it in the name space. *)
val create_file :
  Vfs.t -> name:string -> ?capacity:int -> ?content:int array -> unit -> file

(** Host-side view of the file body (for tests). *)
val file_contents : Vfs.t -> file -> int array

val file_size : Vfs.t -> file -> int

(** The open-time code templates (exposed for inspection and the
    peephole ablation benchmark). *)
val null_read_template : Template.t

val null_write_template : Template.t
val file_read_template : Template.t
val file_write_template : Template.t
