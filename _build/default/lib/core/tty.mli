(** The TTY pipeline (§5.1, §5.4):

    raw interrupt handler → dedicated queue → cooked filter thread
    (erase/kill/echo) → cooked queue → /dev/tty readers; echo and user
    writes meet in an optimistic MP-SC screen queue drained by a pump
    thread. *)

type server = {
  srv_raw : Kqueue.t; (** dedicated SP-SC: irq → filter *)
  srv_cooked : Kqueue.t; (** SP-SC: filter → readers *)
  srv_screen : Kqueue.t; (** optimistic MP-SC: echo + writes → pump *)
  srv_lbuf : int;
  srv_lbuf_cap : int;
  srv_len_cell : int;
  srv_fwait : int;
  srv_rwait : int;
  srv_swait : int;
  srv_filter_wq : Kernel.waitq;
  srv_reader_wq : Kernel.waitq;
  srv_pump_wq : Kernel.waitq;
  mutable srv_filter : Kernel.tte option;
  mutable srv_pump : Kernel.tte option;
}

(** Create the queues, the filter and pump service threads, the raw
    interrupt handler (installed in every vector table), and register
    /dev/tty in the name space. *)
val install : Vfs.t -> server

(** Fragment: wake a flagged waiter ([prefix] keeps labels unique). *)
val wake : prefix:string -> flag:int -> hcall:int -> Quamachine.Insn.insn list

(** Fragment: set the waiting flag under raised IPL, re-check the
    queue, and block — the lost-wakeup-safe sleep. *)
val guarded_block :
  Kernel.t ->
  Kqueue.t ->
  flag:int ->
  wq:Kernel.waitq ->
  retry:string ->
  prefix:string ->
  Quamachine.Insn.insn list
