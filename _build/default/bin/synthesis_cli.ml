(* synthesis-cli: poke at a booted Synthesis kernel from the command
   line — list and disassemble synthesized routines, show the code the
   kernel generates for an `open`, run a demo workload with the
   monitor's counters, and print the boot inventory. *)

open Quamachine
open Synthesis
module I = Insn

(* A fully-populated kernel: all servers plus one opened file and one
   opened tty so the registry shows specialized routines. *)
let booted_with_opens () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Boot.kernel in
  let env = se.Repro_harness.Harness.s_env in
  let program =
    [
      I.Move (I.Imm env.Repro_harness.Programs.e_name_file, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Imm env.Repro_harness.Programs.e_name_tty, I.Reg I.r1);
      I.Trap 3;
      I.Trap 0;
    ]
  in
  ignore (Repro_harness.Harness.synthesis_run se ~program);
  k

let cmd_registry () =
  let k = booted_with_opens () in
  Fmt.pr "synthesized/installed kernel routines (entry, length, name):@.";
  Inspect.pp_registry k Fmt.stdout ();
  Fmt.pr "@.%d routines, %d instructions total@."
    (List.length (Kernel.registry k))
    (Kernel.synthesized_insns k)

let cmd_disasm pattern =
  let k = booted_with_opens () in
  match Inspect.grep k pattern with
  | [] -> Fmt.pr "no routine matching %S@." pattern
  | matches ->
    List.iter (fun (name, _, _) -> Inspect.disassemble_routine k Fmt.stdout name) matches

let cmd_switch_code () =
  let k = booted_with_opens () in
  Fmt.pr
    "The executable ready queue: each thread's sw_out ends in a jmp@.\
     patched to the next thread's sw_in — this is the dispatcher.@.@.";
  (match Inspect.grep k "/sw_out" with
  | (name, _, _) :: _ -> Inspect.disassemble_routine k Fmt.stdout name
  | [] -> ());
  match Inspect.grep k "/sw_in" with
  | (name, _, _) :: _ -> Inspect.disassemble_routine k Fmt.stdout name
  | [] -> ()

let cmd_profile () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Boot.kernel in
  let m = k.Kernel.machine in
  Machine.profile_enable m true;
  let env = se.Repro_harness.Harness.s_env in
  let program = Repro_harness.Programs.pipe_rw env ~chunk:64 ~iters:200 in
  ignore (Repro_harness.Harness.synthesis_run se ~program);
  Fmt.pr "cycle profile of 200 x 64-word pipe write+read, by routine:@.";
  Inspect.pp_profile k Fmt.stdout ~top:12

let cmd_demo () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Boot.kernel in
  let m = k.Kernel.machine in
  Machine.trace_enable m true;
  let env = se.Repro_harness.Harness.s_env in
  let program = Repro_harness.Programs.pipe_rw env ~chunk:64 ~iters:100 in
  let secs = Repro_harness.Harness.synthesis_run se ~program in
  Fmt.pr "ran 100 x 64-word pipe write+read in %.2f ms simulated@." (secs *. 1000.0);
  Monitor.pp_counters m Fmt.stdout ();
  Fmt.pr "@.last instructions executed (kernel monitor trace):@.";
  Monitor.pp_trace m Fmt.stdout 12;
  Fmt.pr "@.threads at exit:@.";
  Inspect.pp_threads k Fmt.stdout ()

open Cmdliner

let pattern =
  Arg.(value & pos 0 string "open" & info [] ~docv:"PATTERN" ~doc:"registry name substring")

let cmds =
  [
    Cmd.v (Cmd.info "registry" ~doc:"List all synthesized kernel routines")
      Term.(const cmd_registry $ const ());
    Cmd.v
      (Cmd.info "disasm" ~doc:"Disassemble synthesized routines matching PATTERN")
      Term.(const cmd_disasm $ pattern);
    Cmd.v
      (Cmd.info "switch-code"
         ~doc:"Show a thread's synthesized context-switch code (Figure 3)")
      Term.(const cmd_switch_code $ const ());
    Cmd.v (Cmd.info "demo" ~doc:"Run a pipe workload and show monitor counters")
      Term.(const cmd_demo $ const ());
    Cmd.v
      (Cmd.info "profile" ~doc:"Cycle profile of a pipe workload, by kernel routine")
      Term.(const cmd_profile $ const ());
  ]

let () =
  exit
    (Cmd.eval
       (Cmd.group
          ~default:Term.(const cmd_demo $ const ())
          (Cmd.info "synthesis-cli" ~doc:"Inspect the Synthesis kernel reproduction")
          cmds))
