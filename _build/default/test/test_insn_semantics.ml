(* Table-driven instruction semantics: one focused case per
   instruction form and branch condition, run on the real engine. *)

open Quamachine
module I = Insn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine () = Machine.create ~mem_words:(1 lsl 16) Cost.sun3_emulation

(* Run [insns] with registers preset from [regs]; return the machine. *)
let run ?(regs = []) ?(mem = []) insns =
  let m = machine () in
  List.iter (fun (r, v) -> Machine.set_reg m r v) regs;
  List.iter (fun (a, v) -> Machine.poke m a v) mem;
  Machine.set_reg m I.sp 0x8000;
  let entry, _ = Asm.assemble m (insns @ [ I.Halt ]) in
  Machine.set_pc m entry;
  (match Machine.run ~max_insns:10_000 m with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  m

(* One ALU case: op, dst value, src value, expected result. *)
let alu_case name op dst src expected () =
  let m = run ~regs:[ (0, dst) ] [ I.Alu (op, I.Imm src, 0) ] in
  check_int name expected (Machine.get_reg m 0)

(* One branch case: set flags with a Cmp (src, dst), branch, record. *)
let branch_case name cond src dst taken () =
  let m =
    run
      [
        I.Move (I.Imm dst, I.Reg 0);
        I.Cmp (I.Imm src, I.Reg 0);
        I.B (cond, I.To_label "yes");
        I.Move (I.Imm 0, I.Abs 0x100);
        I.Halt;
        I.Label "yes";
        I.Move (I.Imm 1, I.Abs 0x100);
      ]
  in
  check_int name (if taken then 1 else 0) (Machine.peek m 0x100)

let alu_tests =
  [
    ("add", I.Add, 7, 5, 12);
    ("add wraps", I.Add, Word.mask, 1, 0);
    ("sub", I.Sub, 7, 5, 2);
    ("sub borrows", I.Sub, 0, 1, Word.mask);
    ("mul", I.Mul, 6, 7, 42);
    ("mul negative", I.Mul, Word.of_int (-3), 5, Word.of_int (-15));
    ("divu", I.Divu, 42, 5, 8);
    ("divs negative", I.Divs, Word.of_int (-42), 5, Word.of_int (-8));
    ("and", I.And, 0b1100, 0b1010, 0b1000);
    ("or", I.Or, 0b1100, 0b1010, 0b1110);
    ("xor", I.Xor, 0b1100, 0b1010, 0b0110);
    ("lsl", I.Lsl, 3, 4, 48);
    ("lsl out the top", I.Lsl, Word.mask, 4, Word.mask - 15);
    ("lsr", I.Lsr, 48, 4, 3);
    ("lsr of negative is logical", I.Lsr, Word.mask, 28, 15);
    ("asr keeps sign", I.Asr, Word.of_int (-64), 3, Word.of_int (-8));
  ]

let branch_tests =
  (* branch_case name cond src dst taken — flags from dst - src *)
  [
    ("eq taken", I.Eq, 5, 5, true);
    ("eq not taken", I.Eq, 5, 6, false);
    ("ne", I.Ne, 5, 6, true);
    ("lt signed", I.Lt, 1, Word.of_int (-1), true);
    ("lt not for unsigned-big", I.Lt, Word.of_int (-1), 1, false);
    ("ge equal", I.Ge, 5, 5, true);
    ("le less", I.Le, 9, 3, true);
    ("gt greater", I.Gt, 3, 9, true);
    ("gt not equal", I.Gt, 5, 5, false);
    ("hi unsigned", I.Hi, 1, Word.of_int (-1), true);
    ("ls unsigned", I.Ls, Word.of_int (-1), 1, true);
    ("cs borrow", I.Cs, 6, 5, true);
    ("cc no borrow", I.Cc, 5, 6, true);
    ("mi negative", I.Mi, 1, 0, true);
    ("pl positive", I.Pl, 0, 1, true);
  ]

(* ------------------------------------------------------------------ *)
(* Odd corners *)

let test_lea () =
  let m = run ~regs:[ (2, 0x300) ] [ I.Lea (I.Idx (2, 5), 0) ] in
  check_int "lea computes, does not load" 0x305 (Machine.get_reg m 0)

let test_alu_mem () =
  let m = run ~mem:[ (0x200, 40) ] [ I.Alu_mem (I.Add, I.Imm 2, I.Abs 0x200) ] in
  check_int "read-modify-write" 42 (Machine.peek m 0x200)

let test_neg_not () =
  let m = run ~regs:[ (0, 5); (1, 5) ] [ I.Neg 0; I.Not 1 ] in
  check_int "neg" (Word.of_int (-5)) (Machine.get_reg m 0);
  check_int "not" (Word.mask - 5) (Machine.get_reg m 1)

let test_push_pop_memory_operand () =
  let m =
    run ~mem:[ (0x200, 123) ]
      [ I.Push (I.Abs 0x200); I.Pop 0 ]
  in
  check_int "push from memory" 123 (Machine.get_reg m 0);
  check_int "stack balanced" 0x8000 (Machine.get_reg m I.sp)

let test_predec_postinc_pair () =
  (* a push/pop built from raw addressing modes *)
  let m =
    run ~regs:[ (2, 0x400) ]
      [
        I.Move (I.Imm 9, I.Pre_dec 2); (* [0x3FF] = 9, r2 = 0x3FF *)
        I.Move (I.Post_inc 2, I.Reg 0); (* r0 = 9, r2 = 0x400 *)
      ]
  in
  check_int "value round-trips" 9 (Machine.get_reg m 0);
  check_int "pointer restored" 0x400 (Machine.get_reg m 2)

let test_dbra_zero_iterations () =
  (* entering with the counter at 0: body should run exactly once *)
  let m =
    run
      [
        I.Move (I.Imm 0, I.Reg 1);
        I.Move (I.Imm 0, I.Reg 0);
        I.Label "loop";
        I.Alu (I.Add, I.Imm 1, 0);
        I.Dbra (1, I.To_label "loop");
      ]
  in
  check_int "one pass then fall through" 1 (Machine.get_reg m 0)

let test_move_sets_nz () =
  let m =
    run
      [
        I.Move (I.Imm 0, I.Reg 0);
        I.B (I.Eq, I.To_label "z");
        I.Move (I.Imm 0, I.Abs 0x100);
        I.Halt;
        I.Label "z";
        I.Move (I.Imm (-1), I.Reg 0);
        I.B (I.Mi, I.To_label "n");
        I.Move (I.Imm 0, I.Abs 0x100);
        I.Halt;
        I.Label "n";
        I.Move (I.Imm 1, I.Abs 0x100);
      ]
  in
  check_int "move sets Z then N" 1 (Machine.peek m 0x100)

let test_tst_memory () =
  let m =
    run ~mem:[ (0x200, 0) ]
      [
        I.Tst (I.Abs 0x200);
        I.B (I.Eq, I.To_label "z");
        I.Move (I.Imm 0, I.Abs 0x100);
        I.Halt;
        I.Label "z";
        I.Move (I.Imm 1, I.Abs 0x100);
      ]
  in
  check_int "tst reads memory" 1 (Machine.peek m 0x100)

let test_jmp_indirect_register () =
  let m = machine () in
  let target, _ = Asm.assemble m [ I.Move (I.Imm 5, I.Abs 0x100); I.Halt ] in
  let entry, _ =
    Asm.assemble m [ I.Move (I.Imm target, I.Reg 3); I.Jmp (I.To_reg 3) ]
  in
  Machine.set_pc m entry;
  ignore (Machine.run ~max_insns:100 m);
  check_int "jmp through register" 5 (Machine.peek m 0x100)

let test_fp_ops () =
  let m =
    run
      [
        I.Fmove_imm (2.5, 0);
        I.Fmove_imm (4.0, 1);
        I.Fop (I.Fmul, 0, 1); (* f1 = 10.0 *)
        I.Fmove (1, 2);
        I.Fop (I.Fdiv, 0, 2); (* f2 = 4.0 *)
        I.Fop (I.Fsub, 0, 2); (* f2 = 1.5 *)
      ]
  in
  check_bool "fmul" true (Machine.get_freg m 1 = 10.0);
  check_bool "fdiv/fsub" true (Machine.get_freg m 2 = 1.5)

let test_fp_disabled_traps () =
  let m = machine () in
  let handler, _ = Asm.assemble m [ I.Move (I.Imm 1, I.Abs 0x100); I.Halt ] in
  Machine.poke m I.Vector.fp_unavailable handler;
  let entry, _ = Asm.assemble m [ I.Fmove_imm (1.0, 0); I.Halt ] in
  Machine.set_fp_enabled m false;
  Machine.set_reg m I.sp 0x8000;
  Machine.set_pc m entry;
  ignore (Machine.run ~max_insns:100 m);
  check_int "fp trap taken" 1 (Machine.peek m 0x100)

let test_trap_out_of_range_hcall () =
  let m = machine () in
  let handler, _ = Asm.assemble m [ I.Move (I.Imm 1, I.Abs 0x100); I.Halt ] in
  Machine.poke m I.Vector.illegal handler;
  let entry, _ = Asm.assemble m [ I.Hcall 9999; I.Halt ] in
  Machine.set_reg m I.sp 0x8000;
  Machine.set_pc m entry;
  ignore (Machine.run ~max_insns:100 m);
  check_int "unregistered hcall = illegal" 1 (Machine.peek m 0x100)

let () =
  Alcotest.run "insn-semantics"
    [
      ( "alu",
        List.map
          (fun (name, op, dst, src, expected) ->
            Alcotest.test_case name `Quick (alu_case name op dst src expected))
          alu_tests );
      ( "branches",
        List.map
          (fun (name, cond, src, dst, taken) ->
            Alcotest.test_case name `Quick (branch_case name cond src dst taken))
          branch_tests );
      ( "corners",
        [
          Alcotest.test_case "lea" `Quick test_lea;
          Alcotest.test_case "alu_mem rmw" `Quick test_alu_mem;
          Alcotest.test_case "neg/not" `Quick test_neg_not;
          Alcotest.test_case "push/pop memory operand" `Quick
            test_push_pop_memory_operand;
          Alcotest.test_case "predec/postinc pair" `Quick test_predec_postinc_pair;
          Alcotest.test_case "dbra from zero" `Quick test_dbra_zero_iterations;
          Alcotest.test_case "move sets N/Z" `Quick test_move_sets_nz;
          Alcotest.test_case "tst memory" `Quick test_tst_memory;
          Alcotest.test_case "jmp via register" `Quick test_jmp_indirect_register;
          Alcotest.test_case "fp arithmetic" `Quick test_fp_ops;
          Alcotest.test_case "fp disabled traps" `Quick test_fp_disabled_traps;
          Alcotest.test_case "bad hcall is illegal" `Quick test_trap_out_of_range_hcall;
        ] );
    ]
