test/test_insn_semantics.ml: Alcotest Asm Cost Insn List Machine Quamachine Word
