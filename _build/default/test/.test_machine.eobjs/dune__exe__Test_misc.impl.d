test/test_misc.ml: Alcotest Asm Boot Buffer Cost Format Insn Inspect Kernel Layout List Machine Monitor Oq Quamachine Scheduler String Synthesis Template Thread
