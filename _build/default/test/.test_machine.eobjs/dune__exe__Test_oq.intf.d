test/test_oq.mli:
