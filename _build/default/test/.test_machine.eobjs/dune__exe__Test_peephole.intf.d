test/test_peephole.mli:
