test/test_compare.ml: Alcotest Baseline Fmt Insn List Machine Quamachine Repro_harness Synthesis Unix_emulator Word
