test/test_synthesis.mli:
