test/test_kalloc.ml: Alcotest Cost Kalloc List Machine Quamachine Synthesis
