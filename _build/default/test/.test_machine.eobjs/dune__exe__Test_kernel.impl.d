test/test_kernel.ml: Alcotest Array Asm Boot Char Fs Insn Kalloc Kernel Kpipe Layout Machine Quamachine Ready_queue String Synthesis Thread Word
