test/test_compare.mli:
