test/test_kalloc.mli:
