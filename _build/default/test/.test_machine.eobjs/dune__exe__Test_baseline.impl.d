test/test_baseline.ml: Alcotest Array Baseline Char Devices Insn List Machine Quamachine String Unix_emulator Word
