test/test_disk.ml: Alcotest Array Asm Boot Char Devices Dfs Disk_server Dump Fmt Insn Kalloc Kernel Layout List Machine Quamachine String Synthesis Thread
