test/test_machine.ml: Alcotest Asm Char Cost Devices Insn List Machine Mmio_map QCheck QCheck_alcotest Quamachine Word
