test/test_insn_semantics.mli:
