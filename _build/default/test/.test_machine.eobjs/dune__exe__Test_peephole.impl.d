test/test_peephole.ml: Alcotest Asm Cost Fmt Insn List Machine Peephole Printf QCheck QCheck_alcotest Quamachine Synthesis
