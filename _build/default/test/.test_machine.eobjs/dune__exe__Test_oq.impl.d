test/test_oq.ml: Alcotest Array Atomic Domain Hashtbl List Oq Printf QCheck QCheck_alcotest Queue String
