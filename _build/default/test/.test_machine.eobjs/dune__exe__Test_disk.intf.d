test/test_disk.mli:
