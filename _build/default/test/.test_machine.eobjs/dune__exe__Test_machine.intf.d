test/test_machine.mli:
