(* Machine substrate tests: instruction semantics, flags, assembler,
   interrupts, traps, protection, devices, cost accounting. *)

open Quamachine
module I = Insn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine () = Machine.create ~mem_words:(1 lsl 16) Cost.sun3_emulation

(* Run a code fragment until Halt; returns the machine. *)
let run_fragment ?(setup = fun _ -> ()) insns =
  let m = machine () in
  let entry, _ = Asm.assemble m insns in
  Machine.set_pc m entry;
  Machine.set_reg m I.sp 0x8000;
  setup m;
  (match Machine.run ~max_insns:1_000_000 m with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "fragment did not halt");
  m

(* ------------------------------------------------------------------ *)

let test_move_alu () =
  let m =
    run_fragment
      [
        I.Move (I.Imm 7, I.Reg I.r0);
        I.Move (I.Imm 5, I.Reg I.r1);
        I.Alu (I.Add, I.Reg I.r0, I.r1); (* r1 = 12 *)
        I.Alu (I.Mul, I.Imm 3, I.r1); (* r1 = 36 *)
        I.Alu (I.Sub, I.Imm 6, I.r1); (* r1 = 30 *)
        I.Alu (I.Divu, I.Imm 4, I.r1); (* r1 = 7 *)
        I.Move (I.Reg I.r1, I.Abs 0x100);
        I.Halt;
      ]
  in
  check_int "alu chain" 7 (Machine.peek m 0x100)

let test_addressing_modes () =
  let m =
    run_fragment
      [
        I.Move (I.Imm 0x200, I.Reg I.r2);
        I.Move (I.Imm 11, I.Ind I.r2); (* [0x200] = 11 *)
        I.Move (I.Imm 22, I.Idx (I.r2, 1)); (* [0x201] = 22 *)
        I.Move (I.Imm 33, I.Post_inc I.r2); (* overwrites [0x200], r2 = 0x201 *)
        I.Move (I.Imm 44, I.Post_inc I.r2); (* [0x201] = 44, r2 = 0x202 *)
        I.Move (I.Imm 55, I.Pre_dec I.r2); (* r2 = 0x201, [0x201] = 55 *)
        I.Move (I.Reg I.r2, I.Abs 0x300);
        I.Halt;
      ]
  in
  check_int "ind write" 33 (Machine.peek m 0x200);
  check_int "predec write" 55 (Machine.peek m 0x201);
  check_int "postinc/predec pointer" 0x201 (Machine.peek m 0x300)

let test_branches_signed_unsigned () =
  (* -1 compared with 1: signed lt, unsigned hi *)
  let m =
    run_fragment
      [
        I.Move (I.Imm (-1), I.Reg I.r0);
        I.Cmp (I.Imm 1, I.Reg I.r0); (* flags from -1 - 1 *)
        I.B (I.Lt, I.To_label "signed_lt");
        I.Move (I.Imm 0, I.Abs 0x100);
        I.B (I.Always, I.To_label "next");
        I.Label "signed_lt";
        I.Move (I.Imm 1, I.Abs 0x100);
        I.Label "next";
        I.Cmp (I.Imm 1, I.Reg I.r0);
        I.B (I.Hi, I.To_label "unsigned_hi");
        I.Move (I.Imm 0, I.Abs 0x101);
        I.Halt;
        I.Label "unsigned_hi";
        I.Move (I.Imm 1, I.Abs 0x101);
        I.Halt;
      ]
  in
  check_int "signed lt taken" 1 (Machine.peek m 0x100);
  check_int "unsigned hi taken" 1 (Machine.peek m 0x101)

let test_dbra_loop () =
  let m =
    run_fragment
      [
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Move (I.Imm 9, I.Reg I.r1); (* 10 iterations *)
        I.Label "loop";
        I.Alu (I.Add, I.Imm 1, I.r0);
        I.Dbra (I.r1, I.To_label "loop");
        I.Move (I.Reg I.r0, I.Abs 0x100);
        I.Halt;
      ]
  in
  check_int "dbra count" 10 (Machine.peek m 0x100)

let test_jsr_rts () =
  let m =
    run_fragment
      [
        I.Jsr (I.To_label "sub");
        I.Move (I.Reg I.r0, I.Abs 0x100);
        I.Halt;
        I.Label "sub";
        I.Move (I.Imm 99, I.Reg I.r0);
        I.Rts;
      ]
  in
  check_int "jsr/rts" 99 (Machine.peek m 0x100)

let test_cas_success_failure () =
  let m =
    run_fragment
      [
        I.Move (I.Imm 5, I.Abs 0x100);
        I.Move (I.Imm 5, I.Reg I.r0); (* compare value (matches) *)
        I.Move (I.Imm 9, I.Reg I.r1); (* update value *)
        I.Cas (I.r0, I.r1, I.Abs 0x100);
        I.B (I.Eq, I.To_label "ok");
        I.Move (I.Imm 0, I.Abs 0x101);
        I.B (I.Always, I.To_label "second");
        I.Label "ok";
        I.Move (I.Imm 1, I.Abs 0x101);
        I.Label "second";
        (* now CAS with stale compare: fails and loads r0 with actual *)
        I.Move (I.Imm 5, I.Reg I.r0);
        I.Cas (I.r0, I.r1, I.Abs 0x100);
        I.B (I.Ne, I.To_label "failed");
        I.Move (I.Imm 1, I.Abs 0x102);
        I.Halt;
        I.Label "failed";
        I.Move (I.Reg I.r0, I.Abs 0x102); (* r0 = 9 (refetched) *)
        I.Halt;
      ]
  in
  check_int "cas stored" 9 (Machine.peek m 0x100);
  check_int "first cas succeeded" 1 (Machine.peek m 0x101);
  check_int "failed cas refetches" 9 (Machine.peek m 0x102)

let test_movem_round_trip () =
  let m =
    run_fragment
      [
        I.Move (I.Imm 0x4000, I.Reg I.sp);
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Move (I.Imm 2, I.Reg I.r1);
        I.Move (I.Imm 3, I.Reg I.r2);
        I.Movem_save ([ 0; 1; 2 ], I.sp);
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Move (I.Imm 0, I.Reg I.r1);
        I.Move (I.Imm 0, I.Reg I.r2);
        I.Movem_load (I.sp, [ 0; 1; 2 ]);
        I.Move (I.Reg I.r0, I.Abs 0x100);
        I.Move (I.Reg I.r1, I.Abs 0x101);
        I.Move (I.Reg I.r2, I.Abs 0x102);
        I.Move (I.Reg I.sp, I.Abs 0x103);
        I.Halt;
      ]
  in
  check_int "r0 restored" 1 (Machine.peek m 0x100);
  check_int "r1 restored" 2 (Machine.peek m 0x101);
  check_int "r2 restored" 3 (Machine.peek m 0x102);
  check_int "sp balanced" 0x4000 (Machine.peek m 0x103)

let test_trap_rte () =
  (* vector table at 0, VBR = 0 *)
  let m = machine () in
  let handler, _ =
    Asm.assemble m [ I.Move (I.Imm 77, I.Reg I.r0); I.Rte ]
  in
  let main, _ =
    Asm.assemble m
      [ I.Move (I.Imm 0, I.Reg I.r0); I.Trap 3; I.Move (I.Reg I.r0, I.Abs 0x100); I.Halt ]
  in
  Machine.poke m (I.Vector.trap 3) handler;
  Machine.set_pc m main;
  Machine.set_reg m I.sp 0x8000;
  ignore (Machine.run ~max_insns:1000 m);
  check_int "trap handler ran" 77 (Machine.peek m 0x100)

let test_user_mode_protection () =
  (* User code touching memory outside its map takes a bus error. *)
  let m = machine () in
  let fault_flag = 0x900 in
  let handler, _ =
    Asm.assemble m
      [ I.Move (I.Imm 1, I.Abs fault_flag); I.Halt ]
  in
  let user, _ =
    Asm.assemble m [ I.Move (I.Imm 5, I.Abs 0x5000); I.Halt ] (* illegal *)
  in
  Machine.poke m I.Vector.bus_error handler;
  Machine.define_map m ~id:1 [ (0x4000, 16) ];
  Machine.set_map m 1;
  Machine.set_reg m I.sp 0x8000;
  Machine.set_pc m user;
  Machine.set_supervisor m false;
  ignore (Machine.run ~max_insns:1000 m);
  check_int "bus error handler ran" 1 (Machine.peek m fault_flag);
  check_int "fault address recorded" 0x5000 (Machine.last_fault_addr m)

let test_interrupt_priority () =
  (* A level-2 interrupt is deferred while IPL = 3, delivered after
     IPL drops. *)
  let m = machine () in
  let got = 0x900 in
  let handler, _ = Asm.assemble m [ I.Move (I.Imm 1, I.Abs got); I.Rte ] in
  Machine.poke m (I.Vector.autovector 2) handler;
  let main, _ =
    Asm.assemble m
      [
        I.Set_ipl 3;
        I.Nop;
        I.Nop;
        I.Move (I.Abs got, I.Abs 0x901); (* should still be 0 *)
        I.Set_ipl 0;
        I.Nop;
        I.Nop;
        I.Move (I.Abs got, I.Abs 0x902); (* should be 1 *)
        I.Halt;
      ]
  in
  Machine.set_pc m main;
  Machine.set_reg m I.sp 0x8000;
  (* post the interrupt before running *)
  Machine.post_interrupt m ~level:2 ~vector:(I.Vector.autovector 2);
  ignore (Machine.run ~max_insns:1000 m);
  check_int "deferred while masked" 0 (Machine.peek m 0x901);
  check_int "delivered after unmask" 1 (Machine.peek m 0x902)

let test_timer_device () =
  let m = machine () in
  let got = 0x900 in
  let _timer = Devices.Timer.install m in
  let handler, _ = Asm.assemble m [ I.Move (I.Imm 1, I.Abs got); I.Rte ] in
  Machine.poke m Mmio_map.timer_vector handler;
  let main, _ =
    Asm.assemble m
      [
        I.Set_ipl 0;
        I.Move (I.Imm 50, I.Abs Mmio_map.timer_alarm); (* 50 us *)
        I.Move (I.Imm 20000, I.Reg I.r0);
        I.Label "spin";
        I.Tst (I.Abs got);
        I.B (I.Ne, I.To_label "done");
        I.Dbra (I.r0, I.To_label "spin");
        I.Label "done";
        I.Halt;
      ]
  in
  Machine.set_supervisor m true;
  Machine.set_pc m main;
  Machine.set_reg m I.sp 0x8000;
  ignore (Machine.run ~max_insns:1_000_000 m);
  check_int "timer fired" 1 (Machine.peek m got);
  check_bool "fired near 50us" true (Machine.time_us m >= 50.0)

let test_disk_error_status () =
  let m = machine () in
  let disk = Devices.Disk.install ~blocks:8 m in
  ignore disk;
  let prog =
    [
      I.Move (I.Imm 99, I.Abs Mmio_map.disk_block); (* out of range *)
      I.Move (I.Imm 0x200, I.Abs Mmio_map.disk_buffer);
      I.Move (I.Imm 1, I.Abs Mmio_map.disk_command);
      I.Move (I.Abs Mmio_map.disk_status, I.Abs 0x100);
      (* bad command code on a valid block *)
      I.Move (I.Imm 3, I.Abs Mmio_map.disk_block);
      I.Move (I.Imm 7, I.Abs Mmio_map.disk_command);
      I.Move (I.Abs Mmio_map.disk_status, I.Abs 0x101);
      I.Halt;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  Machine.set_pc m entry;
  Machine.set_reg m I.sp 0x8000;
  ignore (Machine.run ~max_insns:1000 m);
  check_int "invalid block = error" 3 (Machine.peek m 0x100);
  check_int "invalid command = error" 3 (Machine.peek m 0x101)

let test_timer_cancel_and_remaining () =
  let m = machine () in
  let _t = Devices.Timer.install m in
  let prog =
    [
      I.Move (I.Imm 500, I.Abs Mmio_map.timer_alarm);
      I.Move (I.Abs Mmio_map.timer_alarm, I.Abs 0x100); (* remaining ~500 *)
      I.Move (I.Imm 0, I.Abs Mmio_map.timer_alarm); (* cancel *)
      I.Move (I.Abs Mmio_map.timer_alarm, I.Abs 0x101); (* 0 when idle *)
      I.Halt;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  Machine.set_pc m entry;
  Machine.set_reg m I.sp 0x8000;
  ignore (Machine.run ~max_insns:1000 m);
  check_bool "remaining close to the interval" true
    (Machine.peek m 0x100 >= 495 && Machine.peek m 0x100 <= 500);
  check_int "cancelled reads zero" 0 (Machine.peek m 0x101)

let test_tty_output_collects () =
  let m = machine () in
  let tty = Devices.Tty.install m in
  let prog =
    [
      I.Move (I.Imm (Char.code 'h'), I.Abs Mmio_map.tty_data_out);
      I.Move (I.Imm (Char.code 'i'), I.Abs Mmio_map.tty_data_out);
      I.Halt;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  Machine.set_pc m entry;
  Machine.set_reg m I.sp 0x8000;
  ignore (Machine.run ~max_insns:100 m);
  Alcotest.(check string) "collected" "hi" (Devices.Tty.output tty);
  Devices.Tty.clear_output tty;
  Alcotest.(check string) "cleared" "" (Devices.Tty.output tty)

let test_trace_ring_wraps () =
  let m = machine () in
  Machine.trace_enable m true;
  let prog =
    [ I.Move (I.Imm 9999, I.Reg I.r0); I.Label "l"; I.Dbra (I.r0, I.To_label "l"); I.Halt ]
  in
  let entry, _ = Asm.assemble m prog in
  Machine.set_pc m entry;
  ignore (Machine.run ~max_insns:100_000 m);
  let w = Machine.trace_window m 6 in
  check_int "window length" 6 (List.length w);
  (* the tail of the trace is the loop body then Halt *)
  check_bool "trace ends at the halt" true
    (match List.rev w with halt_pc :: _ -> halt_pc = entry + 2 | [] -> false)

let test_operand_refs () =
  check_int "imm" 0 (Cost.operand_refs (I.Imm 5));
  check_int "reg" 0 (Cost.operand_refs (I.Reg 3));
  check_int "ind" 1 (Cost.operand_refs (I.Ind 3));
  check_int "abs" 1 (Cost.operand_refs (I.Abs 9));
  check_int "postinc" 1 (Cost.operand_refs (I.Post_inc 3))

let test_cost_accounting () =
  let m = machine () in
  let entry, _ = Asm.assemble m [ I.Move (I.Imm 1, I.Abs 0x100); I.Halt ] in
  Machine.set_pc m entry;
  let s0 = Machine.snapshot m in
  ignore (Machine.run ~max_insns:10 m);
  let d = Machine.delta m s0 in
  check_int "two instructions" 2 d.Machine.s_insns;
  check_int "one memory ref" 1 d.Machine.s_refs;
  (* Move base 2 + ref (3+1 ws) = 6 cycles *)
  check_int "cycles" 6 d.Machine.s_cycles

let test_asm_duplicate_label () =
  let m = machine () in
  Alcotest.check_raises "duplicate label" (Asm.Duplicate_label "x") (fun () ->
      ignore (Asm.assemble m [ I.Label "x"; I.Nop; I.Label "x"; I.Halt ]))

let test_asm_undefined_label () =
  let m = machine () in
  Alcotest.check_raises "undefined label" (Asm.Undefined_label "nowhere") (fun () ->
      ignore (Asm.assemble m [ I.B (I.Always, I.To_label "nowhere"); I.Halt ]))

(* Nested interrupts: a level-6 interrupt preempts a running level-4
   handler; both complete, innermost first (§5.3's recursive
   interrupt scenario). *)
let test_nested_interrupts () =
  let m = machine () in
  let log = 0x900 in
  (* handlers append their id to a small log via a shared cursor *)
  let append id =
    [
      I.Push (I.Reg I.r4);
      I.Move (I.Abs (log + 7), I.Reg I.r4); (* cursor *)
      I.Alu (I.Add, I.Imm log, I.r4);
      I.Move (I.Imm id, I.Ind I.r4);
      I.Alu_mem (I.Add, I.Imm 1, I.Abs (log + 7));
      I.Pop I.r4;
    ]
  in
  let h6, _ = Asm.assemble m (append 6 @ [ I.Rte ]) in
  (* the level-4 handler posts the level-6 interrupt mid-flight, logs
     entry and exit around it *)
  let post6 = Machine.register_hcall m (fun m ->
      Machine.post_interrupt m ~level:6 ~vector:(I.Vector.autovector 6)) in
  let h4, _ =
    Asm.assemble m
      (append 4 @ [ I.Hcall post6; I.Nop; I.Nop ] @ append 44 @ [ I.Rte ])
  in
  Machine.poke m (I.Vector.autovector 4) h4;
  Machine.poke m (I.Vector.autovector 6) h6;
  let main, _ =
    Asm.assemble m
      [
        I.Set_ipl 0;
        I.Nop;
        I.Nop;
        I.Nop;
        I.Nop;
        I.Nop;
        I.Nop;
        I.Nop;
        I.Nop;
        I.Halt;
      ]
  in
  Machine.set_pc m main;
  Machine.set_reg m I.sp 0x8000;
  Machine.post_interrupt m ~level:4 ~vector:(I.Vector.autovector 4);
  ignore (Machine.run ~max_insns:10_000 m);
  check_int "level 4 entered" 4 (Machine.peek m log);
  check_int "level 6 preempted it" 6 (Machine.peek m (log + 1));
  check_int "level 4 resumed and finished" 44 (Machine.peek m (log + 2))

(* Stop_wait with no device event pending deadlocks loudly. *)
let test_stop_wait_deadlock () =
  let m = machine () in
  let entry, _ = Asm.assemble m [ I.Stop_wait; I.Halt ] in
  Machine.set_pc m entry;
  Machine.set_reg m I.sp 0x8000;
  Alcotest.check_raises "deadlock detected" Machine.Deadlock (fun () ->
      ignore (Machine.run ~max_insns:100 m))

(* FP register save/restore through memory round-trips exactly. *)
let test_fmovem_round_trip () =
  let m = machine () in
  let entry, _ =
    Asm.assemble m
      [
        I.Move (I.Imm 0x4000, I.Reg I.sp);
        I.Fmove_imm (3.25, 0);
        I.Fmove_imm (-7.5, 1);
        I.Fmove_imm (1e300, 7);
        I.Fmovem_save I.sp;
        I.Fmove_imm (0.0, 0);
        I.Fmove_imm (0.0, 1);
        I.Fmove_imm (0.0, 7);
        I.Fmovem_load I.sp;
        I.Halt;
      ]
  in
  Machine.set_pc m entry;
  ignore (Machine.run ~max_insns:100 m);
  Alcotest.(check (float 0.0)) "f0" 3.25 (Machine.get_freg m 0);
  Alcotest.(check (float 0.0)) "f1" (-7.5) (Machine.get_freg m 1);
  Alcotest.(check (float 0.0)) "f7" 1e300 (Machine.get_freg m 7);
  check_int "sp balanced" 0x4000 (Machine.get_reg m I.sp)

(* Property: the machine's ALU agrees with the Word reference on
   random register operands, including carry/overflow flags. *)
let prop_alu_reference =
  let gen =
    QCheck.Gen.(
      triple
        (oneofl
           [ I.Add; I.Sub; I.Mul; I.And; I.Or; I.Xor; I.Lsl; I.Lsr; I.Asr; I.Divu ])
        (map Word.of_int (int_bound 0x3FFFFFFF))
        (map Word.of_int (frequency [ (3, int_bound 0xFFFF); (1, int_bound 0x3FFFFFFF); (1, return 0) ])))
  in
  QCheck.Test.make ~name:"alu agrees with the word reference" ~count:2000
    (QCheck.make gen) (fun (op, b, a) ->
      (* machine computes rd := rd op src with rd = b, src = a *)
      let m = machine () in
      Machine.set_reg m 0 b;
      Machine.set_reg m 1 a;
      let entry, _ =
        Asm.assemble m [ I.Alu (op, I.Reg 1, 0); I.Halt ]
      in
      Machine.set_pc m entry;
      Machine.set_reg m I.sp 0x8000;
      (* divide by zero faults; vector 5 is 0 -> code 0 -> Halt *)
      ignore (Machine.run ~max_insns:10 m);
      let got = Machine.get_reg m 0 in
      let expected =
        match op with
        | I.Add -> Word.add b a
        | I.Sub -> Word.sub b a
        | I.Mul -> Word.mul b a
        | I.And -> Word.logand b a
        | I.Or -> Word.logor b a
        | I.Xor -> Word.logxor b a
        | I.Lsl -> Word.shift_left b a
        | I.Lsr -> Word.shift_right_logical b a
        | I.Asr -> Word.shift_right_arith b a
        | I.Divu -> if a = 0 then b (* faulted before writing *) else Word.divu b a
        | _ -> assert false
      in
      got = expected)

(* Property: 32-bit add/sub round-trip and flag consistency. *)
let prop_word_roundtrip =
  QCheck.Test.make ~name:"word add/sub round-trip" ~count:2000
    QCheck.(pair (map Word.of_int int) (map Word.of_int int))
    (fun (a, b) ->
      let sum = Word.add a b in
      Word.sub sum b = a
      && Word.add (Word.neg a) a = 0
      &&
      let _, borrow, _ = Word.sub_full a b in
      borrow = (Word.compare_unsigned a b < 0))

let qcheck = List.map QCheck_alcotest.to_alcotest

let test_word_ops () =
  check_int "mask add wraps" 0 (Word.add Word.mask 1);
  check_int "signed -1" (-1) (Word.signed Word.mask);
  check_int "neg" Word.mask (Word.neg 1);
  check_bool "sub borrow" true (match Word.sub_full 0 1 with _, b, _ -> b);
  check_int "asr sign extends" Word.mask (Word.shift_right_arith Word.mask 4);
  check_int "lsr no sign" 0x0FFF_FFFF (Word.shift_right_logical Word.mask 4)

let () =
  Alcotest.run "machine"
    [
      ( "insn",
        [
          Alcotest.test_case "move/alu" `Quick test_move_alu;
          Alcotest.test_case "addressing modes" `Quick test_addressing_modes;
          Alcotest.test_case "signed/unsigned branches" `Quick test_branches_signed_unsigned;
          Alcotest.test_case "dbra loop" `Quick test_dbra_loop;
          Alcotest.test_case "jsr/rts" `Quick test_jsr_rts;
          Alcotest.test_case "cas semantics" `Quick test_cas_success_failure;
          Alcotest.test_case "movem round trip" `Quick test_movem_round_trip;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "trap and rte" `Quick test_trap_rte;
          Alcotest.test_case "user mode protection" `Quick test_user_mode_protection;
          Alcotest.test_case "interrupt priority" `Quick test_interrupt_priority;
        ] );
      ( "devices",
        [
          Alcotest.test_case "one-shot timer" `Quick test_timer_device;
          Alcotest.test_case "disk error status" `Quick test_disk_error_status;
          Alcotest.test_case "timer cancel/remaining" `Quick
            test_timer_cancel_and_remaining;
          Alcotest.test_case "tty output buffer" `Quick test_tty_output_collects;
          Alcotest.test_case "trace ring wraps" `Quick test_trace_ring_wraps;
          Alcotest.test_case "operand ref counts" `Quick test_operand_refs;
        ] );
      ( "cost",
        [ Alcotest.test_case "cycle accounting" `Quick test_cost_accounting ] );
      ( "asm",
        [
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
        ] );
      ( "nesting",
        [
          Alcotest.test_case "nested interrupt levels" `Quick test_nested_interrupts;
          Alcotest.test_case "stop_wait deadlock detection" `Quick
            test_stop_wait_deadlock;
          Alcotest.test_case "fmovem round trip" `Quick test_fmovem_round_trip;
        ] );
      ("word", [ Alcotest.test_case "word ops" `Quick test_word_ops ]);
      ("properties", qcheck [ prop_alu_reference; prop_word_roundtrip ]);
    ]
