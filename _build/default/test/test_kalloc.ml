(* Kernel allocator tests: fast-fit reuse, coalescing, exhaustion. *)

open Quamachine
open Synthesis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine () = Machine.create ~mem_words:(1 lsl 16) Cost.sun3_emulation

let test_alloc_free_reuse () =
  let m = machine () in
  let a = Kalloc.create m ~base:0x1000 ~limit:0x8000 in
  let b1 = Kalloc.alloc a 16 in
  Kalloc.free a b1;
  let b2 = Kalloc.alloc a 16 in
  check_int "freed block reused (fast fit)" b1 b2

let test_distinct_blocks () =
  let m = machine () in
  let a = Kalloc.create m ~base:0x1000 ~limit:0x8000 in
  let blocks = List.init 20 (fun _ -> Kalloc.alloc a 32) in
  let sorted = List.sort_uniq compare blocks in
  check_int "all blocks distinct" 20 (List.length sorted);
  (* no overlap: gaps of at least the class size *)
  let rec gaps = function
    | a :: (b :: _ as rest) ->
      check_bool "no overlap" true (b - a >= 32);
      gaps rest
    | _ -> ()
  in
  gaps sorted

let test_rounding_to_class () =
  let m = machine () in
  let a = Kalloc.create m ~base:0x1000 ~limit:0x8000 in
  let b = Kalloc.alloc a 17 in
  (* rounded to the 32-word class *)
  check_int "class rounding recorded" 32
    (match Kalloc.block_len a b with Some l -> l | None -> -1)

let test_live_accounting () =
  let m = machine () in
  let a = Kalloc.create m ~base:0x1000 ~limit:0x8000 in
  check_int "empty" 0 (Kalloc.live_words a);
  let b1 = Kalloc.alloc a 16 in
  let b2 = Kalloc.alloc a 64 in
  check_int "live counts classes" (16 + 64) (Kalloc.live_words a);
  Kalloc.free a b1;
  Kalloc.free a b2;
  check_int "back to zero" 0 (Kalloc.live_words a)

let test_out_of_memory () =
  let m = machine () in
  let a = Kalloc.create m ~base:0x1000 ~limit:0x1100 in
  (* 256 words total *)
  let _b = Kalloc.alloc a 128 in
  let _c = Kalloc.alloc a 64 in
  Alcotest.check_raises "exhausted" Kalloc.Out_of_memory (fun () ->
      ignore (Kalloc.alloc a 128))

let test_large_block_coalescing () =
  let m = machine () in
  let a = Kalloc.create m ~base:0x1000 ~limit:0x2000 in
  (* 4096 words; three large blocks fill most of it *)
  let b1 = Kalloc.alloc a 3000 in
  Alcotest.check_raises "full" Kalloc.Out_of_memory (fun () ->
      ignore (Kalloc.alloc a 3000));
  Kalloc.free a b1;
  (* after coalescing, the same large allocation must fit again *)
  let b2 = Kalloc.alloc a 3000 in
  check_int "coalesced region reusable" b1 b2

let test_double_free_rejected () =
  let m = machine () in
  let a = Kalloc.create m ~base:0x1000 ~limit:0x8000 in
  let b = Kalloc.alloc a 16 in
  Kalloc.free a b;
  Alcotest.check_raises "double free"
    (Invalid_argument "Kalloc.free: not an allocated block") (fun () ->
      Kalloc.free a b)

let test_zeroing () =
  let m = machine () in
  let a = Kalloc.create m ~base:0x1000 ~limit:0x8000 in
  let b1 = Kalloc.alloc a 16 in
  for i = 0 to 15 do
    Machine.poke m (b1 + i) 99
  done;
  Kalloc.free a b1;
  let b2 = Kalloc.alloc_zeroed a 16 in
  check_int "same block" b1 b2;
  for i = 0 to 15 do
    check_int "zeroed" 0 (Machine.peek m (b2 + i))
  done

let () =
  Alcotest.run "kalloc"
    [
      ( "fast-fit",
        [
          Alcotest.test_case "free then realloc reuses" `Quick test_alloc_free_reuse;
          Alcotest.test_case "blocks distinct and disjoint" `Quick test_distinct_blocks;
          Alcotest.test_case "size-class rounding" `Quick test_rounding_to_class;
          Alcotest.test_case "live accounting" `Quick test_live_accounting;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          Alcotest.test_case "coalescing" `Quick test_large_block_coalescing;
          Alcotest.test_case "double free rejected" `Quick test_double_free_rejected;
          Alcotest.test_case "alloc_zeroed zeroes" `Quick test_zeroing;
        ] );
    ]
