(* Baseline kernel unit tests: the SUNOS stand-in must be a correct
   (if slow) Unix for the programs Table 1 runs. *)

open Quamachine
module I = Insn
module U = Unix_emulator.Unix_abi

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let sys num = [ I.Move (I.Imm num, I.Reg I.r0); I.Trap U.trap ]

let poke_string bk addr s =
  String.iteri (fun i c -> Baseline.poke bk (addr + i) (Char.code c)) s;
  Baseline.poke bk (addr + String.length s) 0

let test_open_close_null () =
  let bk = Baseline.boot () in
  let name = 0x40000 in
  poke_string bk name "/dev/null";
  let out = 0x40100 in
  let prog =
    [ I.Move (I.Imm name, I.Reg I.r1) ]
    @ sys U.sys_open
    @ [ I.Move (I.Reg I.r0, I.Abs out); I.Move (I.Reg I.r0, I.Reg I.r1) ]
    @ sys U.sys_close
    @ [ I.Move (I.Reg I.r0, I.Abs (out + 1)) ]
    @ sys U.sys_exit
  in
  let entry = Baseline.load_program bk prog in
  ignore (Baseline.run ~max_insns:10_000_000 bk ~entry);
  let m = bk.Baseline.machine in
  check_int "open returned a descriptor" 0 (Machine.peek m out);
  check_int "close ok" 0 (Machine.peek m (out + 1))

let test_open_missing () =
  let bk = Baseline.boot () in
  let name = 0x40000 in
  poke_string bk name "/dev/none";
  let out = 0x40100 in
  let prog =
    [ I.Move (I.Imm name, I.Reg I.r1) ]
    @ sys U.sys_open
    @ [ I.Move (I.Reg I.r0, I.Abs out) ]
    @ sys U.sys_exit
  in
  let entry = Baseline.load_program bk prog in
  ignore (Baseline.run ~max_insns:10_000_000 bk ~entry);
  check_int "missing name = -1" (Word.of_int (-1))
    (Machine.peek bk.Baseline.machine out)

let test_file_roundtrip () =
  let content = Array.init 40 (fun i -> 5000 + i) in
  let bk = Baseline.boot () in
  ignore (Baseline.create_file bk ~name:"/data/bench" ~content ());
  let name = 0x40000 and buf = 0x40200 and out = 0x40100 in
  poke_string bk name "/data/bench";
  let prog =
    [ I.Move (I.Imm name, I.Reg I.r1) ]
    @ sys U.sys_open
    @ [ I.Move (I.Reg I.r0, I.Reg I.r13) ]
    (* read 24 words *)
    @ [
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Move (I.Imm buf, I.Reg I.r2);
        I.Move (I.Imm 24, I.Reg I.r3);
      ]
    @ sys U.sys_read
    @ [ I.Move (I.Reg I.r0, I.Abs out) ]
    (* seek to 2, overwrite 3 words *)
    @ [ I.Move (I.Reg I.r13, I.Reg I.r1); I.Move (I.Imm 2, I.Reg I.r2) ]
    @ sys U.sys_lseek
    @ [
        I.Move (I.Imm 111, I.Abs (buf + 50));
        I.Move (I.Imm 222, I.Abs (buf + 51));
        I.Move (I.Imm 333, I.Abs (buf + 52));
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Move (I.Imm (buf + 50), I.Reg I.r2);
        I.Move (I.Imm 3, I.Reg I.r3);
      ]
    @ sys U.sys_write
    (* seek 0, read 6 back *)
    @ [ I.Move (I.Reg I.r13, I.Reg I.r1); I.Move (I.Imm 0, I.Reg I.r2) ]
    @ sys U.sys_lseek
    @ [
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Move (I.Imm (buf + 60), I.Reg I.r2);
        I.Move (I.Imm 6, I.Reg I.r3);
      ]
    @ sys U.sys_read
    @ sys U.sys_exit
  in
  let entry = Baseline.load_program bk prog in
  (match Baseline.run ~max_insns:50_000_000 bk ~entry with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "stuck");
  let m = bk.Baseline.machine in
  check_int "read count" 24 (Machine.peek m out);
  check_int "original data" 5000 (Machine.peek m buf);
  check_int "after write: [2]" 111 (Machine.peek m (buf + 62));
  check_int "after write: [4]" 333 (Machine.peek m (buf + 64));
  check_int "untouched: [5]" 5005 (Machine.peek m (buf + 65))

let test_tty_write () =
  let bk = Baseline.boot () in
  let name = 0x40000 and buf = 0x40200 in
  poke_string bk name "/dev/tty";
  poke_string bk buf "ok!";
  let prog =
    [ I.Move (I.Imm name, I.Reg I.r1) ]
    @ sys U.sys_open
    @ [
        I.Move (I.Reg I.r0, I.Reg I.r1);
        I.Move (I.Imm buf, I.Reg I.r2);
        I.Move (I.Imm 3, I.Reg I.r3);
      ]
    @ sys U.sys_write
    @ sys U.sys_exit
  in
  let entry = Baseline.load_program bk prog in
  ignore (Baseline.run ~max_insns:10_000_000 bk ~entry);
  check_str "characters reached the device" "ok!" (Devices.Tty.output bk.Baseline.tty)

let test_pipe_roundtrip () =
  let bk = Baseline.boot () in
  let buf = 0x40200 and out = 0x40100 in
  List.iteri (fun i v -> Baseline.poke bk (buf + i) v) [ 7; 8; 9 ];
  let prog =
    sys U.sys_pipe
    @ [ I.Move (I.Reg I.r0, I.Reg I.r13); I.Move (I.Reg I.r1, I.Reg I.r14) ]
    @ [
        I.Move (I.Reg I.r14, I.Reg I.r1);
        I.Move (I.Imm buf, I.Reg I.r2);
        I.Move (I.Imm 3, I.Reg I.r3);
      ]
    @ sys U.sys_write
    @ [
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Move (I.Imm (buf + 16), I.Reg I.r2);
        I.Move (I.Imm 3, I.Reg I.r3);
      ]
    @ sys U.sys_read
    @ [ I.Move (I.Reg I.r0, I.Abs out) ]
    @ sys U.sys_exit
  in
  let entry = Baseline.load_program bk prog in
  ignore (Baseline.run ~max_insns:10_000_000 bk ~entry);
  let m = bk.Baseline.machine in
  check_int "read back 3" 3 (Machine.peek m out);
  check_int "data intact" 8 (Machine.peek m (buf + 17))

let () =
  Alcotest.run "baseline"
    [
      ( "unix",
        [
          Alcotest.test_case "open/close /dev/null" `Quick test_open_close_null;
          Alcotest.test_case "open missing name" `Quick test_open_missing;
          Alcotest.test_case "file read/write/seek" `Quick test_file_roundtrip;
          Alcotest.test_case "tty write reaches device" `Quick test_tty_write;
          Alcotest.test_case "pipe roundtrip" `Quick test_pipe_roundtrip;
        ] );
    ]
