(* Peephole optimizer tests: targeted rewrites plus a semantic
   equivalence property — for random programs (including conditional
   branches), the optimized code must leave the machine in exactly the
   same state as the original, in no more cycles. *)

open Quamachine
open Synthesis
module I = Insn

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Targeted rewrites *)

let count = Asm.length

let test_drop_self_move () =
  let prog = [ I.Move (I.Reg 1, I.Reg 1); I.Move (I.Imm 5, I.Reg 0); I.Halt ] in
  check_int "self move dropped" 2 (count (Peephole.optimize prog))

let test_keep_self_move_when_flags_live () =
  (* the self move sets N/Z which the branch reads *)
  let prog =
    [ I.Move (I.Reg 1, I.Reg 1); I.B (I.Eq, I.To_label "x"); I.Label "x"; I.Halt ]
  in
  check_int "self move kept for flags" 3 (count (Peephole.optimize prog))

let test_strength_reduction () =
  let prog = [ I.Alu (I.Mul, I.Imm 8, 2); I.Halt ] in
  (match Peephole.optimize prog with
  | [ I.Alu (I.Lsl, I.Imm 3, 2); I.Halt ] -> ()
  | _ -> Alcotest.fail "mul 8 not reduced to lsl 3");
  let prog = [ I.Alu (I.Divu, I.Imm 4, 2); I.Halt ] in
  match Peephole.optimize prog with
  | [ I.Alu (I.Lsr, I.Imm 2, 2); I.Halt ] -> ()
  | _ -> Alcotest.fail "divu 4 not reduced to lsr 2"

let test_constant_folding () =
  let prog =
    [
      I.Move (I.Imm 10, I.Reg 3);
      I.Alu (I.And, I.Imm 6, 3);
      I.Move (I.Reg 3, I.Abs 0x100);
      I.Halt;
    ]
  in
  match Peephole.optimize prog with
  | [ I.Move (I.Imm 2, I.Reg 3); I.Move (I.Reg 3, I.Abs 0x100); I.Halt ] -> ()
  | l -> Alcotest.failf "fold failed: %d insns" (List.length l)

let test_add_fold_needs_dead_flags () =
  (* Add sets carry, the Cs branch reads it: folding is unsound here *)
  let prog =
    [
      I.Move (I.Imm 10, I.Reg 3);
      I.Alu (I.Add, I.Imm 5, 3);
      I.B (I.Cs, I.To_label "x");
      I.Label "x";
      I.Halt;
    ]
  in
  check_int "add not folded when carry is read" 4 (count (Peephole.optimize prog))

let test_dead_store () =
  let prog =
    [ I.Move (I.Imm 1, I.Reg 4); I.Move (I.Imm 2, I.Reg 4); I.Tst (I.Reg 4); I.Halt ]
  in
  check_int "dead store removed" 3 (count (Peephole.optimize prog))

let test_dead_store_kept_if_read () =
  let prog =
    [ I.Move (I.Imm 1, I.Reg 4); I.Move (I.Ind 4, I.Reg 4); I.Tst (I.Reg 4); I.Halt ]
  in
  check_int "store kept when next reads it" 4 (count (Peephole.optimize prog))

(* ------------------------------------------------------------------ *)
(* Property: semantic equivalence on random programs *)

let mem_base = 0x100
let mem_cells = 8

type obs = { regs : int list; mem : int list; sr : int; halted : bool }

let run_program insns =
  let m = Machine.create ~mem_words:(1 lsl 12) Cost.sun3_emulation in
  (* registers point into the valid memory window so Ind/Idx work *)
  for r = 0 to 7 do
    Machine.set_reg m r (mem_base + (r mod mem_cells))
  done;
  Machine.set_reg m I.sp 0x800;
  for i = 0 to mem_cells - 1 do
    Machine.poke m (mem_base + i) ((i * 37) + 1)
  done;
  (* a fault is an observable effect: route every exception to a halt
     stub (which records that a fault happened) so both program
     versions stop at the same point *)
  let fault_flag = 0x1F0 in
  let stub, _ = Asm.assemble m [ I.Move (I.Imm 1, I.Abs fault_flag); I.Halt ] in
  for v = 0 to I.Vector.table_size - 1 do
    Machine.poke m v stub
  done;
  let entry, _ = Asm.assemble m (insns @ [ I.Halt ]) in
  Machine.set_pc m entry;
  let r = Machine.run ~max_insns:10_000 m in
  let faulted = Machine.peek m fault_flag = 1 in
  ( {
      (* A memory-operand fault exposes live flags (in its exception
         frame) and the pre-fault register file; synthesized kernel
         code never faults on its validated addresses (see Peephole),
         so on a faulted run the property compares only memory — whose
         stores no rewrite may drop — and the fault itself. *)
      regs =
        (if faulted then [] else List.init 8 (fun i -> Machine.get_reg m i));
      mem = List.init mem_cells (fun i -> Machine.peek m (mem_base + i));
      sr = (if faulted then 0 else Machine.pack_sr m land 0xF);
      halted = r = Machine.Halted && not faulted;
    },
    Machine.cycles m )

(* Program generator: a sequence of segments, each ending at a fresh
   label that a forward conditional branch may target. *)
let gen_operand =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun v -> I.Imm (v - 32)) (int_bound 64));
        (4, map (fun r -> I.Reg r) (int_bound 7));
        (2, map (fun i -> I.Abs (mem_base + i)) (int_bound (mem_cells - 1)));
        (1, map (fun r -> I.Ind r) (int_bound 7));
      ])

let gen_reg = QCheck.Gen.int_bound 7

let gen_alu_op =
  QCheck.Gen.oneofl
    [ I.Add; I.Sub; I.Mul; I.And; I.Or; I.Xor; I.Lsl; I.Lsr; I.Asr; I.Divu ]

let gen_cond =
  QCheck.Gen.oneofl [ I.Eq; I.Ne; I.Lt; I.Ge; I.Gt; I.Le; I.Cs; I.Cc; I.Hi; I.Ls ]

let gen_insn =
  QCheck.Gen.(
    frequency
      [
        ( 5,
          map2
            (fun s d -> I.Move (s, d))
            gen_operand
            (frequency
               [
                 (3, map (fun r -> I.Reg r) gen_reg);
                 (1, map (fun i -> I.Abs (mem_base + i)) (int_bound (mem_cells - 1)));
               ]) );
        (4, map3 (fun op s r -> I.Alu (op, s, r)) gen_alu_op gen_operand gen_reg);
        (2, map2 (fun s d -> I.Cmp (s, d)) gen_operand gen_operand);
        (1, map (fun o -> I.Tst o) gen_operand);
        (1, map (fun r -> I.Neg r) gen_reg);
        (1, map (fun r -> I.Not r) gen_reg);
      ])

let gen_segment idx =
  QCheck.Gen.(
    let lbl = Printf.sprintf "L%d" idx in
    map2
      (fun insns branch ->
        let body = insns in
        let br =
          match branch with
          | None -> []
          | Some c -> [ I.B (c, I.To_label lbl) ]
        in
        body @ br @ [ I.Label lbl ])
      (list_size (int_range 1 4) gen_insn)
      (opt gen_cond))

let gen_program =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let rec go i acc =
      if i >= n then return (List.concat (List.rev acc))
      else
        let* seg = gen_segment i in
        go (i + 1) (seg :: acc)
    in
    go 0 [])

let arb_program =
  QCheck.make gen_program ~print:(fun p -> Fmt.str "%a" Asm.pp_listing p)

let prop_equivalence =
  QCheck.Test.make ~name:"peephole preserves semantics" ~count:500 arb_program
    (fun prog ->
      let optimized = Peephole.optimize prog in
      let obs1, cy1 = run_program prog in
      let obs2, cy2 = run_program optimized in
      obs1 = obs2 && cy2 <= cy1)

let prop_never_longer =
  QCheck.Test.make ~name:"peephole never adds instructions" ~count:500 arb_program
    (fun prog -> Asm.length (Peephole.optimize prog) <= Asm.length prog)

let prop_idempotent =
  QCheck.Test.make ~name:"peephole is idempotent" ~count:300 arb_program (fun prog ->
      let once = Peephole.optimize prog in
      Peephole.optimize once = once)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "peephole"
    [
      ( "rewrites",
        [
          Alcotest.test_case "drop self move" `Quick test_drop_self_move;
          Alcotest.test_case "keep self move for flags" `Quick
            test_keep_self_move_when_flags_live;
          Alcotest.test_case "strength reduction" `Quick test_strength_reduction;
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "add fold needs dead flags" `Quick
            test_add_fold_needs_dead_flags;
          Alcotest.test_case "dead store" `Quick test_dead_store;
          Alcotest.test_case "dead store kept if read" `Quick
            test_dead_store_kept_if_read;
        ] );
      ( "properties",
        qcheck [ prop_equivalence; prop_never_longer; prop_idempotent ] );
    ]
