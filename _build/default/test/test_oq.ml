(* Host-level optimistic queue tests: sequential semantics, property
   tests, and real multi-domain stress (no lost or duplicated items). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sequential FIFO semantics shared by all queue flavours *)

let test_spsc_fifo () =
  let q = Oq.Spsc.create 8 in
  check_bool "initially empty" true (Oq.Spsc.is_empty q);
  for i = 1 to 7 do
    check_bool "put" true (Oq.Spsc.try_put q i)
  done;
  check_bool "full rejects" false (Oq.Spsc.try_put q 99);
  check_bool "is_full" true (Oq.Spsc.is_full q);
  for i = 1 to 7 do
    check_int "fifo order" i (match Oq.Spsc.try_get q with Some v -> v | None -> -1)
  done;
  check_bool "drained" true (Oq.Spsc.try_get q = None)

let test_mpsc_fifo () =
  let q = Oq.Mpsc.create 8 in
  for i = 1 to 7 do
    check_bool "put" true (Oq.Mpsc.try_put q i)
  done;
  check_bool "full rejects" false (Oq.Mpsc.try_put q 99);
  for i = 1 to 7 do
    check_int "fifo order" i (match Oq.Mpsc.try_get q with Some v -> v | None -> -1)
  done;
  check_bool "drained" true (Oq.Mpsc.try_get q = None)

let test_mpsc_multi_insert () =
  (* Figure 2: atomic insert of several items. *)
  let q = Oq.Mpsc.create 16 in
  let items = [| 10; 20; 30; 40; 50 |] in
  check_bool "burst accepted" true (Oq.Mpsc.try_put_many q (fun i -> items.(i)) 5);
  check_bool "too-large burst rejected" false
    (Oq.Mpsc.try_put_many q (fun i -> i) 11);
  (* 15 capacity - 5 used = 10 free; a 10-item burst fits *)
  check_bool "exact-fit burst" true (Oq.Mpsc.try_put_many q (fun i -> 100 + i) 10);
  check_bool "now full" false (Oq.Mpsc.try_put q 1);
  Array.iter
    (fun expect ->
      check_int "burst order" expect
        (match Oq.Mpsc.try_get q with Some v -> v | None -> -1))
    items

let test_spmc_fifo () =
  let q = Oq.Spmc.create 8 in
  for i = 1 to 7 do
    check_bool "put" true (Oq.Spmc.try_put q i)
  done;
  check_bool "full rejects" false (Oq.Spmc.try_put q 99);
  for i = 1 to 7 do
    check_int "fifo order" i (match Oq.Spmc.try_get q with Some v -> v | None -> -1)
  done

let test_mpmc_fifo () =
  let q = Oq.Mpmc.create 8 in
  for i = 1 to 8 do
    check_bool "put" true (Oq.Mpmc.try_put q i)
  done;
  check_bool "full rejects" false (Oq.Mpmc.try_put q 99);
  for i = 1 to 8 do
    check_int "fifo order" i (match Oq.Mpmc.try_get q with Some v -> v | None -> -1)
  done

let test_dedicated_wrap () =
  let q = Oq.Dedicated.create 4 in
  (* push/pop repeatedly across the wrap boundary *)
  for round = 0 to 20 do
    check_bool "put a" true (Oq.Dedicated.try_put q (round * 2));
    check_bool "put b" true (Oq.Dedicated.try_put q ((round * 2) + 1));
    check_int "get a" (round * 2)
      (match Oq.Dedicated.try_get q with Some v -> v | None -> -1);
    check_int "get b" ((round * 2) + 1)
      (match Oq.Dedicated.try_get q with Some v -> v | None -> -1)
  done

(* ------------------------------------------------------------------ *)
(* Property: any interleaving of puts and gets behaves like a FIFO *)

module type QUEUE = sig
  type 'a t

  val create : int -> 'a t
  val try_put : 'a t -> 'a -> bool
  val try_get : 'a t -> 'a option
end

let fifo_model_agreement (module Q : QUEUE) ops =
  let q = Q.create 16 in
  let model = Queue.create () in
  List.for_all
    (fun op ->
      match op with
      | `Put v ->
        let accepted = Q.try_put q v in
        let model_would = Queue.length model < 15 in
        if accepted then Queue.push v model;
        (* MPMC has capacity 16, others 15; allow either boundary *)
        accepted = model_would || (accepted && Queue.length model <= 16)
      | `Get -> (
        match (Q.try_get q, Queue.is_empty model) with
        | None, true -> true
        | Some v, false -> v = Queue.pop model
        | Some _, true -> false
        | None, false -> false))
    ops

let ops_gen =
  QCheck.Gen.(
    list_size (int_bound 200)
      (frequency [ (3, map (fun v -> `Put v) (int_bound 1000)); (2, return `Get) ]))

let arb_ops =
  QCheck.make ops_gen ~print:(fun ops ->
      String.concat ";"
        (List.map (function `Put v -> Printf.sprintf "put %d" v | `Get -> "get") ops))

let prop_spsc_fifo =
  QCheck.Test.make ~name:"spsc behaves like a FIFO" ~count:300 arb_ops (fun ops ->
      fifo_model_agreement (module Oq.Spsc) ops)

let prop_mpsc_fifo =
  QCheck.Test.make ~name:"mpsc behaves like a FIFO" ~count:300 arb_ops (fun ops ->
      fifo_model_agreement (module Oq.Mpsc) ops)

let prop_spmc_fifo =
  QCheck.Test.make ~name:"spmc behaves like a FIFO" ~count:300 arb_ops (fun ops ->
      fifo_model_agreement (module Oq.Spmc) ops)

let prop_dedicated_fifo =
  QCheck.Test.make ~name:"dedicated behaves like a FIFO" ~count:300 arb_ops (fun ops ->
      fifo_model_agreement (module Oq.Dedicated) ops)

(* ------------------------------------------------------------------ *)
(* Multi-domain stress: no losses, no duplicates, per-producer order *)

let sum_to n = n * (n + 1) / 2

let test_spsc_domains () =
  let q = Oq.Spsc.create 64 in
  let n = 50_000 in
  let producer = Domain.spawn (fun () -> for i = 1 to n do Oq.Spsc.put q i done) in
  let total = ref 0 and last = ref 0 and ok = ref true in
  for _ = 1 to n do
    let v = Oq.Spsc.get q in
    if v <= !last then ok := false;
    last := v;
    total := !total + v
  done;
  Domain.join producer;
  check_bool "strictly increasing" true !ok;
  check_int "no items lost" (sum_to n) !total

let test_mpsc_domains () =
  let q = Oq.Mpsc.create 64 in
  let producers = 4 and per = 20_000 in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              Oq.Mpsc.put q ((p * per) + i)
            done))
  in
  let seen = Hashtbl.create 1024 in
  let total = producers * per in
  for _ = 1 to total do
    let v = Oq.Mpsc.get q in
    if Hashtbl.mem seen v then Alcotest.failf "duplicate %d" v;
    Hashtbl.replace seen v ()
  done;
  List.iter Domain.join doms;
  check_int "all items arrived exactly once" total (Hashtbl.length seen);
  check_bool "queue drained" true (Oq.Mpsc.try_get q = None)

let test_mpsc_multi_insert_domains () =
  (* Concurrent burst inserts stay contiguous (atomic insert). *)
  let q = Oq.Mpsc.create 128 in
  let producers = 4 and bursts = 3_000 and burst_len = 5 in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for b = 0 to bursts - 1 do
              let base = (((p * bursts) + b) * burst_len) + 1 in
              let rec try_again () =
                if not (Oq.Mpsc.try_put_many q (fun i -> base + i) burst_len) then begin
                  Domain.cpu_relax ();
                  try_again ()
                end
              in
              try_again ()
            done))
  in
  let total = producers * bursts * burst_len in
  let got = Array.make total 0 in
  for i = 0 to total - 1 do
    got.(i) <- Oq.Mpsc.get q
  done;
  List.iter Domain.join doms;
  (* every burst of 5 must appear contiguously *)
  let i = ref 0 and contiguous = ref true in
  while !i < total do
    let v = got.(!i) in
    if (v - 1) mod burst_len <> 0 then contiguous := false;
    for j = 1 to burst_len - 1 do
      if got.(!i + j) <> v + j then contiguous := false
    done;
    i := !i + burst_len
  done;
  check_bool "bursts are atomic (contiguous)" true !contiguous

let test_spmc_domains () =
  let q = Oq.Spmc.create 64 in
  let consumers = 3 and total = 60_000 in
  let consumed = Atomic.make 0 in
  let sums = Array.make consumers 0 in
  let cons_doms =
    List.init consumers (fun c ->
        Domain.spawn (fun () ->
            let continue = ref true in
            while !continue do
              match Oq.Spmc.try_get q with
              | Some v ->
                sums.(c) <- sums.(c) + v;
                ignore (Atomic.fetch_and_add consumed 1)
              | None ->
                if Atomic.get consumed >= total then continue := false
                else Domain.cpu_relax ()
            done))
  in
  for i = 1 to total do
    Oq.Spmc.put q i
  done;
  List.iter Domain.join cons_doms;
  check_int "sum preserved across consumers" (sum_to total)
    (Array.fold_left ( + ) 0 sums)

let test_mpmc_domains () =
  let q = Oq.Mpmc.create 64 in
  let producers = 3 and consumers = 3 and per = 20_000 in
  let total = producers * per in
  let consumed = Atomic.make 0 in
  let sums = Array.make consumers 0 in
  let prod_doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              Oq.Mpmc.put q ((p * per) + i)
            done))
  in
  let cons_doms =
    List.init consumers (fun c ->
        Domain.spawn (fun () ->
            let continue = ref true in
            while !continue do
              match Oq.Mpmc.try_get q with
              | Some v ->
                sums.(c) <- sums.(c) + v;
                ignore (Atomic.fetch_and_add consumed 1)
              | None -> if Atomic.get consumed >= total then continue := false else Domain.cpu_relax ()
            done))
  in
  List.iter Domain.join prod_doms;
  List.iter Domain.join cons_doms;
  let expect = producers * sum_to per |> fun base ->
    base + (per * per * (0 + 1 + 2)) in
  check_int "sum preserved across domains" expect (Array.fold_left ( + ) 0 sums)

(* ------------------------------------------------------------------ *)
(* Pump and gauge building blocks *)

let test_pump_copies () =
  let src = Oq.Spsc.create 64 and dst = Oq.Spsc.create 64 in
  let n = 10_000 in
  let pump =
    Oq.Pump.start
      ~source:(fun () -> Oq.Spsc.try_get src)
      ~sink:(fun v -> Oq.Spsc.put dst v)
      ()
  in
  let feeder = Domain.spawn (fun () -> for i = 1 to n do Oq.Spsc.put src i done) in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Oq.Spsc.get dst
  done;
  Domain.join feeder;
  Oq.Pump.stop pump;
  check_int "pump moved everything" (sum_to n) !total;
  check_int "pump counted" n (Oq.Pump.copied pump)

let test_gauge_rate () =
  let g = Oq.Gauge.create () in
  ignore (Oq.Gauge.sample_rate g ~now:0.0);
  for _ = 1 to 500 do
    Oq.Gauge.tick g
  done;
  let rate = Oq.Gauge.sample_rate g ~now:2.0 in
  check_bool "rate = 250/unit" true (abs_float (rate -. 250.0) < 1e-6);
  check_int "count" 500 (Oq.Gauge.count g)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "oq"
    [
      ( "sequential",
        [
          Alcotest.test_case "spsc fifo" `Quick test_spsc_fifo;
          Alcotest.test_case "mpsc fifo" `Quick test_mpsc_fifo;
          Alcotest.test_case "mpsc multi-insert" `Quick test_mpsc_multi_insert;
          Alcotest.test_case "spmc fifo" `Quick test_spmc_fifo;
          Alcotest.test_case "mpmc fifo" `Quick test_mpmc_fifo;
          Alcotest.test_case "dedicated wrap" `Quick test_dedicated_wrap;
        ] );
      ( "properties",
        qcheck [ prop_spsc_fifo; prop_mpsc_fifo; prop_spmc_fifo; prop_dedicated_fifo ] );
      ( "domains",
        [
          Alcotest.test_case "spsc cross-domain" `Slow test_spsc_domains;
          Alcotest.test_case "mpsc 4 producers" `Slow test_mpsc_domains;
          Alcotest.test_case "mpsc atomic bursts" `Slow test_mpsc_multi_insert_domains;
          Alcotest.test_case "spmc 3 consumers" `Slow test_spmc_domains;
          Alcotest.test_case "mpmc 3x3" `Slow test_mpmc_domains;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "pump copies" `Slow test_pump_copies;
          Alcotest.test_case "gauge rates" `Quick test_gauge_rate;
        ] );
    ]
