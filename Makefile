# Convenience wrapper around dune.  `make check` is what CI runs:
# build everything, run the test suites, and (when ocamlformat is
# installed) verify formatting.

DUNE ?= dune

.PHONY: all build test fmt check bench bench-check bench-all \
        faultsim faultsim-queues faultsim-ready-queue faultsim-kpipe \
        faultsim-disk faultsim-codeflip faultsim-synthcache \
        faultsim-smp faultsim-serve faultsim-crash clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# @fmt needs ocamlformat, which not every environment has; skip with a
# notice instead of failing the whole check.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

check: build test fmt

# Run the paper-table benches and emit machine-readable BENCH_tables.json.
bench:
	$(DUNE) exec bench/main.exe -- tables

# Regression gate: re-run the tables and fail on any metric more than
# 5% worse than the committed bench/baseline.json.
bench-check:
	$(DUNE) exec bench/main.exe -- compare

# The full suite (queues, ablations, sizes, bechamel, ...).
bench-all:
	$(DUNE) exec bench/main.exe -- all

# kfault: deterministic seed-swept fault-injection sweeps — forced
# preemption + injected faults over each explorer subject, plus the
# timer-loss and disk-fault recovery scenarios.  Fails on any
# invariant violation, unrecovered fault, nondeterministic trace, or
# sabotage run the invariants miss.  FAULTSIM_SEEDS widens/narrows
# every sweep; CI runs the per-subject targets as parallel jobs.
FAULTSIM_SEEDS ?= 32
# Extra flags for the sweep, e.g. FAULTSIM_FLAGS="--postmortem-dir forensics"
# to save each failing run's flight-recorder dump + black-box trace.
FAULTSIM_FLAGS ?=
FAULTSIM = $(DUNE) exec bin/synthesis_cli.exe -- faultsim --seed 1 --seeds $(FAULTSIM_SEEDS) $(FAULTSIM_FLAGS)

faultsim:
	$(FAULTSIM) --subject all

faultsim-queues:
	$(FAULTSIM) --subject queues

faultsim-ready-queue:
	$(FAULTSIM) --subject ready-queue

faultsim-kpipe:
	$(FAULTSIM) --subject kpipe

faultsim-disk:
	$(FAULTSIM) --subject disk

# kheal: code-region flips repaired by resynthesis; every seeded flip
# must be detected and the post-repair code state must match the
# fault-free fingerprint.
faultsim-codeflip:
	$(FAULTSIM) --subject codeflip

# ksynth: flips aimed at one shared cached page while decoy churn
# drives eviction next to it; the page must repair in place exactly
# once for all users and keep serving post-storm instantiations.
faultsim-synthcache:
	$(FAULTSIM) --subject synthcache

# kSMP: the multi-core work-stealing storm — a queue workload pinned
# across 2-4 cores (picked per seed) with per-core stealers, under
# core-clock skews, forced steals/migrations, cross-core preemptions,
# and core-targeted spurious interrupts.  The sabotage leg skips the
# steal dispatch guard and must be caught.
faultsim-smp:
	$(FAULTSIM) --subject smp

# kserve: the network serving stack under spurious NIC interrupts,
# stalled/dropped card service ticks, and core-clock skews; the
# agitation hook plays the driver watchdog and re-kicks a parked
# card.  The sabotage leg duplicates one tx frame and the load
# generator's exactly-once ledger must catch the second copy.
faultsim-serve:
	$(FAULTSIM) --subject serve

# kcrash: enumerate every legal power-cut state of the journaled FS
# workloads (journal prefixes + torn-write variants + a live
# device-level cut), reboot each through at-boot recovery, and check
# the crash-consistency litmus predicates.  Also proves the
# mechanisms are load-bearing: with barriers or the intent log
# disabled the litmus tests must fail.
faultsim-crash:
	$(FAULTSIM) --subject crash

clean:
	$(DUNE) clean
