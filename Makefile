# Convenience wrapper around dune.  `make check` is what CI runs:
# build everything, run the test suites, and (when ocamlformat is
# installed) verify formatting.

DUNE ?= dune

.PHONY: all build test fmt check bench clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# @fmt needs ocamlformat, which not every environment has; skip with a
# notice instead of failing the whole check.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

check: build test fmt

bench:
	$(DUNE) exec bench/main.exe

clean:
	$(DUNE) clean
