(* Disk pipeline tests: raw server + elevator scheduler + cache
   manager (§5.1). *)

open Quamachine
open Synthesis
module I = Insn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let setup () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let ds = Disk_server.install k () in
  (* idle thread must be runnable so completion interrupts can be
     taken while we spin the machine from the host *)
  let m = k.Kernel.machine in
  (match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 0;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> Alcotest.fail "no idle thread");
  (b, k, ds)

let fill_disk k pattern_of_block =
  List.iter
    (fun blk ->
      Devices.Disk.write_block k.Kernel.disk blk
        (Array.init Devices.Disk.block_words (pattern_of_block blk)))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 20; 30; 40 ]

let test_read_through_cache () =
  let _b, k, ds = setup () in
  let m = k.Kernel.machine in
  fill_disk k (fun blk i -> (blk * 1000) + i);
  (match Disk_server.read_block_sync ds 3 ~max_insns:10_000_000 with
  | Some buf ->
    check_int "first word" 3000 (Machine.peek m buf);
    check_int "last word" (3000 + Devices.Disk.block_words - 1)
      (Machine.peek m (buf + Devices.Disk.block_words - 1))
  | None -> Alcotest.fail "read never completed");
  (* second read of the same block: cache hit, no device involvement *)
  let before = Devices.Disk.blocks k.Kernel.disk in
  ignore before;
  (match Disk_server.read_block_sync ds 3 ~max_insns:100 with
  | Some _ -> ()
  | None -> Alcotest.fail "cache hit should be instant");
  let hits, misses = Disk_server.stats ds in
  check_int "one hit" 1 hits;
  check_int "one miss" 1 misses

let test_elevator_order () =
  let _b, k, ds = setup () in
  let m = k.Kernel.machine in
  fill_disk k (fun blk i -> blk + i);
  (* queue requests out of order while the first is in flight; the
     scheduler should then serve them in one upward sweep *)
  let r40 = Disk_server.submit ds ~block:40 ~buffer:(Kalloc.alloc k.Kernel.alloc 256) ~write:false () in
  ignore r40;
  let mk blk = Disk_server.submit ds ~block:blk ~buffer:(Kalloc.alloc k.Kernel.alloc 256) ~write:false () in
  let r10 = mk 10 in
  let r30 = mk 30 in
  let r20 = mk 20 in
  ignore (r10, r30, r20);
  (* run until all complete *)
  let rec spin n =
    if n = 0 then Alcotest.fail "requests never completed"
    else if List.length (Disk_server.service_order ds) >= 4 && Machine.peek m (r20.Disk_server.r_desc + 3) = 1
    then ()
    else begin
      Machine.step m;
      spin (n - 1)
    end
  in
  spin 50_000_000;
  match Disk_server.service_order ds with
  | [ 40; 10; 20; 30 ] | [ 40; 20; 30; 10 ] ->
    (* after 40, the sweep reverses down to 10 then climbs, or climbs
       from wherever the arm settled — exact order depends on arrival
       interleaving; what matters is: not FIFO *)
    ()
  | [ 40; 10; 30; 20 ] -> Alcotest.fail "FIFO order: elevator not applied"
  | order ->
    (* accept any monotone sweep after the in-flight request *)
    let rest = List.tl order in
    let sorted_up = List.sort compare rest in
    let sorted_down = List.rev sorted_up in
    check_bool
      (Fmt.str "sweep order (got %a)" Fmt.(Dump.list int) order)
      true
      (rest = sorted_up || rest = sorted_down)

let test_cache_eviction_and_writeback () =
  let _b, k, ds = setup () in
  let m = k.Kernel.machine in
  fill_disk k (fun blk i -> blk + i);
  (* small cache: force evictions *)
  let ds2 = ds in
  ignore ds2;
  (* read blocks 0..9 through a 16-entry cache: all misses *)
  List.iter
    (fun blk ->
      match Disk_server.read_block_sync ds blk ~max_insns:10_000_000 with
      | Some _ -> ()
      | None -> Alcotest.failf "block %d never arrived" blk)
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
  let _, misses = Disk_server.stats ds in
  check_int "ten misses" 10 misses;
  (* dirty a block and verify writeback reaches the device *)
  (match Disk_server.read_block_sync ds 5 ~max_insns:10_000_000 with
  | Some buf ->
    Machine.poke m (buf + 0) 4242;
    Disk_server.mark_dirty ds 5
  | None -> Alcotest.fail "block 5 missing");
  (* force enough traffic to evict block 5 (capacity 16) *)
  List.iter
    (fun blk -> ignore (Disk_server.read_block_sync ds blk ~max_insns:10_000_000))
    [ 20; 30; 40; 100; 101; 102; 103; 104; 105; 106; 107; 108; 109; 110; 111; 112 ];
  (* writeback is asynchronous: spin the machine until it lands *)
  let rec spin n =
    if n = 0 then ()
    else if (Devices.Disk.read_block k.Kernel.disk 5).(0) = 4242 then ()
    else begin
      Machine.step m;
      spin (n - 1)
    end
  in
  spin 50_000_000;
  check_int "dirty block written back" 4242 (Devices.Disk.read_block k.Kernel.disk 5).(0)

(* Disk-backed file system: a user thread opens a file on disk, its
   read blocks on the cache miss, the completion interrupt wakes it,
   and the data comes through intact. *)
let test_dfs_thread_read () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let content = Array.init 600 (fun i -> i * 7) in
  Dfs.format k ~files:[ ("notes", content) ] ();
  let ds = Disk_server.install k () in
  (* the superblock read needs a running machine: start the idle
     thread first *)
  (match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 0;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> Alcotest.fail "no idle thread");
  let _dfs = Dfs.mount b.Boot.vfs ds in
  let region = Kalloc.alloc_zeroed k.Kernel.alloc 1024 in
  let poke_string addr s =
    String.iteri (fun i c -> Machine.poke m (addr + i) (Char.code c)) s;
    Machine.poke m (addr + String.length s) 0
  in
  poke_string region "/disk/notes";
  let buf = region + 64 in
  let prog =
    [
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3; (* open the disk file *)
      I.Move (I.Reg I.r0, I.Reg I.r13);
      (* read 600 words across three device blocks, 200 at a time *)
      I.Move (I.Imm 0, I.Reg I.r12); (* total *)
      I.Label "loop";
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Move (I.Imm buf, I.Reg I.r2);
      I.Alu (I.Add, I.Reg I.r12, I.r2);
      I.Move (I.Imm 200, I.Reg I.r3);
      I.Trap 1; (* blocks on cache misses *)
      I.Alu (I.Add, I.Reg I.r0, I.r12);
      I.Cmp (I.Imm 600, I.Reg I.r12);
      I.B (I.Ne, I.To_label "loop");
      I.Move (I.Reg I.r12, I.Abs (region + 32));
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  let _t = Thread.create k ~entry ~segments:[ (region, 1024) ] () in
  (match Boot.go ~max_insns:100_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "dfs read never finished");
  check_int "read all 600 words" 600 (Machine.peek m (region + 32));
  let ok = ref true in
  for i = 0 to 599 do
    if Machine.peek m (buf + i) <> i * 7 then ok := false
  done;
  check_bool "contents intact through the pipeline" true !ok;
  let hits, misses = Disk_server.stats ds in
  check_bool "the cache served rereads" true (hits > misses)

let test_dfs_mount_lists_files () =
  let b, k, ds = setup () in
  Dfs.format k ~files:[ ("a", [| 1 |]); ("b", Array.make 300 9) ] ();
  let dfs = Dfs.mount b.Boot.vfs ds in
  match Dfs.files dfs with
  | [ fa; fb ] ->
    Alcotest.(check string) "first name" "a" fa.Dfs.df_name;
    check_int "first size" 1 fa.Dfs.df_words;
    Alcotest.(check string) "second name" "b" fb.Dfs.df_name;
    check_int "second size" 300 fb.Dfs.df_words;
    check_int "contiguous allocation" (fa.Dfs.df_start + 1) fb.Dfs.df_start
  | l -> Alcotest.failf "expected 2 files, got %d" (List.length l)

let () =
  Alcotest.run "disk"
    [
      ( "pipeline",
        [
          Alcotest.test_case "read through cache" `Quick test_read_through_cache;
          Alcotest.test_case "elevator service order" `Quick test_elevator_order;
          Alcotest.test_case "eviction and writeback" `Quick
            test_cache_eviction_and_writeback;
        ] );
      ( "dfs",
        [
          Alcotest.test_case "mount lists files" `Quick test_dfs_mount_lists_files;
          Alcotest.test_case "thread read blocks on misses" `Quick
            test_dfs_thread_read;
        ] );
    ]
