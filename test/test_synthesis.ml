(* Synthesis kernel subsystem tests: VM-level optimistic queues,
   pipes, signals, lazy-FP resynthesis, error traps, the executable
   ready queue under random churn, and the fine-grain scheduler. *)

open Quamachine
open Synthesis
module I = Insn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let start_machine k =
  let m = k.Kernel.machine in
  match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> failwith "start_machine: empty ready queue"

let run_call m ~entry ?(r1 = 0) ?(r2 = 0) ?(r3 = 0) () =
  let frag = [ I.Jsr (I.To_addr entry); I.Halt ] in
  let start, _ = Asm.assemble m frag in
  Machine.set_halted m false;
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp 0xE00;
  Machine.set_reg m I.r1 r1;
  Machine.set_reg m I.r2 r2;
  Machine.set_reg m I.r3 r3;
  Machine.set_pc m start;
  (match Machine.run ~max_insns:10_000 m with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "run_call: did not return");
  (Machine.get_reg m I.r0, Machine.get_reg m I.r1)

(* ------------------------------------------------------------------ *)
(* VM-level queues (Figures 1-2) *)

let test_kqueue_spsc () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let q = Kqueue.create ~kind:Kqueue.Spsc k ~name:"t/spsc" ~size:4 in
  (* fill to capacity (size-1 = 3) through the synthesized code *)
  for i = 1 to 3 do
    let st, _ = run_call m ~entry:q.Kqueue.q_put ~r1:(i * 11) () in
    check_int "put accepted" 1 st
  done;
  let st, _ = run_call m ~entry:q.Kqueue.q_put ~r1:99 () in
  check_int "put rejected when full" 0 st;
  for i = 1 to 3 do
    let st, item = run_call m ~entry:q.Kqueue.q_get () in
    check_int "get ok" 1 st;
    check_int "fifo order" (i * 11) item
  done;
  let st, _ = run_call m ~entry:q.Kqueue.q_get () in
  check_int "get rejected when empty" 0 st

let test_kqueue_mpsc_wrap () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let q = Kqueue.create ~kind:Kqueue.Mpsc k ~name:"t/mpsc" ~size:4 in
  (* repeated put/get cycles across the wrap boundary *)
  for round = 1 to 10 do
    let st, _ = run_call m ~entry:q.Kqueue.q_put ~r1:round () in
    check_int "put" 1 st;
    let st, _ = run_call m ~entry:q.Kqueue.q_put ~r1:(round + 100) () in
    check_int "put2" 1 st;
    let st, v = run_call m ~entry:q.Kqueue.q_get () in
    check_int "get" 1 st;
    check_int "value" round v;
    let st, v = run_call m ~entry:q.Kqueue.q_get () in
    check_int "get2" 1 st;
    check_int "value2" (round + 100) v
  done

let test_kqueue_put_many_atomic () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let q = Kqueue.create ~kind:Kqueue.Mpsc k ~name:"t/mpscm" ~size:8 in
  let src = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  for i = 0 to 5 do
    Machine.poke m (src + i) (50 + i)
  done;
  (* a 6-item burst fits (capacity 7) *)
  let st, _ = run_call m ~entry:q.Kqueue.q_put_many ~r2:src ~r3:6 () in
  check_int "burst accepted" 1 st;
  (* a 2-item burst does not (1 slot left): must fail without effect *)
  let st, _ = run_call m ~entry:q.Kqueue.q_put_many ~r2:src ~r3:2 () in
  check_int "oversized burst rejected" 0 st;
  for i = 0 to 5 do
    let st, v = run_call m ~entry:q.Kqueue.q_get () in
    check_int "get" 1 st;
    check_int "burst order" (50 + i) v
  done;
  check_int "queue drained" 0 (Kqueue.host_length k q)

let test_kqueue_interrupt_producer () =
  (* A producer running in interrupt context interleaves with a
     consumer thread on the same MP-SC queue: nothing lost. *)
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let q = Kqueue.create ~kind:Kqueue.Mpsc k ~name:"t/mpsci" ~size:64 in
  let produced = ref 0 in
  let feeder = Machine.register_hcall m (fun m ->
      if !produced < 40 then begin
        incr produced;
        if not (Kqueue.host_put k q !produced) then failwith "queue full"
      end;
      ignore m)
  in
  (* alarm-driven producer at high rate *)
  let irq, _ =
    Ksynth.install k ~name:"t/irq"
      [
        I.Push (I.Reg I.r4);
        I.Hcall feeder;
        I.Move (I.Imm 20, I.Abs Mmio_map.alarm_set); (* re-arm *)
        I.Pop I.r4;
        I.Rte;
      ]
  in
  Kernel.set_vector_all k Mmio_map.alarm_vector irq;
  (* this test drives the machine directly with VBR = 0, so install
     the handler in the low vector table as well *)
  Machine.poke m Mmio_map.alarm_vector irq;
  (* consumer: a user-visible count of drained items *)
  let out = Kalloc.alloc_zeroed k.Kernel.alloc 64 in
  let entry, _ =
    Ksynth.install k ~name:"t/consumer"
      ([ I.Move (I.Imm out, I.Reg I.r9); I.Move (I.Imm 20, I.Abs Mmio_map.alarm_set) ]
      @ [
          I.Label "loop";
          I.Jsr (I.To_addr q.Kqueue.q_get);
          I.Tst (I.Reg I.r0);
          I.B (I.Eq, I.To_label "loop");
          I.Move (I.Reg I.r1, I.Post_inc I.r9);
          I.Cmp (I.Imm (out + 40), I.Reg I.r9);
          I.B (I.Ne, I.To_label "loop");
          I.Halt;
        ])
  in
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp 0xE00;
  Machine.set_ipl m 0;
  Machine.set_pc m entry;
  (match Machine.run ~max_insns:10_000_000 m with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "consumer never finished");
  for i = 0 to 39 do
    check_int "item in order" (i + 1) (Machine.peek m (out + i))
  done

let test_kqueue_spmc_consumer_race () =
  (* force the consumer's stale-claim path: between our tail read and
     our flag CAS, a competitor drains slot 0 and the producer laps
     the ring and republishes it.  We then claim a publication that is
     no longer ours (tail has moved on), must back the claim out, and
     retry cleanly onto the real tail slot. *)
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let q = Kqueue.create ~kind:Kqueue.Spmc k ~name:"t/spmc" ~size:8 in
  ignore (run_call m ~entry:q.Kqueue.q_put ~r1:11 ());
  ignore (run_call m ~entry:q.Kqueue.q_put ~r1:22 ());
  (* start a get, stop at its CAS (tail already read as 0) *)
  let rec find_cas a =
    match Machine.read_code m a with I.Cas _ -> a | _ -> find_cas (a + 1)
  in
  let cas_pc = find_cas q.Kqueue.q_get in
  let frag = [ I.Jsr (I.To_addr q.Kqueue.q_get); I.Halt ] in
  let start, _ = Asm.assemble m frag in
  Machine.set_halted m false;
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp 0xE00;
  Machine.set_pc m start;
  let rec step_to_cas n =
    if n = 0 then Alcotest.fail "CAS not reached"
    else if Machine.get_pc m = cas_pc then ()
    else begin
      Machine.step m;
      step_to_cas (n - 1)
    end
  in
  step_to_cas 1000;
  (* competitor drains slot 0 (tail -> 1, flag[0] -> 0) and a lapping
     producer republishes it (flag[0] -> 1, new item in buf[0]) *)
  let tail = Kqueue.tail_cell q in
  Machine.poke m tail 1;
  Machine.poke m (q.Kqueue.q_buf + 0) 33;
  (match Machine.run ~max_insns:1000 m with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "get stuck after retry");
  check_int "retry claimed the real tail slot" 22 (Machine.get_reg m I.r1);
  check_int "get succeeded" 1 (Machine.get_reg m I.r0);
  check_int "stale claim was backed out" 1 (Machine.peek m (q.Kqueue.q_flag + 0));
  check_int "tail advanced past the consumed slot" 2 (Machine.peek m tail);
  (* the backed-out publication is intact for its eventual owner *)
  check_int "republished item untouched" 33 (Machine.peek m (q.Kqueue.q_buf + 0))

let test_kqueue_mpmc_flag_guard () =
  (* MP-MC: with tail advanced but the flag still set (a consumer
     mid-read), the producer must refuse the slot *)
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let q = Kqueue.create ~kind:Kqueue.Mpmc k ~name:"t/mpmc" ~size:4 in
  (* fill three slots (capacity): head wraps to slot 3 next *)
  List.iter (fun v -> ignore (run_call m ~entry:q.Kqueue.q_put ~r1:v ())) [ 1; 2; 3 ];
  let st, _ = run_call m ~entry:q.Kqueue.q_put ~r1:99 () in
  check_int "full by distance" 0 st;
  (* a consumer claimed slots 0 and 1, finished slot 1, but is still
     reading slot 0: tail = 2, flag[0] still set *)
  Machine.poke m (Kqueue.tail_cell q) 2;
  Machine.poke m (q.Kqueue.q_flag + 1) 0;
  (* slot 3 is genuinely free: accepted *)
  let st, _ = run_call m ~entry:q.Kqueue.q_put ~r1:99 () in
  check_int "free slot accepted" 1 st;
  (* head now wraps onto slot 0, which is mid-read: must refuse even
     though the head/tail distance says there is room *)
  let st, _ = run_call m ~entry:q.Kqueue.q_put ~r1:88 () in
  check_int "slot mid-read refused despite free tail distance" 0 st;
  (* the consumer finishes: the same put now succeeds *)
  Machine.poke m (q.Kqueue.q_flag + 0) 0;
  let st, _ = run_call m ~entry:q.Kqueue.q_put ~r1:88 () in
  check_int "accepted once released" 1 st;
  (* drain from tail = 2: 3, 99, 88 *)
  List.iter
    (fun exp ->
      let st, v = run_call m ~entry:q.Kqueue.q_get () in
      check_int "get ok" 1 st;
      check_int "order" exp v)
    [ 3; 99; 88 ]

(* ------------------------------------------------------------------ *)
(* Pipes *)

let test_pipe_two_threads () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let vfs = b.Boot.vfs in
  let pipe = Kpipe.create k ~cap:32 () in
  let total = 500 in
  let sum_cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let src = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let dst = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let producer = Thread.create k ~quantum_us:100 ~entry:0 ~segments:[ (src, 16) ] () in
  let consumer =
    Thread.create k ~quantum_us:100 ~entry:0 ~segments:[ (dst, 16); (sum_cell, 16) ] ()
  in
  let _, wfd = Kpipe.attach vfs pipe producer in
  let rfd, _ = Kpipe.attach vfs pipe consumer in
  let pprog =
    [
      I.Move (I.Imm 1, I.Reg I.r9);
      I.Label "loop";
      I.Move (I.Reg I.r9, I.Abs src);
      I.Move (I.Imm wfd, I.Reg I.r1);
      I.Move (I.Imm src, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 2;
      I.Alu (I.Add, I.Imm 1, I.r9);
      I.Cmp (I.Imm (total + 1), I.Reg I.r9);
      I.B (I.Ne, I.To_label "loop");
      I.Trap 0;
    ]
  in
  let cprog =
    [
      I.Move (I.Imm 0, I.Reg I.r9); (* sum *)
      I.Move (I.Imm 0, I.Reg I.r10); (* count *)
      I.Label "loop";
      I.Move (I.Imm rfd, I.Reg I.r1);
      I.Move (I.Imm dst, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 1;
      I.Alu (I.Add, I.Abs dst, I.r9);
      I.Alu (I.Add, I.Imm 1, I.r10);
      I.Cmp (I.Imm total, I.Reg I.r10);
      I.B (I.Ne, I.To_label "loop");
      I.Move (I.Reg I.r9, I.Abs sum_cell);
      I.Trap 0;
    ]
  in
  let pentry, _ = Asm.assemble m pprog in
  let centry, _ = Asm.assemble m cprog in
  Machine.poke m (producer.Kernel.base + Layout.Tte.off_regs + 17) pentry;
  Machine.poke m (consumer.Kernel.base + Layout.Tte.off_regs + 17) centry;
  (match Boot.go ~max_insns:100_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "pipe threads did not finish");
  check_int "all data flowed through the pipe" (total * (total + 1) / 2)
    (Machine.peek m sum_cell)

let test_pipe_eof () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let vfs = b.Boot.vfs in
  let region = Kalloc.alloc_zeroed k.Kernel.alloc 64 in
  let t = Thread.create k ~entry:0 ~segments:[ (region, 64) ] () in
  let pipe = Kpipe.create k ~cap:32 () in
  let rfd, wfd = Kpipe.attach vfs pipe t in
  let prog =
    [
      (* write 3 words, close the writer, read 8 (-> 3), read again (-> EOF) *)
      I.Move (I.Imm wfd, I.Reg I.r1);
      I.Move (I.Imm region, I.Reg I.r2);
      I.Move (I.Imm 3, I.Reg I.r3);
      I.Trap 2;
      I.Move (I.Imm wfd, I.Reg I.r1);
      I.Trap 4; (* close writer *)
      I.Move (I.Imm rfd, I.Reg I.r1);
      I.Move (I.Imm (region + 16), I.Reg I.r2);
      I.Move (I.Imm 8, I.Reg I.r3);
      I.Trap 1;
      I.Move (I.Reg I.r0, I.Abs (region + 40));
      I.Move (I.Imm rfd, I.Reg I.r1);
      I.Move (I.Imm (region + 16), I.Reg I.r2);
      I.Move (I.Imm 8, I.Reg I.r3);
      I.Trap 1;
      I.Move (I.Reg I.r0, I.Abs (region + 41));
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  Machine.poke m (t.Kernel.base + Layout.Tte.off_regs + 17) entry;
  (match Boot.go ~max_insns:10_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "partial read returns available" 3 (Machine.peek m (region + 40));
  check_int "read after close = EOF" 0 (Machine.peek m (region + 41))

(* Property: random chunk schedules through a two-thread pipe deliver
   every word intact and in order.  The writer sends 1..total in
   chunks from the schedule; the reader drains with its own chunk
   sizes; a final checksum and order flag are compared. *)

let prop_pipe_random_chunks =
  QCheck.Test.make ~name:"pipe preserves data under random chunking" ~count:12
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 2 8) (int_range 1 48))
           (int_range 1 48))
       ~print:(fun (ws, r) ->
         Fmt.str "writer chunks %a, reader chunk %d" Fmt.(Dump.list int) ws r))
    (fun (wchunks, rchunk) ->
      let total = List.fold_left ( + ) 0 wchunks in
      let b = Boot.boot () in
      let k = b.Boot.kernel in
      let m = k.Kernel.machine in
      let vfs = b.Boot.vfs in
      let pipe = Kpipe.create k ~cap:64 () in
      let src = Kalloc.alloc_zeroed k.Kernel.alloc 64 in
      let dst = Kalloc.alloc_zeroed k.Kernel.alloc 64 in
      let out = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
      let writer = Thread.create k ~quantum_us:80 ~entry:0 ~segments:[ (src, 64) ] () in
      let reader =
        Thread.create k ~quantum_us:80 ~entry:0 ~segments:[ (dst, 64); (out, 16) ] ()
      in
      let _, wfd = Kpipe.attach vfs pipe writer in
      let rfd, _ = Kpipe.attach vfs pipe reader in
      (* writer: next value in r9; per chunk, fill src then write;
         labels made unique by the chunk's position *)
      let wprog =
        [ I.Move (I.Imm 1, I.Reg I.r9) ]
        @ List.concat
            (List.mapi
               (fun i n ->
                 let lbl = Fmt.str "fill_%d" i in
                 [
                   I.Move (I.Imm src, I.Reg I.r10);
                   I.Move (I.Imm (n - 1), I.Reg I.r11);
                   I.Label lbl;
                   I.Move (I.Reg I.r9, I.Post_inc I.r10);
                   I.Alu (I.Add, I.Imm 1, I.r9);
                   I.Dbra (I.r11, I.To_label lbl);
                   I.Move (I.Imm wfd, I.Reg I.r1);
                   I.Move (I.Imm src, I.Reg I.r2);
                   I.Move (I.Imm n, I.Reg I.r3);
                   I.Trap 2;
                 ])
               wchunks)
        @ [ I.Trap 0 ]
      in
      (* reader: drain [total] words, checking order and summing *)
      let rprog =
        [
          I.Move (I.Imm 0, I.Reg I.r9); (* received *)
          I.Move (I.Imm 1, I.Reg I.r10); (* expected next *)
          I.Move (I.Imm 1, I.Reg I.r12); (* in-order flag *)
          I.Label "loop";
          I.Move (I.Imm rfd, I.Reg I.r1);
          I.Move (I.Imm dst, I.Reg I.r2);
          I.Move (I.Imm rchunk, I.Reg I.r3);
          I.Trap 1;
          I.Move (I.Reg I.r0, I.Reg I.r11); (* words this time *)
          I.Move (I.Imm dst, I.Reg I.r13);
          I.Tst (I.Reg I.r11);
          I.B (I.Eq, I.To_label "loop");
          I.Alu (I.Add, I.Reg I.r11, I.r9);
          I.Alu (I.Sub, I.Imm 1, I.r11);
          I.Label "chk";
          I.Cmp (I.Post_inc I.r13, I.Reg I.r10); (* expected - got *)
          I.B (I.Eq, I.To_label "ok");
          I.Move (I.Imm 0, I.Reg I.r12);
          I.Label "ok";
          I.Alu (I.Add, I.Imm 1, I.r10);
          I.Dbra (I.r11, I.To_label "chk");
          I.Cmp (I.Imm total, I.Reg I.r9);
          I.B (I.Ne, I.To_label "loop");
          I.Move (I.Reg I.r12, I.Abs out);
          I.Trap 0;
        ]
      in
      let wentry, _ = Asm.assemble m wprog in
      let rentry, _ = Asm.assemble m rprog in
      Machine.poke m (writer.Kernel.base + Layout.Tte.off_pc) wentry;
      Machine.poke m (reader.Kernel.base + Layout.Tte.off_pc) rentry;
      (match Boot.go ~max_insns:100_000_000 b with
      | Machine.Halted -> ()
      | Machine.Insn_limit -> failwith "pipe property stuck");
      Machine.peek m out = 1)

(* ------------------------------------------------------------------ *)
(* Signals *)

let test_signal_delivery () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  (* the handler bumps a counter (user-mode code) *)
  let handler_prog = [ I.Alu_mem (I.Add, I.Imm 1, I.Abs cell); I.Rts ] in
  let handler, _ = Asm.assemble m handler_prog in
  (* target: spins until signalled twice, then exits *)
  let tprog =
    [
      I.Move (I.Imm handler, I.Reg I.r1);
      I.Trap 8; (* register handler *)
      I.Label "spin";
      I.Cmp (I.Imm 2, I.Abs cell);
      I.B (I.Ne, I.To_label "spin");
      I.Trap 0;
    ]
  in
  let tentry, _ = Asm.assemble m tprog in
  let target = Thread.create k ~quantum_us:100 ~entry:tentry ~segments:[ (cell, 16) ] () in
  (* signaller: sends two signals with pauses, then exits *)
  let sprog =
    [
      I.Move (I.Imm 500, I.Reg I.r9);
      I.Label "d1";
      I.Dbra (I.r9, I.To_label "d1");
      I.Move (I.Imm target.Kernel.tid, I.Reg I.r1);
      I.Trap 6;
      I.Move (I.Imm 500, I.Reg I.r9);
      I.Label "d2";
      I.Dbra (I.r9, I.To_label "d2");
      I.Move (I.Imm target.Kernel.tid, I.Reg I.r1);
      I.Trap 6;
      I.Trap 0;
    ]
  in
  let sentry, _ = Asm.assemble m sprog in
  let _s = Thread.create k ~quantum_us:100 ~entry:sentry () in
  (match Boot.go ~max_insns:50_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "both signals handled" 2 (Machine.peek m cell)

(* ------------------------------------------------------------------ *)
(* Lazy FP *)

let test_fp_resynthesis () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  Machine.set_fp_enabled m false;
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let prog =
    [
      I.Fmove_imm (2.0, 0);
      I.Fmove_imm (3.0, 1);
      I.Fop (I.Fadd, 1, 0); (* f0 = 5.0 *)
      I.Move (I.Imm 1, I.Abs cell);
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  let t = Thread.create k ~entry ~segments:[ (cell, 16) ] () in
  check_bool "created without FP" false t.Kernel.uses_fp;
  (match Boot.go ~max_insns:10_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "program completed" 1 (Machine.peek m cell);
  check_bool "switch code resynthesized with FP" true t.Kernel.uses_fp

let test_fp_state_preserved_across_switch () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  (* FP thread: set f0, spin across several quanta, verify f0 *)
  let prog =
    [
      I.Fmove_imm (42.0, 0);
      I.Move (I.Imm 20_000, I.Reg I.r9);
      I.Label "spin";
      I.Dbra (I.r9, I.To_label "spin");
      I.Fmove_imm (42.0, 1);
      I.Fop (I.Fsub, 1, 0); (* f0 = f0 - 42 = 0 iff preserved *)
      I.Move (I.Imm 1, I.Abs cell); (* mark completion *)
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  let _fp_thread = Thread.create k ~quantum_us:50 ~uses_fp:true ~entry ~segments:[ (cell, 16) ] () in
  (* competitor that also uses FP with a different value *)
  let prog2 =
    [
      I.Fmove_imm (7.0, 0);
      I.Move (I.Imm 2_000, I.Reg I.r9); (* exits well before the fp thread *)
      I.Label "spin";
      I.Dbra (I.r9, I.To_label "spin");
      I.Trap 0;
    ]
  in
  let entry2, _ = Asm.assemble m prog2 in
  let _t2 = Thread.create k ~quantum_us:50 ~uses_fp:true ~entry:entry2 () in
  (match Boot.go ~max_insns:50_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "fp thread completed" 1 (Machine.peek m cell);
  check_bool "f0 preserved across switches" true (Machine.get_freg m 0 = 0.0)

(* Regression pinning [Ctx.resynthesize_with_fp]: the FP trap
   resynthesizes the switch code mid-run, and every subsequent switch
   uses the new code — twin runs must agree cycle for cycle, and the
   kheal registry must track the replacement (newest region wins the
   name lookup, the whole store audits clean). *)
let test_fp_resynthesis_pins_switch_cycles () =
  let run () =
    let b = Boot.boot () in
    let k = b.Boot.kernel in
    let m = k.Kernel.machine in
    let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
    let prog =
      [
        I.Fmove_imm (2.5, 0); (* traps; switch code resynthesized *)
        I.Move (I.Imm 6_000, I.Reg I.r9);
        I.Label "spin"; (* then crosses many quanta on the new code *)
        I.Dbra (I.r9, I.To_label "spin");
        I.Move (I.Imm 1, I.Abs cell);
        I.Trap 0;
      ]
    in
    let entry, _ = Asm.assemble m prog in
    let t = Thread.create k ~quantum_us:50 ~entry ~segments:[ (cell, 16) ] () in
    let prog2 =
      [
        I.Move (I.Imm 6_000, I.Reg I.r8);
        I.Label "s";
        I.Dbra (I.r8, I.To_label "s");
        I.Trap 0;
      ]
    in
    let entry2, _ = Asm.assemble m prog2 in
    ignore (Thread.create k ~quantum_us:50 ~entry:entry2 ());
    (match Boot.go ~max_insns:50_000_000 b with
    | Machine.Halted -> ()
    | Machine.Insn_limit -> Alcotest.fail "did not halt");
    check_int "fp thread completed" 1 (Machine.peek m cell);
    check_bool "switch code resynthesized" true t.Kernel.uses_fp;
    (k, t, Machine.cycles m, Machine.insns_executed m)
  in
  let k1, t1, cy1, in1 = run () in
  let _, _, cy2, in2 = run () in
  check_int "twin runs agree on cycles" cy1 cy2;
  check_int "twin runs agree on instructions" in1 in2;
  let name = Printf.sprintf "ctx/t%d/sw_out" t1.Kernel.tid in
  (* the thread exited: destroy released its claim on the switch
     pages, and since the ready queue had patched their jmp slots they
     detached from the synthesis cache and their registry entries were
     reclaimed with the storage *)
  check_bool "dead thread's switch code left the registry" true
    (Kernel.find_region_by_name k1 name = None);
  check_int "registry audits clean after resynthesis" 0 (Kernel.audit_code k1)

(* ------------------------------------------------------------------ *)
(* Error traps *)

let test_fault_kills_thread () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let prog = [ I.Move (I.Imm 1, I.Abs 0x5_0000); I.Trap 0 ] (* out of map *) in
  let entry, _ = Asm.assemble m prog in
  let t = Thread.create k ~entry () in
  (match Boot.go ~max_insns:1_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  (match k.Kernel.fault_log with
  | [ { Kernel.f_tid = tid; f_reason = "bus_error"; _ } ] ->
    check_int "right thread died" t.Kernel.tid tid
  | _ -> Alcotest.fail "expected one bus_error in the fault log");
  check_bool "ready queue still valid" true (Ready_queue.verify k)

let test_div_zero_fault () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let prog =
    [ I.Move (I.Imm 0, I.Reg I.r1); I.Alu (I.Divu, I.Reg I.r1, I.r2); I.Trap 0 ]
  in
  let entry, _ = Asm.assemble m prog in
  let _t = Thread.create k ~entry () in
  (match Boot.go ~max_insns:1_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  match k.Kernel.fault_log with
  | [ { Kernel.f_reason = "div_zero"; _ } ] -> ()
  | _ -> Alcotest.fail "expected div_zero in the fault log"

(* Error signal to self (§4.3): a user-mode error procedure emulates
   an unimplemented instruction and resumes past it. *)
let test_error_trap_emulation () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  (* the user error procedure: count the fault, skip the bad insn *)
  let user_err_prog =
    [
      I.Pop I.r4; (* faulting PC *)
      I.Pop I.r5; (* faulting SR (unused) *)
      I.Alu_mem (I.Add, I.Imm 1, I.Abs cell);
      I.Alu (I.Add, I.Imm 1, I.r4); (* skip the unimplemented insn *)
      I.Jmp (I.To_reg I.r4);
    ]
  in
  let user_err, _ = Asm.assemble m user_err_prog in
  (* Set_ipl is privileged: from user mode it faults — our stand-in
     for an unimplemented instruction *)
  let prog =
    [
      I.Move (I.Imm 7, I.Reg I.r9);
      I.Set_ipl 3; (* privilege fault -> user error procedure *)
      I.Alu (I.Add, I.Imm 1, I.r9); (* resumes here *)
      I.Set_ipl 3; (* and again *)
      I.Alu (I.Add, I.Imm 1, I.r9);
      I.Move (I.Reg I.r9, I.Abs (cell + 1));
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  let t = Thread.create k ~entry ~segments:[ (cell, 16) ] () in
  let _handler = Thread.set_error_handler k t ~user_proc:user_err in
  (match Boot.go ~max_insns:1_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "no thread was killed" 0 (List.length k.Kernel.fault_log);
  check_int "both faults handled in user mode" 2 (Machine.peek m cell);
  check_int "execution resumed past each fault" 9 (Machine.peek m (cell + 1))

(* The error procedure also sees faulting memory accesses. *)
let test_error_trap_bus_error () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let user_err_prog =
    [
      I.Pop I.r4;
      I.Pop I.r5;
      I.Move (I.Reg I.r4, I.Abs cell); (* record the faulting PC *)
      I.Alu (I.Add, I.Imm 1, I.r4);
      I.Jmp (I.To_reg I.r4);
    ]
  in
  let user_err, _ = Asm.assemble m user_err_prog in
  let prog =
    [
      I.Label "bad";
      I.Move (I.Imm 5, I.Abs 0x70000); (* outside the quaspace *)
      I.Move (I.Imm 1, I.Abs (cell + 1));
      I.Trap 0;
    ]
  in
  let entry, syms = Asm.assemble m prog in
  let t = Thread.create k ~entry ~segments:[ (cell, 16) ] () in
  ignore (Thread.set_error_handler k t ~user_proc:user_err);
  (match Boot.go ~max_insns:1_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "faulting PC delivered to user mode" (Asm.symbol syms "bad")
    (Machine.peek m cell);
  check_int "program continued" 1 (Machine.peek m (cell + 1))

(* The xclock composition (§5.2): a passive clock quaject and a
   passive display, animated by a kernel pump thread. *)
let test_passive_passive_pump () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  (* clock: returns the microsecond time in r0 when called *)
  let clock, _ =
    Ksynth.install k ~name:"t/clock"
      [ I.Move (I.Abs Mmio_map.rtc_us, I.Reg I.r0); I.Rts ]
  in
  (* display: records the latest reading and counts paint calls *)
  let cells = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let display, _ =
    Ksynth.install k ~name:"t/display"
      [
        I.Move (I.Reg I.r1, I.Abs cells);
        I.Alu_mem (I.Add, I.Imm 1, I.Abs (cells + 1));
        I.Rts;
      ]
  in
  check_bool "interfacer analysis picks a pump" true
    (Quaject.connect
       ~producer:(Quaject.port Quaject.Passive)
       ~consumer:(Quaject.port Quaject.Passive)
     = Quaject.Pump_thread);
  let _pump = Synthesizer.pump k ~name:"t/xclock" ~source_entry:clock ~sink_entry:display in
  (* something else must exist so the run terminates *)
  let work =
    [
      I.Move (I.Imm 30_000, I.Reg I.r9);
      I.Label "spin";
      I.Dbra (I.r9, I.To_label "spin");
      I.Trap 0;
    ]
  in
  let wentry, _ = Asm.assemble m work in
  let _w = Thread.create k ~quantum_us:100 ~entry:wentry () in
  (match Boot.go ~max_insns:50_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "pump run stuck");
  let paints = Machine.peek m (cells + 1) in
  check_bool "the pump painted many readings" true (paints > 10);
  check_bool "the last reading is a plausible time" true
    (Machine.peek m cells > 0
    && Machine.peek m cells <= int_of_float (Machine.time_us m))

(* ------------------------------------------------------------------ *)
(* Asynchronous (signalling) queues (§2.3) *)

let test_async_queue_signals () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let aq = Async_queue.create k ~name:"t/aq" ~size:8 in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  (* the consumer thread: spins in user mode; its signal handler
     counts data-available edges *)
  let handler, _ =
    Asm.assemble m [ I.Alu_mem (I.Add, I.Imm 1, I.Abs cell); I.Rts ]
  in
  let spin_prog =
    [
      I.Move (I.Imm handler, I.Reg I.r1);
      I.Trap 8; (* register signal handler *)
      I.Label "spin";
      I.Cmp (I.Imm 2, I.Abs cell);
      I.B (I.Ne, I.To_label "spin");
      I.Trap 0;
    ]
  in
  let sentry, _ = Asm.assemble m spin_prog in
  let consumer = Thread.create k ~quantum_us:100 ~entry:sentry ~segments:[ (cell, 16) ] () in
  Async_queue.set_consumer aq consumer;
  (* the producer: a kernel service thread driving the async put;
     three puts back-to-back must raise exactly ONE signal (only the
     empty->nonempty edge), then after a drain-and-refill a second *)
  let producer_code =
    [
      (* let the consumer run first and register its handler *)
      I.Move (I.Imm 5000, I.Reg I.r9);
      I.Label "delay";
      I.Dbra (I.r9, I.To_label "delay");
      I.Move (I.Imm 11, I.Reg I.r1);
      I.Jsr (I.To_addr aq.Async_queue.aq_put); (* edge: signal 1 *)
      I.Move (I.Imm 22, I.Reg I.r1);
      I.Jsr (I.To_addr aq.Async_queue.aq_put); (* no edge *)
      I.Move (I.Imm 33, I.Reg I.r1);
      I.Jsr (I.To_addr aq.Async_queue.aq_put); (* no edge *)
      (* drain all three *)
      I.Jsr (I.To_addr aq.Async_queue.aq_get);
      I.Jsr (I.To_addr aq.Async_queue.aq_get);
      I.Jsr (I.To_addr aq.Async_queue.aq_get);
      (* refill: a second empty->nonempty edge *)
      I.Move (I.Imm 44, I.Reg I.r1);
      I.Jsr (I.To_addr aq.Async_queue.aq_put); (* edge: signal 2 *)
      I.Trap 0;
    ]
  in
  let pentry, _ = Ksynth.install k ~name:"t/aqproducer" producer_code in
  let producer = Thread.create k ~quantum_us:100 ~system:false ~entry:pentry () in
  Machine.poke m (producer.Kernel.base + Layout.Tte.off_regs + 16) Ctx.kernel_sr;
  (match Boot.go ~max_insns:50_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "async queue test stuck");
  check_int "exactly two data-available edges signalled" 2 (Machine.peek m cell)

(* A burst of signals while the handler is mid-flight coalesces: the
   handler runs once per delivery, never loses the thread's original
   continuation, and the thread exits cleanly. *)
let test_signal_burst_coalesces () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let handler, _ =
    Asm.assemble m [ I.Alu_mem (I.Add, I.Imm 1, I.Abs cell); I.Rts ]
  in
  let tprog =
    [
      I.Move (I.Imm handler, I.Reg I.r1);
      I.Trap 8;
      I.Label "spin";
      I.Cmp (I.Imm 5, I.Abs cell);
      I.B (I.Ne, I.To_label "spin");
      I.Move (I.Imm 1, I.Abs (cell + 1)); (* proof of clean return *)
      I.Trap 0;
    ]
  in
  let tentry, _ = Asm.assemble m tprog in
  let target = Thread.create k ~quantum_us:100 ~entry:tentry ~segments:[ (cell, 16) ] () in
  (* burst all five signals host-side while the target is switched out *)
  let burst = Machine.register_hcall m (fun _ ->
      for _ = 1 to 5 do
        ignore (Thread.deliver_signal k target)
      done)
  in
  let sprog =
    [
      I.Move (I.Imm 8000, I.Reg I.r9);
      I.Label "wait";
      I.Dbra (I.r9, I.To_label "wait");
      I.Hcall burst;
      I.Trap 0;
    ]
  in
  let sentry, _ = Asm.assemble m sprog in
  let _s = Thread.create k ~quantum_us:100 ~entry:sentry () in
  (match Boot.go ~max_insns:50_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "burst test stuck");
  check_int "handler ran once per delivery" 5 (Machine.peek m cell);
  check_int "original continuation restored" 1 (Machine.peek m (cell + 1))

let test_async_queue_full_status () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let aq = Async_queue.create k ~name:"t/aq2" ~size:4 in
  (* no registered threads: wrappers must still work, returning status *)
  for i = 1 to 3 do
    let st, _ = run_call m ~entry:aq.Async_queue.aq_put ~r1:i () in
    check_int "put ok" 1 st
  done;
  let st, _ = run_call m ~entry:aq.Async_queue.aq_put ~r1:9 () in
  check_int "full returns 0, never blocks" 0 st;
  for i = 1 to 3 do
    let st, v = run_call m ~entry:aq.Async_queue.aq_get () in
    check_int "get ok" 1 st;
    check_int "order" i v
  done;
  let st, _ = run_call m ~entry:aq.Async_queue.aq_get () in
  check_int "empty returns 0, never blocks" 0 st

(* ------------------------------------------------------------------ *)
(* The quaject creator and interfacer (§2.3) *)

let test_quaject_creator () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  (* a counter quaject: state in its data block, two operations *)
  let incr_t =
    Template.make ~name:"ctr_incr" ~params:[ "self"; "step" ] (fun p ->
        [
          I.Alu_mem (I.Add, I.Imm (p "step"), I.Abs (p "self" + 2));
          I.Rts;
        ])
  in
  let read_t =
    Template.make ~name:"ctr_read" ~params:[ "self" ] (fun p ->
        [ I.Move (I.Abs (p "self" + 2), I.Reg I.r0); I.Rts ])
  in
  let q =
    Synthesizer.create k ~name:"counter" ~data_words:8
      [ ("incr", incr_t, [ ("step", 5) ]); ("read", read_t, []) ]
  in
  (* drive it through the operation table in memory (one indirection) *)
  let frag =
    [
      I.Jsr (I.To_mem (I.Abs (Synthesizer.op_slot q 0))); (* incr *)
      I.Jsr (I.To_mem (I.Abs (Synthesizer.op_slot q 0))); (* incr *)
      I.Jsr (I.To_mem (I.Abs (Synthesizer.op_slot q 1))); (* read *)
      I.Move (I.Reg I.r0, I.Abs 0x500);
      I.Halt;
    ]
  in
  let entry, _ = Asm.assemble m frag in
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp 0xE00;
  Machine.set_pc m entry;
  ignore (Machine.run ~max_insns:1_000 m);
  check_int "two increments of the folded step" 10 (Machine.peek m 0x500);
  check_int "op table linked" (Synthesizer.op_entry q "incr")
    (Machine.peek m (Synthesizer.op_slot q 0))

let test_interfacer_collapses_call () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let consumer, _ =
    Ksynth.install k ~name:"t/consume"
      [ I.Alu_mem (I.Add, I.Imm 1, I.Abs 0x501); I.Rts ]
  in
  (* active producer, passive single consumer: collapses to a call *)
  let cn =
    Synthesizer.interface k ~name:"t/link"
      ~producer:(Quaject.port Quaject.Active)
      ~consumer:(Quaject.port Quaject.Passive)
      ~consumer_entry:consumer ()
  in
  check_bool "procedure call chosen" true
    (cn.Synthesizer.cn_connector = Quaject.Procedure_call);
  let frag = [ I.Jsr (I.To_addr cn.Synthesizer.cn_call); I.Halt ] in
  let entry, _ = Asm.assemble m frag in
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp 0xE00;
  Machine.set_pc m entry;
  ignore (Machine.run ~max_insns:100 m);
  check_int "collapsed call reached the consumer" 1 (Machine.peek m 0x501)

let test_interfacer_queues_active_pair () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let dummy, _ = Ksynth.install k ~name:"t/dummy" [ I.Rts ] in
  let cn =
    Synthesizer.interface k ~name:"t/link2"
      ~producer:(Quaject.port ~mult:Quaject.Multiple Quaject.Active)
      ~consumer:(Quaject.port Quaject.Active)
      ~consumer_entry:dummy ()
  in
  check_bool "MP-SC queue chosen" true
    (cn.Synthesizer.cn_connector = Quaject.Queue_mpsc);
  match cn.Synthesizer.cn_queue with
  | Some q ->
    (* the producer-side call is the queue's put *)
    let st, _ = run_call m ~entry:cn.Synthesizer.cn_call ~r1:42 () in
    check_int "put through the connection" 1 st;
    check_int "item queued" 1 (Kqueue.host_length k q);
    check_bool "item value" true (Kqueue.host_get k q = Some 42)
  | None -> Alcotest.fail "queued connection has no queue"

(* ------------------------------------------------------------------ *)
(* Property: the synthesized queue code agrees with a FIFO model on
   random put/get sequences (one machine per flavour, fresh queue per
   case). *)

let kqueue_model_prop name create =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let counter = ref 0 in
  QCheck.Test.make ~name ~count:40
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 5 60)
           (frequency [ (3, map (fun v -> `Put (v + 1)) (int_bound 999)); (2, return `Get) ])))
    (fun ops ->
      incr counter;
      let q = create k ~name:(Printf.sprintf "prop/%s%d" name !counter) ~size:8 in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | `Put v ->
            let st, _ = run_call m ~entry:q.Kqueue.q_put ~r1:v () in
            let fits = Queue.length model < 7 in
            if st = 1 then Queue.push v model;
            (st = 1) = fits
          | `Get -> (
            let st, item = run_call m ~entry:q.Kqueue.q_get () in
            match (st, Queue.is_empty model) with
            | 0, true -> true
            | 1, false -> item = Queue.pop model
            | _ -> false))
        ops)

let kqueue_of_kind kind k ~name ~size = Kqueue.create ~kind k ~name ~size
let prop_spsc_model = kqueue_model_prop "spsc vm queue matches FIFO model" (kqueue_of_kind Kqueue.Spsc)
let prop_mpsc_model = kqueue_model_prop "mpsc vm queue matches FIFO model" (kqueue_of_kind Kqueue.Mpsc)
let prop_spmc_model = kqueue_model_prop "spmc vm queue matches FIFO model" (kqueue_of_kind Kqueue.Spmc)
let prop_mpmc_model = kqueue_model_prop "mpmc vm queue matches FIFO model" (kqueue_of_kind Kqueue.Mpmc)

(* ------------------------------------------------------------------ *)
(* Stream graph (§2.1) *)

let test_stream_graph_pipeline () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let n = 64 in
  let result = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let generator ~wfd =
    [
      I.Move (I.Imm 1, I.Reg I.r9);
      I.Label "loop";
      I.Move (I.Reg I.r9, I.Abs cell);
      I.Move (I.Imm wfd, I.Reg I.r1);
      I.Move (I.Imm cell, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 2;
      I.Alu (I.Add, I.Imm 1, I.r9);
      I.Cmp (I.Imm (n + 1), I.Reg I.r9);
      I.B (I.Ne, I.To_label "loop");
      I.Trap 0;
    ]
  in
  let accumulator ~rfd =
    [
      I.Move (I.Imm 0, I.Reg I.r9);
      I.Move (I.Imm n, I.Reg I.r10);
      I.Label "loop";
      I.Move (I.Imm rfd, I.Reg I.r1);
      I.Move (I.Imm result, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 1;
      I.Alu (I.Add, I.Abs result, I.r9);
      I.Alu (I.Sub, I.Imm 1, I.r10);
      I.B (I.Ne, I.To_label "loop");
      I.Move (I.Reg I.r9, I.Abs result);
      I.Trap 0;
    ]
  in
  let built =
    Stream_graph.pipeline b.Boot.vfs
      [
        Stream_graph.stage ~segments:[ (cell, 16) ] (Stream_graph.Head generator);
        Stream_graph.stage ~segments:[ (result, 16) ] (Stream_graph.Tail accumulator);
      ]
  in
  check_int "two nodes" 2 (List.length built.Stream_graph.sg_threads);
  check_int "one arc" 1 (List.length built.Stream_graph.sg_pipes);
  (match built.Stream_graph.sg_connectors with
  | [ Quaject.Queue_spsc ] -> ()
  | _ -> Alcotest.fail "interfacer should pick SP-SC for single-single");
  (match Boot.go ~max_insns:100_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "pipeline did not finish");
  check_int "sum arrived" (n * (n + 1) / 2) (Machine.peek m result)

let test_stream_graph_four_stages () =
  (* generator -> +1 -> *2 -> sum over a 4-node pipeline *)
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let n = 40 in
  let result = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let c1 = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let c2 = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let c3 = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let gen ~wfd =
    [
      I.Move (I.Imm 1, I.Reg I.r9);
      I.Label "loop";
      I.Move (I.Reg I.r9, I.Abs c1);
      I.Move (I.Imm wfd, I.Reg I.r1);
      I.Move (I.Imm c1, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 2;
      I.Alu (I.Add, I.Imm 1, I.r9);
      I.Cmp (I.Imm (n + 1), I.Reg I.r9);
      I.B (I.Ne, I.To_label "loop");
      I.Trap 0;
    ]
  in
  let xform cell f ~rfd ~wfd =
    [
      I.Move (I.Imm n, I.Reg I.r9);
      I.Label "loop";
      I.Move (I.Imm rfd, I.Reg I.r1);
      I.Move (I.Imm cell, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 1;
      I.Move (I.Abs cell, I.Reg I.r10);
    ]
    @ f
    @ [
        I.Move (I.Reg I.r10, I.Abs cell);
        I.Move (I.Imm wfd, I.Reg I.r1);
        I.Move (I.Imm cell, I.Reg I.r2);
        I.Move (I.Imm 1, I.Reg I.r3);
        I.Trap 2;
        I.Alu (I.Sub, I.Imm 1, I.r9);
        I.B (I.Ne, I.To_label "loop");
        I.Trap 0;
      ]
  in
  let sum ~rfd =
    [
      I.Move (I.Imm 0, I.Reg I.r9);
      I.Move (I.Imm n, I.Reg I.r10);
      I.Label "loop";
      I.Move (I.Imm rfd, I.Reg I.r1);
      I.Move (I.Imm result, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 1;
      I.Alu (I.Add, I.Abs result, I.r9);
      I.Alu (I.Sub, I.Imm 1, I.r10);
      I.B (I.Ne, I.To_label "loop");
      I.Move (I.Reg I.r9, I.Abs result);
      I.Trap 0;
    ]
  in
  let built =
    Stream_graph.pipeline b.Boot.vfs
      [
        Stream_graph.stage ~segments:[ (c1, 16) ] (Stream_graph.Head gen);
        Stream_graph.stage ~segments:[ (c2, 16) ]
          (Stream_graph.Middle (xform c2 [ I.Alu (I.Add, I.Imm 1, I.r10) ]));
        Stream_graph.stage ~segments:[ (c3, 16) ]
          (Stream_graph.Middle (xform c3 [ I.Alu (I.Mul, I.Imm 2, I.r10) ]));
        Stream_graph.stage ~segments:[ (result, 16) ] (Stream_graph.Tail sum);
      ]
  in
  check_int "four nodes" 4 (List.length built.Stream_graph.sg_threads);
  check_int "three arcs" 3 (List.length built.Stream_graph.sg_pipes);
  (match Boot.go ~max_insns:200_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "four-stage pipeline stuck");
  (* sum of 2*(i+1) for i in 1..n *)
  let expected = 2 * ((n * (n + 1) / 2) + n) in
  check_int "transformed sum" expected (Machine.peek m result)

let test_stream_graph_shapes () =
  let b = Boot.boot () in
  let vfs = b.Boot.vfs in
  let head = Stream_graph.stage (Stream_graph.Head (fun ~wfd -> ignore wfd; [])) in
  let tail = Stream_graph.stage (Stream_graph.Tail (fun ~rfd -> ignore rfd; [])) in
  (try
     ignore (Stream_graph.pipeline vfs [ head ]);
     Alcotest.fail "single stage accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Stream_graph.pipeline vfs [ tail; head ]);
     Alcotest.fail "reversed pipeline accepted"
   with Invalid_argument _ -> ());
  check_bool "fan-in picks MP-SC" true
    (Stream_graph.connect_many ~producers:3 ~consumers:1 = Quaject.Queue_mpsc);
  check_bool "fan-out picks SP-MC" true
    (Stream_graph.connect_many ~producers:1 ~consumers:2 = Quaject.Queue_spmc)

(* ------------------------------------------------------------------ *)
(* Ready queue churn property *)

let prop_ready_queue_churn =
  QCheck.Test.make ~name:"ready queue consistent under random churn" ~count:60
    (QCheck.make QCheck.Gen.(list_size (int_range 5 40) (int_bound 9)))
    (fun ops ->
      let b = Boot.boot () in
      let k = b.Boot.kernel in
      let spin, _ =
        Ksynth.install k ~name:"churn/spin"
          [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
      in
      let threads = Array.init 5 (fun _ -> Thread.create k ~entry:spin ()) in
      List.iter
        (fun op ->
          let t = threads.(op mod 5) in
          if op < 5 then Thread.stop k t else Thread.start k t)
        ops;
      Ready_queue.verify k
      && List.for_all
           (fun t -> Ready_queue.in_queue t || t.Kernel.state = Kernel.Stopped)
           (Array.to_list threads))

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let test_scheduler_proportionality () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let sched = Scheduler.install k ~epoch_us:1_000 ~min_quantum:100 ~max_quantum:900 () in
  let spin, _ =
    Ksynth.install k ~name:"sched/spin"
      [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  let busy = Thread.create k ~quantum_us:200 ~entry:spin () in
  let io = Thread.create k ~quantum_us:200 ~entry:spin () in
  (* simulate I/O activity on [io]'s gauge, then run a few epochs *)
  let m = k.Kernel.machine in
  start_machine k;
  (* keep the io thread's gauge hot through several whole epochs *)
  let target = Scheduler.epochs sched + 4 in
  while Scheduler.epochs sched < target do
    Machine.poke m
      (io.Kernel.base + Layout.Tte.off_gauge)
      (Machine.peek m (io.Kernel.base + Layout.Tte.off_gauge) + 50);
    ignore (Machine.run ~max_insns:1_000 m)
  done;
  check_bool "epochs ran" true (Scheduler.epochs sched >= 2);
  check_bool "io thread got a bigger quantum" true
    (io.Kernel.quantum_us > busy.Kernel.quantum_us);
  let share_io = Scheduler.cpu_share sched io in
  let share_busy = Scheduler.cpu_share sched busy in
  check_bool "cpu share follows quanta" true (share_io > share_busy)

let test_quantum_patching () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let spin, _ =
    Ksynth.install k ~name:"qp/spin" [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  let t = Thread.create k ~quantum_us:200 ~entry:spin () in
  Ctx.set_quantum k t 555;
  check_int "quantum field" 555 t.Kernel.quantum_us;
  match Machine.read_code k.Kernel.machine t.Kernel.quantum_slot with
  | I.Move (I.Imm 555, I.Abs a) when a = Mmio_map.timer_alarm -> ()
  | _ -> Alcotest.fail "quantum immediate not patched in sw_in"

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "synthesis"
    [
      ( "kqueue",
        [
          Alcotest.test_case "spsc synthesized code" `Quick test_kqueue_spsc;
          Alcotest.test_case "mpsc wrap-around" `Quick test_kqueue_mpsc_wrap;
          Alcotest.test_case "multi-insert atomicity" `Quick test_kqueue_put_many_atomic;
          Alcotest.test_case "interrupt producer vs thread consumer" `Quick
            test_kqueue_interrupt_producer;
          Alcotest.test_case "spmc consumer CAS race" `Quick
            test_kqueue_spmc_consumer_race;
          Alcotest.test_case "mpmc flag guard on wrap" `Quick
            test_kqueue_mpmc_flag_guard;
        ] );
      ( "pipe",
        [
          Alcotest.test_case "two threads stream with blocking" `Quick
            test_pipe_two_threads;
          Alcotest.test_case "EOF after writer close" `Quick test_pipe_eof;
        ] );
      ("signal", [ Alcotest.test_case "delivery to running thread" `Quick test_signal_delivery ]);
      ("pipe-property", qcheck [ prop_pipe_random_chunks ]);
      ( "fp",
        [
          Alcotest.test_case "first FP insn resynthesizes" `Quick test_fp_resynthesis;
          Alcotest.test_case "FP state survives switches" `Quick
            test_fp_state_preserved_across_switch;
          Alcotest.test_case "resynthesis pins switch cycles" `Quick
            test_fp_resynthesis_pins_switch_cycles;
        ] );
      ( "faults",
        [
          Alcotest.test_case "bus error kills thread" `Quick test_fault_kills_thread;
          Alcotest.test_case "divide by zero" `Quick test_div_zero_fault;
          Alcotest.test_case "user-mode emulation of faulting insns" `Quick
            test_error_trap_emulation;
          Alcotest.test_case "bus-error PC delivered to user mode" `Quick
            test_error_trap_bus_error;
        ] );
      ( "pump",
        [ Alcotest.test_case "xclock: passive-passive via pump" `Quick
            test_passive_passive_pump ] );
      ( "async-queue",
        [
          Alcotest.test_case "signals on edges only" `Quick test_async_queue_signals;
          Alcotest.test_case "status instead of blocking" `Quick
            test_async_queue_full_status;
          Alcotest.test_case "signal bursts coalesce" `Quick
            test_signal_burst_coalesces;
        ] );
      ( "synthesizer",
        [
          Alcotest.test_case "creator: allocate/factorize/link" `Quick
            test_quaject_creator;
          Alcotest.test_case "interfacer collapses to a call" `Quick
            test_interfacer_collapses_call;
          Alcotest.test_case "interfacer queues active pairs" `Quick
            test_interfacer_queues_active_pair;
        ] );
      ( "kqueue-model",
        qcheck [ prop_spsc_model; prop_mpsc_model; prop_spmc_model; prop_mpmc_model ] );
      ( "stream-graph",
        [
          Alcotest.test_case "two-stage pipeline" `Quick test_stream_graph_pipeline;
          Alcotest.test_case "shape validation + fan analysis" `Quick
            test_stream_graph_shapes;
          Alcotest.test_case "four-stage transform pipeline" `Quick
            test_stream_graph_four_stages;
        ] );
      ("ready-queue", qcheck [ prop_ready_queue_churn ]);
      ( "scheduler",
        [
          Alcotest.test_case "quanta follow I/O rate" `Quick test_scheduler_proportionality;
          Alcotest.test_case "quantum code patching" `Quick test_quantum_patching;
        ] );
    ]
