(* kfault tests: forced-CAS semantics and the Cas atomicity contract,
   interrupt-boundary behaviour (nested same-level delivery, waking
   Stop_wait), the double-fault path, bounded fault logging, queue
   overflow policies, the host-queue fault seam, plan determinism, the
   interleaving explorer, and the recovery quajects (watchdog, disk
   retry). *)

open Quamachine
open Synthesis
module I = Insn
module E = Repro_harness.Explorer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let machine () = Machine.create ~mem_words:(1 lsl 16) Cost.sun3_emulation

let run_to_halt ?(max_insns = 100_000) m entry =
  Machine.set_halted m false;
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp 0x8000;
  Machine.set_pc m entry;
  match Machine.run ~max_insns m with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "fragment did not halt"

(* ------------------------------------------------------------------ *)
(* Forced CAS failure: the machine-level kfault primitive *)

let cas_frag ~cell ~marker =
  [
    I.Move (I.Imm 5, I.Reg I.r6); (* expected *)
    I.Move (I.Imm 9, I.Reg I.r7); (* replacement *)
    I.Cas (I.r6, I.r7, I.Abs cell);
    I.B (I.Ne, I.To_label "failed");
    I.Move (I.Imm 1, I.Abs marker);
    I.Halt;
    I.Label "failed";
    I.Move (I.Imm 2, I.Abs marker);
    I.Halt;
  ]

let test_cas_forced_failure () =
  let m = machine () in
  let cell = 0x900 and marker = 0x910 in
  Machine.poke m cell 5;
  let entry, _ = Asm.assemble m (cas_frag ~cell ~marker) in
  let hooks = ref 0 in
  Machine.set_cas_fail m ~at:1 ~hook:(fun _ -> incr hooks);
  check_bool "armed" true (Machine.cas_fail_armed m);
  run_to_halt m entry;
  (* expected = current, so only the veto can make this Cas fail *)
  check_int "Z reported clear" 2 (Machine.peek m marker);
  check_int "store suppressed" 5 (Machine.peek m cell);
  check_int "rc holds the loaded value" 5 (Machine.get_reg m I.r6);
  check_int "hook fired once" 1 !hooks;
  check_int "one Cas executed" 1 (Machine.cas_executed m);
  check_bool "one-shot: disarmed after firing" false (Machine.cas_fail_armed m);
  (* the same Cas un-vetoed succeeds: failure was injection, not state *)
  let entry2, _ = Asm.assemble m (cas_frag ~cell ~marker) in
  run_to_halt m entry2;
  check_int "unforced Cas succeeds" 1 (Machine.peek m marker);
  check_int "store performed" 9 (Machine.peek m cell);
  check_int "hook not re-fired" 1 !hooks

let test_cas_fail_index_contract () =
  let m = machine () in
  let cell = 0x900 in
  let entry, _ = Asm.assemble m [ I.Cas (I.r6, I.r7, I.Abs cell); I.Halt ] in
  run_to_halt m entry;
  check_int "one Cas retired" 1 (Machine.cas_executed m);
  (* arming a failure at an index already executed is a caller bug *)
  Alcotest.check_raises "past index rejected"
    (Invalid_argument "set_cas_fail: index already passed") (fun () ->
      Machine.set_cas_fail m ~at:1 ~hook:(fun _ -> ()));
  check_bool "still disarmed" false (Machine.cas_fail_armed m)

(* Cas is atomic with respect to interrupts: even one raised *by* the
   forced failure is only delivered at the next instruction boundary,
   and the handler can never observe a torn load-compare-store. *)
let test_cas_atomic_vs_interrupt () =
  let m = machine () in
  let cell = 0x900 and seen = 0x904 and count = 0x908 in
  Machine.poke m cell 5;
  let h2, _ =
    Asm.assemble m
      [
        I.Move (I.Abs cell, I.Abs seen);
        I.Alu_mem (I.Add, I.Imm 1, I.Abs count);
        I.Rte;
      ]
  in
  Machine.poke m (I.Vector.autovector 2) h2;
  Machine.set_cas_fail m ~at:1 ~hook:(fun mm ->
      Machine.post_interrupt mm ~source:"test" ~level:2
        ~vector:(I.Vector.autovector 2));
  let entry, _ =
    Asm.assemble m
      [
        I.Set_ipl 0;
        I.Move (I.Imm 5, I.Reg I.r6);
        I.Move (I.Imm 9, I.Reg I.r7);
        I.Label "retry";
        I.Cas (I.r6, I.r7, I.Abs cell);
        I.B (I.Ne, I.To_label "retry");
        I.Halt;
      ]
  in
  run_to_halt m entry;
  check_int "handler ran exactly once" 1 (Machine.peek m count);
  (* the vetoed Cas retired whole before delivery: its store was
     suppressed, so the handler saw the pre-Cas value, never a torn
     intermediate *)
  check_int "handler saw the pre-store value" 5 (Machine.peek m seen);
  check_int "retry after the veto succeeded" 9 (Machine.peek m cell)

(* ------------------------------------------------------------------ *)
(* Interrupt boundaries *)

(* A same-level interrupt posted while its handler runs must pend
   until the Rte restores the pre-interrupt IPL — never nest. *)
let test_same_level_interrupt_pends () =
  let m = machine () in
  let log = 0x900 in
  let append id =
    [
      I.Push (I.Reg I.r4);
      I.Move (I.Abs (log + 7), I.Reg I.r4);
      I.Alu (I.Add, I.Imm log, I.r4);
      I.Move (I.Imm id, I.Ind I.r4);
      I.Alu_mem (I.Add, I.Imm 1, I.Abs (log + 7));
      I.Pop I.r4;
    ]
  in
  let posted = ref false in
  let repost =
    Machine.register_hcall m (fun mm ->
        if not !posted then begin
          posted := true;
          Machine.post_interrupt mm ~level:4 ~vector:(I.Vector.autovector 4)
        end)
  in
  let h4, _ =
    Asm.assemble m
      (append 4 @ [ I.Hcall repost; I.Nop; I.Nop ] @ append 44 @ [ I.Rte ])
  in
  Machine.poke m (I.Vector.autovector 4) h4;
  let main, _ =
    Asm.assemble m
      ([ I.Set_ipl 0 ] @ List.init 8 (fun _ -> I.Nop) @ [ I.Halt ])
  in
  Machine.post_interrupt m ~level:4 ~vector:(I.Vector.autovector 4);
  run_to_halt m main;
  check_int "four log entries" 4 (Machine.peek m (log + 7));
  check_int "first entry" 4 (Machine.peek m log);
  (* 44 before the second 4: the handler finished before re-delivery *)
  check_int "first handler ran to completion" 44 (Machine.peek m (log + 1));
  check_int "pended delivery after Rte" 4 (Machine.peek m (log + 2));
  check_int "second handler completed" 44 (Machine.peek m (log + 3))

(* An interrupt wakes Stop_wait; simulated time fast-forwards to the
   device event instead of busy-stepping. *)
let test_interrupt_resumes_stop_wait () =
  let m = machine () in
  let marker = 0x900 in
  let h2, _ = Asm.assemble m [ I.Rte ] in
  Machine.poke m (I.Vector.autovector 2) h2;
  let dev = ref None in
  let d =
    Machine.add_device m ~name:"kick" ~due:200 ~tick:(fun mm ->
        Machine.post_interrupt mm ~source:"kick" ~level:2
          ~vector:(I.Vector.autovector 2);
        match !dev with Some d -> Machine.device_idle mm d | None -> ())
  in
  dev := Some d;
  let entry, _ =
    Asm.assemble m
      [ I.Set_ipl 0; I.Stop_wait; I.Move (I.Imm 1, I.Abs marker); I.Halt ]
  in
  run_to_halt m entry;
  check_int "resumed past Stop_wait" 1 (Machine.peek m marker);
  check_bool "time advanced to the device event" true (Machine.cycles m >= 200)

(* ------------------------------------------------------------------ *)
(* Double faults *)

let test_double_fault_halts_machine () =
  let m = machine () in
  (* ruin the supervisor stack, then fault: the exception entry's own
     push faults and there is no state left to recover with *)
  let entry, _ =
    Asm.assemble m
      [ I.Move (I.Imm 0, I.Reg I.sp); I.Move (I.Imm 1, I.Abs 0x5_0000) ]
  in
  Machine.set_supervisor m true;
  Machine.set_pc m entry;
  (match Machine.run ~max_insns:1_000 m with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "runaway after double fault");
  check_bool "double fault recorded" true (Machine.double_faulted m);
  check_bool "machine halted" true (Machine.halted m)

let test_boot_logs_double_fault () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  (* wreck the thread's *supervisor* stack from inside user code (it
     is the inactive stack pointer while user code runs), then bus
     error: fault entry pushes onto the ruined stack and double
     faults *)
  let wreck = Machine.register_hcall m (fun mm -> Machine.set_other_sp mm 0) in
  let prog = [ I.Hcall wreck; I.Move (I.Imm 1, I.Abs 0x5_0000) ] in
  let entry, _ = Asm.assemble m prog in
  let _t = Thread.create k ~entry () in
  (match Boot.go ~max_insns:1_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_bool "machine double-faulted" true (Machine.double_faulted m);
  check_bool "post-mortem entry in the fault log" true
    (List.exists
       (fun e -> e.Kernel.f_reason = "double_fault")
       k.Kernel.fault_log);
  check_bool "counted in faults_total" true (Kernel.faults_total k >= 1)

(* ------------------------------------------------------------------ *)
(* Bounded fault log *)

let test_fault_log_bounded () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let n = Kernel.fault_log_cap + 36 in
  for i = 1 to n do
    Kernel.log_fault k ~tid:i ~reason:"test_fault"
  done;
  check_int "log capped" Kernel.fault_log_cap (List.length k.Kernel.fault_log);
  check_int "length counter agrees" Kernel.fault_log_cap k.Kernel.fault_log_len;
  check_int "evictions counted" 36 k.Kernel.fault_dropped;
  check_int "every fault counted" n (Kernel.faults_total k);
  check_int "metrics counter agrees" n
    (Metrics.read k.Kernel.metrics "kernel.faults_total");
  (* newest first: the last tid logged heads the list *)
  match k.Kernel.fault_log with
  | { Kernel.f_tid; _ } :: _ -> check_int "newest first" n f_tid
  | [] -> Alcotest.fail "empty fault log"

(* ------------------------------------------------------------------ *)
(* Queue overflow policies *)

let run_call m ~entry ?(r1 = 0) () =
  let frag = [ I.Jsr (I.To_addr entry); I.Halt ] in
  let start, _ = Asm.assemble m frag in
  Machine.set_halted m false;
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp 0xE00;
  Machine.set_reg m I.r1 r1;
  Machine.set_pc m start;
  (match Machine.run ~max_insns:10_000 m with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "run_call: did not return");
  (Machine.get_reg m I.r0, Machine.get_reg m I.r1)

let test_overflow_fail () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let q =
    Kqueue.create ~kind:Kqueue.Spsc ~overflow:Kqueue.Fail k ~name:"t/fail"
      ~size:4
  in
  for i = 1 to 3 do
    check_int "put ok" 1 (fst (run_call m ~entry:q.Kqueue.q_put ~r1:i ()))
  done;
  check_int "full put fails" 0 (fst (run_call m ~entry:q.Kqueue.q_put ~r1:99 ()));
  check_int "nothing dropped" 0 (Kqueue.dropped k q)

let test_overflow_drop () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let q =
    Kqueue.create ~kind:Kqueue.Spsc ~overflow:Kqueue.Drop k ~name:"t/drop"
      ~size:4
  in
  (* five puts into three slots: all report success, two are counted
     away — the producer never observes the overflow *)
  for i = 1 to 5 do
    check_int "put reports ok" 1
      (fst (run_call m ~entry:q.Kqueue.q_put ~r1:(i * 10) ()))
  done;
  check_int "two items dropped" 2 (Kqueue.dropped k q);
  check_int "three retained" 3 (Kqueue.host_length k q);
  for i = 1 to 3 do
    let st, v = run_call m ~entry:q.Kqueue.q_get () in
    check_int "get ok" 1 st;
    check_int "oldest retained, not newest" (i * 10) v
  done

let test_overflow_block () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let q =
    Kqueue.create ~kind:Kqueue.Spsc ~overflow:Kqueue.Block k ~name:"t/block"
      ~size:4
  in
  for i = 1 to 3 do
    ignore (run_call m ~entry:q.Kqueue.q_put ~r1:(i * 10) ())
  done;
  (* the fourth put spins: no slot, so the fragment cannot halt *)
  let frag = [ I.Jsr (I.To_addr q.Kqueue.q_put); I.Halt ] in
  let start, _ = Asm.assemble m frag in
  Machine.set_halted m false;
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp 0xE00;
  Machine.set_reg m I.r1 40;
  Machine.set_pc m start;
  (match Machine.run ~max_insns:2_000 m with
  | Machine.Insn_limit -> ()
  | Machine.Halted -> Alcotest.fail "blocked put returned with no space");
  (* a consumer frees a slot out from under the spinner *)
  check_int "drained oldest" 10
    (match Kqueue.host_get k q with Some v -> v | None -> -1);
  (match Machine.run ~max_insns:10_000 m with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "unblocked put still spinning");
  check_int "blocked put finally succeeded" 1 (Machine.get_reg m I.r0);
  check_int "item landed" 3 (Kqueue.host_length k q)

(* ------------------------------------------------------------------ *)
(* Stray hardware interrupts (a kfault-found bug): the handler for an
   unclaimed autovector must preserve every register — the trap
   default's -1-in-r0 convention would corrupt the interrupted
   thread. *)

let test_stray_irq_preserves_registers () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let stray = k.Kernel.default_vectors.(I.Vector.autovector 1) in
  check_bool "level 1 has a handler" true (stray <> 0);
  (* wire the boot-installed stray handler into the live (vbr = 0)
     vector table and take the interrupt mid-fragment *)
  Machine.poke m (I.Vector.autovector 1) stray;
  let post =
    Machine.register_hcall m (fun mm ->
        Machine.post_interrupt mm ~source:"stray" ~level:1
          ~vector:(I.Vector.autovector 1))
  in
  let entry, _ =
    Asm.assemble m
      [
        I.Set_ipl 0;
        I.Move (I.Imm 7, I.Reg I.r0);
        I.Move (I.Imm 8, I.Reg I.r1);
        I.Hcall post;
        I.Nop;
        I.Halt;
      ]
  in
  Machine.set_halted m false;
  run_to_halt m entry;
  check_int "r0 preserved across the stray irq" 7 (Machine.get_reg m I.r0);
  check_int "r1 preserved across the stray irq" 8 (Machine.get_reg m I.r1)

(* ------------------------------------------------------------------ *)
(* Host-queue fault seam *)

let test_oq_fault_seam () =
  check_bool "disarmed by default" false (Oq.Fault.armed ());
  Oq.Fault.arm ~seed:3 ~every:5;
  let q = Oq.Mpsc.create 64 in
  for i = 0 to 999 do
    Oq.Mpsc.put q i;
    check_int "fifo under CAS vetoes" i (Oq.Mpsc.get q)
  done;
  check_bool "vetoes were delivered" true (Oq.Fault.forced () > 0);
  Oq.Fault.disarm ();
  check_bool "disarmed" false (Oq.Fault.armed ())

(* ------------------------------------------------------------------ *)
(* Plan and explorer determinism *)

let test_plan_deterministic () =
  let a = Fault_inject.compile 7 and b = Fault_inject.compile 7 in
  check_bool "same seed, same events" true
    (a.Fault_inject.events = b.Fault_inject.events);
  check_bool "same seed, same cas gaps" true
    (a.Fault_inject.cas_gaps = b.Fault_inject.cas_gaps);
  let c = Fault_inject.compile 8 in
  check_bool "different seed, different plan" true
    (a.Fault_inject.events <> c.Fault_inject.events)

let test_explorer_deterministic () =
  let a = E.run_queue ~kind:Kqueue.Spmc ~seed:5 () in
  let b = E.run_queue ~kind:Kqueue.Spmc ~seed:5 () in
  check_bool "no violations" true (a.E.x_violations = []);
  check_int "same consumed" a.E.x_consumed b.E.x_consumed;
  check_int "same preemptions" a.E.x_preemptions b.E.x_preemptions;
  check_int "same injected faults" a.E.x_injected b.E.x_injected;
  check_int "same instruction count" a.E.x_insns b.E.x_insns;
  check_int "same cycle count" a.E.x_cycles b.E.x_cycles

let test_explorer_smoke () =
  List.iter
    (fun r ->
      Alcotest.(check (list string))
        (E.kind_name r.E.x_kind ^ " invariants hold")
        [] r.E.x_violations;
      check_int
        (E.kind_name r.E.x_kind ^ " all items consumed")
        (r.E.x_producers * r.E.x_items)
        r.E.x_consumed)
    (E.run_all ~items:16 ~seed:2 ())

(* ------------------------------------------------------------------ *)
(* kheal: code-region corruption, audit, and repair by resynthesis *)

(* A quaject with one op: a region that never executes on its own, so
   only the audit channel (or a direct call) can reach it. *)
let tick_quaject k =
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 4 in
  let template =
    Template.make ~name:"tick" ~params:[ "cell" ] (fun p ->
        [ I.Alu_mem (I.Add, I.Imm 1, I.Abs (p "cell")); I.Rts ])
  in
  let qj =
    Synthesizer.create k ~name:"heal" ~data_words:4
      [ ("tick", template, [ ("cell", cell) ]) ]
  in
  (qj, cell)

let region_exn k name =
  match Kernel.find_region_by_name k name with
  | Some r -> r
  | None -> Alcotest.failf "region %s not registered" name

let read_region m r =
  Array.init r.Kernel.cr_len (fun i ->
      Machine.read_code m (r.Kernel.cr_entry + i))

let test_code_registry () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  ignore (Kqueue.create ~kind:Kqueue.Mpmc k ~name:"heal/q" ~size:8);
  let idle, _ = Asm.assemble m [ I.Rts ] in
  let t = Thread.create k ~entry:idle () in
  ignore (tick_quaject k);
  (* every emitted region kind is on the books, clean, and audited *)
  List.iter
    (fun name -> ignore (region_exn k name))
    [
      "heal/q/put";
      "heal/q/get";
      Printf.sprintf "ctx/t%d/sw_out" t.Kernel.tid;
      Printf.sprintf "ctx/t%d/sw_in" t.Kernel.tid;
      "quaject/heal/tick";
      "fault/illegal";
    ];
  List.iter
    (fun r ->
      check_bool (r.Kernel.cr_name ^ " clean") false (Kernel.region_dirty k r))
    (Kernel.code_regions k);
  check_int "audit of a clean kernel repairs nothing" 0 (Kernel.audit_code k);
  check_int "code state hash is stable" (Kernel.code_state_hash k)
    (Kernel.code_state_hash k)

let test_corrupt_detect_repair () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let q = Kqueue.create ~kind:Kqueue.Spsc k ~name:"heal/q" ~size:8 in
  let r = region_exn k "heal/q/put" in
  let pristine = read_region m r in
  let h0 = Kernel.code_state_hash k in
  Fault_inject.corrupt_code m ~addr:(r.Kernel.cr_entry + 2) ~bit:11;
  check_bool "corruption detected by checksum" true (Kernel.region_dirty k r);
  check_bool "hash diverges" true (Kernel.code_state_hash k <> h0);
  check_int "audit repairs exactly one region" 1 (Kernel.audit_code k);
  check_bool "clean again" false (Kernel.region_dirty k r);
  check_bool "resynthesized code is byte-identical" true
    (read_region m r = pristine);
  check_int "hash restored" h0 (Kernel.code_state_hash k);
  check_int "repair counted" 1 (Kernel.code_repairs_total k);
  (match k.Kernel.fault_log with
  | { Kernel.f_reason; _ } :: _ ->
    check_bool "repair logged" true (f_reason = "code_repair/audit/heal/q/put")
  | [] -> Alcotest.fail "no fault log entry");
  (* the repaired queue still works *)
  check_int "put through repaired code" 1
    (fst (run_call m ~entry:q.Kqueue.q_put ~r1:42 ()));
  let st, v = run_call m ~entry:q.Kqueue.q_get () in
  check_int "get ok" 1 st;
  check_int "item intact" 42 v

(* A legitimate runtime patch into a dirty region must repair first:
   patching may never bless corruption into the checksum. *)
let test_patch_never_blesses_corruption () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let idle, _ = Asm.assemble m [ I.Rts ] in
  let t = Thread.create k ~entry:idle () in
  let r = region_exn k (Printf.sprintf "ctx/t%d/sw_in" t.Kernel.tid) in
  (* corrupt an instruction that is NOT the quantum slot, then patch
     the quantum slot through the kernel *)
  let victim =
    if t.Kernel.quantum_slot = r.Kernel.cr_entry then r.Kernel.cr_entry + 1
    else r.Kernel.cr_entry
  in
  Fault_inject.corrupt_code m ~addr:victim ~bit:4;
  check_bool "dirty before patch" true (Kernel.region_dirty k r);
  Ctx.set_quantum k t 500;
  check_bool "patch repaired the region first" false (Kernel.region_dirty k r);
  check_int "repair counted" 1 (Kernel.code_repairs_total k);
  check_bool "quantum patch applied" true
    (Machine.read_code m t.Kernel.quantum_slot
    = I.Move (I.Imm 500, I.Abs Mmio_map.timer_alarm));
  check_int "audit finds nothing left" 0 (Kernel.audit_code k)

(* Trap channel, end to end: executing corrupted code faults, the
   illegal handler repairs the region, and the retried instruction
   completes with the side effect happening exactly once. *)
let test_trap_repairs_and_retries () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let exit0, _ = Asm.assemble m [ I.Trap 0 ] in
  let t = Thread.create k ~entry:exit0 () in
  (* boot-level vbr is 0; vector through the thread's table *)
  Machine.set_vbr m (t.Kernel.base + Layout.Tte.off_vectors);
  let qj, cell = tick_quaject k in
  let r = region_exn k "quaject/heal/tick" in
  Fault_inject.corrupt_code m ~addr:r.Kernel.cr_entry ~bit:19;
  ignore (run_call m ~entry:(Synthesizer.op_entry qj "tick") ());
  check_bool "region repaired by the trap path" false (Kernel.region_dirty k r);
  check_int "op ran exactly once after the retry" 1 (Machine.peek m cell);
  check_int "repair counted" 1 (Kernel.code_repairs_total k);
  (match k.Kernel.fault_log with
  | { Kernel.f_reason; _ } :: _ ->
    check_int "trap origin logged" 0
      (compare f_reason "code_repair/trap/quaject/heal/tick")
  | [] -> Alcotest.fail "no fault log entry");
  (* an illegal instruction OUTSIDE any registered region still kills
     the thread: repair must not swallow genuine faults *)
  let deaths_before = List.length k.Kernel.fault_log in
  let bad, _ = Asm.assemble m [ I.Hcall (-7); I.Halt ] in
  ignore (Thread.create k ~entry:bad ());
  Machine.set_halted m false;
  (match Boot.go ~max_insns:1_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "kill path did not settle");
  check_bool "unregistered fault logged as a death" true
    (List.length k.Kernel.fault_log > deaths_before);
  (match k.Kernel.fault_log with
  | { Kernel.f_reason; _ } :: _ ->
    check_bool "reason" true
      (String.length f_reason >= 7 && String.sub f_reason 0 7 = "illegal")
  | [] -> Alcotest.fail "empty log")

(* Watchdog channel: dormant corruption — code that never executes —
   is caught and repaired within a period. *)
let test_watchdog_audit_repairs_dormant () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  (* a spinner long enough to span several watchdog periods *)
  let entry, _ =
    Asm.assemble m
      [
        I.Move (I.Imm 60_000, I.Reg I.r9);
        I.Label "spin";
        I.Dbra (I.r9, I.To_label "spin");
        I.Trap 0;
      ]
  in
  ignore (Thread.create k ~entry ());
  let wd = Watchdog.install k ~period_us:200.0 () in
  Watchdog.audit_code wd;
  let r = region_exn k "bad_fd" in
  Fault_inject.corrupt_code m ~addr:r.Kernel.cr_entry ~bit:2;
  (match Boot.go ~max_insns:2_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "spinner did not finish");
  check_int "watchdog repaired the dormant region" 1 (Watchdog.audit_repairs wd);
  check_bool "clean" false (Kernel.region_dirty k r);
  check_int "kernel repair count agrees" 1 (Kernel.code_repairs_total k)

(* ------------------------------------------------------------------ *)
(* Property: every queue kind stays exact under a forced-CAS-failure
   storm — seeded op sequences, a model queue, and exact agreement on
   every status and item (no loss, no duplication, no reorder). *)

let storm_kind_name = function
  | Kqueue.Spsc -> "spsc"
  | Kqueue.Mpsc -> "mpsc"
  | Kqueue.Spmc -> "spmc"
  | Kqueue.Mpmc -> "mpmc"

let prop_queue_exact_under_cas_storm kind =
  let gen =
    QCheck.Gen.(pair (int_bound 0xFFFF) (list_size (int_range 20 60) (int_range 0 3)))
  in
  let print = QCheck.Print.(pair int (list int)) in
  QCheck.Test.make ~count:15
    ~name:(storm_kind_name kind ^ " queue exact under forced-CAS storm")
    (QCheck.make gen ~print)
    (fun (salt, ops) ->
      let b = Boot.boot () in
      let k = b.Boot.kernel in
      let m = k.Kernel.machine in
      let q = Kqueue.create ~kind k ~name:"prop/q" ~size:8 in
      let capacity = 7 in
      let model = Queue.create () in
      let next = ref 100 in
      let ok = ref true in
      let expect msg cond = if not cond then (ok := false; ignore msg) in
      List.iteri
        (fun i op ->
          (* the storm: force a failure on one of the next few CAS
             executions before (almost) every op *)
          if (not (Machine.cas_fail_armed m)) && (salt + i) land 3 <> 0 then
            Machine.set_cas_fail m
              ~at:(Machine.cas_executed m + 1 + ((salt lxor i) land 1))
              ~hook:(fun _ -> ());
          (* a forced CAS failure makes one attempt report "would
             block"; the optimistic contract is that the caller
             retries — transient interference, not queue state *)
          let rec call_until tries entry r1 =
            let st, v = run_call m ~entry ~r1 () in
            if st = 1 || tries <= 1 then (st, v)
            else call_until (tries - 1) entry r1
          in
          if op < 2 then begin
            let item = !next in
            incr next;
            let st, _ = call_until 4 q.Kqueue.q_put item in
            if Queue.length model < capacity then begin
              expect "put succeeds with space" (st = 1);
              Queue.push item model
            end
            else expect "put fails when full" (st = 0)
          end
          else begin
            let st, v = call_until 4 q.Kqueue.q_get 0 in
            if Queue.is_empty model then expect "get fails when empty" (st = 0)
            else begin
              expect "get succeeds" (st = 1);
              expect "exact FIFO item" (v = Queue.pop model)
            end
          end)
        ops;
      (* drain and compare the tails *)
      let rec drain () =
        let st1, v1 = run_call m ~entry:q.Kqueue.q_get () in
        let st, v =
          if st1 = 1 then (st1, v1) else run_call m ~entry:q.Kqueue.q_get ()
        in
        ignore v1;
        if st = 1 then begin
          expect "drained item present in model" (not (Queue.is_empty model));
          if not (Queue.is_empty model) then
            expect "drained in model order" (v = Queue.pop model);
          drain ()
        end
      in
      drain ();
      expect "model drained too" (Queue.is_empty model);
      !ok)

let storm_props =
  List.map
    (fun kind -> QCheck_alcotest.to_alcotest (prop_queue_exact_under_cas_storm kind))
    [ Kqueue.Spsc; Kqueue.Mpsc; Kqueue.Spmc; Kqueue.Mpmc ]

(* ------------------------------------------------------------------ *)
(* Recovery quajects *)

let test_watchdog_restarts_stalled_flow () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let entry, _ =
    Asm.assemble m [ I.Label "spin"; I.B (I.Always, I.To_label "spin") ]
  in
  let _t = Thread.create k ~entry () in
  let wd = Watchdog.install k ~period_us:200.0 () in
  let kicks = ref 0 in
  let flow =
    Watchdog.watch wd ~name:"stuck" ~threshold:3
      ~read:(fun () -> 0) (* never makes progress *)
      ~restart:(fun () -> incr kicks)
      ()
  in
  (match Boot.go ~max_insns:400_000 b with
  | Machine.Insn_limit -> ()
  | Machine.Halted -> Alcotest.fail "spinner halted");
  Watchdog.stop wd;
  check_bool "restart action ran" true (!kicks >= 1);
  check_int "flow restart count agrees" !kicks (Watchdog.restarts flow);
  check_int "registered in kernel metrics" !kicks
    (Metrics.read k.Kernel.metrics "watchdog.restarts")

let test_disk_bad_block_fails_cleanly () =
  let d = E.disk_fault ~seed:1 ~mode:E.Disk_bad_block () in
  check_bool "read did not complete" false d.E.df_completed;
  check_int "marked permanently failed" 1 d.E.df_failed;
  check_bool "bounded retries, then gave up" true
    (d.E.df_timeouts >= 2 && d.E.df_retries >= 1)

let () =
  Alcotest.run "fault"
    [
      ( "cas",
        [
          Alcotest.test_case "forced failure semantics" `Quick
            test_cas_forced_failure;
          Alcotest.test_case "past-index contract" `Quick
            test_cas_fail_index_contract;
          Alcotest.test_case "atomic vs interrupts" `Quick
            test_cas_atomic_vs_interrupt;
        ] );
      ( "interrupts",
        [
          Alcotest.test_case "same-level delivery pends" `Quick
            test_same_level_interrupt_pends;
          Alcotest.test_case "stop_wait resumed" `Quick
            test_interrupt_resumes_stop_wait;
          Alcotest.test_case "stray irq preserves registers" `Quick
            test_stray_irq_preserves_registers;
        ] );
      ( "double fault",
        [
          Alcotest.test_case "halts the machine" `Quick
            test_double_fault_halts_machine;
          Alcotest.test_case "logged by boot" `Quick test_boot_logs_double_fault;
        ] );
      ( "fault log",
        [ Alcotest.test_case "bounded" `Quick test_fault_log_bounded ] );
      ( "overflow",
        [
          Alcotest.test_case "fail policy" `Quick test_overflow_fail;
          Alcotest.test_case "drop policy" `Quick test_overflow_drop;
          Alcotest.test_case "block policy" `Quick test_overflow_block;
        ] );
      ( "kfault",
        [
          Alcotest.test_case "oq fault seam" `Quick test_oq_fault_seam;
          Alcotest.test_case "plan determinism" `Quick test_plan_deterministic;
          Alcotest.test_case "explorer determinism" `Quick
            test_explorer_deterministic;
          Alcotest.test_case "explorer smoke" `Quick test_explorer_smoke;
        ] );
      ( "kheal",
        [
          Alcotest.test_case "code regions registered" `Quick test_code_registry;
          Alcotest.test_case "corrupt, detect, repair" `Quick
            test_corrupt_detect_repair;
          Alcotest.test_case "patch never blesses corruption" `Quick
            test_patch_never_blesses_corruption;
          Alcotest.test_case "trap repairs and retries" `Quick
            test_trap_repairs_and_retries;
          Alcotest.test_case "watchdog audit repairs dormant code" `Quick
            test_watchdog_audit_repairs_dormant;
        ] );
      ("storm", storm_props);
      ( "recovery",
        [
          Alcotest.test_case "watchdog restarts a stalled flow" `Quick
            test_watchdog_restarts_stalled_flow;
          Alcotest.test_case "disk bad block fails cleanly" `Quick
            test_disk_bad_block_fails_cleanly;
        ] );
    ]
