(* Cross-kernel tests: the UNIX emulator on Synthesis, the baseline
   kernel, and the Table 1 integration shapes — the same binaries must
   produce the same results on both kernels, with Synthesis faster on
   every I/O-bound row. *)

open Quamachine
module I = Insn
module U = Unix_emulator.Unix_abi

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A self-checking Unix-ABI program: pipes, files, /dev/null; writes a
   "test passed" bitmap into [flags] through plain stores. *)
let acceptance_program (env : Repro_harness.Programs.env) ~flags =
  let buf = env.Repro_harness.Programs.e_buf in
  List.concat
    [
      (* --- pipe: write 5 words, read them back, compare *)
      [
        I.Move (I.Imm U.sys_pipe, I.Reg I.r0);
        I.Trap U.trap;
        I.Move (I.Reg I.r0, I.Reg I.r13); (* rfd *)
        I.Move (I.Reg I.r1, I.Reg I.r14); (* wfd *)
      ];
      List.concat_map
        (fun i -> [ I.Move (I.Imm (100 + i), I.Abs (buf + i)) ])
        [ 0; 1; 2; 3; 4 ];
      [
        I.Move (I.Imm U.sys_write, I.Reg I.r0);
        I.Move (I.Reg I.r14, I.Reg I.r1);
        I.Move (I.Imm buf, I.Reg I.r2);
        I.Move (I.Imm 5, I.Reg I.r3);
        I.Trap U.trap;
        I.Move (I.Reg I.r0, I.Abs (flags + 0)); (* = 5 *)
        I.Move (I.Imm U.sys_read, I.Reg I.r0);
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Move (I.Imm (buf + 16), I.Reg I.r2);
        I.Move (I.Imm 5, I.Reg I.r3);
        I.Trap U.trap;
        I.Move (I.Reg I.r0, I.Abs (flags + 1)); (* = 5 *)
        I.Move (I.Abs (buf + 18), I.Abs (flags + 2)); (* = 102 *)
      ];
      (* --- file: open, write 3, rewind, read 3 back *)
      [
        I.Move (I.Imm U.sys_open, I.Reg I.r0);
        I.Move (I.Imm env.Repro_harness.Programs.e_name_file, I.Reg I.r1);
        I.Trap U.trap;
        I.Move (I.Reg I.r0, I.Reg I.r13);
        I.Move (I.Imm 777, I.Abs (buf + 30));
        I.Move (I.Imm U.sys_lseek, I.Reg I.r0);
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Move (I.Imm 0, I.Reg I.r2);
        I.Trap U.trap;
        I.Move (I.Imm U.sys_write, I.Reg I.r0);
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Move (I.Imm (buf + 30), I.Reg I.r2);
        I.Move (I.Imm 1, I.Reg I.r3);
        I.Trap U.trap;
        I.Move (I.Imm U.sys_lseek, I.Reg I.r0);
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Move (I.Imm 0, I.Reg I.r2);
        I.Trap U.trap;
        I.Move (I.Imm U.sys_read, I.Reg I.r0);
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Move (I.Imm (buf + 40), I.Reg I.r2);
        I.Move (I.Imm 1, I.Reg I.r3);
        I.Trap U.trap;
        I.Move (I.Abs (buf + 40), I.Abs (flags + 3)); (* = 777 *)
        I.Move (I.Imm U.sys_close, I.Reg I.r0);
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Trap U.trap;
      ];
      (* --- /dev/null: open, read gives EOF, write swallows *)
      [
        I.Move (I.Imm U.sys_open, I.Reg I.r0);
        I.Move (I.Imm env.Repro_harness.Programs.e_name_null, I.Reg I.r1);
        I.Trap U.trap;
        I.Move (I.Reg I.r0, I.Reg I.r13);
        I.Move (I.Imm U.sys_read, I.Reg I.r0);
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Move (I.Imm buf, I.Reg I.r2);
        I.Move (I.Imm 4, I.Reg I.r3);
        I.Trap U.trap;
        I.Move (I.Reg I.r0, I.Abs (flags + 4)); (* = 0 *)
        I.Move (I.Imm U.sys_write, I.Reg I.r0);
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Move (I.Imm buf, I.Reg I.r2);
        I.Move (I.Imm 4, I.Reg I.r3);
        I.Trap U.trap;
        I.Move (I.Reg I.r0, I.Abs (flags + 5)); (* = 4 *)
        I.Move (I.Imm U.sys_close, I.Reg I.r0);
        I.Move (I.Reg I.r13, I.Reg I.r1);
        I.Trap U.trap;
        (* unknown syscall returns -1 *)
        I.Move (I.Imm 63, I.Reg I.r0);
        I.Trap U.trap;
        I.Move (I.Reg I.r0, I.Abs (flags + 6)); (* = -1 *)
        (* time is monotone non-negative on both kernels *)
        I.Move (I.Imm U.sys_time, I.Reg I.r0);
        I.Trap U.trap;
        I.Tst (I.Reg I.r0);
        I.B (I.Mi, I.To_label "badtime");
        I.Move (I.Imm 1, I.Abs (flags + 7)); (* = 1 *)
        I.B (I.Always, I.To_label "timedone");
        I.Label "badtime";
        I.Move (I.Imm 0, I.Abs (flags + 7));
        I.Label "timedone";
      ];
      [ I.Move (I.Imm U.sys_exit, I.Reg I.r0); I.Trap U.trap ];
    ]

let expected = [ 5; 5; 102; 777; 0; 4; Word.of_int (-1); 1 ]

let check_flags peek flags =
  List.iteri (fun i exp -> check_int (Fmt.str "flag %d" i) exp (peek (flags + i))) expected

let test_acceptance_on_synthesis () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Synthesis.Boot.kernel in
  let flags = se.Repro_harness.Harness.s_env.Repro_harness.Programs.e_data + 900 in
  let program = acceptance_program se.Repro_harness.Harness.s_env ~flags in
  ignore (Repro_harness.Harness.synthesis_run se ~program);
  check_flags (Machine.peek k.Synthesis.Kernel.machine) flags

let test_acceptance_on_baseline () =
  let be = Repro_harness.Harness.baseline_setup () in
  let flags = be.Repro_harness.Harness.b_env.Repro_harness.Programs.e_data + 900 in
  let program = acceptance_program be.Repro_harness.Harness.b_env ~flags in
  ignore (Repro_harness.Harness.baseline_run be ~program);
  check_flags (Machine.peek be.Repro_harness.Harness.b_kernel.Baseline.machine) flags

(* ------------------------------------------------------------------ *)
(* kheal differential: corrupt synthesized code regions, let the audit
   repair them by resynthesis, then run the shared workloads — the
   repaired kernel must produce exactly the outputs of an untouched
   one (and of the baseline kernel for the shared-binary program). *)

(* Corrupt one instruction in each of [n] registered regions (never
   the fault handlers: a corrupted illegal handler can't repair
   itself).  Returns how many were corrupted. *)
let corrupt_regions k n =
  let fault_handler r =
    let name = r.Synthesis.Kernel.cr_name in
    String.length name >= 6 && String.sub name 0 6 = "fault/"
  in
  let victims =
    List.filteri
      (fun i _ -> i < n)
      (List.filter (fun r -> not (fault_handler r)) (Synthesis.Kernel.code_regions k))
  in
  List.iter
    (fun r ->
      Fault_inject.corrupt_code k.Synthesis.Kernel.machine
        ~addr:(r.Synthesis.Kernel.cr_entry + (r.Synthesis.Kernel.cr_len / 2))
        ~bit:7)
    victims;
  List.length victims

let test_repair_then_acceptance () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let k = se.Repro_harness.Harness.s_boot.Synthesis.Boot.kernel in
  let n = corrupt_regions k 6 in
  check_int "six regions corrupted" 6 n;
  check_int "audit repaired them all" n (Synthesis.Kernel.audit_code k);
  check_int "repairs counted" n (Synthesis.Kernel.code_repairs_total k);
  check_int "nothing left to repair" 0 (Synthesis.Kernel.audit_code k);
  (* the repaired kernel runs the shared acceptance binary and yields
     exactly the outputs the baseline kernel yields *)
  let flags = se.Repro_harness.Harness.s_env.Repro_harness.Programs.e_data + 900 in
  let program = acceptance_program se.Repro_harness.Harness.s_env ~flags in
  ignore (Repro_harness.Harness.synthesis_run se ~program);
  check_flags (Machine.peek k.Synthesis.Kernel.machine) flags

let test_repair_then_pipeline () =
  let open Synthesis in
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let p = Repro_harness.Harness.Pipeline.build ~total:512 b in
  (* corrupt every regenerable region the pipeline owns — switch code,
     pipe code, queue templates — and repair before running *)
  let n = corrupt_regions k 1000 in
  check_bool "many regions corrupted" true (n > 10);
  check_int "audit repaired them all" n (Kernel.audit_code k);
  (* Pipeline.run verifies the consumer's exact checksum: identical
     data delivery through the repaired pipe *)
  Repro_harness.Harness.Pipeline.run p;
  let m = k.Kernel.machine in
  check_int "exact sum through repaired code" (512 * 513 / 2)
    (Machine.peek m p.Repro_harness.Harness.Pipeline.pl_result);
  check_int "post-run audit finds nothing" 0 (Kernel.audit_code k)

(* ------------------------------------------------------------------ *)
(* Table 1 shapes, scaled down: Synthesis must win every I/O row and
   tie (within 20%) the compute calibration row. *)

let test_table1_shapes () =
  let iters = 200 in
  let run build =
    let be = Repro_harness.Harness.baseline_setup () in
    let sun = Repro_harness.Harness.baseline_run be ~program:(build be.Repro_harness.Harness.b_env) in
    let se = Repro_harness.Harness.synthesis_setup () in
    let syn = Repro_harness.Harness.synthesis_run se ~program:(build se.Repro_harness.Harness.s_env) in
    (sun, syn)
  in
  (* calibration: compute-bound, must be within 20% *)
  let sun, syn = run (fun env -> Repro_harness.Programs.compute ~arr:env.Repro_harness.Programs.e_arr ~n:2000) in
  check_bool "compute parity" true (syn /. sun < 1.2 && syn /. sun > 0.8);
  (* single-word pipe: Synthesis several times faster *)
  let sun, syn = run (fun env -> Repro_harness.Programs.pipe_rw env ~chunk:1 ~iters) in
  check_bool "1-word pipe >= 3x" true (sun /. syn >= 3.0);
  (* 1 KiB pipe: still faster, smaller factor than 1-word *)
  let sun1k, syn1k = run (fun env -> Repro_harness.Programs.pipe_rw env ~chunk:256 ~iters) in
  check_bool "1KiB pipe faster" true (sun1k /. syn1k >= 1.5);
  check_bool "factor shrinks with chunk size" true (sun /. syn > sun1k /. syn1k);
  (* open/close: the code-synthesis win *)
  let sun, syn =
    run (fun env -> Repro_harness.Programs.open_close ~name_addr:env.Repro_harness.Programs.e_name_null ~iters)
  in
  check_bool "open/close >= 4x" true (sun /. syn >= 4.0)

(* ------------------------------------------------------------------ *)
(* Emulation overhead: the extra trap costs a few microseconds *)

let test_emulation_overhead_small () =
  let se = Repro_harness.Harness.synthesis_setup () in
  let stamps = se.Repro_harness.Harness.s_stamps in
  let mark = Repro_harness.Harness.Stamps.mark stamps in
  let env = se.Repro_harness.Harness.s_env in
  let program =
    [
      (* warm-up open/close so both measured opens hit the synthesis
         cache: this isolates the emulator's trap overhead from the
         one-time synthesis cost *)
      I.Move (I.Imm env.Repro_harness.Programs.e_name_null, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Reg I.r0, I.Reg I.r1);
      I.Trap 4;
      (* native open, then the same through the emulator *)
      mark;
      I.Move (I.Imm env.Repro_harness.Programs.e_name_null, I.Reg I.r1);
      I.Trap 3;
      mark;
      I.Move (I.Reg I.r0, I.Reg I.r1);
      I.Trap 4;
      I.Move (I.Imm U.sys_open, I.Reg I.r0);
      I.Move (I.Imm env.Repro_harness.Programs.e_name_null, I.Reg I.r1);
      mark;
      I.Trap U.trap;
      mark;
      I.Move (I.Imm U.sys_exit, I.Reg I.r0);
      I.Trap U.trap;
    ]
  in
  ignore (Repro_harness.Harness.synthesis_run se ~program);
  match Repro_harness.Harness.Stamps.spans stamps with
  | [ native; _mid; emulated ] ->
    let overhead = emulated -. native in
    check_bool "emulation overhead positive" true (overhead > 0.0);
    check_bool "emulation overhead < 15us" true (overhead < 15.0)
  | spans -> Alcotest.failf "unexpected spans: %d" (List.length spans)

let () =
  Alcotest.run "compare"
    [
      ( "acceptance",
        [
          Alcotest.test_case "unix program on synthesis" `Quick
            test_acceptance_on_synthesis;
          Alcotest.test_case "same binary on baseline" `Quick
            test_acceptance_on_baseline;
        ] );
      ( "repair",
        [
          Alcotest.test_case "acceptance after repair cycle" `Quick
            test_repair_then_acceptance;
          Alcotest.test_case "pipeline after repair cycle" `Quick
            test_repair_then_pipeline;
        ] );
      ("table1", [ Alcotest.test_case "speedup shapes" `Slow test_table1_shapes ]);
      ( "emulator",
        [ Alcotest.test_case "trap overhead is small" `Quick test_emulation_overhead_small ] );
    ]
