(* The §4 stream layer (kserve): pumps copy exactly, switches route by
   the key field and forward EOF to every output, fan-in merges without
   loss, a stalled consumer backpressures the producer chain through
   the queues, and the gauge rate math survives its edge cases
   (zero-width sampling window, counter wrap). *)

open Quamachine
open Synthesis
module Sg = Stream_graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh () =
  let boot = Boot.boot () in
  (boot, boot.Boot.kernel)

let run_to_halt ?(max_insns = 2_000_000) boot =
  match Boot.go ~max_insns boot with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "machine did not converge"

let drain k fl =
  let rec go acc =
    match Sg.flow_get k fl with
    | Some v -> go (v :: acc)
    | None -> List.rev acc
  in
  go []

(* ------------------------------------------------------------------ *)

let test_pump_copies_exactly () =
  let boot, k = fresh () in
  let a = Sg.flow k ~name:"a" ~size:64 in
  let b = Sg.flow k ~name:"b" ~size:64 in
  let items = List.init 40 (fun i -> i * 3) in
  List.iter (fun v -> assert (Sg.flow_put k a v)) items;
  assert (Sg.flow_put k a Sg.eof_word);
  let segs = Sg.flow_segments a @ Sg.flow_segments b in
  ignore
    (Sg.spawn k ~quantum_us:50 ~segments:segs
       (Sg.pump_program ~from_:a ~into:b ()));
  run_to_halt boot;
  Alcotest.(check (list int))
    "copied in order, EOF last" (items @ [ Sg.eof_word ]) (drain k b);
  check_int "source drained" 0 (Sg.flow_length k a);
  check_int "gauge ticked once per data item" 40
    (Sg.gauge_count k b.Sg.fl_gauge)

let test_switch_routes_and_broadcasts_eof () =
  let boot, k = fresh () in
  let inp = Sg.flow k ~name:"in" ~size:64 in
  let shift = 2 in
  let outs =
    Array.init 4 (fun i ->
        Sg.flow k ~consumers:1 ~name:(Printf.sprintf "out%d" i) ~size:64)
  in
  (* key field is bits [shift, shift+2): item i goes to out (i mod 4) *)
  let items = List.init 32 (fun i -> ((i mod 4) lsl shift) lor (i lsl 8)) in
  List.iter (fun v -> assert (Sg.flow_put k inp v)) items;
  assert (Sg.flow_put k inp Sg.eof_word);
  let segs =
    Sg.flow_segments inp
    @ List.concat_map Sg.flow_segments (Array.to_list outs)
  in
  ignore
    (Sg.spawn k ~quantum_us:50 ~segments:segs
       (Sg.switch_program ~from_:inp ~outs ~shift ()));
  run_to_halt boot;
  Array.iteri
    (fun i out ->
      let got = drain k out in
      let expect =
        List.filter (fun v -> (v lsr shift) land 3 = i) items @ [ Sg.eof_word ]
      in
      Alcotest.(check (list int))
        (Printf.sprintf "out%d gets its key class then EOF" i)
        expect got)
    outs

let test_fan_in_merges_without_loss () =
  let boot, k = fresh () in
  let a = Sg.flow k ~name:"a" ~size:64 in
  let b = Sg.flow k ~name:"b" ~size:64 in
  let merged = Sg.flow ~producers:2 k ~name:"m" ~size:128 in
  let xs = List.init 25 (fun i -> 1000 + i) in
  let ys = List.init 25 (fun i -> 2000 + i) in
  List.iter (fun v -> assert (Sg.flow_put k a v)) xs;
  List.iter (fun v -> assert (Sg.flow_put k b v)) ys;
  assert (Sg.flow_put k a Sg.eof_word);
  assert (Sg.flow_put k b Sg.eof_word);
  ignore
    (Sg.spawn k ~quantum_us:40
       ~segments:(Sg.flow_segments a @ Sg.flow_segments merged)
       (Sg.pump_program ~from_:a ~into:merged ()));
  ignore
    (Sg.spawn k ~quantum_us:40
       ~segments:(Sg.flow_segments b @ Sg.flow_segments merged)
       (Sg.pump_program ~from_:b ~into:merged ()));
  run_to_halt boot;
  let got = drain k merged in
  let eofs, data = List.partition (( = ) Sg.eof_word) got in
  check_int "one EOF per producer" 2 (List.length eofs);
  Alcotest.(check (list int))
    "merge is the union, each source in order" (xs @ ys)
    (List.sort compare data);
  check_int "gauge counted every data item" 50
    (Sg.gauge_count k merged.Sg.fl_gauge)

(* A slow consumer backpressures the producer through two tiny queues
   and a pump: the host producer sees full puts, yet nothing is lost
   or reordered. *)
let test_backpressure_propagates () =
  let boot, k = fresh () in
  let a = Sg.flow k ~name:"a" ~size:4 in
  let b = Sg.flow k ~name:"b" ~size:4 in
  ignore
    (Sg.spawn k ~quantum_us:30
       ~segments:(Sg.flow_segments a @ Sg.flow_segments b)
       (Sg.pump_program ~from_:a ~into:b ()));
  let m = k.Kernel.machine in
  let n = 40 in
  let sent = ref 0 in
  let full_puts = ref 0 in
  let prod = ref None in
  let prod_tick m' =
    (if !sent <= n then
       let v = if !sent = n then Sg.eof_word else 100 + !sent in
       if Sg.flow_put k a v then incr sent else incr full_puts);
    match !prod with
    | Some d ->
      if !sent <= n then Machine.device_schedule m' d (Machine.cycles m' + 60)
    | None -> ()
  in
  prod := Some (Machine.add_device m ~name:"prod" ~due:40 ~tick:prod_tick);
  let got = ref [] in
  let done_ = ref false in
  let cons = ref None in
  let cons_tick m' =
    (match Sg.flow_get k b with
    | Some v when v = Sg.eof_word -> done_ := true
    | Some v -> got := v :: !got
    | None -> ());
    match !cons with
    | Some d ->
      if not !done_ then
        (* much slower than the producer: the chain must fill *)
        Machine.device_schedule m' d (Machine.cycles m' + 900)
    | None -> ()
  in
  cons := Some (Machine.add_device m ~name:"cons" ~due:80 ~tick:cons_tick);
  run_to_halt ~max_insns:8_000_000 boot;
  (* the machine halts once the pump retires EOF; whatever the slow
     consumer had not reached yet is still queued — drain it here *)
  let residue = drain k b in
  let tail, eof =
    match List.rev residue with
    | e :: rest when e = Sg.eof_word -> (List.rev rest, true)
    | _ -> (residue, false)
  in
  check_bool "EOF reached the consumer side" true (!done_ || eof);
  Alcotest.(check (list int))
    "slow path lost and reordered nothing"
    (List.init n (fun i -> 100 + i))
    (List.rev !got @ tail);
  check_bool "the producer hit a full queue" true (!full_puts > 0)

(* ------------------------------------------------------------------ *)
(* Gauge rate math                                                     *)
(* ------------------------------------------------------------------ *)

let test_gauge_zero_width_window () =
  let _boot, k = fresh () in
  let g = Sg.gauge k ~name:"g" in
  let m = k.Kernel.machine in
  Machine.poke m g.Sg.g_cell 500;
  (* no cycles have elapsed since the gauge was created: the sample
     window is zero-width and must not divide by it *)
  let r = Sg.gauge_sample k g in
  check_bool "zero-width window returns the prior rate" true
    (Float.is_finite r);
  Alcotest.(check (float 1e-9)) "prior rate was zero" 0.0 r;
  Alcotest.(check (float 1e-9)) "rate accessor agrees" r (Sg.gauge_rate g)

let test_gauge_counter_wrap () =
  let boot, k = fresh () in
  let g = Sg.gauge k ~name:"g" in
  let m = k.Kernel.machine in
  (* take a real sample with the counter just below 2^32 … *)
  ignore (Boot.go ~max_insns:500 boot);
  Machine.poke m g.Sg.g_cell (Word.mask - 5);
  ignore (Sg.gauge_sample k g);
  let c1 = g.Sg.g_last_cycles in
  (* … let cycles pass, then wrap: 6 more events carry it past 2^32 *)
  ignore (Boot.go ~max_insns:500 boot);
  Machine.poke m g.Sg.g_cell 0;
  let expect = 6.0 *. 1000.0 /. float_of_int (Machine.cycles m - c1) in
  let r = Sg.gauge_sample k g in
  check_bool "wrap-adjusted delta is positive and finite" true
    (Float.is_finite r && r > 0.0);
  Alcotest.(check (float 1e-6)) "delta is exactly 6 events" expect r

let test_gauge_rate_tracks_counts () =
  let boot, k = fresh () in
  let g = Sg.gauge k ~name:"g" in
  let m = k.Kernel.machine in
  ignore (Boot.go ~max_insns:500 boot);
  ignore (Sg.gauge_sample k g);
  let c1 = g.Sg.g_last_cycles in
  Machine.poke m g.Sg.g_cell (Sg.gauge_count k g + 120);
  ignore (Boot.go ~max_insns:500 boot);
  let expect = 120.0 *. 1000.0 /. float_of_int (Machine.cycles m - c1) in
  let r = Sg.gauge_sample k g in
  Alcotest.(check (float 1e-6)) "windowed rate is events per kilocycle" expect
    r;
  check_int "count accessor reads the cell" 120 (Sg.gauge_count k g)

let () =
  Alcotest.run "stream"
    [
      ( "graph",
        [
          Alcotest.test_case "pump copies exactly, EOF last" `Quick
            test_pump_copies_exactly;
          Alcotest.test_case "switch routes by key, broadcasts EOF" `Quick
            test_switch_routes_and_broadcasts_eof;
          Alcotest.test_case "fan-in merges without loss" `Quick
            test_fan_in_merges_without_loss;
          Alcotest.test_case "backpressure reaches the producer" `Quick
            test_backpressure_propagates;
        ] );
      ( "gauges",
        [
          Alcotest.test_case "zero-width window" `Quick
            test_gauge_zero_width_window;
          Alcotest.test_case "counter wrap" `Quick test_gauge_counter_wrap;
          Alcotest.test_case "rate tracks counts" `Quick
            test_gauge_rate_tracks_counts;
        ] );
    ]
