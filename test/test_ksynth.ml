(* Ksynth tests: the memoizing synthesis cache behind the redesigned
   code-generation API — content-addressed hits, refcounts and release,
   copy-on-patch (refusal on shared pages, sole-owner detach, forking),
   the Kalloc shared-page free guard, LRU eviction with
   recipe-recorded resynthesis, and a property pinning that
   evict/re-instantiate rebuilds byte-identical code with exactly-once
   side effects under forced-CAS storms. *)

open Quamachine
open Synthesis
module I = Insn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A tiny synthesizable routine with one folded invariant and a
   CAS-guarded exactly-once increment: CAS cell 0->1 (retrying on
   forced failure), then bump the adjacent count cell. *)
let once_template =
  Template.make ~name:"prop_once" ~params:[ "cell" ] (fun p ->
      [
        I.Label "retry";
        I.Move (I.Imm 0, I.Reg I.r6);
        I.Move (I.Imm 1, I.Reg I.r7);
        I.Cas (I.r6, I.r7, I.Abs (p "cell"));
        I.B (I.Ne, I.To_label "retry");
        I.Alu_mem (I.Add, I.Imm 1, I.Abs (p "cell" + 1));
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

let run_call m ~entry () =
  let frag = [ I.Jsr (I.To_addr entry); I.Halt ] in
  let start, _ = Asm.assemble m frag in
  Machine.set_halted m false;
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp 0xE00;
  Machine.set_pc m start;
  (match Machine.run ~max_insns:10_000 m with
  | Machine.Halted -> ()
  | Machine.Insn_limit ->
    failwith
      (Printf.sprintf "run_call: did not return (pc=%d sp=%d)" (Machine.get_pc m)
         (Machine.get_reg m I.sp)));
  Machine.get_reg m I.r0

(* ------------------------------------------------------------------ *)
(* Hits, refcounts, release *)

let test_hit_shares_page () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let before = (Ksynth.stats k).Ksynth.st_misses in
  let h1 =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", cell) ]
  in
  let h2 =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", cell) ]
  in
  check_int "same entry" (Ksynth.entry h1) (Ksynth.entry h2);
  check_int "two handles share one page" 2 (Ksynth.refs h1);
  check_int "one miss for two instantiations" (before + 1)
    (Ksynth.stats k).Ksynth.st_misses;
  check_bool "hits counted" true ((Ksynth.stats k).Ksynth.st_hits > 0);
  check_int "kalloc refcount mirrors"
    2
    (Kalloc.shared_refs k.Kernel.alloc ~base:(Ksynth.entry h1));
  Ksynth.release k h1;
  check_int "release drops the refcount" 1 (Ksynth.refs h2);
  Ksynth.release k h1;
  check_int "release is idempotent per handle" 1 (Ksynth.refs h2);
  Ksynth.release k h2;
  check_int "unreferenced page stays cached for the next hit" 0 (Ksynth.refs h2);
  let h3 =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", cell) ]
  in
  check_int "warm re-instantiation reuses the page" (Ksynth.entry h2)
    (Ksynth.entry h3)

let test_distinct_invariants_distinct_pages () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let c1 = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let c2 = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let h1 =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", c1) ]
  in
  let h2 =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", c2) ]
  in
  check_bool "different invariants never share" true
    (Ksynth.entry h1 <> Ksynth.entry h2)

(* ------------------------------------------------------------------ *)
(* Copy-on-patch *)

let test_patch_refuses_shared_page () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let h1 =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", cell) ]
  in
  let _h2 =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", cell) ]
  in
  check_bool "raw patch of a shared page refuses" true
    (try
       Kernel.patch_code k (Ksynth.entry h1) (I.Move (I.Imm 9, I.Reg I.r0));
       false
     with Invalid_argument _ -> true)

let test_sole_owner_patch_detaches () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let h1 =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", cell) ]
  in
  let e1 = Ksynth.entry h1 in
  Kernel.patch_code k e1 (I.Move (I.Imm 0, I.Reg I.r6));
  (* patched content must not be served to a fresh instantiation *)
  let h2 =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", cell) ]
  in
  check_bool "detached page is not served again" true (Ksynth.entry h2 <> e1)

(* Find the offset of an instruction inside a page. *)
let find_off m ~entry ~len insn =
  let rec go i =
    if i >= len then Alcotest.fail "instruction not found in page"
    else if Machine.read_code m (entry + i) = insn then i
    else go (i + 1)
  in
  go 0

let test_patch_forks_private_copy () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let h1 =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", cell) ]
  in
  let h2 =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", cell) ]
  in
  let e1 = Ksynth.entry h1 in
  let len = (Ksynth.page h1).Kernel.sp_len in
  let off = find_off m ~entry:e1 ~len (I.Move (I.Imm 0, I.Reg I.r0)) in
  Ksynth.patch k h2 ~off (I.Move (I.Imm 42, I.Reg I.r0));
  check_bool "patch forked a private copy" true (Ksynth.entry h2 <> e1);
  check_int "source refcount back to one" 1 (Ksynth.refs h1);
  check_int "fork refcount is one" 1 (Ksynth.refs h2);
  check_int "unpatched page returns 0" 0 (run_call m ~entry:e1 ());
  (* the CAS-guarded cell is one-shot: rearm it for the second run *)
  Machine.poke m cell 0;
  check_int "forked page returns 42" 42 (run_call m ~entry:(Ksynth.entry h2) ());
  (* the fork ran its CAS path: reset and confirm exactly-once *)
  check_int "exactly one increment per successful run" 2
    (Machine.peek m (cell + 1))

(* ------------------------------------------------------------------ *)
(* Kalloc shared-page guard (regression) *)

let test_free_refuses_shared_code_page () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let h =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", cell) ]
  in
  let entry = Ksynth.entry h in
  check_bool "Kalloc.free refuses a live shared code address" true
    (try
       Kalloc.free k.Kernel.alloc (entry + 1);
       false
     with Kalloc.Shared_page _ -> true)

(* ------------------------------------------------------------------ *)
(* Eviction and resynthesis *)

let test_evict_and_resynthesize () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let h =
    Ksynth.instantiate k ~name:"prop/once" ~template:once_template
      ~invariants:[ ("cell", cell) ]
  in
  let e = Ksynth.entry h in
  let key = Ksynth.key h in
  Ksynth.release k h;
  let s0 = Ksynth.stats k in
  (* a zero budget for this kind evicts every unreferenced page *)
  Ksynth.set_cap k ~kind:"prop" 0;
  let s1 = Ksynth.stats k in
  check_int "page evicted" (s0.Ksynth.st_evictions + 1) s1.Ksynth.st_evictions;
  (* the recipe survives: revive resynthesizes from it *)
  (match Ksynth.revive k key with
  | None -> Alcotest.fail "no recipe recorded for the evicted key"
  | Some h2 ->
    check_int "resynthesis reuses the recycled arena range" e (Ksynth.entry h2);
    Ksynth.release k h2);
  let s2 = Ksynth.stats k in
  check_int "resynthesis counted" (s1.Ksynth.st_resynth + 1) s2.Ksynth.st_resynth;
  check_int "resynthesis is also a miss" (s1.Ksynth.st_misses + 1)
    s2.Ksynth.st_misses

(* ------------------------------------------------------------------ *)
(* Property: instantiate -> patch(fork) -> evict -> re-instantiate is
   exact — the rebuilt store hashes identically (same content at the
   same recycled addresses) and the CAS-guarded side effect stays
   exactly-once per run under a forced-CAS-failure storm. *)

let prop_rebuild_exact_under_storm =
  QCheck.Test.make ~count:20
    ~name:"evict/re-instantiate exact under forced-CAS storm"
    (QCheck.make QCheck.Gen.(int_bound 0xFFFF) ~print:string_of_int)
    (fun salt ->
      let b = Boot.boot () in
      let k = b.Boot.kernel in
      let m = k.Kernel.machine in
      let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
      let ok = ref true in
      let expect cond = if not cond then ok := false in
      let storm i =
        if (not (Machine.cas_fail_armed m)) && (salt + i) land 3 <> 0 then
          Machine.set_cas_fail m
            ~at:(Machine.cas_executed m + 1 + ((salt lxor i) land 1))
            ~hook:(fun _ -> ())
      in
      let run_once i entry =
        Machine.poke m cell 0;
        storm i;
        let before = Machine.peek m (cell + 1) in
        ignore (run_call m ~entry ());
        expect (Machine.peek m (cell + 1) = before + 1)
      in
      let inst () =
        Ksynth.instantiate k ~name:"prop/once" ~template:once_template
          ~invariants:[ ("cell", cell) ]
      in
      let h1 = inst () in
      let e1 = Ksynth.entry h1 in
      let hash1 = Kernel.code_state_hash k in
      run_once 0 e1;
      (* fork a patched private copy, exercise it, drop it *)
      let h2 = inst () in
      let len = (Ksynth.page h1).Kernel.sp_len in
      let off = find_off m ~entry:e1 ~len (I.Move (I.Imm 0, I.Reg I.r0)) in
      Ksynth.patch k h2 ~off (I.Move (I.Imm 1, I.Reg I.r0));
      run_once 1 (Ksynth.entry h2);
      Ksynth.release k h2;
      (* evict the original, then rebuild it *)
      Ksynth.release k h1;
      Ksynth.set_cap k ~kind:"prop" 0;
      let h3 = inst () in
      expect (Ksynth.entry h3 = e1);
      expect (Kernel.code_state_hash k = hash1);
      run_once 2 (Ksynth.entry h3);
      expect (Kernel.audit_code k = 0);
      !ok)

(* ------------------------------------------------------------------ *)

(* kserve's accept path leans on the cache: opening and closing 100
   connections must reuse the recycled slots' cached service pages —
   the arena footprint and the code_bytes_peak gauge stay exactly
   where the warmup left them, and the cache serves every warm
   accept. *)
let test_serve_connection_churn_no_leak () =
  let boot = Boot.boot () in
  let srv = Kserve.create boot in
  let k = Kserve.kernel srv in
  let cfg = Kserve.config srv in
  let nfiles = cfg.Kserve.cfg_files in
  let cycle conn =
    let r = Kserve.host_accept srv ~conn ~file:(conn mod nfiles) in
    check_bool "open accepted" true (Kserve.msg_op r <> Kserve.op_err);
    Kserve.host_close srv ~slot:(Kserve.msg_id r)
  in
  (* warmup: one synthesis per (slot, file) pairing in this pattern *)
  for c = 0 to nfiles - 1 do
    cycle c
  done;
  let fp0 = Ksynth.footprint_words k in
  let peak0 = Metrics.read_gauge k.Kernel.metrics Metrics.code_bytes_peak in
  let hits0 = (Ksynth.stats k).Ksynth.st_hits in
  let live0 = (Ksynth.stats k).Ksynth.st_live_words in
  for c = 0 to 99 do
    cycle c
  done;
  check_int "arena footprint flat across 100 open/close cycles" fp0
    (Ksynth.footprint_words k);
  Alcotest.(check (option (float 0.0)))
    "code_bytes_peak gauge flat" peak0
    (Metrics.read_gauge k.Kernel.metrics Metrics.code_bytes_peak);
  check_int "every churned accept was a cache hit" (hits0 + 100)
    (Ksynth.stats k).Ksynth.st_hits;
  check_int "live words flat (no detached copies accumulating)" live0
    (Ksynth.stats k).Ksynth.st_live_words

let () =
  Alcotest.run "ksynth"
    [
      ( "cache",
        [
          Alcotest.test_case "hit shares the page" `Quick test_hit_shares_page;
          Alcotest.test_case "distinct invariants, distinct pages" `Quick
            test_distinct_invariants_distinct_pages;
        ] );
      ( "copy-on-patch",
        [
          Alcotest.test_case "patch refuses a shared page" `Quick
            test_patch_refuses_shared_page;
          Alcotest.test_case "sole-owner patch detaches" `Quick
            test_sole_owner_patch_detaches;
          Alcotest.test_case "patch forks a private copy" `Quick
            test_patch_forks_private_copy;
        ] );
      ( "kalloc guard",
        [
          Alcotest.test_case "free refuses a shared code page" `Quick
            test_free_refuses_shared_code_page;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "evict then resynthesize" `Quick
            test_evict_and_resynthesize;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_rebuild_exact_under_storm ] );
      ( "serve-churn",
        [
          Alcotest.test_case "100 open/close cycles leak nothing" `Quick
            test_serve_connection_churn_no_leak;
        ] );
    ]
