(* kcrash tests: power-cut device behavior, barrier ordering in the
   elevator, the LRU cache + dirty write-back against a naive model
   disk, and the crash-consistency litmus families — both the
   positive runs (barriers + intent log hold) and the committed
   repros showing each litmus fails with its mechanism disabled. *)

open Quamachine
open Synthesis
module I = Insn
module E = Repro_harness.Explorer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bwords = Disk_server.block_words

let setup ?cache_capacity ?timeout_us () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let ds = Disk_server.install k ?cache_capacity ?timeout_us () in
  let m = k.Kernel.machine in
  (match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 0;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> Alcotest.fail "no idle thread");
  (b, k, ds)

(* ---------------------------------------------------------------- *)
(* Power-cut device behavior *)

let test_power_cut_torn_write () =
  let _b, k, ds = setup () in
  let m = k.Kernel.machine in
  let disk = k.Kernel.disk in
  Devices.Disk.write_block disk 5 (Array.init bwords (fun i -> 5000 + i));
  (match Disk_server.read_block_sync ds 5 ~max_insns:10_000_000 with
  | None -> Alcotest.fail "block 5 never arrived"
  | Some buf ->
    for i = 0 to bwords - 1 do
      Machine.poke m (buf + i) (7000 + i)
    done;
    Disk_server.mark_dirty ds 5);
  ignore (Disk_server.flush ds ());
  (* the write-back is pending at the device; the cut lands its first
     8 words and loses the rest — the prefix-torn sector model *)
  Devices.Disk.power_cut ~torn_words:8 disk;
  check_bool "power off" false (Devices.Disk.powered disk);
  let blk = Devices.Disk.read_block disk 5 in
  for i = 0 to 7 do
    check_int (Fmt.str "torn word %d (new)" i) (7000 + i) blk.(i)
  done;
  for i = 8 to bwords - 1 do
    check_int (Fmt.str "word %d (old)" i) (5000 + i) blk.(i)
  done

let test_power_cut_drops_whole_write () =
  let _b, k, ds = setup () in
  let m = k.Kernel.machine in
  let disk = k.Kernel.disk in
  Devices.Disk.write_block disk 6 (Array.init bwords (fun i -> 600 + i));
  (match Disk_server.read_block_sync ds 6 ~max_insns:10_000_000 with
  | None -> Alcotest.fail "block 6 never arrived"
  | Some buf ->
    Machine.poke m buf 31337;
    Disk_server.mark_dirty ds 6);
  ignore (Disk_server.flush ds ());
  Devices.Disk.power_cut ~torn_words:(-1) disk;
  let blk = Devices.Disk.read_block disk 6 in
  check_int "whole write lost, old data intact" 600 blk.(0)

let test_sync_timeout_then_reawait () =
  let _b, k, ds = setup () in
  let disk = k.Kernel.disk in
  Devices.Disk.write_block disk 7 (Array.init bwords (fun i -> 700 + i));
  (* a budget far too small for the transfer latency: the sync read
     gives up, counts the timeout, and leaves the request in flight *)
  (match Disk_server.read_block_sync ds 7 ~max_insns:3 with
  | Some _ -> Alcotest.fail "read completed in 3 instructions"
  | None -> ());
  check_int "sync timeout counted" 1 (Disk_server.sync_timeouts ds);
  check_int "disk.sync_timeouts metric" 1
    (Metrics.read k.Kernel.metrics "disk.sync_timeouts");
  (* same block again: joins the same transfer instead of issuing a
     second one *)
  (match Disk_server.read_block_sync ds 7 ~max_insns:10_000_000 with
  | None -> Alcotest.fail "re-await never completed"
  | Some buf ->
    let m = k.Kernel.machine in
    check_int "word 0" 700 (Machine.peek m buf);
    check_int "last word" (700 + bwords - 1)
      (Machine.peek m (buf + bwords - 1)));
  let _hits, misses = Disk_server.stats ds in
  check_int "one miss: re-await did not double-issue" 1 misses

let test_dead_device_fails_cleanly_then_recovers () =
  let _b, k, ds = setup () in
  let disk = k.Kernel.disk in
  Devices.Disk.write_block disk 9 (Array.init bwords (fun i -> 900 + i));
  Devices.Disk.power_cut disk;
  (* the fill command is swallowed by the dead device; the completion
     watchdog retries with backoff, then fails the request — the
     waiter wakes with an error instead of wedging forever *)
  (match Disk_server.read_block_sync ds 9 ~max_insns:10_000_000 with
  | Some _ -> Alcotest.fail "read completed against a dead device"
  | None -> ());
  check_bool "bounded retry gave up" true (Disk_server.failed ds >= 1);
  check_bool "watchdog retried first" true (Disk_server.retries ds >= 1);
  (* power restored: the failed fill dropped its cache slot, so a
     fresh read issues cleanly and completes *)
  Devices.Disk.power_on disk;
  (match Disk_server.read_block_sync ds 9 ~max_insns:50_000_000 with
  | None -> Alcotest.fail "read never completed after power_on"
  | Some buf ->
    let m = k.Kernel.machine in
    check_int "word 0" 900 (Machine.peek m buf);
    check_int "last word" (900 + bwords - 1)
      (Machine.peek m (buf + bwords - 1)))

(* ---------------------------------------------------------------- *)
(* Barrier ordering in the elevator *)

let submit_write k ds blk =
  let buf = Kalloc.alloc k.Kernel.alloc bwords in
  ignore (Disk_server.submit ds ~block:blk ~buffer:buf ~write:true ())

let pos order blk =
  let rec go i = function
    | [] -> Alcotest.failf "block %d never serviced" blk
    | b :: _ when b = blk -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 order

let test_barrier_fences_elevator () =
  let _b, k, ds = setup () in
  (* without the fence the elevator would sort 10 < 20 < 30; the
     barrier pins 20 after both earlier submissions *)
  submit_write k ds 30;
  submit_write k ds 10;
  Disk_server.barrier ds;
  submit_write k ds 20;
  check_bool "drained" true (Disk_server.drain ds ~max_insns:50_000_000);
  let order = Disk_server.service_order ds in
  check_bool
    (Fmt.str "20 after 30 and 10 (got %a)" Fmt.(Dump.list int) order)
    true
    (pos order 20 > pos order 30 && pos order 20 > pos order 10);
  check_bool "fence counted" true (Disk_server.barriers ds >= 1)

let test_barrier_request_private_epoch () =
  let _b, k, ds = setup () in
  let buf = Kalloc.alloc k.Kernel.alloc bwords in
  submit_write k ds 40;
  submit_write k ds 10;
  ignore (Disk_server.submit ds ~barrier:true ~block:25 ~buffer:buf ~write:true ());
  submit_write k ds 20;
  submit_write k ds 35;
  check_bool "drained" true (Disk_server.drain ds ~max_insns:50_000_000);
  let order = Disk_server.service_order ds in
  let p = pos order in
  check_bool
    (Fmt.str "25 strictly between epochs (got %a)" Fmt.(Dump.list int) order)
    true
    (p 25 > p 40 && p 25 > p 10 && p 25 < p 20 && p 25 < p 35)

(* ---------------------------------------------------------------- *)
(* LRU cache + dirty write-back vs a naive model disk *)

(* Random op sequences over 8 blocks through a 4-slot cache (so
   eviction write-back runs constantly), mirrored into a host-side
   model: every read must return exactly the model contents, and
   after a final flush + drain the platter must equal the model. *)
let prop_cache_matches_model =
  QCheck.Test.make ~count:15 ~name:"cache + write-back matches model disk"
    QCheck.(
      list_of_size
        Gen.(int_range 1 40)
        (quad (int_bound 2) (int_bound 7) (int_bound (bwords - 1))
           (int_bound 9999)))
    (fun ops ->
      let _b, k, ds = setup ~cache_capacity:4 () in
      let m = k.Kernel.machine in
      let disk = k.Kernel.disk in
      let model =
        Array.init 8 (fun blk ->
            Array.init bwords (fun i -> ((blk * 1000) + i) land 0xFFFF))
      in
      Array.iteri
        (fun blk data -> Devices.Disk.write_block disk blk (Array.copy data))
        model;
      let read blk =
        match Disk_server.read_block_sync ds blk ~max_insns:10_000_000 with
        | Some buf -> buf
        | None -> QCheck.Test.fail_reportf "block %d never arrived" blk
      in
      List.iter
        (fun (tag, blk, idx, v) ->
          match tag with
          | 0 ->
            let buf = read blk in
            for i = 0 to bwords - 1 do
              if Machine.peek m (buf + i) <> model.(blk).(i) then
                QCheck.Test.fail_reportf
                  "read of block %d word %d: got %d, model %d" blk i
                  (Machine.peek m (buf + i))
                  model.(blk).(i)
            done
          | 1 ->
            let buf = read blk in
            Machine.poke m (buf + idx) v;
            Disk_server.mark_dirty ds blk;
            model.(blk).(idx) <- v
          | _ -> ignore (Disk_server.flush ds ~barrier:true ()))
        ops;
      ignore (Disk_server.flush ds ~barrier:true ());
      if not (Disk_server.drain ds ~max_insns:100_000_000) then
        QCheck.Test.fail_report "pipeline never drained";
      Array.iteri
        (fun blk data ->
          let platter = Devices.Disk.read_block disk blk in
          Array.iteri
            (fun i v ->
              if platter.(i) <> v then
                QCheck.Test.fail_reportf
                  "platter block %d word %d: got %d, model %d" blk i
                  platter.(i) v)
            data)
        model;
      true)

(* ---------------------------------------------------------------- *)
(* Crash-consistency litmus families *)

let test_litmus_holds_with_mechanisms () =
  List.iter
    (fun fam ->
      let r = E.run_crash fam ~seed:1 () in
      Alcotest.(check (list string))
        (E.crash_family_name fam ^ " litmus") [] r.E.c_violations;
      check_bool "explored crash states" true (r.E.c_states > 2);
      check_bool "explored torn variants" true (r.E.c_torn > 0);
      check_bool "live power cut fired" true r.E.c_live_cut)
    E.crash_families

(* Committed repros: each family must FAIL with its load-bearing
   mechanism disabled — otherwise the mechanism is dead weight and
   the litmus proves nothing. *)

let test_repro_barriers_off () =
  List.iter
    (fun fam ->
      let r =
        E.run_crash
          ~mechanisms:{ Dfs.m_barriers = false; m_journal = true }
          fam ~seed:1 ()
      in
      check_bool
        (E.crash_family_name fam ^ " violates without write barriers")
        true
        (r.E.c_violations <> []))
    [ E.Create_rename; E.Prefix_append ]

let test_repro_journal_off () =
  let r =
    E.run_crash
      ~mechanisms:{ Dfs.m_barriers = true; m_journal = false }
      E.Replace ~seed:1 ()
  in
  check_bool "replace tears without the intent log" true
    (r.E.c_violations <> [])

let test_recovery_replays_counted () =
  (* across a full exploration at least one enumerated crash state
     lands inside the commit window, so the intent log must replay *)
  let replays =
    List.fold_left
      (fun acc seed -> acc + (E.run_crash E.Replace ~seed ()).E.c_replays)
      0 [ 1; 2 ]
  in
  check_bool "intent log replayed at least once" true (replays >= 1)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "crash"
    [
      ( "power",
        [
          Alcotest.test_case "cut tears the pending write" `Quick
            test_power_cut_torn_write;
          Alcotest.test_case "cut can drop the pending write whole" `Quick
            test_power_cut_drops_whole_write;
          Alcotest.test_case "sync timeout leaves request re-awaitable" `Quick
            test_sync_timeout_then_reawait;
          Alcotest.test_case "dead device fails cleanly, recovers on power"
            `Quick test_dead_device_fails_cleanly_then_recovers;
        ] );
      ( "barriers",
        [
          Alcotest.test_case "fence pins service order" `Quick
            test_barrier_fences_elevator;
          Alcotest.test_case "barrier request gets a private epoch" `Quick
            test_barrier_request_private_epoch;
        ] );
      ( "litmus",
        [
          Alcotest.test_case "all families hold with barriers + journal"
            `Quick test_litmus_holds_with_mechanisms;
          Alcotest.test_case "repro: barriers off breaks rename/append" `Quick
            test_repro_barriers_off;
          Alcotest.test_case "repro: journal off tears replace" `Quick
            test_repro_journal_off;
          Alcotest.test_case "recovery replays the intent log" `Quick
            test_recovery_replays_counted;
        ] );
      ("properties", qcheck [ prop_cache_matches_model ]);
    ]
