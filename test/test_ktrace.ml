(* Ktrace: event ordering across a two-stage pipeline, balanced cycle
   attribution, and the zero-cost claim for disabled tracing. *)

open Quamachine
open Synthesis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* The shared workload: producer thread writes [total] words into a
   pipe in 8-word bursts, consumer reads and sums them.  Returns the
   booted instance after the run; [tracing] as in the overhead bench. *)

let run_pipeline ?(total = 1024) ~tracing () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let tr =
    match tracing with
    | `None -> None
    | `Off ->
      let tr = Ktrace.create ~enabled:false m in
      Kernel.attach_tracing k tr;
      Some tr
    | `On ->
      let tr = Ktrace.create m in
      Kernel.attach_tracing k tr;
      Some tr
  in
  let pl = Repro_harness.Harness.Pipeline.build ~total b in
  Repro_harness.Harness.Pipeline.run pl;
  ( b,
    tr,
    pl.Repro_harness.Harness.Pipeline.pl_producer.Kernel.tid,
    pl.Repro_harness.Harness.Pipeline.pl_consumer.Kernel.tid )

(* ------------------------------------------------------------------ *)
(* Event ordering *)

let test_event_ordering () =
  let _, tr, ptid, ctid = run_pipeline ~tracing:`On () in
  let tr = Option.get tr in
  let evs = Ktrace.events tr in
  check_bool "events recorded" true (List.length evs > 0);
  (* cycle stamps are monotone *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Ktrace.ev_cycles <= b.Ktrace.ev_cycles && monotone rest
    | _ -> true
  in
  check_bool "stamps monotone" true (monotone evs);
  (* the CPU is handed over, never duplicated: a thread switches in
     only after the previous one switched out, so in/out alternate *)
  let switches =
    List.filter_map
      (fun e ->
        match e.Ktrace.ev_kind with
        | Ktrace.Switch_out tid -> Some (`Out tid)
        | Ktrace.Switch_in tid -> Some (`In tid)
        | _ -> None)
      evs
  in
  check_bool "switch events exist" true (switches <> []);
  (* The boot-time idle thread predates the tracing attach, so its
     switches are unprobed; the invariants below hold for the traced
     (workload) threads.  The CPU is handed over, never duplicated:
     once a traced thread switches in, no other traced thread switches
     in until it has switched out. *)
  (* Per thread, in/out strictly alternate starting with in; a thread
     that exits (rather than being preempted) ends on a final in.
     Exits are also why the global sequence may show two ins in a row:
     a dying thread never runs its switch-out. *)
  let tids =
    List.sort_uniq compare
      (List.map (function `In t -> t | `Out t -> t) switches)
  in
  List.iter
    (fun tid ->
      let mine =
        List.filter (function `In t | `Out t -> t = tid) switches
      in
      let rec alternating = function
        | `In _ :: `Out _ :: rest -> alternating rest
        | [ `In _ ] | [] -> true
        | _ -> false
      in
      check_bool
        (Printf.sprintf "thread %d: switch-out precedes its next switch-in" tid)
        true (alternating mine))
    tids;
  (* both pipeline threads took the CPU at least once *)
  let ran tid = List.exists (function `In t -> t = tid | _ -> false) switches in
  check_bool "producer ran" true (ran ptid);
  check_bool "consumer ran" true (ran ctid);
  (* data flows forward: the first put into the pipe precedes the
     first (successful) get out of it *)
  let first_cycle pred =
    List.find_map
      (fun e -> if pred e.Ktrace.ev_kind then Some e.Ktrace.ev_cycles else None)
      evs
  in
  let put =
    first_cycle (function Ktrace.Queue_put (_, true) -> true | _ -> false)
  in
  let get =
    first_cycle (function Ktrace.Queue_get (_, true) -> true | _ -> false)
  in
  (match (put, get) with
  | Some p, Some g -> check_bool "first put precedes first get" true (p < g)
  | _ -> Alcotest.fail "pipeline produced no queue events");
  (* every block has a matching unblock on the same wait queue *)
  let blocks =
    List.filter_map
      (fun e ->
        match e.Ktrace.ev_kind with Ktrace.Block (wq, _) -> Some wq | _ -> None)
      evs
  in
  List.iter
    (fun wq ->
      check_bool ("unblock seen for " ^ wq) true
        (List.exists
           (fun e ->
             match e.Ktrace.ev_kind with
             | Ktrace.Unblock (w, _) -> w = wq
             | _ -> false)
           evs))
    blocks

(* ------------------------------------------------------------------ *)
(* Cycle attribution *)

let test_attribution_balances () =
  let b, tr, _, _ = run_pipeline ~tracing:`On () in
  let tr = Option.get tr in
  let m = b.Boot.kernel.Kernel.machine in
  (* per-owner totals sum exactly to the cycles of the traced window *)
  check_int "attributed = traced" (Ktrace.traced_cycles tr)
    (Ktrace.attributed_total tr);
  (* ... and the quaject grouping is just a re-bucketing of the same *)
  let qsum = List.fold_left (fun a (_, c) -> a + c) 0 (Ktrace.quaject_cycles tr) in
  check_int "quaject totals re-bucket the same cycles"
    (Ktrace.attributed_total tr) qsum;
  (* tracing was attached right after boot, so the window is nearly
     the whole run: it can't exceed the machine total *)
  check_bool "window within machine total" true
    (Ktrace.traced_cycles tr <= Machine.cycles m);
  (* the synthesized pipe code dominates this workload; it must show
     up as a pipe quaject with a nonzero share *)
  check_bool "pipe quaject attributed" true
    (List.exists
       (fun (n, c) -> n = "pipe" && c > 0)
       (Ktrace.quaject_cycles tr));
  (* thread CPU reconstruction covers both workload threads *)
  check_bool "two or more threads measured" true
    (List.length (Ktrace.thread_cycles tr) >= 2)

(* ------------------------------------------------------------------ *)
(* Zero-cost disabled tracing *)

let test_disabled_tracing_is_free () =
  let b_plain, _, _, _ = run_pipeline ~tracing:`None () in
  let b_off, _, _, _ = run_pipeline ~tracing:`Off () in
  let cy b = Machine.cycles b.Boot.kernel.Kernel.machine in
  check_int "tracing-off changes no cycle counts" (cy b_plain) (cy b_off);
  let insns b = Machine.insns_executed b.Boot.kernel.Kernel.machine in
  check_int "tracing-off changes no instruction counts" (insns b_plain)
    (insns b_off)

(* ------------------------------------------------------------------ *)
(* Export *)

(* A tiny structural check that the export is valid JSON: balanced
   quotes/braces/brackets outside strings, and the required keys. *)
let json_well_formed s =
  let depth = ref 0 in
  let in_str = ref false in
  let ok = ref true in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if !in_str then begin
      if c = '\\' then incr i else if c = '"' then in_str := false
    end
    else begin
      match c with
      | '"' -> in_str := true
      | '{' | '[' -> incr depth
      | '}' | ']' ->
        decr depth;
        if !depth < 0 then ok := false
      | _ -> ()
    end;
    incr i
  done;
  !ok && !depth = 0 && not !in_str

let test_chrome_export () =
  let _, tr, _, _ = run_pipeline ~tracing:`On () in
  let tr = Option.get tr in
  let json = Ktrace.to_chrome_json tr in
  check_bool "balanced json" true (json_well_formed json);
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  check_bool "traceEvents present" true (contains "\"traceEvents\"");
  check_bool "span begin present" true (contains "\"ph\":\"B\"");
  check_bool "span end present" true (contains "\"ph\":\"E\"");
  check_bool "otherData present" true (contains "\"otherData\"");
  check_bool "quaject totals exported" true (contains "\"quajects\"")

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_registry () =
  let _, tr, _, _ = run_pipeline ~tracing:`On () in
  let tr = Option.get tr in
  let mx = Ktrace.metrics tr in
  (* every ring event was also counted, even if the ring dropped it *)
  let counted =
    List.fold_left (fun a (_, v) -> a + v) 0
      (List.filter
         (fun (n, _) ->
           String.length n > 7 && String.sub n 0 7 = "ktrace.")
         (Metrics.counters mx))
  in
  check_int "counters add up to the emit total" (Ktrace.event_count tr) counted;
  check_bool "switch-in counter nonzero" true
    (Metrics.read mx "ktrace.events.switch_in" > 0)

let () =
  Alcotest.run "ktrace"
    [
      ( "ktrace",
        [
          Alcotest.test_case "event ordering" `Quick test_event_ordering;
          Alcotest.test_case "attribution balances" `Quick
            test_attribution_balances;
          Alcotest.test_case "disabled tracing is free" `Quick
            test_disabled_tracing_is_free;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
          Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
        ] );
    ]
