(* NIC device-model tests (kserve): descriptor-ring delivery with the
   chaos knobs off is exact — no loss, duplication or reorder — across
   seeded interleavings on 1–4 cores; with knobs on, what reaches each
   direction reconciles exactly against the device's own fault
   counters (drop-only delivery is a strict subsequence of the
   injected stream).  The tx path is driven the same way: host-posted
   descriptors, doorbell, drained frames. *)

open Quamachine
open Synthesis
module I = Insn
module Nic = Devices.Nic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mix seed salt = ((seed * 0x9E3779B1) lxor (salt * 0x85EBCA6B)) land 0xFFFFFF

(* A per-core user thread spinning on a stop cell keeps the machine
   (and so the host devices) running while frames move. *)
let spin_threads k ~cores ~stop_cell =
  for cpu = 0 to cores - 1 do
    let program =
      [
        I.Label "loop";
        I.Move (I.Abs stop_cell, I.Reg I.r8);
        I.Tst (I.Reg I.r8);
        I.B (I.Eq, I.To_label "loop");
        I.Trap 0;
      ]
    in
    let entry, _ = Asm.assemble k.Kernel.machine program in
    let t =
      Thread.create k ~cpu ~quantum_us:50 ~segments:[ (stop_cell, 1) ] ~entry ()
    in
    Thread.start k t
  done

type rx_run = {
  rr_got : int list;  (* payloads, delivery order *)
  rr_stats : Nic.stats;
}

(* Drive [n] one-word frames through the rx ring: an injector device
   offers frame [j] (payload [j]) at seed-jittered gaps, a consumer
   device drains the ring at its own seed-jittered pace, and spin
   threads on every core keep time moving.  Returns the consumed
   payloads in order. *)
let run_rx ?(n = 48) ?(ring_len = 8) ?(drop = 0) ?(dup = 0) ?(reorder = 0)
    ~cores ~seed () =
  let boot = Boot.boot ~cores () in
  let k = boot.Boot.kernel in
  let m = k.Kernel.machine in
  let nic = Nic.install ~poll_us:1.0 m in
  let alloc = k.Kernel.alloc in
  let ring = Kalloc.alloc_zeroed alloc (Nic.desc_words * ring_len) in
  let bufs = Kalloc.alloc_zeroed alloc ring_len in
  for i = 0 to ring_len - 1 do
    let d = ring + (Nic.desc_words * i) in
    Machine.poke m d (bufs + i);
    Machine.poke m (d + 1) 1
  done;
  Nic.host_config_rx nic ~ring ~len:ring_len ~mail:0 ~tail_cell:0;
  Nic.host_enable nic true;
  if drop > 0 || dup > 0 || reorder > 0 then
    Nic.set_chaos nic ~dir:0 ~seed:(mix seed 1) ~drop_1_in:drop ~dup_1_in:dup
      ~reorder_1_in:reorder;
  let stop_cell = Kalloc.alloc_zeroed alloc 1 in
  spin_threads k ~cores ~stop_cell;
  (* injector: one frame per tick, seed-jittered inter-arrival *)
  let injected = ref 0 in
  let inj = ref None in
  let inj_tick m' =
    if !injected < n then begin
      Nic.inject nic [| !injected |];
      incr injected;
      match !inj with
      | Some d ->
        Machine.device_schedule m' d
          (Machine.cycles m' + 40 + (mix seed (100 + !injected) mod 200))
      | None -> ()
    end
  in
  inj := Some (Machine.add_device m ~name:"inj" ~due:50 ~tick:inj_tick);
  (* consumer: drain everything ready, seed-jittered polling *)
  let got = ref [] in
  let tail = ref 0 in
  let quiet = ref 0 in
  let cons = ref None in
  let cons_tick m' =
    let made_progress = ref false in
    while (Nic.rx_head nic - !tail) land Word.mask > 0 do
      let slot = !tail mod ring_len in
      let d = ring + (Nic.desc_words * slot) in
      check_int "descriptor marked full" 1 (Machine.peek m' (d + 2));
      got := Machine.peek m' (Machine.peek m' d) :: !got;
      Machine.poke m' (d + 2) 0;
      incr tail;
      Nic.host_rx_tail nic !tail;
      made_progress := true
    done;
    (* stop once the wire is quiet and nothing new arrives for a
       while (reordered frames flush on idle ticks) *)
    if !injected >= n && Nic.wire_backlog nic = 0 && not !made_progress then
      incr quiet
    else quiet := 0;
    if !quiet > 40 then Machine.poke m' stop_cell 1
    else
      match !cons with
      | Some d ->
        Machine.device_schedule m' d
          (Machine.cycles m' + 30 + (mix seed (500 + !tail) mod 150))
      | None -> ()
  in
  cons := Some (Machine.add_device m ~name:"cons" ~due:60 ~tick:cons_tick);
  (match Boot.go ~max_insns:4_000_000 boot with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "rx run did not converge");
  { rr_got = List.rev !got; rr_stats = Nic.stats nic }

(* Same shape for tx: a producer device posts descriptors and rings
   the doorbell; the card's emitted frames are collected by a sink. *)
let run_tx ?(n = 48) ?(ring_len = 8) ?(drop = 0) ?(dup = 0) ?(reorder = 0)
    ~cores ~seed () =
  let boot = Boot.boot ~cores () in
  let k = boot.Boot.kernel in
  let m = k.Kernel.machine in
  let nic = Nic.install ~poll_us:1.0 m in
  let alloc = k.Kernel.alloc in
  let ring = Kalloc.alloc_zeroed alloc (Nic.desc_words * ring_len) in
  let bufs = Kalloc.alloc_zeroed alloc ring_len in
  for i = 0 to ring_len - 1 do
    let d = ring + (Nic.desc_words * i) in
    Machine.poke m d (bufs + i);
    Machine.poke m (d + 1) 1
  done;
  Nic.host_config_tx nic ~ring ~len:ring_len ~mail:0 ~head_cell:0;
  Nic.host_enable nic true;
  if drop > 0 || dup > 0 || reorder > 0 then
    Nic.set_chaos nic ~dir:1 ~seed:(mix seed 2) ~drop_1_in:drop ~dup_1_in:dup
      ~reorder_1_in:reorder;
  let got = ref [] in
  Nic.set_tx_sink nic (Some (fun f -> got := f.(0) :: !got));
  let stop_cell = Kalloc.alloc_zeroed alloc 1 in
  spin_threads k ~cores ~stop_cell;
  let head = ref 0 in
  let quiet = ref 0 in
  let prod = ref None in
  let prod_tick m' =
    (if !head < n && (!head - Nic.tx_tail nic) land Word.mask < ring_len then begin
       let slot = !head mod ring_len in
       let d = ring + (Nic.desc_words * slot) in
       Machine.poke m' (Machine.peek m' d) !head;
       Machine.poke m' (d + 1) 1;
       incr head;
       Nic.host_tx_head nic !head;
       quiet := 0
     end
     else if !head >= n then incr quiet);
    if !quiet > 40 then Machine.poke m' stop_cell 1
    else
      match !prod with
      | Some d ->
        Machine.device_schedule m' d
          (Machine.cycles m' + 35 + (mix seed (900 + !head) mod 180))
      | None -> ()
  in
  prod := Some (Machine.add_device m ~name:"prod" ~due:50 ~tick:prod_tick);
  (match Boot.go ~max_insns:4_000_000 boot with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "tx run did not converge");
  (List.rev !got, Nic.stats nic)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let is_strict_subseq xs ys =
  (* xs is a strictly increasing selection from ys (both int lists) *)
  let rec go xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs', y :: ys' -> if x = y then go xs' ys' else go xs ys'
  in
  go xs ys

let seeds = QCheck.Gen.int_bound 9999

let prop_rx_exact =
  QCheck.Test.make ~count:12 ~name:"rx: knobs off is exact on 1-4 cores"
    (QCheck.make seeds) (fun seed ->
      let cores = 1 + (seed mod 4) in
      let r = run_rx ~cores ~seed () in
      r.rr_got = List.init 48 (fun i -> i)
      && r.rr_stats.Nic.s_rx_delivered = 48
      && r.rr_stats.Nic.s_rx_dropped = 0
      && r.rr_stats.Nic.s_rx_dupped = 0
      && r.rr_stats.Nic.s_rx_reordered = 0
      && r.rr_stats.Nic.s_rx_overruns = 0)

let prop_rx_drop_subseq =
  QCheck.Test.make ~count:10 ~name:"rx: drop-only delivery is a subsequence"
    (QCheck.make seeds) (fun seed ->
      let cores = 1 + (seed mod 4) in
      let r = run_rx ~cores ~seed ~drop:5 () in
      let all = List.init 48 (fun i -> i) in
      is_strict_subseq r.rr_got all
      && List.length r.rr_got = 48 - r.rr_stats.Nic.s_rx_dropped)

let prop_rx_conservation =
  QCheck.Test.make ~count:10
    ~name:"rx: all knobs reconcile against the fault counters"
    (QCheck.make seeds) (fun seed ->
      let cores = 1 + (seed mod 4) in
      let r = run_rx ~cores ~seed ~drop:9 ~dup:7 ~reorder:6 () in
      let st = r.rr_stats in
      (* every consumed payload was injected *)
      List.for_all (fun p -> p >= 0 && p < 48) r.rr_got
      (* each at most once plus its duplications *)
      && List.length r.rr_got
         = 48 - st.Nic.s_rx_dropped + st.Nic.s_rx_dupped - st.Nic.s_rx_overruns
           - st.Nic.s_rx_shed
      (* a payload never appears more than twice (dup is 1-shot) *)
      && List.for_all
           (fun p ->
             List.length (List.filter (( = ) p) r.rr_got) <= 2)
           r.rr_got)

let prop_tx_exact =
  QCheck.Test.make ~count:12 ~name:"tx: knobs off is exact on 1-4 cores"
    (QCheck.make seeds) (fun seed ->
      let cores = 1 + (seed mod 4) in
      let got, st = run_tx ~cores ~seed () in
      got = List.init 48 (fun i -> i)
      && st.Nic.s_tx_sent = 48
      && st.Nic.s_tx_dropped = 0
      && st.Nic.s_tx_dupped = 0
      && st.Nic.s_tx_reordered = 0)

let prop_tx_conservation =
  QCheck.Test.make ~count:10
    ~name:"tx: all knobs reconcile against the fault counters"
    (QCheck.make seeds) (fun seed ->
      let cores = 1 + (seed mod 4) in
      let got, st = run_tx ~cores ~seed ~drop:8 ~dup:6 ~reorder:7 () in
      List.for_all (fun p -> p >= 0 && p < 48) got
      && List.length got = 48 - st.Nic.s_tx_dropped + st.Nic.s_tx_dupped)

(* ------------------------------------------------------------------ *)
(* Directed tests                                                      *)
(* ------------------------------------------------------------------ *)

(* Admission control sheds exactly the frames beyond the limit when
   nobody consumes. *)
let test_admission () =
  let boot = Boot.boot () in
  let k = boot.Boot.kernel in
  let m = k.Kernel.machine in
  let nic = Nic.install m in
  let alloc = k.Kernel.alloc in
  let ring_len = 8 in
  let ring = Kalloc.alloc_zeroed alloc (Nic.desc_words * ring_len) in
  let bufs = Kalloc.alloc_zeroed alloc ring_len in
  for i = 0 to ring_len - 1 do
    let d = ring + (Nic.desc_words * i) in
    Machine.poke m d (bufs + i);
    Machine.poke m (d + 1) 1
  done;
  Nic.host_config_rx nic ~ring ~len:ring_len ~mail:0 ~tail_cell:0;
  Nic.host_enable nic true;
  Nic.host_set_admit nic 3;
  let stop_cell = Kalloc.alloc_zeroed alloc 1 in
  spin_threads k ~cores:1 ~stop_cell;
  let sent = ref 0 in
  let dev = ref None in
  let tick m' =
    if !sent < 10 then begin
      Nic.inject nic [| !sent |];
      incr sent;
      match !dev with
      | Some d -> Machine.device_schedule m' d (Machine.cycles m' + 200)
      | None -> ()
    end
    else Machine.poke m' stop_cell 1
  in
  dev := Some (Machine.add_device m ~name:"inj" ~due:50 ~tick);
  (match Boot.go ~max_insns:2_000_000 boot with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "admission run did not converge");
  let st = Nic.stats nic in
  check_int "admitted up to the limit" 3 st.Nic.s_rx_delivered;
  check_int "the rest shed at the ring" 7 st.Nic.s_rx_shed;
  check_int "never overran" 0 st.Nic.s_rx_overruns

(* A forced one-shot frame fault (Machine.frame_fault, the hook
   Fault_inject's Frame_fault action fires) beats the seeded knobs. *)
let test_forced_frame_fault () =
  let boot = Boot.boot () in
  let k = boot.Boot.kernel in
  let m = k.Kernel.machine in
  let nic = Nic.install m in
  let alloc = k.Kernel.alloc in
  let ring_len = 8 in
  let ring = Kalloc.alloc_zeroed alloc (Nic.desc_words * ring_len) in
  let bufs = Kalloc.alloc_zeroed alloc ring_len in
  for i = 0 to ring_len - 1 do
    let d = ring + (Nic.desc_words * i) in
    Machine.poke m d (bufs + i);
    Machine.poke m (d + 1) 1
  done;
  Nic.host_config_rx nic ~ring ~len:ring_len ~mail:0 ~tail_cell:0;
  Nic.host_enable nic true;
  (* arm a drop against the next rx frame, then inject two *)
  Machine.frame_fault m ~device:"nic" ~dir:0 ~kind:0;
  let stop_cell = Kalloc.alloc_zeroed alloc 1 in
  spin_threads k ~cores:1 ~stop_cell;
  let step = ref 0 in
  let dev = ref None in
  let tick m' =
    (match !step with
    | 0 -> Nic.inject nic [| 111 |]
    | 1 -> Nic.inject nic [| 222 |]
    | _ -> Machine.poke m' stop_cell 1);
    incr step;
    match !dev with
    | Some d ->
      if !step <= 2 then
        Machine.device_schedule m' d (Machine.cycles m' + 300)
    | None -> ()
  in
  dev := Some (Machine.add_device m ~name:"inj" ~due:50 ~tick);
  (match Boot.go ~max_insns:2_000_000 boot with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "frame-fault run did not converge");
  let st = Nic.stats nic in
  check_int "forced drop consumed the first frame" 1 st.Nic.s_rx_dropped;
  check_int "the second frame still arrived" 1 st.Nic.s_rx_delivered;
  check_int "delivered payload is the survivor" 222
    (Machine.peek m (Machine.peek m ring));
  (* the same action through a compiled Fault_inject plan *)
  let plan =
    Fault_inject.make_plan ~seed:1
      [
        {
          Fault_inject.ev_after = 1;
          ev_action = Fault_inject.Frame_fault { device = "nic"; dir = 0; kind = 1 };
        };
      ]
  in
  check_bool "plan action describes itself" true
    (String.length
       (Fault_inject.describe_action (List.hd plan.Fault_inject.events).Fault_inject.ev_action)
    > 0)

let () =
  Alcotest.run "net"
    [
      ( "nic-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_rx_exact;
            prop_rx_drop_subseq;
            prop_rx_conservation;
            prop_tx_exact;
            prop_tx_conservation;
          ] );
      ( "nic-directed",
        [
          Alcotest.test_case "admission control sheds at the ring" `Quick
            test_admission;
          Alcotest.test_case "forced frame faults fire once" `Quick
            test_forced_frame_fault;
        ] );
    ]
