(* kspan: log-bucketed latency histograms, request-scoped causal
   spans, and the crash flight recorder.

   Histogram coverage: empty/single-sample quantiles, the exact-bucket
   to log-bucket boundary (15/16/17/31/32), saturating counts, and
   qcheck properties (merge associativity, quantile monotonicity, and
   the 1/16 relative-error bound).

   Span coverage: the pipe pipeline run with spans attached populates
   per-stage and total histograms, balances opened/closed, leaves no
   span open, and lands Span_open/Span_close events in the trace;
   spans attached-but-disabled are cycle-identical to no spans at all.

   Flight recorder: a sabotaged explorer subject must produce a
   postmortem whose open-span set names the in-flight request, plus a
   black-box Chrome trace export; clean runs produce neither. *)

open Quamachine
open Synthesis
module E = Repro_harness.Explorer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Histogram edge cases *)

let test_hist_empty () =
  let h = Histogram.create () in
  check_int "count" 0 (Histogram.count h);
  check_int "min" 0 (Histogram.min_value h);
  check_int "max" 0 (Histogram.max_value h);
  check_int "p50" 0 (Histogram.quantile h 0.5);
  check_int "p999" 0 (Histogram.quantile h 0.999);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Histogram.mean h)

let test_hist_single_sample () =
  let h = Histogram.create () in
  Histogram.record h 12_345;
  (* clamped to [min,max]: one sample is exact at every quantile *)
  List.iter
    (fun q -> check_int (Fmt.str "q=%g" q) 12_345 (Histogram.quantile h q))
    [ 0.0; 0.5; 0.9; 0.99; 0.999; 1.0 ];
  check_int "count" 1 (Histogram.count h)

let test_hist_bucket_boundaries () =
  (* 0..15 are exact buckets; 16 starts the shared log buckets *)
  List.iter
    (fun v ->
      let h = Histogram.create () in
      Histogram.record h v;
      check_int (Fmt.str "exact value %d" v) v (Histogram.quantile h 0.5))
    [ 0; 1; 15 ];
  List.iter
    (fun v ->
      let h = Histogram.create () in
      Histogram.record h v;
      let q = Histogram.quantile h 0.5 in
      (* single sample: still exact via the min/max clamp *)
      check_int (Fmt.str "clamped value %d" v) v q)
    [ 16; 17; 31; 32; 33; 1_000_000 ];
  (* distinct boundary values land in distinct buckets *)
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 15; 16; 17; 31; 32 ];
  check_int "five distinct buckets" 5 (List.length (Histogram.buckets h))

let test_hist_saturation () =
  let h = Histogram.create () in
  Histogram.record_n h 7 max_int;
  Histogram.record_n h 7 max_int;
  check_int "count saturates instead of wrapping" max_int (Histogram.count h);
  check_bool "count stays positive" true (Histogram.count h > 0);
  check_int "quantile still answers" 7 (Histogram.quantile h 0.5);
  Histogram.record_n h 9 (-5);
  check_int "negative n is a no-op" max_int (Histogram.count h)

let test_hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.record a) [ 10; 20; 30 ];
  List.iter (Histogram.record b) [ 5; 40_000 ];
  let m = Histogram.merge a b in
  check_int "merged count" 5 (Histogram.count m);
  check_int "merged min" 5 (Histogram.min_value m);
  check_int "merged max" 40_000 (Histogram.max_value m);
  check_int "inputs unchanged" 3 (Histogram.count a)

(* ------------------------------------------------------------------ *)
(* Histogram properties *)

let hist_of l =
  let h = Histogram.create () in
  List.iter (Histogram.record h) l;
  h

let values_gen = QCheck.(list_of_size Gen.(0 -- 40) (int_bound 200_000))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:200
    QCheck.(triple values_gen values_gen values_gen)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      Histogram.equal
        (Histogram.merge a (Histogram.merge b c))
        (Histogram.merge (Histogram.merge a b) c))

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 60) (int_bound 500_000))
              (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (xs, (q1, q2)) ->
      let h = hist_of xs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Histogram.quantile h lo <= Histogram.quantile h hi)

let prop_quantile_relative_error =
  QCheck.Test.make ~name:"quantile error bounded by 1/16" ~count:200
    QCheck.(list_of_size Gen.(1 -- 60) (int_bound 500_000))
    (fun xs ->
      let h = hist_of xs in
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      n = 0
      || List.for_all
           (fun q ->
             (* same convention as the histogram: the ceil(q*n)-th
                smallest sample *)
             let rank =
               max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
             in
             let want = List.nth sorted rank in
             let got = Histogram.quantile h q in
             abs (got - want) <= (want / 8) + 1)
           [ 0.25; 0.5; 0.9; 0.99 ])

(* ------------------------------------------------------------------ *)
(* Span lifecycle through the pipe pipeline *)

let test_pipeline_spans () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let tr = Ktrace.create m in
  Kernel.attach_tracing k tr;
  let sp = Kernel.attach_spans k in
  let pl = Repro_harness.Harness.Pipeline.build ~total:1024 b in
  Repro_harness.Harness.Pipeline.run pl;
  (* 1024 words in 8-word write bursts: 128 spans, all closed *)
  check_int "all spans closed" 0 (Kspan.open_count sp);
  check_int "opened" 128 (Metrics.read k.Kernel.metrics "kspan.opened");
  check_int "closed" 128 (Metrics.read k.Kernel.metrics "kspan.closed");
  check_int "failed" 0 (Metrics.read k.Kernel.metrics "kspan.failed");
  let hists = Metrics.histograms k.Kernel.metrics in
  let count name =
    match List.assoc_opt name hists with
    | Some h -> Histogram.count h
    | None -> Alcotest.failf "histogram %s missing" name
  in
  check_int "total latency histogram" 128 (count "kspan.pipe.total_cycles");
  check_int "write service histogram" 128
    (count "kspan.pipe.write.service_cycles");
  check_bool "read wait histogram populated" true
    (count "kspan.pipe.read.wait_cycles" > 0);
  let events = Ktrace.events tr in
  let n_of f = List.length (List.filter f events) in
  check_int "Span_open events" 128
    (n_of (fun e ->
         match e.Ktrace.ev_kind with Ktrace.Span_open _ -> true | _ -> false));
  check_int "Span_close events" 128
    (n_of (fun e ->
         match e.Ktrace.ev_kind with Ktrace.Span_close _ -> true | _ -> false));
  check_bool "Span_hop events" true
    (n_of (fun e ->
         match e.Ktrace.ev_kind with Ktrace.Span_hop _ -> true | _ -> false)
    > 0)

let pipeline_cycles ~spans () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  (match spans with
  | `None -> ()
  | `Off -> ignore (Kernel.attach_spans ~enabled:false k));
  let pl = Repro_harness.Harness.Pipeline.build ~total:1024 b in
  Repro_harness.Harness.Pipeline.run pl;
  Machine.cycles k.Kernel.machine

let test_spans_off_cycle_identical () =
  check_int "attached-off == plain, to the cycle"
    (pipeline_cycles ~spans:`None ())
    (pipeline_cycles ~spans:`Off ())

(* ------------------------------------------------------------------ *)
(* Flight recorder: postmortem from a failing explorer subject *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_postmortem_names_inflight () =
  let r = E.run_subject ~sabotage:true E.kpipe_subject ~seed:2 () in
  check_bool "sabotage detected" true (r.E.s_violations <> []);
  match r.E.s_postmortem with
  | None -> Alcotest.fail "failing subject produced no postmortem"
  | Some pm ->
    check_bool "postmortem names the failing check" true
      (contains ~needle:"subject_check/kpipe" pm);
    check_bool "open-span set names the in-flight pipe request" true
      (contains ~needle:"pipe" pm && contains ~needle:"open spans" pm);
    check_bool "black box dumped" true (contains ~needle:"black box" pm);
    (match r.E.s_blackbox_json with
    | Some json ->
      check_bool "blackbox export is chrome JSON" true
        (contains ~needle:"traceEvents" json)
    | None -> Alcotest.fail "no black-box export")

let test_clean_run_no_postmortem () =
  let r = E.run_subject E.kpipe_subject ~seed:2 () in
  check_bool "clean run" true (r.E.s_violations = []);
  check_bool "no postmortem" true (r.E.s_postmortem = None);
  check_bool "no blackbox export" true (r.E.s_blackbox_json = None)

(* ------------------------------------------------------------------ *)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "kspan"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single sample" `Quick test_hist_single_sample;
          Alcotest.test_case "bucket boundaries" `Quick
            test_hist_bucket_boundaries;
          Alcotest.test_case "saturating counts" `Quick test_hist_saturation;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      qsuite "histogram-properties"
        [
          prop_merge_associative;
          prop_quantile_monotone;
          prop_quantile_relative_error;
        ];
      ( "spans",
        [
          Alcotest.test_case "pipeline lifecycle" `Quick test_pipeline_spans;
          Alcotest.test_case "spans-off cycle-identical" `Quick
            test_spans_off_cycle_identical;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "postmortem names in-flight request" `Slow
            test_postmortem_names_inflight;
          Alcotest.test_case "clean run has no postmortem" `Slow
            test_clean_run_no_postmortem;
        ] );
    ]
