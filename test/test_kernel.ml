(* Kernel tests: boot, context switching through the executable ready
   queue, thread operations, syscalls, synthesized file I/O. *)

open Quamachine
open Synthesis
module I = Insn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Load a user program into the code store, returning its entry. *)
let load_program b insns =
  let entry, _ = Asm.assemble b.Boot.kernel.Kernel.machine insns in
  entry

(* Allocate a user-visible data region. *)
let user_region b n = Kalloc.alloc_zeroed b.Boot.kernel.Kernel.alloc n

(* ------------------------------------------------------------------ *)

let test_boot_idle () =
  let b = Boot.boot () in
  check_bool "ready queue valid" true (Ready_queue.verify b.Boot.kernel);
  check_int "one thread (idle)" 1 (Ready_queue.length b.Boot.kernel)

let test_single_thread_runs () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let cell = user_region b 16 in
  let entry =
    load_program b
      [ I.Move (I.Imm 42, I.Abs cell); I.Trap 0 ]
  in
  let t = Thread.create k ~entry ~segments:[ (cell, 16) ] () in
  ignore t;
  (match Boot.go b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "thread wrote its cell" 42 (Machine.peek k.Kernel.machine cell)

let test_two_threads_interleave () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let cell = user_region b 16 in
  (* Two threads increment separate counters in a loop; quantum
     expiry alternates them through the executable ready queue. *)
  let mk_prog cell_addr count =
    [
      I.Move (I.Imm count, I.Reg I.r9);
      I.Label "loop";
      I.Alu_mem (I.Add, I.Imm 1, I.Abs cell_addr);
      I.Dbra (I.r9, I.To_label "loop");
      I.Trap 0;
    ]
  in
  let e1 = load_program b (mk_prog cell 999) in
  let e2 = load_program b (mk_prog (cell + 1) 1999) in
  let t1 = Thread.create k ~entry:e1 ~quantum_us:100 ~segments:[ (cell, 16) ] () in
  let t2 = Thread.create k ~entry:e2 ~quantum_us:100 ~segments:[ (cell, 16) ] () in
  ignore t1;
  ignore t2;
  check_bool "ready queue valid" true (Ready_queue.verify k);
  (* the idle thread leaves the ring while user threads are ready *)
  check_int "two threads queued" 2 (Ready_queue.length k);
  (match Boot.go ~max_insns:10_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "t1 counted" 1000 (Machine.peek k.Kernel.machine cell);
  check_int "t2 counted" 2000 (Machine.peek k.Kernel.machine (cell + 1))

(* Anchor and self-removal edge cases in the executable ready queue:
   removing the anchor thread must re-home the anchor to a surviving
   thread, and removing the last worker must re-instate the idle
   thread (never leaving a ring that points at a gone thread). *)

let test_remove_anchor_rehomes () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let entry = load_program b [ I.Label "l"; I.B (I.Always, I.To_label "l") ] in
  let _t1 = Thread.create k ~entry () in
  let _t2 = Thread.create k ~entry () in
  let a =
    match Kernel.anchor k 0 with
    | Some a -> a
    | None -> Alcotest.fail "no anchor"
  in
  Ready_queue.remove k a;
  check_bool "removed anchor left the ring" false (Ready_queue.in_queue a);
  (match Kernel.anchor k 0 with
  | Some a' ->
    check_bool "anchor re-homed to a queued thread" true
      (Ready_queue.in_queue a');
    check_bool "anchor is a different thread" true
      (a'.Kernel.tid <> a.Kernel.tid)
  | None -> Alcotest.fail "anchor lost");
  check_int "one thread left" 1 (Ready_queue.length k);
  check_bool "ready queue valid" true (Ready_queue.verify k)

let test_remove_last_worker_restores_idle () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let idle = b.Boot.idle in
  let entry = load_program b [ I.Label "l"; I.B (I.Always, I.To_label "l") ] in
  let t = Thread.create k ~entry () in
  check_bool "idle evicted while a worker is ready" false
    (Ready_queue.in_queue idle);
  (* the worker is the whole ring: its jmp points at itself *)
  Ready_queue.remove k t;
  check_bool "removed worker left the ring" false (Ready_queue.in_queue t);
  check_bool "idle re-instated" true (Ready_queue.in_queue idle);
  (match Kernel.anchor k 0 with
  | Some a -> check_int "anchor is idle again" idle.Kernel.tid a.Kernel.tid
  | None -> Alcotest.fail "anchor lost");
  check_int "only idle queued" 1 (Ready_queue.length k);
  check_bool "ready queue valid" true (Ready_queue.verify k)

let test_context_switch_preserves_registers () =
  (* Property: a thread's registers survive an arbitrary number of
     involuntary context switches. *)
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let cell = user_region b 32 in
  (* Thread 1 sets distinctive register values, spins, then dumps them. *)
  let prog =
    [
      I.Move (I.Imm 0x1111, I.Reg I.r9);
      I.Move (I.Imm 0x2222, I.Reg I.r10);
      I.Move (I.Imm 0x3333, I.Reg I.r11);
      I.Move (I.Imm 2000, I.Reg I.r12);
      I.Label "spin";
      I.Dbra (I.r12, I.To_label "spin");
      I.Move (I.Reg I.r9, I.Abs cell);
      I.Move (I.Reg I.r10, I.Abs (cell + 1));
      I.Move (I.Reg I.r11, I.Abs (cell + 2));
      I.Trap 0;
    ]
  in
  let busy =
    [
      I.Move (I.Imm 3000, I.Reg I.r9);
      I.Label "spin";
      I.Dbra (I.r9, I.To_label "spin");
      I.Trap 0;
    ]
  in
  let t1 =
    Thread.create k ~entry:(load_program b prog) ~quantum_us:50
      ~segments:[ (cell, 32) ] ()
  in
  let t2 = Thread.create k ~entry:(load_program b busy) ~quantum_us:50 () in
  ignore t1;
  ignore t2;
  (match Boot.go ~max_insns:10_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "r9 preserved" 0x1111 (Machine.peek k.Kernel.machine cell);
  check_int "r10 preserved" 0x2222 (Machine.peek k.Kernel.machine (cell + 1));
  check_int "r11 preserved" 0x3333 (Machine.peek k.Kernel.machine (cell + 2))

(* ------------------------------------------------------------------ *)
(* open /dev/null, read and write through synthesized routines *)

let poke_string m addr s =
  String.iteri (fun i c -> Machine.poke m (addr + i) (Char.code c)) s;
  Machine.poke m (addr + String.length s) 0

let test_open_null () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let region = user_region b 64 in
  poke_string m region "/dev/null";
  let prog =
    [
      (* fd = open("/dev/null") *)
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Reg I.r0, I.Abs (region + 32)); (* record fd *)
      (* r0 = read(fd, buf, 10) *)
      I.Move (I.Reg I.r0, I.Reg I.r1);
      I.Move (I.Imm (region + 40), I.Reg I.r2);
      I.Move (I.Imm 10, I.Reg I.r3);
      I.Trap 1;
      I.Move (I.Reg I.r0, I.Abs (region + 33)); (* read result *)
      (* r0 = write(fd, buf, 7) *)
      I.Move (I.Abs (region + 32), I.Reg I.r1);
      I.Move (I.Imm (region + 40), I.Reg I.r2);
      I.Move (I.Imm 7, I.Reg I.r3);
      I.Trap 2;
      I.Move (I.Reg I.r0, I.Abs (region + 34));
      (* close(fd) *)
      I.Move (I.Abs (region + 32), I.Reg I.r1);
      I.Trap 4;
      I.Move (I.Reg I.r0, I.Abs (region + 35));
      I.Trap 0;
    ]
  in
  let t = Thread.create k ~entry:(load_program b prog) ~segments:[ (region, 64) ] () in
  ignore t;
  (match Boot.go ~max_insns:10_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "open returned fd 0" 0 (Machine.peek m (region + 32));
  check_int "read /dev/null = EOF" 0 (Machine.peek m (region + 33));
  check_int "write /dev/null = count" 7 (Machine.peek m (region + 34));
  check_int "close ok" 0 (Machine.peek m (region + 35))

let test_file_read_write () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let content = Array.init 100 (fun i -> i * 3) in
  let _file = Fs.create_file b.Boot.vfs ~name:"/data/test" ~content () in
  let region = user_region b 256 in
  poke_string m region "/data/test";
  let buf = region + 128 in
  let prog =
    [
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3; (* open *)
      I.Move (I.Reg I.r0, I.Reg I.r13); (* keep fd in a preserved reg *)
      (* read 64 words *)
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Move (I.Imm buf, I.Reg I.r2);
      I.Move (I.Imm 64, I.Reg I.r3);
      I.Trap 1;
      I.Move (I.Reg I.r0, I.Abs (region + 32));
      (* read the remaining 36 + attempt 64 -> clamped *)
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Move (I.Imm (buf + 64), I.Reg I.r2);
      I.Move (I.Imm 64, I.Reg I.r3);
      I.Trap 1;
      I.Move (I.Reg I.r0, I.Abs (region + 33));
      (* read at EOF -> 0 *)
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Move (I.Imm (buf + 100), I.Reg I.r2);
      I.Move (I.Imm 8, I.Reg I.r3);
      I.Trap 1;
      I.Move (I.Reg I.r0, I.Abs (region + 34));
      I.Trap 0;
    ]
  in
  let t = Thread.create k ~entry:(load_program b prog) ~segments:[ (region, 256) ] () in
  ignore t;
  (match Boot.go ~max_insns:10_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "first read full" 64 (Machine.peek m (region + 32));
  check_int "second read clamped" 36 (Machine.peek m (region + 33));
  check_int "read at EOF" 0 (Machine.peek m (region + 34));
  for i = 0 to 99 do
    if Machine.peek m (buf + i) <> i * 3 then
      Alcotest.failf "content mismatch at %d: %d" i (Machine.peek m (buf + i))
  done

(* The user stack pointer is part of the switched context: values a
   thread pushed on its user stack must survive preemption. *)
let test_usp_preserved_across_switches () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let cell = user_region b 16 in
  let prog =
    [
      I.Push (I.Imm 1234);
      I.Push (I.Imm 5678);
      I.Move (I.Imm 3000, I.Reg I.r9);
      I.Label "spin";
      I.Dbra (I.r9, I.To_label "spin");
      I.Pop I.r10;
      I.Pop I.r11;
      I.Move (I.Reg I.r10, I.Abs cell);
      I.Move (I.Reg I.r11, I.Abs (cell + 1));
      I.Trap 0;
    ]
  in
  let busy =
    [
      I.Push (I.Imm 999);
      I.Move (I.Imm 4000, I.Reg I.r9);
      I.Label "spin";
      I.Dbra (I.r9, I.To_label "spin");
      I.Pop I.r10;
      I.Trap 0;
    ]
  in
  let t1 =
    Thread.create k ~quantum_us:50 ~entry:(load_program b prog)
      ~segments:[ (cell, 16) ] ()
  in
  let t2 = Thread.create k ~quantum_us:50 ~entry:(load_program b busy) () in
  ignore (t1, t2);
  (match Boot.go ~max_insns:10_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "top of user stack" 5678 (Machine.peek k.Kernel.machine cell);
  check_int "second user stack slot" 1234 (Machine.peek k.Kernel.machine (cell + 1))

(* All 32 descriptors in use: the 33rd open fails cleanly. *)
let test_fd_exhaustion () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let region = user_region b 64 in
  poke_string m region "/dev/null";
  let prog =
    [
      I.Move (I.Imm 31, I.Reg I.r9);
      I.Label "loop";
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3;
      I.Dbra (I.r9, I.To_label "loop");
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Reg I.r0, I.Abs (region + 32));
      I.Trap 0;
    ]
  in
  let _t = Thread.create k ~entry:(load_program b prog) ~segments:[ (region, 64) ] () in
  (match Boot.go ~max_insns:50_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "33rd open fails" (Word.of_int (-1)) (Machine.peek m (region + 32))

(* Threads exiting mid-run leave a consistent ready queue and return
   their kernel memory. *)
let test_exit_cleanup () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let live_before = Kalloc.live_words k.Kernel.alloc in
  let cell = user_region b 16 in
  let live_with_region = Kalloc.live_words k.Kernel.alloc in
  let short = [ I.Alu_mem (I.Add, I.Imm 1, I.Abs cell); I.Trap 0 ] in
  let long =
    [
      I.Move (I.Imm 20_000, I.Reg I.r9);
      I.Label "spin";
      I.Dbra (I.r9, I.To_label "spin");
      I.Alu_mem (I.Add, I.Imm 1, I.Abs (cell + 1));
      I.Trap 0;
    ]
  in
  ignore live_before;
  let t1 =
    Thread.create k ~quantum_us:50 ~entry:(load_program b short)
      ~segments:[ (cell, 16) ] ()
  in
  let t2 =
    Thread.create k ~quantum_us:50 ~entry:(load_program b long)
      ~segments:[ (cell, 16) ] ()
  in
  (match Boot.go ~max_insns:10_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "short thread ran" 1 (Machine.peek k.Kernel.machine cell);
  check_int "long thread ran to completion" 1 (Machine.peek k.Kernel.machine (cell + 1));
  check_bool "both zombies" true
    (t1.Kernel.state = Kernel.Zombie && t2.Kernel.state = Kernel.Zombie);
  check_bool "ready queue valid" true (Ready_queue.verify k);
  check_int "kernel memory freed" live_with_region (Kalloc.live_words k.Kernel.alloc)

(* Signal a thread blocked inside a kernel operation: delivery chains
   the handler to run when the kernel call completes (Procedure
   Chaining end to end). *)
let test_signal_chained_to_kernel_exit () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let vfs = b.Boot.vfs in
  let cell = user_region b 16 in
  let handler_prog = [ I.Alu_mem (I.Add, I.Imm 1, I.Abs cell); I.Rts ] in
  let handler, _ = Asm.assemble m handler_prog in
  let pipe = Kpipe.create k ~cap:32 () in
  let dst = user_region b 16 in
  let target =
    Thread.create k ~quantum_us:100 ~entry:0 ~segments:[ (cell, 16); (dst, 16) ] ()
  in
  let rfd, _wfd = Kpipe.attach vfs pipe target in
  let tprog =
    [
      I.Move (I.Imm handler, I.Reg I.r1);
      I.Trap 8;
      I.Move (I.Imm rfd, I.Reg I.r1);
      I.Move (I.Imm dst, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 1; (* blocks: pipe empty *)
      I.Move (I.Reg I.r0, I.Abs (cell + 1));
      I.Trap 0;
    ]
  in
  let tentry, _ = Asm.assemble m tprog in
  Machine.poke m (target.Kernel.base + Layout.Tte.off_regs + 17) tentry;
  let writer = Thread.create k ~quantum_us:100 ~entry:0 ~segments:[ (dst, 16) ] () in
  let _, wfd2 = Kpipe.attach vfs pipe writer in
  let sprog =
    [
      I.Move (I.Imm 2000, I.Reg I.r9);
      I.Label "wait";
      I.Dbra (I.r9, I.To_label "wait");
      I.Move (I.Imm target.Kernel.tid, I.Reg I.r1);
      I.Trap 6; (* signal the kernel-blocked target *)
      I.Move (I.Imm 1500, I.Reg I.r9);
      I.Label "wait2";
      I.Dbra (I.r9, I.To_label "wait2");
      I.Move (I.Imm wfd2, I.Reg I.r1);
      I.Move (I.Imm dst, I.Reg I.r2);
      I.Move (I.Imm 1, I.Reg I.r3);
      I.Trap 2; (* wake the reader *)
      I.Trap 0;
    ]
  in
  let sentry, _ = Asm.assemble m sprog in
  Machine.poke m (writer.Kernel.base + Layout.Tte.off_regs + 17) sentry;
  (match Boot.go ~max_insns:50_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "read completed after the signal" 1 (Machine.peek m (cell + 1));
  check_int "handler ran exactly once, after the kernel call" 1 (Machine.peek m cell)

(* Descriptors are per thread: thread B cannot use thread A's fd. *)
let test_fd_isolation_between_threads () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let region = user_region b 64 in
  poke_string m region "/dev/null";
  (* A opens (gets fd 0), then spins until B has tried *)
  let a_prog =
    [
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Reg I.r0, I.Abs (region + 32));
      I.Label "wait";
      I.Cmp (I.Imm 1, I.Abs (region + 30));
      I.B (I.Ne, I.To_label "wait");
      I.Trap 0;
    ]
  in
  (* B reads fd 0 without opening anything: must get -1 *)
  let b_prog =
    [
      I.Move (I.Imm 1500, I.Reg I.r9);
      I.Label "d";
      I.Dbra (I.r9, I.To_label "d");
      I.Move (I.Imm 0, I.Reg I.r1);
      I.Move (I.Imm (region + 40), I.Reg I.r2);
      I.Move (I.Imm 4, I.Reg I.r3);
      I.Trap 1;
      I.Move (I.Reg I.r0, I.Abs (region + 33));
      I.Move (I.Imm 1, I.Abs (region + 30));
      I.Trap 0;
    ]
  in
  let ta =
    Thread.create k ~quantum_us:100 ~entry:(load_program b a_prog)
      ~segments:[ (region, 64) ] ()
  in
  let tb =
    Thread.create k ~quantum_us:100 ~entry:(load_program b b_prog)
      ~segments:[ (region, 64) ] ()
  in
  ignore (ta, tb);
  (match Boot.go ~max_insns:50_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "fd isolation test stuck");
  check_int "A got fd 0" 0 (Machine.peek m (region + 32));
  check_int "B's fd 0 is invalid" (Word.of_int (-1)) (Machine.peek m (region + 33))

let () =
  Alcotest.run "kernel"
    [
      ( "boot",
        [
          Alcotest.test_case "boot creates idle" `Quick test_boot_idle;
          Alcotest.test_case "single thread runs and exits" `Quick test_single_thread_runs;
          Alcotest.test_case "two threads interleave" `Quick test_two_threads_interleave;
          Alcotest.test_case "removing the anchor re-homes it" `Quick
            test_remove_anchor_rehomes;
          Alcotest.test_case "removing the last worker restores idle" `Quick
            test_remove_last_worker_restores_idle;
          Alcotest.test_case "context switch preserves registers" `Quick
            test_context_switch_preserves_registers;
        ] );
      ( "io",
        [
          Alcotest.test_case "open/read/write/close /dev/null" `Quick test_open_null;
          Alcotest.test_case "file read with clamp and EOF" `Quick test_file_read_write;
          Alcotest.test_case "fd exhaustion" `Quick test_fd_exhaustion;
          Alcotest.test_case "fds are per thread" `Quick
            test_fd_isolation_between_threads;
        ] );
      ( "context",
        [
          Alcotest.test_case "user stack survives preemption" `Quick
            test_usp_preserved_across_switches;
          Alcotest.test_case "exit cleans up" `Quick test_exit_cleanup;
          Alcotest.test_case "signal chained past a kernel call" `Quick
            test_signal_chained_to_kernel_exit;
        ] );
    ]
