(* Smaller surfaces: assembler environments and label-immediates,
   template parameter checking, the monitor/inspector, scheduler
   history, and host building blocks. *)

open Quamachine
open Synthesis
module I = Insn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine () = Machine.create ~mem_words:(1 lsl 16) Cost.sun3_emulation

(* ------------------------------------------------------------------ *)
(* Assembler *)

let test_asm_external_env () =
  let m = machine () in
  let sub, _ = Asm.assemble m [ I.Move (I.Imm 5, I.Reg I.r0); I.Rts ] in
  let entry, _ =
    Asm.assemble ~env:[ ("callee", sub) ] m
      [ I.Jsr (I.To_label "callee"); I.Move (I.Reg I.r0, I.Abs 0x100); I.Halt ]
  in
  Machine.set_pc m entry;
  Machine.set_reg m I.sp 0x800;
  ignore (Machine.run ~max_insns:100 m);
  check_int "external symbol resolved" 5 (Machine.peek m 0x100)

let test_asm_label_immediate () =
  let m = machine () in
  let entry, syms =
    Asm.assemble m
      [
        I.Move (I.Lbl "target", I.Abs 0x100); (* code address as data *)
        I.Jmp (I.To_mem (I.Abs 0x100)); (* indirect through memory *)
        I.Halt;
        I.Label "target";
        I.Move (I.Imm 77, I.Abs 0x101);
        I.Halt;
      ]
  in
  Machine.set_pc m entry;
  ignore (Machine.run ~max_insns:100 m);
  check_int "label immediate stored" (Asm.symbol syms "target") (Machine.peek m 0x100);
  check_int "indirect jump through data" 77 (Machine.peek m 0x101)

let test_asm_local_shadows_env () =
  let m = machine () in
  let _, syms =
    Asm.assemble ~env:[ ("x", 999) ] m [ I.Label "x"; I.B (I.Always, I.To_label "x") ]
  in
  check_bool "local label wins over env" true (Asm.symbol syms "x" <> 999)

(* ------------------------------------------------------------------ *)
(* Templates *)

let test_template_missing_param () =
  let t =
    Template.make ~name:"t" ~params:[ "a"; "b" ] (fun p ->
        [ I.Move (I.Imm (p "a"), I.Reg I.r0); I.Move (I.Imm (p "b"), I.Reg I.r1) ])
  in
  Alcotest.check_raises "missing parameter" (Template.Missing_param ("t", "b"))
    (fun () -> ignore (Template.instantiate t ~env:[ ("a", 1) ]))

let test_template_folds_constants () =
  let t =
    Template.make ~name:"t" ~params:[ "base" ] (fun p ->
        [ I.Move (I.Abs (p "base"), I.Reg I.r0); I.Rts ])
  in
  match Template.instantiate t ~env:[ ("base", 0x123) ] with
  | [ I.Move (I.Abs 0x123, I.Reg 0); I.Rts ] -> ()
  | _ -> Alcotest.fail "constant not folded"

(* ------------------------------------------------------------------ *)
(* Monitor and Inspect *)

let test_monitor_static_cycles () =
  let m = machine () in
  let entry, _ = Asm.assemble m [ I.Nop; I.Nop; I.Rts ] in
  (* Nop = 2, Rts = 10 *)
  check_int "static cycles" 14 (Monitor.static_cycles m ~from:entry ~len:3)

let test_inspect_grep_and_disasm () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  check_bool "grep finds the idle loop" true (Inspect.grep k "idle" <> []);
  check_bool "grep is case-insensitive" true (Inspect.grep k "IDLE" <> []);
  check_bool "grep misses junk" true (Inspect.grep k "zzzz-nothing" = []);
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Inspect.disassemble_routine k ppf "idle_loop";
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  check_bool "disassembly mentions stop" true
    (let re = "stop" in
     let rec find i =
       i + String.length re <= String.length out
       && (String.sub out i (String.length re) = re || find (i + 1))
     in
     find 0)

let test_registry_report_groups () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let report = Kernel.registry_report k in
  check_bool "ctx group present" true
    (List.exists (fun (p, _, _) -> p = "ctx") report);
  (* every group's instruction count is positive *)
  check_bool "counts positive" true (List.for_all (fun (_, c, n) -> c > 0 && n > 0) report)

(* ------------------------------------------------------------------ *)
(* Scheduler history *)

let test_scheduler_history () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let sched = Scheduler.install k ~epoch_us:500 () in
  let spin, _ =
    Ksynth.install k ~name:"m/spin" [ I.Label "s"; I.B (I.Always, I.To_label "s") ]
  in
  let _t = Thread.create k ~quantum_us:100 ~entry:spin () in
  (match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> Alcotest.fail "nothing to run");
  ignore (Machine.run ~max_insns:100_000 m);
  let h = Scheduler.history sched in
  check_bool "history recorded" true (List.length h >= 2);
  (* newest first: timestamps strictly decreasing down the list *)
  let rec decreasing = function
    | r1 :: (r2 :: _ as rest) ->
      r1.Metrics.ep_time_us > r2.Metrics.ep_time_us && decreasing rest
    | _ -> true
  in
  check_bool "history ordered newest-first" true (decreasing h);
  (* every record carries the spinner's tid with a sane quantum *)
  check_bool "entries well-formed" true
    (List.for_all
       (fun r ->
         r.Metrics.ep_entries <> []
         && List.for_all
              (fun e -> e.Metrics.ep_rate >= 0 && e.Metrics.ep_quantum > 0)
              r.Metrics.ep_entries)
       h);
  check_int "epoch counter agrees" (List.length h) (Scheduler.epochs sched);
  check_int "rebalance counter agrees" (List.length h)
    (Metrics.read (Scheduler.metrics sched) "sched.rebalances")

(* ------------------------------------------------------------------ *)
(* Host building blocks: edges *)

let test_gauge_reset_and_add () =
  let g = Oq.Gauge.create () in
  Oq.Gauge.add g 10;
  Oq.Gauge.tick g;
  check_int "count" 11 (Oq.Gauge.count g);
  Oq.Gauge.reset g;
  check_int "reset" 0 (Oq.Gauge.count g)

let test_pump_stop_empty () =
  (* stopping a pump that never saw data terminates cleanly *)
  let pump = Oq.Pump.start ~source:(fun () -> None) ~sink:(fun (_ : int) -> ()) () in
  Oq.Pump.stop pump;
  check_int "nothing copied" 0 (Oq.Pump.copied pump)

let test_queue_capacity_edges () =
  Alcotest.check_raises "spsc too small"
    (Invalid_argument "Spsc.create: size must be >= 2") (fun () ->
      ignore (Oq.Spsc.create 1));
  let q = Oq.Mpsc.create 4 in
  check_int "capacity = size - 1" 3 (Oq.Mpsc.capacity q);
  Alcotest.check_raises "burst larger than capacity"
    (Invalid_argument "Mpsc.try_put_many") (fun () ->
      ignore (Oq.Mpsc.try_put_many q (fun i -> i) 4))

(* ------------------------------------------------------------------ *)
(* Cost model coherence *)

let test_cost_model_scaling () =
  let cy = Cost.cycles_of_us Cost.sun3_emulation 10.0 in
  check_int "16 MHz: 10us = 160 cycles" 160 cy;
  let us = Cost.us_of_cycles Cost.native 500 in
  check_bool "50 MHz: 500 cycles = 10us" true (abs_float (us -. 10.0) < 1e-9);
  check_bool "wait states raise ref cost" true
    (Cost.mem_ref_cycles Cost.sun3_emulation > Cost.mem_ref_cycles Cost.native)

let () =
  Alcotest.run "misc"
    [
      ( "asm",
        [
          Alcotest.test_case "external symbol env" `Quick test_asm_external_env;
          Alcotest.test_case "label immediates (Lbl)" `Quick test_asm_label_immediate;
          Alcotest.test_case "local labels shadow env" `Quick test_asm_local_shadows_env;
        ] );
      ( "template",
        [
          Alcotest.test_case "missing parameter raises" `Quick test_template_missing_param;
          Alcotest.test_case "constants folded" `Quick test_template_folds_constants;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "static cycles" `Quick test_monitor_static_cycles;
          Alcotest.test_case "inspect grep + disassemble" `Quick test_inspect_grep_and_disasm;
          Alcotest.test_case "registry report" `Quick test_registry_report_groups;
        ] );
      ( "scheduler",
        [ Alcotest.test_case "epoch history" `Quick test_scheduler_history ] );
      ( "blocks",
        [
          Alcotest.test_case "gauge reset/add" `Quick test_gauge_reset_and_add;
          Alcotest.test_case "pump stop when idle" `Quick test_pump_stop_empty;
          Alcotest.test_case "queue capacity edges" `Quick test_queue_capacity_edges;
        ] );
      ( "cost",
        [ Alcotest.test_case "clock/wait-state scaling" `Quick test_cost_model_scaling ] );
    ]
