(* I/O subsystem tests: the cooked TTY pipeline, the A/D buffered
   queue, procedure chaining, VFS edge cases, and the quaject
   interfacer's connection analysis. *)

open Quamachine
open Synthesis
module I = Insn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let poke_string m addr s =
  String.iteri (fun i c -> Machine.poke m (addr + i) (Char.code c)) s;
  Machine.poke m (addr + String.length s) 0

let read_words m addr n =
  String.init n (fun i -> Char.chr (Machine.peek m (addr + i) land 0x7F))

(* Boot + tty + a reader program; feed [typed], return what the reader
   got and what was echoed. *)
let tty_roundtrip typed =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let _srv = Tty.install b.Boot.vfs in
  let region = Kalloc.alloc_zeroed k.Kernel.alloc 256 in
  poke_string m region "/dev/tty";
  let buf = region + 64 in
  let len_cell = region + 200 in
  let prog =
    [
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Reg I.r0, I.Reg I.r13);
      I.Move (I.Reg I.r13, I.Reg I.r1);
      I.Move (I.Imm buf, I.Reg I.r2);
      I.Move (I.Imm 64, I.Reg I.r3);
      I.Trap 1;
      I.Move (I.Reg I.r0, I.Abs len_cell);
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  let _t = Thread.create k ~entry ~segments:[ (region, 256) ] () in
  Devices.Tty.feed k.Kernel.tty typed;
  (match Boot.go ~max_insns:100_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "tty roundtrip stuck");
  let len = Machine.peek m len_cell in
  (read_words m buf len, Devices.Tty.output k.Kernel.tty)

let test_tty_plain_line () =
  let got, echo = tty_roundtrip "hi there\n" in
  check_str "line delivered" "hi there\n" got;
  check_str "echoed" "hi there" echo

let test_tty_erase () =
  let got, _ = tty_roundtrip "hxx\b\bi\n" in
  check_str "erase applied" "hi\n" got

let test_tty_kill () =
  (* ^U wipes the line; only what follows survives *)
  let got, _ = tty_roundtrip "garbage\x15ok\n" in
  check_str "kill applied" "ok\n" got

let test_tty_erase_empty_line () =
  let got, _ = tty_roundtrip "\b\bok\n" in
  check_str "erase on empty line ignored" "ok\n" got

(* ------------------------------------------------------------------ *)
(* A/D buffered queue *)

let test_adq_data_integrity () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let adq = Interrupt.install_adq k ~n_elems:32 () in
  let out = Kalloc.alloc_zeroed k.Kernel.alloc 256 in
  (* consumer thread drains 16 elements (128 samples) into [out] *)
  let consumer_code =
    [
      I.Move (I.Imm out, I.Reg I.r10);
      I.Label "retry";
      I.Jsr (I.To_addr adq.Interrupt.adq_get);
      I.Tst (I.Reg I.r0);
      I.B (I.Eq, I.To_label "wait");
      I.Move (I.Imm 7, I.Reg I.r9);
      I.Label "elem";
      I.Move (I.Post_inc I.r1, I.Reg I.r4);
      I.Move (I.Reg I.r4, I.Post_inc I.r10);
      I.Dbra (I.r9, I.To_label "elem");
      I.Cmp (I.Imm (out + 128), I.Reg I.r10);
      I.B (I.Ne, I.To_label "retry");
      I.Hcall 0; (* placeholder: replaced below *)
      I.Label "wait";
    ]
    @ Interrupt.consumer_block_code k adq ~retry:"retry"
  in
  let done_flag = ref false in
  let done_id = Machine.register_hcall m (fun m ->
      done_flag := true;
      Machine.set_halted m true)
  in
  let code =
    List.map (function I.Hcall 0 -> I.Hcall done_id | i -> i) consumer_code
  in
  let entry, _ = Ksynth.install k ~name:"t/adconsumer" code in
  let t = Thread.create k ~quantum_us:300 ~system:true ~entry () in
  Machine.poke m (t.Kernel.base + Layout.Tte.off_regs + 16) Ctx.kernel_sr;
  (* At 44.1 kHz the inter-sample gap (22.7 us) is barely longer than a
     context switch; a sample arriving while the switch masks level 5
     is coalesced in the device's data register — real hardware
     behaviour.  Test strict lossless integrity at half rate, where
     every masking window is comfortably shorter than the gap. *)
  Devices.Ad.set_rate k.Kernel.ad 22_050;
  (match Kernel.anchor k 0 with
  | Some rt ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m rt.Kernel.sw_in_mmu
  | None -> Alcotest.fail "nothing to run");
  ignore (Machine.run ~max_insns:50_000_000 m);
  check_bool "consumer finished" true !done_flag;
  (* verify the samples match the device's deterministic sequence *)
  let expected =
    let seq = ref 1 in
    Array.init 128 (fun _ ->
        seq := (!seq * 1_103_515_245) + 12_345;
        (!seq lsr 8) land 0xFFFF)
  in
  let ok = ref true in
  for i = 0 to 127 do
    if Machine.peek m (out + i) <> expected.(i) then ok := false
  done;
  check_bool "samples in order, none lost" true !ok;
  check_int "no overruns" 0 adq.Interrupt.adq_overruns

(* At full 44.1 kHz rate: what arrives must still be an ordered
   subsequence of the source (drops from register coalescing allowed,
   corruption and reordering not). *)
let test_adq_full_rate_subsequence () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let adq = Interrupt.install_adq k ~n_elems:32 () in
  let out = Kalloc.alloc_zeroed k.Kernel.alloc 256 in
  let done_flag = ref false in
  let done_id = Machine.register_hcall m (fun m ->
      done_flag := true;
      Machine.set_halted m true)
  in
  let consumer_code =
    [
      I.Move (I.Imm out, I.Reg I.r10);
      I.Label "retry";
      I.Jsr (I.To_addr adq.Interrupt.adq_get);
      I.Tst (I.Reg I.r0);
      I.B (I.Eq, I.To_label "wait");
      I.Move (I.Imm 7, I.Reg I.r9);
      I.Label "elem";
      I.Move (I.Post_inc I.r1, I.Reg I.r4);
      I.Move (I.Reg I.r4, I.Post_inc I.r10);
      I.Dbra (I.r9, I.To_label "elem");
      I.Cmp (I.Imm (out + 128), I.Reg I.r10);
      I.B (I.Ne, I.To_label "retry");
      I.Hcall done_id;
      I.Label "wait";
    ]
    @ Interrupt.consumer_block_code k adq ~retry:"retry"
  in
  let entry, _ = Ksynth.install k ~name:"t/adconsumer2" consumer_code in
  let t = Thread.create k ~quantum_us:300 ~system:true ~entry () in
  Machine.poke m (t.Kernel.base + Layout.Tte.off_regs + 16) Ctx.kernel_sr;
  Devices.Ad.set_rate k.Kernel.ad 44_100;
  (match Kernel.anchor k 0 with
  | Some rt ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m rt.Kernel.sw_in_mmu
  | None -> Alcotest.fail "nothing to run");
  ignore (Machine.run ~max_insns:50_000_000 m);
  check_bool "consumer finished" true !done_flag;
  let source =
    let seq = ref 1 in
    Array.init 400 (fun _ ->
        seq := (!seq * 1_103_515_245) + 12_345;
        (!seq lsr 8) land 0xFFFF)
  in
  (* two-pointer subsequence match *)
  let si = ref 0 and matched = ref 0 in
  (try
     for i = 0 to 127 do
       let v = Machine.peek m (out + i) in
       while source.(!si) <> v do
         incr si;
         if !si >= 400 then raise Exit
       done;
       incr si;
       incr matched
     done
   with Exit -> ());
  check_int "all received samples in source order" 128 !matched

(* ------------------------------------------------------------------ *)
(* Procedure chaining *)

let test_chain_runs_after_handler () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let chain = Interrupt.install_chain k in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let proc1, _ =
    Ksynth.install k ~name:"t/p1" [ I.Alu_mem (I.Add, I.Imm 1, I.Abs cell); I.Rts ]
  in
  let proc2, _ =
    Ksynth.install k ~name:"t/p2" [ I.Alu_mem (I.Add, I.Imm 10, I.Abs cell); I.Rts ]
  in
  (* a fake handler chains two procedures, then returns; the runner
     must execute both, in order, before resuming the frame *)
  let frag =
    [
      I.Push (I.Lbl "after");
      I.Push (I.Imm Ctx.kernel_sr);
      I.Move (I.Imm proc1, I.Reg I.r1);
      I.Jsr (I.To_addr chain.Interrupt.ch_chain);
      I.Move (I.Imm proc2, I.Reg I.r1);
      I.Jsr (I.To_addr chain.Interrupt.ch_chain);
      I.Move (I.Abs cell, I.Abs (cell + 1)); (* not yet run: still 0 *)
      I.Rte;
      I.Label "after";
      I.Move (I.Abs cell, I.Abs (cell + 2)); (* after the runner: 11 *)
      I.Halt;
    ]
  in
  let entry, _ = Asm.assemble m frag in
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp Layout.boot_stack_top;
  Machine.set_pc m entry;
  ignore (Machine.run ~max_insns:10_000 m);
  check_int "procedures delayed until handler end" 0 (Machine.peek m (cell + 1));
  check_int "both chained procedures ran in order" 11 (Machine.peek m (cell + 2))

let test_chain_overflow_drops () =
  (* the chain queue holds 31 procedures; the 32nd chain call must be
     dropped without corrupting the frame *)
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let chain = Interrupt.install_chain k in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let proc, _ =
    Ksynth.install k ~name:"t/ovproc"
      [ I.Alu_mem (I.Add, I.Imm 1, I.Abs cell); I.Rts ]
  in
  let frag =
    [
      I.Push (I.Lbl "after");
      I.Push (I.Imm Ctx.kernel_sr);
      I.Move (I.Imm 39, I.Reg I.r9); (* 40 chain attempts *)
      I.Label "loop";
      I.Move (I.Imm proc, I.Reg I.r1);
      I.Jsr (I.To_addr chain.Interrupt.ch_chain);
      I.Dbra (I.r9, I.To_label "loop");
      I.Rte;
      I.Label "after";
      I.Halt;
    ]
  in
  let entry, _ = Asm.assemble m frag in
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp Layout.boot_stack_top;
  Machine.set_pc m entry;
  (match Machine.run ~max_insns:100_000 m with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "overflow test stuck");
  (* the queue holds size-1 = 31; the rest were dropped *)
  check_int "31 chained procedures ran" 31 (Machine.peek m cell)

(* ------------------------------------------------------------------ *)
(* VFS edge cases *)

let test_open_nonexistent () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let region = Kalloc.alloc_zeroed k.Kernel.alloc 64 in
  poke_string m region "/no/such";
  let prog =
    [
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Reg I.r0, I.Abs (region + 32));
      (* close of a never-opened fd *)
      I.Move (I.Imm 7, I.Reg I.r1);
      I.Trap 4;
      I.Move (I.Reg I.r0, I.Abs (region + 33));
      (* read on a bad fd *)
      I.Move (I.Imm 31, I.Reg I.r1);
      I.Trap 1;
      I.Move (I.Reg I.r0, I.Abs (region + 34));
      (* read on an out-of-range fd *)
      I.Move (I.Imm 1000, I.Reg I.r1);
      I.Trap 1;
      I.Move (I.Reg I.r0, I.Abs (region + 35));
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  let _t = Thread.create k ~entry ~segments:[ (region, 64) ] () in
  (match Boot.go ~max_insns:10_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "stuck");
  let err = Word.of_int (-1) in
  check_int "open missing = -1" err (Machine.peek m (region + 32));
  check_int "close bad fd = -1" err (Machine.peek m (region + 33));
  check_int "read bad fd = -1" err (Machine.peek m (region + 34));
  check_int "read out-of-range fd = -1" err (Machine.peek m (region + 35))

let test_fd_reuse_after_close () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let region = Kalloc.alloc_zeroed k.Kernel.alloc 64 in
  poke_string m region "/dev/null";
  let prog =
    [
      (* open twice: fds 0 and 1; close 0; open again: fd 0 reused *)
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Reg I.r0, I.Abs (region + 32));
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Reg I.r0, I.Abs (region + 33));
      I.Move (I.Imm 0, I.Reg I.r1);
      I.Trap 4;
      I.Move (I.Imm region, I.Reg I.r1);
      I.Trap 3;
      I.Move (I.Reg I.r0, I.Abs (region + 34));
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  let _t = Thread.create k ~entry ~segments:[ (region, 64) ] () in
  (match Boot.go ~max_insns:10_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "stuck");
  check_int "first fd" 0 (Machine.peek m (region + 32));
  check_int "second fd" 1 (Machine.peek m (region + 33));
  check_int "freed fd reused" 0 (Machine.peek m (region + 34))

(* ------------------------------------------------------------------ *)
(* File system model check: random op sequences against a reference *)

let test_fs_against_model () =
  let b = Boot.boot () in
  let vfs = b.Boot.vfs in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let file = Fs.create_file vfs ~name:"/data/model" ~capacity:128 () in
  (* drive the synthesized routines host-side through a thread fd *)
  let region = Kalloc.alloc_zeroed k.Kernel.alloc 64 in
  poke_string m region "/data/model";
  let t = Thread.create k ~entry:0 ~segments:[ (region, 64) ] () in
  let fd =
    match Vfs.open_named vfs t "/data/model" with
    | Some fd -> fd
    | None -> Alcotest.fail "open failed"
  in
  ignore fd;
  (* model: an int array + position *)
  let model = Array.make 128 0 in
  let model_size = ref 0 and model_pos = ref 0 in
  let scratch = Kalloc.alloc_zeroed k.Kernel.alloc 64 in
  let h = Hashtbl.find vfs.Vfs.opens (t.Kernel.tid, fd) in
  let call entry ~r2 ~r3 =
    (* run the synthesized routine as if dispatched from a trap *)
    let frag = [ I.Push (I.Lbl "ret"); I.Push (I.Imm Ctx.kernel_sr);
                 I.B (I.Always, I.To_addr entry); I.Label "ret"; I.Halt ] in
    let start, _ = Asm.assemble m frag in
    Machine.set_halted m false;
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp 0xE00;
    Machine.set_reg m I.r2 r2;
    Machine.set_reg m I.r3 r3;
    Machine.set_pc m start;
    (match Machine.run ~max_insns:100_000 m with
    | Machine.Halted -> ()
    | Machine.Insn_limit -> Alcotest.fail "routine stuck");
    Machine.get_reg m I.r0
  in
  let rng = Random.State.make [| 42 |] in
  for _step = 1 to 200 do
    match Random.State.int rng 3 with
    | 0 ->
      (* write a small chunk *)
      let n = 1 + Random.State.int rng 8 in
      for i = 0 to n - 1 do
        Machine.poke m (scratch + i) (Random.State.int rng 1000)
      done;
      let got = call h.Vfs.h_write ~r2:scratch ~r3:n in
      let room = 128 - !model_pos in
      let exp = min n room in
      check_int "write result" exp got;
      for i = 0 to exp - 1 do
        model.(!model_pos + i) <- Machine.peek m (scratch + i)
      done;
      model_pos := !model_pos + exp;
      model_size := max !model_size !model_pos
    | 1 ->
      (* read a small chunk *)
      let n = 1 + Random.State.int rng 8 in
      let got = call h.Vfs.h_read ~r2:scratch ~r3:n in
      let avail = !model_size - !model_pos in
      let exp = min n avail in
      check_int "read result" exp got;
      for i = 0 to exp - 1 do
        check_int "read data" model.(!model_pos + i) (Machine.peek m (scratch + i))
      done;
      model_pos := !model_pos + exp
    | _ ->
      (* seek *)
      let pos = Random.State.int rng (!model_size + 1) in
      check_bool "seek ok" true (Vfs.seek vfs t fd pos);
      model_pos := pos
  done;
  check_int "final size agrees" !model_size (Fs.file_size vfs file)

(* ------------------------------------------------------------------ *)
(* Quaject interfacer analysis (§5.2) *)

let test_interfacer_cases () =
  let open Quaject in
  let check name exp got = Alcotest.(check string) name exp (connector_name got) in
  let p ?mult e = port ?mult e in
  check "active->passive" "procedure call"
    (connect ~producer:(p Active) ~consumer:(p Passive));
  check "passive producer driven by consumer" "procedure call"
    (connect ~producer:(p Passive) ~consumer:(p Active));
  check "multiple on passive end" "monitor + procedure call"
    (connect ~producer:(p ~mult:Multiple Active) ~consumer:(p ~mult:Multiple Passive));
  check "active-active" "SP-SC optimistic queue"
    (connect ~producer:(p Active) ~consumer:(p Active));
  check "multi producers" "MP-SC optimistic queue"
    (connect ~producer:(p ~mult:Multiple Active) ~consumer:(p Active));
  check "multi consumers" "SP-MC optimistic queue"
    (connect ~producer:(p Active) ~consumer:(p ~mult:Multiple Active));
  check "multi both" "MP-MC optimistic queue"
    (connect ~producer:(p ~mult:Multiple Active) ~consumer:(p ~mult:Multiple Active));
  check "passive-passive" "pump"
    (connect ~producer:(p Passive) ~consumer:(p Passive))

let test_monitor_and_switch () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let mon = Quaject.create_monitor k ~name:"t/mon" in
  let sw_t1, _ = Ksynth.install k ~name:"t/sw1" [ I.Move (I.Imm 11, I.Reg I.r0); I.Rts ] in
  let sw_t2, _ = Ksynth.install k ~name:"t/sw2" [ I.Move (I.Imm 22, I.Reg I.r0); I.Rts ] in
  let sw = Quaject.create_switch k ~name:"t/sw" [| sw_t1; sw_t2 |] in
  let frag =
    [
      I.Jsr (I.To_addr mon.Quaject.mon_enter);
      I.Move (I.Abs mon.Quaject.mon_lock, I.Abs 0x500); (* locked = 1 *)
      I.Jsr (I.To_addr mon.Quaject.mon_exit);
      I.Move (I.Abs mon.Quaject.mon_lock, I.Abs 0x501); (* unlocked = 0 *)
      I.Move (I.Imm 1, I.Reg I.r1);
      I.Jsr (I.To_addr sw.Quaject.sw_entry); (* selector 1 -> 22 *)
      I.Move (I.Reg I.r0, I.Abs 0x502);
      I.Halt;
    ]
  in
  let entry, _ = Asm.assemble m frag in
  Machine.set_supervisor m true;
  Machine.set_reg m I.sp 0xE00;
  Machine.set_pc m entry;
  ignore (Machine.run ~max_insns:10_000 m);
  check_int "monitor held" 1 (Machine.peek m 0x500);
  check_int "monitor released" 0 (Machine.peek m 0x501);
  check_int "switch routed" 22 (Machine.peek m 0x502);
  (* retarget and call again *)
  Quaject.retarget k sw ~index:1 ~target:sw_t1;
  Machine.set_halted m false;
  Machine.set_pc m entry;
  ignore (Machine.run ~max_insns:10_000 m);
  check_int "switch retargeted" 11 (Machine.peek m 0x502)

(* Reference model of the cooked discipline: what a correct erase/kill
   filter delivers for a given keystroke stream. *)
let cooked_reference typed =
  let line = Buffer.create 16 and out = Buffer.create 64 in
  String.iter
    (fun c ->
      match c with
      | '\b' ->
        if Buffer.length line > 0 then begin
          let s = Buffer.contents line in
          Buffer.clear line;
          Buffer.add_string line (String.sub s 0 (String.length s - 1))
        end
      | '\x15' -> Buffer.clear line
      | '\n' ->
        Buffer.add_buffer out line;
        Buffer.add_char out '\n';
        Buffer.clear line
      | c -> Buffer.add_char line c)
    typed;
  Buffer.contents out

let gen_keystrokes =
  QCheck.Gen.(
    let key =
      frequency
        [
          (10, map (fun i -> Char.chr (97 + i)) (int_bound 25));
          (2, return '\b');
          (1, return '\x15');
          (3, return '\n');
        ]
    in
    map
      (fun l ->
        (* always terminate with a newline so everything is delivered *)
        String.init (List.length l) (List.nth l) ^ "\n")
      (list_size (int_range 1 25) key))

let prop_tty_matches_reference =
  QCheck.Test.make ~name:"cooked tty matches the reference discipline" ~count:25
    (QCheck.make gen_keystrokes ~print:String.escaped)
    (fun typed ->
      let expected = cooked_reference typed in
      if String.length expected = 0 || String.length expected > 60 then true
      else begin
        let b = Boot.boot () in
        let k = b.Boot.kernel in
        let m = k.Kernel.machine in
        let _srv = Tty.install b.Boot.vfs in
        let region = Kalloc.alloc_zeroed k.Kernel.alloc 256 in
        poke_string m region "/dev/tty";
        let buf = region + 64 in
        let want = String.length expected in
        let prog =
          [
            I.Move (I.Imm region, I.Reg I.r1);
            I.Trap 3;
            I.Move (I.Reg I.r0, I.Reg I.r13);
            I.Move (I.Imm 0, I.Reg I.r12); (* words so far *)
            I.Label "loop";
            I.Move (I.Reg I.r13, I.Reg I.r1);
            I.Move (I.Imm buf, I.Reg I.r2);
            I.Alu (I.Add, I.Reg I.r12, I.r2);
            I.Move (I.Imm 64, I.Reg I.r3);
            I.Trap 1;
            I.Alu (I.Add, I.Reg I.r0, I.r12);
            I.Cmp (I.Imm want, I.Reg I.r12);
            I.B (I.Cs, I.To_label "loop"); (* got < want *)
            I.Trap 0;
          ]
        in
        let entry, _ = Asm.assemble m prog in
        let _t = Thread.create k ~entry ~segments:[ (region, 256) ] () in
        Devices.Tty.feed k.Kernel.tty typed;
        (match Boot.go ~max_insns:200_000_000 b with
        | Machine.Halted -> ()
        | Machine.Insn_limit -> failwith "tty property run stuck");
        read_words m buf want = expected
      end)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "io"
    [
      ( "tty",
        [
          Alcotest.test_case "plain line" `Quick test_tty_plain_line;
          Alcotest.test_case "erase (^H)" `Quick test_tty_erase;
          Alcotest.test_case "kill (^U)" `Quick test_tty_kill;
          Alcotest.test_case "erase on empty line" `Quick test_tty_erase_empty_line;
        ] );
      ( "adq",
        [
          Alcotest.test_case "lossless at 22kHz" `Quick test_adq_data_integrity;
          Alcotest.test_case "ordered subsequence at 44.1kHz" `Quick
            test_adq_full_rate_subsequence;
        ] );
      ( "chain",
        [
          Alcotest.test_case "chained procs run after handler" `Quick
            test_chain_runs_after_handler;
          Alcotest.test_case "chain queue overflow drops" `Quick
            test_chain_overflow_drops;
        ] );
      ( "vfs",
        [
          Alcotest.test_case "errors on bad names and fds" `Quick test_open_nonexistent;
          Alcotest.test_case "fd reuse after close" `Quick test_fd_reuse_after_close;
          Alcotest.test_case "fs agrees with a reference model" `Quick test_fs_against_model;
        ] );
      ( "quaject",
        [
          Alcotest.test_case "interfacer case analysis" `Quick test_interfacer_cases;
          Alcotest.test_case "monitor and switch blocks" `Quick test_monitor_and_switch;
        ] );
      ("properties", qcheck [ prop_tty_matches_reference ]);
    ]
