(* kserve end-to-end: a seeded load-generator run over the full stack
   (NIC rings → rx pump → switch → synthesized per-connection service
   routines → tx pump) completes every session exactly once; a warm
   restart serves its accepts from the synthesis cache with a flat
   code footprint; overload arms admission control, sheds at the rx
   ring, and still converges; spans measure every served request. *)

open Quamachine
open Synthesis
open Repro_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_sessions_complete_exactly_once () =
  let boot = Boot.boot () in
  let k = boot.Boot.kernel in
  ignore (Kernel.attach_spans k);
  let srv =
    Kserve.create
      ~config:{ Kserve.default_config with cfg_workers = 2 }
      boot
  in
  let lg =
    Loadgen.create
      ~config:
        {
          Loadgen.default_config with
          lg_clients = 50;
          lg_reqs_per_session = 3;
        }
      ~on_complete:(fun () -> Kserve.shutdown srv)
      srv
  in
  (match Boot.go ~max_insns:40_000_000 boot with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "serve run did not converge");
  check_bool "all sessions finished" true (Loadgen.finished lg);
  check_bool "graph drained" true (Kserve.drained srv);
  check_int "every session completed" 50 (Loadgen.completed lg);
  check_int "nothing refused" 0 (Loadgen.refused lg);
  check_int "exactly-once: no unmatched responses" 0 (Loadgen.duplicates lg);
  check_int "no protocol errors" 0 (Loadgen.errors lg);
  check_int "no requests left in flight" 0 (Loadgen.in_flight lg);
  check_int "one send per receive" (Loadgen.sent lg) (Loadgen.received lg);
  let st = Kserve.stats srv in
  check_int "one accept per session" 50 st.Kserve.n_accepts;
  check_int "one close per session" 50 st.Kserve.n_closes;
  check_int "every slot returned" 0 (Kserve.open_slots srv);
  check_bool "tx pump answered every request" true
    (st.Kserve.n_responses >= Loadgen.received lg);
  (* spans: every request's latency was measured *)
  let h = Loadgen.latency lg in
  check_int "a latency sample per response" (Loadgen.received lg)
    (Histogram.count h);
  check_bool "the controller retuned worker quanta" true (st.Kserve.n_retunes > 0)

let test_warm_restart_hits_cache () =
  let boot = Boot.boot () in
  let srv = Kserve.create boot in
  let run () =
    let lg =
      Loadgen.create
        ~config:{ Loadgen.default_config with lg_clients = 40; lg_seed = 7 }
        ~on_complete:(fun () -> Kserve.shutdown srv)
        srv
    in
    (match Boot.go ~max_insns:60_000_000 boot with
    | Machine.Halted -> ()
    | Machine.Insn_limit -> Alcotest.fail "serve run did not converge");
    check_bool "sessions finished" true (Loadgen.finished lg)
  in
  run ();
  let st1 = Kserve.stats srv in
  let fp1 = Ksynth.footprint_words (Kserve.kernel srv) in
  check_int "cold run misses for every accept" st1.Kserve.n_accepts
    st1.Kserve.n_misses;
  Kserve.restart srv;
  run ();
  let st2 = Kserve.stats srv in
  let fp2 = Ksynth.footprint_words (Kserve.kernel srv) in
  let warm_accepts = st2.Kserve.n_accepts - st1.Kserve.n_accepts in
  let warm_hits = st2.Kserve.n_hits - st1.Kserve.n_hits in
  check_bool
    (Printf.sprintf "warm accepts are cache hits (%d/%d)" warm_hits
       warm_accepts)
    true
    (float_of_int warm_hits >= 0.9 *. float_of_int warm_accepts);
  check_int "code footprint stayed flat across the restart" fp1 fp2;
  check_bool "drained again" true (Kserve.drained srv)

let test_overload_sheds_and_converges () =
  let boot = Boot.boot () in
  let srv =
    Kserve.create
      ~config:
        {
          Kserve.default_config with
          cfg_workers = 1;
          cfg_queue_size = 32;
          cfg_admit_hi = 48;
          cfg_admit_lo = 16;
          cfg_admit_limit = 8;
        }
      boot
  in
  let lg =
    Loadgen.create
      ~config:
        {
          Loadgen.default_config with
          lg_clients = 300;
          lg_rate_per_ms = 300.0;
          lg_think_us = 20.0;
          lg_timeout_us = 8000.0;
          lg_retries = 6;
          lg_seed = 3;
        }
      ~on_complete:(fun () -> Kserve.shutdown srv)
      srv
  in
  (match Boot.go ~max_insns:200_000_000 boot with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "overload run did not converge");
  let st = Kserve.stats srv in
  check_bool "admission control shed at the rx ring" true (st.Kserve.n_shed > 0);
  check_bool "clients retried through the shedding" true
    (Loadgen.resent lg > 0);
  check_int "the ledger stayed exactly-once under overload" 0
    (Loadgen.duplicates lg);
  check_bool "some sessions were still served" true (Loadgen.completed lg > 0);
  check_bool "graph drained after the storm" true (Kserve.drained srv)

let test_host_accept_slot_discipline () =
  let boot = Boot.boot () in
  let srv = Kserve.create boot in
  let cfg = Kserve.config srv in
  (* an open answers with the slot and echoes the connection *)
  let r = Kserve.host_accept srv ~conn:9 ~file:0 in
  check_bool "open accepted" true (Kserve.msg_op r <> Kserve.op_err);
  check_int "connection echoed" 9 (Kserve.msg_arg r);
  (* the same connection opening again is idempotent: same slot, no
     second slot consumed *)
  let dup = Kserve.host_accept srv ~conn:9 ~file:1 in
  check_int "duplicate open returns the same slot" (Kserve.msg_id r)
    (Kserve.msg_id dup);
  check_int "one slot in use" 1 (Kserve.open_slots srv);
  check_int "the duplicate was counted" 1 (Kserve.stats srv).Kserve.n_dup_opens;
  Kserve.host_close srv ~slot:(Kserve.msg_id r);
  check_int "slot returned on close" 0 (Kserve.open_slots srv);
  (* slot exhaustion refuses with op_err and a zero id *)
  for c = 0 to cfg.Kserve.cfg_slots - 1 do
    let r = Kserve.host_accept srv ~conn:(100 + c) ~file:(c mod 4) in
    check_bool "filling opens accepted" true (Kserve.msg_op r <> Kserve.op_err)
  done;
  let r = Kserve.host_accept srv ~conn:9999 ~file:0 in
  check_int "the table-full open is refused" Kserve.op_err (Kserve.msg_op r);
  check_int "refusals carry id 0" 0 (Kserve.msg_id r);
  check_int "refusal counted" 1 (Kserve.stats srv).Kserve.n_refused

let () =
  Alcotest.run "serve"
    [
      ( "kserve",
        [
          Alcotest.test_case "sessions complete exactly once" `Quick
            test_sessions_complete_exactly_once;
          Alcotest.test_case "warm restart hits the synthesis cache" `Quick
            test_warm_restart_hits_cache;
          Alcotest.test_case "overload sheds and converges" `Quick
            test_overload_sheds_and_converges;
          Alcotest.test_case "host accept/close slot discipline" `Quick
            test_host_accept_slot_discipline;
        ] );
    ]
