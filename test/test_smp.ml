(* kSMP tests: multi-core boot, per-core kernel state, work stealing,
   and pinned repros for the single-CPU assumptions the SMP sweep
   flushed out.

   Each repro test names the latent assumption it pins:
   - idle fast-forward: an all-stopped warp must never skip cycles a
     busy core still has to execute;
   - current-thread cells: the "who runs here" cells are per core, not
     one global set every core clobbers;
   - quantum timers: each core preempts on its own timer, so arming a
     quantum on one core cannot cancel another core's;
   - alarm chaining: trap 7 reads the arming thread's tid through the
     per-core window, so a secondary core's alarm signals the right
     thread;
   - cross-core signals: a thread running on another core right now
     has its context in that core's registers — delivery must bounce
     through the home core's IPI, not poke either image from afar;
   - steal dispatch guard: a thread that is current on its home core
     (or mid-switch there) must not be migrated. *)

open Quamachine
open Synthesis
module E = Repro_harness.Explorer
module I = Insn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let load_program b insns =
  let entry, _ = Asm.assemble b.Boot.kernel.Kernel.machine insns in
  entry

let user_region b n = Kalloc.alloc_zeroed b.Boot.kernel.Kernel.alloc n

(* A worker that counts [n] increments into [cell] and exits. *)
let counter_prog cell n =
  [
    I.Move (I.Imm (n - 1), I.Reg I.r9);
    I.Label "loop";
    I.Alu_mem (I.Add, I.Imm 1, I.Abs cell);
    I.Dbra (I.r9, I.To_label "loop");
    I.Trap 0;
  ]

(* ------------------------------------------------------------------ *)
(* Boot and bring-up *)

let test_two_cores_run_in_parallel () =
  let b = Boot.boot ~cores:2 () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cells = user_region b 16 in
  let t0 =
    Thread.create k ~cpu:0
      ~entry:(load_program b (counter_prog cells 1_000))
      ~segments:[ (cells, 16) ] ()
  in
  let t1 =
    Thread.create k ~cpu:1
      ~entry:(load_program b (counter_prog (cells + 1) 2_000))
      ~segments:[ (cells, 16) ] ()
  in
  check_int "t0 homed on core 0" 0 t0.Kernel.cpu;
  check_int "t1 homed on core 1" 1 t1.Kernel.cpu;
  check_bool "rings verify" true (Ready_queue.verify k);
  (match Boot.go ~max_insns:10_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "core 0's thread counted" 1_000 (Machine.peek m cells);
  check_int "core 1's thread counted" 2_000 (Machine.peek m (cells + 1));
  check_bool "core 1 actually executed" true (Machine.core_insns m 1 > 2_000);
  check_bool "core 1 was started" true (Machine.core_started m 1)

(* Repro: the uniprocessor "everyone is stopped" fast-forward.  Core 0
   sits on its idle thread (Stop_wait between timer wakeups) while all
   user work is pinned to core 1.  A warp keyed off core 0 alone would
   jump the clock past core 1's unexecuted instructions; the work
   completing exactly proves no cycle was skipped. *)
let test_idle_core_does_not_fast_forward_past_busy_core () =
  let b = Boot.boot ~cores:2 () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = user_region b 8 in
  ignore
    (Thread.create k ~cpu:1
       ~entry:(load_program b (counter_prog cell 5_000))
       ~segments:[ (cell, 8) ] ());
  (match Boot.go ~max_insns:20_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "every increment executed" 5_000 (Machine.peek m cell);
  check_bool "core 0 only idled" true
    (Machine.core_insns m 0 < Machine.core_insns m 1)

(* Repro: per-core current-thread cells.  With one shared set of
   cells, each core's switch code would overwrite the other's "who
   runs here" record; with the per-core window, both cores' records
   stay simultaneously correct. *)
let test_per_core_current_cells () =
  let b = Boot.boot ~cores:2 () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = user_region b 8 in
  let spin c =
    [
      I.Label "loop";
      I.Alu_mem (I.Add, I.Imm 1, I.Abs c);
      I.B (I.Always, I.To_label "loop");
    ]
  in
  let t0 =
    Thread.create k ~cpu:0 ~entry:(load_program b (spin cell))
      ~segments:[ (cell, 8) ] ()
  in
  let t1 =
    Thread.create k ~cpu:1
      ~entry:(load_program b (spin (cell + 1)))
      ~segments:[ (cell, 8) ] ()
  in
  (match Boot.go ~max_insns:100_000 b with
  | Machine.Insn_limit -> ()
  | Machine.Halted -> Alcotest.fail "spinners cannot halt");
  check_int "core 0 records its own thread" t0.Kernel.base
    (Machine.peek m (Layout.cur_tte_cell_for 0));
  check_int "core 1 records its own thread" t1.Kernel.base
    (Machine.peek m (Layout.cur_tte_cell_for 1));
  check_int "core 0 tid cell" t0.Kernel.tid
    (Machine.peek m (Layout.cur_tid_cell_for 0));
  check_int "core 1 tid cell" t1.Kernel.tid
    (Machine.peek m (Layout.cur_tid_cell_for 1));
  (match Kernel.current ~cpu:0 k with
  | Some t -> check_int "Kernel.current cpu 0" t0.Kernel.tid t.Kernel.tid
  | None -> Alcotest.fail "no current on core 0");
  match Kernel.current ~cpu:1 k with
  | Some t -> check_int "Kernel.current cpu 1" t1.Kernel.tid t.Kernel.tid
  | None -> Alcotest.fail "no current on core 1"

(* Repro: per-core quantum timers.  Two compute-bound threads per
   core: round-robin within each core depends on that core's own
   quantum timer firing.  With one shared alarm register, core 1
   re-arming its quantum would cancel core 0's pending expiry and one
   thread per core could hog forever. *)
let test_per_core_quantum_timers () =
  let b = Boot.boot ~cores:2 () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cells = user_region b 8 in
  let spin c =
    [
      I.Label "loop";
      I.Alu_mem (I.Add, I.Imm 1, I.Abs c);
      I.B (I.Always, I.To_label "loop");
    ]
  in
  for i = 0 to 3 do
    ignore
      (Thread.create k ~cpu:(i / 2) ~quantum_us:100
         ~entry:(load_program b (spin (cells + i)))
         ~segments:[ (cells, 8) ] ())
  done;
  (match Boot.go ~max_insns:400_000 b with
  | Machine.Insn_limit -> ()
  | Machine.Halted -> Alcotest.fail "spinners cannot halt");
  for i = 0 to 3 do
    check_bool
      (Printf.sprintf "thread %d on core %d got its quantum" i (i / 2))
      true
      (Machine.peek m (cells + i) > 0)
  done

(* ------------------------------------------------------------------ *)
(* Cross-core signals and alarms *)

(* Repro: signalling a thread that is, right now, executing on another
   core.  Its context lives in that core's registers — neither the
   saved area nor the signaller's live frame is valid to poke.  The
   fixed path queues the delivery and IPIs the home core, which
   re-delivers into its own live frame. *)
let test_cross_core_signal_ipi () =
  let b = Boot.boot ~cores:2 () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = user_region b 8 in
  let handler, _ = Asm.assemble m [ I.Alu_mem (I.Add, I.Imm 1, I.Abs cell); I.Rts ] in
  (* target: register the handler, then spin bumping its own counter
     on core 1 — always current there *)
  let target_prog =
    [
      I.Move (I.Imm handler, I.Reg I.r1);
      I.Trap 8;
      I.Label "loop";
      I.Alu_mem (I.Add, I.Imm 1, I.Abs (cell + 1));
      I.B (I.Always, I.To_label "loop");
    ]
  in
  let target =
    Thread.create k ~cpu:1 ~entry:(load_program b target_prog)
      ~segments:[ (cell, 8) ] ()
  in
  (* signaller on core 0: wait until the target is demonstrably
     running (its counter moves), then trap 6 *)
  let sig_prog =
    [
      I.Label "wait";
      I.Tst (I.Abs (cell + 1));
      I.B (I.Eq, I.To_label "wait");
      I.Move (I.Imm target.Kernel.tid, I.Reg I.r1);
      I.Trap 6;
      I.Move (I.Reg I.r0, I.Abs (cell + 2));
      I.Trap 0;
    ]
  in
  ignore
    (Thread.create k ~cpu:0 ~entry:(load_program b sig_prog)
       ~segments:[ (cell, 8) ] ());
  (match Boot.go ~max_insns:400_000 b with
  | Machine.Insn_limit -> ()
  | Machine.Halted -> Alcotest.fail "target spins forever");
  check_int "signal accepted" 0 (Machine.peek m (cell + 2));
  check_int "handler ran on the home core" 1 (Machine.peek m cell);
  check_bool "target kept running undamaged" true
    (Machine.peek m (cell + 1) > 1_000)

(* Repro: trap 7 on a secondary core.  The alarm syscall snapshots the
   arming thread's tid through the per-core window; reading a global
   current-tid cell would chain the alarm to whatever core 0 was
   running.  The armer lives on core 1; the alarm interrupt (routed to
   core 0) must signal the core-1 thread — which also exercises the
   IPI path, since the armer keeps spinning on its home core. *)
let test_alarm_armed_from_secondary_core () =
  let b = Boot.boot ~cores:2 () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = user_region b 8 in
  let handler, _ = Asm.assemble m [ I.Alu_mem (I.Add, I.Imm 1, I.Abs cell); I.Rts ] in
  let armer_prog =
    [
      I.Move (I.Imm handler, I.Reg I.r1);
      I.Trap 8;
      I.Move (I.Imm 50, I.Reg I.r1);
      I.Trap 7; (* alarm in 50 us *)
      I.Label "loop";
      I.Alu_mem (I.Add, I.Imm 1, I.Abs (cell + 1));
      I.B (I.Always, I.To_label "loop");
    ]
  in
  ignore
    (Thread.create k ~cpu:1 ~entry:(load_program b armer_prog)
       ~segments:[ (cell, 8) ] ());
  (* a decoy thread occupies core 0, so a tid misread through a shared
     cell would chain the alarm to the wrong thread *)
  let decoy_prog =
    [
      I.Label "loop";
      I.Alu_mem (I.Add, I.Imm 1, I.Abs (cell + 2));
      I.B (I.Always, I.To_label "loop");
    ]
  in
  ignore
    (Thread.create k ~cpu:0 ~entry:(load_program b decoy_prog)
       ~segments:[ (cell, 8) ] ());
  (match Boot.go ~max_insns:400_000 b with
  | Machine.Insn_limit -> ()
  | Machine.Halted -> Alcotest.fail "spinners cannot halt");
  check_int "alarm signalled the core-1 armer" 1 (Machine.peek m cell)

(* ------------------------------------------------------------------ *)
(* Work stealing and the dispatch guard *)

let test_migrate_moves_thread_between_rings () =
  let b = Boot.boot ~cores:2 () in
  let k = b.Boot.kernel in
  let entry = load_program b [ I.Label "l"; I.B (I.Always, I.To_label "l") ] in
  let t = Thread.create k ~cpu:0 ~entry () in
  let u = Thread.create k ~cpu:0 ~entry () in
  ignore u;
  check_int "two on core 0's ring" 2 (List.length (Ready_queue.to_list ~cpu:0 k));
  check_bool "stealable before dispatch" true (Smp.stealable k t);
  check_bool "migrate succeeds" true (Smp.migrate k t ~cpu:1);
  check_int "rehomed" 1 t.Kernel.cpu;
  check_bool "rings still verify" true (Ready_queue.verify k);
  check_int "one left on core 0" 1 (List.length (Ready_queue.to_list ~cpu:0 k));
  check_bool "t now on core 1's ring" true
    (List.memq t (Ready_queue.to_list ~cpu:1 k));
  check_int "migration counted" 1 (Smp.migrations k);
  (* idle threads are pinned *)
  (match Kernel.idle_of k 1 with
  | Some idle ->
    Alcotest.check_raises "idle is pinned" (Invalid_argument
      "Smp.migrate: idle threads are pinned") (fun () ->
        ignore (Smp.migrate k idle ~cpu:0))
  | None -> Alcotest.fail "core 1 has no idle thread");
  (* steal pulls from the loaded core for an empty thief *)
  let v = Thread.create k ~cpu:0 ~entry () in
  ignore v;
  match Smp.steal k ~thief:1 with
  | Some stolen ->
    check_int "stolen thread rehomed" 1 stolen.Kernel.cpu;
    check_int "steal counted" 1 (Smp.steals k)
  | None -> Alcotest.fail "steal found no victim"

(* Repro: the dispatch guard.  A thread that is current on its home
   core has its context in that core's registers; stealing it would
   fork the context.  The guard refuses; the sabotage lever (used by
   the explorer's negative run) skips the refusal. *)
let test_steal_guard_refuses_running_thread () =
  let b = Boot.boot ~cores:2 () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = user_region b 8 in
  let spin c =
    [
      I.Label "loop";
      I.Alu_mem (I.Add, I.Imm 1, I.Abs c);
      I.B (I.Always, I.To_label "loop");
    ]
  in
  let t0 =
    Thread.create k ~cpu:0 ~entry:(load_program b (spin cell))
      ~segments:[ (cell, 8) ] ()
  in
  ignore
    (Thread.create k ~cpu:1
       ~entry:(load_program b (spin (cell + 1)))
       ~segments:[ (cell, 8) ] ());
  (match Boot.go ~max_insns:50_000 b with
  | Machine.Insn_limit -> ()
  | Machine.Halted -> Alcotest.fail "spinners cannot halt");
  (* t0 is mid-run on core 0: its sole ring membership makes it both
     current and the anchor *)
  check_bool "t0 is current on its home core" true
    (match Kernel.current ~cpu:0 k with Some c -> c == t0 | None -> false);
  check_bool "guard refuses the running thread" false (Smp.stealable k t0);
  check_bool "migrate refuses too" false (Smp.migrate k t0 ~cpu:1);
  check_int "still homed on core 0" 0 t0.Kernel.cpu;
  Smp.unsafe_skip_guard := true;
  check_bool "sabotage lever bypasses the guard" true (Smp.stealable k t0);
  Smp.unsafe_skip_guard := false;
  check_bool "guard back in force" false (Smp.stealable k t0);
  check_int "no migration happened" 0 (Smp.migrations k);
  ignore m

let test_stealer_balances_end_to_end () =
  let b = Boot.boot ~cores:2 () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cells = user_region b 8 in
  (* all work starts on core 0; core 1 has only its idle thread and a
     stealer device *)
  for i = 0 to 3 do
    ignore
      (Thread.create k ~cpu:0 ~quantum_us:200
         ~entry:(load_program b (counter_prog (cells + i) 3_000))
         ~segments:[ (cells, 8) ] ())
  done;
  ignore (Smp.install_stealer k ~cpu:1 ~period_us:300 ());
  (match Boot.go ~max_insns:20_000_000 b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  for i = 0 to 3 do
    check_int
      (Printf.sprintf "worker %d finished" i)
      3_000
      (Machine.peek m (cells + i))
  done;
  check_bool "work was stolen onto core 1" true (Smp.steals k >= 1);
  check_bool "core 1 executed stolen work" true (Machine.core_insns m 1 > 1_000)

(* ------------------------------------------------------------------ *)
(* The explorer's smp subject: determinism and sabotage *)

let test_smp_subject_deterministic () =
  let a = E.run_subject (E.smp_subject ~cores:2 ()) ~seed:3 () in
  let b = E.run_subject (E.smp_subject ~cores:2 ()) ~seed:3 () in
  Alcotest.(check (list string)) "no violations" [] a.E.s_violations;
  check_int "goal reached" a.E.s_goal a.E.s_progress;
  check_bool "same seed, same interleaving" true
    (a.E.s_trace_hash = b.E.s_trace_hash)

let test_smp_sabotage_is_caught () =
  let r =
    E.run_subject (E.smp_subject ~cores:2 ()) ~sabotage:true ~seed:3 ()
  in
  check_bool "skipped dispatch guard must violate an invariant" true
    (r.E.s_violations <> [])

(* ------------------------------------------------------------------ *)
(* Cross-core queue property: all four kinds, 2-4 cores *)

let kinds = [| Kqueue.Spsc; Kqueue.Mpsc; Kqueue.Spmc; Kqueue.Mpmc |]

let prop_queue_cross_core =
  QCheck.Test.make ~count:20 ~max_gen:200
    ~name:"kqueue cross-core: no loss, no dup, per-producer FIFO (2-4 cores)"
    QCheck.(
      triple (int_range 0 3) (int_range 2 4) (int_range 0 10_000))
    (fun (ki, cores, seed) ->
      let r =
        E.run_queue ~items:8 ~faults:false ~cores ~kind:kinds.(ki) ~seed ()
      in
      r.E.x_violations = [] && r.E.x_consumed = r.E.x_producers * r.E.x_items)

let () =
  Alcotest.run "smp"
    [
      ( "boot",
        [
          Alcotest.test_case "two cores run in parallel" `Quick
            test_two_cores_run_in_parallel;
          Alcotest.test_case "idle core never fast-forwards past a busy core"
            `Quick test_idle_core_does_not_fast_forward_past_busy_core;
        ] );
      ( "percpu",
        [
          Alcotest.test_case "current-thread cells are per core" `Quick
            test_per_core_current_cells;
          Alcotest.test_case "quantum timers are per core" `Quick
            test_per_core_quantum_timers;
        ] );
      ( "signals",
        [
          Alcotest.test_case "cross-core signal bounces through the IPI"
            `Quick test_cross_core_signal_ipi;
          Alcotest.test_case "alarm armed from a secondary core" `Quick
            test_alarm_armed_from_secondary_core;
        ] );
      ( "stealing",
        [
          Alcotest.test_case "migrate rehomes a ready thread" `Quick
            test_migrate_moves_thread_between_rings;
          Alcotest.test_case "dispatch guard refuses a running thread" `Quick
            test_steal_guard_refuses_running_thread;
          Alcotest.test_case "stealer balances end to end" `Quick
            test_stealer_balances_end_to_end;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "smp subject is deterministic" `Quick
            test_smp_subject_deterministic;
          Alcotest.test_case "smp sabotage is caught" `Quick
            test_smp_sabotage_is_caught;
          QCheck_alcotest.to_alcotest prop_queue_cross_core;
        ] );
    ]
