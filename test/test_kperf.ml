(* kperf: gauge rate-window edge cases, the Quamachine PMU (counter
   windows, interrupt counting, pc-sample weights), profiler owner
   attribution, and the PMU's zero-simulated-cost guarantee. *)

open Quamachine
open Synthesis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_rate = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Gauge rate windows *)

let test_gauge_empty_window () =
  let g = Oq.Gauge.create () in
  (* a window with no events is a zero rate, not a stale one *)
  check_rate "empty window rate" 0.0 (Oq.Gauge.sample_rate g ~now:1.0);
  check_rate "last_rate agrees" 0.0 (Oq.Gauge.last_rate g)

let test_gauge_zero_length_window () =
  let g = Oq.Gauge.create () in
  for _ = 1 to 10 do
    Oq.Gauge.tick g
  done;
  let r1 = Oq.Gauge.sample_rate g ~now:2.0 in
  check_rate "10 events over 2 units" 5.0 r1;
  (* sampling again at the same instant: dt = 0, no division — the
     previous window's rate is reported instead *)
  check_rate "zero-length window repeats last rate" r1
    (Oq.Gauge.sample_rate g ~now:2.0);
  (* ... and the gauge keeps measuring cleanly afterwards *)
  Oq.Gauge.tick g;
  check_rate "next real window counts from the stall" 1.0
    (Oq.Gauge.sample_rate g ~now:3.0)

let test_gauge_clock_wraps_backwards () =
  let g = Oq.Gauge.create () in
  Oq.Gauge.add g 8;
  let r1 = Oq.Gauge.sample_rate g ~now:4.0 in
  check_rate "8 events over 4 units" 2.0 r1;
  (* a clock running backwards (wrap-around) must not produce a
     negative rate; last_rate is reported and the window re-anchors *)
  Oq.Gauge.add g 100;
  check_rate "backwards clock repeats last rate" r1
    (Oq.Gauge.sample_rate g ~now:1.0);
  (* the bad stamp re-anchored the window, so only post-anchor events
     count in the next one *)
  Oq.Gauge.add g 10;
  check_rate "window re-anchored at the bad stamp" 5.0
    (Oq.Gauge.sample_rate g ~now:3.0)

let test_gauge_reset () =
  let g = Oq.Gauge.create () in
  Oq.Gauge.add g 42;
  ignore (Oq.Gauge.sample_rate g ~now:1.0);
  Oq.Gauge.reset g;
  check_int "count cleared" 0 (Oq.Gauge.count g);
  check_rate "last_rate cleared" 0.0 (Oq.Gauge.last_rate g);
  (* the window base count was also cleared, so the next sample sees
     only post-reset events — not a negative delta *)
  Oq.Gauge.tick g;
  check_rate "post-reset window counts from zero" 1.0
    (Oq.Gauge.sample_rate g ~now:2.0)

(* ------------------------------------------------------------------ *)
(* PMU counter windows *)

let run_pipeline_with b =
  let pl = Repro_harness.Harness.Pipeline.build ~total:1024 b in
  Repro_harness.Harness.Pipeline.run pl

let test_pmu_window_counts () =
  let b = Boot.boot () in
  let m = b.Boot.kernel.Kernel.machine in
  let pmu = Pmu.create m in
  check_bool "not running before start" false (Pmu.running pmu);
  let cy0 = Machine.cycles m and in0 = Machine.insns_executed m in
  Pmu.start pmu;
  run_pipeline_with b;
  Pmu.stop pmu;
  (* the window covers exactly the machine deltas *)
  check_int "cycles counter" (Machine.cycles m - cy0) (Pmu.read pmu Pmu.Cycles);
  check_int "instruction counter"
    (Machine.insns_executed m - in0)
    (Pmu.read pmu Pmu.Instructions);
  check_bool "memory references counted" true (Pmu.read pmu Pmu.Mem_refs > 0);
  (* the pipeline runs on quantum timers: interrupts were taken and
     the machine-level count flows through the PMU *)
  check_bool "interrupts taken" true (Machine.irqs_taken m > 0);
  check_int "interrupt counter" (Machine.irqs_taken m)
    (Pmu.read pmu Pmu.Interrupts)

let test_pmu_stop_freezes () =
  let b = Boot.boot () in
  let m = b.Boot.kernel.Kernel.machine in
  let entry, _ =
    Asm.assemble m
      [ Insn.Move (Insn.Imm 7, Insn.Reg Insn.r0); Insn.Halt ]
  in
  let go () =
    Machine.set_supervisor m true;
    Machine.set_reg m Insn.sp Layout.boot_stack_top;
    Machine.set_pc m entry;
    ignore (Machine.run ~max_insns:100 m)
  in
  let pmu = Pmu.create m in
  Pmu.start pmu;
  go ();
  Pmu.stop pmu;
  let frozen = Pmu.read_all pmu in
  check_bool "window saw work" true (Pmu.read pmu Pmu.Instructions > 0);
  (* cycles spent outside a window are invisible to the counters *)
  go ();
  List.iter
    (fun (c, v) ->
      check_int
        (Fmt.str "%s frozen across stop" (Pmu.counter_name c))
        v (Pmu.read pmu c))
    frozen;
  (* a second window accumulates on top of the first *)
  let first_cy = Pmu.read pmu Pmu.Cycles in
  let cy_mid = Machine.cycles m in
  Pmu.start pmu;
  go ();
  Pmu.stop pmu;
  check_int "windows accumulate"
    (first_cy + (Machine.cycles m - cy_mid))
    (Pmu.read pmu Pmu.Cycles);
  (* reset zeroes everything *)
  Pmu.reset pmu;
  List.iter (fun (c, _) -> check_int "reset" 0 (Pmu.read pmu c)) frozen

let test_pmu_samples_tile_window () =
  let b = Boot.boot () in
  let m = b.Boot.kernel.Kernel.machine in
  let pmu = Pmu.create m in
  Pmu.enable_sampling pmu ~period:251;
  check_int "period readable" 251 (Pmu.sampling_period pmu);
  Pmu.start pmu;
  run_pipeline_with b;
  Pmu.stop pmu;
  check_bool "samples taken" true (Pmu.sample_count pmu > 0);
  (* each sample's weight is the cycles since the previous one, so the
     weights tile the sampled span: their sum never exceeds the window
     and the histogram is only a re-grouping of the same weights *)
  check_bool "sampled cycles within window" true
    (Pmu.sampled_cycles pmu <= Pmu.read pmu Pmu.Cycles);
  let hist_sum =
    List.fold_left (fun a (_, w) -> a + w) 0 (Pmu.sample_histogram pmu)
  in
  check_int "histogram re-buckets the sample weights"
    (Pmu.sampled_cycles pmu) hist_sum;
  List.iter
    (fun (_, w) -> check_bool "weights positive" true (w > 0))
    (Pmu.samples pmu);
  (* disabling sampling drops the hook; counters keep working *)
  Pmu.disable_sampling pmu;
  check_int "period 0 when off" 0 (Pmu.sampling_period pmu)

(* ------------------------------------------------------------------ *)
(* Profiler attribution *)

let test_profile_balances () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let tr = Ktrace.create m in
  Kernel.attach_tracing k tr;
  let pmu = Pmu.create m in
  Pmu.enable_sampling pmu ~period:251;
  Pmu.start pmu;
  run_pipeline_with b;
  Pmu.stop pmu;
  let p = Profile.collect k pmu in
  (* the acceptance claim: per-owner cycles partition the machine's
     cycle total exactly *)
  check_int "owner lines sum to machine total" p.Profile.p_total
    (Profile.owners_total p);
  check_bool "balanced" true (Profile.balanced p);
  check_int "total is the machine's" (Machine.cycles m) p.Profile.p_total;
  let shares =
    List.fold_left (fun a l -> a +. l.Profile.l_share) 0.0 p.Profile.p_owners
  in
  Alcotest.(check (float 1e-6)) "shares sum to 100%" 100.0 shares;
  (* the flat view names synthesized fragments, not just addresses *)
  check_bool "flat view nonempty" true (p.Profile.p_flat <> []);
  check_bool "a synthesized routine is named" true
    (List.exists (fun (_, name, _) -> name <> "(user/unowned)") p.Profile.p_flat)

(* ------------------------------------------------------------------ *)
(* Zero simulated cost *)

let test_pmu_is_free () =
  let run ~sample () =
    let b = Boot.boot () in
    let m = b.Boot.kernel.Kernel.machine in
    if sample then begin
      let pmu = Pmu.create m in
      Pmu.enable_sampling pmu ~period:97;
      Pmu.start pmu
    end;
    run_pipeline_with b;
    (Machine.cycles m, Machine.insns_executed m)
  in
  let pcy, pin = run ~sample:false () in
  let scy, sin = run ~sample:true () in
  check_int "identical cycle counts" pcy scy;
  check_int "identical instruction counts" pin sin

let () =
  Alcotest.run "kperf"
    [
      ( "gauge",
        [
          Alcotest.test_case "empty window" `Quick test_gauge_empty_window;
          Alcotest.test_case "zero-length window" `Quick
            test_gauge_zero_length_window;
          Alcotest.test_case "clock wraps backwards" `Quick
            test_gauge_clock_wraps_backwards;
          Alcotest.test_case "reset" `Quick test_gauge_reset;
        ] );
      ( "pmu",
        [
          Alcotest.test_case "window counts" `Quick test_pmu_window_counts;
          Alcotest.test_case "stop freezes" `Quick test_pmu_stop_freezes;
          Alcotest.test_case "samples tile the window" `Quick
            test_pmu_samples_tile_window;
          Alcotest.test_case "sampling costs zero cycles" `Quick
            test_pmu_is_free;
        ] );
      ( "profile",
        [ Alcotest.test_case "attribution balances" `Quick test_profile_balances ] );
    ]
