(* Explorer v2 subjects and the bugs they flushed out.

   Determinism and sabotage coverage for the three kernel subjects
   (ready queue, kpipe, disk elevator), plus a minimal committed repro
   for every kernel bug the sweeps found:

   - relink/insert_after patch ordering (the incoming thread's jmp
     must be patched before its predecessor's — the old order exposed
     a window where the ring pointed at an unlinked thread);
   - Thread.stop of the running thread must arm a preemption (the old
     code let a suspended thread keep the CPU for its whole quantum);
   - Ready_queue.balance_idle must not re-queue a stopped idle thread;
   - a spurious disk interrupt must not complete an in-flight transfer
     with stale data (completion-exactly-once);
   - the elevator must actually flip its sweep direction when the next
     request is behind the arm (SCAN order);
   - double-fault recovery through Thread.restart. *)

open Quamachine
open Synthesis
module I = Insn
module E = Repro_harness.Explorer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let enter_scheduler ?(ipl = 7) k =
  let m = k.Kernel.machine in
  match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m ipl;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> Alcotest.fail "enter_scheduler: empty ready queue"

let step_until m ~budget pred =
  let left = ref budget in
  while (not (pred ())) && !left > 0 do
    Machine.step m;
    decr left
  done;
  pred ()

(* ------------------------------------------------------------------ *)
(* Subject determinism: a (subject, seed) pair names exactly one
   interleaving — same seed, same trace hash, same everything *)

let test_subjects_deterministic () =
  List.iter
    (fun sub ->
      let name = E.subject_name sub in
      let a = E.run_subject sub ~seed:5 () in
      let b = E.run_subject sub ~seed:5 () in
      check_bool (name ^ ": identical result on re-run") true (a = b);
      check_bool
        (name ^ ": no violations under faults")
        true
        (a.E.s_violations = []);
      check_bool (name ^ ": reached its goal") true (a.E.s_progress >= a.E.s_goal);
      check_bool (name ^ ": preemptions forced") true (a.E.s_preemptions > 0))
    E.subjects

let test_subject_faults_off () =
  (* the pure interleaving sweep must also hold, and inject nothing *)
  let r = E.run_subject ~faults:false E.ready_queue_subject ~seed:3 () in
  check_int "no faults injected" 0 r.E.s_injected;
  check_bool "clean run" true (r.E.s_violations = [])

(* Negative control: a run whose state is deliberately corrupted must
   be caught — proves the invariant checks bite. *)
let test_subjects_catch_sabotage () =
  List.iter
    (fun sub ->
      let r = E.run_subject ~sabotage:true sub ~seed:2 () in
      check_bool
        (E.subject_name sub ^ ": sabotage detected")
        true
        (r.E.s_violations <> []))
    E.subjects

(* ------------------------------------------------------------------ *)
(* Bug: insert_after patched the predecessor's jmp before the incoming
   thread's.  Between the two patches the ring pointed at a thread
   whose own jmp still held its creation-time halt guard — a forced
   switch in that window dispatched into the guard.  The fix links the
   incoming thread outward first; the Patched trace events prove the
   order. *)

let test_insert_patches_incoming_first () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let tr = Ktrace.create m in
  Kernel.attach_tracing k tr;
  let entry, _ =
    Asm.assemble m [ I.Label "l"; I.B (I.Always, I.To_label "l") ]
  in
  let t1 = Thread.create k ~entry () in
  Ktrace.clear tr;
  let t2 = Thread.create k ~entry () in
  let patched =
    List.filter_map
      (fun e ->
        match e.Ktrace.ev_kind with Ktrace.Patched a -> Some a | _ -> None)
      (Ktrace.events tr)
  in
  match patched with
  | first :: second :: _ ->
    check_int "incoming thread linked outward first" t2.Kernel.jmp_slot first;
    check_int "predecessor patched second" t1.Kernel.jmp_slot second
  | _ -> Alcotest.fail "expected two Patched events from the insertion"

(* ------------------------------------------------------------------ *)
(* Bug: stopping the *running* thread unlinked it from the ring but
   never preempted it, so a suspended thread kept the CPU until its
   quantum expired.  The fix arms a short preemption timer. *)

let test_stop_running_thread_preempts () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cells = Kalloc.alloc_zeroed k.Kernel.alloc 2 in
  let mk i =
    let entry, _ =
      Asm.assemble m
        [
          I.Label "l";
          I.Alu_mem (I.Add, I.Imm 1, I.Abs (cells + i));
          I.B (I.Always, I.To_label "l");
        ]
    in
    (* quantum far beyond the test budget: only the stop-armed
       preemption can take the CPU away *)
    Thread.create k ~entry ~quantum_us:100_000 ~segments:[ (cells, 2) ] ()
  in
  let t0 = mk 0 in
  let t1 = mk 1 in
  enter_scheduler k;
  let started () = Machine.peek m cells > 0 || Machine.peek m (cells + 1) > 0 in
  check_bool "a worker started" true (step_until m ~budget:20_000 started);
  let ri = if Machine.peek m cells > 0 then 0 else 1 in
  let running = if ri = 0 then t0 else t1 in
  let other_cell = cells + 1 - ri in
  let before = Machine.peek m other_cell in
  Thread.stop k running;
  check_bool "other thread ran shortly after the stop" true
    (step_until m ~budget:3_000 (fun () -> Machine.peek m other_cell > before));
  check_bool "stopped thread left the ring" true
    (not (Ready_queue.in_queue running));
  check_bool "ring verifies" true (Ready_queue.verify k)

(* ------------------------------------------------------------------ *)
(* Bug: balance_idle unconditionally re-queued the idle thread, so
   stopping it put a Stopped thread back into the ring. *)

let test_stopped_idle_not_requeued () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let idle = b.Boot.idle in
  Thread.stop k idle;
  check_bool "stopped idle not re-queued" false (Ready_queue.in_queue idle);
  check_bool "ready queue empty" true (Kernel.anchor k 0 = None);
  Thread.start k idle;
  check_bool "restarted idle back in the ring" true (Ready_queue.in_queue idle);
  check_bool "idle ready again" true (idle.Kernel.state = Kernel.Ready);
  check_bool "ring verifies" true (Ready_queue.verify k)

(* ------------------------------------------------------------------ *)
(* Bug: the disk completion handler trusted the interrupt alone.  A
   spurious disk interrupt completed the in-flight transfer with
   whatever stale bytes were in the buffer.  The fix reads the device
   status register and dismisses interrupts when no transfer is done. *)

let test_spurious_disk_irq_ignored () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let ds = Disk_server.install k () in
  Devices.Disk.write_block k.Kernel.disk 7
    (Array.init Devices.Disk.block_words (fun i -> 7_000 + i));
  enter_scheduler ~ipl:0 k;
  (* let the idle thread take the CPU before any interrupt arrives *)
  for _ = 1 to 100 do
    Machine.step m
  done;
  let buf = Kalloc.alloc_zeroed k.Kernel.alloc Devices.Disk.block_words in
  let r = Disk_server.submit ds ~block:7 ~buffer:buf ~write:false () in
  let desc = r.Disk_server.r_desc in
  (* transfer in flight: fire a completion interrupt the device never
     raised.  Pre-fix this marked the request done with a stale
     buffer; now it must be dismissed and counted. *)
  Machine.post_interrupt ~source:"test" m ~level:Mmio_map.disk_level
    ~vector:Mmio_map.disk_vector;
  ignore
    (step_until m ~budget:2_000 (fun () ->
         Disk_server.spurious_irqs ds >= 1 || Machine.peek m (desc + 3) = 1));
  check_int "spurious interrupt not treated as completion" 0
    (Machine.peek m (desc + 3));
  check_int "spurious interrupt counted" 1 (Disk_server.spurious_irqs ds);
  check_int "and exported as a metric" 1
    (Metrics.read k.Kernel.metrics "disk.spurious_irqs");
  check_bool "real completion still arrives" true
    (step_until m ~budget:2_000_000 (fun () -> Machine.peek m (desc + 3) = 1));
  for i = 0 to Devices.Disk.block_words - 1 do
    if Machine.peek m (buf + i) <> 7_000 + i then
      Alcotest.failf "block data wrong at word %d" i
  done

(* ------------------------------------------------------------------ *)
(* Bug: when the elevator turned around it never recorded the new
   direction, so requests arriving mid-sweep were sorted for the wrong
   sweep and serviced out of SCAN order. *)

let test_elevator_direction_flip () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let ds = Disk_server.install k () in
  List.iter
    (fun bno ->
      Devices.Disk.write_block k.Kernel.disk bno
        (Array.init Devices.Disk.block_words (fun i -> (bno * 1_000) + i)))
    [ 5; 4; 3; 6 ];
  enter_scheduler ~ipl:0 k;
  let submit bno =
    Disk_server.submit ds ~block:bno
      ~buffer:(Kalloc.alloc_zeroed k.Kernel.alloc Devices.Disk.block_words)
      ~write:false ()
  in
  let done_ r () = Machine.peek m (r.Disk_server.r_desc + 3) = 1 in
  (* arm starts at 0 sweeping up: 5 is issued at once, 4 and 3 park
     for the return sweep *)
  let r5 = submit 5 in
  let _r4 = submit 4 in
  let r3 = submit 3 in
  check_bool "first request completes" true
    (step_until m ~budget:2_000_000 (done_ r5));
  (* 4 is now in flight and the arm sweeps *down*; 6 arrives behind it
     and must wait for the next upward sweep, after 3 *)
  let r6 = submit 6 in
  check_bool "remaining requests complete" true
    (step_until m ~budget:8_000_000 (fun () -> done_ r3 () && done_ r6 ()));
  Alcotest.(check (list int))
    "SCAN service order" [ 5; 4; 3; 6 ]
    (Disk_server.service_order ds)

(* ------------------------------------------------------------------ *)
(* Bug (kSMP sweep): the driver paced its forced-preemption stride in
   global instructions.  On an SMP boot core 0 executes only ~1/cores
   of the global stream, so the timer interrupt (routed to core 0)
   arrived below the context-switch cost and core 0 livelocked in
   switch code — this exact run consumed 0 of 24 items in the full 6M
   budget.  The stride is now measured in core-0 instructions. *)

let test_stride_paced_per_core () =
  let r =
    E.run_queue ~items:8 ~faults:false ~cores:3 ~kind:Kqueue.Mpsc ~seed:4494 ()
  in
  Alcotest.(check (list string)) "no stall" [] r.E.x_violations;
  check_int "all items consumed" (r.E.x_producers * r.E.x_items) r.E.x_consumed

(* ------------------------------------------------------------------ *)
(* Thread.restart: rebuild the creation-time context and re-queue *)

let test_restart_rebuilds_context () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 1 in
  let entry, _ =
    Asm.assemble m
      [
        I.Label "l";
        I.Alu_mem (I.Add, I.Imm 1, I.Abs cell);
        I.B (I.Always, I.To_label "l");
      ]
  in
  let t = Thread.create k ~entry ~segments:[ (cell, 1) ] () in
  enter_scheduler k;
  check_bool "worker ran" true
    (step_until m ~budget:20_000 (fun () -> Machine.peek m cell > 0));
  Thread.stop k t;
  check_bool "worker stopped" true
    (step_until m ~budget:20_000 (fun () -> Thread.fully_stopped k t));
  (* simulate a crash mangling the saved context *)
  Thread.set_saved_reg k t I.sp 0;
  Machine.poke m (t.Kernel.base + Layout.Tte.off_regs + 17) 0xDEAD;
  Thread.restart k t;
  check_int "saved pc reset to the creation entry" entry (Thread.saved_pc k t);
  check_bool "re-queued" true (Ready_queue.in_queue t);
  check_bool "ready" true (t.Kernel.state = Kernel.Ready);
  check_int "restart counted" 1
    (Metrics.read k.Kernel.metrics "kernel.thread_restarts_total");
  check_bool "ring verifies" true (Ready_queue.verify k)

(* A double fault restarts the crashed thread when asked to: the first
   pass wrecks its own supervisor stack and faults; the restarted pass
   finds the flag cleared, takes the clean path, and exits. *)
let test_double_fault_restart () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let cells = Kalloc.alloc_zeroed k.Kernel.alloc 2 in
  let flag = cells and done_cell = cells + 1 in
  Machine.poke m flag 1;
  let wreck =
    Machine.register_hcall m (fun mm ->
        if Machine.peek mm flag = 1 then begin
          Machine.poke mm flag 0;
          Machine.set_other_sp mm 0
        end)
  in
  let prog =
    [
      I.Move (I.Abs flag, I.Reg I.r1);
      I.Cmp (I.Imm 0, I.Reg I.r1);
      I.B (I.Eq, I.To_label "clean");
      I.Hcall wreck;
      I.Move (I.Imm 1, I.Abs 0x5_0000);
      (* double fault: ruined stack *)
      I.Label "clean";
      I.Move (I.Imm 1, I.Abs done_cell);
      I.Trap 0;
    ]
  in
  let entry, _ = Asm.assemble m prog in
  let _t = Thread.create k ~entry ~segments:[ (cells, 2) ] () in
  (match Boot.go ~max_insns:1_000_000 ~restart_on_double_fault:true b with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> Alcotest.fail "did not halt");
  check_int "restarted pass completed" 1 (Machine.peek m done_cell);
  check_bool "double fault logged" true
    (List.exists
       (fun e -> e.Kernel.f_reason = "double_fault")
       k.Kernel.fault_log);
  check_bool "restart counted" true
    (Metrics.read k.Kernel.metrics "kernel.thread_restarts_total" >= 1);
  check_bool "machine recovered past the double fault" false
    (Machine.double_faulted m)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "explorer"
    [
      ( "subjects",
        [
          Alcotest.test_case "deterministic" `Slow test_subjects_deterministic;
          Alcotest.test_case "faults off" `Slow test_subject_faults_off;
          Alcotest.test_case "sabotage caught" `Slow
            test_subjects_catch_sabotage;
        ] );
      ( "ready-queue bugs",
        [
          Alcotest.test_case "insert patches incoming first" `Quick
            test_insert_patches_incoming_first;
          Alcotest.test_case "stop of running thread preempts" `Quick
            test_stop_running_thread_preempts;
          Alcotest.test_case "stopped idle not re-queued" `Quick
            test_stopped_idle_not_requeued;
        ] );
      ( "disk bugs",
        [
          Alcotest.test_case "spurious irq ignored" `Quick
            test_spurious_disk_irq_ignored;
          Alcotest.test_case "elevator direction flip" `Quick
            test_elevator_direction_flip;
        ] );
      ( "smp bugs",
        [
          Alcotest.test_case "stride paced in core-0 instructions" `Quick
            test_stride_paced_per_core;
        ] );
      ( "restart",
        [
          Alcotest.test_case "rebuilds context" `Quick
            test_restart_rebuilds_context;
          Alcotest.test_case "double-fault restart" `Quick
            test_double_fault_restart;
        ] );
    ]
