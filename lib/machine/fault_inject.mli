(** kfault: seeded, fully deterministic fault injection.

    A {!plan} is compiled from a seed by a self-contained PRNG, so a
    (seed, config) pair names one exact fault schedule on every host.
    {!arm} registers a host-side machine device that fires the plan's
    events — spurious interrupts, stalled or dropped device
    completions, bit flips in data regions or in the code store — and
    chains transient CAS failures through [Machine.set_cas_fail].

    Everything is injected from the host side of the step loop: a
    machine that never arms a plan runs cycle- and
    instruction-identically to one built without this module (the same
    zero-overhead discipline as the PMU; asserted by
    [bench fault-overhead]). *)

type target =
  | Data  (** one bit of data memory *)
  | Code
      (** one instruction of the code store: the word no longer
          decodes, so executing it raises an illegal-instruction
          fault (instruction-granularity model of a flipped opcode
          bit) *)

type action =
  | Spurious_irq of { cpu : int option; level : int; vector : int }
      (** post an interrupt no device asked for; [cpu = None] follows
          the machine's per-level route, [Some c] pins it to core [c] *)
  | Bit_flip of { target : target; addr : int; bit : int }
      (** flip one bit of data memory or corrupt one code word *)
  | Stall of { device : string; delay_cycles : int }
      (** push an in-flight completion later *)
  | Drop_completion of { device : string }
      (** lose an in-flight completion entirely *)
  | Power_cut of { device : string; torn_words : int }
      (** cut power to a persistent device: the platter freezes, an
          in-flight write lands at most its first [torn_words] words
          (-1 = lost whole), and the controller goes dead until the
          host powers it back on (kcrash) *)
  | Core_stall of { cpu : int; stall_cycles : int }
      (** kSMP: skew one core's local clock forward, forcing a
          different cross-core interleaving without touching any
          architectural state (ignored for out-of-range cores) *)
  | Frame_fault of { device : string; dir : int; kind : int }
      (** kserve: arm a one-shot fault against the named device's
          next frame — [dir] 0 = rx, 1 = tx; [kind] 0 = drop,
          1 = duplicate, 2 = reorder.  Devices with no registered
          frame hook ignore it. *)

val corrupt_insn : bit:int -> Insn.insn
(** The undecodable instruction a [Code] flip plants — exposed so
    tests and subjects corrupt regions with the exact same model the
    injector uses. *)

val corrupt_code : Machine.t -> addr:int -> bit:int -> unit
(** Apply a [Code] flip directly (outside any plan). *)

type event = { ev_after : int; ev_action : action }
(** [ev_after] is cycles after {!arm}. *)

type plan = private {
  seed : int;
  events : event list;  (** sorted by [ev_after] *)
  cas_gaps : int list;
      (** gaps (in executed-Cas counts) between forced CAS failures *)
}

type config = {
  horizon_cycles : int;  (** events land uniformly in \[1, horizon\] *)
  n_irqs : int;
  n_flips : int;
  n_stalls : int;
  n_drops : int;
  n_cas_fails : int;
  cas_gap : int;  (** max gap between consecutive forced CAS failures *)
  irq_choices : (int * int) list;  (** (level, vector) pool for spurious irqs *)
  stall_devices : string list;
  flip_base : int;  (** bit flips land in \[flip_base, flip_base+flip_len) *)
  flip_len : int;  (** 0 disables flips (callers aim at scratch data) *)
  n_code_flips : int;
  code_regions : (int * int) list;
      (** (base, len) code-store spans code flips are aimed at —
          typically registered synthesized regions; [[]] disables
          code flips *)
  n_cuts : int;  (** power cuts (0 in the default mix) *)
  cut_devices : string list;
  cut_torn_words : int;
      (** torn bound drawn uniformly from \[-1, cut_torn_words\] *)
  irq_cpus : int list;
      (** cores spurious irqs are pinned to; [[]] (the default) follows
          the machine's per-level routes *)
  n_core_stalls : int;
  core_stall_cpus : int list;  (** cores eligible; [[]] disables *)
  core_stall_cycles : int;  (** max stall magnitude *)
  n_frame_faults : int;  (** one-shot frame faults (0 in the default mix) *)
  frame_devices : string list;
      (** frame-moving devices eligible; [[]] disables *)
}

val default_config : config
(** Timer/disk/alarm spurious irqs (handlers are idempotent; tty is
    excluded because its handler reads a data register), disk/tty
    stalls and drops, 4 CAS failures, no bit flips (no safe default
    target — aim data flips with [flip_base]/[flip_len] at a scratch
    window such as [Layout.fault_scratch_base], and code flips with
    [code_regions] at registered synthesized regions). *)

val compile : ?config:config -> int -> plan
(** [compile seed] deterministically expands a seed into a plan. *)

val make_plan : ?cas_gaps:int list -> seed:int -> event list -> plan
(** Hand-built plan for targeted scenarios: explicit events (sorted
    for you) instead of seed-expanded ones. *)

type t
(** An armed plan: live injection state on one machine. *)

val arm : Machine.t -> plan -> t
(** Register the injector; event times are relative to the current
    cycle count. *)

val disarm : Machine.t -> t -> unit
(** Remove the injector device and any armed CAS failure. *)

val injected : t -> int
(** Faults actually delivered so far (scheduled events may still be
    pending; stalls/drops with no in-flight completion still count as
    delivered but have no effect). *)

val injection_log : t -> (int * string) list
(** (cycle, description) per injected fault, oldest first. *)

val seed : t -> int

val describe_action : action -> string
