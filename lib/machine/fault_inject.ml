(* kfault: seeded, fully deterministic fault injection.

   A fault [plan] is compiled from a seed by a self-contained xorshift
   PRNG, so a (seed, config) pair names one exact fault schedule on
   every host.  Arming a plan registers a host-side machine device
   ("kfault") whose tick fires the scheduled events — spurious
   interrupts, stalled or dropped device completions, and bit flips in
   data regions — and chains transient CAS failures through
   [Machine.set_cas_fail].  Everything happens on the host side of the
   step loop: a machine that never arms a plan executes a
   cycle- and instruction-identical run (the same zero-overhead
   discipline as the PMU; asserted by `bench fault-overhead`). *)

(* ---------------------------------------------------------------- *)
(* Deterministic PRNG: 64-bit xorshift*, independent of Random so
   plans never perturb (or get perturbed by) other randomness. *)

type rng = { mutable s : int64 }

let rng_make seed =
  (* avoid the all-zero fixpoint; fold the seed through splitmix-style
     scrambling so nearby seeds diverge immediately *)
  let z = Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  { s = (if z = 0L then 0x2545F4914F6CDD1DL else z) }

let rng_next r =
  let x = r.s in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.s <- x;
  x

(* uniform int in [0, n) *)
let rng_int r n =
  if n <= 0 then invalid_arg "rng_int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (rng_next r) 1)
                  (Int64.of_int n))

(* ---------------------------------------------------------------- *)
(* Plans *)

type target = Data | Code

type action =
  | Spurious_irq of { cpu : int option; level : int; vector : int }
      (* [cpu = None] follows the machine's per-level route *)
  | Bit_flip of { target : target; addr : int; bit : int }
  | Stall of { device : string; delay_cycles : int }
  | Drop_completion of { device : string }
  | Power_cut of { device : string; torn_words : int }
  | Core_stall of { cpu : int; stall_cycles : int }
      (* skew one core's local clock: forces a different cross-core
         interleaving without touching any architectural state *)
  | Frame_fault of { device : string; dir : int; kind : int }
      (* kserve: arm a one-shot fault against the named device's next
         frame — dir 0 = rx, 1 = tx; kind 0 = drop, 1 = duplicate,
         2 = reorder.  Devices with no frame hook ignore it. *)

(* The code store is an instruction array, so a "flipped bit" in code
   is modelled at instruction granularity: the word no longer decodes,
   and executing it raises an illegal-instruction fault — exactly what
   a flipped opcode bit does on the real machine.  [Hcall] with a
   negative id is the canonical undecodable word ([Machine] raises
   [Cpu_fault Illegal] before any side effect), and folding [bit] in
   keeps distinct flips distinguishable in listings. *)
let corrupt_insn ~bit = Insn.Hcall (-1 - (bit land 31))

let corrupt_code m ~addr ~bit = Machine.patch_code m addr (corrupt_insn ~bit)

type event = { ev_after : int; ev_action : action }

type plan = {
  seed : int;
  events : event list; (* sorted by ev_after *)
  cas_gaps : int list; (* gaps between forced CAS failures *)
}

type config = {
  horizon_cycles : int;
  n_irqs : int;
  n_flips : int;
  n_stalls : int;
  n_drops : int;
  n_cas_fails : int;
  cas_gap : int;
  irq_choices : (int * int) list;
  stall_devices : string list;
  flip_base : int;
  flip_len : int;
  n_code_flips : int;
  code_regions : (int * int) list;
  (* kcrash: power cuts to persistent devices.  torn bound is drawn in
     [-1, cut_torn_words]; -1 loses the in-flight write whole. *)
  n_cuts : int;
  cut_devices : string list;
  cut_torn_words : int;
  (* kSMP: cores eligible for cpu-targeted spurious interrupts (empty =
     follow the machine's routes) and for local-clock stalls. *)
  irq_cpus : int list;
  n_core_stalls : int;
  core_stall_cpus : int list;
  core_stall_cycles : int;
  (* kserve: one-shot frame faults (drop/duplicate/reorder) against
     frame-moving devices; [] disables them *)
  n_frame_faults : int;
  frame_devices : string list;
}

let default_config =
  {
    horizon_cycles = 200_000;
    n_irqs = 2;
    n_flips = 2;
    n_stalls = 1;
    n_drops = 1;
    n_cas_fails = 4;
    cas_gap = 16;
    (* timer, disk, alarm autovectors: safe to deliver spuriously —
       their handlers are idempotent.  The tty vector is excluded:
       a spurious tty interrupt would make the handler read a stale
       character register. *)
    irq_choices =
      [
        (Mmio_map.timer_level, Mmio_map.timer_vector);
        (Mmio_map.disk_level, Mmio_map.disk_vector);
        (Mmio_map.alarm_level, Mmio_map.alarm_vector);
      ];
    stall_devices = [ "disk"; "tty" ];
    (* no safe default flip target: data flips need a caller-designated
       scratch window (Layout.fault_scratch_* is the conventional one),
       and code flips need registered synthesized regions *)
    flip_base = 0;
    flip_len = 0;
    n_code_flips = 0;
    code_regions = [];
    n_cuts = 0;
    cut_devices = [ "disk" ];
    cut_torn_words = 64;
    irq_cpus = [];
    n_core_stalls = 0;
    core_stall_cpus = [];
    core_stall_cycles = 20_000;
    n_frame_faults = 0;
    frame_devices = [];
  }

let describe_action = function
  | Spurious_irq { cpu = None; level; vector } ->
    Printf.sprintf "spurious_irq level=%d vector=%d" level vector
  | Spurious_irq { cpu = Some c; level; vector } ->
    Printf.sprintf "spurious_irq cpu=%d level=%d vector=%d" c level vector
  | Bit_flip { target = Data; addr; bit } ->
    Printf.sprintf "bit_flip addr=%d bit=%d" addr bit
  | Bit_flip { target = Code; addr; bit } ->
    Printf.sprintf "code_flip addr=%d bit=%d" addr bit
  | Stall { device; delay_cycles } ->
    Printf.sprintf "stall %s +%d cycles" device delay_cycles
  | Drop_completion { device } -> Printf.sprintf "drop_completion %s" device
  | Power_cut { device; torn_words } ->
    Printf.sprintf "power_cut %s torn=%d" device torn_words
  | Core_stall { cpu; stall_cycles } ->
    Printf.sprintf "core_stall cpu=%d +%d cycles" cpu stall_cycles
  | Frame_fault { device; dir; kind } ->
    Printf.sprintf "frame_fault %s %s %s" device
      (if dir = 0 then "rx" else "tx")
      (match kind with 0 -> "drop" | 1 -> "dup" | _ -> "reorder")

let compile ?(config = default_config) seed =
  let r = rng_make seed in
  let events = ref [] in
  let at () = 1 + rng_int r config.horizon_cycles in
  let add a = events := { ev_after = at (); ev_action = a } :: !events in
  if config.irq_choices <> [] then
    for _ = 1 to config.n_irqs do
      let level, vector =
        List.nth config.irq_choices (rng_int r (List.length config.irq_choices))
      in
      let cpu =
        match config.irq_cpus with
        | [] -> None
        | cs -> Some (List.nth cs (rng_int r (List.length cs)))
      in
      add (Spurious_irq { cpu; level; vector })
    done;
  if config.core_stall_cpus <> [] then
    for _ = 1 to config.n_core_stalls do
      let cpu =
        List.nth config.core_stall_cpus
          (rng_int r (List.length config.core_stall_cpus))
      in
      add
        (Core_stall
           { cpu; stall_cycles = 1000 + rng_int r config.core_stall_cycles })
    done;
  if config.flip_len > 0 then
    for _ = 1 to config.n_flips do
      add
        (Bit_flip
           {
             target = Data;
             addr = config.flip_base + rng_int r config.flip_len;
             bit = rng_int r 31;
           })
    done;
  if config.code_regions <> [] then
    for _ = 1 to config.n_code_flips do
      let base, len =
        List.nth config.code_regions (rng_int r (List.length config.code_regions))
      in
      add
        (Bit_flip
           { target = Code; addr = base + rng_int r (max 1 len); bit = rng_int r 31 })
    done;
  if config.stall_devices <> [] then begin
    for _ = 1 to config.n_stalls do
      let device =
        List.nth config.stall_devices (rng_int r (List.length config.stall_devices))
      in
      add (Stall { device; delay_cycles = 1000 + rng_int r 20_000 })
    done;
    for _ = 1 to config.n_drops do
      let device =
        List.nth config.stall_devices (rng_int r (List.length config.stall_devices))
      in
      add (Drop_completion { device })
    done
  end;
  if config.frame_devices <> [] then
    for _ = 1 to config.n_frame_faults do
      let device =
        List.nth config.frame_devices
          (rng_int r (List.length config.frame_devices))
      in
      add (Frame_fault { device; dir = rng_int r 2; kind = rng_int r 3 })
    done;
  if config.cut_devices <> [] then
    for _ = 1 to config.n_cuts do
      let device =
        List.nth config.cut_devices (rng_int r (List.length config.cut_devices))
      in
      add (Power_cut { device; torn_words = rng_int r (config.cut_torn_words + 2) - 1 })
    done;
  let cas_gaps =
    List.init config.n_cas_fails (fun _ -> 1 + rng_int r config.cas_gap)
  in
  let events =
    List.sort (fun a b -> compare a.ev_after b.ev_after) !events
  in
  { seed; events; cas_gaps }

(* Hand-built plan for targeted scenarios and tests: same machinery,
   explicitly chosen events instead of seed-expanded ones. *)
let make_plan ?(cas_gaps = []) ~seed events =
  {
    seed;
    events = List.sort (fun a b -> compare a.ev_after b.ev_after) events;
    cas_gaps;
  }

(* ---------------------------------------------------------------- *)
(* Arming: a host-side device that fires the plan's events *)

type t = {
  fi_plan : plan;
  mutable fi_pending : event list;
  fi_base_cycle : int; (* plan times are relative to arm time *)
  mutable fi_dev : Machine.device option;
  mutable fi_log : (int * string) list; (* (cycle, what), newest first *)
  mutable fi_injected : int;
}

let log t m what = t.fi_log <- (Machine.cycles m, what) :: t.fi_log

let fire t m action =
  t.fi_injected <- t.fi_injected + 1;
  log t m (describe_action action);
  match action with
  | Spurious_irq { cpu; level; vector } ->
    Machine.post_interrupt ?cpu ~source:"kfault" m ~level ~vector
  | Bit_flip { target = Data; addr; bit } ->
    Machine.poke m addr (Machine.peek m addr lxor (1 lsl bit))
  | Bit_flip { target = Code; addr; bit } -> corrupt_code m ~addr ~bit
  | Stall { device; delay_cycles } -> (
    match Machine.find_device m device with
    | Some d when d.Machine.next_due <> max_int ->
      Machine.device_schedule m d (d.Machine.next_due + delay_cycles)
    | _ -> ())
  | Drop_completion { device } -> (
    match Machine.find_device m device with
    | Some d when d.Machine.next_due <> max_int -> Machine.device_idle m d
    | _ -> ())
  | Power_cut { device; torn_words } -> Machine.power_cut m ~device ~torn_words
  | Core_stall { cpu; stall_cycles } ->
    if cpu >= 0 && cpu < Machine.num_cores m then
      Machine.stall_core m ~cpu ~cycles:stall_cycles
  | Frame_fault { device; dir; kind } ->
    Machine.frame_fault m ~device ~dir ~kind

let rec schedule t m dev =
  match t.fi_pending with
  | [] -> Machine.remove_device m dev; t.fi_dev <- None
  | e :: _ ->
    let due = t.fi_base_cycle + e.ev_after in
    if due > Machine.cycles m then Machine.device_schedule m dev due
    else tick t m dev

and tick t m dev =
  let now = Machine.cycles m in
  let due, rest =
    List.partition (fun e -> t.fi_base_cycle + e.ev_after <= now) t.fi_pending
  in
  t.fi_pending <- rest;
  List.iter (fun e -> fire t m e.ev_action) due;
  schedule t m dev

let arm_cas t m =
  (* chain the gap list: each forced failure's hook arms the next *)
  let rec arm_gap m gaps =
    match gaps with
    | [] -> ()
    | g :: rest ->
      Machine.set_cas_fail m
        ~at:(Machine.cas_executed m + g)
        ~hook:(fun m' ->
          t.fi_injected <- t.fi_injected + 1;
          log t m'
            (Printf.sprintf "cas_fail at=%d" (Machine.cas_executed m'));
          arm_gap m' rest)
  in
  arm_gap m t.fi_plan.cas_gaps

let arm m plan =
  let t =
    {
      fi_plan = plan;
      fi_pending = plan.events;
      fi_base_cycle = Machine.cycles m;
      fi_dev = None;
      fi_log = [];
      fi_injected = 0;
    }
  in
  (match plan.events with
  | [] -> ()
  | e :: _ ->
    let dev =
      Machine.add_device m ~name:"kfault"
        ~due:(t.fi_base_cycle + e.ev_after)
        ~tick:(fun m' ->
          match t.fi_dev with Some d -> tick t m' d | None -> ())
    in
    t.fi_dev <- Some dev);
  arm_cas t m;
  t

let disarm m t =
  (match t.fi_dev with
  | Some d -> Machine.remove_device m d; t.fi_dev <- None
  | None -> ());
  t.fi_pending <- [];
  Machine.clear_cas_fail m

let injected t = t.fi_injected
let injection_log t = List.rev t.fi_log
let seed t = t.fi_plan.seed
