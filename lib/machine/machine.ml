(* The simulated Quamachine: CPU cores, shared memory, interrupts,
   devices, and the instruction/memory-reference/cycle counters that
   the paper's measurement chapter relies on (§6.1).

   Code and data are separate address spaces.  The code store is an
   append-only, patch-in-place array of instructions — run-time kernel
   code synthesis appends specialized routines and rewrites individual
   instructions (the `jmp` threading of the executable ready queue).

   SMP model: [create ?cores] builds N cores stepping over the one
   shared memory and code store.  Each core keeps a local absolute
   cycle clock; [step] always runs the runnable core with the smallest
   clock (ties broken by a seeded rotation, overridable per step by an
   explorer hook), so the interleaving is deterministic, cores make
   progress in simulated-parallel time (N cores doing N units of work
   finish in ~1 unit of wall-clock cycles), and the global clock — the
   minimum over runnable cores — advances monotonically.  Devices fire
   against the global clock; interrupts are routed per level to a
   core and delivered from that core's private pending vector.  Cores
   interleave at instruction granularity, so every shared-memory
   access is a potential switch point and another core's committed
   [Cas] is a real contention source: the compare simply fails.  With
   one core the scheduler degenerates to today's machine — cycle
   counts, traces, and attribution are identical. *)

type fault =
  | Bus_error of int
  | Div_zero
  | Privilege
  | Illegal
  | Fp_unavailable

exception Cpu_fault of fault

(* Raised when every core is stopped waiting for an interrupt and no
   device will ever deliver one. *)
exception Deadlock

(* Raised on attempts to execute outside the code store, which means
   wild control flow: there is no vector for it, the simulation dies. *)
exception Wild_jump of int

(* Observability hooks (ktrace).  All callbacks run host-side and must
   not charge simulated cycles; when [hooks] is [None] the fast paths
   pay nothing beyond a mutable-field load. *)
type hooks = {
  h_post : source:string -> level:int -> vector:int -> unit;
      (* a device posted an interrupt *)
  h_irq : level:int -> vector:int -> unit; (* the CPU took the interrupt *)
  h_device : string -> unit; (* a device tick ran *)
  h_fault : fault -> unit; (* a CPU fault was raised *)
}

type device = {
  dev_name : string;
  mutable next_due : int; (* absolute cycle count; max_int when idle *)
  mutable dev_tick : t -> unit;
}

(* One core's private state: registers, status, pending interrupts,
   and its local clock/counters.  Everything else — memory, code,
   devices, MMIO, maps, hcalls — is machine-shared. *)
and cpu = {
  cid : int;
  regs : int array;
  fregs : float array;
  mutable pc : int;
  mutable other_sp : int; (* the inactive stack pointer (USP or SSP) *)
  mutable supervisor : bool;
  mutable trace_bit : bool;
  mutable ipl : int;
  mutable vbr : int;
  mutable cc_n : bool;
  mutable cc_z : bool;
  mutable cc_v : bool;
  mutable cc_c : bool;
  mutable fp_enabled : bool;
  mutable last_fault_addr : int;
  mutable cpu_map : int; (* -1: no user map installed *)
  (* pending interrupts: vector per level 1..7, -1 = none *)
  pending : int array;
  mutable stopped : bool;
  (* has [start_core] ever woken this core?  Distinguishes a core that
     never booted from one merely stop-waiting for an interrupt (both
     have [stopped = true]).  Core 0 boots started. *)
  mutable started : bool;
  (* local absolute clock: cycles of work this core has performed or
     slept through *)
  mutable c_time : int;
  mutable c_insns : int;
  mutable c_refs : int;
  mutable c_irqs : int;
  mutable c_cas : int;
  mutable c_cas_lost : int; (* CAS that observed a changed word *)
}

and t = {
  cost : Cost.t;
  mem : int array;
  mem_words : int;
  cpus : cpu array;
  mutable cur : cpu; (* the core host services act on *)
  (* core-interleaving schedule: rotating tie-break start (seeded) and
     an optional per-step override (the explorer's preemption lever) *)
  mutable sched_rr : int;
  mutable sched_hook : (int array -> int -> int) option;
  (* interrupt routing: level -> core id (default all to core 0) *)
  irq_routes : int array;
  (* code store *)
  mutable code : Insn.insn array;
  mutable code_len : int;
  (* machine-wide counters; [cycles] is the global clock — the minimum
     over runnable cores' local clocks, monotone because the minimum
     core is always the one that steps *)
  mutable cycles : int;
  mutable insns : int;
  mutable refs : int;
  mutable irqs_taken : int;
  (* kperf PMU: timer-driven pc sampling.  Entirely host-side — with
     sampling off the step loop pays one integer compare, and even
     with it on the simulated cycle/instruction counts are untouched,
     so a PMU-disabled and a PMU-enabled run are bit-identical. *)
  mutable sample_period : int; (* cycles between pc samples; 0 = off *)
  mutable sample_next : int; (* local cycle count of the next sample *)
  mutable sample_mark : int; (* cycles already covered by earlier samples *)
  mutable sample_hook : pc:int -> weight:int -> unit;
  (* kfault: transient CAS-failure injection.  [cas_count] numbers the
     Cas instructions executed (across all cores); when it reaches
     [cas_fail_next] the store is suppressed and Z forced clear —
     indistinguishable from losing the race to another processor, so
     correct optimistic code must take its retry branch.  Host-side
     only: with no failure armed the Cas path pays one integer
     compare. *)
  mutable cas_count : int;
  mutable cas_fail_next : int; (* cas_count value to fail at; max_int = off *)
  mutable cas_fail_hook : t -> unit;
  (* a fault raised while entering a fault handler halts the machine *)
  mutable double_fault : bool;
  (* devices *)
  mutable devices : device list;
  mutable next_device_due : int;
  (* power-cut hooks: device name -> cut handler.  The argument is the
     torn-word count for an in-flight write (-1 = the transfer is lost
     whole).  Registered by devices that model persistence (kcrash). *)
  mutable power_hooks : (string * (int -> unit)) list;
  (* frame-fault hooks: device name -> handler.  [dir] is 0 = rx,
     1 = tx; [kind] is 0 = drop, 1 = duplicate, 2 = reorder.
     Registered by devices that move frames (the NIC); the hook arms a
     one-shot fault against the next frame in that direction. *)
  mutable frame_hooks : (string * (dir:int -> kind:int -> unit)) list;
  (* memory-mapped I/O: address -> handlers *)
  mmio_read : (int, unit -> int) Hashtbl.t;
  mmio_write : (int, int -> unit) Hashtbl.t;
  (* address-space maps: map id -> list of (base, len) segments *)
  maps : (int, (int * int) list) Hashtbl.t;
  (* host service routines invoked by Hcall *)
  mutable hcalls : (t -> unit) array;
  mutable hcall_len : int;
  (* execution trace ring buffer (kernel monitor, §6.3); with several
     cores it records the global interleaving order *)
  trace_ring : int array;
  mutable trace_pos : int;
  mutable trace_count : int;
  mutable trace_on : bool;
  (* per-code-address cycle profile (kernel monitor) *)
  mutable profile : int array; (* cycles attributed per address *)
  mutable profile_on : bool;
  (* cycle attribution by owner: code address -> owner id, owner id ->
     accumulated cycles.  Owners 0..3 are reserved (unowned code, host
     services, idle time, interrupt delivery). *)
  mutable attr_on : bool;
  mutable attr_owner : int array;
  mutable attr_cycles : int array;
  mutable attr_mark : int; (* [cur]'s local cycles already attributed *)
  mutable hooks : hooks option;
  mutable halted : bool;
}

let mmio_base = 0xF0_0000
let max_cores = 8

let make_cpu cid =
  {
    cid;
    regs = Array.make Insn.num_regs 0;
    fregs = Array.make Insn.num_fregs 0.0;
    pc = 0;
    other_sp = 0;
    supervisor = true;
    trace_bit = false;
    ipl = 7;
    vbr = 0;
    cc_n = false;
    cc_z = false;
    cc_v = false;
    cc_c = false;
    fp_enabled = true;
    last_fault_addr = 0;
    cpu_map = -1;
    pending = Array.make 8 (-1);
    (* secondary cores sleep until the kernel boots them *)
    stopped = cid > 0;
    started = cid = 0;
    c_time = 0;
    c_insns = 0;
    c_refs = 0;
    c_irqs = 0;
    c_cas = 0;
    c_cas_lost = 0;
  }

let create ?(mem_words = 1 lsl 20) ?(cores = 1) cost =
  if cores < 1 || cores > max_cores then invalid_arg "create: cores";
  let cpus = Array.init cores make_cpu in
  {
    cost;
    mem = Array.make mem_words 0;
    mem_words;
    cpus;
    cur = cpus.(0);
    sched_rr = 0;
    sched_hook = None;
    irq_routes = Array.make 8 0;
    code = Array.make 4096 Insn.Halt;
    code_len = 0;
    cycles = 0;
    insns = 0;
    refs = 0;
    irqs_taken = 0;
    sample_period = 0;
    sample_next = max_int;
    sample_mark = 0;
    sample_hook = (fun ~pc:_ ~weight:_ -> ());
    cas_count = 0;
    cas_fail_next = max_int;
    cas_fail_hook = (fun _ -> ());
    double_fault = false;
    devices = [];
    next_device_due = max_int;
    power_hooks = [];
    frame_hooks = [];
    mmio_read = Hashtbl.create 16;
    mmio_write = Hashtbl.create 16;
    maps = Hashtbl.create 16;
    hcalls = Array.make 64 (fun _ -> ());
    hcall_len = 0;
    trace_ring = Array.make 4096 0;
    trace_pos = 0;
    trace_count = 0;
    trace_on = false;
    profile = [||];
    profile_on = false;
    attr_on = false;
    attr_owner = [||];
    attr_cycles = [||];
    attr_mark = 0;
    hooks = None;
    halted = false;
  }

(* ------------------------------------------------------------------ *)
(* Cores *)

let num_cores t = Array.length t.cpus
let current_core t = t.cur.cid

(* ------------------------------------------------------------------ *)
(* Counters and time.

   [cycles]/[time_us] report the acting core's local clock: host
   services measure and schedule against the core they run on.  With
   one core this is exactly the old global clock. *)

let cycles t = t.cur.c_time
let insns_executed t = t.insns
let mem_refs t = t.refs
let irqs_taken t = t.irqs_taken
let time_us t = Cost.us_of_cycles t.cost t.cur.c_time
let charge t cy = t.cur.c_time <- t.cur.c_time + cy

let charge_refs t n =
  t.refs <- t.refs + n;
  t.cur.c_refs <- t.cur.c_refs + n;
  t.cur.c_time <- t.cur.c_time + (n * Cost.mem_ref_cycles t.cost)

type stats = { s_cycles : int; s_insns : int; s_refs : int }

let snapshot t = { s_cycles = t.cur.c_time; s_insns = t.insns; s_refs = t.refs }

let delta t s =
  {
    s_cycles = t.cur.c_time - s.s_cycles;
    s_insns = t.insns - s.s_insns;
    s_refs = t.refs - s.s_refs;
  }

let stats_us t s = Cost.us_of_cycles t.cost s.s_cycles

(* Per-core counters *)

let core_cycles t i = t.cpus.(i).c_time
let core_insns t i = t.cpus.(i).c_insns
let core_refs t i = t.cpus.(i).c_refs
let core_irqs t i = t.cpus.(i).c_irqs
let core_cas t i = t.cpus.(i).c_cas
let core_cas_lost t i = t.cpus.(i).c_cas_lost
let core_stopped t i = t.cpus.(i).stopped
let core_started t i = t.cpus.(i).started
let core_pc t i = t.cpus.(i).pc

let max_core_cycles t =
  Array.fold_left (fun acc c -> max acc c.c_time) 0 t.cpus

(* ------------------------------------------------------------------ *)
(* Registers, flags, status register *)

let get_reg t r = t.cur.regs.(r)
let set_reg t r v = t.cur.regs.(r) <- Word.of_int v
let get_freg t r = t.cur.fregs.(r)
let set_freg t r v = t.cur.fregs.(r) <- v
let get_pc t = t.cur.pc
let set_pc t pc = t.cur.pc <- pc
let in_supervisor t = t.cur.supervisor

(* SR layout: C=bit0 V=1 Z=2 N=3, IPL=bits 8..10, S=bit 13, T=bit 15. *)
let pack_sr t =
  let c = t.cur in
  (if c.cc_c then 1 else 0)
  lor (if c.cc_v then 2 else 0)
  lor (if c.cc_z then 4 else 0)
  lor (if c.cc_n then 8 else 0)
  lor (c.ipl lsl 8)
  lor (if c.supervisor then 1 lsl 13 else 0)
  lor (if c.trace_bit then 1 lsl 15 else 0)

let switch_stacks t =
  let c = t.cur in
  let active = c.regs.(Insn.sp) in
  c.regs.(Insn.sp) <- c.other_sp;
  c.other_sp <- active

let unpack_sr t sr =
  let c = t.cur in
  c.cc_c <- sr land 1 <> 0;
  c.cc_v <- sr land 2 <> 0;
  c.cc_z <- sr land 4 <> 0;
  c.cc_n <- sr land 8 <> 0;
  c.ipl <- (sr lsr 8) land 7;
  let new_super = sr land (1 lsl 13) <> 0 in
  if new_super <> c.supervisor then (
    c.supervisor <- new_super;
    switch_stacks t);
  c.trace_bit <- sr land (1 lsl 15) <> 0

(* ------------------------------------------------------------------ *)
(* Memory *)

let segment_allows segs addr =
  List.exists (fun (base, len) -> addr >= base && addr < base + len) segs

let check_access t addr =
  let c = t.cur in
  if c.supervisor then (
    if addr < 0 || (addr >= t.mem_words && addr < mmio_base) then (
      c.last_fault_addr <- addr;
      raise (Cpu_fault (Bus_error addr))))
  else begin
    if addr < 0 || addr >= t.mem_words then (
      c.last_fault_addr <- addr;
      raise (Cpu_fault (Bus_error addr)));
    if c.cpu_map >= 0 then
      let segs = try Hashtbl.find t.maps c.cpu_map with Not_found -> [] in
      if not (segment_allows segs addr) then (
        c.last_fault_addr <- addr;
        raise (Cpu_fault (Bus_error addr)))
  end

let read_mem t addr =
  check_access t addr;
  let c = t.cur in
  t.refs <- t.refs + 1;
  c.c_refs <- c.c_refs + 1;
  c.c_time <- c.c_time + Cost.mem_ref_cycles t.cost;
  if addr >= mmio_base then (
    match Hashtbl.find_opt t.mmio_read addr with
    | Some f -> Word.of_int (f ())
    | None ->
      c.last_fault_addr <- addr;
      raise (Cpu_fault (Bus_error addr)))
  else t.mem.(addr)

let write_mem t addr v =
  check_access t addr;
  let c = t.cur in
  t.refs <- t.refs + 1;
  c.c_refs <- c.c_refs + 1;
  c.c_time <- c.c_time + Cost.mem_ref_cycles t.cost;
  if addr >= mmio_base then (
    match Hashtbl.find_opt t.mmio_write addr with
    | Some f -> f (Word.of_int v)
    | None ->
      c.last_fault_addr <- addr;
      raise (Cpu_fault (Bus_error addr)))
  else t.mem.(addr) <- Word.of_int v

(* Host-side (uncharged, unchecked) memory access, for kernel services
   and tests; explicit [charge]/[charge_refs] accounts for their cost. *)
let peek t addr = t.mem.(addr)
let poke t addr v = t.mem.(addr) <- Word.of_int v

let map_mmio_read t ~addr f = Hashtbl.replace t.mmio_read addr f
let map_mmio_write t ~addr f = Hashtbl.replace t.mmio_write addr f

let define_map t ~id segments = Hashtbl.replace t.maps id segments

let map_segments t ~id = try Hashtbl.find t.maps id with Not_found -> []
let current_map t = t.cur.cpu_map
let set_map t id = t.cur.cpu_map <- id

(* ------------------------------------------------------------------ *)
(* Code store *)

let ensure_code_capacity t n =
  if t.code_len + n > Array.length t.code then begin
    let cap = ref (Array.length t.code) in
    while t.code_len + n > !cap do
      cap := !cap * 2
    done;
    let code = Array.make !cap Insn.Halt in
    Array.blit t.code 0 code 0 t.code_len;
    t.code <- code
  end

(* Append resolved instructions; returns the entry address.  Labels
   must have been resolved by [Asm.assemble]. *)
let append_code t insns =
  let n = List.length insns in
  ensure_code_capacity t n;
  let entry = t.code_len in
  List.iteri
    (fun i insn ->
      match insn with
      | Insn.Label l -> invalid_arg ("append_code: unresolved label " ^ l)
      | _ -> t.code.(entry + i) <- insn)
    insns;
  t.code_len <- t.code_len + n;
  entry

(* Reserve a patchable region, initially halting. *)
let reserve_code t n =
  ensure_code_capacity t n;
  let entry = t.code_len in
  t.code_len <- t.code_len + n;
  for i = entry to entry + n - 1 do
    t.code.(i) <- Insn.Halt
  done;
  entry

let patch_code t addr insn =
  if addr < 0 || addr >= t.code_len then invalid_arg "patch_code: out of range";
  t.code.(addr) <- insn

let read_code t addr =
  if addr < 0 || addr >= t.code_len then invalid_arg "read_code: out of range";
  t.code.(addr)

let code_size t = t.code_len

(* ------------------------------------------------------------------ *)
(* Host calls *)

let register_hcall t f =
  if t.hcall_len = Array.length t.hcalls then begin
    let hcalls = Array.make (2 * t.hcall_len) (fun _ -> ()) in
    Array.blit t.hcalls 0 hcalls 0 t.hcall_len;
    t.hcalls <- hcalls
  end;
  let id = t.hcall_len in
  t.hcalls.(id) <- f;
  t.hcall_len <- id + 1;
  id

(* ------------------------------------------------------------------ *)
(* Devices and interrupts *)

let recompute_device_due t =
  t.next_device_due <-
    List.fold_left (fun acc d -> min acc d.next_due) max_int t.devices

let add_device t ~name ~due ~tick =
  let d = { dev_name = name; next_due = due; dev_tick = tick } in
  t.devices <- d :: t.devices;
  recompute_device_due t;
  d

let device_schedule t d due =
  d.next_due <- due;
  recompute_device_due t

let device_idle t d = device_schedule t d max_int

let find_device t name = List.find_opt (fun d -> d.dev_name = name) t.devices

let remove_device t d =
  t.devices <- List.filter (fun d' -> d' != d) t.devices;
  recompute_device_due t

let register_power_hook t ~device f =
  t.power_hooks <-
    (device, f) :: List.remove_assoc device t.power_hooks

(* Cut power to [device] at the current cycle.  [torn_words] bounds
   how much of an in-flight write reaches the platter: -1 loses the
   transfer whole, [k >= 0] lands exactly the first [k] words (the
   prefix-torn write model).  Unknown devices ignore the cut. *)
let power_cut t ~device ~torn_words =
  match List.assoc_opt device t.power_hooks with
  | Some f -> f torn_words
  | None -> ()

let register_frame_hook t ~device f =
  t.frame_hooks <- (device, f) :: List.remove_assoc device t.frame_hooks

(* Arm a one-shot frame fault against [device]'s next frame in
   direction [dir] (0 = rx, 1 = tx): [kind] 0 drops it, 1 duplicates
   it, 2 reorders it past its successor.  Unknown devices ignore the
   fault (same contract as [power_cut]). *)
let frame_fault t ~device ~dir ~kind =
  match List.assoc_opt device t.frame_hooks with
  | Some f -> f ~dir ~kind
  | None -> ()

let set_irq_route t ~level ~cpu =
  if level < 1 || level > 7 then invalid_arg "set_irq_route: level";
  if cpu < 0 || cpu >= num_cores t then invalid_arg "set_irq_route: cpu";
  t.irq_routes.(level) <- cpu

let irq_route t ~level = t.irq_routes.(level)

let post_interrupt ?(source = "") ?cpu t ~level ~vector =
  if level < 1 || level > 7 then invalid_arg "post_interrupt: level";
  let target =
    match cpu with
    | Some c ->
      if c < 0 || c >= num_cores t then invalid_arg "post_interrupt: cpu";
      t.cpus.(c)
    | None -> t.cpus.(t.irq_routes.(level))
  in
  target.pending.(level) <- vector;
  if target.stopped then begin
    target.stopped <- false;
    (* A sleeping core wakes at the moment of the interrupt, not in
       its frozen past: without the warp, a long-halted core would
       replay cycles other cores (and devices) have already lived
       through. *)
    let now = max t.cycles t.cur.c_time in
    if target.c_time < now then target.c_time <- now
  end;
  match t.hooks with Some h -> h.h_post ~source ~level ~vector | None -> ()

let pending_level c =
  let rec scan l = if l = 0 then 0 else if c.pending.(l) >= 0 then l else scan (l - 1) in
  scan 7

(* Devices fire against the global clock (the minimum over runnable
   cores), so a tick never runs before every core has reached it —
   conservative discrete-event order. *)
let run_due_devices t =
  if t.cycles >= t.next_device_due then begin
    List.iter
      (fun d ->
        if t.cycles >= d.next_due then begin
          (match t.hooks with Some h -> h.h_device d.dev_name | None -> ());
          d.dev_tick t
        end)
      t.devices;
    recompute_device_due t
  end

(* ------------------------------------------------------------------ *)
(* Hooks and cycle attribution by owner *)

let set_hooks t h = t.hooks <- h

let owner_unowned = 0
let owner_host = 1
let owner_idle = 2
let owner_irq = 3
let owner_first = 4

let ensure_attr_owners t owner =
  if owner >= Array.length t.attr_cycles then begin
    let cap = max 16 (max (owner + 1) (2 * Array.length t.attr_cycles)) in
    let a = Array.make cap 0 in
    Array.blit t.attr_cycles 0 a 0 (Array.length t.attr_cycles);
    t.attr_cycles <- a
  end

let attribution_enable t b =
  t.attr_on <- b;
  if b then begin
    t.attr_mark <- t.cur.c_time;
    ensure_attr_owners t owner_first;
    if Array.length t.attr_owner < Array.length t.code then begin
      let a = Array.make (Array.length t.code) owner_unowned in
      Array.blit t.attr_owner 0 a 0 (Array.length t.attr_owner);
      t.attr_owner <- a
    end
  end

let attribution_on t = t.attr_on

let set_owner_range t ~entry ~len ~owner =
  if owner < 0 then invalid_arg "set_owner_range: owner";
  ensure_attr_owners t owner;
  if entry + len > Array.length t.attr_owner then begin
    let cap = max (entry + len) (2 * max 1 (Array.length t.attr_owner)) in
    let a = Array.make cap owner_unowned in
    Array.blit t.attr_owner 0 a 0 (Array.length t.attr_owner);
    t.attr_owner <- a
  end;
  for i = entry to entry + len - 1 do
    t.attr_owner.(i) <- owner
  done

let attr_add t owner cy =
  if cy > 0 then begin
    ensure_attr_owners t owner;
    t.attr_cycles.(owner) <- t.attr_cycles.(owner) + cy
  end

(* Attribute cycles accumulated since the last mark (host services
   charging between steps) to [owner_host]; call before reading the
   per-owner totals so the books balance.  The mark tracks the acting
   core's local clock and is re-anchored on every core switch. *)
let attribution_flush t =
  if t.attr_on && t.cur.c_time > t.attr_mark then begin
    attr_add t owner_host (t.cur.c_time - t.attr_mark);
    t.attr_mark <- t.cur.c_time
  end

let owner_cycles t owner =
  if owner >= 0 && owner < Array.length t.attr_cycles then t.attr_cycles.(owner)
  else 0

let max_owner t = Array.length t.attr_cycles - 1

let owner_at t addr =
  if addr >= 0 && addr < Array.length t.attr_owner then t.attr_owner.(addr)
  else owner_unowned

(* Attribute the acting core's cycles accumulated since the last mark
   to [owner] and advance the mark. *)
let attr_window t owner =
  if t.attr_on && t.cur.c_time > t.attr_mark then begin
    attr_add t owner (t.cur.c_time - t.attr_mark);
    t.attr_mark <- t.cur.c_time
  end

(* Retarget host services (and the attribution mark) at another core.
   Any un-attributed residue belongs to host services — instruction
   windows are always closed inside [step]. *)
let switch_cur t c =
  if c != t.cur then begin
    attr_window t owner_host;
    t.cur <- c;
    t.attr_mark <- c.c_time
  end

let set_active_core t i =
  if i < 0 || i >= num_cores t then invalid_arg "set_active_core";
  switch_cur t t.cpus.(i)

(* Boot a secondary core: wake it at the caller's present.  Registers,
   stack, and pc must have been staged via [set_active_core]. *)
let start_core t i =
  if i < 0 || i >= num_cores t then invalid_arg "start_core";
  let c = t.cpus.(i) in
  let now = max t.cycles t.cur.c_time in
  if c.c_time < now then c.c_time <- now;
  c.stopped <- false;
  c.started <- true

(* kfault: delay a core's next turn by skewing its local clock — the
   explorer's lever for forcing a different interleaving. *)
let stall_core t ~cpu ~cycles =
  if cpu < 0 || cpu >= num_cores t then invalid_arg "stall_core";
  if cycles > 0 then t.cpus.(cpu).c_time <- t.cpus.(cpu).c_time + cycles

let set_schedule_seed t seed =
  t.sched_rr <- abs seed mod num_cores t

let set_sched_hook t h = t.sched_hook <- h

(* ------------------------------------------------------------------ *)
(* Operand evaluation *)

let effective_addr t = function
  | Insn.Imm _ | Insn.Lbl _ | Insn.Reg _ ->
    invalid_arg "effective_addr: not a memory operand"
  | Insn.Ind r -> t.cur.regs.(r)
  | Insn.Idx (r, d) -> Word.of_int (t.cur.regs.(r) + d)
  | Insn.Abs a -> a
  | Insn.Post_inc r ->
    let a = t.cur.regs.(r) in
    t.cur.regs.(r) <- Word.of_int (a + 1);
    a
  | Insn.Pre_dec r ->
    let a = Word.of_int (t.cur.regs.(r) - 1) in
    t.cur.regs.(r) <- a;
    a

let read_operand t = function
  | Insn.Imm v -> Word.of_int v
  | Insn.Lbl l -> invalid_arg ("read_operand: unresolved label " ^ l)
  | Insn.Reg r -> t.cur.regs.(r)
  | op -> read_mem t (effective_addr t op)

let write_operand t op v =
  match op with
  | Insn.Imm _ -> invalid_arg "write_operand: immediate destination"
  | Insn.Reg r -> t.cur.regs.(r) <- Word.of_int v
  | op -> write_mem t (effective_addr t op) v

let set_nz t v =
  t.cur.cc_n <- Word.is_negative v;
  t.cur.cc_z <- v = 0

let set_nz_clear_cv t v =
  set_nz t v;
  t.cur.cc_c <- false;
  t.cur.cc_v <- false

(* ------------------------------------------------------------------ *)
(* ALU *)

let alu_apply t op a b =
  (* [b] is the destination operand value, [a] the source: dst op src. *)
  match op with
  | Insn.Add ->
    let r, c, v = Word.add_full b a in
    set_nz t r;
    t.cur.cc_c <- c;
    t.cur.cc_v <- v;
    r
  | Insn.Sub ->
    let r, c, v = Word.sub_full b a in
    set_nz t r;
    t.cur.cc_c <- c;
    t.cur.cc_v <- v;
    r
  | Insn.Mul ->
    let r = Word.mul b a in
    set_nz_clear_cv t r;
    r
  | Insn.Divu ->
    if a = 0 then raise (Cpu_fault Div_zero);
    let r = Word.divu b a in
    set_nz_clear_cv t r;
    r
  | Insn.Divs ->
    if a = 0 then raise (Cpu_fault Div_zero);
    let r = Word.divs b a in
    set_nz_clear_cv t r;
    r
  | Insn.And ->
    let r = Word.logand b a in
    set_nz_clear_cv t r;
    r
  | Insn.Or ->
    let r = Word.logor b a in
    set_nz_clear_cv t r;
    r
  | Insn.Xor ->
    let r = Word.logxor b a in
    set_nz_clear_cv t r;
    r
  | Insn.Lsl ->
    let r = Word.shift_left b a in
    set_nz_clear_cv t r;
    r
  | Insn.Lsr ->
    let r = Word.shift_right_logical b a in
    set_nz_clear_cv t r;
    r
  | Insn.Asr ->
    let r = Word.shift_right_arith b a in
    set_nz_clear_cv t r;
    r

let cond_holds t cond =
  let c = t.cur in
  match cond with
  | Insn.Always -> true
  | Insn.Eq -> c.cc_z
  | Insn.Ne -> not c.cc_z
  | Insn.Lt -> c.cc_n <> c.cc_v
  | Insn.Ge -> c.cc_n = c.cc_v
  | Insn.Le -> c.cc_z || c.cc_n <> c.cc_v
  | Insn.Gt -> (not c.cc_z) && c.cc_n = c.cc_v
  | Insn.Hi -> (not c.cc_c) && not c.cc_z
  | Insn.Ls -> c.cc_c || c.cc_z
  | Insn.Cs -> c.cc_c
  | Insn.Cc -> not c.cc_c
  | Insn.Mi -> c.cc_n
  | Insn.Pl -> not c.cc_n

let resolve_target t = function
  | Insn.To_addr a -> a
  | Insn.To_reg r -> t.cur.regs.(r)
  | Insn.To_mem op -> read_mem t (effective_addr t op)
  | Insn.To_label l -> invalid_arg ("resolve_target: unresolved label " ^ l)

let push t v =
  let c = t.cur in
  let a = Word.of_int (c.regs.(Insn.sp) - 1) in
  c.regs.(Insn.sp) <- a;
  write_mem t a v

let pop t =
  let c = t.cur in
  let a = c.regs.(Insn.sp) in
  let v = read_mem t a in
  c.regs.(Insn.sp) <- Word.of_int (a + 1);
  v

let require_supervisor t = if not t.cur.supervisor then raise (Cpu_fault Privilege)

(* ------------------------------------------------------------------ *)
(* Exceptions, traps, interrupts *)

let fault_vector = function
  | Bus_error _ -> Insn.Vector.bus_error
  | Div_zero -> Insn.Vector.div_zero
  | Privilege -> Insn.Vector.privilege
  | Illegal -> Insn.Vector.illegal
  | Fp_unavailable -> Insn.Vector.fp_unavailable

(* Enter an exception handler through the current vector table: push
   PC and SR on the supervisor stack, enter supervisor state, fetch
   the handler address from [vbr + vector]. *)
let take_exception t ~vector ~new_ipl =
  let c = t.cur in
  let sr = pack_sr t in
  if not c.supervisor then begin
    c.supervisor <- true;
    switch_stacks t
  end;
  c.trace_bit <- false;
  (match new_ipl with Some l -> c.ipl <- l | None -> ());
  push t c.pc;
  push t sr;
  charge t 18;
  (* vector fetch *)
  let handler = read_mem t (c.vbr + vector) in
  c.pc <- handler

let deliver_pending_interrupt t =
  let c = t.cur in
  let level = pending_level c in
  if level > c.ipl then begin
    let vector = c.pending.(level) in
    c.pending.(level) <- -1;
    t.irqs_taken <- t.irqs_taken + 1;
    c.c_irqs <- c.c_irqs + 1;
    (match t.hooks with Some h -> h.h_irq ~level ~vector | None -> ());
    take_exception t ~vector ~new_ipl:(Some level);
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Instruction execution *)

let exec t insn =
  match insn with
  | Insn.Nop -> ()
  | Insn.Label _ -> invalid_arg "exec: label in code store"
  | Insn.Move (src, dst) ->
    let v = read_operand t src in
    write_operand t dst v;
    set_nz_clear_cv t v
  | Insn.Lea (op, r) -> t.cur.regs.(r) <- Word.of_int (effective_addr t op)
  | Insn.Alu (op, src, rd) ->
    let a = read_operand t src in
    t.cur.regs.(rd) <- alu_apply t op a t.cur.regs.(rd)
  | Insn.Alu_mem (op, src, dst) ->
    let a = read_operand t src in
    let addr = effective_addr t dst in
    let b = read_mem t addr in
    write_mem t addr (alu_apply t op a b)
  | Insn.Cmp (src, dst) ->
    let a = read_operand t src in
    let b = read_operand t dst in
    let r, c, v = Word.sub_full b a in
    set_nz t r;
    t.cur.cc_c <- c;
    t.cur.cc_v <- v
  | Insn.Tst op ->
    let v = read_operand t op in
    set_nz_clear_cv t v
  | Insn.Neg r ->
    let v = Word.neg t.cur.regs.(r) in
    t.cur.regs.(r) <- v;
    set_nz t v;
    t.cur.cc_c <- v <> 0;
    t.cur.cc_v <- v = Word.sign_bit
  | Insn.Not r ->
    let v = Word.lognot t.cur.regs.(r) in
    t.cur.regs.(r) <- v;
    set_nz_clear_cv t v
  | Insn.B (c, tgt) -> if cond_holds t c then t.cur.pc <- resolve_target t tgt
  | Insn.Dbra (r, tgt) ->
    let v = Word.sub t.cur.regs.(r) 1 in
    t.cur.regs.(r) <- v;
    if v <> Word.mask then t.cur.pc <- resolve_target t tgt
  | Insn.Jmp tgt -> t.cur.pc <- resolve_target t tgt
  | Insn.Jsr tgt ->
    let dest = resolve_target t tgt in
    push t t.cur.pc;
    t.cur.pc <- dest
  | Insn.Rts -> t.cur.pc <- pop t
  | Insn.Trap n -> take_exception t ~vector:(Insn.Vector.trap n) ~new_ipl:None
  | Insn.Rte ->
    require_supervisor t;
    let sr = pop t in
    let pc = pop t in
    unpack_sr t sr;
    t.cur.pc <- pc
  | Insn.Cas (rc, ru, ea) ->
    (* Atomic by construction: a core's load-compare-store sequence
       can never be split — interrupts arrive between instructions and
       other cores interleave at instruction granularity (see [step]).
       Cross-core contention is therefore real: another core's
       committed Cas changes the word and this compare simply fails.
       A kfault-forced failure suppresses the store and reports Z
       clear — the same observable outcome, costing the same
       references. *)
    let c = t.cur in
    let addr = effective_addr t ea in
    let v = read_mem t addr in
    t.cas_count <- t.cas_count + 1;
    c.c_cas <- c.c_cas + 1;
    let forced = t.cas_count = t.cas_fail_next in
    let r, cc, ovf = Word.sub_full v c.regs.(rc) in
    set_nz t r;
    c.cc_c <- cc;
    c.cc_v <- ovf;
    if v = c.regs.(rc) && not forced then write_mem t addr c.regs.(ru)
    else begin
      c.regs.(rc) <- v;
      if not forced then c.c_cas_lost <- c.c_cas_lost + 1
    end;
    if forced then begin
      c.cc_z <- false;
      c.c_cas_lost <- c.c_cas_lost + 1;
      t.cas_fail_next <- max_int;
      t.cas_fail_hook t
    end
  | Insn.Movem_save (rs, sreg) ->
    List.iter
      (fun r ->
        let a = Word.of_int (t.cur.regs.(sreg) - 1) in
        t.cur.regs.(sreg) <- a;
        write_mem t a t.cur.regs.(r))
      (List.rev rs)
  | Insn.Movem_load (sreg, rs) ->
    List.iter
      (fun r ->
        let a = t.cur.regs.(sreg) in
        t.cur.regs.(r) <- read_mem t a;
        t.cur.regs.(sreg) <- Word.of_int (a + 1))
      rs
  | Insn.Push op -> push t (read_operand t op)
  | Insn.Pop r -> t.cur.regs.(r) <- pop t
  | Insn.Set_ipl n ->
    require_supervisor t;
    t.cur.ipl <- n land 7
  | Insn.Move_vbr op ->
    require_supervisor t;
    t.cur.vbr <- read_operand t op
  | Insn.Move_mmu op ->
    require_supervisor t;
    t.cur.cpu_map <- Word.signed (read_operand t op)
  | Insn.Fmove_imm (f, d) ->
    if not t.cur.fp_enabled then raise (Cpu_fault Fp_unavailable);
    t.cur.fregs.(d) <- f
  | Insn.Fmove (s, d) ->
    if not t.cur.fp_enabled then raise (Cpu_fault Fp_unavailable);
    t.cur.fregs.(d) <- t.cur.fregs.(s)
  | Insn.Fop (op, s, d) ->
    if not t.cur.fp_enabled then raise (Cpu_fault Fp_unavailable);
    let a = t.cur.fregs.(s) and b = t.cur.fregs.(d) in
    t.cur.fregs.(d) <-
      (match op with
      | Insn.Fadd -> b +. a
      | Insn.Fsub -> b -. a
      | Insn.Fmul -> b *. a
      | Insn.Fdiv -> b /. a)
  | Insn.Fmovem_save sreg ->
    (* FP context is wide: three memory words per register. *)
    for i = Insn.num_fregs - 1 downto 0 do
      let bits = Int64.to_int (Int64.logand (Int64.bits_of_float t.cur.fregs.(i)) 0xFFFF_FFFFL) in
      let a = Word.of_int (t.cur.regs.(sreg) - 3) in
      t.cur.regs.(sreg) <- a;
      write_mem t a bits;
      write_mem t (a + 1)
        (Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float t.cur.fregs.(i)) 32));
      write_mem t (a + 2) i
    done
  | Insn.Fmovem_load sreg ->
    for i = 0 to Insn.num_fregs - 1 do
      let a = t.cur.regs.(sreg) in
      let lo = read_mem t a in
      let hi = read_mem t (a + 1) in
      let _tag = read_mem t (a + 2) in
      t.cur.regs.(sreg) <- Word.of_int (a + 3);
      t.cur.fregs.(i) <-
        Int64.float_of_bits
          (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo))
    done
  | Insn.Stop_wait ->
    require_supervisor t;
    t.cur.stopped <- true
  | Insn.Halt -> t.halted <- true
  | Insn.Hcall id ->
    if id < 0 || id >= t.hcall_len then raise (Cpu_fault Illegal);
    t.hcalls.(id) t

(* ------------------------------------------------------------------ *)
(* Stepping and running *)

let set_fp_enabled t b = t.cur.fp_enabled <- b
let fp_enabled t = t.cur.fp_enabled

let fetch t =
  let pc = t.cur.pc in
  if pc < 0 || pc >= t.code_len then raise (Wild_jump pc);
  t.code.(pc)

let record_trace t pc =
  t.trace_ring.(t.trace_pos) <- pc;
  t.trace_pos <- (t.trace_pos + 1) mod Array.length t.trace_ring;
  t.trace_count <- t.trace_count + 1

let trace_enable t b = t.trace_on <- b

(* Cycle profiling: attribute every executed instruction's cycles
   (base + memory references) to its code address. *)
let profile_enable t b =
  t.profile_on <- b;
  if b && Array.length t.profile < Array.length t.code then
    t.profile <- Array.make (Array.length t.code) 0

let profile_reset t = Array.fill t.profile 0 (Array.length t.profile) 0

let profile_cycles t addr =
  if addr >= 0 && addr < Array.length t.profile then t.profile.(addr) else 0

(* The [n] hottest addresses as (address, cycles), hottest first. *)
let profile_top t n =
  let entries = ref [] in
  Array.iteri (fun a c -> if c > 0 then entries := (a, c) :: !entries) t.profile;
  let sorted = List.sort (fun (_, c1) (_, c2) -> compare c2 c1) !entries in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  take n sorted

(* PC sampling (kperf PMU): every [period] cycles the step loop hands
   the hook the pc it just executed plus the cycles elapsed since the
   previous sample, so sample weights tile the sampled window. *)
let set_sampling t ~period hook =
  if period <= 0 then invalid_arg "set_sampling: period";
  t.sample_period <- period;
  t.sample_hook <- hook;
  t.sample_mark <- t.cur.c_time;
  t.sample_next <- t.cur.c_time + period

let clear_sampling t =
  t.sample_period <- 0;
  t.sample_next <- max_int;
  t.sample_hook <- (fun ~pc:_ ~weight:_ -> ())

let sampling_on t = t.sample_period > 0

(* Most recent executed PCs, oldest first. *)
let trace_window t n =
  let n = min n (min t.trace_count (Array.length t.trace_ring)) in
  List.init n (fun i ->
      let pos =
        (t.trace_pos - n + i + Array.length t.trace_ring) mod Array.length t.trace_ring
      in
      t.trace_ring.(pos))

(* The global clock: the smallest local clock among runnable cores, or
   — with every core asleep — among all of them.  Monotone, because
   [pick_core] always runs the minimum core. *)
let frontier t =
  let n = Array.length t.cpus in
  if n = 1 then t.cpus.(0).c_time
  else begin
    let best = ref max_int and any = ref false in
    for i = 0 to n - 1 do
      let c = t.cpus.(i) in
      if not c.stopped then begin
        any := true;
        if c.c_time < !best then best := c.c_time
      end
    done;
    if !any then !best
    else Array.fold_left (fun acc c -> min acc c.c_time) max_int t.cpus
  end

(* The next core to step: runnable with the smallest local clock.
   Ties go to a rotating start position (seeded by
   [set_schedule_seed]); the explorer's [sched_hook] may override the
   pick with any runnable core — its per-step preemption lever. *)
let pick_core t =
  let n = Array.length t.cpus in
  if n = 1 then (if t.cpus.(0).stopped then None else Some t.cpus.(0))
  else begin
    let best = ref (-1) and bt = ref max_int in
    for k = 0 to n - 1 do
      let i = (t.sched_rr + k) mod n in
      let c = t.cpus.(i) in
      if (not c.stopped) && c.c_time < !bt then begin
        bt := c.c_time;
        best := i
      end
    done;
    if !best < 0 then None
    else begin
      t.sched_rr <- (t.sched_rr + 1) mod n;
      let choice =
        match t.sched_hook with
        | None -> !best
        | Some f ->
          let runnable =
            Array.of_list
              (List.filter_map
                 (fun c -> if c.stopped then None else Some c.cid)
                 (Array.to_list t.cpus))
          in
          let pick = f runnable !best in
          if pick >= 0 && pick < n && not t.cpus.(pick).stopped then pick
          else !best
      in
      Some t.cpus.(choice)
    end
  end

let step t =
  (* cycles charged host-side between steps belong to host services *)
  attr_window t owner_host;
  if t.halted then ()
  else
    match pick_core t with
    | None ->
      (* Every core is stopped: fast-forward simulated time to the
         next device event, warping the sleepers' clocks.  One halted
         core never skips past another's pending work — this path only
         runs when no core anywhere can make progress. *)
      if t.next_device_due = max_int then raise Deadlock;
      if t.next_device_due > t.cycles then t.cycles <- t.next_device_due;
      Array.iter
        (fun c -> if c.c_time < t.cycles then c.c_time <- t.cycles)
        t.cpus;
      run_due_devices t;
      attr_window t owner_idle;
      Array.iter
        (fun c ->
          if not c.stopped then begin
            switch_cur t c;
            if deliver_pending_interrupt t then attr_window t owner_irq
          end)
        t.cpus
    | Some c ->
      switch_cur t c;
      if deliver_pending_interrupt t then attr_window t owner_irq
      else begin
        let trace_this = c.trace_bit in
        let insn = fetch t in
        let at = c.pc in
        let cy0 = c.c_time in
        if t.trace_on then record_trace t c.pc;
        c.pc <- c.pc + 1;
        t.insns <- t.insns + 1;
        c.c_insns <- c.c_insns + 1;
        c.c_time <- c.c_time + Cost.base insn;
        (try exec t insn
         with Cpu_fault f -> (
           c.pc <- c.pc - 1;
           (match t.hooks with Some h -> h.h_fault f | None -> ());
           (* fault PC: re-entrant handlers may fix and retry *)
           try take_exception t ~vector:(fault_vector f) ~new_ipl:None
           with Cpu_fault _ ->
             (* Double fault: exception entry itself faulted (ruined
                supervisor stack or unreadable vector).  There is no
                state left to recover with — halt, like the 68020's
                double bus fault. *)
             t.double_fault <- true;
             t.halted <- true));
        if t.profile_on && at < Array.length t.profile then
          t.profile.(at) <- t.profile.(at) + (c.c_time - cy0);
        if t.sample_period > 0 && c.c_time >= t.sample_next then begin
          let weight = c.c_time - t.sample_mark in
          t.sample_mark <- c.c_time;
          t.sample_next <- c.c_time + t.sample_period;
          t.sample_hook ~pc:at ~weight
        end;
        if trace_this && not t.halted then
          take_exception t ~vector:Insn.Vector.trace ~new_ipl:None;
        attr_window t (owner_at t at)
      end;
      t.cycles <- frontier t;
      run_due_devices t;
      (* device ticks charge host-side *)
      attr_window t owner_host

type run_result = Halted | Insn_limit

let run ?(max_insns = max_int) t =
  let start = t.insns in
  let rec loop () =
    if t.halted then Halted
    else if t.insns - start >= max_insns then Insn_limit
    else begin
      step t;
      loop ()
    end
  in
  loop ()

(* kfault: deterministic transient CAS failure. *)
let cas_executed t = t.cas_count

let set_cas_fail t ~at ~hook =
  if at <= t.cas_count then invalid_arg "set_cas_fail: index already passed";
  t.cas_fail_next <- at;
  t.cas_fail_hook <- hook

let clear_cas_fail t =
  t.cas_fail_next <- max_int;
  t.cas_fail_hook <- (fun _ -> ())

let cas_fail_armed t = t.cas_fail_next <> max_int

let halted t = t.halted
let set_halted t b = t.halted <- b
let double_faulted t = t.double_fault

(* Recovery hosts (Boot.go's double-fault restart path) acknowledge a
   double fault before re-entering the scheduler, so a *subsequent*
   double fault is distinguishable from the one just handled. *)
let clear_double_fault t = t.double_fault <- false
let stopped t = t.cur.stopped
let last_fault_addr t = t.cur.last_fault_addr
let vbr t = t.cur.vbr
let set_vbr t v = t.cur.vbr <- v
let ipl t = t.cur.ipl
let set_ipl t l = t.cur.ipl <- l land 7

let set_supervisor t b =
  if b <> t.cur.supervisor then (
    t.cur.supervisor <- b;
    switch_stacks t)

let other_sp t = t.cur.other_sp
let set_other_sp t v = t.cur.other_sp <- v
let mem_words t = t.mem_words
let cost_model t = t.cost
