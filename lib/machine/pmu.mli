(** The Quamachine performance-monitoring unit (§6.1): the machine's
    built-in counters — instructions retired, memory references,
    interrupts taken, cycles — packaged as programmable sampling
    windows, plus timer-driven pc sampling in the step loop.

    Purely host-side: a PMU never charges a simulated cycle, so
    instrumented and uninstrumented runs execute bit-identical
    instruction streams ([bench/pmu_overhead.ml] asserts it). *)

type counter = Cycles | Instructions | Mem_refs | Interrupts

val counter_name : counter -> string

type t

val create : Machine.t -> t
val machine : t -> Machine.t

(** {1 Counter windows}

    [start] opens a window; [stop] closes it and folds the deltas into
    the running totals; [read] reports totals including the window
    currently open, so it can be polled mid-run. *)

val start : t -> unit
val stop : t -> unit
val running : t -> bool
val read : t -> counter -> int
val read_all : t -> (counter * int) list

(** Per-core counters under the same window discipline (SMP);
    [Cycles] is the core's local clock, so rows can sum to more than
    the machine frontier. *)
val read_core : t -> int -> counter -> int

(** One row per core. *)
val read_cores : t -> counter -> int array

(** Stop, zero the totals, and drop all samples. *)
val reset : t -> unit

(** {1 PC sampling}

    Every [period] simulated cycles the step loop records the pc just
    executed, weighted by the cycles elapsed since the previous
    sample — weights tile the sampled window.  Samples are kept only
    while a counter window is open. *)

val enable_sampling : t -> period:int -> unit
val disable_sampling : t -> unit

(** The configured period; 0 when sampling is off. *)
val sampling_period : t -> int

(** All samples as (pc, weight-cycles), oldest first. *)
val samples : t -> (int * int) list

val sample_count : t -> int

(** Sum of sample weights. *)
val sampled_cycles : t -> int

(** Aggregate weight per pc, heaviest first. *)
val sample_histogram : t -> (int * int) list

val pp : Format.formatter -> t -> unit
