(** The simulated Quamachine (§6.1): CPU cores, memory with protection
    maps, an append-only patchable code store, prioritized interrupts,
    devices, host-call hooks, and the instruction / memory-reference /
    cycle counters the paper's measurements rely on.

    With [create ~cores:n], [n] cores step over the one shared memory
    and code store.  Each core keeps a local absolute cycle clock;
    [step] always runs the runnable core with the smallest clock (ties
    broken by a seeded rotation, overridable by an explorer hook), so
    the interleaving is deterministic and cores progress in
    simulated-parallel time.  Interrupts are routed per level to a
    core; cores interleave at instruction granularity, so every
    shared-memory access is a potential switch point and another
    core's committed [Cas] is a real contention source.  With one core
    the machine is cycle-identical to the uniprocessor it replaces. *)

type t

(** CPU faults delivered through the current vector table. *)
type fault =
  | Bus_error of int
  | Div_zero
  | Privilege
  | Illegal
  | Fp_unavailable

exception Cpu_fault of fault

(** Every core is stopped waiting for an interrupt no device will ever
    deliver. *)
exception Deadlock

(** Control flow left the code store: there is no vector for this. *)
exception Wild_jump of int

(** Observability hooks (ktrace).  Callbacks run host-side and must not
    charge simulated cycles; with hooks unset the fast paths pay
    nothing beyond a field load. *)
type hooks = {
  h_post : source:string -> level:int -> vector:int -> unit;
      (** a device posted an interrupt *)
  h_irq : level:int -> vector:int -> unit;
      (** the CPU accepted a pending interrupt *)
  h_device : string -> unit;  (** a device tick ran *)
  h_fault : fault -> unit;  (** a CPU fault was raised *)
}

(** A device: [dev_tick] runs when simulated time reaches [next_due]. *)
type device = {
  dev_name : string;
  mutable next_due : int;
  mutable dev_tick : t -> unit;
}

(** First data address routed to MMIO handlers instead of memory. *)
val mmio_base : int

val create : ?mem_words:int -> ?cores:int -> Cost.t -> t

(** {1 Cores (SMP Quamachine)}

    Host services (register access, [charge], [peek]/[poke], code
    synthesis) act on the {e active} core — during execution the core
    whose instruction (or hcall) is running, between steps whichever
    core was last active or was selected with [set_active_core]. *)

(** Hard cap on [create ~cores]. *)
val max_cores : int

val num_cores : t -> int

(** The active core's id. *)
val current_core : t -> int

(** Retarget host services at core [i] (staging a secondary core's
    registers at boot, inspecting another core in tests). *)
val set_active_core : t -> int -> unit

(** Wake core [i] at the caller's present; its registers, stack, and
    pc must have been staged via [set_active_core]. *)
val start_core : t -> int -> unit

val core_stopped : t -> int -> bool

(** Has [start_core] ever woken this core?  (A stop-waiting core is
    [core_stopped] but still started; core 0 boots started.) *)
val core_started : t -> int -> bool

val core_pc : t -> int -> int

(** Per-core counters: local clock, instructions, memory references,
    interrupts accepted, Cas executed, Cas that observed a changed
    word (lost races — on several cores, real cross-core contention). *)

val core_cycles : t -> int -> int
val core_insns : t -> int -> int
val core_refs : t -> int -> int
val core_irqs : t -> int -> int
val core_cas : t -> int -> int
val core_cas_lost : t -> int -> int

(** Completion time: the largest local clock over all cores. *)
val max_core_cycles : t -> int

(** Seed the rotating tie-break of the core-interleaving schedule. *)
val set_schedule_seed : t -> int -> unit

(** Per-step schedule override: receives the runnable core ids and the
    default pick, returns the core to run (invalid choices fall back
    to the default).  The explorer's preemption lever. *)
val set_sched_hook : t -> (int array -> int -> int) option -> unit

(** Route interrupt [level] to a core (default: all levels to core 0).
    An explicit [?cpu] on [post_interrupt] overrides the route. *)
val set_irq_route : t -> level:int -> cpu:int -> unit

val irq_route : t -> level:int -> int

(** kfault: delay core [cpu]'s next turn by skewing its local clock —
    the lever for forcing a different cross-core interleaving. *)
val stall_core : t -> cpu:int -> cycles:int -> unit

(** {1 Counters and simulated time} *)

val cycles : t -> int
val insns_executed : t -> int
val mem_refs : t -> int

(** Interrupts accepted by the CPU since reset. *)
val irqs_taken : t -> int

val time_us : t -> float

(** Host services account their cost explicitly. *)
val charge : t -> int -> unit

(** Charge [n] memory references (cycles and the reference counter). *)
val charge_refs : t -> int -> unit

type stats = { s_cycles : int; s_insns : int; s_refs : int }

val snapshot : t -> stats
val delta : t -> stats -> stats
val stats_us : t -> stats -> float

(** {1 Registers and status} *)

val get_reg : t -> Insn.reg -> int
val set_reg : t -> Insn.reg -> int -> unit
val get_freg : t -> int -> float
val set_freg : t -> int -> float -> unit
val get_pc : t -> int
val set_pc : t -> int -> unit
val in_supervisor : t -> bool
val set_supervisor : t -> bool -> unit
val pack_sr : t -> int
val other_sp : t -> int
val set_other_sp : t -> int -> unit
val vbr : t -> int
val set_vbr : t -> int -> unit
val ipl : t -> int
val set_ipl : t -> int -> unit
val set_fp_enabled : t -> bool -> unit
val fp_enabled : t -> bool
val last_fault_addr : t -> int

(** {1 Memory} *)

(** Checked, charged access (protection + MMIO dispatch); what
    executing instructions use. *)
val read_mem : t -> int -> int

val write_mem : t -> int -> int -> unit

(** Host-side access: unchecked and uncharged; pair with [charge]. *)
val peek : t -> int -> int

val poke : t -> int -> int -> unit

val map_mmio_read : t -> addr:int -> (unit -> int) -> unit
val map_mmio_write : t -> addr:int -> (int -> unit) -> unit

(** Address-space maps: a map is a list of [(base, length)] segments
    user-mode code may touch. *)
val define_map : t -> id:int -> (int * int) list -> unit

val map_segments : t -> id:int -> (int * int) list
val current_map : t -> int
val set_map : t -> int -> unit
val mem_words : t -> int

(** {1 Code store} *)

(** Append resolved instructions; returns the entry address. *)
val append_code : t -> Insn.insn list -> int

(** Reserve a patchable region of [n] slots (initially halting). *)
val reserve_code : t -> int -> int

(** Rewrite one instruction in place — executable data structures. *)
val patch_code : t -> int -> Insn.insn -> unit

val read_code : t -> int -> Insn.insn
val code_size : t -> int

(** {1 Host calls} *)

(** Register a host service invocable by [Insn.Hcall]; returns its id. *)
val register_hcall : t -> (t -> unit) -> int

(** {1 Devices and interrupts} *)

val add_device : t -> name:string -> due:int -> tick:(t -> unit) -> device
val device_schedule : t -> device -> int -> unit
val device_idle : t -> device -> unit

(** Look up an installed device by name (kfault stalls device
    completions by rescheduling or idling its deadline). *)
val find_device : t -> string -> device option

(** Unregister a device (e.g. disarming a fault injector). *)
val remove_device : t -> device -> unit

(** [source] labels the posting device for the observability hooks;
    [cpu] targets a core directly, otherwise the level's route
    applies.  Posting to a stopped core wakes it at the caller's
    present. *)
val post_interrupt :
  ?source:string -> ?cpu:int -> t -> level:int -> vector:int -> unit

(** {1 Power cuts (kcrash)}

    Devices that model persistence register a cut handler; the
    argument is the torn-word bound for an in-flight write (-1 = the
    transfer is lost whole, [k >= 0] = exactly the first [k] words
    land). *)

val register_power_hook : t -> device:string -> (int -> unit) -> unit

(** Cut power to the named device at the current cycle; cuts to
    devices with no registered handler are ignored. *)
val power_cut : t -> device:string -> torn_words:int -> unit

(** {1 Frame faults (kserve)}

    Devices that move frames (the NIC) register a handler; [dir] is
    0 = rx, 1 = tx and [kind] is 0 = drop, 1 = duplicate, 2 = reorder.
    The handler arms a one-shot fault against the next frame moved in
    that direction. *)

val register_frame_hook :
  t -> device:string -> (dir:int -> kind:int -> unit) -> unit

(** Arm a one-shot frame fault; faults to devices with no registered
    handler are ignored (same contract as [power_cut]). *)
val frame_fault : t -> device:string -> dir:int -> kind:int -> unit

(** {1 Observability hooks} *)

val set_hooks : t -> hooks option -> unit

(** {1 Cycle attribution by owner}

    A second, coarser profile: every code address maps to an integer
    owner (a thread, a quaject, a synthesized routine...) and every
    elapsed cycle is accumulated against exactly one owner, so the
    per-owner totals sum to the machine total over the attributed
    window.  Owners [0..owner_first-1] are reserved:
    {ul
    {- [owner_unowned] — code nobody registered;}
    {- [owner_host] — host-side services ([charge]/[charge_refs]) and
       device ticks;}
    {- [owner_idle] — stopped-CPU time fast-forwarded to the next
       device event;}
    {- [owner_irq] — exception/interrupt delivery (vector fetch,
       frame pushes).}} *)

val owner_unowned : int
val owner_host : int
val owner_idle : int
val owner_irq : int

(** First id available for registered owners. *)
val owner_first : int

val attribution_enable : t -> bool -> unit
val attribution_on : t -> bool

(** Assign code addresses [entry .. entry+len-1] to [owner]. *)
val set_owner_range : t -> entry:int -> len:int -> owner:int -> unit

(** Attribute host-charged cycles accumulated since the last step to
    [owner_host]; call before reading totals so the books balance. *)
val attribution_flush : t -> unit

val owner_cycles : t -> int -> int

(** Largest owner id with an accumulator slot. *)
val max_owner : t -> int

(** {1 Execution} *)

type run_result = Halted | Insn_limit

val step : t -> unit
val run : ?max_insns:int -> t -> run_result
val halted : t -> bool
val set_halted : t -> bool -> unit

(** A fault was raised while entering a fault handler (ruined
    supervisor stack or unreadable vector); the machine halted, like a
    68020 double bus fault. *)
val double_faulted : t -> bool

(** Acknowledge a double fault so a recovery host can resume the
    machine and still detect the next one. *)
val clear_double_fault : t -> unit

val stopped : t -> bool
val cost_model : t -> Cost.t

(** {1 kfault: transient CAS-failure injection}

    Deterministic fault injection for the optimistic-synchronization
    retry loops.  [Cas] instructions are numbered from 1 as they
    execute; arming a failure at index [at] makes that Cas suppress
    its store and report Z clear — indistinguishable from losing the
    race to another processor — then invoke [hook] (which may re-arm
    for a later index).  Entirely host-side: with nothing armed the
    Cas path pays one integer compare, and simulated cycle, insn, and
    reference counts are identical to a machine without the feature. *)

(** Cas instructions executed since reset. *)
val cas_executed : t -> int

(** Force the [at]-th Cas (1-based, must be in the future) to fail. *)
val set_cas_fail : t -> at:int -> hook:(t -> unit) -> unit

val clear_cas_fail : t -> unit
val cas_fail_armed : t -> bool

(** {1 Trace (kernel monitor, §6.1)} *)

val trace_enable : t -> bool -> unit

(** The most recent executed PCs, oldest first. *)
val trace_window : t -> int -> int list

(** {1 Cycle profiling} — attribute every executed instruction's
    cycles to its code address.  Enable before loading heavy code or
    re-enable to grow the table. *)

val profile_enable : t -> bool -> unit
val profile_reset : t -> unit
val profile_cycles : t -> int -> int

(** The [n] hottest addresses as (address, cycles), hottest first. *)
val profile_top : t -> int -> (int * int) list

(** {1 PC sampling (kperf PMU)}

    Timer-driven sampling in the step loop, mirroring the Quamachine's
    built-in instrumentation (§6.1): every [period] cycles the hook
    receives the pc just executed and the cycles elapsed since the
    previous sample (so weights tile the sampled window).  Entirely
    host-side — simulated cycle and instruction counts are identical
    with sampling on, off, or never configured; [Pmu] wraps this with
    counter windows and a sample buffer. *)

val set_sampling : t -> period:int -> (pc:int -> weight:int -> unit) -> unit
val clear_sampling : t -> unit
val sampling_on : t -> bool
