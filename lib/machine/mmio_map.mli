(** Memory-mapped device register allocation (§6.1's I/O devices) and
    their interrupt levels/vectors. *)

val base : int

(** {1 Real-time clock / monitor counters} *)

val rtc_us : int
val rtc_cycles : int
val rtc_insns : int

(** {1 Interval timers} — write microseconds to arm a one-shot
    interrupt, 0 to cancel, read for the remainder. *)

val timer_alarm : int

(** SMP: core [c]'s private quantum timer register ([timer_alarm + c];
    core 0 keeps the plain [timer_alarm] the uniprocessor used). *)
val timer_alarm_for : int -> int

(** the user-visible alarm timer (Table 5) *)
val alarm_set : int

(** {1 SMP per-core register window} — dispatch, host-side, to the
    {e executing} core's current-thread kernel cells at the same
    one-reference cost as touching the cell directly.  Shared kernel
    paths (yield, block, chaining) go through these; per-thread
    synthesized code binds its home core's cell addresses.  Handlers
    are installed by the kernel, which owns the cell layout. *)

val cur_sw_out : int
val cur_tte : int
val cur_tid : int
val chain_scratch : int

(** {1 Serial TTY} *)

val tty_data_in : int
val tty_status : int
val tty_data_out : int

(** {1 Disk controller} *)

val disk_block : int
val disk_buffer : int
val disk_command : int
val disk_status : int

(** {1 A/D and D/A converters} *)

val ad_data : int
val ad_control : int
val da_data : int

(** {1 Network card (kserve)}

    Descriptor rings in guest memory; free-running head/tail indices.
    Supervisor code and tests drive the MMIO registers directly;
    user-mode pumps use the mailbox cells (head writeback + polled
    tail/doorbell cells) because the MMIO window is
    supervisor-only. *)

val nic_rx_ring : int
val nic_rx_len : int
val nic_rx_head : int
val nic_rx_tail : int
val nic_tx_ring : int
val nic_tx_len : int
val nic_tx_head : int
val nic_tx_tail : int
val nic_ctrl : int
val nic_coalesce : int
val nic_cause : int
val nic_admit : int
val nic_shed : int
val nic_overrun : int
val nic_rx_mail : int
val nic_tx_mail : int
val nic_rx_tail_cell : int
val nic_tx_head_cell : int

(** {1 CPU control} *)

(** FP-coprocessor availability for the running thread (lazy-FP). *)
val fp_control : int

(** The inactive (user) stack pointer, 68k "move usp" equivalent. *)
val usp : int

(** {1 Interrupt levels and autovectors} *)

val timer_level : int
val ad_level : int
val tty_level : int
val disk_level : int
val alarm_level : int
val nic_level : int
val timer_vector : int
val ad_vector : int
val tty_vector : int
val disk_vector : int
val alarm_vector : int
val nic_vector : int
