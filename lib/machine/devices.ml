(* Device models for the Quamachine.

   Each device registers MMIO handlers and (when it generates events)
   a machine device entry whose [tick] runs when simulated time
   reaches its deadline.  Interrupts are posted at the levels/vectors
   assigned in [Mmio_map]. *)

(* ------------------------------------------------------------------ *)
(* Real-time clock and monitor counters *)

module Rtc = struct
  let install m =
    Machine.map_mmio_read m ~addr:Mmio_map.rtc_us (fun () ->
        int_of_float (Machine.time_us m));
    Machine.map_mmio_read m ~addr:Mmio_map.rtc_cycles (fun () ->
        Machine.cycles m land Word.mask);
    Machine.map_mmio_read m ~addr:Mmio_map.rtc_insns (fun () ->
        Machine.insns_executed m land Word.mask)
end

(* ------------------------------------------------------------------ *)
(* CPU control (FP coprocessor availability) *)

module Cpu_control = struct
  let install m =
    Machine.map_mmio_write m ~addr:Mmio_map.fp_control (fun v ->
        Machine.set_fp_enabled m (v <> 0));
    Machine.map_mmio_read m ~addr:Mmio_map.fp_control (fun () ->
        if Machine.fp_enabled m then 1 else 0);
    Machine.map_mmio_write m ~addr:Mmio_map.usp (fun v -> Machine.set_other_sp m v);
    Machine.map_mmio_read m ~addr:Mmio_map.usp (fun () -> Machine.other_sp m)
end

(* ------------------------------------------------------------------ *)
(* One-shot interval timer *)

module Timer = struct
  type t = {
    mutable armed_at : int; (* cycle deadline, max_int = disarmed *)
    dev : Machine.device;
    machine : Machine.t;
  }

  (* [cpu] pins the posted interrupt to a core (each core's private
     quantum timer); without it the machine's level route applies. *)
  let install ?(name = "timer") ?(addr = Mmio_map.timer_alarm)
      ?(level = Mmio_map.timer_level) ?(vector = Mmio_map.timer_vector) ?cpu m =
    let dev = Machine.add_device m ~name ~due:max_int ~tick:(fun _ -> ()) in
    let t = { armed_at = max_int; dev; machine = m } in
    dev.Machine.dev_tick <-
      (fun m ->
        t.armed_at <- max_int;
        Machine.device_idle m dev;
        Machine.post_interrupt ~source:name ?cpu m ~level ~vector);
    Machine.map_mmio_write m ~addr (fun us ->
        if us = 0 then begin
          t.armed_at <- max_int;
          Machine.device_idle m dev
        end
        else begin
          let deadline =
            Machine.cycles m + Cost.cycles_of_us (Machine.cost_model m) (float_of_int us)
          in
          t.armed_at <- deadline;
          Machine.device_schedule m dev deadline
        end);
    Machine.map_mmio_read m ~addr (fun () ->
        if t.armed_at = max_int then 0
        else
          let remaining = max 0 (t.armed_at - Machine.cycles m) in
          int_of_float (Cost.us_of_cycles (Machine.cost_model m) remaining));
    t

  let armed t = t.armed_at <> max_int

  (* Host-side arm, used by the kernel to force an early preemption
     (e.g. when an unblocked thread must get the CPU now). *)
  let arm t ~us =
    let m = t.machine in
    (* [armed_at] set while the underlying device is idle means the
       completion was lost (a kfault drop idles the device without
       running the tick): the remembered deadline is stale and must
       not suppress rearming.  Fault-free runs never see this state —
       the tick and the MMIO write keep the two fields in lockstep. *)
    let stale = t.armed_at <> max_int && t.dev.Machine.next_due = max_int in
    let deadline = Machine.cycles m + Cost.cycles_of_us (Machine.cost_model m) us in
    if stale || deadline < t.armed_at then begin
      t.armed_at <- deadline;
      Machine.device_schedule m t.dev deadline
    end
end

(* ------------------------------------------------------------------ *)
(* Serial TTY *)

module Tty = struct
  type t = {
    machine : Machine.t;
    input : char Queue.t; (* characters not yet delivered *)
    output : Buffer.t;
    mutable data_in : int; (* last delivered character *)
    mutable data_taken : bool; (* data_in consumed by an MMIO read *)
    mutable char_interval_us : float; (* inter-arrival time *)
    dev : Machine.device;
  }

  let install ?(char_interval_us = 100.0) m =
    let dev = Machine.add_device m ~name:"tty" ~due:max_int ~tick:(fun _ -> ()) in
    let t =
      {
        machine = m;
        input = Queue.create ();
        output = Buffer.create 256;
        data_in = 0;
        data_taken = true;
        char_interval_us;
        dev;
      }
    in
    dev.Machine.dev_tick <-
      (fun m ->
        if Queue.is_empty t.input then Machine.device_idle m dev
        else if not t.data_taken then
          (* The previous character is still in the holding register:
             overwriting it here would make the pending interrupt's
             handler read the wrong character (and re-deliver it for
             the overwriting one).  Hold this character until the
             register is consumed. *)
          Machine.device_schedule m dev
            (Machine.cycles m
            + Cost.cycles_of_us (Machine.cost_model m) t.char_interval_us)
        else begin
          t.data_in <- Char.code (Queue.pop t.input);
          t.data_taken <- false;
          Machine.post_interrupt ~source:"tty" m ~level:Mmio_map.tty_level
            ~vector:Mmio_map.tty_vector;
          if Queue.is_empty t.input then Machine.device_idle m dev
          else
            Machine.device_schedule m dev
              (Machine.cycles m
              + Cost.cycles_of_us (Machine.cost_model m) t.char_interval_us)
        end);
    Machine.map_mmio_read m ~addr:Mmio_map.tty_data_in (fun () ->
        t.data_taken <- true;
        t.data_in);
    Machine.map_mmio_read m ~addr:Mmio_map.tty_status (fun () ->
        if Queue.is_empty t.input then 0 else 1);
    Machine.map_mmio_write m ~addr:Mmio_map.tty_data_out (fun v ->
        Buffer.add_char t.output (Char.chr (v land 0x7F)));
    t

  (* Host-side: queue input characters for delivery. *)
  let feed t s =
    let was_empty = Queue.is_empty t.input in
    String.iter (fun c -> Queue.push c t.input) s;
    if was_empty && not (Queue.is_empty t.input) then
      Machine.device_schedule t.machine t.dev
        (Machine.cycles t.machine
        + Cost.cycles_of_us (Machine.cost_model t.machine) t.char_interval_us)

  let output t = Buffer.contents t.output
  let clear_output t = Buffer.clear t.output
end

(* ------------------------------------------------------------------ *)
(* Disk controller (DMA block device with seek latency) *)

module Disk = struct
  let block_words = 256

  type t = {
    machine : Machine.t;
    store : int array array; (* blocks *)
    mutable reg_block : int;
    mutable reg_buffer : int;
    mutable status : int; (* 0 idle, 1 busy, 2 done, 3 error *)
    mutable seek_us : float;
    mutable transfer_us_per_word : float;
    mutable pending : [ `Read of int * int | `Write of int * int ] option;
    dev : Machine.device;
    (* kcrash: persistence model *)
    mutable powered : bool;
    mutable journaling : bool;
    mutable journal : (int * int array) list; (* committed writes, newest first *)
  }

  let install ?(blocks = 1024) ?(seek_us = 2000.0) ?(transfer_us_per_word = 1.0) m =
    let dev = Machine.add_device m ~name:"disk" ~due:max_int ~tick:(fun _ -> ()) in
    let t =
      {
        machine = m;
        store = Array.init blocks (fun _ -> Array.make block_words 0);
        reg_block = 0;
        reg_buffer = 0;
        status = 0;
        seek_us;
        transfer_us_per_word;
        pending = None;
        dev;
        powered = true;
        journaling = false;
        journal = [];
      }
    in
    dev.Machine.dev_tick <-
      (fun m ->
        Machine.device_idle m dev;
        if t.powered then begin
          (match t.pending with
          | None -> ()
          | Some (`Read (blk, buf)) ->
            for i = 0 to block_words - 1 do
              Machine.poke m (buf + i) t.store.(blk).(i)
            done;
            t.status <- 2
          | Some (`Write (blk, buf)) ->
            for i = 0 to block_words - 1 do
              t.store.(blk).(i) <- Machine.peek m (buf + i)
            done;
            if t.journaling then
              t.journal <- (blk, Array.copy t.store.(blk)) :: t.journal;
            t.status <- 2);
          t.pending <- None;
          Machine.post_interrupt ~source:"disk" m ~level:Mmio_map.disk_level
            ~vector:Mmio_map.disk_vector
        end);
    Machine.map_mmio_write m ~addr:Mmio_map.disk_block (fun v -> t.reg_block <- v);
    Machine.map_mmio_write m ~addr:Mmio_map.disk_buffer (fun v -> t.reg_buffer <- v);
    Machine.map_mmio_read m ~addr:Mmio_map.disk_status (fun () -> t.status);
    Machine.map_mmio_write m ~addr:Mmio_map.disk_command (fun cmd ->
        if not t.powered then ()
        else if t.reg_block < 0 || t.reg_block >= Array.length t.store then
          t.status <- 3
        else begin
          t.status <- 1;
          t.pending <-
            (match cmd with
            | 1 -> Some (`Read (t.reg_block, t.reg_buffer))
            | 2 -> Some (`Write (t.reg_block, t.reg_buffer))
            | _ ->
              t.status <- 3;
              None);
          if t.pending <> None then begin
            let latency =
              t.seek_us +. (t.transfer_us_per_word *. float_of_int block_words)
            in
            Machine.device_schedule m t.dev
              (Machine.cycles m + Cost.cycles_of_us (Machine.cost_model m) latency)
          end
        end);
    (* kcrash: a power cut freezes the platter at this instant.  An
       in-flight read is simply lost; an in-flight write either
       vanishes whole (torn_words < 0) or lands its first [torn_words]
       words — the prefix-torn sector model.  No completion interrupt
       is ever posted and the controller goes dead until power_on. *)
    Machine.register_power_hook m ~device:"disk" (fun torn_words ->
        (match t.pending with
        | Some (`Write (blk, buf)) when torn_words >= 0 ->
          let n = min torn_words block_words in
          for i = 0 to n - 1 do
            t.store.(blk).(i) <- Machine.peek m (buf + i)
          done;
          if t.journaling && n > 0 then
            t.journal <- (blk, Array.copy t.store.(blk)) :: t.journal
        | _ -> ());
        t.pending <- None;
        t.powered <- false;
        Machine.device_idle m dev);
    t

  (* Host-side access for populating disk images in tests/examples. *)
  let write_block t blk data =
    Array.blit data 0 t.store.(blk) 0 (min block_words (Array.length data))

  let read_block t blk = Array.copy t.store.(blk)
  let blocks t = Array.length t.store

  (* ---- kcrash: power and persistence --------------------------- *)

  let power_cut ?(torn_words = -1) t =
    Machine.power_cut t.machine ~device:"disk" ~torn_words

  let power_on t =
    t.powered <- true;
    t.status <- 0

  let powered t = t.powered

  (* Commit journal: every write that reached the platter, in commit
     order, as (block, post-write image).  Crash states are exactly
     the prefixes of this list applied to a base image (the elevator
     admits no other orders — the server keeps one request in
     flight). *)
  let set_journaling t on =
    t.journaling <- on;
    if on then t.journal <- []

  let journal t = List.rev t.journal
  let clear_journal t = t.journal <- []

  (* Whole-platter snapshots for reboot-and-recover exploration. *)
  let image t = Array.map Array.copy t.store

  let load_image t img =
    let n = min (Array.length img) (Array.length t.store) in
    for b = 0 to n - 1 do
      Array.blit img.(b) 0 t.store.(b) 0 (min block_words (Array.length img.(b)))
    done
end

(* ------------------------------------------------------------------ *)
(* A/D converter: a sampled analog source (44,100 interrupts/s, §5.4) *)

module Ad = struct
  type t = {
    machine : Machine.t;
    mutable sample : int;
    mutable rate_hz : int; (* 0 = off *)
    mutable seq : int; (* synthetic waveform state *)
    mutable delivered : int;
    dev : Machine.device;
  }

  (* Synthetic 16-bit waveform: a deterministic LCG so that tests can
     check data integrity through queues end to end. *)
  let next_sample t =
    t.seq <- (t.seq * 1_103_515_245) + 12_345;
    (t.seq lsr 8) land 0xFFFF

  let install m =
    let dev = Machine.add_device m ~name:"ad" ~due:max_int ~tick:(fun _ -> ()) in
    let t = { machine = m; sample = 0; rate_hz = 0; seq = 1; delivered = 0; dev } in
    dev.Machine.dev_tick <-
      (fun m ->
        if t.rate_hz = 0 then Machine.device_idle m dev
        else begin
          t.sample <- next_sample t;
          t.delivered <- t.delivered + 1;
          Machine.post_interrupt ~source:"ad" m ~level:Mmio_map.ad_level
            ~vector:Mmio_map.ad_vector;
          let period_us = 1_000_000.0 /. float_of_int t.rate_hz in
          Machine.device_schedule m dev
            (Machine.cycles m + Cost.cycles_of_us (Machine.cost_model m) period_us)
        end);
    Machine.map_mmio_read m ~addr:Mmio_map.ad_data (fun () -> t.sample);
    Machine.map_mmio_write m ~addr:Mmio_map.ad_control (fun rate ->
        t.rate_hz <- rate;
        if rate = 0 then Machine.device_idle m t.dev
        else
          let period_us = 1_000_000.0 /. float_of_int rate in
          Machine.device_schedule m t.dev
            (Machine.cycles m + Cost.cycles_of_us (Machine.cost_model m) period_us));
    t

  let delivered t = t.delivered

  (* Host-side rate control (same effect as the MMIO control write). *)
  let set_rate t rate =
    t.rate_hz <- rate;
    if rate = 0 then Machine.device_idle t.machine t.dev
    else
      let period_us = 1_000_000.0 /. float_of_int rate in
      Machine.device_schedule t.machine t.dev
        (Machine.cycles t.machine
        + Cost.cycles_of_us (Machine.cost_model t.machine) period_us)
end

(* ------------------------------------------------------------------ *)
(* D/A converter: sound output sink *)

module Da = struct
  type t = { samples : int Queue.t }

  let install m =
    let t = { samples = Queue.create () } in
    Machine.map_mmio_write m ~addr:Mmio_map.da_data (fun v -> Queue.push v t.samples);
    t

  let drain t =
    let out = List.of_seq (Queue.to_seq t.samples) in
    Queue.clear t.samples;
    out

  let count t = Queue.length t.samples
end
