(* Device models for the Quamachine.

   Each device registers MMIO handlers and (when it generates events)
   a machine device entry whose [tick] runs when simulated time
   reaches its deadline.  Interrupts are posted at the levels/vectors
   assigned in [Mmio_map]. *)

(* ------------------------------------------------------------------ *)
(* Real-time clock and monitor counters *)

module Rtc = struct
  let install m =
    Machine.map_mmio_read m ~addr:Mmio_map.rtc_us (fun () ->
        int_of_float (Machine.time_us m));
    Machine.map_mmio_read m ~addr:Mmio_map.rtc_cycles (fun () ->
        Machine.cycles m land Word.mask);
    Machine.map_mmio_read m ~addr:Mmio_map.rtc_insns (fun () ->
        Machine.insns_executed m land Word.mask)
end

(* ------------------------------------------------------------------ *)
(* CPU control (FP coprocessor availability) *)

module Cpu_control = struct
  let install m =
    Machine.map_mmio_write m ~addr:Mmio_map.fp_control (fun v ->
        Machine.set_fp_enabled m (v <> 0));
    Machine.map_mmio_read m ~addr:Mmio_map.fp_control (fun () ->
        if Machine.fp_enabled m then 1 else 0);
    Machine.map_mmio_write m ~addr:Mmio_map.usp (fun v -> Machine.set_other_sp m v);
    Machine.map_mmio_read m ~addr:Mmio_map.usp (fun () -> Machine.other_sp m)
end

(* ------------------------------------------------------------------ *)
(* One-shot interval timer *)

module Timer = struct
  type t = {
    mutable armed_at : int; (* cycle deadline, max_int = disarmed *)
    dev : Machine.device;
    machine : Machine.t;
  }

  (* [cpu] pins the posted interrupt to a core (each core's private
     quantum timer); without it the machine's level route applies. *)
  let install ?(name = "timer") ?(addr = Mmio_map.timer_alarm)
      ?(level = Mmio_map.timer_level) ?(vector = Mmio_map.timer_vector) ?cpu m =
    let dev = Machine.add_device m ~name ~due:max_int ~tick:(fun _ -> ()) in
    let t = { armed_at = max_int; dev; machine = m } in
    dev.Machine.dev_tick <-
      (fun m ->
        t.armed_at <- max_int;
        Machine.device_idle m dev;
        Machine.post_interrupt ~source:name ?cpu m ~level ~vector);
    Machine.map_mmio_write m ~addr (fun us ->
        if us = 0 then begin
          t.armed_at <- max_int;
          Machine.device_idle m dev
        end
        else begin
          let deadline =
            Machine.cycles m + Cost.cycles_of_us (Machine.cost_model m) (float_of_int us)
          in
          t.armed_at <- deadline;
          Machine.device_schedule m dev deadline
        end);
    Machine.map_mmio_read m ~addr (fun () ->
        if t.armed_at = max_int then 0
        else
          let remaining = max 0 (t.armed_at - Machine.cycles m) in
          int_of_float (Cost.us_of_cycles (Machine.cost_model m) remaining));
    t

  let armed t = t.armed_at <> max_int

  (* Host-side arm, used by the kernel to force an early preemption
     (e.g. when an unblocked thread must get the CPU now). *)
  let arm t ~us =
    let m = t.machine in
    (* [armed_at] set while the underlying device is idle means the
       completion was lost (a kfault drop idles the device without
       running the tick): the remembered deadline is stale and must
       not suppress rearming.  Fault-free runs never see this state —
       the tick and the MMIO write keep the two fields in lockstep. *)
    let stale = t.armed_at <> max_int && t.dev.Machine.next_due = max_int in
    let deadline = Machine.cycles m + Cost.cycles_of_us (Machine.cost_model m) us in
    if stale || deadline < t.armed_at then begin
      t.armed_at <- deadline;
      Machine.device_schedule m t.dev deadline
    end
end

(* ------------------------------------------------------------------ *)
(* Serial TTY *)

module Tty = struct
  type t = {
    machine : Machine.t;
    input : char Queue.t; (* characters not yet delivered *)
    output : Buffer.t;
    mutable data_in : int; (* last delivered character *)
    mutable data_taken : bool; (* data_in consumed by an MMIO read *)
    mutable char_interval_us : float; (* inter-arrival time *)
    dev : Machine.device;
  }

  let install ?(char_interval_us = 100.0) m =
    let dev = Machine.add_device m ~name:"tty" ~due:max_int ~tick:(fun _ -> ()) in
    let t =
      {
        machine = m;
        input = Queue.create ();
        output = Buffer.create 256;
        data_in = 0;
        data_taken = true;
        char_interval_us;
        dev;
      }
    in
    dev.Machine.dev_tick <-
      (fun m ->
        if Queue.is_empty t.input then Machine.device_idle m dev
        else if not t.data_taken then
          (* The previous character is still in the holding register:
             overwriting it here would make the pending interrupt's
             handler read the wrong character (and re-deliver it for
             the overwriting one).  Hold this character until the
             register is consumed. *)
          Machine.device_schedule m dev
            (Machine.cycles m
            + Cost.cycles_of_us (Machine.cost_model m) t.char_interval_us)
        else begin
          t.data_in <- Char.code (Queue.pop t.input);
          t.data_taken <- false;
          Machine.post_interrupt ~source:"tty" m ~level:Mmio_map.tty_level
            ~vector:Mmio_map.tty_vector;
          if Queue.is_empty t.input then Machine.device_idle m dev
          else
            Machine.device_schedule m dev
              (Machine.cycles m
              + Cost.cycles_of_us (Machine.cost_model m) t.char_interval_us)
        end);
    Machine.map_mmio_read m ~addr:Mmio_map.tty_data_in (fun () ->
        t.data_taken <- true;
        t.data_in);
    Machine.map_mmio_read m ~addr:Mmio_map.tty_status (fun () ->
        if Queue.is_empty t.input then 0 else 1);
    Machine.map_mmio_write m ~addr:Mmio_map.tty_data_out (fun v ->
        Buffer.add_char t.output (Char.chr (v land 0x7F)));
    t

  (* Host-side: queue input characters for delivery. *)
  let feed t s =
    let was_empty = Queue.is_empty t.input in
    String.iter (fun c -> Queue.push c t.input) s;
    if was_empty && not (Queue.is_empty t.input) then
      Machine.device_schedule t.machine t.dev
        (Machine.cycles t.machine
        + Cost.cycles_of_us (Machine.cost_model t.machine) t.char_interval_us)

  let output t = Buffer.contents t.output
  let clear_output t = Buffer.clear t.output
end

(* ------------------------------------------------------------------ *)
(* Disk controller (DMA block device with seek latency) *)

module Disk = struct
  let block_words = 256

  type t = {
    machine : Machine.t;
    store : int array array; (* blocks *)
    mutable reg_block : int;
    mutable reg_buffer : int;
    mutable status : int; (* 0 idle, 1 busy, 2 done, 3 error *)
    mutable seek_us : float;
    mutable transfer_us_per_word : float;
    mutable pending : [ `Read of int * int | `Write of int * int ] option;
    dev : Machine.device;
    (* kcrash: persistence model *)
    mutable powered : bool;
    mutable journaling : bool;
    mutable journal : (int * int array) list; (* committed writes, newest first *)
  }

  let install ?(blocks = 1024) ?(seek_us = 2000.0) ?(transfer_us_per_word = 1.0) m =
    let dev = Machine.add_device m ~name:"disk" ~due:max_int ~tick:(fun _ -> ()) in
    let t =
      {
        machine = m;
        store = Array.init blocks (fun _ -> Array.make block_words 0);
        reg_block = 0;
        reg_buffer = 0;
        status = 0;
        seek_us;
        transfer_us_per_word;
        pending = None;
        dev;
        powered = true;
        journaling = false;
        journal = [];
      }
    in
    dev.Machine.dev_tick <-
      (fun m ->
        Machine.device_idle m dev;
        if t.powered then begin
          (match t.pending with
          | None -> ()
          | Some (`Read (blk, buf)) ->
            for i = 0 to block_words - 1 do
              Machine.poke m (buf + i) t.store.(blk).(i)
            done;
            t.status <- 2
          | Some (`Write (blk, buf)) ->
            for i = 0 to block_words - 1 do
              t.store.(blk).(i) <- Machine.peek m (buf + i)
            done;
            if t.journaling then
              t.journal <- (blk, Array.copy t.store.(blk)) :: t.journal;
            t.status <- 2);
          t.pending <- None;
          Machine.post_interrupt ~source:"disk" m ~level:Mmio_map.disk_level
            ~vector:Mmio_map.disk_vector
        end);
    Machine.map_mmio_write m ~addr:Mmio_map.disk_block (fun v -> t.reg_block <- v);
    Machine.map_mmio_write m ~addr:Mmio_map.disk_buffer (fun v -> t.reg_buffer <- v);
    Machine.map_mmio_read m ~addr:Mmio_map.disk_status (fun () -> t.status);
    Machine.map_mmio_write m ~addr:Mmio_map.disk_command (fun cmd ->
        if not t.powered then ()
        else if t.reg_block < 0 || t.reg_block >= Array.length t.store then
          t.status <- 3
        else begin
          t.status <- 1;
          t.pending <-
            (match cmd with
            | 1 -> Some (`Read (t.reg_block, t.reg_buffer))
            | 2 -> Some (`Write (t.reg_block, t.reg_buffer))
            | _ ->
              t.status <- 3;
              None);
          if t.pending <> None then begin
            let latency =
              t.seek_us +. (t.transfer_us_per_word *. float_of_int block_words)
            in
            Machine.device_schedule m t.dev
              (Machine.cycles m + Cost.cycles_of_us (Machine.cost_model m) latency)
          end
        end);
    (* kcrash: a power cut freezes the platter at this instant.  An
       in-flight read is simply lost; an in-flight write either
       vanishes whole (torn_words < 0) or lands its first [torn_words]
       words — the prefix-torn sector model.  No completion interrupt
       is ever posted and the controller goes dead until power_on. *)
    Machine.register_power_hook m ~device:"disk" (fun torn_words ->
        (match t.pending with
        | Some (`Write (blk, buf)) when torn_words >= 0 ->
          let n = min torn_words block_words in
          for i = 0 to n - 1 do
            t.store.(blk).(i) <- Machine.peek m (buf + i)
          done;
          if t.journaling && n > 0 then
            t.journal <- (blk, Array.copy t.store.(blk)) :: t.journal
        | _ -> ());
        t.pending <- None;
        t.powered <- false;
        Machine.device_idle m dev);
    t

  (* Host-side access for populating disk images in tests/examples. *)
  let write_block t blk data =
    Array.blit data 0 t.store.(blk) 0 (min block_words (Array.length data))

  let read_block t blk = Array.copy t.store.(blk)
  let blocks t = Array.length t.store

  (* ---- kcrash: power and persistence --------------------------- *)

  let power_cut ?(torn_words = -1) t =
    Machine.power_cut t.machine ~device:"disk" ~torn_words

  let power_on t =
    t.powered <- true;
    t.status <- 0

  let powered t = t.powered

  (* Commit journal: every write that reached the platter, in commit
     order, as (block, post-write image).  Crash states are exactly
     the prefixes of this list applied to a base image (the elevator
     admits no other orders — the server keeps one request in
     flight). *)
  let set_journaling t on =
    t.journaling <- on;
    if on then t.journal <- []

  let journal t = List.rev t.journal
  let clear_journal t = t.journal <- []

  (* Whole-platter snapshots for reboot-and-recover exploration. *)
  let image t = Array.map Array.copy t.store

  let load_image t img =
    let n = min (Array.length img) (Array.length t.store) in
    for b = 0 to n - 1 do
      Array.blit img.(b) 0 t.store.(b) 0 (min block_words (Array.length img.(b)))
    done
end

(* ------------------------------------------------------------------ *)
(* A/D converter: a sampled analog source (44,100 interrupts/s, §5.4) *)

module Ad = struct
  type t = {
    machine : Machine.t;
    mutable sample : int;
    mutable rate_hz : int; (* 0 = off *)
    mutable seq : int; (* synthetic waveform state *)
    mutable delivered : int;
    dev : Machine.device;
  }

  (* Synthetic 16-bit waveform: a deterministic LCG so that tests can
     check data integrity through queues end to end. *)
  let next_sample t =
    t.seq <- (t.seq * 1_103_515_245) + 12_345;
    (t.seq lsr 8) land 0xFFFF

  let install m =
    let dev = Machine.add_device m ~name:"ad" ~due:max_int ~tick:(fun _ -> ()) in
    let t = { machine = m; sample = 0; rate_hz = 0; seq = 1; delivered = 0; dev } in
    dev.Machine.dev_tick <-
      (fun m ->
        if t.rate_hz = 0 then Machine.device_idle m dev
        else begin
          t.sample <- next_sample t;
          t.delivered <- t.delivered + 1;
          Machine.post_interrupt ~source:"ad" m ~level:Mmio_map.ad_level
            ~vector:Mmio_map.ad_vector;
          let period_us = 1_000_000.0 /. float_of_int t.rate_hz in
          Machine.device_schedule m dev
            (Machine.cycles m + Cost.cycles_of_us (Machine.cost_model m) period_us)
        end);
    Machine.map_mmio_read m ~addr:Mmio_map.ad_data (fun () -> t.sample);
    Machine.map_mmio_write m ~addr:Mmio_map.ad_control (fun rate ->
        t.rate_hz <- rate;
        if rate = 0 then Machine.device_idle m t.dev
        else
          let period_us = 1_000_000.0 /. float_of_int rate in
          Machine.device_schedule m t.dev
            (Machine.cycles m + Cost.cycles_of_us (Machine.cost_model m) period_us));
    t

  let delivered t = t.delivered

  (* Host-side rate control (same effect as the MMIO control write). *)
  let set_rate t rate =
    t.rate_hz <- rate;
    if rate = 0 then Machine.device_idle t.machine t.dev
    else
      let period_us = 1_000_000.0 /. float_of_int rate in
      Machine.device_schedule t.machine t.dev
        (Machine.cycles t.machine
        + Cost.cycles_of_us (Machine.cost_model t.machine) period_us)
end

(* ------------------------------------------------------------------ *)
(* D/A converter: sound output sink *)

module Da = struct
  type t = { samples : int Queue.t }

  let install m =
    let t = { samples = Queue.create () } in
    Machine.map_mmio_write m ~addr:Mmio_map.da_data (fun v -> Queue.push v t.samples);
    t

  let drain t =
    let out = List.of_seq (Queue.to_seq t.samples) in
    Queue.clear t.samples;
    out

  let count t = Queue.length t.samples
end

(* ------------------------------------------------------------------ *)
(* Network card (kserve).

   Rx/tx descriptor rings in guest memory, 4-word descriptors
   [buf; len; status; tag].  Head/tail indices are free-running
   (occupancy = head - tail); the card DMAs arriving frames into
   posted rx buffers and drains posted tx buffers to a host sink.

   The MMIO register block (Mmio_map.nic_rx_ring etc.) is the
   canonical interface, but the MMIO window is supervisor-only, so the card also
   does Intel-style *head writeback* — after every rx delivery it
   pokes the fill index into a configured data cell — and polls the
   consumer/doorbell indices from configured data cells on each
   service tick, letting user-mode pump threads drive it with plain
   loads and stores.

   Interrupts: one autovector at Mmio_map.nic_level, coalesced —
   [nic_coalesce] = n fires one interrupt per n completions (rx or
   tx); a partial batch is flushed when the card goes idle.
   The delivery burst per tick scales with the coalescing factor, so
   coalesce=1 really is one interrupt (and one tick) per frame.

   Faults: seeded loss/duplication/reorder knobs per direction
   ([set_chaos]) plus one-shot forced faults armed through
   [Machine.frame_fault] (the Fault_inject [Frame_fault] action).
   With every knob off the data path is exact: no loss, duplication,
   or reordering, whatever the interleaving. *)

module Nic = struct
  let desc_words = 4
  let frame_words_max = 4

  type frame = int array

  (* per-direction chaos state: an LCG plus 1-in-n knobs and the
     one-shot faults forced by Machine.frame_fault *)
  type chaos = {
    mutable ch_seed : int;
    mutable ch_drop : int; (* 1-in-n; 0 = off *)
    mutable ch_dup : int;
    mutable ch_reorder : int;
    mutable ch_forced : int list; (* pending one-shot kinds, FIFO *)
    mutable ch_held : frame option; (* frame held back by a reorder *)
    mutable ch_dropped : int;
    mutable ch_dupped : int;
    mutable ch_reordered : int;
  }

  let chaos_make () =
    {
      ch_seed = 0;
      ch_drop = 0;
      ch_dup = 0;
      ch_reorder = 0;
      ch_forced = [];
      ch_held = None;
      ch_dropped = 0;
      ch_dupped = 0;
      ch_reordered = 0;
    }

  type t = {
    machine : Machine.t;
    dev : Machine.device;
    mutable enabled : bool;
    mutable poll_us : float;
    (* rx ring *)
    mutable rx_ring : int;
    mutable rx_len : int;
    mutable rx_head : int; (* device fill index, free-running *)
    mutable rx_tail : int; (* consumer index (kernel-owned) *)
    mutable rx_mail : int; (* head-writeback cell; 0 = off *)
    mutable rx_tail_cell : int; (* polled consumer-index cell; 0 = off *)
    (* tx ring *)
    mutable tx_ring : int;
    mutable tx_len : int;
    mutable tx_head : int; (* producer doorbell (kernel-owned) *)
    mutable tx_tail : int; (* device consume index *)
    mutable tx_mail : int; (* tail-writeback cell; 0 = off *)
    mutable tx_head_cell : int; (* polled doorbell cell; 0 = off *)
    (* wire-in backlog: frames injected but not yet DMA'd *)
    rx_q : frame Queue.t;
    (* frames sent, oldest first, unless a sink consumes them *)
    tx_out : frame Queue.t;
    mutable tx_sink : (frame -> unit) option;
    (* interrupt coalescing *)
    mutable coalesce : int; (* completions per interrupt; >= 1 *)
    mutable pending_events : int;
    mutable cause : int; (* bit0 rx, bit1 tx; read-to-clear *)
    (* admission control: max admitted rx occupancy; 0 = unlimited *)
    mutable admit : int;
    (* chaos, per direction *)
    rx_chaos : chaos;
    tx_chaos : chaos;
    (* counters *)
    mutable rx_injected : int;
    mutable rx_delivered : int;
    mutable rx_shed : int;
    mutable rx_overruns : int;
    mutable tx_sent : int;
    mutable irqs_posted : int;
    mutable rx_seq : int; (* delivery tag *)
  }

  let lcg_next ch =
    ch.ch_seed <- ((ch.ch_seed * 1_103_515_245) + 12_345) land 0x3FFF_FFFF;
    ch.ch_seed lsr 8

  let hit ch knob = knob > 0 && lcg_next ch mod knob = 0

  (* Run one frame through a direction's chaos: returns the frames
     that actually move, in order.  Forced one-shot faults take
     priority over the seeded knobs; a reorder holds the frame back
     until the next one passes (the tick flushes strays). *)
  let chaos_apply ch f =
    let kind =
      match ch.ch_forced with
      | k :: rest ->
        ch.ch_forced <- rest;
        Some k
      | [] ->
        if hit ch ch.ch_drop then Some 0
        else if hit ch ch.ch_dup then Some 1
        else if hit ch ch.ch_reorder then Some 2
        else None
    in
    let out =
      match kind with
      | Some 0 ->
        ch.ch_dropped <- ch.ch_dropped + 1;
        []
      | Some 1 ->
        ch.ch_dupped <- ch.ch_dupped + 1;
        [ f; f ]
      | Some 2 -> (
        ch.ch_reordered <- ch.ch_reordered + 1;
        match ch.ch_held with
        | None ->
          ch.ch_held <- Some f;
          []
        | Some held ->
          (* already holding one: emit the new frame first *)
          ch.ch_held <- Some held;
          [ f ])
      | _ -> [ f ]
    in
    (* a held frame rides out behind the next frame that passes *)
    match (out, ch.ch_held, kind) with
    | _ :: _, Some held, k when k <> Some 2 ->
      ch.ch_held <- None;
      out @ [ held ]
    | _ -> out

  let chaos_flush ch =
    match ch.ch_held with
    | Some f ->
      ch.ch_held <- None;
      [ f ]
    | None -> []

  let occupancy head tail = (head - tail) land Word.mask

  (* schedule the next service tick; [kick] only ever shortens *)
  let kick t =
    if t.enabled then begin
      let due =
        Machine.cycles t.machine
        + Cost.cycles_of_us (Machine.cost_model t.machine) t.poll_us
      in
      if t.dev.Machine.next_due > due then
        Machine.device_schedule t.machine t.dev due
    end

  (* the kernel-side indices, honouring the polled mailbox cells *)
  let rx_tail_now t =
    if t.rx_tail_cell <> 0 then Machine.peek t.machine t.rx_tail_cell
    else t.rx_tail

  let tx_head_now t =
    if t.tx_head_cell <> 0 then Machine.peek t.machine t.tx_head_cell
    else t.tx_head

  let post_event t ~bit =
    t.pending_events <- t.pending_events + 1;
    t.cause <- t.cause lor bit

  let maybe_irq t ~flush =
    if t.pending_events >= max 1 t.coalesce || (flush && t.pending_events > 0)
    then begin
      t.pending_events <- 0;
      t.irqs_posted <- t.irqs_posted + 1;
      Machine.post_interrupt ~source:"nic" t.machine ~level:Mmio_map.nic_level
        ~vector:Mmio_map.nic_vector
    end

  (* DMA one frame into the rx ring; false = ring full (try later) *)
  let deliver_rx t f =
    if t.rx_ring = 0 || t.rx_len = 0 then true (* unconfigured: drop *)
    else begin
      let tail = rx_tail_now t in
      let occ = occupancy t.rx_head tail in
      if t.admit > 0 && occ >= t.admit then begin
        t.rx_shed <- t.rx_shed + 1;
        true (* shed at the ring: admission control *)
      end
      else if occ >= t.rx_len then begin
        t.rx_overruns <- t.rx_overruns + 1;
        true (* ring overrun: the frame is gone, like real hardware *)
      end
      else begin
        let m = t.machine in
        let slot = t.rx_head mod t.rx_len in
        let desc = t.rx_ring + (desc_words * slot) in
        let buf = Machine.peek m desc in
        let cap = max 1 (min frame_words_max (Machine.peek m (desc + 1))) in
        let n = min cap (Array.length f) in
        for i = 0 to n - 1 do
          Machine.poke m (buf + i) f.(i)
        done;
        Machine.poke m (desc + 1) n;
        Machine.poke m (desc + 2) 1;
        Machine.poke m (desc + 3) t.rx_seq;
        t.rx_seq <- t.rx_seq + 1;
        t.rx_head <- (t.rx_head + 1) land Word.mask;
        if t.rx_mail <> 0 then Machine.poke m t.rx_mail t.rx_head;
        t.rx_delivered <- t.rx_delivered + 1;
        post_event t ~bit:1;
        true
      end
    end

  let emit_tx t f =
    t.tx_sent <- t.tx_sent + 1;
    match t.tx_sink with
    | Some sink -> sink f
    | None -> Queue.push f t.tx_out

  (* drain one posted tx descriptor; false = nothing posted *)
  let drain_tx t =
    if t.tx_ring = 0 || t.tx_len = 0 then false
    else
      let head = tx_head_now t in
      if occupancy head t.tx_tail = 0 then false
      else begin
        let m = t.machine in
        let slot = t.tx_tail mod t.tx_len in
        let desc = t.tx_ring + (desc_words * slot) in
        let buf = Machine.peek m desc in
        let len = max 0 (min frame_words_max (Machine.peek m (desc + 1))) in
        let f = Array.init len (fun i -> Machine.peek m (buf + i)) in
        Machine.poke m (desc + 2) 0;
        t.tx_tail <- (t.tx_tail + 1) land Word.mask;
        if t.tx_mail <> 0 then Machine.poke m t.tx_mail t.tx_tail;
        List.iter (emit_tx t) (chaos_apply t.tx_chaos f);
        post_event t ~bit:2;
        true
      end

  let service t =
    if t.enabled then begin
      let burst = max 1 t.coalesce in
      (* rx: wire backlog -> ring *)
      let budget = ref burst in
      while !budget > 0 && not (Queue.is_empty t.rx_q) do
        let f = Queue.pop t.rx_q in
        ignore (deliver_rx t f);
        decr budget
      done;
      (* a reorder-held frame with nothing behind it rides out now *)
      if Queue.is_empty t.rx_q then
        List.iter (fun f -> ignore (deliver_rx t f)) (chaos_flush t.rx_chaos);
      (* tx: ring -> sink *)
      let budget = ref burst in
      while !budget > 0 && drain_tx t do
        decr budget
      done;
      let tx_pending = occupancy (tx_head_now t) t.tx_tail > 0 in
      if not tx_pending then
        List.iter (emit_tx t) (chaos_flush t.tx_chaos);
      let idle = Queue.is_empty t.rx_q && not tx_pending in
      maybe_irq t ~flush:idle;
      (* keep polling while enabled: the doorbell cells are plain
         memory, so there is no MMIO write to wake us *)
      kick t
    end

  let install ?(poll_us = 1.0) m =
    let dev = Machine.add_device m ~name:"nic" ~due:max_int ~tick:(fun _ -> ()) in
    let t =
      {
        machine = m;
        dev;
        enabled = false;
        poll_us;
        rx_ring = 0;
        rx_len = 0;
        rx_head = 0;
        rx_tail = 0;
        rx_mail = 0;
        rx_tail_cell = 0;
        tx_ring = 0;
        tx_len = 0;
        tx_head = 0;
        tx_tail = 0;
        tx_mail = 0;
        tx_head_cell = 0;
        rx_q = Queue.create ();
        tx_out = Queue.create ();
        tx_sink = None;
        coalesce = 1;
        pending_events = 0;
        cause = 0;
        admit = 0;
        rx_chaos = chaos_make ();
        tx_chaos = chaos_make ();
        rx_injected = 0;
        rx_delivered = 0;
        rx_shed = 0;
        rx_overruns = 0;
        tx_sent = 0;
        irqs_posted = 0;
        rx_seq = 0;
      }
    in
    dev.Machine.dev_tick <-
      (fun m ->
        Machine.device_idle m dev;
        service t);
    let wr addr f = Machine.map_mmio_write m ~addr f in
    let rd addr f = Machine.map_mmio_read m ~addr f in
    wr Mmio_map.nic_rx_ring (fun v -> t.rx_ring <- v);
    wr Mmio_map.nic_rx_len (fun v -> t.rx_len <- v);
    rd Mmio_map.nic_rx_head (fun () -> t.rx_head);
    rd Mmio_map.nic_rx_tail (fun () -> rx_tail_now t);
    wr Mmio_map.nic_rx_tail (fun v ->
        t.rx_tail <- v;
        if t.rx_tail_cell <> 0 then Machine.poke m t.rx_tail_cell v;
        kick t);
    wr Mmio_map.nic_tx_ring (fun v -> t.tx_ring <- v);
    wr Mmio_map.nic_tx_len (fun v -> t.tx_len <- v);
    rd Mmio_map.nic_tx_head (fun () -> tx_head_now t);
    wr Mmio_map.nic_tx_head (fun v ->
        t.tx_head <- v;
        if t.tx_head_cell <> 0 then Machine.poke m t.tx_head_cell v;
        kick t);
    rd Mmio_map.nic_tx_tail (fun () -> t.tx_tail);
    wr Mmio_map.nic_ctrl (fun v ->
        t.enabled <- v land 1 <> 0;
        if t.enabled then kick t else Machine.device_idle m dev);
    wr Mmio_map.nic_coalesce (fun v -> t.coalesce <- max 1 v);
    rd Mmio_map.nic_cause (fun () ->
        let c = t.cause in
        t.cause <- 0;
        c);
    wr Mmio_map.nic_admit (fun v -> t.admit <- max 0 v);
    rd Mmio_map.nic_admit (fun () -> t.admit);
    rd Mmio_map.nic_shed (fun () -> t.rx_shed);
    rd Mmio_map.nic_overrun (fun () -> t.rx_overruns);
    wr Mmio_map.nic_rx_mail (fun v -> t.rx_mail <- v);
    wr Mmio_map.nic_tx_mail (fun v -> t.tx_mail <- v);
    wr Mmio_map.nic_rx_tail_cell (fun v -> t.rx_tail_cell <- v);
    wr Mmio_map.nic_tx_head_cell (fun v -> t.tx_head_cell <- v);
    (* one-shot frame faults (Fault_inject's Frame_fault action) *)
    Machine.register_frame_hook m ~device:"nic" (fun ~dir ~kind ->
        let ch = if dir = 0 then t.rx_chaos else t.tx_chaos in
        if kind >= 0 && kind <= 2 then
          ch.ch_forced <- ch.ch_forced @ [ kind ]);
    t

  (* ---- host side --------------------------------------------------- *)

  (* Offer a frame on the wire.  Always re-kicks the service tick, so
     a dropped completion only delays delivery until the next
     injection. *)
  let inject t f =
    t.rx_injected <- t.rx_injected + 1;
    List.iter (fun f' -> Queue.push f' t.rx_q) (chaos_apply t.rx_chaos f);
    kick t

  let set_tx_sink t sink = t.tx_sink <- sink

  let drain_tx_frames t =
    let out = List.of_seq (Queue.to_seq t.tx_out) in
    Queue.clear t.tx_out;
    out

  (* Host-side mirrors of the MMIO interface, for tests and for
     kernel-build code that runs before any thread exists (the same
     precedent as Disk.write_block / Ad.set_rate). *)
  let host_config_rx t ~ring ~len ~mail ~tail_cell =
    t.rx_ring <- ring;
    t.rx_len <- len;
    t.rx_mail <- mail;
    t.rx_tail_cell <- tail_cell

  let host_config_tx t ~ring ~len ~mail ~head_cell =
    t.tx_ring <- ring;
    t.tx_len <- len;
    t.tx_mail <- mail;
    t.tx_head_cell <- head_cell

  let host_enable t on =
    t.enabled <- on;
    if on then kick t else Machine.device_idle t.machine t.dev

  let host_set_coalesce t n = t.coalesce <- max 1 n
  let host_set_admit t n = t.admit <- max 0 n

  let host_rx_tail t v =
    t.rx_tail <- v;
    if t.rx_tail_cell <> 0 then Machine.poke t.machine t.rx_tail_cell v;
    kick t

  let host_tx_head t v =
    t.tx_head <- v;
    if t.tx_head_cell <> 0 then Machine.poke t.machine t.tx_head_cell v;
    kick t

  let rx_head t = t.rx_head
  let tx_tail t = t.tx_tail

  let set_chaos t ~dir ~seed ~drop_1_in ~dup_1_in ~reorder_1_in =
    let ch = if dir = 0 then t.rx_chaos else t.tx_chaos in
    ch.ch_seed <- seed land 0x3FFF_FFFF;
    ch.ch_drop <- max 0 drop_1_in;
    ch.ch_dup <- max 0 dup_1_in;
    ch.ch_reorder <- max 0 reorder_1_in

  type stats = {
    s_rx_injected : int;
    s_rx_delivered : int;
    s_rx_shed : int;
    s_rx_overruns : int;
    s_tx_sent : int;
    s_irqs : int;
    s_rx_dropped : int;
    s_rx_dupped : int;
    s_rx_reordered : int;
    s_tx_dropped : int;
    s_tx_dupped : int;
    s_tx_reordered : int;
  }

  let stats t =
    {
      s_rx_injected = t.rx_injected;
      s_rx_delivered = t.rx_delivered;
      s_rx_shed = t.rx_shed;
      s_rx_overruns = t.rx_overruns;
      s_tx_sent = t.tx_sent;
      s_irqs = t.irqs_posted;
      s_rx_dropped = t.rx_chaos.ch_dropped;
      s_rx_dupped = t.rx_chaos.ch_dupped;
      s_rx_reordered = t.rx_chaos.ch_reordered;
      s_tx_dropped = t.tx_chaos.ch_dropped;
      s_tx_dupped = t.tx_chaos.ch_dupped;
      s_tx_reordered = t.tx_chaos.ch_reordered;
    }

  let wire_backlog t = Queue.length t.rx_q
end
