(* The Quamachine performance-monitoring unit (§6.1): the paper's
   measurements lean on the machine's built-in instruction and
   memory-reference counters and its microsecond interval timer.  This
   module packages those counters as programmable sampling windows
   (start/stop/read) and adds timer-driven pc sampling on top of
   [Machine.set_sampling].

   Everything here is host-side observation: a PMU — created or not,
   running or not, sampling or not — never charges a simulated cycle,
   so instrumented and uninstrumented runs are bit-identical
   (bench/pmu_overhead.ml asserts it). *)

type counter = Cycles | Instructions | Mem_refs | Interrupts

let counter_name = function
  | Cycles -> "cycles"
  | Instructions -> "instructions"
  | Mem_refs -> "mem_refs"
  | Interrupts -> "interrupts"

(* A window snapshot of all four machine counters. *)
type snap = { w_cycles : int; w_insns : int; w_refs : int; w_irqs : int }

type t = {
  machine : Machine.t;
  mutable running : bool;
  mutable base : snap; (* counter values when the current window opened *)
  mutable acc : snap; (* closed-window totals *)
  mutable base_cores : snap array; (* per-core rows of [base] (SMP) *)
  mutable acc_cores : snap array;
  (* pc samples: parallel growable arrays of (pc, weight-cycles) *)
  mutable sample_pc : int array;
  mutable sample_w : int array;
  mutable sample_len : int;
  mutable period : int; (* 0 = sampling off *)
}

let snap m =
  {
    w_cycles = Machine.cycles m;
    w_insns = Machine.insns_executed m;
    w_refs = Machine.mem_refs m;
    w_irqs = Machine.irqs_taken m;
  }

(* Per-core row of the same counters; w_cycles is the core's local
   clock, so rows sum to more than the machine frontier under SMP. *)
let core_snap m i =
  {
    w_cycles = Machine.core_cycles m i;
    w_insns = Machine.core_insns m i;
    w_refs = Machine.core_refs m i;
    w_irqs = Machine.core_irqs m i;
  }

let zero = { w_cycles = 0; w_insns = 0; w_refs = 0; w_irqs = 0 }
let zero_cores m = Array.make (Machine.num_cores m) zero
let all_cores m f = Array.init (Machine.num_cores m) f

let create machine =
  {
    machine;
    running = false;
    base = zero;
    acc = zero;
    base_cores = zero_cores machine;
    acc_cores = zero_cores machine;
    sample_pc = [||];
    sample_w = [||];
    sample_len = 0;
    period = 0;
  }

let machine t = t.machine
let running t = t.running

(* Counters accumulated over the current window (empty when stopped). *)
let window t =
  if not t.running then zero
  else
    let now = snap t.machine in
    {
      w_cycles = now.w_cycles - t.base.w_cycles;
      w_insns = now.w_insns - t.base.w_insns;
      w_refs = now.w_refs - t.base.w_refs;
      w_irqs = now.w_irqs - t.base.w_irqs;
    }

(* Per-core deltas over the current window. *)
let window_core t i =
  if not t.running then zero
  else
    let now = core_snap t.machine i in
    let b = t.base_cores.(i) in
    {
      w_cycles = now.w_cycles - b.w_cycles;
      w_insns = now.w_insns - b.w_insns;
      w_refs = now.w_refs - b.w_refs;
      w_irqs = now.w_irqs - b.w_irqs;
    }

let start t =
  if not t.running then begin
    t.running <- true;
    t.base <- snap t.machine;
    t.base_cores <- all_cores t.machine (fun i -> core_snap t.machine i)
  end

let add a w =
  {
    w_cycles = a.w_cycles + w.w_cycles;
    w_insns = a.w_insns + w.w_insns;
    w_refs = a.w_refs + w.w_refs;
    w_irqs = a.w_irqs + w.w_irqs;
  }

let stop t =
  if t.running then begin
    t.acc_cores <- all_cores t.machine (fun i -> add t.acc_cores.(i) (window_core t i));
    t.acc <- add t.acc (window t);
    t.running <- false
  end

let read t c =
  let w = window t in
  match c with
  | Cycles -> t.acc.w_cycles + w.w_cycles
  | Instructions -> t.acc.w_insns + w.w_insns
  | Mem_refs -> t.acc.w_refs + w.w_refs
  | Interrupts -> t.acc.w_irqs + w.w_irqs

let read_all t =
  [
    (Cycles, read t Cycles);
    (Instructions, read t Instructions);
    (Mem_refs, read t Mem_refs);
    (Interrupts, read t Interrupts);
  ]

(* Same window discipline per core (SMP): totals plus the open window,
   with cycles on the core's local clock. *)
let read_core t cpu c =
  let w = window_core t cpu in
  let a = t.acc_cores.(cpu) in
  match c with
  | Cycles -> a.w_cycles + w.w_cycles
  | Instructions -> a.w_insns + w.w_insns
  | Mem_refs -> a.w_refs + w.w_refs
  | Interrupts -> a.w_irqs + w.w_irqs

let read_cores t c =
  Array.init (Machine.num_cores t.machine) (fun i -> read_core t i c)

(* ------------------------------------------------------------------ *)
(* PC sampling *)

let ensure_sample_capacity t =
  if t.sample_len = Array.length t.sample_pc then begin
    let cap = max 1024 (2 * Array.length t.sample_pc) in
    let pc = Array.make cap 0 and w = Array.make cap 0 in
    Array.blit t.sample_pc 0 pc 0 t.sample_len;
    Array.blit t.sample_w 0 w 0 t.sample_len;
    t.sample_pc <- pc;
    t.sample_w <- w
  end

(* Samples land only while a window is open, so the sample set covers
   exactly the code the counters cover. *)
let record t ~pc ~weight =
  if t.running then begin
    ensure_sample_capacity t;
    t.sample_pc.(t.sample_len) <- pc;
    t.sample_w.(t.sample_len) <- weight;
    t.sample_len <- t.sample_len + 1
  end

let enable_sampling t ~period =
  t.period <- period;
  Machine.set_sampling t.machine ~period (fun ~pc ~weight ->
      record t ~pc ~weight)

let disable_sampling t =
  t.period <- 0;
  Machine.clear_sampling t.machine

let sampling_period t = t.period
let sample_count t = t.sample_len

let samples t =
  List.init t.sample_len (fun i -> (t.sample_pc.(i), t.sample_w.(i)))

let sampled_cycles t =
  let total = ref 0 in
  for i = 0 to t.sample_len - 1 do
    total := !total + t.sample_w.(i)
  done;
  !total

(* Aggregate sample weights per pc, heaviest first. *)
let sample_histogram t =
  let tbl = Hashtbl.create 256 in
  for i = 0 to t.sample_len - 1 do
    let pc = t.sample_pc.(i) in
    Hashtbl.replace tbl pc
      (t.sample_w.(i) + Option.value ~default:0 (Hashtbl.find_opt tbl pc))
  done;
  Hashtbl.fold (fun pc w acc -> (pc, w) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let reset t =
  t.running <- false;
  t.base <- zero;
  t.acc <- zero;
  t.base_cores <- zero_cores t.machine;
  t.acc_cores <- zero_cores t.machine;
  t.sample_len <- 0

let pp ppf t =
  let w = if t.running then "running" else "stopped" in
  Fmt.pf ppf "pmu (%s):@." w;
  List.iter
    (fun (c, v) -> Fmt.pf ppf "  %-14s %12d@." (counter_name c) v)
    (read_all t);
  if Machine.num_cores t.machine > 1 then
    for i = 0 to Machine.num_cores t.machine - 1 do
      Fmt.pf ppf "  cpu%d: cycles %d insns %d refs %d irqs %d@." i
        (read_core t i Cycles) (read_core t i Instructions)
        (read_core t i Mem_refs) (read_core t i Interrupts)
    done;
  if t.period > 0 then
    Fmt.pf ppf "  %d pc samples, period %d cycles, %d cycles sampled@."
      t.sample_len t.period (sampled_cycles t)
