(** Device models (§6.1): real-time clock and counters, interval
    timers, serial TTY, DMA disk with seek latency, the 44.1 kHz A/D
    sampler and the D/A sink.  Each installs MMIO handlers (see
    {!Mmio_map}) and, when it generates events, a machine device whose
    tick fires at its cycle deadline. *)

module Rtc : sig
  val install : Machine.t -> unit
end

module Cpu_control : sig
  (** FP-availability and user-stack-pointer registers. *)
  val install : Machine.t -> unit
end

module Timer : sig
  type t

  (** One-shot interval timer: write microseconds to [addr] to arm,
      0 to cancel, read for the remainder.  [cpu] routes the alarm
      interrupt to a specific core (per-core quantum timers). *)
  val install :
    ?name:string ->
    ?addr:int -> ?level:int -> ?vector:int -> ?cpu:int -> Machine.t -> t

  val armed : t -> bool

  (** Host-side arm; only ever shortens the current deadline. *)
  val arm : t -> us:float -> unit
end

module Tty : sig
  type t

  val install : ?char_interval_us:float -> Machine.t -> t

  (** Queue input characters for interrupt-driven delivery. *)
  val feed : t -> string -> unit

  (** Everything written to the output register so far. *)
  val output : t -> string

  val clear_output : t -> unit
end

module Disk : sig
  val block_words : int

  type t

  val install :
    ?blocks:int -> ?seek_us:float -> ?transfer_us_per_word:float -> Machine.t -> t

  (** Host-side image access (populating disks in tests/examples). *)
  val write_block : t -> int -> int array -> unit

  val read_block : t -> int -> int array
  val blocks : t -> int

  (** {2 Power cuts and persistence (kcrash)} *)

  (** Freeze the platter now: an in-flight read is lost; an in-flight
      write vanishes ([torn_words] absent) or lands exactly its first
      [torn_words] words (prefix-torn).  No completion interrupt fires
      and commands are ignored until {!power_on}. *)
  val power_cut : ?torn_words:int -> t -> unit

  val power_on : t -> unit
  val powered : t -> bool

  (** Record every write that reaches the platter, in commit order,
      as [(block, post-write image)] — the crash-point explorer's
      ground truth for legal completion prefixes. *)
  val set_journaling : t -> bool -> unit

  val journal : t -> (int * int array) list
  val clear_journal : t -> unit

  (** Whole-platter snapshot / restore (reboot-and-recover runs). *)
  val image : t -> int array array

  val load_image : t -> int array array -> unit
end

module Ad : sig
  type t

  val install : Machine.t -> t

  (** Samples produced so far. *)
  val delivered : t -> int

  (** Sampling rate in Hz; 0 switches the source off. *)
  val set_rate : t -> int -> unit
end

module Da : sig
  type t

  val install : Machine.t -> t

  (** Remove and return all samples written so far. *)
  val drain : t -> int list

  val count : t -> int
end

(** Network card (kserve): rx/tx descriptor rings in guest memory
    (4-word descriptors [buf; len; status; tag], free-running
    head/tail indices), per-completion interrupts with coalescing,
    admission control at the rx ring, and seeded per-direction
    loss/duplication/reorder knobs (plus one-shot faults through
    {!Machine.frame_fault}).  Because the MMIO window is
    supervisor-only, the card also writes the rx head back to a data
    cell after every delivery and polls the consumer/doorbell indices
    from data cells, so user-mode pumps drive it with plain loads and
    stores. *)
module Nic : sig
  val desc_words : int

  (** Largest frame the card moves, in words. *)
  val frame_words_max : int

  type frame = int array
  type t

  (** [poll_us] is the service-tick period while enabled. *)
  val install : ?poll_us:float -> Machine.t -> t

  (** {2 The wire (host side)} *)

  (** Offer a frame for delivery; re-kicks the service tick, so a
      dropped completion only delays until the next injection. *)
  val inject : t -> frame -> unit

  (** Frames sent by the card, oldest first, when no sink is set. *)
  val drain_tx_frames : t -> frame list

  (** Divert sent frames to a callback (the load generator). *)
  val set_tx_sink : t -> (frame -> unit) option -> unit

  (** Injected frames not yet DMA'd into the rx ring. *)
  val wire_backlog : t -> int

  (** {2 Host-side mirrors of the MMIO interface} (tests and
      kernel-build code; same precedent as [Disk.write_block]). *)

  val host_config_rx : t -> ring:int -> len:int -> mail:int -> tail_cell:int -> unit
  val host_config_tx : t -> ring:int -> len:int -> mail:int -> head_cell:int -> unit
  val host_enable : t -> bool -> unit
  val host_set_coalesce : t -> int -> unit

  (** Max admitted rx-ring occupancy; 0 = unlimited.  Frames arriving
      beyond it are shed and counted — admission control. *)
  val host_set_admit : t -> int -> unit

  val host_rx_tail : t -> int -> unit
  val host_tx_head : t -> int -> unit
  val rx_head : t -> int
  val tx_tail : t -> int

  (** {2 Chaos knobs} — [dir] 0 = rx, 1 = tx; each knob is 1-in-n
      (0 = off), drawn from a private seeded LCG. *)

  val set_chaos :
    t -> dir:int -> seed:int -> drop_1_in:int -> dup_1_in:int ->
    reorder_1_in:int -> unit

  type stats = {
    s_rx_injected : int;
    s_rx_delivered : int;
    s_rx_shed : int;
    s_rx_overruns : int;
    s_tx_sent : int;
    s_irqs : int;
    s_rx_dropped : int;
    s_rx_dupped : int;
    s_rx_reordered : int;
    s_tx_dropped : int;
    s_tx_dupped : int;
    s_tx_reordered : int;
  }

  val stats : t -> stats
end
