(** Device models (§6.1): real-time clock and counters, interval
    timers, serial TTY, DMA disk with seek latency, the 44.1 kHz A/D
    sampler and the D/A sink.  Each installs MMIO handlers (see
    {!Mmio_map}) and, when it generates events, a machine device whose
    tick fires at its cycle deadline. *)

module Rtc : sig
  val install : Machine.t -> unit
end

module Cpu_control : sig
  (** FP-availability and user-stack-pointer registers. *)
  val install : Machine.t -> unit
end

module Timer : sig
  type t

  (** One-shot interval timer: write microseconds to [addr] to arm,
      0 to cancel, read for the remainder.  [cpu] routes the alarm
      interrupt to a specific core (per-core quantum timers). *)
  val install :
    ?name:string ->
    ?addr:int -> ?level:int -> ?vector:int -> ?cpu:int -> Machine.t -> t

  val armed : t -> bool

  (** Host-side arm; only ever shortens the current deadline. *)
  val arm : t -> us:float -> unit
end

module Tty : sig
  type t

  val install : ?char_interval_us:float -> Machine.t -> t

  (** Queue input characters for interrupt-driven delivery. *)
  val feed : t -> string -> unit

  (** Everything written to the output register so far. *)
  val output : t -> string

  val clear_output : t -> unit
end

module Disk : sig
  val block_words : int

  type t

  val install :
    ?blocks:int -> ?seek_us:float -> ?transfer_us_per_word:float -> Machine.t -> t

  (** Host-side image access (populating disks in tests/examples). *)
  val write_block : t -> int -> int array -> unit

  val read_block : t -> int -> int array
  val blocks : t -> int

  (** {2 Power cuts and persistence (kcrash)} *)

  (** Freeze the platter now: an in-flight read is lost; an in-flight
      write vanishes ([torn_words] absent) or lands exactly its first
      [torn_words] words (prefix-torn).  No completion interrupt fires
      and commands are ignored until {!power_on}. *)
  val power_cut : ?torn_words:int -> t -> unit

  val power_on : t -> unit
  val powered : t -> bool

  (** Record every write that reaches the platter, in commit order,
      as [(block, post-write image)] — the crash-point explorer's
      ground truth for legal completion prefixes. *)
  val set_journaling : t -> bool -> unit

  val journal : t -> (int * int array) list
  val clear_journal : t -> unit

  (** Whole-platter snapshot / restore (reboot-and-recover runs). *)
  val image : t -> int array array

  val load_image : t -> int array array -> unit
end

module Ad : sig
  type t

  val install : Machine.t -> t

  (** Samples produced so far. *)
  val delivered : t -> int

  (** Sampling rate in Hz; 0 switches the source off. *)
  val set_rate : t -> int -> unit
end

module Da : sig
  type t

  val install : Machine.t -> t

  (** Remove and return all samples written so far. *)
  val drain : t -> int list

  val count : t -> int
end
