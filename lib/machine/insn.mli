(** Instruction set of the simulated Quamachine: a 68020-flavoured
    32-bit CPU with 16 general registers (r15 is the active stack
    pointer), 8 FP registers, condition codes, supervisor state, an
    interrupt priority level and a per-thread vector base register.

    Code and data are separate address spaces; kernel code synthesis
    appends to and patches the instruction store at run time. *)

type reg = int

val r0 : reg
val r1 : reg
val r2 : reg
val r3 : reg
val r4 : reg
val r5 : reg
val r6 : reg
val r7 : reg
val r8 : reg
val r9 : reg
val r10 : reg
val r11 : reg
val r12 : reg
val r13 : reg
val r14 : reg

(** r15: the active stack pointer (USP in user state, SSP in
    supervisor state, like A7 on the 68k). *)
val sp : reg

val num_regs : int
val num_fregs : int

(** Addressing modes for data operands. *)
type operand =
  | Imm of int  (** immediate constant *)
  | Lbl of string  (** immediate code address, resolved by {!Asm} *)
  | Reg of reg
  | Ind of reg  (** memory at [rN] *)
  | Idx of reg * int  (** memory at [rN + displacement] *)
  | Abs of int  (** memory at an absolute address *)
  | Post_inc of reg  (** memory at [rN], then rN := rN + 1 *)
  | Pre_dec of reg  (** rN := rN - 1, then memory at [rN] *)

type cond =
  | Always
  | Eq
  | Ne
  | Lt  (** signed < *)
  | Ge
  | Le
  | Gt
  | Hi  (** unsigned > *)
  | Ls  (** unsigned <= *)
  | Cs  (** carry set: unsigned < *)
  | Cc  (** carry clear: unsigned >= *)
  | Mi
  | Pl

(** Control-flow targets; [To_label] only in unassembled fragments. *)
type target =
  | To_addr of int
  | To_reg of reg
  | To_mem of operand  (** code address fetched from data memory *)
  | To_label of string

type alu_op = Add | Sub | Mul | Divu | Divs | And | Or | Xor | Lsl | Lsr | Asr
type fpu_op = Fadd | Fsub | Fmul | Fdiv

type insn =
  | Nop
  | Move of operand * operand  (** dst := src; sets N/Z, clears C/V *)
  | Lea of operand * reg  (** rd := effective data address *)
  | Alu of alu_op * operand * reg  (** rd := rd op src *)
  | Alu_mem of alu_op * operand * operand  (** mem dst := dst op src *)
  | Cmp of operand * operand  (** flags from dst - src: [Cmp (src, dst)] *)
  | Tst of operand
  | Neg of reg
  | Not of reg
  | B of cond * target
  | Dbra of reg * target  (** rN := rN - 1; branch unless rN = -1 *)
  | Jmp of target
  | Jsr of target
  | Rts
  | Trap of int  (** software trap 0..15, vectors 32..47 *)
  | Rte  (** return from exception: pop SR, PC *)
  | Cas of reg * reg * operand
      (** [Cas (rc, ru, ea)]: atomically, if [ea] = rc then [ea] := ru
          (Z set) else rc := [ea] (Z clear) — 68020 CAS semantics.

          Atomicity contract: the simulator delivers interrupts only at
          instruction boundaries (checked at the top of [Machine.step],
          never inside [exec]), so the load–compare–store sequence can
          never be split by an interrupt, a device tick, or an MMIO
          side effect that posts one — a pending interrupt raised
          mid-Cas is taken after the store commits.  This is the
          uniprocessor equivalent of the 68020's locked bus cycle and
          is what the paper's lock-free retry loops (§3.2) rely on.

          kfault may veto an individual Cas ([Machine.set_cas_fail]):
          the store is suppressed and Z reads clear, which is
          observationally identical to losing the race against another
          writer — correct optimistic code must take its retry branch,
          and the instruction's cycle/reference cost matches a genuine
          miss. *)
  | Movem_save of reg list * reg  (** push registers via a stack reg *)
  | Movem_load of reg * reg list
  | Push of operand
  | Pop of reg
  | Set_ipl of int  (** supervisor only *)
  | Move_vbr of operand  (** supervisor: load the vector base register *)
  | Move_mmu of operand  (** supervisor: switch the address-space map *)
  | Fmove_imm of float * int
  | Fmove of int * int
  | Fop of fpu_op * int * int
  | Fmovem_save of reg  (** push all 8 FP registers (3 words each) *)
  | Fmovem_load of reg
  | Stop_wait  (** supervisor: wait for an interrupt *)
  | Halt  (** stop the simulation *)
  | Hcall of int  (** invoke a registered host service routine *)
  | Label of string  (** pseudo-instruction: assembly-time label *)

(** Exception vector assignments (offsets into a vector table). *)
module Vector : sig
  val bus_error : int
  val illegal : int
  val div_zero : int
  val privilege : int
  val trace : int
  val fp_unavailable : int

  (** Auto-vectored interrupt levels 1..7 map to vectors 25..31. *)
  val autovector : int -> int

  val trap : int -> int
  val table_size : int
end

val pp_operand : Format.formatter -> operand -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp_target : Format.formatter -> target -> unit
val pp_alu_op : Format.formatter -> alu_op -> unit
val pp : Format.formatter -> insn -> unit
