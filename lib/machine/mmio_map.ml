(* Memory-mapped device register allocation (all in the MMIO window). *)

let base = Machine.mmio_base

(* Real-time clock / monitor counters (§6.1 measurement facilities). *)
let rtc_us = base + 0x00
let rtc_cycles = base + 0x01
let rtc_insns = base + 0x02

(* Interval timer: write an interval in microseconds to arm a one-shot
   alarm interrupt; write 0 to cancel; read remaining microseconds. *)
let timer_alarm = base + 0x10

(* SMP: each core owns a private quantum timer; core [c]'s register is
   [timer_alarm + c] (c < 8, so the window stops short of [alarm_set]).
   Core 0's is the plain [timer_alarm] the uniprocessor always used. *)
let timer_alarm_for c = timer_alarm + c

(* Second interval timer for user-visible alarms (Table 5). *)
let alarm_set = base + 0x18

(* SMP per-core register window: shared kernel paths (yield, block,
   procedure chaining) must act on the *executing* core's
   current-thread state, whichever core that is.  These registers
   dispatch, host-side, to the executing core's kernel cells — the
   same one-memory-reference cost as reading the cell directly, so a
   one-core machine is cycle-identical whether code uses the cell or
   the window.  Installed by the kernel (which owns the cell layout). *)
let cur_sw_out = base + 0x60
let cur_tte = base + 0x61
let cur_tid = base + 0x62
let chain_scratch = base + 0x63

(* Serial TTY. *)
let tty_data_in = base + 0x20
let tty_status = base + 0x21
let tty_data_out = base + 0x22

(* Disk controller. *)
let disk_block = base + 0x30
let disk_buffer = base + 0x31
let disk_command = base + 0x32
let disk_status = base + 0x33

(* A/D converter (two-channel 16-bit analog input, §6.1). *)
let ad_data = base + 0x40
let ad_control = base + 0x41

(* D/A converter (sound output). *)
let da_data = base + 0x50

(* Network card (kserve).  Two descriptor rings in guest memory
   (4-word descriptors: buf, len, status, tag); the card DMAs frames
   into posted rx buffers and drains posted tx buffers.  Head/tail
   indices are free-running; occupancy = head - tail.

   User-mode pumps cannot reach the MMIO window (supervisor-only), so
   the card also supports *mailbox cells* in ordinary data memory —
   the rx head is written back to [nic_rx_mail] after every delivery
   (Intel-style head writeback) and the consumer/producer indices are
   polled from [nic_rx_tail_cell]/[nic_tx_head_cell] on each service
   tick.  The MMIO registers remain authoritative for supervisor code
   and tests. *)
let nic_rx_ring = base + 0x70
let nic_rx_len = base + 0x71
let nic_rx_head = base + 0x72 (* read: device fill index *)
let nic_rx_tail = base + 0x73 (* r/w: consumer index *)
let nic_tx_ring = base + 0x74
let nic_tx_len = base + 0x75
let nic_tx_head = base + 0x76 (* r/w: producer doorbell *)
let nic_tx_tail = base + 0x77 (* read: device consume index *)
let nic_ctrl = base + 0x78 (* bit0 = enable *)
let nic_coalesce = base + 0x79 (* completions per interrupt (0/1 = every) *)
let nic_cause = base + 0x7A (* read-to-clear: bit0 rx, bit1 tx *)
let nic_admit = base + 0x7B (* max admitted rx occupancy; 0 = unlimited *)
let nic_shed = base + 0x7C (* read: frames shed by admission control *)
let nic_overrun = base + 0x7D (* read: frames dropped on rx ring full *)
let nic_rx_mail = base + 0x7E (* write: rx-head writeback cell (0 = off) *)
let nic_tx_mail = base + 0x7F (* write: tx-tail writeback cell (0 = off) *)
let nic_rx_tail_cell = base + 0x80 (* write: polled consumer-index cell *)
let nic_tx_head_cell = base + 0x81 (* write: polled doorbell cell *)

(* CPU control: write 0/1 to disable/enable the FP coprocessor for the
   currently running thread (used by the lazy-FP context switch). *)
let fp_control = base + 0xFF0

(* User stack pointer: the inactive stack pointer, readable/writable
   from supervisor mode (68k "move usp" equivalent). *)
let usp = base + 0xFF1

(* Interrupt levels and autovectors. *)
let timer_level = 6
let ad_level = 5
let tty_level = 4
let disk_level = 3
let alarm_level = 2
let nic_level = 1

let timer_vector = Insn.Vector.autovector timer_level
let ad_vector = Insn.Vector.autovector ad_level
let tty_vector = Insn.Vector.autovector tty_level
let disk_vector = Insn.Vector.autovector disk_level
let alarm_vector = Insn.Vector.autovector alarm_level

(* The NIC supplies its own vector during the interrupt acknowledge
   cycle instead of using autovector(1): level 1's autovector belongs
   to the cross-core signal IPI, and routing card interrupts through
   the signal handler corrupts whatever thread they land on. *)
let nic_vector = 12
