(* Memory-mapped device register allocation (all in the MMIO window). *)

let base = Machine.mmio_base

(* Real-time clock / monitor counters (§6.1 measurement facilities). *)
let rtc_us = base + 0x00
let rtc_cycles = base + 0x01
let rtc_insns = base + 0x02

(* Interval timer: write an interval in microseconds to arm a one-shot
   alarm interrupt; write 0 to cancel; read remaining microseconds. *)
let timer_alarm = base + 0x10

(* SMP: each core owns a private quantum timer; core [c]'s register is
   [timer_alarm + c] (c < 8, so the window stops short of [alarm_set]).
   Core 0's is the plain [timer_alarm] the uniprocessor always used. *)
let timer_alarm_for c = timer_alarm + c

(* Second interval timer for user-visible alarms (Table 5). *)
let alarm_set = base + 0x18

(* SMP per-core register window: shared kernel paths (yield, block,
   procedure chaining) must act on the *executing* core's
   current-thread state, whichever core that is.  These registers
   dispatch, host-side, to the executing core's kernel cells — the
   same one-memory-reference cost as reading the cell directly, so a
   one-core machine is cycle-identical whether code uses the cell or
   the window.  Installed by the kernel (which owns the cell layout). *)
let cur_sw_out = base + 0x60
let cur_tte = base + 0x61
let cur_tid = base + 0x62
let chain_scratch = base + 0x63

(* Serial TTY. *)
let tty_data_in = base + 0x20
let tty_status = base + 0x21
let tty_data_out = base + 0x22

(* Disk controller. *)
let disk_block = base + 0x30
let disk_buffer = base + 0x31
let disk_command = base + 0x32
let disk_status = base + 0x33

(* A/D converter (two-channel 16-bit analog input, §6.1). *)
let ad_data = base + 0x40
let ad_control = base + 0x41

(* D/A converter (sound output). *)
let da_data = base + 0x50

(* CPU control: write 0/1 to disable/enable the FP coprocessor for the
   currently running thread (used by the lazy-FP context switch). *)
let fp_control = base + 0xFF0

(* User stack pointer: the inactive stack pointer, readable/writable
   from supervisor mode (68k "move usp" equivalent). *)
let usp = base + 0xFF1

(* Interrupt levels and autovectors. *)
let timer_level = 6
let ad_level = 5
let tty_level = 4
let disk_level = 3
let alarm_level = 2

let timer_vector = Insn.Vector.autovector timer_level
let ad_vector = Insn.Vector.autovector ad_level
let tty_vector = Insn.Vector.autovector tty_level
let disk_vector = Insn.Vector.autovector disk_level
let alarm_vector = Insn.Vector.autovector alarm_level
