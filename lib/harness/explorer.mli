(** kfault interleaving explorer.

    Stresses kernel code under deterministic, seeded adversity: forced
    context switches every k-th instruction (k swept by seed),
    spurious interrupts, bit flips, forced CAS failures, and
    stalled/dropped device completions — then checks subject-specific
    invariants at every forced preemption and at the end of the run.

    Workloads are pluggable {!subject}s: the four lock-free
    {!Synthesis.Kqueue} kinds (via {!run_queue}), the executable ready
    queue under a thread stop/start/restart storm, a
    {!Synthesis.Kpipe} producer/consumer pair, and the disk elevator
    under completion faults.  Every run folds a deterministic trace
    hash, so a (subject, seed) pair names exactly one interleaving on
    every host — CI asserts this.

    Also provides targeted recovery scenarios: a dropped quantum-timer
    completion recovered by the flow-rate {!Synthesis.Watchdog}, and
    stalled / dropped / permanently failing disk completions recovered
    (or cleanly failed) by the disk server's bounded retry. *)

(** {1 Subjects} *)

type subject_result = {
  s_subject : string;
  s_seed : int;
  s_stride : int;  (** instructions between forced preemptions *)
  s_preemptions : int;  (** forced context switches posted *)
  s_injected : int;  (** faults delivered by the plan *)
  s_progress : int;  (** work completed (subject-specific unit) *)
  s_goal : int;  (** progress at which the run is complete *)
  s_violations : string list;  (** empty = all invariants held *)
  s_insns : int;
  s_cycles : int;
  s_trace_hash : int;  (** seed-deterministic interleaving fingerprint *)
  s_postmortem : string option;
      (** flight-recorder dump ({!Synthesis.Kernel.postmortem}) when
          any check failed: open spans name the in-flight requests *)
  s_blackbox_json : string option;
      (** the black-box ring as Chrome trace JSON, same condition *)
}

type subject

val subject_name : subject -> string

val ready_queue_subject : subject
(** Counting workers under a seeded storm of host-driven
    stop/start/crash-restart transitions.  Invariants: the patched-jmp
    ring matches the host mirror and closes, the anchor stays queued,
    no stopped/blocked/dead thread sits in the ring, and no suspended
    or dead thread keeps the CPU. *)

val kpipe_subject : subject
(** A writer streams known words through a small pipe and closes; the
    reader drains and must see a clean EOF.  Invariants: destination
    equals source exactly, counts match, EOF exactly once and never
    early. *)

val disk_subject : subject
(** A burst of reads of seeded blocks while spurious disk interrupts
    and a stalled and a dropped completion land on top.  Invariants:
    completion-exactly-once with the right data at the moment of
    completion, no starvation or spurious failure, SCAN service
    order. *)

val codeflip_subject : subject
(** kheal: an Mpsc queue workload plus a dormant quaject op while the
    fault plan and the agitation hook flip bits in synthesized code
    regions (queue ops, switch code, quaject ops — never the fault
    handlers).  Executed corruption traps and is repaired by
    resynthesis in place; dormant corruption is caught by the
    watchdog's periodic checksum audit.  Invariants: the queue
    workload stays exact, and after a final audit every region is
    clean, still registered, and the code state hash equals the
    fault-free fingerprint taken at build time. *)

val synthcache_subject : subject
(** ksynth: several threads call the same memoized op — one cached
    page, refcount = users — while code flips land on that page and a
    decoy churn under a tight per-kind cap keeps eviction running next
    to it.  Invariants: corruption repairs in place exactly once for
    all users (the page never forks, moves, or re-instantiates),
    eviction never touches the referenced page, a post-storm
    instantiation is a pure hit on the repaired page, and the code
    state hash converges back to the fault-free fingerprint. *)

val smp_subject : ?cores:int -> unit -> subject
(** kSMP: a seed-picked queue kind with producers/consumers pinned
    round-robin across [cores] (default: 2–4 picked by seed, clamped
    to \[2, [Machine.max_cores]\]), a spinning filler thread and a
    work-stealer device per core, under core-clock skews, forced
    steals and migrations, cross-core preemptions, and core-targeted
    spurious interrupts.  Invariants: every per-core ready ring closes
    and matches the mirror, each core's current thread is homed there
    and alive, idle threads stay pinned, and the queue ledger is exact
    across cores.  Sabotage migrates another core's running thread
    with the dispatch guard skipped ({!Synthesis.Smp.unsafe_skip_guard});
    the current-consistency check must catch it. *)

val serve_subject : subject
(** kserve: a small serving stack (1–3 cores, 1–2 workers picked by
    seed) under a 24-session accept/request/close storm while the plan
    posts spurious NIC interrupts, stalls and drops the card's service
    tick, and skews core clocks; the agitation hook re-kicks a parked
    card, playing the driver's timeout watchdog.  Invariants: the load
    generator's exactly-once ledger (no unmatched responses, no
    protocol errors, received ≤ sent), slot accounting closes, and
    every session ends served or refused.  Sabotage duplicates one tx
    frame ({!Quamachine.Machine.frame_fault}); the ledger must catch
    the second copy. *)

val subjects : subject list
(** The kernel subjects above (the queue workloads keep their
    dedicated {!run_queue} entry point). *)

val run_subject :
  ?faults:bool -> ?sabotage:bool -> subject -> seed:int -> unit -> subject_result
(** Build and drive one subject instance.  [~faults:false] runs the
    pure interleaving sweep with no injected faults; [~sabotage:true]
    deliberately corrupts subject state mid-run — used by the negative
    tests to prove the invariants bite (the result must report at
    least one violation). *)

(** {1 Queue workloads} *)

type result = {
  x_kind : Synthesis.Kqueue.kind;
  x_seed : int;
  x_producers : int;
  x_consumers : int;
  x_items : int;  (** per producer *)
  x_consumed : int;
  x_stride : int;  (** instructions between forced preemptions *)
  x_preemptions : int;  (** forced context switches posted *)
  x_injected : int;  (** faults delivered by the plan *)
  x_violations : string list;  (** empty = all invariants held *)
  x_insns : int;
  x_cycles : int;
}

val kind_name : Synthesis.Kqueue.kind -> string

val queue_subject : Synthesis.Kqueue.kind -> subject
(** The queue workload as a subject (32 items per producer). *)

val run_queue :
  ?items:int ->
  ?faults:bool ->
  ?cores:int ->
  kind:Synthesis.Kqueue.kind ->
  seed:int ->
  unit ->
  result
(** One boot, one queue of [kind], 1–3 producers × 1–3 consumers of
    machine code, preemption forced every seed-derived stride.
    [~faults:false] runs the pure interleaving sweep with no injected
    faults.  [~cores] (default 1) boots an SMP kernel and pins the
    participants round-robin across the cores, so the queue code is
    entered from several cores at once. *)

val run_all : ?items:int -> seed:int -> unit -> result list
(** [run_queue] across all four kinds. *)

(** {1 kcrash: the crash-point explorer} *)

type crash_family =
  | Create_rename
      (** write new content to a temp file and rename over the old:
          the renamed file must be exactly old or new — never
          zero-length, never garbage *)
  | Prefix_append
      (** append twice: the old prefix stays intact and the length
          never runs ahead of the data *)
  | Replace
      (** overwrite a multi-block file with same-length different
          content: readers see exactly old or new, never a torn mix *)

val crash_families : crash_family list
val crash_family_name : crash_family -> string

type crash_result = {
  c_family : string;
  c_seed : int;
  c_barriers : bool;
  c_journal : bool;
  c_states : int;  (** crash states explored (cut points + torn + live cut) *)
  c_torn : int;  (** of which prefix-torn write variants *)
  c_journal_len : int;  (** platter writes the workload committed *)
  c_replays : int;  (** intent-log replays observed across reboots *)
  c_live_cut : bool;  (** the device-level power cut actually fired *)
  c_violations : string list;
  c_trace_hash : int;  (** seed-deterministic fingerprint *)
  c_report : string option;  (** forensic text when any litmus failed *)
}

val run_crash :
  ?mechanisms:Synthesis.Dfs.mechanisms ->
  crash_family ->
  seed:int ->
  unit ->
  crash_result
(** Record the workload's platter-write journal on a journaling
    device, enumerate every legal crash state (journal prefixes plus a
    seeded prefix-torn variant of each next write — exactly the
    completion subsets the one-request-deep elevator permits), reboot
    each into a fresh machine through {!Synthesis.Boot.at_boot}
    recovery, and run the family's litmus predicate; ends with a
    device-level {!Quamachine.Fault_inject.Power_cut} run mid-workload.
    With [mechanisms] partially disabled the violations demonstrate
    what each mechanism buys (the CLI asserts they appear). *)

(** {1 Targeted recovery scenarios} *)

type timer_loss_result = {
  tl_seed : int;
  tl_drop_cycle : int;  (** when the quantum-timer completion was lost *)
  tl_stall_cycles : int;  (** flow outage observed around the drop *)
  tl_recovery_cycles : int;  (** drop → first consumed item after it *)
  tl_restarts : int;  (** watchdog restart actions taken *)
  tl_consumed : int;
}

val timer_loss : ?seed:int -> unit -> timer_loss_result
(** Drop a quantum-timer completion under spinning threads (the
    lost-interrupt livelock); the watchdog re-arms the timer and the
    measured recovery latency is returned. *)

type disk_fault_mode = Disk_stall | Disk_drop | Disk_bad_block

type disk_fault_result = {
  df_mode : disk_fault_mode;
  df_completed : bool;  (** the read finally returned data *)
  df_tries : int;  (** issues of the request (1 = no retry) *)
  df_timeouts : int;
  df_retries : int;
  df_failed : int;
  df_recovery_cycles : int;  (** first issue → completion, when retried *)
}

val disk_fault : ?seed:int -> mode:disk_fault_mode -> unit -> disk_fault_result
(** Stall, drop, or permanently fail a disk completion; the disk
    server's watchdog retries with backoff or gives up after
    [max_tries], never wedging the waiter. *)
