(** kfault interleaving explorer.

    Stresses the lock-free queue code under deterministic, seeded
    adversity: forced context switches every k-th instruction (k swept
    by seed), spurious interrupts, scratch bit flips, and forced CAS
    failures, then checks the queue invariants — no loss, no
    duplication, no corruption, per-producer FIFO within each
    consumer — for all four {!Synthesis.Kqueue.kind}s.

    Also provides targeted recovery scenarios: a dropped quantum-timer
    completion recovered by the flow-rate {!Synthesis.Watchdog}, and
    stalled / dropped / permanently failing disk completions recovered
    (or cleanly failed) by the disk server's bounded retry. *)

type result = {
  x_kind : Synthesis.Kqueue.kind;
  x_seed : int;
  x_producers : int;
  x_consumers : int;
  x_items : int;  (** per producer *)
  x_consumed : int;
  x_stride : int;  (** instructions between forced preemptions *)
  x_preemptions : int;  (** forced context switches posted *)
  x_injected : int;  (** faults delivered by the plan *)
  x_violations : string list;  (** empty = all invariants held *)
  x_insns : int;
  x_cycles : int;
}

val kind_name : Synthesis.Kqueue.kind -> string

val run_queue :
  ?items:int ->
  ?faults:bool ->
  kind:Synthesis.Kqueue.kind ->
  seed:int ->
  unit ->
  result
(** One boot, one queue of [kind], 1–3 producers × 1–3 consumers of
    machine code, preemption forced every seed-derived stride.
    [~faults:false] runs the pure interleaving sweep with no injected
    faults. *)

val run_all : ?items:int -> seed:int -> unit -> result list
(** [run_queue] across all four kinds. *)

type timer_loss_result = {
  tl_seed : int;
  tl_drop_cycle : int;  (** when the quantum-timer completion was lost *)
  tl_stall_cycles : int;  (** flow outage observed around the drop *)
  tl_recovery_cycles : int;  (** drop → first consumed item after it *)
  tl_restarts : int;  (** watchdog restart actions taken *)
  tl_consumed : int;
}

val timer_loss : ?seed:int -> unit -> timer_loss_result
(** Drop a quantum-timer completion under spinning threads (the
    lost-interrupt livelock); the watchdog re-arms the timer and the
    measured recovery latency is returned. *)

type disk_fault_mode = Disk_stall | Disk_drop | Disk_bad_block

type disk_fault_result = {
  df_mode : disk_fault_mode;
  df_completed : bool;  (** the read finally returned data *)
  df_tries : int;  (** issues of the request (1 = no retry) *)
  df_timeouts : int;
  df_retries : int;
  df_failed : int;
  df_recovery_cycles : int;  (** first issue → completion, when retried *)
}

val disk_fault : ?seed:int -> mode:disk_fault_mode -> unit -> disk_fault_result
(** Stall, drop, or permanently fail a disk completion; the disk
    server's watchdog retries with backoff or gives up after
    [max_tries], never wedging the waiter. *)
