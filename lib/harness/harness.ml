(* Measurement harness: runs the same Unix-ABI programs on the
   Synthesis kernel (through the UNIX emulator) and on the baseline
   kernel, and provides the microsecond instrumentation used by
   Tables 2–5 (the Quamachine's counters and trace, §6.1). *)

open Quamachine
open Synthesis
module I = Insn

(* ---------------------------------------------------------------- *)
(* Timestamps: an Hcall that records the cycle counter — the software
   equivalent of the Quamachine's microsecond interval timer. *)

module Stamps = struct
  type t = Machine.t * int * int list ref

  let create m : t =
    let marks = ref [] in
    let id = Machine.register_hcall m (fun m -> marks := Machine.cycles m :: !marks) in
    (m, id, marks)

  let mark ((_, id, _) : t) = I.Hcall id
  let cycles ((_, _, marks) : t) = List.rev !marks

  (* Intervals between consecutive stamps, in microseconds. *)
  let spans ((m, _, _) as t) =
    let rec pair = function
      | a :: (b :: _ as rest) -> (b - a) :: pair rest
      | _ -> []
    in
    List.map (fun c -> Cost.us_of_cycles (Machine.cost_model m) c) (pair (cycles t))

  let clear (_, _, marks) = marks := []
end

(* ---------------------------------------------------------------- *)
(* Stepping helpers *)

let run_until m ~max_insns pred =
  let rec go n =
    if n >= max_insns then false
    else if Machine.halted m then false
    else if pred () then true
    else begin
      Machine.step m;
      go (n + 1)
    end
  in
  go 0

let run_until_pc m ~max_insns pc =
  run_until m ~max_insns (fun () -> Machine.get_pc m = pc)

let run_until_user m ~max_insns =
  run_until m ~max_insns (fun () -> not (Machine.in_supervisor m))

(* ---------------------------------------------------------------- *)
(* A booted Synthesis instance ready to run Unix-ABI programs. *)

type synthesis_env = {
  s_boot : Boot.t;
  s_env : Programs.env;
  s_stamps : Machine.t * int * int list ref;
}

let synthesis_setup ?(cost = Cost.sun3_emulation) ?(file_content = 4096) () =
  let b = Boot.boot ~cost () in
  let k = b.Boot.kernel in
  let _tty_srv = Tty.install b.Boot.vfs in
  let _em = Unix_emulator.Emulator.install b.Boot.vfs in
  let content = Array.init file_content (fun i -> i land 0xFF) in
  let _file = Fs.create_file b.Boot.vfs ~name:"/data/bench" ~content () in
  let data = Kalloc.alloc_zeroed k.Kernel.alloc Programs.data_words in
  let env = Programs.layout ~data in
  Programs.populate env ~poke:(fun a v -> Machine.poke k.Kernel.machine a v);
  let stamps = Stamps.create k.Kernel.machine in
  { s_boot = b; s_env = env; s_stamps = stamps }

(* Run a program (built against [s_env]) to completion on Synthesis;
   returns the elapsed simulated seconds. *)
let synthesis_run ?(max_insns = 2_000_000_000) ?(quantum_us = 10_000) se ~program =
  let k = se.s_boot.Boot.kernel in
  let m = k.Kernel.machine in
  let entry, _ = Asm.assemble m program in
  let segs = [ (se.s_env.Programs.e_data, Programs.data_words) ] in
  let _t = Thread.create k ~entry ~quantum_us ~segments:segs () in
  let s0 = Machine.snapshot m in
  (match Boot.go ~max_insns se.s_boot with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "synthesis_run: instruction limit");
  (* code_repair entries are recoveries, not deaths: a corrupted
     region was resynthesized and the faulting thread carried on *)
  let fatal e =
    let p = "code_repair/" in
    let r = e.Kernel.f_reason in
    not (String.length r >= String.length p && String.sub r 0 (String.length p) = p)
  in
  (match List.filter fatal k.Kernel.fault_log with
  | [] -> ()
  | { Kernel.f_tid = tid; f_reason = reason; _ } :: _ ->
    failwith (Fmt.str "synthesis_run: thread %d died of %s" tid reason));
  let d = Machine.delta m s0 in
  Machine.stats_us m d /. 1_000_000.0

(* ---------------------------------------------------------------- *)
(* A booted baseline instance. *)

type baseline_env = { b_kernel : Baseline.t; b_env : Programs.env }

let baseline_setup ?(cost = Cost.sun3_emulation) ?(file_content = 4096) () =
  let bk = Baseline.boot ~cost () in
  let content = Array.init file_content (fun i -> i land 0xFF) in
  ignore (Baseline.create_file bk ~name:"/data/bench" ~content ());
  (* above the baseline kernel's heap, below the top of memory *)
  let data = 0x40000 in
  let env = Programs.layout ~data in
  Programs.populate env ~poke:(fun a v -> Baseline.poke bk a v);
  { b_kernel = bk; b_env = env }

let baseline_run ?(max_insns = 2_000_000_000) be ~program =
  let bk = be.b_kernel in
  let entry = Baseline.load_program bk program in
  let m = bk.Baseline.machine in
  let s0 = Machine.snapshot m in
  (match Baseline.run ~max_insns bk ~entry with
  | Machine.Halted -> ()
  | Machine.Insn_limit -> failwith "baseline_run: instruction limit");
  let d = Machine.delta m s0 in
  Machine.stats_us m d /. 1_000_000.0

(* ---------------------------------------------------------------- *)
(* The two-stage pipe pipeline shared by the observability stack: a
   producer thread writes [total] words into a pipe in 8-word bursts,
   a consumer reads them in up-to-32-word chunks and sums them.  The
   ktrace/kperf CLI commands, the overhead benches, and the trace and
   profiler tests all measure this workload, so it lives here once.

   Build on a freshly booted instance *after* attaching any tracing
   (probes are spliced at synthesis time). *)

module Pipeline = struct
  type t = {
    pl_boot : Boot.t;
    pl_producer : Kernel.tte;
    pl_consumer : Kernel.tte;
    pl_result : int; (* data address of the consumer's final sum *)
    pl_total : int;
  }

  let build ?(total = 1024) ?(cap = 64) b =
    let k = b.Boot.kernel in
    let m = k.Kernel.machine in
    let pipe = Kpipe.create k ~cap () in
    let src = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
    let dst = Kalloc.alloc_zeroed k.Kernel.alloc 64 in
    let result = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
    let producer_prog ~wfd =
      [
        I.Move (I.Imm 1, I.Reg I.r9);
        I.Label "loop";
        I.Move (I.Imm src, I.Reg I.r10);
        I.Move (I.Imm 7, I.Reg I.r11);
        I.Label "fill";
        I.Move (I.Reg I.r9, I.Post_inc I.r10);
        I.Alu (I.Add, I.Imm 1, I.r9);
        I.Dbra (I.r11, I.To_label "fill");
        I.Move (I.Imm wfd, I.Reg I.r1);
        I.Move (I.Imm src, I.Reg I.r2);
        I.Move (I.Imm 8, I.Reg I.r3);
        I.Trap 2;
        I.Cmp (I.Imm (total + 1), I.Reg I.r9);
        I.B (I.Ne, I.To_label "loop");
        I.Trap 0;
      ]
    in
    let consumer_prog ~rfd =
      [
        I.Move (I.Imm 0, I.Reg I.r9);
        I.Move (I.Imm 0, I.Reg I.r10);
        I.Label "loop";
        I.Move (I.Imm rfd, I.Reg I.r1);
        I.Move (I.Imm dst, I.Reg I.r2);
        I.Move (I.Imm 32, I.Reg I.r3);
        I.Trap 1;
        I.Move (I.Reg I.r0, I.Reg I.r11);
        I.Alu (I.Add, I.Reg I.r11, I.r10);
        I.Move (I.Imm dst, I.Reg I.r12);
        I.Tst (I.Reg I.r11);
        I.B (I.Eq, I.To_label "loop");
        I.Alu (I.Sub, I.Imm 1, I.r11);
        I.Label "acc";
        I.Alu (I.Add, I.Post_inc I.r12, I.r9);
        I.Dbra (I.r11, I.To_label "acc");
        I.Cmp (I.Imm total, I.Reg I.r10);
        I.B (I.Ne, I.To_label "loop");
        I.Move (I.Reg I.r9, I.Abs result);
        I.Trap 0;
      ]
    in
    let consumer =
      Thread.create k ~quantum_us:150 ~entry:0
        ~segments:[ (dst, 64); (result, 16) ]
        ()
    in
    let producer =
      Thread.create k ~quantum_us:150 ~entry:0 ~segments:[ (src, 16) ] ()
    in
    let crfd, _ = Kpipe.attach b.Boot.vfs pipe consumer in
    let _, pwfd = Kpipe.attach b.Boot.vfs pipe producer in
    let centry, _ = Asm.assemble m (consumer_prog ~rfd:crfd) in
    let pentry, _ = Asm.assemble m (producer_prog ~wfd:pwfd) in
    Machine.poke m (consumer.Kernel.base + Layout.Tte.off_regs + 17) centry;
    Machine.poke m (producer.Kernel.base + Layout.Tte.off_regs + 17) pentry;
    { pl_boot = b; pl_producer = producer; pl_consumer = consumer;
      pl_result = result; pl_total = total }

  (* Run to completion and verify the consumer's checksum. *)
  let run ?(max_insns = 200_000_000) p =
    (match Boot.go ~max_insns p.pl_boot with
    | Machine.Halted -> ()
    | Machine.Insn_limit -> failwith "Pipeline.run: did not halt");
    let m = p.pl_boot.Boot.kernel.Kernel.machine in
    let expected = p.pl_total * (p.pl_total + 1) / 2 in
    let got = Machine.peek m p.pl_result in
    if got <> expected then
      failwith (Fmt.str "Pipeline.run: wrong sum %d, expected %d" got expected)
end

(* ---------------------------------------------------------------- *)
(* Pretty printing *)

let header title =
  Fmt.pr "@.=== %s ===@." title

let row4 a b c d = Fmt.pr "%-34s %14s %14s %10s@." a b c d
let row3 a b c = Fmt.pr "%-34s %14s %14s@." a b c
let us_str v = Fmt.str "%.1f" v
