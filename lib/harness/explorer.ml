(* kfault interleaving explorer.

   The paper's robustness claim (§3.2): the optimistic, lock-free
   queue code stays correct under arbitrary preemption and interrupt
   timing.  This module stresses exactly that, deterministically.

   [run_queue] boots a kernel, builds one Kqueue of the requested
   kind, and runs producer/consumer threads of machine code over it
   while the host step loop forces a context switch every k-th
   instruction (posting the quantum-timer interrupt, which every
   thread's private vector table routes to its own switch-out code) —
   so preemption points sweep across every instruction of the put/get
   paths as seeds vary.  A seeded [Fault_inject] plan adds spurious
   interrupts, scratch-region bit flips, and forced CAS failures on
   top.  Afterwards the consumer logs are checked against the queue
   invariants: no loss, no duplication, no corruption, and per-producer
   FIFO order within each consumer.

   [timer_loss] and [disk_fault] are targeted recovery scenarios: a
   dropped quantum-timer completion (livelock recovered by the
   flow-rate watchdog) and stalled/dropped/failing disk completions
   (recovered by the disk server's bounded retry). *)

open Quamachine
open Synthesis
module I = Insn

(* Deterministic per-seed scrambling for stride choices (never use
   Random: sweeps must replay exactly). *)
let mix seed salt =
  let z = (seed * 0x9E3779B1) lxor (salt * 0x85EBCA6B) in
  let z = (z lxor (z lsr 15)) * 0x2545F491 in
  (z lxor (z lsr 13)) land max_int

type result = {
  x_kind : Kqueue.kind;
  x_seed : int;
  x_producers : int;
  x_consumers : int;
  x_items : int; (* per producer *)
  x_consumed : int;
  x_stride : int; (* instructions between forced preemptions *)
  x_preemptions : int; (* forced context switches posted *)
  x_injected : int; (* faults delivered by the plan *)
  x_violations : string list; (* empty = all invariants held *)
  x_insns : int;
  x_cycles : int;
}

let kind_name = function
  | Kqueue.Spsc -> "spsc"
  | Kqueue.Mpsc -> "mpsc"
  | Kqueue.Spmc -> "spmc"
  | Kqueue.Mpmc -> "mpmc"

let participants = function
  | Kqueue.Spsc -> (1, 1)
  | Kqueue.Mpsc -> (3, 1)
  | Kqueue.Spmc -> (1, 3)
  | Kqueue.Mpmc -> (3, 3)

(* Producer [i]: put [items] tagged values, retrying while full, then
   park.  Items are (tag << 16) | seq so the checker can reconstruct
   per-producer streams.  The generated put reads r1 without modifying
   it, so the full-retry re-enters with the item intact. *)
let producer_code ~tag ~items ~put ~done_cell =
  [
    I.Move (I.Imm 0, I.Reg I.r8);
    I.Label "loop";
    I.Move (I.Imm (tag lsl 16), I.Reg I.r1);
    I.Alu (I.Add, I.Reg I.r8, I.r1);
    I.Label "again";
    I.Jsr (I.To_addr put);
    I.Tst (I.Reg I.r0);
    I.B (I.Eq, I.To_label "again"); (* full: retry until preempted away *)
    I.Alu (I.Add, I.Imm 1, I.r8);
    I.Cmp (I.Imm items, I.Reg I.r8);
    I.B (I.Ne, I.To_label "loop");
    I.Alu_mem (I.Add, I.Imm 1, I.Abs done_cell);
    I.Label "park";
    I.B (I.Always, I.To_label "park");
  ]

(* Consumer [j]: drain forever, logging each item and counting it.
   The host loop stops the run when the counts reach the total. *)
let consumer_code ~log_base ~get ~count_cell =
  [
    I.Move (I.Imm log_base, I.Reg I.r12);
    I.Label "loop";
    I.Jsr (I.To_addr get);
    I.Tst (I.Reg I.r0);
    I.B (I.Eq, I.To_label "loop"); (* empty: retry *)
    I.Move (I.Reg I.r1, I.Post_inc I.r12);
    I.Alu_mem (I.Add, I.Imm 1, I.Abs count_cell);
    I.B (I.Always, I.To_label "loop");
  ]

(* Check the consumer logs against the queue invariants. *)
let check_invariants ~producers ~consumers ~items ~peek ~logs ~counts =
  let total = producers * items in
  let violations = ref [] in
  let violate fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  let consumed =
    Array.to_list (Array.init consumers (fun j -> peek (counts + j)))
    |> List.fold_left ( + ) 0
  in
  if consumed <> total then
    violate "loss/stall: consumed %d of %d" consumed total;
  let seen = Hashtbl.create (2 * total) in
  (* newest position of each producer's last seq per consumer *)
  let last_seq = Array.make_matrix consumers (producers + 1) (-1) in
  for j = 0 to consumers - 1 do
    let n = peek (counts + j) in
    for p = 0 to n - 1 do
      let v = peek (logs.(j) + p) in
      let tag = v lsr 16 and seq = v land 0xFFFF in
      if tag < 1 || tag > producers || seq >= items then
        violate "corrupt item %#x at consumer %d pos %d" v j p
      else begin
        if Hashtbl.mem seen v then violate "duplicate item %#x" v;
        Hashtbl.replace seen v ();
        if seq <= last_seq.(j).(tag) then
          violate
            "FIFO violation: consumer %d saw producer %d seq %d after %d" j
            tag seq last_seq.(j).(tag);
        last_seq.(j).(tag) <- seq
      end
    done
  done;
  (* presence: every produced item must appear exactly once (a phantom
     consume can hide a loss from the count-based check above) *)
  for tag = 1 to producers do
    for seq = 0 to items - 1 do
      if not (Hashtbl.mem seen ((tag lsl 16) lor seq)) then
        violate "missing item tag=%d seq=%d" tag seq
    done
  done;
  List.rev !violations

(* The explorer's fault mix: spurious timer/disk interrupts (safe:
   both handlers are idempotent) and forced CAS failures.  Bit flips
   are aimed at the scratch region by the caller; device stalls are
   exercised by the targeted scenarios instead. *)
let explorer_config ~scratch =
  {
    Fault_inject.default_config with
    Fault_inject.horizon_cycles = 400_000;
    n_irqs = 3;
    n_flips = 2;
    n_stalls = 0;
    n_drops = 0;
    n_cas_fails = 6;
    cas_gap = 32;
    irq_choices =
      [
        (Mmio_map.timer_level, Mmio_map.timer_vector);
        (Mmio_map.disk_level, Mmio_map.disk_vector);
      ];
    flip_base = scratch;
    flip_len = 64;
  }

let run_queue ?(items = 32) ?(faults = true) ~kind ~seed () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let producers, consumers = participants kind in
  let total = producers * items in
  let q = Kqueue.create ~kind k ~name:"explorer/q" ~size:8 in
  let alloc = k.Kernel.alloc in
  let log_words = total + 8 in
  let logs = Array.init consumers (fun _ -> Kalloc.alloc_zeroed alloc log_words) in
  let counts = Kalloc.alloc_zeroed alloc 16 in
  let scratch = Kalloc.alloc_zeroed alloc 64 in
  (* every thread sees the queue, the logs, the counters, the scratch *)
  let segments =
    [ (q.Kqueue.q_desc, 16); (q.Kqueue.q_buf, 8); (counts, 16); (scratch, 64) ]
    @ (if q.Kqueue.q_flag <> 0 then [ (q.Kqueue.q_flag, 8) ] else [])
    @ Array.to_list (Array.map (fun l -> (l, log_words)) logs)
  in
  for i = 1 to producers do
    let code =
      producer_code ~tag:i ~items ~put:q.Kqueue.q_put
        ~done_cell:(counts + consumers + i - 1)
    in
    let entry, _ = Asm.assemble m code in
    ignore (Thread.create k ~entry ~quantum_us:1_000 ~segments ())
  done;
  for j = 0 to consumers - 1 do
    let code =
      consumer_code ~log_base:logs.(j) ~get:q.Kqueue.q_get
        ~count_cell:(counts + j)
    in
    let entry, _ = Asm.assemble m code in
    ignore (Thread.create k ~entry ~quantum_us:1_000 ~segments ())
  done;
  (* enter the scheduler exactly as Boot.go does, but keep stepping on
     the host so we can post preemptions at chosen instruction counts *)
  (match k.Kernel.rq_anchor with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> invalid_arg "explorer: no runnable threads");
  let fi =
    if faults then
      Some
        (Fault_inject.arm m
           (Fault_inject.compile ~config:(explorer_config ~scratch) seed))
    else None
  in
  (* stride floor keeps forward progress: a forced switch costs a few
     dozen instructions of save/restore, so anything comfortably above
     that guarantees every thread still advances between switches *)
  let stride = 128 + (mix seed 7 mod 256) in
  let preemptions = ref 0 in
  let peek a = Machine.peek m a in
  let consumed () =
    let s = ref 0 in
    for j = 0 to consumers - 1 do
      s := !s + peek (counts + j)
    done;
    !s
  in
  let start_insns = Machine.insns_executed m in
  let start_cycles = Machine.cycles m in
  let budget = 6_000_000 in
  let violations = ref [] in
  (try
     let rec loop last_post =
       if consumed () >= total then ()
       else if Machine.insns_executed m - start_insns > budget then
         violations := [ "stall: instruction budget exhausted" ]
       else if Machine.halted m then violations := [ "machine halted" ]
       else begin
         let n = Machine.insns_executed m in
         let last_post =
           if n - last_post >= stride then begin
             incr preemptions;
             Machine.post_interrupt ~source:"explorer" m
               ~level:Mmio_map.timer_level ~vector:Mmio_map.timer_vector;
             n
           end
           else last_post
         in
         Machine.step m;
         loop last_post
       end
     in
     loop start_insns
   with Machine.Deadlock -> violations := [ "deadlock" ]);
  let violations =
    !violations
    @ check_invariants ~producers ~consumers ~items ~peek ~logs ~counts
  in
  let injected = match fi with Some f -> Fault_inject.injected f | None -> 0 in
  (match fi with Some f -> Fault_inject.disarm m f | None -> ());
  {
    x_kind = kind;
    x_seed = seed;
    x_producers = producers;
    x_consumers = consumers;
    x_items = items;
    x_consumed = consumed ();
    x_stride = stride;
    x_preemptions = !preemptions;
    x_injected = injected;
    x_violations = violations;
    x_insns = Machine.insns_executed m - start_insns;
    x_cycles = Machine.cycles m - start_cycles;
  }

let run_all ?(items = 32) ~seed () =
  List.map
    (fun kind -> run_queue ~items ~kind ~seed ())
    [ Kqueue.Spsc; Kqueue.Mpsc; Kqueue.Spmc; Kqueue.Mpmc ]

(* ---------------------------------------------------------------- *)
(* Targeted recovery scenarios *)

type timer_loss_result = {
  tl_seed : int;
  tl_drop_cycle : int; (* when the quantum-timer completion was lost *)
  tl_stall_cycles : int; (* flow outage observed around the drop *)
  tl_recovery_cycles : int; (* drop -> first consumed item after it *)
  tl_restarts : int; (* watchdog restart actions taken *)
  tl_consumed : int;
}

(* Lose a quantum-timer completion under spinning (non-yielding)
   producer/consumer threads: the running thread then owns the CPU
   forever — the classic lost-interrupt livelock.  The flow-rate
   watchdog notices the consumer's counter flat-lining and re-arms the
   timer, and the stale-deadline check in [Devices.Timer.arm] lets the
   re-arm through.  Returns the measured recovery latency. *)
let timer_loss ?(seed = 1) () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let q = Kqueue.create ~kind:Kqueue.Mpsc k ~name:"tl/q" ~size:8 in
  let alloc = k.Kernel.alloc in
  let counts = Kalloc.alloc_zeroed alloc 4 in
  let segments =
    [ (q.Kqueue.q_desc, 16); (q.Kqueue.q_buf, 8); (q.Kqueue.q_flag, 8);
      (counts, 4) ]
  in
  (* endless producer: seq wraps at 16 bits, tag 1 *)
  let prod =
    [
      I.Move (I.Imm 0, I.Reg I.r8);
      I.Label "loop";
      I.Move (I.Imm (1 lsl 16), I.Reg I.r1);
      I.Alu (I.Add, I.Reg I.r8, I.r1);
      I.Label "again";
      I.Jsr (I.To_addr q.Kqueue.q_put);
      I.Tst (I.Reg I.r0);
      I.B (I.Eq, I.To_label "again");
      I.Alu (I.Add, I.Imm 1, I.r8);
      I.Alu (I.And, I.Imm 0xFFFF, I.r8);
      I.B (I.Always, I.To_label "loop");
    ]
  in
  let cons =
    [
      I.Label "loop";
      I.Jsr (I.To_addr q.Kqueue.q_get);
      I.Tst (I.Reg I.r0);
      I.B (I.Eq, I.To_label "loop");
      I.Alu_mem (I.Add, I.Imm 1, I.Abs counts);
      I.B (I.Always, I.To_label "loop");
    ]
  in
  let pe, _ = Asm.assemble m prod in
  let ce, _ = Asm.assemble m cons in
  ignore (Thread.create k ~entry:pe ~quantum_us:500 ~segments ());
  ignore (Thread.create k ~entry:ce ~quantum_us:500 ~segments ());
  let wd = Watchdog.install k ~period_us:2_000.0 () in
  let flow =
    Watchdog.watch wd ~name:"tl/consumer" ~threshold:3
      ~read:(fun () -> Machine.peek m counts)
      ~restart:(fun () -> Devices.Timer.arm k.Kernel.timer ~us:200.0)
      ()
  in
  (match k.Kernel.rq_anchor with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> invalid_arg "timer_loss: no runnable threads");
  (* drop the timer completion somewhere inside steady-state flow *)
  let drop_after = 30_000 + (mix seed 11 mod 20_000) in
  let fi =
    Fault_inject.arm m
      (Fault_inject.make_plan ~seed
         [
           {
             Fault_inject.ev_after = drop_after;
             ev_action = Fault_inject.Drop_completion { device = "timer" };
           };
         ])
  in
  let arm_cycle = Machine.cycles m in
  let budget = 8_000_000 in
  let last_count = ref 0 in
  let last_change_cycle = ref arm_cycle in
  let drop_cycle = arm_cycle + drop_after in
  let recovery = ref 0 in
  let stall = ref 0 in
  let rec loop n =
    if n > budget then ()
    else begin
      let c = Machine.peek m counts in
      if c <> !last_count then begin
        let now = Machine.cycles m in
        if now > drop_cycle && !recovery = 0 then begin
          recovery := now - drop_cycle;
          stall := now - !last_change_cycle
        end;
        last_count := c;
        last_change_cycle := now
      end;
      if !recovery = 0 then begin
        Machine.step m;
        loop (n + 1)
      end
    end
  in
  loop 0;
  Fault_inject.disarm m fi;
  Watchdog.stop wd;
  {
    tl_seed = seed;
    tl_drop_cycle = drop_cycle;
    tl_stall_cycles = !stall;
    tl_recovery_cycles = !recovery;
    tl_restarts = Watchdog.restarts flow;
    tl_consumed = Machine.peek m counts;
  }

type disk_fault_mode = Disk_stall | Disk_drop | Disk_bad_block

type disk_fault_result = {
  df_mode : disk_fault_mode;
  df_completed : bool; (* the read finally returned data *)
  df_tries : int; (* issues of the request (1 = no retry) *)
  df_timeouts : int;
  df_retries : int;
  df_failed : int;
  df_recovery_cycles : int; (* first issue -> completion, when retried *)
}

(* Stall, drop, or permanently fail a disk completion and watch the
   disk server's bounded-retry watchdog recover (or give up with
   status 2 instead of wedging the waiter forever). *)
let disk_fault ?(seed = 1) ~mode () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let ds = Disk_server.install k ~timeout_us:4_000.0 ~max_tries:4 () in
  Devices.Disk.write_block k.Kernel.disk 7
    (Array.init Devices.Disk.block_words (fun i -> 7_000 + i));
  (* idle thread must be resumable so completion interrupts are taken *)
  (match k.Kernel.rq_anchor with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 0;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> invalid_arg "disk_fault: no idle thread");
  let block = match mode with Disk_bad_block -> 1 lsl 20 | _ -> 7 in
  let fi =
    match mode with
    | Disk_bad_block -> None (* the device itself errors: status 3 *)
    | Disk_stall ->
      (* push the completion past the watchdog timeout *)
      Some
        (Fault_inject.arm m
           (Fault_inject.make_plan ~seed
              [
                {
                  Fault_inject.ev_after = 10_000 + (mix seed 13 mod 10_000);
                  ev_action =
                    Fault_inject.Stall
                      { device = "disk"; delay_cycles = 600_000 };
                };
              ]))
    | Disk_drop ->
      Some
        (Fault_inject.arm m
           (Fault_inject.make_plan ~seed
              [
                {
                  Fault_inject.ev_after = 10_000 + (mix seed 13 mod 10_000);
                  ev_action = Fault_inject.Drop_completion { device = "disk" };
                };
              ]))
  in
  let r = Disk_server.read_block_sync ds block ~max_insns:20_000_000 in
  (match fi with Some f -> Fault_inject.disarm m f | None -> ());
  {
    df_mode = mode;
    df_completed = r <> None;
    df_tries = Disk_server.active_tries ds;
    df_timeouts = Disk_server.timeouts ds;
    df_retries = Disk_server.retries ds;
    df_failed = Disk_server.failed ds;
    df_recovery_cycles = Disk_server.last_recovery_cycles ds;
  }
