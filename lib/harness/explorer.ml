(* kfault interleaving explorer.

   The paper's robustness claim (§3.2): the optimistic, lock-free
   kernel code stays correct under arbitrary preemption and interrupt
   timing.  This module stresses exactly that, deterministically.

   The explorer is organised around pluggable *subjects*: a subject
   boots a kernel, builds a workload (threads of machine code plus
   host-visible counters), and exposes invariant checks.  A shared
   driver then runs the machine while forcing a context switch every
   k-th instruction (posting the quantum-timer interrupt, which every
   thread's private vector table routes to its own switch-out code) —
   so preemption points sweep across every instruction of the kernel
   paths as seeds vary.  A seeded [Fault_inject] plan adds spurious
   interrupts, bit flips, forced CAS failures, and stalled/dropped
   completions on top.  Invariants are checked at every forced
   preemption and once more at the end; each run folds a deterministic
   trace hash so CI can assert that a seed names exactly one
   interleaving.

   Subjects:
   - the four lock-free [Kqueue] kinds (no loss / no duplication /
     no corruption / per-producer FIFO);
   - the executable ready queue under a storm of host-driven
     stop/start/restart transitions (ring integrity, no dead or
     stopped thread holding the CPU);
   - a [Kpipe] producer/consumer pair (exact data delivery, clean
     EOF, no premature EOF under spurious wakeups);
   - the disk elevator under stalled, dropped, and spurious
     completions (completion-exactly-once with the right data, SCAN
     service order, no starvation).

   [timer_loss] and [disk_fault] are targeted recovery scenarios: a
   dropped quantum-timer completion (livelock recovered by the
   flow-rate watchdog) and stalled/dropped/failing disk completions
   (recovered by the disk server's bounded retry). *)

open Quamachine
open Synthesis
module I = Insn

(* Deterministic per-seed scrambling for stride choices (never use
   Random: sweeps must replay exactly). *)
let mix seed salt =
  let z = (seed * 0x9E3779B1) lxor (salt * 0x85EBCA6B) in
  let z = (z lxor (z lsr 15)) * 0x2545F491 in
  (z lxor (z lsr 13)) land max_int

(* ---------------------------------------------------------------- *)
(* Subject API *)

type subject_result = {
  s_subject : string;
  s_seed : int;
  s_stride : int; (* instructions between forced preemptions *)
  s_preemptions : int; (* forced context switches posted *)
  s_injected : int; (* faults delivered by the plan *)
  s_progress : int;
  s_goal : int;
  s_violations : string list; (* empty = all invariants held *)
  s_insns : int;
  s_cycles : int;
  s_trace_hash : int; (* seed-deterministic interleaving fingerprint *)
  s_postmortem : string option; (* flight-recorder dump when checks failed *)
  s_blackbox_json : string option; (* black-box ring as Chrome trace JSON *)
}

(* One built workload: a booted kernel plus the hooks the driver
   needs.  [i_check] runs at every forced preemption, [i_final] once
   after the run; [i_agitate] lets a subject drive host-side
   transitions (thread stop/start/restart) at preemption points;
   [i_sabotage] deliberately corrupts state mid-run so the negative
   tests can prove the invariants actually bite. *)
type instance = {
  i_boot : Boot.t;
  i_goal : int;
  i_budget : int; (* instruction budget before declaring a stall *)
  i_fault_config : Fault_inject.config option;
  i_progress : unit -> int;
  i_agitate : (int -> unit) option;
  i_check : unit -> string list;
  i_final : unit -> string list;
  i_sabotage : (unit -> unit) option;
}

type subject = { sub_name : string; sub_build : seed:int -> instance }

let subject_name s = s.sub_name

(* Every subject boots with the flight recorder armed: a *disabled*
   trace (the always-on black-box ring, but zero probes) plus the span
   layer, attached before the subject synthesizes its pipelines so the
   span probes splice in.  A failing check can then dump a postmortem
   whose open-span set names the requests that were in flight. *)
let observed_boot ?(cores = 1) () =
  let b = Boot.boot ~cores () in
  let k = b.Boot.kernel in
  Kernel.attach_tracing k (Ktrace.create ~enabled:false k.Kernel.machine);
  ignore (Kernel.attach_spans k);
  b

let enter_scheduler k =
  let m = k.Kernel.machine in
  for c = 1 to Kernel.cores k - 1 do
    if (not (Machine.core_started m c)) && Kernel.anchor k c <> None then
      Boot.start_secondary k c
  done;
  Machine.set_active_core m 0;
  match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> invalid_arg "explorer: no runnable threads"

(* The shared driver: step the machine, posting the quantum-timer
   interrupt every [stride] instructions; at each such checkpoint run
   the subject's agitation and invariant hooks and fold the trace
   hash.  Stops at the first recorded violation (the final checks
   still run), at the goal, or when the budget is exhausted. *)
let run_instance ~name ~seed ~faults ~sabotage inst =
  let k = inst.i_boot.Boot.kernel in
  let m = k.Kernel.machine in
  enter_scheduler k;
  let fi =
    if faults then
      match inst.i_fault_config with
      | Some config ->
        Some (Fault_inject.arm m (Fault_inject.compile ~config seed))
      | None -> None
    else None
  in
  (* stride floor keeps forward progress: a forced switch costs a few
     dozen instructions of save/restore, so anything comfortably above
     that guarantees every thread still advances between switches.
     The stride is measured in core-0 instructions, not global ones
     (identical on a uniprocessor): the forced timer interrupt lands
     on core 0, and on an SMP boot core 0 only executes ~1/cores of
     the global stream — a globally-paced stride would interrupt it
     below the switch cost and livelock whatever is pinned there. *)
  let stride = 128 + (mix seed 7 mod 256) in
  let preemptions = ref 0 in
  let checkpoint = ref 0 in
  let hash = ref (mix seed 0x5eed) in
  let fold v = hash := mix !hash (v land max_int) in
  let nviol = ref 0 in
  let violations = ref [] in
  let add vs =
    List.iter
      (fun v ->
        incr nviol;
        if !nviol <= 16 then violations := v :: !violations)
      vs
  in
  let sabotaged = ref false in
  let start_insns = Machine.insns_executed m in
  let start_cycles = Machine.cycles m in
  (try
     let rec loop last_post =
       let p = inst.i_progress () in
       if p >= inst.i_goal then ()
       else if Machine.insns_executed m - start_insns > inst.i_budget then
         add [ "stall: instruction budget exhausted" ]
       else if Machine.halted m then add [ "machine halted" ]
       else begin
         (* sabotage triggers on progress, not on a checkpoint: subjects
            that mostly sleep across device events (the disk burst)
            retire work while executing almost no instructions, so a
            stride checkpoint may never land inside the run *)
         if sabotage && (not !sabotaged) && p * 4 >= inst.i_goal then begin
           (match inst.i_sabotage with Some f -> f () | None -> ());
           sabotaged := true
         end;
         let n = Machine.core_insns m 0 in
         let last_post =
           if n - last_post >= stride then begin
             incr checkpoint;
             (match inst.i_agitate with Some f -> f !checkpoint | None -> ());
             add (inst.i_check ());
             fold (Machine.get_pc m);
             fold (inst.i_progress ());
             fold (Machine.cycles m);
             incr preemptions;
             Machine.post_interrupt ~source:"explorer" m
               ~level:Mmio_map.timer_level ~vector:Mmio_map.timer_vector;
             n
           end
           else last_post
         in
         if !nviol = 0 then begin
           Machine.step m;
           loop last_post
         end
       end
     in
     loop (Machine.core_insns m 0)
   with
  | Machine.Deadlock -> add [ "deadlock" ]
  | Failure msg -> add [ "invariant: " ^ msg ]);
  add (inst.i_final ());
  let injected = match fi with Some f -> Fault_inject.injected f | None -> 0 in
  (match fi with Some f -> Fault_inject.disarm m f | None -> ());
  let insns = Machine.insns_executed m - start_insns in
  let cycles = Machine.cycles m - start_cycles in
  fold insns;
  fold cycles;
  fold injected;
  fold !preemptions;
  List.iter (fun v -> fold (Hashtbl.hash v)) !violations;
  let postmortem, blackbox =
    if !violations = [] then (None, None)
    else
      ( Some (Kernel.postmortem ~reason:("subject_check/" ^ name) k),
        Option.map Ktrace.blackbox_to_chrome_json k.Kernel.ktrace )
  in
  {
    s_subject = name;
    s_seed = seed;
    s_stride = stride;
    s_preemptions = !preemptions;
    s_injected = injected;
    s_progress = inst.i_progress ();
    s_goal = inst.i_goal;
    s_violations = List.rev !violations;
    s_insns = insns;
    s_cycles = cycles;
    s_trace_hash = !hash;
    s_postmortem = postmortem;
    s_blackbox_json = blackbox;
  }

let run_subject ?(faults = true) ?(sabotage = false) subject ~seed () =
  run_instance ~name:subject.sub_name ~seed ~faults ~sabotage
    (subject.sub_build ~seed)

(* ---------------------------------------------------------------- *)
(* Subject 1: the four lock-free Kqueue kinds *)

type result = {
  x_kind : Kqueue.kind;
  x_seed : int;
  x_producers : int;
  x_consumers : int;
  x_items : int; (* per producer *)
  x_consumed : int;
  x_stride : int; (* instructions between forced preemptions *)
  x_preemptions : int; (* forced context switches posted *)
  x_injected : int; (* faults delivered by the plan *)
  x_violations : string list; (* empty = all invariants held *)
  x_insns : int;
  x_cycles : int;
}

let kind_name = function
  | Kqueue.Spsc -> "spsc"
  | Kqueue.Mpsc -> "mpsc"
  | Kqueue.Spmc -> "spmc"
  | Kqueue.Mpmc -> "mpmc"

let participants = function
  | Kqueue.Spsc -> (1, 1)
  | Kqueue.Mpsc -> (3, 1)
  | Kqueue.Spmc -> (1, 3)
  | Kqueue.Mpmc -> (3, 3)

(* Producer [i]: put [items] tagged values, retrying while full, then
   park.  Items are (tag << 16) | seq so the checker can reconstruct
   per-producer streams.  The generated put reads r1 without modifying
   it, so the full-retry re-enters with the item intact. *)
let producer_code ~tag ~items ~put ~done_cell =
  [
    I.Move (I.Imm 0, I.Reg I.r8);
    I.Label "loop";
    I.Move (I.Imm (tag lsl 16), I.Reg I.r1);
    I.Alu (I.Add, I.Reg I.r8, I.r1);
    I.Label "again";
    I.Jsr (I.To_addr put);
    I.Tst (I.Reg I.r0);
    I.B (I.Eq, I.To_label "again"); (* full: retry until preempted away *)
    I.Alu (I.Add, I.Imm 1, I.r8);
    I.Cmp (I.Imm items, I.Reg I.r8);
    I.B (I.Ne, I.To_label "loop");
    I.Alu_mem (I.Add, I.Imm 1, I.Abs done_cell);
    I.Label "park";
    I.B (I.Always, I.To_label "park");
  ]

(* Consumer [j]: drain forever, logging each item and counting it.
   The host loop stops the run when the counts reach the total. *)
let consumer_code ~log_base ~get ~count_cell =
  [
    I.Move (I.Imm log_base, I.Reg I.r12);
    I.Label "loop";
    I.Jsr (I.To_addr get);
    I.Tst (I.Reg I.r0);
    I.B (I.Eq, I.To_label "loop"); (* empty: retry *)
    I.Move (I.Reg I.r1, I.Post_inc I.r12);
    I.Alu_mem (I.Add, I.Imm 1, I.Abs count_cell);
    I.B (I.Always, I.To_label "loop");
  ]

(* Check the consumer logs against the queue invariants. *)
let check_invariants ~producers ~consumers ~items ~peek ~logs ~counts =
  let total = producers * items in
  let violations = ref [] in
  let violate fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  let consumed =
    Array.to_list (Array.init consumers (fun j -> peek (counts + j)))
    |> List.fold_left ( + ) 0
  in
  if consumed <> total then
    violate "loss/stall: consumed %d of %d" consumed total;
  let seen = Hashtbl.create (2 * total) in
  (* newest position of each producer's last seq per consumer *)
  let last_seq = Array.make_matrix consumers (producers + 1) (-1) in
  for j = 0 to consumers - 1 do
    let n = peek (counts + j) in
    for p = 0 to n - 1 do
      let v = peek (logs.(j) + p) in
      let tag = v lsr 16 and seq = v land 0xFFFF in
      if tag < 1 || tag > producers || seq >= items then
        violate "corrupt item %#x at consumer %d pos %d" v j p
      else begin
        if Hashtbl.mem seen v then violate "duplicate item %#x" v;
        Hashtbl.replace seen v ();
        if seq <= last_seq.(j).(tag) then
          violate
            "FIFO violation: consumer %d saw producer %d seq %d after %d" j
            tag seq last_seq.(j).(tag);
        last_seq.(j).(tag) <- seq
      end
    done
  done;
  (* presence: every produced item must appear exactly once (a phantom
     consume can hide a loss from the count-based check above) *)
  for tag = 1 to producers do
    for seq = 0 to items - 1 do
      if not (Hashtbl.mem seen ((tag lsl 16) lor seq)) then
        violate "missing item tag=%d seq=%d" tag seq
    done
  done;
  List.rev !violations

(* The queue subject's fault mix: spurious timer/disk interrupts
   (safe: both handlers are idempotent) and forced CAS failures.  Bit
   flips are aimed at the Layout-reserved fault scratch window; device
   stalls are exercised by the disk subject and the targeted scenarios
   instead. *)
let explorer_config () =
  {
    Fault_inject.default_config with
    Fault_inject.horizon_cycles = 400_000;
    n_irqs = 3;
    n_flips = 2;
    n_stalls = 0;
    n_drops = 0;
    n_cas_fails = 6;
    cas_gap = 32;
    irq_choices =
      [
        (Mmio_map.timer_level, Mmio_map.timer_vector);
        (Mmio_map.disk_level, Mmio_map.disk_vector);
      ];
    flip_base = Layout.fault_scratch_base;
    flip_len = Layout.fault_scratch_words;
  }

(* Build the queue workload into an already-booted kernel: producers
   and consumers pinned round-robin across [cores] (all on core 0 for
   a uniprocessor boot), so on an SMP boot the queue code really is
   entered from several cores at once.  Returns the progress and
   final-check closures. *)
let queue_workload b ~items ~kind ~cores =
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let producers, consumers = participants kind in
  let total = producers * items in
  let q = Kqueue.create ~kind k ~name:"explorer/q" ~size:8 in
  let alloc = k.Kernel.alloc in
  let log_words = total + 8 in
  let logs = Array.init consumers (fun _ -> Kalloc.alloc_zeroed alloc log_words) in
  let counts = Kalloc.alloc_zeroed alloc 16 in
  (* every thread sees the queue, the logs, the counters *)
  let segments =
    [ (q.Kqueue.q_desc, 16); (q.Kqueue.q_buf, 8); (counts, 16) ]
    @ (if q.Kqueue.q_flag <> 0 then [ (q.Kqueue.q_flag, 8) ] else [])
    @ Array.to_list (Array.map (fun l -> (l, log_words)) logs)
  in
  for i = 1 to producers do
    let code =
      producer_code ~tag:i ~items ~put:q.Kqueue.q_put
        ~done_cell:(counts + consumers + i - 1)
    in
    let entry, _ = Asm.assemble m code in
    ignore
      (Thread.create k ~cpu:((i - 1) mod cores) ~entry ~quantum_us:1_000
         ~segments ())
  done;
  for j = 0 to consumers - 1 do
    let code =
      consumer_code ~log_base:logs.(j) ~get:q.Kqueue.q_get
        ~count_cell:(counts + j)
    in
    let entry, _ = Asm.assemble m code in
    ignore
      (Thread.create k ~cpu:((producers + j) mod cores) ~entry
         ~quantum_us:1_000 ~segments ())
  done;
  let peek a = Machine.peek m a in
  let consumed () =
    let s = ref 0 in
    for j = 0 to consumers - 1 do
      s := !s + peek (counts + j)
    done;
    !s
  in
  let final () =
    check_invariants ~producers ~consumers ~items ~peek ~logs ~counts
  in
  (* a phantom consume: bump one consumer's count without a matching
     item — the presence check must notice *)
  let sabotage () = Machine.poke m counts (peek counts + 1) in
  (consumed, final, sabotage, producers, consumers)

let queue_instance ?(cores = 1) ~items ~kind () =
  let b = observed_boot ~cores () in
  let consumed, final, sabotage, producers, consumers =
    queue_workload b ~items ~kind ~cores
  in
  let total = producers * items in
  let inst =
    {
      i_boot = b;
      i_goal = total;
      i_budget = 6_000_000;
      i_fault_config = Some (explorer_config ());
      i_progress = consumed;
      i_agitate = None;
      i_check = (fun () -> []);
      i_final = final;
      i_sabotage = Some sabotage;
    }
  in
  (inst, producers, consumers)

let queue_subject kind =
  {
    sub_name = "queue/" ^ kind_name kind;
    sub_build = (fun ~seed:_ -> let inst, _, _ = queue_instance ~items:32 ~kind () in inst);
  }

let run_queue ?(items = 32) ?(faults = true) ?(cores = 1) ~kind ~seed () =
  let inst, producers, consumers = queue_instance ~cores ~items ~kind () in
  let r =
    run_instance ~name:("queue/" ^ kind_name kind) ~seed ~faults
      ~sabotage:false inst
  in
  {
    x_kind = kind;
    x_seed = seed;
    x_producers = producers;
    x_consumers = consumers;
    x_items = items;
    x_consumed = r.s_progress;
    x_stride = r.s_stride;
    x_preemptions = r.s_preemptions;
    x_injected = r.s_injected;
    x_violations = r.s_violations;
    x_insns = r.s_insns;
    x_cycles = r.s_cycles;
  }

let run_all ?(items = 32) ~seed () =
  List.map
    (fun kind -> run_queue ~items ~kind ~seed ())
    [ Kqueue.Spsc; Kqueue.Mpsc; Kqueue.Spmc; Kqueue.Mpmc ]

(* ---------------------------------------------------------------- *)
(* Subject 2: the executable ready queue under a thread-state storm *)

(* Four counting workers (half of them yielding through trap 5) while
   seeded host agitation stops, starts, and crash-restarts them at
   preemption points — sweeping the stop/start/restart paths across
   every instruction of the switch code.  Invariants: the patched-jmp
   ring always matches the host mirror and closes (Ready_queue.verify,
   whose walk is bounded), the anchor stays in the ring, no stopped or
   dead thread sits in the ring, and no dead thread holds the CPU. *)
let ready_queue_subject =
  let build ~seed =
    let b = observed_boot () in
    let k = b.Boot.kernel in
    let m = k.Kernel.machine in
    let alloc = k.Kernel.alloc in
    let nworkers = 4 in
    let cells = Kalloc.alloc_zeroed alloc 8 in
    let worker i =
      let cell = cells + i in
      let body =
        if i land 1 = 0 then
          [
            I.Label "loop";
            I.Alu_mem (I.Add, I.Imm 1, I.Abs cell);
            I.B (I.Always, I.To_label "loop");
          ]
        else
          [
            I.Label "loop";
            I.Alu_mem (I.Add, I.Imm 1, I.Abs cell);
            I.Trap 5; (* yield *)
            I.B (I.Always, I.To_label "loop");
          ]
      in
      let entry, _ = Asm.assemble m body in
      Thread.create k ~entry ~quantum_us:300 ~segments:[ (cells, 8) ] ()
    in
    let workers = Array.init nworkers worker in
    let progress () =
      let s = ref 0 in
      for i = 0 to nworkers - 1 do
        s := !s + Machine.peek m (cells + i)
      done;
      !s
    in
    let agitate step =
      let r = mix seed (0x1000 + step) in
      let w = workers.((r lsr 4) mod nworkers) in
      (match r mod 6 with
      | 0 ->
        (* stop — but keep at least two ring members so the machine
           always has somewhere to go *)
        if
          w.Kernel.state = Kernel.Ready
          && Ready_queue.in_queue w
          && Ready_queue.length k > 2
        then Thread.stop k w
      | 1 ->
        if w.Kernel.state = Kernel.Stopped && Thread.fully_stopped k w then
          Thread.start k w
      | 2 ->
        (* crash-restart: rebuild the initial context and requeue *)
        if
          w.Kernel.state = Kernel.Ready
          || (w.Kernel.state = Kernel.Stopped && Thread.fully_stopped k w)
        then Kernel.restart_thread k w
      | _ -> ());
      (* never leave the storm with zero runnable workers *)
      if not (Array.exists Ready_queue.in_queue workers) then
        Array.iter
          (fun w ->
            if w.Kernel.state = Kernel.Stopped && Thread.fully_stopped k w
            then Thread.start k w)
          workers
    in
    (* a Stopped/Blocked thread may hold the CPU transiently (its
       switch-out has not run yet); flag it only if it persists *)
    let stuck_tid = ref (-1) in
    let stuck_for = ref 0 in
    let check () =
      let v = ref [] in
      let violate fmt = Fmt.kstr (fun s -> v := s :: !v) fmt in
      if not (Ready_queue.verify k) then
        violate "ready queue verify failed (ring/mirror mismatch)";
      (match Kernel.anchor k 0 with
      | Some a ->
        if not (Ready_queue.in_queue a) then violate "anchor not in ring"
      | None ->
        if Array.exists Ready_queue.in_queue workers then
          violate "anchor lost while workers are queued");
      (try
         List.iter
           (fun t ->
             match t.Kernel.state with
             | Kernel.Ready -> ()
             | Kernel.Stopped ->
               violate "stopped thread %d in ring" t.Kernel.tid
             | Kernel.Blocked ->
               violate "blocked thread %d in ring" t.Kernel.tid
             | Kernel.Zombie -> violate "dead thread %d in ring" t.Kernel.tid)
           (Ready_queue.to_list k)
       with Failure msg -> violate "%s" msg);
      (match Kernel.current k with
      | Some c -> (
        match c.Kernel.state with
        | Kernel.Zombie -> violate "dead thread %d holds the CPU" c.Kernel.tid
        | Kernel.Ready ->
          stuck_tid := -1;
          stuck_for := 0
        | Kernel.Stopped | Kernel.Blocked ->
          if c.Kernel.tid = !stuck_tid then incr stuck_for
          else begin
            stuck_tid := c.Kernel.tid;
            stuck_for := 1
          end;
          if !stuck_for > 4 then
            violate "suspended thread %d still holds the CPU" c.Kernel.tid)
      | None -> ());
      List.rev !v
    in
    {
      i_boot = b;
      i_goal = 4_000;
      i_budget = 3_000_000;
      i_fault_config =
        Some
          {
            Fault_inject.default_config with
            Fault_inject.horizon_cycles = 400_000;
            n_irqs = 4;
            n_flips = 0;
            n_stalls = 0;
            n_drops = 0;
            n_cas_fails = 0;
            irq_choices =
              [
                (Mmio_map.timer_level, Mmio_map.timer_vector);
                (Mmio_map.disk_level, Mmio_map.disk_vector);
              ];
            flip_len = 0;
          };
      i_progress = progress;
      i_agitate = Some agitate;
      i_check = check;
      i_final = check;
      (* point one patched jmp at the address-0 halt guard: the
         code/mirror cross-check must notice before (or as) the ring
         wedges *)
      i_sabotage =
        Some
          (fun () ->
            match Kernel.anchor k 0 with
            | Some a -> Machine.patch_code m a.Kernel.jmp_slot (I.Jmp (I.To_addr 0))
            | None -> ());
    }
  in
  { sub_name = "ready-queue"; sub_build = build }

(* ---------------------------------------------------------------- *)
(* Subject 3: a Kpipe producer/consumer pair *)

(* A writer streams [total] known words through a deliberately small
   pipe (lots of full/empty blocking) and closes; the reader drains
   into a destination buffer, counts words, and must then see a clean
   EOF.  Invariants: the destination equals the source exactly (no
   loss, duplication, reordering, or corruption), the count matches,
   EOF is seen exactly once and never early — under forced preemption,
   spurious interrupts, and forced CAS failures. *)
let kpipe_subject =
  let build ~seed =
    let b = observed_boot () in
    let k = b.Boot.kernel in
    let m = k.Kernel.machine in
    let vfs = b.Boot.vfs in
    let alloc = k.Kernel.alloc in
    let total = 192 in
    let chunk = 8 in
    let src = Kalloc.alloc_zeroed alloc total in
    let dst = Kalloc.alloc_zeroed alloc total in
    let cells = Kalloc.alloc_zeroed alloc 8 in
    (* cells+0 = words received, cells+1 = EOF marker
       (1 clean, 2 data past EOF, 3 premature EOF) *)
    let value i = 1 + ((i * 7 + seed) land 0x7FFF) in
    for i = 0 to total - 1 do
      Machine.poke m (src + i) (value i)
    done;
    let pipe = Kpipe.create k ~cap:16 () in
    let writer =
      Thread.create k ~entry:0 ~quantum_us:200 ~segments:[ (src, total) ] ()
    in
    let reader =
      Thread.create k ~entry:0 ~quantum_us:200
        ~segments:[ (dst, total); (cells, 8) ] ()
    in
    let _, wfd = Kpipe.attach vfs pipe writer in
    let rfd, _ = Kpipe.attach vfs pipe reader in
    (* r9 for the position: the synthesized write path clobbers
       r4–r8 (r8 is its remaining-count register) *)
    let wprog =
      [
        I.Move (I.Imm 0, I.Reg I.r9);
        I.Label "loop";
        I.Move (I.Imm wfd, I.Reg I.r1);
        I.Move (I.Imm src, I.Reg I.r2);
        I.Alu (I.Add, I.Reg I.r9, I.r2);
        I.Move (I.Imm chunk, I.Reg I.r3);
        I.Trap 2; (* write: blocks while full, writes everything *)
        I.Alu (I.Add, I.Imm chunk, I.r9);
        I.Cmp (I.Imm total, I.Reg I.r9);
        I.B (I.Ne, I.To_label "loop");
        I.Move (I.Imm wfd, I.Reg I.r1);
        I.Trap 4; (* close: EOF for the reader *)
        I.Trap 0;
      ]
    in
    let rprog =
      [
        I.Move (I.Imm 0, I.Reg I.r9);
        I.Label "loop";
        I.Move (I.Imm rfd, I.Reg I.r1);
        I.Move (I.Imm dst, I.Reg I.r2);
        I.Alu (I.Add, I.Reg I.r9, I.r2);
        I.Move (I.Imm 64, I.Reg I.r3);
        I.Trap 1; (* read: blocks while empty, 0 only at EOF *)
        I.Tst (I.Reg I.r0);
        I.B (I.Eq, I.To_label "early_eof");
        I.Alu (I.Add, I.Reg I.r0, I.r9);
        I.Alu_mem (I.Add, I.Reg I.r0, I.Abs cells);
        I.Cmp (I.Imm total, I.Reg I.r9);
        I.B (I.Ne, I.To_label "loop");
        (* everything received: one more read must return EOF *)
        I.Move (I.Imm rfd, I.Reg I.r1);
        I.Move (I.Imm dst, I.Reg I.r2);
        I.Move (I.Imm chunk, I.Reg I.r3);
        I.Trap 1;
        I.Tst (I.Reg I.r0);
        I.B (I.Ne, I.To_label "bad_eof");
        I.Move (I.Imm 1, I.Abs (cells + 1));
        I.Trap 0;
        I.Label "bad_eof";
        I.Move (I.Imm 2, I.Abs (cells + 1));
        I.Trap 0;
        I.Label "early_eof";
        I.Move (I.Imm 3, I.Abs (cells + 1));
        I.Trap 0;
      ]
    in
    let wentry, _ = Asm.assemble m wprog in
    let rentry, _ = Asm.assemble m rprog in
    Machine.poke m (writer.Kernel.base + Layout.Tte.off_regs + 17) wentry;
    Machine.poke m (reader.Kernel.base + Layout.Tte.off_regs + 17) rentry;
    writer.Kernel.entry <- wentry;
    reader.Kernel.entry <- rentry;
    let peek a = Machine.peek m a in
    let progress () = peek cells + (if peek (cells + 1) = 1 then 1 else 0) in
    (* the received prefix is stable: dst.[0, count) must already
       equal the source *)
    let check () =
      let c = peek cells in
      if c > total then
        [ Fmt.str "pipe delivered %d of %d words" c total ]
      else begin
        let bad = ref [] in
        (try
           for i = 0 to c - 1 do
             let want = value i and got = peek (dst + i) in
             if got <> want then begin
               bad :=
                 [
                   Fmt.str "pipe data wrong at word %d: got %#x want %#x" i
                     got want;
                 ];
               raise Exit
             end
           done
         with Exit -> ());
        !bad
      end
    in
    let final () =
      let v = ref [] in
      let violate fmt = Fmt.kstr (fun s -> v := s :: !v) fmt in
      let c = peek cells in
      if c <> total then violate "reader counted %d of %d words" c total;
      let bad = ref 0 in
      for i = 0 to total - 1 do
        if peek (dst + i) <> value i then begin
          incr bad;
          if !bad <= 3 then
            violate "pipe data wrong at word %d: got %#x want %#x" i
              (peek (dst + i)) (value i)
        end
      done;
      (match peek (cells + 1) with
      | 1 -> ()
      | 0 -> violate "reader never reached EOF"
      | 2 -> violate "read past EOF returned data"
      | 3 -> violate "premature EOF: read returned 0 before the pipe drained"
      | x -> violate "bad EOF marker %d" x);
      List.rev !v
    in
    {
      i_boot = b;
      i_goal = total + 1; (* all words received + clean EOF observed *)
      i_budget = 4_000_000;
      i_fault_config =
        Some
          {
            Fault_inject.default_config with
            Fault_inject.horizon_cycles = 400_000;
            n_irqs = 3;
            n_flips = 0;
            n_stalls = 0;
            n_drops = 0;
            n_cas_fails = 6;
            cas_gap = 32;
            irq_choices =
              [
                (Mmio_map.timer_level, Mmio_map.timer_vector);
                (Mmio_map.disk_level, Mmio_map.disk_vector);
              ];
            flip_len = 0;
          };
      i_progress = progress;
      i_agitate = None;
      i_check = check;
      i_final = final;
      (* corrupt an already-delivered word: the prefix check must
         notice at the next checkpoint *)
      i_sabotage =
        Some (fun () -> Machine.poke m (dst + 3) (value 3 lxor 0x5555));
    }
  in
  { sub_name = "kpipe"; sub_build = build }

(* ---------------------------------------------------------------- *)
(* Subject 4: the disk elevator under completion faults *)

(* Ten reads of seeded distinct blocks (known contents pre-written to
   the device) submitted in one burst while spurious disk interrupts,
   a stalled completion, and a dropped completion land on top; the
   idle thread takes the interrupts.  Invariants: every request
   completes exactly once with status 1 and the right data the moment
   completion is signalled (a spurious interrupt must not mark an
   in-flight transfer done with a stale buffer), nothing is starved or
   failed, and the device services blocks in SCAN order. *)
let disk_subject =
  let build ~seed =
    let b = observed_boot () in
    let k = b.Boot.kernel in
    let m = k.Kernel.machine in
    let alloc = k.Kernel.alloc in
    let ds = Disk_server.install k ~timeout_us:2_000.0 ~max_tries:6 () in
    let nreqs = 10 in
    let blocks =
      let chosen = Array.make nreqs 0 in
      let used = Hashtbl.create 16 in
      let n = ref 0 and i = ref 0 in
      while !n < nreqs do
        let c = 1 + (mix seed (0x2000 + !i) mod 96) in
        incr i;
        if not (Hashtbl.mem used c) then begin
          Hashtbl.add used c ();
          chosen.(!n) <- c;
          incr n
        end
      done;
      chosen
    in
    let expected bno i = (bno * 1_000) + i in
    Array.iter
      (fun bno ->
        Devices.Disk.write_block k.Kernel.disk bno
          (Array.init Devices.Disk.block_words (expected bno)))
      blocks;
    let reqs =
      Array.map
        (fun bno ->
          let buf = Kalloc.alloc_zeroed alloc Disk_server.block_words in
          let req = Disk_server.submit ds ~block:bno ~buffer:buf ~write:false () in
          (bno, buf, req.Disk_server.r_desc))
        blocks
    in
    let peek a = Machine.peek m a in
    let progress () =
      Array.fold_left
        (fun acc (_, _, desc) -> if peek (desc + 3) = 1 then acc + 1 else acc)
        0 reqs
    in
    let first_done = Array.make nreqs false in
    let check () =
      let v = ref [] in
      let violate fmt = Fmt.kstr (fun s -> v := s :: !v) fmt in
      Array.iteri
        (fun idx (bno, buf, desc) ->
          match peek (desc + 3) with
          | 2 -> violate "block %d failed after retries" bno
          | 1 when not first_done.(idx) ->
            first_done.(idx) <- true;
            (* the data must be right the moment completion is
               signalled, not eventually *)
            let bad = ref (-1) in
            for i = Devices.Disk.block_words - 1 downto 0 do
              if peek (buf + i) <> expected bno i then bad := i
            done;
            if !bad >= 0 then
              violate "block %d completed with stale data at word %d" bno !bad
          | _ -> ())
        reqs;
      List.rev !v
    in
    let final () =
      let v = ref (check ()) in
      let violate fmt = Fmt.kstr (fun s -> v := !v @ [ s ]) fmt in
      Array.iter
        (fun (bno, _, desc) ->
          match peek (desc + 3) with
          | 1 | 2 -> () (* 2 already reported by check *)
          | st -> violate "block %d never completed (status %d)" bno st)
        reqs;
      (* SCAN: ascending from the first-issued block, then the reverse
         sweep downward; retries must not re-enter the order *)
      let order = Disk_server.service_order ds in
      let first = blocks.(0) in
      let rest = List.tl (Array.to_list blocks) in
      let want =
        (first
        :: List.sort compare (List.filter (fun x -> x > first) rest))
        @ List.sort (fun a b -> compare b a)
            (List.filter (fun x -> x < first) rest)
      in
      if order <> want then
        violate "elevator order [%s], want [%s]"
          (String.concat ";" (List.map string_of_int order))
          (String.concat ";" (List.map string_of_int want));
      !v
    in
    {
      i_boot = b;
      i_goal = nreqs;
      i_budget = 2_000_000;
      i_fault_config =
        Some
          {
            Fault_inject.default_config with
            Fault_inject.horizon_cycles = 300_000;
            n_irqs = 4;
            n_flips = 0;
            n_stalls = 1;
            n_drops = 1;
            n_cas_fails = 0;
            irq_choices = [ (Mmio_map.disk_level, Mmio_map.disk_vector) ];
            stall_devices = [ "disk" ];
            flip_len = 0;
          };
      i_progress = progress;
      i_agitate = None;
      i_check = check;
      i_final = final;
      (* corrupt the first (already completed) buffer and forget we
         checked it: the data invariant must re-notice *)
      i_sabotage =
        Some
          (fun () ->
            let _, buf, _ = reqs.(0) in
            Machine.poke m buf (peek buf lxor 0x1111);
            first_done.(0) <- false)
    }
  in
  { sub_name = "disk"; sub_build = build }

(* ---------------------------------------------------------------- *)
(* Subject 5: kheal — code-region flips with resynthesis repair *)

(* An Mpsc queue workload (hot put/get and switch code), one quaject
   op (code that never executes during the run), and a watchdog with
   the code audit enabled.  The fault plan aims [Bit_flip Code] events
   at every regenerable region the workload owns — queue ops, each
   thread's switch code, quaject ops — and the agitation hook keeps
   flipping more at preemption points.  Executed corruption traps and
   is repaired in place (the faulting instruction retries); dormant
   corruption is caught by the watchdog's periodic checksum walk.  At
   the end one last audit must leave every region clean and the code
   state hash exactly equal to the fingerprint taken at build time —
   i.e. the kernel converged back to the fault-free steady state.

   Fault-handler regions ("fault/...") are deliberately never
   targeted: a corrupted illegal-instruction handler would re-enter
   itself in infinite regress.  Repairing the repairer needs a second
   uncorrupted channel (e.g. a host-side ECC sweep) that the model
   does not pretend to have. *)
let codeflip_subject =
  let has_prefix p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  let build ~seed =
    let b = observed_boot () in
    let k = b.Boot.kernel in
    let m = k.Kernel.machine in
    let alloc = k.Kernel.alloc in
    let kind = Kqueue.Mpsc in
    let items = 24 in
    let producers, consumers = participants kind in
    let total = producers * items in
    let q = Kqueue.create ~kind k ~name:"explorer/q" ~size:8 in
    let log_words = total + 8 in
    let logs =
      Array.init consumers (fun _ -> Kalloc.alloc_zeroed alloc log_words)
    in
    let counts = Kalloc.alloc_zeroed alloc 16 in
    let segments =
      [ (q.Kqueue.q_desc, 16); (q.Kqueue.q_buf, 8); (counts, 16) ]
      @ (if q.Kqueue.q_flag <> 0 then [ (q.Kqueue.q_flag, 8) ] else [])
      @ Array.to_list (Array.map (fun l -> (l, log_words)) logs)
    in
    for i = 1 to producers do
      let code =
        producer_code ~tag:i ~items ~put:q.Kqueue.q_put
          ~done_cell:(counts + consumers + i - 1)
      in
      let entry, _ = Asm.assemble m code in
      ignore (Thread.create k ~entry ~quantum_us:1_000 ~segments ())
    done;
    for j = 0 to consumers - 1 do
      let code =
        consumer_code ~log_base:logs.(j) ~get:q.Kqueue.q_get
          ~count_cell:(counts + j)
      in
      let entry, _ = Asm.assemble m code in
      ignore (Thread.create k ~entry ~quantum_us:1_000 ~segments ())
    done;
    (* a quaject op: synthesized code that never runs during the
       storm, so only the audit channel can catch its corruption *)
    let tick_cell = Kalloc.alloc_zeroed alloc 4 in
    let tick_template =
      Template.make ~name:"tick" ~params:[ "cell" ] (fun p ->
          [ I.Alu_mem (I.Add, I.Imm 1, I.Abs (p "cell")); I.Rts ])
    in
    ignore
      (Synthesizer.create k ~name:"healer" ~data_words:4
         [ ("tick", tick_template, [ ("cell", tick_cell) ]) ]);
    (* second detection channel: periodic checksum walk *)
    let wd = Watchdog.install k ~period_us:1_000.0 () in
    Watchdog.audit_code wd;
    (* target every regenerable region this workload owns — never the
       fault handlers (see above) *)
    let targets =
      List.filter_map
        (fun r ->
          let n = r.Kernel.cr_name in
          if
            has_prefix "explorer/q/" n || has_prefix "ctx/" n
            || has_prefix "quaject/" n
          then Some (r.Kernel.cr_entry, r.Kernel.cr_len)
          else None)
        (Kernel.code_regions k)
    in
    let target_arr = Array.of_list targets in
    (* the region set and content (minus scheduling slots) are fixed
       from here on: this hash IS the fault-free steady state *)
    let snapshot =
      List.map
        (fun r -> (r.Kernel.cr_name, r.Kernel.cr_entry))
        (Kernel.code_regions k)
    in
    let reference = Kernel.code_state_hash k in
    let peek a = Machine.peek m a in
    let consumed () =
      let s = ref 0 in
      for j = 0 to consumers - 1 do
        s := !s + peek (counts + j)
      done;
      !s
    in
    (* keep the storm dense: extra deterministic flips at preemption
       points, beyond the compiled plan *)
    let agitate step =
      let r = mix seed (0xC0DE + step) in
      if r mod 5 = 0 && Array.length target_arr > 0 then begin
        let base, len = target_arr.((r lsr 4) mod Array.length target_arr) in
        Fault_inject.corrupt_code m
          ~addr:(base + (r lsr 10) mod max 1 len)
          ~bit:((r lsr 20) mod 31)
      end
    in
    let final () =
      let v = ref [] in
      let violate fmt = Fmt.kstr (fun s -> v := s :: !v) fmt in
      (* one last walk — the same pass the watchdog runs — then the
         code state must be exactly the fault-free fingerprint *)
      ignore (Kernel.audit_code ~origin:"final" k);
      List.iter
        (fun r ->
          if Kernel.region_dirty k r then
            violate "region %s still dirty after final audit" r.Kernel.cr_name)
        (Kernel.code_regions k);
      List.iter
        (fun (name, entry) ->
          match Kernel.find_region_by_name k name with
          | Some r when r.Kernel.cr_entry = entry -> ()
          | Some r ->
            violate "region %s lost from the registry (was @%d, now @%d)" name
              entry r.Kernel.cr_entry
          | None ->
            violate "region %s lost from the registry (was @%d, now absent)"
              name entry)
        snapshot;
      if Kernel.code_state_hash k <> reference then
        violate "code state diverged from the fault-free fingerprint";
      check_invariants ~producers ~consumers ~items ~peek ~logs ~counts
      @ List.rev !v
    in
    {
      i_boot = b;
      i_goal = total;
      i_budget = 8_000_000;
      i_fault_config =
        Some
          {
            Fault_inject.default_config with
            Fault_inject.horizon_cycles = 400_000;
            n_irqs = 2;
            n_flips = 0;
            n_stalls = 0;
            n_drops = 0;
            n_cas_fails = 4;
            cas_gap = 32;
            n_code_flips = 4;
            code_regions = targets;
            irq_choices = [ (Mmio_map.timer_level, Mmio_map.timer_vector) ];
            flip_len = 0;
          };
      i_progress = consumed;
      i_agitate = Some agitate;
      i_check = (fun () -> []);
      i_final = final;
      (* corrupt a dormant region AND drop its registry record: the
         audit can no longer see it, so the registry-presence and
         fingerprint checks must both notice *)
      i_sabotage =
        Some
          (fun () ->
            match Kernel.find_region_by_name k "bad_fd" with
            | Some r ->
              Fault_inject.corrupt_code m ~addr:r.Kernel.cr_entry ~bit:3;
              k.Kernel.code_regions <-
                List.filter (fun r' -> r' != r) k.Kernel.code_regions
            | None -> failwith "codeflip: no bad_fd region to sabotage");
    }
  in
  { sub_name = "codeflip"; sub_build = build }

(* ---------------------------------------------------------------- *)
(* Subject 6: synthcache — a corrupted shared page repairs once for
   all users *)

(* Several threads call the same memoized op: one [Ksynth] page,
   refcount = users.  The fault plan aims [Bit_flip Code] events at
   that single shared page while a decoy churn (instantiate + release
   of throwaway ops under a tight per-kind cap) keeps the eviction
   path hot around it.  The claims under storm:

   - corruption is repaired *in place*, exactly once for all users —
     the page never forks, moves, or gets re-instantiated per caller
     (handle identity, entry address, and refcount all stay fixed);
   - eviction never touches a page with live references — the decoy
     churn must evict decoys, never the hot page;
   - the kernel converges back to the fault-free code fingerprint.

   The sabotage hook mirrors codeflip: corrupt the shared page AND
   drop its region record, so repair is blind to it and only the
   registry-presence / fingerprint checks can notice. *)
let synthcache_subject =
  let build ~seed =
    let b = observed_boot () in
    let k = b.Boot.kernel in
    let m = k.Kernel.machine in
    let alloc = k.Kernel.alloc in
    let users = 4 in
    let items = 32 in
    let count_cell = Kalloc.alloc_zeroed alloc 4 in
    let dones = Kalloc.alloc_zeroed alloc users in
    let bump_template =
      Template.make ~name:"cachehot/bump" ~params:[ "cell" ] (fun p ->
          [ I.Alu_mem (I.Add, I.Imm 1, I.Abs (p "cell")); I.Rts ])
    in
    (* every user instantiates the same template with the same
       invariants: one page, refcount = users *)
    let handles =
      List.init users (fun _ ->
          Ksynth.instantiate k ~template:bump_template
            ~invariants:[ ("cell", count_cell) ])
    in
    let h0 = List.hd handles in
    let entry0 = Ksynth.entry h0 in
    let page0 = Ksynth.page h0 in
    List.iter
      (fun h ->
        if Ksynth.entry h <> entry0 then
          failwith "synthcache: identical instantiations did not share")
      handles;
    for i = 0 to users - 1 do
      let code =
        [
          I.Move (I.Imm 0, I.Reg I.r8);
          I.Label "loop";
          I.Jsr (I.To_addr entry0);
          I.Alu (I.Add, I.Imm 1, I.r8);
          I.Cmp (I.Imm items, I.Reg I.r8);
          I.B (I.Ne, I.To_label "loop");
          I.Alu_mem (I.Add, I.Imm 1, I.Abs (dones + i));
          I.Label "park";
          I.B (I.Always, I.To_label "park");
        ]
      in
      let entry, _ = Asm.assemble m code in
      ignore
        (Thread.create k ~entry ~quantum_us:1_000
           ~segments:[ (count_cell, 4); (dones, users) ]
           ())
    done;
    (* second detection channel for dormant corruption *)
    let wd = Watchdog.install k ~period_us:1_000.0 () in
    Watchdog.audit_code wd;
    let hot_region =
      match Kernel.find_region k entry0 with
      | Some r -> (r.Kernel.cr_entry, r.Kernel.cr_len)
      | None -> failwith "synthcache: shared page has no region record"
    in
    let reference = Kernel.code_state_hash k in
    let evictions0 = (Ksynth.stats k).Ksynth.st_evictions in
    let peek a = Machine.peek m a in
    (* decoy churn: throwaway ops under a tight cap, so eviction and
       resynthesis run right next to the hot page all storm long *)
    Ksynth.set_cap k ~kind:"cachecold" 32;
    let decoy =
      Template.make ~name:"cachecold/decoy" ~params:[ "v" ] (fun p ->
          [ I.Move (I.Imm (p "v"), I.Reg I.r0); I.Rts ])
    in
    let churn v =
      let h = Ksynth.instantiate k ~template:decoy ~invariants:[ ("v", v) ] in
      Ksynth.release k h
    in
    (* a fresh invariant binding every checkpoint: every churn is a
       miss, so the cap keeps evicting right through the storm *)
    let agitate step = churn (1 + (mix seed (0xCA5E + step) mod 4096)) in
    let check () =
      let v = ref [] in
      let violate fmt = Fmt.kstr (fun s -> v := s :: !v) fmt in
      if Ksynth.page h0 != page0 then
        violate "shared page forked or detached under repair";
      if Ksynth.entry h0 <> entry0 then
        violate "shared page moved from %#x to %#x" entry0 (Ksynth.entry h0);
      if Ksynth.refs h0 <> users then
        violate "shared page refcount %d, want %d" (Ksynth.refs h0) users;
      List.rev !v
    in
    let final () =
      let v = ref (check ()) in
      let violate fmt = Fmt.kstr (fun s -> v := !v @ [ s ]) fmt in
      (* flush the decoys (at least one exists: churn it in now), so
         the surviving code content is exactly the build-time set;
         eviction must leave the referenced hot page alone *)
      churn 0;
      Ksynth.set_cap k ~kind:"cachecold" 0;
      if (Ksynth.stats k).Ksynth.st_evictions = evictions0 then
        violate "decoy churn drove no evictions";
      (* the same walk the watchdog runs, then exact convergence *)
      ignore (Kernel.audit_code ~origin:"final" k);
      List.iter
        (fun r ->
          if Kernel.region_dirty k r then
            violate "region %s still dirty after final audit" r.Kernel.cr_name)
        (Kernel.code_regions k);
      (match Kernel.find_region k entry0 with
      | Some r when (r.Kernel.cr_entry, r.Kernel.cr_len) = hot_region -> ()
      | _ -> violate "shared page lost from the registry");
      if Kernel.code_state_hash k <> reference then
        violate "code state diverged from the fault-free fingerprint";
      (* one more instantiation must be a pure hit on the same page:
         the repaired page, not a resynthesized copy, serves new users *)
      let h = Ksynth.instantiate k ~template:bump_template
          ~invariants:[ ("cell", count_cell) ] in
      if Ksynth.entry h <> entry0 then
        violate "post-storm instantiation missed the repaired page";
      Ksynth.release k h;
      for i = 0 to users - 1 do
        if peek (dones + i) <> 1 then violate "user %d never finished" i
      done;
      !v
    in
    (* done flags count toward the goal: the run only ends once every
       user has parked, so the per-user finished check can bite *)
    let progress () =
      let d = ref (peek count_cell) in
      for i = 0 to users - 1 do
        d := !d + peek (dones + i)
      done;
      !d
    in
    {
      i_boot = b;
      i_goal = users * (items + 1);
      i_budget = 4_000_000;
      i_fault_config =
        Some
          {
            Fault_inject.default_config with
            Fault_inject.horizon_cycles = 400_000;
            n_irqs = 2;
            n_flips = 0;
            n_stalls = 0;
            n_drops = 0;
            n_cas_fails = 0;
            n_code_flips = 4;
            code_regions = [ hot_region ];
            irq_choices = [ (Mmio_map.timer_level, Mmio_map.timer_vector) ];
            flip_len = 0;
          };
      i_progress = progress;
      i_agitate = Some agitate;
      i_check = check;
      i_final = final;
      i_sabotage =
        Some
          (fun () ->
            match Kernel.find_region k entry0 with
            | Some r ->
              Fault_inject.corrupt_code m ~addr:r.Kernel.cr_entry ~bit:3;
              k.Kernel.code_regions <-
                List.filter (fun r' -> r' != r) k.Kernel.code_regions
            | None -> failwith "synthcache: no region to sabotage");
    }
  in
  { sub_name = "synthcache"; sub_build = build }

(* ---------------------------------------------------------------- *)
(* Subject 6: kSMP — several cores over one shared memory *)

(* A seed-picked queue kind with its producers/consumers pinned
   round-robin across 2–4 cores, one spinning filler thread per core,
   and a work-stealer device on every core.  Agitation skews core
   clocks ([Machine.stall_core]), forces steals and migrations, and
   posts cross-core quantum-timer preemptions; the fault plan adds
   core-targeted spurious interrupts and core stalls on top.

   Invariants, checked at every forced preemption: every per-core
   ready ring closes and matches the host mirror ([Ready_queue.verify]
   walks all rings), each core's current thread is homed on that core
   and alive, and each core's idle thread stays pinned.  The final
   check adds the full queue ledger (no loss, no duplication, no
   corruption, per-producer FIFO) — now asserted across genuinely
   concurrent cores rather than interleaved threads on one.

   Sabotage arms a rogue migration: at the next agitation point the
   dispatch guard is skipped ([Smp.unsafe_skip_guard]) and another
   core's *current* thread is migrated while its context lives in that
   core's registers — the per-core current-consistency check must
   catch it. *)
let smp_subject ?cores () =
  let build ~seed =
    let cores =
      match cores with
      | Some c -> max 2 (min c Machine.max_cores)
      | None -> 2 + (mix seed 0x51ed mod 3)
    in
    let kind =
      List.nth
        [ Kqueue.Spsc; Kqueue.Mpsc; Kqueue.Spmc; Kqueue.Mpmc ]
        (mix seed 0x4b mod 4)
    in
    let items = 24 in
    let b = observed_boot ~cores () in
    let k = b.Boot.kernel in
    let m = k.Kernel.machine in
    Machine.set_schedule_seed m seed;
    let consumed, queue_final, _, producers, _ =
      queue_workload b ~items ~kind ~cores
    in
    (* one spinning filler per core: ready work for the stealers and a
       non-idle current thread on every core *)
    let alloc = k.Kernel.alloc in
    let fill_cells = Kalloc.alloc_zeroed alloc Machine.max_cores in
    let fillers =
      Array.init cores (fun c ->
          let body =
            [
              I.Label "loop";
              I.Alu_mem (I.Add, I.Imm 1, I.Abs (fill_cells + c));
              I.B (I.Always, I.To_label "loop");
            ]
          in
          let entry, _ = Asm.assemble m body in
          Thread.create k ~cpu:c ~entry ~quantum_us:400
            ~segments:[ (fill_cells, Machine.max_cores) ] ())
    in
    for c = 0 to cores - 1 do
      ignore (Smp.install_stealer k ~cpu:c ())
    done;
    (* sabotage arms the rogue migration; the next agitation point
       fires it (it needs a victim core whose current thread is a real
       ready thread, which one agitation step may not have) *)
    let sab_pending = ref false in
    let rogue_migrate () =
      let fired = ref false in
      for c = 0 to cores - 1 do
        if not !fired then
          match Kernel.current ~cpu:c k with
          | Some t
            when t.Kernel.state = Kernel.Ready
                 && Ready_queue.in_queue t
                 && not (Kernel.is_idle k t) ->
            Smp.unsafe_skip_guard := true;
            let moved = Smp.migrate k t ~cpu:((c + 1) mod cores) in
            Smp.unsafe_skip_guard := false;
            if moved then fired := true
          | _ -> ()
      done;
      !fired
    in
    let agitate step =
      if !sab_pending then begin
        if rogue_migrate () then sab_pending := false
      end
      else begin
        let r = mix seed (0x2000 + step) in
        let c = r mod cores in
        match (r lsr 8) mod 6 with
        | 0 -> Machine.stall_core m ~cpu:c ~cycles:(200 + ((r lsr 16) mod 2_000))
        | 1 -> ignore (Smp.steal k ~thief:c)
        | 2 ->
          Machine.post_interrupt ~source:"explorer" ~cpu:c m
            ~level:Mmio_map.timer_level ~vector:Mmio_map.timer_vector
        | 3 ->
          ignore (Smp.migrate k fillers.((r lsr 12) mod cores) ~cpu:c)
        | _ -> ()
      end
    in
    let check () =
      let v = ref [] in
      let violate fmt = Fmt.kstr (fun s -> v := s :: !v) fmt in
      if not (Ready_queue.verify k) then
        violate "ready ring verify failed (ring/mirror mismatch)";
      for c = 0 to cores - 1 do
        (match Kernel.current ~cpu:c k with
        | Some t ->
          if t.Kernel.state = Kernel.Zombie then
            violate "dead thread %d holds cpu %d" t.Kernel.tid c
          else if t.Kernel.cpu <> c then
            violate "cpu %d is running thread %d homed on cpu %d" c
              t.Kernel.tid t.Kernel.cpu
        | None -> ());
        match Kernel.idle_of k c with
        | Some i ->
          if i.Kernel.cpu <> c then
            violate "idle thread of cpu %d migrated to cpu %d" c i.Kernel.cpu
        | None -> violate "cpu %d lost its idle thread" c
      done;
      List.rev !v
    in
    {
      i_boot = b;
      i_goal = producers * items;
      i_budget = 12_000_000;
      i_fault_config =
        Some
          {
            (explorer_config ()) with
            Fault_inject.irq_cpus = List.init cores (fun c -> c);
            n_core_stalls = 2;
            core_stall_cpus = List.init cores (fun c -> c);
            core_stall_cycles = 10_000;
          };
      i_progress = consumed;
      i_agitate = Some agitate;
      i_check = check;
      i_final = (fun () -> check () @ queue_final ());
      i_sabotage = Some (fun () -> sab_pending := true);
    }
  in
  { sub_name = "smp"; sub_build = build }

(* ---------------------------------------------------------------- *)
(* Subject 7: kserve — an accept/request/close storm over the NIC *)

(* A small kserve instance under a seeded client storm while the fault
   plan posts spurious NIC interrupts (level-1 autovector; the stray
   handler must absorb them), stalls and drops the card's service
   tick, and skews core clocks on SMP boots.  A dropped tick parks the
   card until something re-kicks it, so the agitation hook doubles as
   the watchdog: it reschedules the "nic" machine device, the same
   recovery a driver's timeout path performs.

   Invariants, at every forced preemption: the load generator's
   double-entry ledger stays exactly-once (no response matches nothing
   in flight, no protocol errors — nothing in this mix may duplicate
   or corrupt a frame), received never exceeds sent, and the slot
   accounting closes (accepts − closes = slots in use ≤ table size).
   The final check adds completion: every session ended served or
   refused, none abandoned.

   Sabotage arms a one-shot duplicate against the card's next tx frame
   ([Machine.frame_fault]): the client sees the same response twice
   and the exactly-once ledger must catch the second copy. *)
let serve_subject =
  let build ~seed =
    let cores = 1 + (mix seed 0x5e7 mod 3) in
    let b = observed_boot ~cores () in
    let k = b.Boot.kernel in
    let m = k.Kernel.machine in
    Machine.set_schedule_seed m seed;
    let srv =
      Kserve.create
        ~config:
          {
            Kserve.default_config with
            Kserve.cfg_workers = (if mix seed 0x77 mod 2 = 0 then 1 else 2);
            cfg_slots = 16;
            cfg_files = 4;
            (* every session is closed-loop (≤ 1 request in flight), so
               a ring wider than the client count can never overrun —
               which makes "no rx overruns" a checkable invariant even
               while fault stalls park the rx pump *)
            cfg_ring_len = 32;
            cfg_queue_size = 16;
          }
        b
    in
    let clients = 24 in
    let lg =
      Loadgen.create
        ~config:
          {
            Loadgen.default_config with
            Loadgen.lg_clients = clients;
            lg_reqs_per_session = 3;
            lg_rate_per_ms = 30.0;
            lg_seed = mix seed 0x10ad;
          }
        ~on_complete:(fun () -> Kserve.shutdown srv)
        srv
    in
    let progress () =
      Loadgen.completed lg + Loadgen.refused lg + Loadgen.abandoned lg
    in
    let agitate _step =
      (* watchdog re-kick: recovers the card from a dropped tick *)
      match Machine.find_device m "nic" with
      | Some d -> Machine.device_schedule m d (Machine.cycles m + 100)
      | None -> ()
    in
    let check () =
      let v = ref [] in
      let violate fmt = Fmt.kstr (fun s -> v := s :: !v) fmt in
      if Loadgen.duplicates lg > 0 then
        violate "ledger: %d responses matched nothing in flight"
          (Loadgen.duplicates lg);
      if Loadgen.errors lg > 0 then
        violate "ledger: %d protocol errors" (Loadgen.errors lg);
      if Loadgen.received lg > Loadgen.sent lg then
        violate "ledger: received %d > sent %d" (Loadgen.received lg)
          (Loadgen.sent lg);
      let st = Kserve.stats srv in
      let in_use = Kserve.open_slots srv in
      if st.Kserve.n_accepts - st.Kserve.n_closes <> in_use then
        violate "slots: accepts %d - closes %d <> %d in use"
          st.Kserve.n_accepts st.Kserve.n_closes in_use;
      if in_use > (Kserve.config srv).Kserve.cfg_slots then
        violate "slots: %d in use overflows the table" in_use;
      let nst = Devices.Nic.stats (Kserve.nic srv) in
      if nst.Devices.Nic.s_rx_overruns > 0 then
        violate "nic: %d rx overruns with a ring wider than the client count"
          nst.Devices.Nic.s_rx_overruns;
      List.rev !v
    in
    let final () =
      check ()
      @ (if Loadgen.abandoned lg > 0 then
           [ Fmt.str "%d sessions abandoned" (Loadgen.abandoned lg) ]
         else [])
      @
      if Loadgen.completed lg + Loadgen.refused lg <> clients then
        [
          Fmt.str "sessions unaccounted: %d served + %d refused of %d"
            (Loadgen.completed lg) (Loadgen.refused lg) clients;
        ]
      else []
    in
    {
      i_boot = b;
      i_goal = clients;
      i_budget = 30_000_000;
      i_fault_config =
        Some
          {
            (explorer_config ()) with
            Fault_inject.n_irqs = 4;
            irq_choices =
              [
                (Mmio_map.timer_level, Mmio_map.timer_vector);
                (Mmio_map.nic_level, Mmio_map.nic_vector);
              ];
            n_stalls = 2;
            n_drops = 2;
            stall_devices = [ "nic" ];
            n_core_stalls = (if cores > 1 then 2 else 0);
            core_stall_cpus = List.init cores (fun c -> c);
            core_stall_cycles = 10_000;
          };
      i_progress = progress;
      i_agitate = Some agitate;
      i_check = check;
      i_final = final;
      i_sabotage =
        Some (fun () -> Machine.frame_fault m ~device:"nic" ~dir:1 ~kind:1);
    }
  in
  { sub_name = "serve"; sub_build = build }

let subjects =
  [
    ready_queue_subject;
    kpipe_subject;
    disk_subject;
    codeflip_subject;
    synthcache_subject;
    smp_subject ();
    serve_subject;
  ]

(* ---------------------------------------------------------------- *)
(* kcrash: the crash-point explorer *)

(* Power-cut crash consistency of the disk file system, explored
   exhaustively.  One *recording* run executes a seeded workload on a
   journaling device (every write that reaches the platter is logged
   in commit order).  Because the disk server keeps exactly one
   request in flight, the legal completion subsets at a power cut are
   precisely the prefixes of that journal — including every reordering
   the elevator actually chose — plus a prefix-torn variant of the
   next write.  Each such crash state is then loaded into a fresh
   machine, rebooted through [Boot.at_boot] (so intent-log recovery
   runs as part of boot), and checked against the family's litmus
   predicate.  A final device-level cut ([Fault_inject.Power_cut] at a
   seeded cycle mid-workload) exercises the same states end to end
   through the powered-off device.

   Litmus families:
   - create-rename: write new content to a temp file, rename over the
     old — the renamed file must be exactly old or new, never
     zero-length, never garbage;
   - prefix-append: append twice — the old prefix stays intact and the
     length never runs ahead of the data (no garbage past the old
     size);
   - replace: overwrite a multi-block file with same-length different
     content — readers see exactly old or new, never a torn mix.

   The [Dfs.mechanisms] toggles make the runs falsifiable: with
   barriers off the first two families must fail (metadata outruns
   data still dirty in the cache); with the intent log off, replace
   must fail (in-place tearing).  The CLI asserts both directions. *)

type crash_family = Create_rename | Prefix_append | Replace

let crash_families = [ Create_rename; Prefix_append; Replace ]

let crash_family_name = function
  | Create_rename -> "create-rename"
  | Prefix_append -> "prefix-append"
  | Replace -> "replace"

type crash_result = {
  c_family : string;
  c_seed : int;
  c_barriers : bool;
  c_journal : bool;
  c_states : int; (* crash states explored (cut points + torn + live cut) *)
  c_torn : int; (* of which torn-write variants *)
  c_journal_len : int; (* platter writes recorded by the workload *)
  c_replays : int; (* intent-log replays across all reboots *)
  c_live_cut : bool; (* the device-level power cut actually fired *)
  c_violations : string list;
  c_trace_hash : int;
  c_report : string option; (* forensic text when any litmus failed *)
}

let bwords = Disk_server.block_words

(* Nonzero seeded words, so fresh-run zeros and torn garbage can never
   masquerade as real content. *)
let crash_content seed salt n =
  Array.init n (fun i -> 1 + (mix seed (salt + i) land 0x3FFF))

type crash_workload = {
  w_files : (string * int array) list;
  w_caps : (string * int) list;
  w_ops : Dfs.t -> unit;
  w_check : Dfs.t -> string list;
  w_final_file : string; (* read from a thread in the final state *)
  w_final_content : int array;
}

let slice_eq c ~at expect =
  let bad = ref (-1) in
  Array.iteri
    (fun i v -> if !bad < 0 && c.(at + i) <> v then bad := at + i)
    expect;
  !bad

let crash_workload family ~seed =
  match family with
  | Create_rename ->
    let na = bwords + 1 + (mix seed 3 mod bwords) in
    let nb = bwords + 1 + (mix seed 5 mod bwords) in
    let a = crash_content seed 0x1000 na in
    let b = crash_content seed 0x2000 nb in
    {
      w_files = [ ("f", a) ];
      w_caps = [];
      w_ops =
        (fun dfs ->
          ignore
            (Dfs.create dfs "f.tmp" ~capacity_blocks:((nb + bwords - 1) / bwords));
          Dfs.append dfs "f.tmp" b;
          Dfs.rename dfs ~from_:"f.tmp" ~to_:"f";
          Dfs.sync dfs);
      w_check =
        (fun dfs ->
          match Dfs.read_file dfs "f" with
          | None -> [ "\"f\" unreadable after reboot" ]
          | Some c when Array.length c = 0 -> [ "renamed file has zero length" ]
          | Some c when c <> a && c <> b ->
            [ Fmt.str "\"f\" is neither old nor new (%d words)" (Array.length c) ]
          | Some _ -> []);
      w_final_file = "f";
      w_final_content = b;
    }
  | Prefix_append ->
    (* old length deliberately not block-aligned: the tail block is
       rewritten by the first append, the classic torn spot *)
    let na = bwords + 7 + (mix seed 3 mod (bwords / 2)) in
    let n1 = (bwords / 2) + (mix seed 5 mod bwords) in
    let n2 = (bwords / 2) + (mix seed 7 mod bwords) in
    let a = crash_content seed 0x1000 na in
    let b1 = crash_content seed 0x2000 n1 in
    let b2 = crash_content seed 0x3000 n2 in
    {
      w_files = [ ("log", a) ];
      w_caps = [ ("log", (na + n1 + n2 + bwords - 1) / bwords) ];
      w_ops =
        (fun dfs ->
          Dfs.append dfs "log" b1;
          Dfs.append dfs "log" b2;
          Dfs.sync dfs);
      w_check =
        (fun dfs ->
          match Dfs.find dfs "log" with
          | None -> [ "\"log\" missing after reboot" ]
          | Some f ->
            let l = f.Dfs.df_words in
            if l <> na && l <> na + n1 && l <> na + n1 + n2 then
              [ Fmt.str "impossible length %d (legal: %d/%d/%d)" l na (na + n1)
                  (na + n1 + n2) ]
            else (
              match Dfs.read_file dfs "log" with
              | None -> [ "\"log\" unreadable after reboot" ]
              | Some c ->
                let p = slice_eq c ~at:0 a in
                if p >= 0 then [ Fmt.str "old prefix damaged at word %d" p ]
                else
                  let p1 =
                    if l >= na + n1 then slice_eq c ~at:na b1 else -1
                  in
                  if p1 >= 0 then
                    [ Fmt.str "garbage past the old size at word %d" p1 ]
                  else
                    let p2 =
                      if l = na + n1 + n2 then slice_eq c ~at:(na + n1) b2
                      else -1
                    in
                    if p2 >= 0 then
                      [ Fmt.str "garbage past the old size at word %d" p2 ]
                    else []));
      w_final_file = "log";
      w_final_content = Array.concat [ a; b1; b2 ];
    }
  | Replace ->
    let n = (2 * bwords) + 37 + (mix seed 3 mod bwords) in
    let a = crash_content seed 0x1000 n in
    let b = crash_content seed 0x2000 n in
    {
      w_files = [ ("cfg", a) ];
      w_caps = [];
      w_ops =
        (fun dfs ->
          Dfs.replace dfs "cfg" b;
          Dfs.sync dfs);
      w_check =
        (fun dfs ->
          match Dfs.read_file dfs "cfg" with
          | None -> [ "\"cfg\" unreadable after reboot" ]
          | Some c when c <> a && c <> b ->
            [ "torn mix: \"cfg\" is neither old nor new" ]
          | Some _ -> []);
      w_final_file = "cfg";
      w_final_content = b;
    }

(* Start the idle thread so host-driven synchronous disk waits can
   take completion interrupts. *)
let start_idle k =
  let m = k.Kernel.machine in
  match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 0;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> invalid_arg "crash explorer: no idle thread"

(* The recording run: format, mount, settle, then execute the workload
   on a journaling device.  Returns the pre-workload platter image,
   the commit-ordered write journal, and the cycles the workload took
   (the live-cut run aims its power cut inside that window). *)
let crash_record family ~seed ~mech =
  let w = crash_workload family ~seed in
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  Dfs.format k ~capacities:w.w_caps ~files:w.w_files ();
  let ds = Disk_server.install k () in
  start_idle k;
  let dfs = Dfs.mount ~mechanisms:mech ~budget:20_000_000 b.Boot.vfs ds in
  Dfs.sync dfs;
  let disk = k.Kernel.disk in
  let img0 = Devices.Disk.image disk in
  Devices.Disk.set_journaling disk true;
  let c0 = Machine.cycles k.Kernel.machine in
  w.w_ops dfs;
  let op_cycles = Machine.cycles k.Kernel.machine - c0 in
  (w, img0, Devices.Disk.journal disk, op_cycles)

(* Boot a fresh machine on a crash-state image; recovery and the mount
   run through [Boot.at_boot], then the litmus predicate examines the
   file system host-side.  [expect_read] additionally runs a user
   thread that opens the file through the vfs and streams it through
   the re-synthesized read path — proof that Ksynth rebuilds the fast
   path from its recipes after a crash.  Returns (violations,
   intent-log replays). *)
let crash_reboot ~img ~check ?expect_read () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  Devices.Disk.load_image k.Kernel.disk img;
  let ds = Disk_server.install k () in
  let get = Dfs.mount_at_boot ~budget:20_000_000 b b.Boot.vfs ds in
  let reader =
    match expect_read with
    | None -> None
    | Some (name, content) ->
      let len = Array.length content in
      let region = Kalloc.alloc_zeroed k.Kernel.alloc (128 + len + bwords) in
      let count_cell = region + 32 in
      let buf = region + 64 in
      String.iteri
        (fun i c -> Machine.poke m (region + i) (Char.code c))
        ("/disk/" ^ name);
      let prog =
        [
          I.Move (I.Imm region, I.Reg I.r1);
          I.Trap 3;
          I.Move (I.Reg I.r0, I.Reg I.r13);
          I.Move (I.Imm 0, I.Reg I.r12);
          I.Label "loop";
          I.Move (I.Reg I.r13, I.Reg I.r1);
          I.Move (I.Imm buf, I.Reg I.r2);
          I.Alu (I.Add, I.Reg I.r12, I.r2);
          I.Move (I.Imm 128, I.Reg I.r3);
          I.Trap 1; (* blocks on cache misses, EOF returns 0 *)
          I.Tst (I.Reg I.r0);
          I.B (I.Eq, I.To_label "done");
          I.Alu (I.Add, I.Reg I.r0, I.r12);
          I.B (I.Always, I.To_label "loop");
          I.Label "done";
          I.Move (I.Reg I.r12, I.Abs count_cell);
          I.Trap 0;
        ]
      in
      let entry, _ = Asm.assemble m prog in
      ignore
        (Thread.create k ~entry ~segments:[ (region, 128 + len + bwords) ] ());
      Some (count_cell, buf, content)
  in
  let viol = ref [] in
  (try
     match Boot.go ~max_insns:400_000_000 b with
     | Machine.Halted -> ()
     | Machine.Insn_limit -> viol := [ "reboot did not settle" ]
   with Failure msg -> viol := [ "mount: " ^ msg ]);
  (* [go] leaves the machine halted; un-halt so the host-side litmus
     reads can take completion interrupts through the idle thread *)
  Machine.set_halted m false;
  let replays = Metrics.read k.Kernel.metrics "dfs.replays" in
  (match get () with
  | None -> if !viol = [] then viol := [ "mount never ran at boot" ]
  | Some dfs ->
    viol := !viol @ check dfs;
    (match reader with
    | None -> ()
    | Some (count_cell, buf, content) ->
      let n = Machine.peek m count_cell in
      if n <> Array.length content then
        viol :=
          !viol
          @ [
              Fmt.str "synthesized read returned %d of %d words" n
                (Array.length content);
            ]
      else
        let bad = ref (-1) in
        for i = Array.length content - 1 downto 0 do
          if Machine.peek m (buf + i) <> content.(i) then bad := i
        done;
        if !bad >= 0 then
          viol :=
            !viol
            @ [ Fmt.str "synthesized read data mismatch at word %d" !bad ]));
  (List.rev (List.rev !viol), replays)

(* Enumerate crash states: every journal prefix, plus one seeded
   prefix-torn variant of each next write.  [(tag, image, torn,
   final)]; the final full-journal state carries the thread-read
   check. *)
let crash_states img0 journal ~seed =
  let arr = Array.of_list journal in
  let len = Array.length arr in
  let base i =
    let img = Array.map Array.copy img0 in
    for j = 0 to i - 1 do
      let blk, data = arr.(j) in
      img.(blk) <- Array.copy data
    done;
    img
  in
  let cuts =
    List.init (len + 1) (fun i ->
        (Fmt.str "cut@%d" i, base i, false, i = len))
  in
  let torn =
    List.init len (fun i ->
        let blk, data = arr.(i) in
        let img = base i in
        let tw = 1 + (mix seed (0x700 + i) mod (bwords - 1)) in
        let cur = img.(blk) in
        img.(blk) <-
          Array.init bwords (fun j -> if j < tw then data.(j) else cur.(j));
        (Fmt.str "cut@%d+torn%d" i tw, img, true, false))
  in
  cuts @ torn

(* The device-level run: same workload, but a [Power_cut] fault fires
   at a seeded cycle inside the workload window — in-flight request
   partitioned into platter/lost by the device itself, then reboot and
   litmus as above. *)
let crash_live_cut family ~seed ~mech ~op_cycles =
  let w = crash_workload family ~seed in
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  Dfs.format k ~capacities:w.w_caps ~files:w.w_files ();
  let ds = Disk_server.install k () in
  start_idle k;
  (* a short budget: once the device is dead, synchronous waits must
     give up quickly instead of spinning out the full default *)
  let dfs = Dfs.mount ~mechanisms:mech ~budget:3_000_000 b.Boot.vfs ds in
  Dfs.sync dfs;
  let cut_after = 1 + (mix seed 17 mod max 1 op_cycles) in
  let torn_words = (mix seed 23 mod (bwords + 2)) - 1 in
  let fi =
    Fault_inject.arm m
      (Fault_inject.make_plan ~seed
         [
           {
             Fault_inject.ev_after = cut_after;
             ev_action = Fault_inject.Power_cut { device = "disk"; torn_words };
           };
         ])
  in
  (try w.w_ops dfs with Failure _ | Invalid_argument _ -> ());
  Fault_inject.disarm m fi;
  let fired = not (Devices.Disk.powered k.Kernel.disk) in
  (w, Devices.Disk.image k.Kernel.disk, fired)

let run_crash ?(mechanisms = Dfs.all_mechanisms) family ~seed () =
  let name = crash_family_name family in
  let w, img0, journal, op_cycles = crash_record family ~seed ~mech:mechanisms in
  let hash = ref (mix seed 0xC4A5) in
  let fold v = hash := mix !hash (v land max_int) in
  fold (List.length journal);
  List.iter
    (fun (blk, data) ->
      fold blk;
      fold data.(0);
      fold data.(bwords - 1))
    journal;
  let nviol = ref 0 in
  let violations = ref [] in
  let add tag vs =
    List.iter
      (fun v ->
        incr nviol;
        if !nviol <= 16 then violations := Fmt.str "%s: %s" tag v :: !violations)
      vs
  in
  let states = crash_states img0 journal ~seed in
  let explored = ref 0 in
  let torn = ref 0 in
  let replays = ref 0 in
  List.iter
    (fun (tag, img, is_torn, is_final) ->
      (* a mechanism-disabled run only needs the existence of a
         violating state; cap the reboots once the verdict is in *)
      if !nviol < 5 then begin
        incr explored;
        if is_torn then incr torn;
        let expect_read =
          if is_final then Some (w.w_final_file, w.w_final_content) else None
        in
        let vs, rp = crash_reboot ~img ~check:w.w_check ?expect_read () in
        replays := !replays + rp;
        add tag vs;
        fold (Hashtbl.hash tag);
        fold (List.length vs);
        fold rp
      end)
    states;
  let live_fired =
    if !nviol < 5 then begin
      let w2, limg, fired =
        crash_live_cut family ~seed ~mech:mechanisms ~op_cycles
      in
      incr explored;
      let vs, rp = crash_reboot ~img:limg ~check:w2.w_check () in
      replays := !replays + rp;
      add "live-cut" vs;
      fold (List.length vs);
      fold (Bool.to_int fired);
      fired
    end
    else false
  in
  let violations = List.rev !violations in
  let report =
    if violations = [] then None
    else
      Some
        (Fmt.str
           "kcrash litmus failure@.family: %s@.seed: %d@.mechanisms: \
            barriers=%b journal=%b@.journal (%d platter writes, commit \
            order): %s@.states explored: %d (%d torn)@.violations:@.%s@."
           name seed mechanisms.Dfs.m_barriers mechanisms.Dfs.m_journal
           (List.length journal)
           (String.concat " "
              (List.map (fun (blk, _) -> string_of_int blk) journal))
           !explored !torn
           (String.concat "\n" (List.map (fun v -> "  " ^ v) violations)))
  in
  {
    c_family = name;
    c_seed = seed;
    c_barriers = mechanisms.Dfs.m_barriers;
    c_journal = mechanisms.Dfs.m_journal;
    c_states = !explored;
    c_torn = !torn;
    c_journal_len = List.length journal;
    c_replays = !replays;
    c_live_cut = live_fired;
    c_violations = violations;
    c_trace_hash = !hash;
    c_report = report;
  }

(* ---------------------------------------------------------------- *)
(* Targeted recovery scenarios *)

type timer_loss_result = {
  tl_seed : int;
  tl_drop_cycle : int; (* when the quantum-timer completion was lost *)
  tl_stall_cycles : int; (* flow outage observed around the drop *)
  tl_recovery_cycles : int; (* drop -> first consumed item after it *)
  tl_restarts : int; (* watchdog restart actions taken *)
  tl_consumed : int;
}

(* Lose a quantum-timer completion under spinning (non-yielding)
   producer/consumer threads: the running thread then owns the CPU
   forever — the classic lost-interrupt livelock.  The flow-rate
   watchdog notices the consumer's counter flat-lining and re-arms the
   timer, and the stale-deadline check in [Devices.Timer.arm] lets the
   re-arm through.  Returns the measured recovery latency. *)
let timer_loss ?(seed = 1) () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let q = Kqueue.create ~kind:Kqueue.Mpsc k ~name:"tl/q" ~size:8 in
  let alloc = k.Kernel.alloc in
  let counts = Kalloc.alloc_zeroed alloc 4 in
  let segments =
    [ (q.Kqueue.q_desc, 16); (q.Kqueue.q_buf, 8); (q.Kqueue.q_flag, 8);
      (counts, 4) ]
  in
  (* endless producer: seq wraps at 16 bits, tag 1 *)
  let prod =
    [
      I.Move (I.Imm 0, I.Reg I.r8);
      I.Label "loop";
      I.Move (I.Imm (1 lsl 16), I.Reg I.r1);
      I.Alu (I.Add, I.Reg I.r8, I.r1);
      I.Label "again";
      I.Jsr (I.To_addr q.Kqueue.q_put);
      I.Tst (I.Reg I.r0);
      I.B (I.Eq, I.To_label "again");
      I.Alu (I.Add, I.Imm 1, I.r8);
      I.Alu (I.And, I.Imm 0xFFFF, I.r8);
      I.B (I.Always, I.To_label "loop");
    ]
  in
  let cons =
    [
      I.Label "loop";
      I.Jsr (I.To_addr q.Kqueue.q_get);
      I.Tst (I.Reg I.r0);
      I.B (I.Eq, I.To_label "loop");
      I.Alu_mem (I.Add, I.Imm 1, I.Abs counts);
      I.B (I.Always, I.To_label "loop");
    ]
  in
  let pe, _ = Asm.assemble m prod in
  let ce, _ = Asm.assemble m cons in
  ignore (Thread.create k ~entry:pe ~quantum_us:500 ~segments ());
  ignore (Thread.create k ~entry:ce ~quantum_us:500 ~segments ());
  let wd = Watchdog.install k ~period_us:2_000.0 () in
  let flow =
    Watchdog.watch wd ~name:"tl/consumer" ~threshold:3
      ~read:(fun () -> Machine.peek m counts)
      ~restart:(fun () -> Devices.Timer.arm k.Kernel.timer ~us:200.0)
      ()
  in
  enter_scheduler k;
  (* drop the timer completion somewhere inside steady-state flow *)
  let drop_after = 30_000 + (mix seed 11 mod 20_000) in
  let fi =
    Fault_inject.arm m
      (Fault_inject.make_plan ~seed
         [
           {
             Fault_inject.ev_after = drop_after;
             ev_action = Fault_inject.Drop_completion { device = "timer" };
           };
         ])
  in
  let arm_cycle = Machine.cycles m in
  let budget = 8_000_000 in
  let last_count = ref 0 in
  let last_change_cycle = ref arm_cycle in
  let drop_cycle = arm_cycle + drop_after in
  let recovery = ref 0 in
  let stall = ref 0 in
  let rec loop n =
    if n > budget then ()
    else begin
      let c = Machine.peek m counts in
      if c <> !last_count then begin
        let now = Machine.cycles m in
        if now > drop_cycle && !recovery = 0 then begin
          recovery := now - drop_cycle;
          stall := now - !last_change_cycle
        end;
        last_count := c;
        last_change_cycle := now
      end;
      if !recovery = 0 then begin
        Machine.step m;
        loop (n + 1)
      end
    end
  in
  loop 0;
  Fault_inject.disarm m fi;
  Watchdog.stop wd;
  {
    tl_seed = seed;
    tl_drop_cycle = drop_cycle;
    tl_stall_cycles = !stall;
    tl_recovery_cycles = !recovery;
    tl_restarts = Watchdog.restarts flow;
    tl_consumed = Machine.peek m counts;
  }

type disk_fault_mode = Disk_stall | Disk_drop | Disk_bad_block

type disk_fault_result = {
  df_mode : disk_fault_mode;
  df_completed : bool; (* the read finally returned data *)
  df_tries : int; (* issues of the request (1 = no retry) *)
  df_timeouts : int;
  df_retries : int;
  df_failed : int;
  df_recovery_cycles : int; (* first issue -> completion, when retried *)
}

(* Stall, drop, or permanently fail a disk completion and watch the
   disk server's bounded-retry watchdog recover (or give up with
   status 2 instead of wedging the waiter forever). *)
let disk_fault ?(seed = 1) ~mode () =
  let b = Boot.boot () in
  let k = b.Boot.kernel in
  let m = k.Kernel.machine in
  let ds = Disk_server.install k ~timeout_us:4_000.0 ~max_tries:4 () in
  Devices.Disk.write_block k.Kernel.disk 7
    (Array.init Devices.Disk.block_words (fun i -> 7_000 + i));
  (* idle thread must be resumable so completion interrupts are taken *)
  (match Kernel.anchor k 0 with
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 0;
    Machine.set_pc m t.Kernel.sw_in_mmu
  | None -> invalid_arg "disk_fault: no idle thread");
  let block = match mode with Disk_bad_block -> 1 lsl 20 | _ -> 7 in
  let fi =
    match mode with
    | Disk_bad_block -> None (* the device itself errors: status 3 *)
    | Disk_stall ->
      (* push the completion past the watchdog timeout *)
      Some
        (Fault_inject.arm m
           (Fault_inject.make_plan ~seed
              [
                {
                  Fault_inject.ev_after = 10_000 + (mix seed 13 mod 10_000);
                  ev_action =
                    Fault_inject.Stall
                      { device = "disk"; delay_cycles = 600_000 };
                };
              ]))
    | Disk_drop ->
      Some
        (Fault_inject.arm m
           (Fault_inject.make_plan ~seed
              [
                {
                  Fault_inject.ev_after = 10_000 + (mix seed 13 mod 10_000);
                  ev_action = Fault_inject.Drop_completion { device = "disk" };
                };
              ]))
  in
  let r = Disk_server.read_block_sync ds block ~max_insns:20_000_000 in
  (match fi with Some f -> Fault_inject.disarm m f | None -> ());
  {
    df_mode = mode;
    df_completed = r <> None;
    df_tries = Disk_server.active_tries ds;
    df_timeouts = Disk_server.timeouts ds;
    df_retries = Disk_server.retries ds;
    df_failed = Disk_server.failed ds;
    df_recovery_cycles = Disk_server.last_recovery_cycles ds;
  }
