(* The kserve load generator: tens of thousands of simulated clients
   replaying open/read/write/close request streams against the NIC.

   Session starts are open-loop — exponential inter-arrival times
   (Poisson) with optional bursts — while each session is closed-loop:
   one request in flight, the next sent a think time after the
   previous response.  All randomness comes from a private seeded
   xorshift*, so a (seed, config) pair names one exact offered load.

   The generator is a machine device scheduled at the next event's
   cycle deadline; responses arrive through the NIC's tx sink.  Every
   send/receive is double-entry bookkeeping: a response that matches
   no in-flight request counts as a duplicate, a session that ends
   with a request outstanding counts as lost — the exactly-once
   ledger the fault-injection subject asserts over. *)

open Quamachine
open Synthesis

(* ------------------------------------------------------------------ *)
(* Deterministic randomness                                            *)
(* ------------------------------------------------------------------ *)

type rng = { mutable s : int }

let rng_make seed = { s = (if seed = 0 then 0x9E3779B1 else seed) }

let rng_next r =
  let x = r.s in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  r.s <- (if x = 0 then 0x9E3779B1 else x);
  x

let rng_int r n = if n <= 1 then 0 else rng_next r mod n

(* uniform in (0, 1] — never 0, so log is safe *)
let rng_unit r = float_of_int (1 + rng_int r 0x3FFF_FFFF) /. float_of_int 0x4000_0000

let rng_exp r ~mean = -.mean *. log (rng_unit r)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  lg_clients : int;  (* sessions to run *)
  lg_reqs_per_session : int;  (* data requests between open and close *)
  lg_rate_per_ms : float;  (* mean session arrivals per simulated ms *)
  lg_burst_every : int;  (* every nth arrival is a burst; 0 = off *)
  lg_burst_size : int;  (* extra sessions arriving at a burst instant *)
  lg_think_us : float;  (* mean gap between response and next request *)
  lg_write_1_in : int;  (* writes are 1-in-n of data requests; 0 = off *)
  lg_conn_ids : int;  (* connection-id pool (concurrency ceiling) *)
  lg_timeout_us : float;  (* resend after this long in flight; 0 = off *)
  lg_retries : int;  (* resends before the session is abandoned *)
  lg_seed : int;
}

let default_config =
  {
    lg_clients = 200;
    lg_reqs_per_session = 4;
    lg_rate_per_ms = 40.0;
    lg_burst_every = 8;
    lg_burst_size = 4;
    lg_think_us = 30.0;
    lg_write_1_in = 4;
    lg_conn_ids = 16000;
    lg_timeout_us = 0.0;
    lg_retries = 3;
    lg_seed = 0x10ad;
  }

(* ------------------------------------------------------------------ *)
(* Sessions and the event heap                                         *)
(* ------------------------------------------------------------------ *)

type phase = Opening | Running | Closing | Finished | Refused | Abandoned

type session = {
  mutable ss_conn : int;
  mutable ss_file : int;
  mutable ss_slot : int;  (* -1 until the open response lands *)
  mutable ss_phase : phase;
  mutable ss_remaining : int;  (* data requests still to send *)
  mutable ss_pending : bool;  (* a request is in flight *)
  mutable ss_sent_cycle : int;
  mutable ss_seq : int;  (* send/receive serial, invalidates timeouts *)
  mutable ss_last : int;  (* last request word, for resends *)
  mutable ss_tries : int;
}

type ev = Arrive | Next of session | Timeout of session * int

(* binary min-heap on (due-cycle, event) *)
type heap = { mutable h : (int * ev) array; mutable n : int }

let heap_make () = { h = Array.make 64 (0, Arrive); n = 0 }

let heap_push hp due ev =
  if hp.n = Array.length hp.h then begin
    let bigger = Array.make (2 * hp.n) (0, Arrive) in
    Array.blit hp.h 0 bigger 0 hp.n;
    hp.h <- bigger
  end;
  let i = ref hp.n in
  hp.n <- hp.n + 1;
  hp.h.(!i) <- (due, ev);
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if fst hp.h.(p) > fst hp.h.(!i) then begin
      let tmp = hp.h.(p) in
      hp.h.(p) <- hp.h.(!i);
      hp.h.(!i) <- tmp;
      i := p
    end
    else continue := false
  done

let heap_peek hp = if hp.n = 0 then None else Some (fst hp.h.(0))

let heap_pop_due hp ~now =
  if hp.n = 0 || fst hp.h.(0) > now then None
  else begin
    let top = hp.h.(0) in
    hp.n <- hp.n - 1;
    hp.h.(0) <- hp.h.(hp.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < hp.n && fst hp.h.(l) < fst hp.h.(!smallest) then smallest := l;
      if r < hp.n && fst hp.h.(r) < fst hp.h.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = hp.h.(!smallest) in
        hp.h.(!smallest) <- hp.h.(!i);
        hp.h.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some (snd top)
  end

(* ------------------------------------------------------------------ *)
(* The generator                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  lg_cfg : config;
  lg_srv : Kserve.t;
  lg_m : Machine.t;
  lg_rng : rng;
  lg_heap : heap;
  lg_by_conn : (int, session) Hashtbl.t;  (* awaiting the open response *)
  lg_by_slot : (int, session) Hashtbl.t;
  mutable lg_free_conns : int list;
  lg_latency : Histogram.t;  (* request round trips, cycles *)
  mutable lg_dev : Machine.device option;
  mutable lg_arrivals_left : int;
  mutable lg_sent : int;
  mutable lg_received : int;
  mutable lg_completed : int;
  mutable lg_refused : int;
  mutable lg_duplicates : int;  (* responses matching nothing in flight *)
  mutable lg_errors : int;  (* op_err responses to in-flight requests *)
  mutable lg_resent : int;  (* requests resent after a timeout *)
  mutable lg_abandoned : int;  (* sessions given up after max retries *)
  mutable lg_started_cycle : int;
  mutable lg_on_complete : (unit -> unit) option;
}

let us_cycles t us =
  max 1 (Cost.cycles_of_us (Machine.cost_model t.lg_m) (max 0.0 us))

let now t = Machine.cycles t.lg_m

let reschedule t =
  match (t.lg_dev, heap_peek t.lg_heap) with
  | Some d, Some due ->
    let due = max due (now t + 1) in
    if d.Machine.next_due > due then Machine.device_schedule t.lg_m d due
  | Some d, None -> Machine.device_idle t.lg_m d
  | None, _ -> ()

let inject t w =
  t.lg_sent <- t.lg_sent + 1;
  Devices.Nic.inject (Kserve.nic t.lg_srv) [| w |]

let think_gap t =
  us_cycles t (rng_exp t.lg_rng ~mean:t.lg_cfg.lg_think_us)

(* a session finished (or was refused): recycle its conn id and fire
   the completion callback after the last one *)
let finish t ss phase =
  ss.ss_phase <- phase;
  if ss.ss_slot >= 0 then Hashtbl.remove t.lg_by_slot ss.ss_slot;
  Hashtbl.remove t.lg_by_conn ss.ss_conn;
  t.lg_free_conns <- ss.ss_conn :: t.lg_free_conns;
  (match phase with
  | Refused -> t.lg_refused <- t.lg_refused + 1
  | Abandoned -> t.lg_abandoned <- t.lg_abandoned + 1
  | _ -> t.lg_completed <- t.lg_completed + 1);
  if
    t.lg_arrivals_left = 0
    && Hashtbl.length t.lg_by_conn = 0
    && Hashtbl.length t.lg_by_slot = 0
  then begin
    match t.lg_on_complete with
    | Some f ->
      t.lg_on_complete <- None;
      f ()
    | None -> ()
  end

let ss_seq_of ss = ss.ss_seq

(* arm (or rearm) the in-flight request and its timeout *)
let send_req t ss w =
  ss.ss_pending <- true;
  ss.ss_sent_cycle <- now t;
  ss.ss_last <- w;
  if t.lg_cfg.lg_timeout_us > 0.0 then
    heap_push t.lg_heap
      (now t + us_cycles t t.lg_cfg.lg_timeout_us)
      (Timeout (ss, ss_seq_of ss));
  inject t w

let send_next t ss =
  let cfg = t.lg_cfg in
  if ss.ss_remaining > 0 then begin
    ss.ss_remaining <- ss.ss_remaining - 1;
    let write =
      cfg.lg_write_1_in > 0 && rng_int t.lg_rng cfg.lg_write_1_in = 0
    in
    let w =
      if write then
        Kserve.pack ~id:ss.ss_slot ~op:Kserve.op_write
          ~arg:(rng_int t.lg_rng 0x8000)
      else Kserve.pack ~id:ss.ss_slot ~op:Kserve.op_read ~arg:0
    in
    ss.ss_seq <- ss.ss_seq + 1;
    ss.ss_tries <- 0;
    send_req t ss w
  end
  else begin
    ss.ss_phase <- Closing;
    ss.ss_seq <- ss.ss_seq + 1;
    ss.ss_tries <- 0;
    send_req t ss (Kserve.pack ~id:ss.ss_slot ~op:Kserve.op_close ~arg:0)
  end

let start_session t =
  match t.lg_free_conns with
  | [] ->
    (* conn-id pool exhausted: back off and retry *)
    heap_push t.lg_heap (now t + us_cycles t t.lg_cfg.lg_think_us) Arrive
  | conn :: rest ->
    t.lg_free_conns <- rest;
    t.lg_arrivals_left <- t.lg_arrivals_left - 1;
    let nfiles = (Kserve.config t.lg_srv).Kserve.cfg_files in
    let ss =
      {
        ss_conn = conn;
        ss_file = rng_int t.lg_rng nfiles;
        ss_slot = -1;
        ss_phase = Opening;
        ss_remaining = t.lg_cfg.lg_reqs_per_session;
        ss_pending = false;
        ss_sent_cycle = now t;
        ss_seq = 0;
        ss_last = 0;
        ss_tries = 0;
      }
    in
    Hashtbl.replace t.lg_by_conn conn ss;
    send_req t ss (Kserve.pack ~id:conn ~op:Kserve.op_open ~arg:ss.ss_file)

(* A request outlived its timeout: the usual cause is an admission
   shed (the server never saw it), so resend; after lg_retries the
   session is abandoned. *)
let handle_timeout t ss seq =
  if ss.ss_pending && ss.ss_seq = seq then begin
    if ss.ss_tries < t.lg_cfg.lg_retries then begin
      ss.ss_tries <- ss.ss_tries + 1;
      t.lg_resent <- t.lg_resent + 1;
      send_req t ss ss.ss_last
    end
    else begin
      ss.ss_pending <- false;
      finish t ss Abandoned
    end
  end

let handle_event t = function
  | Arrive -> start_session t
  | Next ss -> if ss.ss_phase = Running then send_next t ss
  | Timeout (ss, seq) -> handle_timeout t ss seq

let tick t =
  let rec drain () =
    match heap_pop_due t.lg_heap ~now:(now t) with
    | Some ev ->
      handle_event t ev;
      drain ()
    | None -> ()
  in
  drain ();
  reschedule t

(* a response landed on the wire (NIC tx sink) *)
let on_frame t frame =
  if Array.length frame > 0 then begin
    let w = frame.(0) in
    let op = Kserve.msg_op w in
    let id = Kserve.msg_id w in
    let data_resp ss =
      if not ss.ss_pending then t.lg_duplicates <- t.lg_duplicates + 1
      else begin
        ss.ss_pending <- false;
        ss.ss_seq <- ss.ss_seq + 1;
        t.lg_received <- t.lg_received + 1;
        Histogram.record t.lg_latency (now t - ss.ss_sent_cycle);
        if op = Kserve.op_err then t.lg_errors <- t.lg_errors + 1;
        if op = Kserve.op_close && ss.ss_phase = Closing then finish t ss Finished
        else begin
          ss.ss_phase <- Running;
          heap_push t.lg_heap (now t + think_gap t) (Next ss);
          reschedule t
        end
      end
    in
    if op = Kserve.op_open then begin
      (* matched by the echoed connection id *)
      match Hashtbl.find_opt t.lg_by_conn (Kserve.msg_arg w) with
      | Some ss when ss.ss_phase = Opening && ss.ss_pending ->
        ss.ss_pending <- false;
        ss.ss_seq <- ss.ss_seq + 1;
        ss.ss_slot <- id;
        ss.ss_phase <- Running;
        Hashtbl.replace t.lg_by_slot id ss;
        t.lg_received <- t.lg_received + 1;
        Histogram.record t.lg_latency (now t - ss.ss_sent_cycle);
        heap_push t.lg_heap (now t + think_gap t) (Next ss);
        reschedule t
      | _ -> t.lg_duplicates <- t.lg_duplicates + 1
    end
    else if op = Kserve.op_err && id = 0 then begin
      (* an open refused by admission/slot exhaustion *)
      match Hashtbl.find_opt t.lg_by_conn (Kserve.msg_arg w) with
      | Some ss when ss.ss_phase = Opening && ss.ss_pending ->
        ss.ss_pending <- false;
        ss.ss_seq <- ss.ss_seq + 1;
        t.lg_received <- t.lg_received + 1;
        finish t ss Refused
      | _ -> t.lg_duplicates <- t.lg_duplicates + 1
    end
    else begin
      match Hashtbl.find_opt t.lg_by_slot id with
      | Some ss -> data_resp ss
      | None -> t.lg_duplicates <- t.lg_duplicates + 1
    end
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?(config = default_config) ?on_complete srv =
  let k = Kserve.kernel srv in
  let m = k.Kernel.machine in
  let t =
    {
      lg_cfg = config;
      lg_srv = srv;
      lg_m = m;
      lg_rng = rng_make config.lg_seed;
      lg_heap = heap_make ();
      lg_by_conn = Hashtbl.create 256;
      lg_by_slot = Hashtbl.create 256;
      lg_free_conns =
        List.init (min config.lg_conn_ids Kserve.max_conn_id) (fun i -> i + 1);
      lg_latency = Histogram.create ();
      lg_dev = None;
      lg_arrivals_left = config.lg_clients;
      lg_sent = 0;
      lg_received = 0;
      lg_completed = 0;
      lg_refused = 0;
      lg_duplicates = 0;
      lg_errors = 0;
      lg_resent = 0;
      lg_abandoned = 0;
      lg_started_cycle = Machine.cycles m;
      lg_on_complete = on_complete;
    }
  in
  (* lay out the arrival process up front: exponential gaps, with a
     burst of simultaneous arrivals every lg_burst_every-th one *)
  let gap_us = 1000.0 /. (max 0.001 config.lg_rate_per_ms) in
  let at = ref (Machine.cycles m + 1) in
  let planned = ref 0 in
  let arrival = ref 0 in
  while !planned < config.lg_clients do
    arrival := !arrival + 1;
    let burst =
      if config.lg_burst_every > 0 && !arrival mod config.lg_burst_every = 0
      then 1 + config.lg_burst_size
      else 1
    in
    let n = min burst (config.lg_clients - !planned) in
    for _ = 1 to n do
      heap_push t.lg_heap !at Arrive
    done;
    planned := !planned + n;
    at := !at + us_cycles t (rng_exp t.lg_rng ~mean:gap_us)
  done;
  Devices.Nic.set_tx_sink (Kserve.nic srv) (Some (fun f -> on_frame t f));
  let d =
    Machine.add_device m ~name:"loadgen"
      ~due:(Machine.cycles m + 1)
      ~tick:(fun _ -> tick t)
  in
  t.lg_dev <- Some d;
  t

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let finished t =
  t.lg_arrivals_left = 0
  && Hashtbl.length t.lg_by_conn = 0
  && Hashtbl.length t.lg_by_slot = 0

let latency t = t.lg_latency
let sent t = t.lg_sent
let received t = t.lg_received
let completed t = t.lg_completed
let refused t = t.lg_refused
let duplicates t = t.lg_duplicates
let errors t = t.lg_errors
let resent t = t.lg_resent
let abandoned t = t.lg_abandoned

(* requests sent whose responses have not arrived *)
let in_flight t =
  Hashtbl.fold (fun _ ss acc -> if ss.ss_pending then acc + 1 else acc)
    t.lg_by_conn 0
  + Hashtbl.fold (fun _ ss acc -> if ss.ss_pending then acc + 1 else acc)
      t.lg_by_slot 0

let elapsed_cycles t = now t - t.lg_started_cycle

(* completed data+control requests per million cycles *)
let throughput t =
  if elapsed_cycles t = 0 then 0.0
  else float_of_int t.lg_received *. 1e6 /. float_of_int (elapsed_cycles t)
