(** The kserve load generator: seeded open-loop session arrivals
    (Poisson plus bursts) over closed-loop sessions, each replaying an
    open / read / write / close request stream against the NIC.

    Runs as a machine device scheduled at event deadlines; responses
    arrive through the NIC's tx sink.  Deterministic per (seed,
    config).  Every send/receive is double-entry bookkeeping: a
    response matching no in-flight request counts as a {!duplicates},
    a session ending with a request outstanding shows up in
    {!in_flight} — the exactly-once ledger the fault-injection
    subject asserts over. *)

open Synthesis

type config = {
  lg_clients : int;  (** sessions to run *)
  lg_reqs_per_session : int;  (** data requests between open and close *)
  lg_rate_per_ms : float;  (** mean session arrivals per simulated ms *)
  lg_burst_every : int;  (** every nth arrival is a burst; 0 = off *)
  lg_burst_size : int;  (** extra sessions arriving at a burst instant *)
  lg_think_us : float;  (** mean gap between response and next request *)
  lg_write_1_in : int;  (** writes are 1-in-n of data requests; 0 = off *)
  lg_conn_ids : int;  (** connection-id pool (concurrency ceiling) *)
  lg_timeout_us : float;  (** resend after this long in flight; 0 = off *)
  lg_retries : int;  (** resends before the session is abandoned *)
  lg_seed : int;
}

val default_config : config

type t

(** Plan the arrival process, hook the NIC's tx sink, and register the
    generator device.  [on_complete] fires once, when the last session
    finishes (e.g. [fun () -> Kserve.shutdown srv]). *)
val create : ?config:config -> ?on_complete:(unit -> unit) -> Kserve.t -> t

(** All sessions done (arrived, served or refused, closed). *)
val finished : t -> bool

(** Request round trips, in cycles, across open/data/close. *)
val latency : t -> Histogram.t

val sent : t -> int
val received : t -> int
val completed : t -> int
val refused : t -> int

(** Responses that matched no in-flight request — 0 unless frames are
    duplicated or forged. *)
val duplicates : t -> int

(** [op_err] responses to in-flight requests. *)
val errors : t -> int

(** Requests resent after a timeout (shed by admission control). *)
val resent : t -> int

(** Sessions given up after exhausting retries. *)
val abandoned : t -> int

(** Requests sent whose responses have not arrived. *)
val in_flight : t -> int

val elapsed_cycles : t -> int

(** Responses received per million cycles. *)
val throughput : t -> float
