(** Measurement harness: runs the same Unix-ABI programs on the
    Synthesis kernel (through the UNIX emulator) and on the baseline
    kernel, and provides the microsecond instrumentation used by
    Tables 2–5 (the Quamachine's counters, §6.1). *)

open Quamachine

(** Timestamps: a host-call that records the cycle counter — the
    software twin of the Quamachine's microsecond interval timer. *)
module Stamps : sig
  type t = Machine.t * int * int list ref

  val create : Machine.t -> t

  (** The instruction to embed at each measurement point. *)
  val mark : t -> Insn.insn

  val cycles : t -> int list

  (** Intervals between consecutive stamps, in microseconds. *)
  val spans : t -> float list

  val clear : t -> unit
end

(** {1 Stepping helpers} *)

val run_until : Machine.t -> max_insns:int -> (unit -> bool) -> bool
val run_until_pc : Machine.t -> max_insns:int -> int -> bool
val run_until_user : Machine.t -> max_insns:int -> bool

(** {1 A booted Synthesis instance} (all servers, the emulator, the
    benchmark file, a populated user-data region, timestamps). *)

type synthesis_env = {
  s_boot : Synthesis.Boot.t;
  s_env : Programs.env;
  s_stamps : Machine.t * int * int list ref;
}

val synthesis_setup : ?cost:Cost.t -> ?file_content:int -> unit -> synthesis_env

(** Run a program to completion; returns elapsed simulated seconds.
    Fails loudly if any thread died of a fault. *)
val synthesis_run :
  ?max_insns:int -> ?quantum_us:int -> synthesis_env -> program:Insn.insn list -> float

(** {1 A booted baseline instance} *)

type baseline_env = { b_kernel : Baseline.t; b_env : Programs.env }

val baseline_setup : ?cost:Cost.t -> ?file_content:int -> unit -> baseline_env

val baseline_run :
  ?max_insns:int -> baseline_env -> program:Insn.insn list -> float

(** {1 The two-stage pipe pipeline}

    The shared observability workload: a producer thread writes
    [total] words into a pipe in 8-word bursts, a consumer reads and
    sums them.  Used by the ktrace/kperf CLI commands, the overhead
    benches, and the trace/profiler tests.  [build] on a freshly
    booted instance {e after} attaching tracing (probes are spliced at
    synthesis time); [run] executes it and verifies the checksum. *)

module Pipeline : sig
  type t = {
    pl_boot : Synthesis.Boot.t;
    pl_producer : Synthesis.Kernel.tte;
    pl_consumer : Synthesis.Kernel.tte;
    pl_result : int;  (** data address of the consumer's final sum *)
    pl_total : int;
  }

  val build : ?total:int -> ?cap:int -> Synthesis.Boot.t -> t
  val run : ?max_insns:int -> t -> unit
end

(** {1 Output helpers} *)

val header : string -> unit
val row4 : string -> string -> string -> string -> unit
val row3 : string -> string -> string -> unit
val us_str : float -> string
