(* Synthesis threads (§4).

   A thread's whole state lives in its TTE.  Creation fills the
   ~1 KiB TTE block and synthesizes the thread's private kernel code:
   context-switch procedures and per-thread read/write syscall
   dispatchers with the TTE's addresses folded in.  The thread
   operations — signal, start, stop, step, destroy — are cheap because
   they manipulate only the TTE and the executable ready queue. *)

open Quamachine
module I = Insn
module L = Layout.Tte

(* -------------------------------------------------------------- *)
(* Per-thread syscall dispatchers.

   `open` stores synthesized routine addresses in the caller's fd
   tables; the dispatcher for read (or write) is three instructions of
   bound check plus an indirect jump straight into the specialized
   routine (§5.3: "system calls are frequently customized for each
   thread"). *)

let dispatcher_template = Template.make ~name:"fd_dispatch" ~params:[ "fdtab" ]
    (fun p ->
      [
        I.Cmp (I.Imm L.max_fds, I.Reg I.r1); (* flags from fd - max *)
        I.B (I.Cc, I.To_label "bad"); (* unsigned fd >= max *)
        I.Move (I.Reg I.r1, I.Reg I.r4);
        I.Alu (I.Add, I.Imm (p "fdtab"), I.r4);
        I.Jmp (I.To_mem (I.Ind I.r4)); (* into the synthesized routine *)
        I.Label "bad";
        I.Move (I.Imm (-1), I.Reg I.r0);
        I.Rte;
      ])

(* -------------------------------------------------------------- *)
(* Creation (Table 3: ~142 us — ~100 us to fill the TTE, the rest is
   code synthesis) *)

let create k ?cpu ?(quantum_us = 200) ?(uses_fp = false) ?(segments = [])
    ?(ustack_words = 512) ?(system = false) ?share_map ~entry () =
  let m = k.Kernel.machine in
  (* home core: the creating core unless pinned explicitly *)
  let cpu =
    match cpu with
    | Some c ->
      if c < 0 || c >= Kernel.cores k then invalid_arg "Thread.create: bad cpu";
      c
    | None -> Kernel.this_cpu k
  in
  let tid = k.Kernel.next_tid in
  k.Kernel.next_tid <- tid + 1;
  let base = Kalloc.alloc_zeroed k.Kernel.alloc L.size_words in
  (* user stacks are not zero-filled: only the ~1 KiB TTE is (§6.3) *)
  let ustack = Kalloc.alloc k.Kernel.alloc ustack_words in
  (* Threads may share a quaspace (§2.1); sharing also selects the
     cheaper non-MMU switch-in path between them (§4.2). *)
  let map_id =
    match share_map with
    | Some (other : Kernel.tte) ->
      let id = other.Kernel.map_id in
      let existing = Machine.map_segments m ~id in
      Machine.define_map m ~id (((ustack, ustack_words) :: segments) @ existing);
      id
    | None ->
      Machine.define_map m ~id:tid ((ustack, ustack_words) :: segments);
      tid
  in
  let save = base + L.off_regs in
  let kstack_top = base + L.off_kstack + L.kstack_words in
  (* initial register image: user mode, empty stacks, PC at entry *)
  Machine.poke m (save + 15) kstack_top;
  Machine.poke m (save + 16) 0; (* SR: user mode, IPL 0 *)
  Machine.poke m (save + 17) entry;
  Machine.poke m (save + 18) (ustack + ustack_words);
  Machine.poke m (base + L.off_tid) tid;
  Machine.poke m (base + L.off_map) map_id;
  Machine.poke m (base + L.off_quantum) quantum_us;
  Machine.poke m (base + L.off_flags) (if uses_fp then 1 else 0);
  Machine.charge_refs m 8;
  (* vector table: the boot-time defaults *)
  for i = 0 to Insn.Vector.table_size - 1 do
    Machine.poke m (base + L.off_vectors + i) k.Kernel.default_vectors.(i)
  done;
  Machine.charge_refs m Insn.Vector.table_size;
  (* fd tables: all descriptors invalid *)
  let bad_fd = Ksynth.lookup k "bad_fd" in
  for i = 0 to (2 * L.max_fds) - 1 do
    Machine.poke m (base + L.off_fd_read + i) bad_fd
  done;
  Machine.charge_refs m (2 * L.max_fds);
  let t =
    {
      Kernel.tid;
      base;
      map_id;
      cpu;
      state = Kernel.Stopped;
      sw_out = 0;
      sw_in = 0;
      sw_in_mmu = 0;
      jmp_slot = 0;
      quantum_slot = 0;
      uses_fp;
      quantum_us;
      rq_next = None;
      rq_prev = None;
      waiting_on = None;
      owned_blocks = [ base; ustack ];
      owned_pages = [];
      is_system = system;
      entry;
      ustack;
      ustack_words;
    }
  in
  Hashtbl.replace k.Kernel.threads tid t;
  Hashtbl.replace k.Kernel.by_base base t;
  (* synthesize the thread's private kernel code *)
  let c = Ctx.synthesize k ~cpu ~tte_base:base ~tid ~map_id ~quantum_us ~uses_fp () in
  Ctx.apply_switch_code k t c;
  let dispatcher which off =
    let h =
      Ksynth.instantiate k
        ~name:(Printf.sprintf "thread/t%d/%s_dispatch" tid which)
        ~template:dispatcher_template
        ~invariants:[ ("fdtab", base + off) ]
    in
    t.Kernel.owned_pages <- Ksynth.entry h :: t.Kernel.owned_pages;
    Ksynth.entry h
  in
  Kernel.set_vector k t (Insn.Vector.trap 1) (dispatcher "read" L.off_fd_read);
  Kernel.set_vector k t (Insn.Vector.trap 2) (dispatcher "write" L.off_fd_write);
  (* make it runnable on its home core's ring *)
  Ready_queue.insert_front k t;
  t

(* -------------------------------------------------------------- *)
(* Destroy, stop, start, step (Table 3) *)

let destroy k t =
  if Ready_queue.in_queue t then Ready_queue.remove k t;
  t.Kernel.state <- Kernel.Zombie;
  Hashtbl.remove k.Kernel.threads t.Kernel.tid;
  Hashtbl.remove k.Kernel.by_base t.Kernel.base;
  List.iter (fun b -> Kalloc.free k.Kernel.alloc b) t.Kernel.owned_blocks;
  t.Kernel.owned_blocks <- [];
  (* drop the thread's claims on its synthesized pages: detached pages
     (switch code, patched by the ready ring) free and recycle, cached
     ones stay warm for the next same-shape thread *)
  List.iter (fun e -> Ksynth.release_entry k e) t.Kernel.owned_pages;
  t.Kernel.owned_pages <- [];
  (* map teardown and table bookkeeping *)
  Machine.charge k.Kernel.machine 110

(* Suspend: unlink the TTE from the ready queue (§4.3).

   Two fixes from the kfault ready-queue sweep:
   - the state flips to Stopped *before* the unlink, so the rebalance
     inside [Ready_queue.remove] never re-inserts a thread that is
     being stopped (pre-fix, stopping the idle thread put it back in
     the ring Ready and then marked the in-ring thread Stopped);
   - stopping the *running* thread arms the quantum timer, mirroring
     [start]: its eventual switch-out lands in the ring within
     microseconds instead of whenever the old quantum expires. *)
let stop k t =
  if t.Kernel.state = Kernel.Ready then t.Kernel.state <- Kernel.Stopped;
  let is_current =
    match Kernel.current ~cpu:t.Kernel.cpu k with
    | Some c -> c == t
    | None -> false
  in
  if Ready_queue.in_queue t then Ready_queue.remove k t;
  if is_current then Devices.Timer.arm (Kernel.timer_for k t.Kernel.cpu) ~us:2.0;
  Machine.charge k.Kernel.machine 90

(* Resume: put the TTE back, at the front. *)
let start k t =
  if not (Ready_queue.in_queue t) then begin
    Ready_queue.insert_front k t;
    t.Kernel.state <- Kernel.Ready;
    (* front of the queue means immediate access to the home CPU (§4.4) *)
    Devices.Timer.arm (Kernel.timer_for k t.Kernel.cpu) ~us:2.0
  end;
  Machine.charge k.Kernel.machine 90

let saved_sr k t = Machine.peek k.Kernel.machine (t.Kernel.base + L.off_regs + 16)
let saved_pc k t = Machine.peek k.Kernel.machine (t.Kernel.base + L.off_regs + 17)

let set_saved_reg k t r v = Machine.poke k.Kernel.machine (t.Kernel.base + L.off_regs + r) v
let saved_reg k t r = Machine.peek k.Kernel.machine (t.Kernel.base + L.off_regs + r)

(* Single-step a stopped thread: set the trace bit in its saved SR and
   start it; the trace-trap handler stops it again after one
   instruction (§4.3: debugger support). *)
let step k t =
  let m = k.Kernel.machine in
  let sr = saved_sr k t in
  Machine.poke m (t.Kernel.base + L.off_regs + 16) (sr lor (1 lsl 15));
  start k t;
  Machine.charge m 20

(* A stopped thread's context is only in its TTE once the trace/stop
   handler has switched it out; until then the save area is stale.
   Debugger-style hosts must wait for this before reading registers or
   stepping again. *)
let fully_stopped k t =
  t.Kernel.state = Kernel.Stopped
  &&
  match Kernel.current ~cpu:t.Kernel.cpu k with
  | Some c -> not (c == t)
  | None -> true

(* -------------------------------------------------------------- *)
(* Crash restart.

   The flow-rate watchdog restarts stalled *flows*; this restarts a
   crashed *thread*: rebuild the initial register image from the
   creation parameters kept in the TTE (entry point, stack extents),
   clear any half-delivered signal state, and reinsert at the front of
   the ready queue.  The synthesized switch code, vector table, and fd
   tables survive — only the context is re-created, so a restart costs
   about a TTE refill, not a full create.  Exposed to lower layers as
   [Kernel.restart_thread] (hook installed at boot). *)

let restart k t =
  if t.Kernel.state = Kernel.Zombie then
    invalid_arg "Thread.restart: thread was destroyed";
  let m = k.Kernel.machine in
  let save = t.Kernel.base + L.off_regs in
  for i = 0 to 14 do
    Machine.poke m (save + i) 0
  done;
  Machine.poke m (save + 15) (t.Kernel.base + L.off_kstack + L.kstack_words);
  (* the idle threads are the one kind of context that starts in
     kernel mode *)
  let sr = if Kernel.is_idle k t then Ctx.kernel_sr else 0 in
  Machine.poke m (save + 16) sr;
  Machine.poke m (save + 17) t.Kernel.entry;
  Machine.poke m (save + 18) (t.Kernel.ustack + t.Kernel.ustack_words);
  Machine.poke m (t.Kernel.base + L.off_sig_inh) 0;
  Machine.poke m (t.Kernel.base + L.off_sig_queued) 0;
  Machine.charge_refs m 23;
  t.Kernel.waiting_on <- None;
  t.Kernel.state <- Kernel.Ready;
  if not (Ready_queue.in_queue t) then Ready_queue.insert_front k t;
  Devices.Timer.arm (Kernel.timer_for k t.Kernel.cpu) ~us:2.0;
  Metrics.bump k.Kernel.metrics "kernel.thread_restarts_total";
  Kernel.trace k (Ktrace.Fault "thread_restart");
  (* TTE refill without allocation or code synthesis *)
  Machine.charge m 100

(* -------------------------------------------------------------- *)
(* Signals (§4.3)

   Delivery rewrites a return address — the TTE's saved PC for a
   thread suspended in user mode, the deepest exception frame on the
   thread's kernel stack for a thread inside a kernel operation
   (Procedure Chaining: "changing the return addresses on the
   stack").  The original PC is stashed in the TTE; the trampoline's
   final `sigreturn` trap restores it. *)

let deepest_frame_pc_slot t =
  (* the first trap on an empty kernel stack pushed PC then SR *)
  t.Kernel.base + L.off_kstack + L.kstack_words - 1

(* SMP: interrupt level of the cross-core signal IPI.  A thread that
   is running on another core *right now* has its context in that
   core's registers — neither its TTE save area nor the signalling
   core's live frame is valid to rewrite.  Delivery queues the target
   on [k.sig_xc] and interrupts the home core; the boot-installed IPI
   handler re-runs delivery there, where the target is current with a
   live exception frame. *)
let sig_ipi_level = 1
let sig_ipi_vector = I.Vector.autovector sig_ipi_level

let rec deliver_signal k t =
  let m = k.Kernel.machine in
  let tramp = Machine.peek m (t.Kernel.base + L.off_sig_handler) in
  if tramp = 0 then false (* no handler registered: ignored *)
  else if Machine.peek m (t.Kernel.base + L.off_sig_inh) <> 0 then begin
    (* a handler is already running (or pending): coalesce — the
       sigreturn path re-runs the handler for queued deliveries *)
    Machine.poke m (t.Kernel.base + L.off_sig_queued)
      (Machine.peek m (t.Kernel.base + L.off_sig_queued) + 1);
    Machine.charge_refs m 2;
    Machine.charge m 30;
    true
  end
  else begin
    let home = t.Kernel.cpu in
    let running_on_home =
      match Kernel.current ~cpu:home k with Some c -> c == t | None -> false
    in
    if running_on_home && home <> Kernel.this_cpu k then begin
      if not (List.memq t k.Kernel.sig_xc) then
        k.Kernel.sig_xc <- t :: k.Kernel.sig_xc;
      Machine.post_interrupt ~source:"sig_ipi" ~cpu:home m ~level:sig_ipi_level
        ~vector:sig_ipi_vector;
      Machine.charge m 30;
      true
    end
    else deliver_here k t tramp
  end

and deliver_here k t tramp =
  let m = k.Kernel.machine in
  begin
    let is_current = match Kernel.current k with Some c -> c == t | None -> false in
    let slot =
      if is_current then
        (* live trap frame of the in-progress syscall: SP -> [SR][PC] *)
        Machine.get_reg m I.sp + 1
      else if saved_sr k t land (1 lsl 13) <> 0 then
        (* suspended inside a kernel continuation: chain the signal to
           the end of the kernel operation via the original frame *)
        deepest_frame_pc_slot t
      else t.Kernel.base + L.off_regs + 17
    in
    Machine.poke m (t.Kernel.base + L.off_sig_pending) (Machine.peek m slot);
    Machine.poke m slot tramp;
    Machine.poke m (t.Kernel.base + L.off_sig_inh) 1;
    Machine.charge_refs m 5;
    Machine.charge m 90;
    true
  end

(* IPI drain, run by the boot-installed handler on the interrupted
   core: re-deliver every queued signal whose target calls this core
   home.  By now the target is either current here (live-frame path)
   or switched out (save-area path) — both valid. *)
let drain_cross_signals k =
  let mine, rest =
    List.partition (fun t -> t.Kernel.cpu = Kernel.this_cpu k) k.Kernel.sig_xc
  in
  k.Kernel.sig_xc <- rest;
  List.iter (fun t -> ignore (deliver_signal k t)) mine

(* Register a signal handler for thread [t]: synthesizes the user-mode
   trampoline with the handler address folded in. *)
let set_signal_handler k t handler =
  let tramp_template =
    Template.make ~name:"sig_tramp" ~params:[ "handler" ] (fun p ->
        [
          I.Movem_save ([ 0; 1; 2; 3; 4; 5; 6; 7 ], I.sp);
          I.Jsr (I.To_addr (p "handler"));
          I.Movem_load (I.sp, [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
          I.Trap 9; (* sigreturn *)
        ])
  in
  let h =
    Ksynth.instantiate k
      ~name:(Printf.sprintf "signal/t%d/tramp" t.Kernel.tid)
      ~template:tramp_template
      ~invariants:[ ("handler", handler) ]
  in
  (* re-registering drops the claim on the previous trampoline *)
  let old = Machine.peek k.Kernel.machine (t.Kernel.base + L.off_sig_handler) in
  if old <> 0 then begin
    Ksynth.release_entry k old;
    t.Kernel.owned_pages <- List.filter (fun e -> e <> old) t.Kernel.owned_pages
  end;
  t.Kernel.owned_pages <- Ksynth.entry h :: t.Kernel.owned_pages;
  Machine.poke k.Kernel.machine (t.Kernel.base + L.off_sig_handler) (Ksynth.entry h)

(* -------------------------------------------------------------- *)
(* Error traps (§4.3).

   "To allow arbitrarily complex error handling in user mode, we send
   an error signal to the interrupted thread itself": the synthesized
   per-thread error trap handler copies the exception frame onto the
   user stack, rewrites the kernel frame to enter the user error
   procedure, and returns from the exception.  The user procedure
   finds the faulting PC and SR on its stack — enough to emulate an
   unimplemented instruction and resume past it. *)

let error_trap_template =
  Template.make ~name:"error_trap" ~params:[ "user_proc" ] (fun p ->
      [
        I.Pop I.r4; (* SR of the faulting context *)
        I.Pop I.r5; (* PC of the faulting instruction *)
        (* copy the frame onto the user stack *)
        I.Move (I.Abs Mmio_map.usp, I.Reg I.r6);
        I.Alu (I.Sub, I.Imm 2, I.r6);
        I.Move (I.Reg I.r5, I.Ind I.r6); (* faulting PC *)
        I.Move (I.Reg I.r4, I.Idx (I.r6, 1)); (* faulting SR *)
        I.Move (I.Reg I.r6, I.Abs Mmio_map.usp);
        (* re-enter user mode at the error procedure *)
        I.Push (I.Imm (p "user_proc"));
        I.Push (I.Reg I.r4); (* the faulting context's own SR *)
        I.Rte;
      ])

(* Install a user-mode error procedure for [t]: synthesizes the trap
   handler once and points the thread's error vectors at it. *)
let set_error_handler k t ~user_proc =
  let h =
    Ksynth.instantiate k
      ~name:(Printf.sprintf "error/t%d/trap" t.Kernel.tid)
      ~template:error_trap_template
      ~invariants:[ ("user_proc", user_proc) ]
  in
  let entry = Ksynth.entry h in
  t.Kernel.owned_pages <- entry :: t.Kernel.owned_pages;
  List.iter
    (fun v -> Kernel.set_vector k t v entry)
    [
      Insn.Vector.bus_error;
      Insn.Vector.illegal;
      Insn.Vector.div_zero;
      Insn.Vector.privilege;
    ];
  entry

(* -------------------------------------------------------------- *)
(* Blocking protocol.

   A synthesized kernel path that must wait emits [block_code]: a host
   call moves the TTE to the resource's wait queue and unlinks it from
   the ready queue; the code then pushes a kernel continuation frame
   (resume at [retry] in supervisor mode) and jumps through the
   current thread's switch-out.  Unblocking reinserts at the front of
   the ready queue.  Cost: ~4 us each way (Table 4). *)

let block_hcall k (wq : Kernel.waitq) =
  if wq.Kernel.wq_block_hcall >= 0 then wq.Kernel.wq_block_hcall
  else begin
    let id =
      Machine.register_hcall k.Kernel.machine (fun m ->
          let cur = Kernel.current_exn k in
          if Ready_queue.in_queue cur then Ready_queue.remove k cur;
          cur.Kernel.state <- Kernel.Blocked;
          cur.Kernel.waiting_on <- Some wq.Kernel.wq_name;
          wq.Kernel.waiters <- wq.Kernel.waiters @ [ cur ];
          Kernel.trace k (Ktrace.Block (wq.Kernel.wq_name, cur.Kernel.tid));
          Machine.charge m 20)
    in
    wq.Kernel.wq_block_hcall <- id;
    id
  end

let unblock k (wq : Kernel.waitq) =
  match wq.Kernel.waiters with
  | [] -> None
  | t :: rest ->
    wq.Kernel.waiters <- rest;
    t.Kernel.state <- Kernel.Ready;
    t.Kernel.waiting_on <- None;
    (* a restarted thread may have been pulled back into the ring
       while its stale waitq entry survived; inserting again would
       corrupt the executable chain *)
    if not (Ready_queue.in_queue t) then Ready_queue.insert_front k t;
    (* Minimize response time to the event (section 4.4).  The arm is
       a little longer than any interrupt handler so that a wake-up
       performed from handler context never preempts the handler
       itself mid-flight; it targets the woken thread's home core. *)
    Devices.Timer.arm (Kernel.timer_for k t.Kernel.cpu) ~us:30.0;
    Kernel.trace k (Ktrace.Unblock (wq.Kernel.wq_name, t.Kernel.tid));
    Machine.charge k.Kernel.machine 20;
    Some t

(* Wake every waiter (completion events where any sleeper may now be
   able to make progress; each re-checks its condition on resume). *)
let rec unblock_all k wq =
  match unblock k wq with None -> () | Some _ -> unblock_all k wq

let unblock_hcall k (wq : Kernel.waitq) =
  if wq.Kernel.wq_unblock_hcall >= 0 then wq.Kernel.wq_unblock_hcall
  else begin
    let id = Machine.register_hcall k.Kernel.machine (fun _ -> ignore (unblock k wq)) in
    wq.Kernel.wq_unblock_hcall <- id;
    id
  end

(* Instruction fragment that blocks the current thread on [wq] and
   resumes at [retry] (a label in the enclosing fragment). *)
let block_code k wq ~retry =
  [
    I.Set_ipl 6; (* keep the timer out of the voluntary switch *)
    I.Hcall (block_hcall k wq);
    I.Push (I.Lbl retry);
    I.Push (I.Imm Ctx.kernel_sr);
    (* through the MMIO window: this fragment is shared kernel code and
       must switch out whichever core is executing it *)
    I.Jmp (I.To_mem (I.Abs Mmio_map.cur_sw_out));
  ]
