(* The default file system server pipeline (§5.1):

     raw disk device server --> disk scheduler --> cache manager
                                  (request queue)   (buffer queue)
                                                        |
                                  synthesized open-file readers

   The raw disk server is interrupt-driven: it blocks after kicking a
   transfer and the completion interrupt wakes it.  The disk scheduler
   holds the request queue and issues requests in elevator order.  The
   cache manager keeps an LRU cache of block buffers in kernel memory;
   cache hits never touch the device.  Other file systems sharing the
   physical disk would attach through a monitor and switch (§5.1) —
   the switch is exposed for that purpose.

   Requests are descriptors in kernel memory:
     [0] = block number   [1] = buffer address (cache slot)
     [2] = direction (1 read, 2 write)
     [3] = status (0 pending, 1 done, 2 failed)
   Completion wakes the requesting thread through the request's wait
   queue.

   Recovery (kfault): a host-side watchdog device arms whenever a
   transfer is in flight.  If the completion interrupt has not arrived
   within the timeout the request is re-issued, with the allowance
   doubling each try; after [ds_max_tries] the request is failed
   (status 2) so waiters wake and see the error instead of sleeping
   forever.  In fault-free runs the watchdog never fires and is idled
   on every completion, so it costs nothing and keeps no machine
   alive. *)

open Quamachine
module I = Insn

type request = {
  r_desc : int; (* descriptor address *)
  r_block : int;
  r_waitq : Kernel.waitq;
  r_epoch : int; (* barrier epoch: the elevator never reorders across epochs *)
  r_write : bool;
}

type t = {
  ds_kernel : Kernel.t;
  (* scheduler state *)
  mutable ds_queue : request list; (* pending, kept in elevator order *)
  mutable ds_active : request option;
  mutable ds_arm_position : int; (* current head position *)
  mutable ds_direction : int; (* +1 sweeping up, -1 sweeping down *)
  mutable ds_issued : int list; (* service order, newest first (tests) *)
  (* cache manager *)
  ds_cache : (int, int) Hashtbl.t; (* block -> buffer address *)
  mutable ds_lru : int list; (* block numbers, most recent first *)
  ds_cache_capacity : int;
  mutable ds_dirty : (int, unit) Hashtbl.t;
  mutable ds_hits : int;
  mutable ds_misses : int;
  (* write barriers: requests carry the epoch current at submission;
     a barrier request sits alone in its own epoch and a plain
     [barrier] call just fences by bumping the counter *)
  mutable ds_epoch : int;
  mutable ds_barriers : int;
  (* in-flight write-backs: descriptor -> (block, buffer).  The dirty
     bit stays set until the completion reports status 1, so a crash
     or a failed write-back never silently drops the block. *)
  ds_wb : (int, int * int) Hashtbl.t;
  (* in-flight cache-fill reads: block -> request, so a caller whose
     sync read timed out can re-await the same transfer instead of
     double-issuing or hitting a not-yet-filled cache slot *)
  ds_inflight : (int, request) Hashtbl.t;
  mutable ds_sync_timeouts : int;
  (* the switch through which file systems attach (§5.1) *)
  ds_switch : Quaject.switch;
  ds_monitor : Quaject.monitor;
  (* recovery: bounded retry with backoff on lost completions *)
  ds_timeout_cycles : int;
  ds_max_tries : int;
  mutable ds_tries : int; (* issues of the active request, 1-based *)
  mutable ds_active_since : int; (* cycle the active request was issued *)
  mutable ds_watchdog : Machine.device option;
  mutable ds_timeouts : int;
  mutable ds_retries : int;
  mutable ds_failed : int;
  mutable ds_spurious : int; (* disk irqs with no done transfer behind them *)
  mutable ds_last_recovery_cycles : int; (* fault -> completion, for bench *)
  (* kspan: request descriptor -> open span id (host-side; empty
     unless a span layer is attached) *)
  ds_spans : (int, int) Hashtbl.t;
}

let block_words = Devices.Disk.block_words

(* ---------------------------------------------------------------- *)
(* Disk scheduler: elevator (SCAN) order *)

let elevator_insert t req =
  (* keep two sorted runs per epoch: the current sweep, then the
     reverse sweep.  Epochs are the major key — SCAN never moves a
     request across a barrier. *)
  let pos = t.ds_arm_position and dir = t.ds_direction in
  let key r =
    let b = r.r_block in
    let sweep =
      if dir > 0 then if b >= pos then (0, b) else (1, -b)
      else if b <= pos then (0, -b)
      else (1, b)
    in
    (r.r_epoch, sweep)
  in
  t.ds_queue <-
    List.sort (fun a b -> compare (key a) (key b)) (req :: t.ds_queue);
  Machine.charge t.ds_kernel.Kernel.machine (10 + (4 * List.length t.ds_queue))

(* Watchdog arming: the allowance doubles with each try. *)
let watchdog_arm t =
  match t.ds_watchdog with
  | None -> ()
  | Some d ->
    let m = t.ds_kernel.Kernel.machine in
    let allowance = t.ds_timeout_cycles lsl (t.ds_tries - 1) in
    Machine.device_schedule m d (Machine.cycles m + allowance)

let watchdog_idle t =
  match t.ds_watchdog with
  | None -> ()
  | Some d -> Machine.device_idle t.ds_kernel.Kernel.machine d

let issue t req =
  t.ds_active <- Some req;
  t.ds_issued <- req.r_block :: t.ds_issued;
  t.ds_arm_position <- req.r_block;
  t.ds_tries <- 1;
  t.ds_active_since <- Machine.cycles t.ds_kernel.Kernel.machine;
  watchdog_arm t;
  (* cycles spent queued in the elevator end here *)
  match Hashtbl.find_opt t.ds_spans req.r_desc with
  | Some id ->
    Kernel.span t.ds_kernel (fun sp ->
        Kspan.hop sp id ~stage:"elevator" ~phase:Kspan.Queue_wait)
  | None -> ()

(* The MMIO registers are only reachable through machine loads/stores;
   drive them with a tiny supervisor fragment. *)
let issue_via_machine t req =
  let m = t.ds_kernel.Kernel.machine in
  let dir = Machine.peek m (req.r_desc + 2) in
  let buf = Machine.peek m (req.r_desc + 1) in
  let frag =
    [
      I.Move (I.Imm req.r_block, I.Abs Mmio_map.disk_block);
      I.Move (I.Imm buf, I.Abs Mmio_map.disk_buffer);
      I.Move (I.Imm dir, I.Abs Mmio_map.disk_command);
    ]
  in
  (* executed inline by the kernel (supervisor context) *)
  List.iter
    (fun insn ->
      match insn with
      | I.Move (I.Imm v, I.Abs a) ->
        Machine.charge t.ds_kernel.Kernel.machine 2;
        (* use the MMIO path so the device reacts *)
        let saved = Machine.in_supervisor m in
        Machine.set_supervisor m true;
        Machine.write_mem m a v;
        Machine.set_supervisor m saved
      | _ -> assert false)
    frag

(* Take the next request in SCAN order.  The head of [ds_queue] is
   sorted for the *current* sweep; when it lies behind the arm we have
   exhausted that sweep, so the direction flips and the remaining
   queue is re-sorted under the new key.  (The pre-fix code never
   flipped [ds_direction] — a self-assignment — so a request arriving
   above the arm during a down sweep jumped the queue ahead of the
   sweep's remaining blocks: starvation under a stream of high-block
   arrivals.  Found by the kfault disk-elevator audit.) *)
let start_next t =
  match (t.ds_active, t.ds_queue) with
  | None, req :: rest ->
    let pos = t.ds_arm_position and dir = t.ds_direction in
    let b = req.r_block in
    if (dir > 0 && b < pos) || (dir < 0 && b > pos) then begin
      t.ds_direction <- -dir;
      (* the reverse run was sorted for the old sweep; re-key it —
         but only within the head's epoch.  Later epochs keep their
         position behind the barrier whatever the sweep does. *)
      let ndir = t.ds_direction in
      let key r =
        let rb = r.r_block in
        if ndir > 0 then if rb >= b then (0, rb) else (1, -rb)
        else if rb <= b then (0, -rb)
        else (1, rb)
      in
      let same, later = List.partition (fun r -> r.r_epoch = req.r_epoch) rest in
      t.ds_queue <- List.sort (fun x y -> compare (key x) (key y)) same @ later
    end
    else t.ds_queue <- rest;
    issue t req;
    issue_via_machine t req
  | _ -> ()

(* Submit a request; returns the descriptor so a thread can block on
   its wait queue (or the host can poll its status word).  A
   [~barrier:true] request gets a private epoch: it is serviced
   strictly after everything already queued and strictly before
   anything submitted later. *)
let submit t ?(barrier = false) ?waitq ~block ~buffer ~write () =
  let k = t.ds_kernel in
  let desc = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let m = k.Kernel.machine in
  Machine.poke m desc block;
  Machine.poke m (desc + 1) buffer;
  Machine.poke m (desc + 2) (if write then 2 else 1);
  Machine.poke m (desc + 3) 0;
  Machine.charge_refs m 4;
  let epoch =
    if barrier then begin
      t.ds_barriers <- t.ds_barriers + 1;
      Metrics.bump k.Kernel.metrics "disk.barriers";
      let e = t.ds_epoch + 1 in
      t.ds_epoch <- e + 1;
      e
    end
    else t.ds_epoch
  in
  let wq = match waitq with Some w -> w | None -> Kernel.waitq ~name:"disk/req" in
  let req = { r_desc = desc; r_block = block; r_waitq = wq; r_epoch = epoch; r_write = write } in
  Kernel.span k (fun sp ->
      Hashtbl.replace t.ds_spans desc
        (Kspan.open_span sp ~pipeline:"disk"
           ~detail:(Fmt.str "block=%d/%s" block (if write then "w" else "r"))));
  elevator_insert t req;
  start_next t;
  req

(* A write barrier with no transfer attached: everything submitted
   before the fence is serviced before anything submitted after it.
   Pure queue bookkeeping — no I/O, a few cycles. *)
let barrier t =
  t.ds_epoch <- t.ds_epoch + 1;
  t.ds_barriers <- t.ds_barriers + 1;
  Metrics.bump t.ds_kernel.Kernel.metrics "disk.barriers";
  Machine.charge t.ds_kernel.Kernel.machine 4

(* ---------------------------------------------------------------- *)
(* Write-back bookkeeping shared by the completion interrupt and the
   watchdog's permanent-failure path.  The dirty bit was kept set at
   eviction time; only a status-1 completion may clear it. *)

let writeback_done t req =
  let k = t.ds_kernel in
  match Hashtbl.find_opt t.ds_wb req.r_desc with
  | None -> ()
  | Some (block, buf) ->
    Hashtbl.remove t.ds_wb req.r_desc;
    (match Hashtbl.find_opt t.ds_cache block with
    | Some cbuf when cbuf = buf ->
      (* a flush of a still-resident block: the platter now matches
         the cache, so the block is clean *)
      Hashtbl.remove t.ds_dirty block
    | Some _ ->
      (* re-read into a fresh buffer while the write-back flew; that
         copy's own dirty state stands — just drop the old buffer *)
      Kalloc.free k.Kernel.alloc buf
    | None ->
      Hashtbl.remove t.ds_dirty block;
      Kalloc.free k.Kernel.alloc buf)

let writeback_failed t req =
  let k = t.ds_kernel in
  let m = k.Kernel.machine in
  match Hashtbl.find_opt t.ds_wb req.r_desc with
  | None -> ()
  | Some (block, buf) ->
    Hashtbl.remove t.ds_wb req.r_desc;
    (* the block never reached the platter: re-mark it dirty and make
       sure the data survives in the cache for another try *)
    Hashtbl.replace t.ds_dirty block ();
    Metrics.bump k.Kernel.metrics "disk.writeback_failed";
    Kernel.log_fault k ~tid:0
      ~reason:(Fmt.str "disk_writeback_failed block=%d" block);
    (match Hashtbl.find_opt t.ds_cache block with
    | None ->
      Hashtbl.replace t.ds_cache block buf;
      t.ds_lru <- t.ds_lru @ [ block ] (* coldest: next eviction retries *)
    | Some cbuf when cbuf = buf -> ()
    | Some cbuf ->
      (* a stale re-read shadows the unwritten data: restore it *)
      for i = 0 to block_words - 1 do
        Machine.poke m (cbuf + i) (Machine.peek m (buf + i))
      done;
      Machine.charge_refs m (2 * block_words);
      Kalloc.free k.Kernel.alloc buf)

(* A cache-fill read that failed permanently must not leave a garbage
   buffer behind as a future "hit". *)
let inflight_read_failed t req =
  match Hashtbl.find_opt t.ds_inflight req.r_block with
  | Some r when r == req ->
    Hashtbl.remove t.ds_inflight req.r_block;
    (match Hashtbl.find_opt t.ds_cache req.r_block with
    | Some buf ->
      Hashtbl.remove t.ds_cache req.r_block;
      t.ds_lru <- List.filter (fun b -> b <> req.r_block) t.ds_lru;
      Kalloc.free t.ds_kernel.Kernel.alloc buf
    | None -> ())
  | _ -> ()

let inflight_read_done t req =
  match Hashtbl.find_opt t.ds_inflight req.r_block with
  | Some r when r == req -> Hashtbl.remove t.ds_inflight req.r_block
  | _ -> ()

(* ---------------------------------------------------------------- *)
(* Completion interrupt *)

(* Read the device's status register through the MMIO path (the hooks
   only fire on machine loads, not host peeks). *)
let read_disk_status m =
  let saved = Machine.in_supervisor m in
  Machine.set_supervisor m true;
  let st = Machine.read_mem m Mmio_map.disk_status in
  Machine.set_supervisor m saved;
  st

let install_irq t =
  let k = t.ds_kernel in
  let m = k.Kernel.machine in
  let complete_id =
    Machine.register_hcall m (fun m ->
        let finished = ref None in
        (match t.ds_active with
        | Some req ->
          (* Completion-exactly-once: believe the interrupt only if
             the device actually reports the transfer done (status 2).
             The pre-fix handler completed [ds_active] on *any* disk
             interrupt, so a spurious one marked an in-flight request
             done with a stale buffer — and re-arming the device for
             the next request silently dropped the transfer still in
             flight.  Found by the kfault disk subject (spurious disk
             irqs are in its fault mix). *)
          if read_disk_status m = 2 then begin
            Machine.poke m (req.r_desc + 3) 1;
            t.ds_active <- None;
            watchdog_idle t;
            if t.ds_tries > 1 then
              (* a retried request finally completed: recovery latency
                 is fault (first issue) to completion *)
              t.ds_last_recovery_cycles <-
                Machine.cycles m - t.ds_active_since;
            (* device service (issue -> completion irq) ends here;
               the handler's own cycles become the interrupt phase *)
            (match Hashtbl.find_opt t.ds_spans req.r_desc with
            | Some id ->
              Hashtbl.remove t.ds_spans req.r_desc;
              Kernel.span k (fun sp ->
                  Kspan.hop sp id ~stage:"transfer" ~phase:Kspan.Service);
              finished := Some id
            | None -> ());
            (* settle the cache books before anyone can observe them *)
            if req.r_write then writeback_done t req
            else inflight_read_done t req;
            (* wake everyone sleeping on this transfer: shared wait
               queues (e.g. a file system mount) re-check on resume *)
            Thread.unblock_all k req.r_waitq;
            Kalloc.free k.Kernel.alloc req.r_desc;
            start_next t
          end
          else begin
            t.ds_spurious <- t.ds_spurious + 1;
            Metrics.bump k.Kernel.metrics "disk.spurious_irqs"
          end
        | None ->
          (* no transfer of ours in flight (e.g. a late completion of
             a request the watchdog already failed): just try to keep
             the pipeline moving *)
          start_next t);
        Machine.charge m 25;
        match !finished with
        | Some id ->
          Kernel.span k (fun sp ->
              Kspan.hop sp id ~stage:"irq" ~phase:Kspan.Interrupt;
              Kspan.close sp id)
        | None -> ())
  in
  let irq, _ =
    Ksynth.install k ~name:"disk/irq" [ I.Hcall complete_id; I.Rte ]
  in
  Kernel.set_vector_all k Mmio_map.disk_vector irq

(* ---------------------------------------------------------------- *)
(* Cache manager *)

(* Is a write-back of exactly this (block, buffer) pair already in
   flight?  Guards against submitting a second transfer from the same
   buffer — both completions would free it. *)
let wb_inflight t block buf =
  Hashtbl.fold
    (fun _ (b, bf) acc -> acc || (b = block && bf = buf))
    t.ds_wb false

(* The buffer of an in-flight write-back of [block], if any. *)
let wb_buffer t block =
  Hashtbl.fold
    (fun _ (b, bf) acc -> if b = block then Some bf else acc)
    t.ds_wb None

let evict_if_needed t =
  if Hashtbl.length t.ds_cache > t.ds_cache_capacity then begin
    (* never evict a slot whose fill is still in flight: the DMA would
       land in a freed buffer *)
    match
      List.find_opt
        (fun b -> not (Hashtbl.mem t.ds_inflight b))
        (List.rev t.ds_lru)
    with
    | None -> ()
    | Some victim ->
      t.ds_lru <- List.filter (fun b -> b <> victim) t.ds_lru;
      (match Hashtbl.find_opt t.ds_cache victim with
      | Some buf ->
        (* Write back dirty blocks before reuse.  The dirty bit stays
           set until the completion reports status 1 — clearing it
           here (as the pre-fix code did) meant a crash or a failed
           write-back silently dropped the block.  The buffer is
           freed by the completion path, not here. *)
        if Hashtbl.mem t.ds_dirty victim then begin
          (* A flush may have already put this buffer on the wire
             (found by the crash-model qcheck property: flush then
             evict submitted two transfers from one buffer and both
             completions freed it).  The in-flight completion clears
             the dirty bit and frees the buffer once the slot is
             gone — just drop the slot. *)
          if not (wb_inflight t victim buf) then begin
            let req = submit t ~block:victim ~buffer:buf ~write:true () in
            Hashtbl.replace t.ds_wb req.r_desc (victim, buf)
          end
        end
        else Kalloc.free t.ds_kernel.Kernel.alloc buf
      | None -> ());
      Hashtbl.remove t.ds_cache victim
  end

let touch t block =
  t.ds_lru <- block :: List.filter (fun b -> b <> block) t.ds_lru;
  Machine.charge t.ds_kernel.Kernel.machine 8

(* Get the cache buffer for [block], scheduling a read on a miss.
   Returns (buffer, ready_request option): [None] means a cache hit.
   A calling thread blocks on the request's wait queue on a miss. *)
let get_block t ?waitq block =
  let k = t.ds_kernel in
  match Hashtbl.find_opt t.ds_cache block with
  | Some buf -> (
    match Hashtbl.find_opt t.ds_inflight block with
    | Some req ->
      (* the fill is still on its way (e.g. an earlier sync read timed
         out): hand back the same transfer to re-await — no
         double-issue, no premature "hit" *)
      touch t block;
      (buf, Some req)
    | None ->
      t.ds_hits <- t.ds_hits + 1;
      touch t block;
      (buf, None))
  | None -> (
    match wb_buffer t block with
    | Some buf ->
      (* An evicted block whose write-back is still in flight: the
         data is still in memory, so resurrect that buffer as the
         cache slot instead of racing a device read against the
         in-flight write (the read could be serviced first and hand
         back pre-write-back platter contents). *)
      t.ds_hits <- t.ds_hits + 1;
      Hashtbl.replace t.ds_cache block buf;
      touch t block;
      evict_if_needed t;
      (buf, None)
    | None ->
      t.ds_misses <- t.ds_misses + 1;
      let buf = Kalloc.alloc k.Kernel.alloc block_words in
      Hashtbl.replace t.ds_cache block buf;
      touch t block;
      evict_if_needed t;
      let req = submit t ?waitq ~block ~buffer:buf ~write:false () in
      Hashtbl.replace t.ds_inflight block req;
      (buf, Some req))

let mark_dirty t block = Hashtbl.replace t.ds_dirty block ()

(* Submit write-backs for every dirty resident block (async; the dirty
   bits clear as each completion lands).  With [barrier] the flushed
   group is fenced off from everything submitted afterwards. *)
let barrier_fence = barrier

let flush t ?(barrier = false) () =
  let dirty = Hashtbl.fold (fun b () acc -> b :: acc) t.ds_dirty [] in
  let submitted =
    List.fold_left
      (fun n block ->
        match Hashtbl.find_opt t.ds_cache block with
        | Some buf when not (Hashtbl.mem t.ds_inflight block) ->
          if
            (* this buffer already on the wire? (the DMA copies at
               completion, so it carries the current contents) *)
            wb_inflight t block buf
          then n
          else begin
            let req = submit t ~block ~buffer:buf ~write:true () in
            Hashtbl.replace t.ds_wb req.r_desc (block, buf);
            n + 1
          end
        | _ -> n)
      0 (List.sort compare dirty)
  in
  if barrier && submitted > 0 then
    (barrier_fence t : unit);
  submitted

(* Nothing queued, nothing active, no write-back in flight. *)
let quiescent t =
  t.ds_active = None && t.ds_queue = [] && Hashtbl.length t.ds_wb = 0

(* Host-side: step the machine until the pipeline drains. *)
let drain t ~max_insns =
  let m = t.ds_kernel.Kernel.machine in
  let rec go n =
    if quiescent t then true
    else if n <= 0 then false
    else begin
      Machine.step m;
      go (n - 1)
    end
  in
  go max_insns

(* Host-side synchronous read: drives the machine until the request
   completes (for servers running outside a thread, and for tests).
   On [max_insns] exhaustion the request stays registered in
   [ds_inflight], so a later call re-awaits the same transfer — no
   double-issue, no half-filled cache slot mistaken for a hit. *)
let read_block_sync t block ~max_insns =
  let k = t.ds_kernel in
  let m = k.Kernel.machine in
  match get_block t block with
  | buf, None -> Some buf
  | buf, Some req ->
    (* completion (success or permanent failure) unregisters the
       in-flight entry; a failed fill also drops the cache slot *)
    let rec go n =
      if not (Hashtbl.mem t.ds_inflight block) then
        if Hashtbl.mem t.ds_cache block then Some buf else None
      else if n <= 0 then begin
        t.ds_sync_timeouts <- t.ds_sync_timeouts + 1;
        Metrics.bump k.Kernel.metrics "disk.sync_timeouts";
        None
      end
      else begin
        Machine.step m;
        go (n - 1)
      end
    in
    ignore req;
    go max_insns

(* ---------------------------------------------------------------- *)
(* Watchdog: bounded retry with backoff *)

(* Runs only when a transfer has been in flight longer than its
   allowance (never in fault-free runs).  Either re-issue the request
   — recovering from a lost or stalled completion — or, out of tries,
   fail it so waiters wake with status 2 instead of sleeping forever. *)
let watchdog_tick t m =
  let k = t.ds_kernel in
  match t.ds_active with
  | None -> watchdog_idle t
  | Some req ->
    if Machine.peek m (req.r_desc + 3) <> 0 then watchdog_idle t
    else begin
      t.ds_timeouts <- t.ds_timeouts + 1;
      Metrics.bump k.Kernel.metrics "disk.timeouts";
      Kernel.trace k (Ktrace.Fault "disk_timeout");
      if t.ds_tries < t.ds_max_tries then begin
        t.ds_tries <- t.ds_tries + 1;
        t.ds_retries <- t.ds_retries + 1;
        Metrics.bump k.Kernel.metrics "disk.retries";
        issue_via_machine t req;
        watchdog_arm t
      end
      else begin
        t.ds_failed <- t.ds_failed + 1;
        Metrics.bump k.Kernel.metrics "disk.failed";
        Kernel.log_fault k ~tid:0
          ~reason:(Fmt.str "disk_failed block=%d" req.r_block);
        (match Hashtbl.find_opt t.ds_spans req.r_desc with
        | Some id ->
          Hashtbl.remove t.ds_spans req.r_desc;
          Kernel.span k (fun sp ->
              Kspan.fail sp id
                ~reason:(Fmt.str "disk_failed block=%d" req.r_block))
        | None -> ());
        Machine.poke m (req.r_desc + 3) 2;
        t.ds_active <- None;
        watchdog_idle t;
        (* a failed write-back re-dirties its block; a failed
           cache-fill read must not leave a garbage "hit" behind *)
        if req.r_write then writeback_failed t req
        else inflight_read_failed t req;
        Thread.unblock_all k req.r_waitq;
        Kalloc.free k.Kernel.alloc req.r_desc;
        start_next t
      end
    end

let stats t = (t.ds_hits, t.ds_misses)
let service_order t = List.rev t.ds_issued
let barriers t = t.ds_barriers
let sync_timeouts t = t.ds_sync_timeouts
let dirty_blocks t = Hashtbl.fold (fun b () acc -> b :: acc) t.ds_dirty []
let timeouts t = t.ds_timeouts
let retries t = t.ds_retries
let failed t = t.ds_failed
let spurious_irqs t = t.ds_spurious
let last_recovery_cycles t = t.ds_last_recovery_cycles
let active_tries t = t.ds_tries

(* ---------------------------------------------------------------- *)

let install k ?(cache_capacity = 16) ?(timeout_us = 8_000.0) ?(max_tries = 4)
    () =
  let bad = Ksynth.lookup k "bad_fd" in
  let m = k.Kernel.machine in
  let t =
    {
      ds_kernel = k;
      ds_queue = [];
      ds_active = None;
      ds_arm_position = 0;
      ds_direction = 1;
      ds_issued = [];
      ds_cache = Hashtbl.create 64;
      ds_lru = [];
      ds_cache_capacity = cache_capacity;
      ds_dirty = Hashtbl.create 16;
      ds_hits = 0;
      ds_misses = 0;
      ds_epoch = 0;
      ds_barriers = 0;
      ds_wb = Hashtbl.create 8;
      ds_inflight = Hashtbl.create 8;
      ds_sync_timeouts = 0;
      ds_switch = Quaject.create_switch k ~name:"disk/fs_switch" [| bad; bad; bad; bad |];
      ds_monitor = Quaject.create_monitor k ~name:"disk/monitor";
      ds_timeout_cycles = Cost.cycles_of_us (Machine.cost_model m) timeout_us;
      ds_max_tries = max_tries;
      ds_tries = 1;
      ds_active_since = 0;
      ds_watchdog = None;
      ds_timeouts = 0;
      ds_retries = 0;
      ds_failed = 0;
      ds_spurious = 0;
      ds_last_recovery_cycles = 0;
      ds_spans = Hashtbl.create 8;
    }
  in
  t.ds_watchdog <-
    Some
      (Machine.add_device m ~name:"disk/watchdog" ~due:max_int
         ~tick:(fun m -> watchdog_tick t m));
  install_irq t;
  t

(* Attach a file system's read entry point through the shared switch
   (the paper's "monitor and switch" composition for multiple file
   systems on one physical disk). *)
let attach_filesystem t ~slot ~entry =
  Quaject.retarget t.ds_kernel t.ds_switch ~index:slot ~target:entry
