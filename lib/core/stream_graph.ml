(* The Synthesis model of computation (§2.1): "the threads of
   execution form a directed graph, in which the nodes are threads and
   the arcs are data flow channels."

   This module composes such graphs declaratively.  Every stage is an
   active endpoint (a thread program); consecutive stages are
   single-producer/single-consumer, so the quaject interfacer's case
   analysis (§5.2) selects an SP-SC queue — realized as a kernel pipe
   with both ends synthesized for their owning threads.  Fan-in and
   fan-out stages would select the MP/MC variants; [connect_many]
   exposes that analysis for graph builders. *)

open Quamachine

type role =
  | Head of (wfd:int -> Insn.insn list) (* pure producer *)
  | Middle of (rfd:int -> wfd:int -> Insn.insn list) (* filter *)
  | Tail of (rfd:int -> Insn.insn list) (* pure consumer *)

type stage = {
  sg_role : role;
  sg_segments : (int * int) list;
  sg_quantum : int;
}

let stage ?(segments = []) ?(quantum_us = 150) role =
  { sg_role = role; sg_segments = segments; sg_quantum = quantum_us }

type built = {
  sg_threads : Kernel.tte list; (* in pipeline order *)
  sg_pipes : Kpipe.t list; (* arcs, in order *)
  sg_connectors : Quaject.connector list; (* what the interfacer chose *)
}

(* What connects a stage to its successor, per §5.2. *)
let connect_many ~producers ~consumers =
  let mult n = if n > 1 then Quaject.Multiple else Quaject.Single in
  Quaject.connect
    ~producer:{ Quaject.end_ = Quaject.Active; mult = mult producers }
    ~consumer:{ Quaject.end_ = Quaject.Active; mult = mult consumers }

(* Build a linear pipeline: Head, zero or more Middles, Tail.
   Returns the threads (created, runnable) and the connecting pipes. *)
let pipeline vfs ?(pipe_cap = 256) stages =
  let k = vfs.Vfs.kernel in
  let m = k.Kernel.machine in
  (match stages with
  | [] | [ _ ] -> invalid_arg "Stream_graph.pipeline: need at least two stages"
  | first :: rest -> (
    (match first.sg_role with
    | Head _ -> ()
    | _ -> invalid_arg "Stream_graph.pipeline: first stage must be a Head");
    let rec check = function
      | [] -> invalid_arg "Stream_graph.pipeline: last stage must be a Tail"
      | [ { sg_role = Tail _; _ } ] -> ()
      | { sg_role = Middle _; _ } :: more -> check more
      | _ -> invalid_arg "Stream_graph.pipeline: interior stages must be Middles"
    in
    check rest));
  let n = List.length stages in
  (* one thread per node, created first so pipe ends can specialize *)
  let threads =
    List.map
      (fun s ->
        Thread.create k ~quantum_us:s.sg_quantum ~entry:0 ~segments:s.sg_segments ())
      stages
  in
  (* one pipe per arc *)
  let pipes = List.init (n - 1) (fun _ -> Kpipe.create k ~cap:pipe_cap ()) in
  let connectors =
    List.init (n - 1) (fun _ -> connect_many ~producers:1 ~consumers:1)
  in
  (* attach: stage i writes pipe i, stage i+1 reads pipe i *)
  let arr_threads = Array.of_list threads in
  let arr_pipes = Array.of_list pipes in
  let fds_for i =
    (* (read fd of incoming arc, write fd of outgoing arc) *)
    let rfd =
      if i = 0 then None
      else
        let r, _ = Kpipe.attach vfs arr_pipes.(i - 1) arr_threads.(i) in
        Some r
    in
    let wfd =
      if i = n - 1 then None
      else
        let _, w = Kpipe.attach vfs arr_pipes.(i) arr_threads.(i) in
        Some w
    in
    (rfd, wfd)
  in
  List.iteri
    (fun i s ->
      let rfd, wfd = fds_for i in
      let program =
        match (s.sg_role, rfd, wfd) with
        | Head f, None, Some wfd -> f ~wfd
        | Middle f, Some rfd, Some wfd -> f ~rfd ~wfd
        | Tail f, Some rfd, None -> f ~rfd
        | _ -> assert false
      in
      let entry, _ = Asm.assemble m program in
      Machine.poke m (arr_threads.(i).Kernel.base + Layout.Tte.off_pc) entry)
    stages;
  { sg_threads = threads; sg_pipes = pipes; sg_connectors = connectors }

(* ================================================================== *)
(* kserve: queues, pumps, switches, and flow-rate gauges.

   The §4 stream layer above the linear pipeline: arcs become gauged
   kernel queues ([flow]), active stages become pump and switch
   programs (machine code, synthesized queue ends Jsr'd directly), and
   every arc carries a flow-rate gauge — a one-instruction counter
   tick whose windowed rate the fine-grain scheduler and the overload
   controller read (§3). *)

module I = Insn

(* End-of-stream sentinel.  Word.mask can never collide with a packed
   kserve request (connection ids stop short of the top of the id
   field) and flows treat it specially: a pump forwards it then
   exits; a switch forwards it to every output then exits. *)
let eof_word = Word.mask

(* ------------------------------------------------------------------ *)
(* Flow-rate gauges (§3: "the rate of data flowing through") *)

type gauge = {
  g_cell : int; (* machine-word event counter, ticked by stage code *)
  g_name : string;
  mutable g_last_count : int;
  mutable g_last_cycles : int;
  mutable g_rate : float; (* events per kilocycle, last window *)
}

let gauge k ~name =
  let cell = Kalloc.alloc_zeroed k.Kernel.alloc 1 in
  {
    g_cell = cell;
    g_name = name;
    g_last_count = 0;
    g_last_cycles = Machine.cycles k.Kernel.machine;
    g_rate = 0.0;
  }

(* the one-instruction tick stages splice into their loops *)
let gauge_tick g = [ I.Alu_mem (I.Add, I.Imm 1, I.Abs g.g_cell) ]
let gauge_count k g = Machine.peek k.Kernel.machine g.g_cell

(* Windowed rate in events per kilocycle.  The counter is a 32-bit
   machine word, so the delta is taken modulo 2^32 (counter wrap is
   one subtraction away from correct); a zero-width window returns
   the previous window's rate rather than dividing by zero. *)
let gauge_sample k g =
  let now = Machine.cycles k.Kernel.machine in
  let count = gauge_count k g in
  let dt = now - g.g_last_cycles in
  if dt <= 0 then g.g_rate
  else begin
    let dc = (count - g.g_last_count) land Word.mask in
    let rate = 1000.0 *. float_of_int dc /. float_of_int dt in
    g.g_last_count <- count;
    g.g_last_cycles <- now;
    g.g_rate <- rate;
    rate
  end

let gauge_rate g = g.g_rate

(* ------------------------------------------------------------------ *)
(* Flows: gauged queue arcs *)

type flow = { fl_q : Kqueue.t; fl_gauge : gauge }

let flow ?(producers = 1) ?(consumers = 1) ?overflow k ~name ~size =
  let connector = connect_many ~producers ~consumers in
  let kind =
    match Kqueue.kind_of_connector connector with
    | Some kind -> kind
    | None -> Kqueue.Spsc
  in
  let q = Kqueue.create ?overflow ~kind k ~name ~size in
  { fl_q = q; fl_gauge = gauge k ~name:(name ^ ".rate") }

let flow_length k fl = Kqueue.host_length k fl.fl_q
let flow_put k fl v = Kqueue.host_put k fl.fl_q v
let flow_get k fl = Kqueue.host_get k fl.fl_q

(* ------------------------------------------------------------------ *)
(* Stage programs.

   All stage code follows the queue calling convention: Jsr the
   synthesized put/get with the item in r1, status in r0 (1 = done,
   0 = would block); r4..r7 are clobbered by the queue code, so stage
   state lives in r8+.  An empty get or a full put spins through a
   yield trap — the quantum scheduler turns that into backpressure:
   a stalled consumer stalls its producer chain one arc at a time. *)

let retry_get ~label ~get =
  [
    I.Label label;
    I.Jsr (I.To_addr get);
    I.Tst (I.Reg I.r0);
    I.B (I.Ne, I.To_label (label ^ "_ok"));
    I.Trap 5; (* empty: yield the quantum, try again *)
    I.B (I.Always, I.To_label label);
    I.Label (label ^ "_ok");
  ]

let retry_put ~label ~put =
  [
    I.Label label;
    I.Jsr (I.To_addr put);
    I.Tst (I.Reg I.r0);
    I.B (I.Ne, I.To_label (label ^ "_ok"));
    I.Trap 5; (* full: backpressure — yield and retry *)
    I.B (I.Always, I.To_label label);
    I.Label (label ^ "_ok");
  ]

(* A pump: get from one flow, put into the next, tick the gauges,
   forever; on EOF forward the sentinel downstream and exit. *)
let pump_program ?(gauges = []) ~from_ ~into () =
  let ticks = List.concat_map gauge_tick (into.fl_gauge :: gauges) in
  [ I.Label "loop" ]
  @ retry_get ~label:"get" ~get:from_.fl_q.Kqueue.q_get
  @ [ I.Cmp (I.Imm eof_word, I.Reg I.r1); I.B (I.Eq, I.To_label "eof") ]
  @ retry_put ~label:"put" ~put:into.fl_q.Kqueue.q_put
  @ ticks
  @ [ I.B (I.Always, I.To_label "loop"); I.Label "eof" ]
  @ retry_put ~label:"eofput" ~put:into.fl_q.Kqueue.q_put
  @ [ I.Trap 0 ]

(* A switch: demultiplex by a key field of the item — output index =
   (item >> shift) & (n-1), n a power of two.  EOF is forwarded to
   every output exactly once, then the switch exits. *)
let switch_program ?(gauges = []) ~from_ ~outs ~shift () =
  let n = Array.length outs in
  if n = 0 then invalid_arg "Stream_graph.switch_program: no outputs";
  if n land (n - 1) <> 0 then
    invalid_arg "Stream_graph.switch_program: output count must be 2^k";
  let route =
    if n = 1 then []
    else
      [
        I.Move (I.Reg I.r1, I.Reg I.r8);
        I.Alu (I.Lsr, I.Imm shift, I.r8);
        I.Alu (I.And, I.Imm (n - 1), I.r8);
      ]
      @ List.concat
          (List.init (n - 1) (fun i ->
               [
                 I.Cmp (I.Imm i, I.Reg I.r8);
                 I.B (I.Eq, I.To_label (Printf.sprintf "out%d" i));
               ]))
  in
  let arm i fl =
    [ I.Label (Printf.sprintf "out%d" i) ]
    @ retry_put ~label:(Printf.sprintf "put%d" i) ~put:fl.fl_q.Kqueue.q_put
    @ List.concat_map gauge_tick (fl.fl_gauge :: gauges)
    @ [ I.B (I.Always, I.To_label "loop") ]
  in
  let eof_arms =
    List.concat
      (List.init n (fun i ->
           retry_put ~label:(Printf.sprintf "eofput%d" i)
             ~put:outs.(i).fl_q.Kqueue.q_put))
  in
  [ I.Label "loop" ]
  @ retry_get ~label:"get" ~get:from_.fl_q.Kqueue.q_get
  @ [ I.Cmp (I.Imm eof_word, I.Reg I.r1); I.B (I.Eq, I.To_label "eof") ]
  @ route
  (* fall through to the last arm: indices 0..n-2 branched above *)
  @ List.concat (List.init (n - 1) (fun i -> arm (n - 1 - i) outs.(n - 1 - i)))
  @ arm 0 outs.(0)
  @ [ I.Label "eof" ]
  @ eof_arms
  @ [ I.Trap 0 ]

(* Spawn a stage thread running [program].  The caller owns segment
   and placement choices; the data segments must cover every queue
   descriptor, buffer, flag array, and gauge cell the program
   touches. *)
let spawn k ?cpu ?(quantum_us = 150) ?(segments = []) program =
  let m = k.Kernel.machine in
  let entry, _ = Asm.assemble m program in
  let t = Thread.create k ?cpu ~quantum_us ~segments ~entry () in
  Thread.start k t;
  t

(* The data segments a flow's stage code touches: queue descriptor
   (head/tail), buffer, valid flags, drop cell, and the gauge. *)
let flow_segments fl =
  let q = fl.fl_q in
  [
    (q.Kqueue.q_desc, 2);
    (q.Kqueue.q_buf, q.Kqueue.q_size);
    (fl.fl_gauge.g_cell, 1);
  ]
  @ (if q.Kqueue.q_flag <> 0 then [ (q.Kqueue.q_flag, q.Kqueue.q_size) ] else [])
  @
  if q.Kqueue.q_dropped_cell <> 0 then [ (q.Kqueue.q_dropped_cell, 1) ] else []
