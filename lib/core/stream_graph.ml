(* The Synthesis model of computation (§2.1): "the threads of
   execution form a directed graph, in which the nodes are threads and
   the arcs are data flow channels."

   This module composes such graphs declaratively.  Every stage is an
   active endpoint (a thread program); consecutive stages are
   single-producer/single-consumer, so the quaject interfacer's case
   analysis (§5.2) selects an SP-SC queue — realized as a kernel pipe
   with both ends synthesized for their owning threads.  Fan-in and
   fan-out stages would select the MP/MC variants; [connect_many]
   exposes that analysis for graph builders. *)

open Quamachine

type role =
  | Head of (wfd:int -> Insn.insn list) (* pure producer *)
  | Middle of (rfd:int -> wfd:int -> Insn.insn list) (* filter *)
  | Tail of (rfd:int -> Insn.insn list) (* pure consumer *)

type stage = {
  sg_role : role;
  sg_segments : (int * int) list;
  sg_quantum : int;
}

let stage ?(segments = []) ?(quantum_us = 150) role =
  { sg_role = role; sg_segments = segments; sg_quantum = quantum_us }

type built = {
  sg_threads : Kernel.tte list; (* in pipeline order *)
  sg_pipes : Kpipe.t list; (* arcs, in order *)
  sg_connectors : Quaject.connector list; (* what the interfacer chose *)
}

(* What connects a stage to its successor, per §5.2. *)
let connect_many ~producers ~consumers =
  let mult n = if n > 1 then Quaject.Multiple else Quaject.Single in
  Quaject.connect
    ~producer:{ Quaject.end_ = Quaject.Active; mult = mult producers }
    ~consumer:{ Quaject.end_ = Quaject.Active; mult = mult consumers }

(* Build a linear pipeline: Head, zero or more Middles, Tail.
   Returns the threads (created, runnable) and the connecting pipes. *)
let pipeline vfs ?(pipe_cap = 256) stages =
  let k = vfs.Vfs.kernel in
  let m = k.Kernel.machine in
  (match stages with
  | [] | [ _ ] -> invalid_arg "Stream_graph.pipeline: need at least two stages"
  | first :: rest -> (
    (match first.sg_role with
    | Head _ -> ()
    | _ -> invalid_arg "Stream_graph.pipeline: first stage must be a Head");
    let rec check = function
      | [] -> invalid_arg "Stream_graph.pipeline: last stage must be a Tail"
      | [ { sg_role = Tail _; _ } ] -> ()
      | { sg_role = Middle _; _ } :: more -> check more
      | _ -> invalid_arg "Stream_graph.pipeline: interior stages must be Middles"
    in
    check rest));
  let n = List.length stages in
  (* one thread per node, created first so pipe ends can specialize *)
  let threads =
    List.map
      (fun s ->
        Thread.create k ~quantum_us:s.sg_quantum ~entry:0 ~segments:s.sg_segments ())
      stages
  in
  (* one pipe per arc *)
  let pipes = List.init (n - 1) (fun _ -> Kpipe.create k ~cap:pipe_cap ()) in
  let connectors =
    List.init (n - 1) (fun _ -> connect_many ~producers:1 ~consumers:1)
  in
  (* attach: stage i writes pipe i, stage i+1 reads pipe i *)
  let arr_threads = Array.of_list threads in
  let arr_pipes = Array.of_list pipes in
  let fds_for i =
    (* (read fd of incoming arc, write fd of outgoing arc) *)
    let rfd =
      if i = 0 then None
      else
        let r, _ = Kpipe.attach vfs arr_pipes.(i - 1) arr_threads.(i) in
        Some r
    in
    let wfd =
      if i = n - 1 then None
      else
        let _, w = Kpipe.attach vfs arr_pipes.(i) arr_threads.(i) in
        Some w
    in
    (rfd, wfd)
  in
  List.iteri
    (fun i s ->
      let rfd, wfd = fds_for i in
      let program =
        match (s.sg_role, rfd, wfd) with
        | Head f, None, Some wfd -> f ~wfd
        | Middle f, Some rfd, Some wfd -> f ~rfd ~wfd
        | Tail f, Some rfd, None -> f ~rfd
        | _ -> assert false
      in
      let entry, _ = Asm.assemble m program in
      Machine.poke m (arr_threads.(i).Kernel.base + Layout.Tte.off_pc) entry)
    stages;
  { sg_threads = threads; sg_pipes = pipes; sg_connectors = connectors }
