(* Fine-grain scheduling (§4.4).

   Round-robin order comes from the executable ready queue; what this
   module adjusts is each thread's CPU *quantum*, derived from the
   thread's measured I/O rate ("need to execute").  Every synthesized
   I/O routine ticks the owning thread's gauge cell; each epoch the
   scheduler reads the gauges and retunes the quantum immediates
   patched into every thread's switch-in code.

   Effective CPU time for a thread is its quantum divided by the sum
   of all quanta (§4.4); tests assert that proportionality. *)

open Quamachine

type t = {
  kernel : Kernel.t;
  epoch_us : int;
  min_quantum : int;
  max_quantum : int;
  last_gauge : (int, int) Hashtbl.t; (* tid -> gauge at last epoch *)
  last_cpu : (int, int) Hashtbl.t; (* tid -> traced CPU cycles at last epoch *)
  metrics : Metrics.t;
      (* epoch records and counters; shared with the kernel's ktrace
         registry when tracing is attached *)
}

let gauge_cell (tte : Kernel.tte) = tte.Kernel.base + Layout.Tte.off_gauge

(* Ready threads across every core's ring (SMP: proportionality is
   judged over the whole machine). *)
let all_ready k =
  List.concat (List.init (Kernel.cores k) (fun c -> Ready_queue.to_list ~cpu:c k))

let read_gauge k tte = Machine.peek k.Kernel.machine (gauge_cell tte)

(* One rebalancing pass: quantum grows linearly with the epoch's I/O
   event rate, clamped to [min, max].  Threads doing no I/O keep the
   minimum quantum (they are compute-bound; the round-robin ring still
   serves them every lap). *)
let rebalance t =
  let k = t.kernel in
  let snapshot =
    Hashtbl.fold
      (fun tid tte acc ->
        if tte.Kernel.state = Kernel.Zombie then acc
        else begin
          let now = read_gauge k tte in
          let last = try Hashtbl.find t.last_gauge tid with Not_found -> 0 in
          Hashtbl.replace t.last_gauge tid now;
          (tte, now - last) :: acc
        end)
      k.Kernel.threads []
  in
  let max_rate = List.fold_left (fun a (_, r) -> max a r) 1 snapshot in
  let span = t.max_quantum - t.min_quantum in
  (* §4.4 made observable: before retuning, compare the CPU share each
     ready thread was *promised* by its quantum over the epoch just
     ended against the share it *got* (per the trace's switch events).
     Drift is half the L1 distance between the two distributions:
     0 = perfect proportionality, 1 = completely elsewhere. *)
  let drift =
    match k.Kernel.ktrace with
    | None -> 0.0
    | Some tr ->
      let ready = all_ready k in
      let total_q =
        List.fold_left (fun a (x : Kernel.tte) -> a + x.Kernel.quantum_us) 0 ready
      in
      let cpu = Ktrace.thread_cycles tr in
      let deltas =
        List.map
          (fun (x : Kernel.tte) ->
            let now = try List.assoc x.Kernel.tid cpu with Not_found -> 0 in
            let last = try Hashtbl.find t.last_cpu x.Kernel.tid with Not_found -> 0 in
            Hashtbl.replace t.last_cpu x.Kernel.tid now;
            (x, now - last))
          ready
      in
      let total_c = List.fold_left (fun a (_, d) -> a + d) 0 deltas in
      if total_q = 0 || total_c <= 0 then 0.0
      else
        0.5
        *. List.fold_left
             (fun acc ((x : Kernel.tte), d) ->
               acc
               +. abs_float
                    ((float_of_int x.Kernel.quantum_us /. float_of_int total_q)
                    -. (float_of_int d /. float_of_int total_c)))
             0.0 deltas
  in
  Metrics.set_gauge (Metrics.gauge t.metrics "sched.share_drift") drift;
  let entries =
    List.map
      (fun ((tte : Kernel.tte), rate) ->
        let quantum = t.min_quantum + (span * rate / max_rate) in
        if quantum <> tte.Kernel.quantum_us then begin
          Ctx.set_quantum k tte quantum;
          Metrics.bump t.metrics "sched.retunes";
          Kernel.trace k (Ktrace.Retune (tte.Kernel.tid, quantum))
        end;
        Machine.charge k.Kernel.machine 10;
        { Metrics.ep_tid = tte.Kernel.tid; ep_rate = rate; ep_quantum = quantum })
      snapshot
  in
  Metrics.bump t.metrics "sched.rebalances";
  Metrics.record_epoch t.metrics
    { Metrics.ep_time_us = Machine.time_us k.Kernel.machine; ep_entries = entries };
  Kernel.trace k (Ktrace.Rebalance (Metrics.epoch_count t.metrics))

(* Install the scheduler as a periodic machine device. *)
let install k ?(epoch_us = 5_000) ?(min_quantum = 100) ?(max_quantum = 1_000) () =
  (* share the ktrace metrics registry when tracing is attached, so
     one [pp] shows scheduler and trace counters together *)
  let metrics =
    match k.Kernel.ktrace with
    | Some tr -> Ktrace.metrics tr
    | None -> Metrics.create ()
  in
  let t =
    {
      kernel = k;
      epoch_us;
      min_quantum;
      max_quantum;
      last_gauge = Hashtbl.create 16;
      last_cpu = Hashtbl.create 16;
      metrics;
    }
  in
  let m = k.Kernel.machine in
  let period () = Cost.cycles_of_us (Machine.cost_model m) (float_of_int epoch_us) in
  let dev = Machine.add_device m ~name:"scheduler" ~due:(Machine.cycles m + period ()) ~tick:(fun _ -> ()) in
  dev.Machine.dev_tick <-
    (fun m ->
      rebalance t;
      Machine.device_schedule m dev (Machine.cycles m + period ()));
  t

(* Expected CPU share of [tte] under the current quanta. *)
let cpu_share t (tte : Kernel.tte) =
  let total =
    List.fold_left
      (fun acc (x : Kernel.tte) -> acc + x.Kernel.quantum_us)
      0 (all_ready t.kernel)
  in
  if total = 0 then 0.0 else float_of_int tte.Kernel.quantum_us /. float_of_int total

let metrics t = t.metrics
let epochs t = Metrics.epoch_count t.metrics
let history t = Metrics.epoch_history t.metrics
