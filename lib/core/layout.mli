(** Kernel data-memory layout: global cells kept current by
    synthesized code, the heap region, and the TTE block layout
    (Figure 3). *)

val globals_base : int

(** Code address of the running thread's switch-out routine; updated
    by every thread's synthesized switch-in so shared kernel paths can
    block without knowing who runs them. *)
val cur_sw_out_cell : int

(** Data address of the running thread's TTE. *)
val cur_tte_cell : int

val cur_tid_cell : int
val chain_scratch_cell : int

(** {1 SMP per-core cells} — core 0 keeps the historical four cells
    above (a one-core kernel lays memory out byte-identically to the
    uniprocessor); secondary core [c] owns a private 4-word block at
    [percpu_cells_base + 4*(c-1)].  Shared code reaches the executing
    core's copy through the MMIO window ({!Mmio_map.cur_sw_out} &c). *)

val percpu_cells_base : int
val cur_sw_out_cell_for : int -> int
val cur_tte_cell_for : int -> int
val cur_tid_cell_for : int -> int
val chain_scratch_cell_for : int -> int

(** Reserved data window for fault-injection bit flips
    ([Fault_inject.config.flip_base/flip_len]): tests aim flips here
    instead of hard-coding magic addresses.  Nothing in the kernel
    reads or writes it. *)
val fault_scratch_base : int

val fault_scratch_words : int
val heap_base : int
val heap_limit : int
val boot_stack_top : int

(** ksynth: minimum words a per-kind code arena acquires per grow. *)
val synth_chunk_words : int

(** TTE block layout: offsets into the 256-word (~1 KiB) block. *)
module Tte : sig
  val size_words : int
  val off_tid : int

  (** r0..r15 at +0..+15, then SR, PC, USP. *)
  val off_regs : int

  val off_sr : int
  val off_pc : int
  val off_usp : int
  val off_map : int
  val off_quantum : int
  val off_flags : int

  (** I/O events for fine-grain scheduling. *)
  val off_gauge : int


  (** the private vector table (48 entries). *)
  val off_vectors : int


  (** 32 synthesized-routine addresses. *)
  val off_fd_read : int

  val off_fd_write : int
  val off_sig_pending : int
  val off_sig_handler : int
  val off_sig_inh : int
  val off_sig_queued : int
  val off_kstack : int
  val kstack_words : int
  val off_fp_save : int
  val max_fds : int
end
