(** The executable ready queue (§4.2, Figure 3).

    Ready threads are chained in a circular queue of code: the
    patchable [jmp] ending each thread's switch-out points at the next
    thread's switch-in.  There is no dispatcher procedure.  Insertion
    and removal are O(1) code patches; the host keeps a doubly-linked
    mirror for bookkeeping and assertions.

    SMP: each core owns one ring ([Kernel.anchor]); a thread lives on
    its home core's ring ([Kernel.tte.cpu]) and every mutator keys off
    that field.  A core's idle thread occupies its ring only when
    nothing else is ready there; the public mutators maintain that
    invariant and, when they evict an idle thread holding its CPU,
    preempt it immediately via that core's quantum timer. *)

(** Entry point of [b] when entered from [a]: switch-in-with-MMU only
    when the quaspace changes. *)
val entry_from : Kernel.tte -> Kernel.tte -> int

(** Point [a]'s switch-out jump at [b] (patches code, fixes the
    mirror). *)
val relink : Kernel.t -> Kernel.tte -> Kernel.tte -> unit

val in_queue : Kernel.tte -> bool
val next_exn : Kernel.tte -> Kernel.tte
val prev_exn : Kernel.tte -> Kernel.tte

(** Insert after [a], adopting [a]'s home core. *)
val insert_after : Kernel.t -> Kernel.tte -> Kernel.tte -> unit

(** Insert right after the thread running on the new thread's home
    core: next access to that CPU (§4.4). *)
val insert_front : Kernel.t -> Kernel.tte -> unit

val insert_single : Kernel.t -> Kernel.tte -> unit
val remove : Kernel.t -> Kernel.tte -> unit

(** Core [cpu]'s ring (default 0), anchor first. *)
val to_list : ?cpu:int -> Kernel.t -> Kernel.tte list

(** Ready threads summed over every core's ring. *)
val length : Kernel.t -> int

(** Re-establish the idle-thread invariant on every core after
    external changes. *)
val balance_idle : Kernel.t -> unit

(** Structural check: the mirror is a consistent cycle and every
    patched jmp targets the right successor entry. *)
val verify : Kernel.t -> bool
